// Broker: the paper's first motivating application (§2) — a grid
// resource broker that selects resources with a randomized load-balancing
// algorithm, making it intentionally nondeterministic.
//
// Every replica runs its own RNG (different seeds), so unreplicated
// copies would diverge on identical requests. Under the protocol, only
// the leader's random choices happen; backups adopt its state, so all
// replicas agree on every allocation.
//
//	go run ./examples/broker
package main

import (
	"fmt"
	"log"
	"time"

	"gridrep"
)

func main() {
	seed := int64(0)
	cluster, err := gridrep.NewCluster(gridrep.ClusterOptions{
		Replicas: 3,
		Service: func() gridrep.Service {
			seed++ // deliberately different per replica
			return gridrep.NewBroker(seed)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.WaitReady(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	cli, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Register a small grid site: four compute resources.
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("node%d", i)
		if _, err := cli.Write(gridrep.BrokerRegister(name, 8)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("registered node1..node4 (8 slots each)")

	// Clients ask the broker for resource slots; the selection is the
	// leader's randomized, load-balanced choice.
	for task := 1; task <= 5; task++ {
		res, err := cli.Write(gridrep.BrokerRequest(3))
		if err != nil {
			log.Fatal(err)
		}
		sel, err := gridrep.BrokerSelection(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task %d placed on %v\n", task, sel)
	}

	list, err := cli.Read(gridrep.BrokerList())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final allocation:\n%s", list)

	// The allocations survive a leader switch intact — replicas agreed
	// on the leader's random choices, not on re-running the RNG.
	cluster.SuspectLeader()
	time.Sleep(500 * time.Millisecond)
	list2, err := cli.Read(gridrep.BrokerList())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after leader switch, identical allocation:\n%s", list2)
}
