// Scheduler: the paper's second motivating application (§2) — a grid
// scheduling service (after the NILE Global Planner) that serves jobs
// FCFS with priority override.
//
// The service is unintentionally nondeterministic: which job a dispatch
// selects depends on which submissions the scheduler has examined by
// then — a function of timing, not of the request set. Replication makes
// all replicas agree on the leader's actual schedule.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"
	"time"

	"gridrep"
)

func main() {
	cluster, err := gridrep.NewCluster(gridrep.ClusterOptions{
		Replicas: 3,
		Service:  func() gridrep.Service { return gridrep.NewSched() },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.WaitReady(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	cli, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// The §2 scenario: job A (low priority) arrives, then job B (high
	// priority). A dispatch examining the queue between the two picks
	// A; after both, it picks B. The replicated service simply agrees
	// on whatever the leader's timing produced.
	if _, err := cli.Write(gridrep.SchedSubmit("jobA", 1)); err != nil {
		log.Fatal(err)
	}
	picked, err := cli.Write(gridrep.SchedDispatch()) // examines now: only A is visible
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatch between arrivals picked %q\n", picked)

	if _, err := cli.Write(gridrep.SchedSubmit("jobB", 9)); err != nil {
		log.Fatal(err)
	}
	if _, err := cli.Write(gridrep.SchedSubmit("jobC", 1)); err != nil {
		log.Fatal(err)
	}
	picked, err = cli.Write(gridrep.SchedDispatch()) // now B (priority 9) wins
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatch after both arrivals picked %q\n", picked)

	status, err := cli.Read(gridrep.SchedStatus())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queue status:\n%s", status)

	// Finish jobs; the decisions survive failover because replicas
	// agreed on the schedule itself.
	if _, err := cli.Write(gridrep.SchedComplete("jobA")); err != nil {
		log.Fatal(err)
	}
	leader, _ := cluster.Leader()
	cluster.Crash(leader)
	status, err = cli.Read(gridrep.SchedStatus())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after leader crash, schedule preserved:\n%s", status)
}
