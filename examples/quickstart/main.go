// Quickstart: a replicated key-value store on three in-process replicas.
//
// Demonstrates the three request classes of the protocol — writes (basic
// protocol), reads (X-Paxos) — plus surviving a leader crash.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gridrep"
)

func main() {
	cluster, err := gridrep.NewCluster(gridrep.ClusterOptions{
		Replicas: 3,
		Service:  func() gridrep.Service { return gridrep.NewKV() },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.WaitReady(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	leader, _ := cluster.Leader()
	fmt.Printf("cluster up, leader = replica %v\n", leader)

	cli, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// A write runs the basic protocol: the leader executes it, then one
	// Paxos instance decides <request, post-execution state>.
	if _, err := cli.Write(gridrep.KVPut("greeting", []byte("hello, grid"))); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote greeting")

	// A read runs X-Paxos: no consensus instance, just majority
	// confirms that the replying leader is still the leader.
	res, err := cli.Read(gridrep.KVGet("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	v, _ := gridrep.KVReply(res)
	fmt.Printf("read greeting = %q\n", v)

	// Crash the leader; the client's broadcast + retry rides out the
	// failover transparently.
	fmt.Printf("crashing leader %v...\n", leader)
	cluster.Crash(leader)
	res, err = cli.Read(gridrep.KVGet("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	v, _ = gridrep.KVReply(res)
	newLeader, _ := cluster.Leader()
	fmt.Printf("after failover (leader now %v): greeting = %q\n", newLeader, v)
}
