// Transactions: T-Paxos (§3.5) on a replicated key-value store — a
// banking-style transfer.
//
// Operations inside a transaction are answered by the leader immediately
// with no replica coordination; one consensus instance at commit carries
// the whole transaction and the resulting state. Conflicting
// transactions abort via per-key locks.
//
//	go run ./examples/transactions
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"gridrep"
)

func main() {
	cluster, err := gridrep.NewCluster(gridrep.ClusterOptions{
		Replicas: 3,
		Service:  func() gridrep.Service { return gridrep.NewKV() },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.WaitReady(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	cli, err := cluster.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Seed two accounts.
	if _, err := cli.Write(gridrep.KVAdd("alice", 100)); err != nil {
		log.Fatal(err)
	}
	if _, err := cli.Write(gridrep.KVAdd("bob", 50)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice=100 bob=50")

	// Transfer 30 from alice to bob atomically. Each Do returns
	// immediately (T-Paxos fast path); Commit is the only round that
	// coordinates with the backups.
	tx := cli.Begin()
	bal, err := tx.Do(gridrep.KVAdd("alice", -30))
	if err != nil {
		log.Fatal(err)
	}
	if n, _ := gridrep.KVInt(bal); n < 0 {
		fmt.Println("insufficient funds, aborting")
		tx.Abort()
		return
	}
	if _, err := tx.Do(gridrep.KVAdd("bob", 30)); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("transferred 30: commit used exactly one consensus instance")

	// A conflicting transaction is wounded by the lock discipline.
	tx1 := cli.Begin()
	if _, err := tx1.Do(gridrep.KVAdd("alice", -1)); err != nil {
		log.Fatal(err)
	}
	tx2 := cli.Begin()
	if _, err := tx2.Do(gridrep.KVAdd("alice", -1)); errors.Is(err, gridrep.ErrAborted) {
		fmt.Println("conflicting transaction aborted, as §3.5 prescribes")
	} else if err != nil {
		log.Fatal(err)
	}
	tx1.Abort()

	// Final balances.
	for _, acct := range []string{"alice", "bob"} {
		res, err := cli.Read(gridrep.KVGet(acct))
		if err != nil {
			log.Fatal(err)
		}
		n, _ := gridrep.KVInt(res)
		fmt.Printf("%s = %d\n", acct, n)
	}
}
