// Package gridrep replicates nondeterministic services on asynchronous
// (grid-like) environments, implementing the protocol family of
// "Replicating Nondeterministic Services on Grid Environments"
// (HPDC 2006):
//
//   - the basic protocol — multi-instance Paxos whose decided values are
//     <request, post-execution state> tuples, so that nondeterministic
//     execution happens exactly once, on the leader;
//   - X-Paxos — a majority-confirm fast path for read-only requests; and
//   - T-Paxos — immediate replies inside client transactions with a
//     single consensus instance at commit.
//
// # Writing a service
//
// Implement Service: Execute runs one operation (it may be randomized,
// consult the clock, or otherwise behave nondeterministically), Snapshot
// externalizes state, Restore adopts a peer's state. Replicas never
// re-execute operations; they adopt the leader's state, which is what
// keeps nondeterministic replicas consistent. Optionally implement
// Transactional for concurrent T-Paxos transactions; otherwise
// transactions are serialized automatically.
//
// # Deploying
//
// NewCluster starts an in-process deployment whose network behaviour
// comes from a configurable latency profile — ProfileSysnet, ProfileB2P
// and ProfileWAN reproduce the paper's three evaluation configurations.
// ListenAndServe / Dial run the same protocol across real TCP sockets
// for multi-process deployments.
package gridrep

import (
	"fmt"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/cluster"
	"gridrep/internal/core"
	"gridrep/internal/metrics"
	"gridrep/internal/netem"
	"gridrep/internal/service"
	"gridrep/internal/storage"
	"gridrep/internal/wire"
)

// Core abstractions, re-exported for users outside this module.
type (
	// Service is a replicated application; see the package comment.
	Service = service.Service
	// Transactional is a Service with native concurrent transactions.
	Transactional = service.Transactional
	// Workspace is one open transaction's execution context.
	Workspace = service.Workspace
	// ServiceFactory creates one service instance per replica.
	ServiceFactory = service.Factory

	// NodeID identifies a replica or client process.
	NodeID = wire.NodeID
	// Profile is a network latency/loss model configuration.
	Profile = netem.Profile

	// Client issues requests to the replicated service.
	Client = client.Client
	// Txn is an open T-Paxos transaction.
	Txn = client.Txn

	// StateMode selects the §3.3 state-transfer reduction.
	StateMode = core.StateMode

	// SyncPolicy selects when a WAL-backed replica forces a group-commit
	// batch to disk.
	SyncPolicy = storage.SyncPolicy

	// ReplicaStats is a snapshot of a replica's protocol counters
	// (pipeline occupancy, speculative rollbacks, deferred-request
	// drops); see Server.ReplicaStats.
	ReplicaStats = core.Stats

	// Health is a replica's protocol position (role, ballot, commit and
	// applied indexes), the payload of the /healthz debug endpoint.
	Health = core.Health

	// MetricsRegistry is the unified observability surface: every layer
	// of a replica (protocol core, WAL, transport) registers its
	// counters, gauges, and latency histograms here. Snapshot it
	// programmatically or serve it via Server.DebugHandler.
	MetricsRegistry = metrics.Registry
	// Metric is one instrument's state inside a registry snapshot.
	Metric = metrics.Metric
)

// Sync policies for WAL-backed deployments. SyncBatch is the default:
// one fsync per burst of critical records, the group-commit durable
// path. SyncAlways fsyncs every flushed batch; SyncInterval bounds —
// rather than eliminates — the loss window, trading the §3.1 recovery
// guarantee for disk-independent throughput.
const (
	SyncBatch    = storage.SyncPolicyBatch
	SyncAlways   = storage.SyncPolicyAlways
	SyncInterval = storage.SyncPolicyInterval
)

// ParseSyncPolicy parses "always", "batch" or "interval" (the -sync flag
// vocabulary of replicad and benchpaxos).
var ParseSyncPolicy = storage.ParseSyncPolicy

// State-transfer modes (§3.3). StateAuto picks the cheapest mode the
// service supports.
const (
	StateAuto   = core.StateModeAuto
	StateFull   = core.StateModeFull
	StateDelta  = core.StateModeDelta
	StateReplay = core.StateModeReplay
)

// Client errors, re-exported.
var (
	// ErrAborted reports a transaction killed by a conflict or leader
	// switch.
	ErrAborted = client.ErrAborted
	// ErrTimeout reports that no leader answered within the deadline.
	ErrTimeout = client.ErrTimeout
	// ErrCrossGroup reports a transaction that touched keys in more
	// than one consensus group of a sharded deployment (DESIGN.md §13);
	// each group coordinates independently, so a transaction must stay
	// within the group of its first operation.
	ErrCrossGroup = client.ErrCrossGroup
	// ErrOverloaded reports a request shed at the gateway edge with
	// StatusOverload (DESIGN.md §15) that no replica answered before
	// the deadline. The request never executed; retrying is safe.
	ErrOverloaded = client.ErrOverloaded
)

// Reconfiguration errors (DESIGN.md §12), returned by Server.AddVoter
// and Server.RemoveReplica.
var (
	// ErrNotLeader reports the change was proposed through a replica
	// that is not the activated leader; retry against the leader.
	ErrNotLeader = core.ErrNotLeader
	// ErrConfigInFlight reports another membership change is already
	// awaiting its commit point (changes apply one at a time).
	ErrConfigInFlight = core.ErrConfigInFlight
	// ErrUnsafeChange reports a transition the leader refuses: removing
	// itself, removing down to fewer live voters than the new quorum, or
	// promoting a learner that has not caught up.
	ErrUnsafeChange = core.ErrUnsafeChange
)

// Service toolkit: the nondeterministic services shipped with the
// library (see DESIGN.md §2 and the paper's §2 motivating examples).
var (
	// NewKV returns a replicated key-value store with native
	// transactions (per-key locks).
	NewKV = service.NewKV
	// NewBroker returns the randomized grid resource broker of §2.
	NewBroker = service.NewBroker
	// NewSched returns the FCFS-with-priorities grid scheduler of §2.
	NewSched = service.NewSched
	// NewNoop returns the paper's empty benchmark service.
	NewNoop = service.NewNoop

	// Key-value operation builders and reply parsers.
	KVPut    = service.KVPut
	KVGet    = service.KVGet
	KVDelete = service.KVDelete
	KVAdd    = service.KVAdd
	KVReply  = service.KVReply
	KVInt    = service.KVInt

	// Broker operation builders.
	BrokerRegister  = service.BrokerRegister
	BrokerRequest   = service.BrokerRequest
	BrokerRelease   = service.BrokerRelease
	BrokerList      = service.BrokerList
	BrokerSelection = service.BrokerSelection

	// Scheduler operation builders.
	SchedSubmit   = service.SchedSubmit
	SchedDispatch = service.SchedDispatch
	SchedComplete = service.SchedComplete
	SchedStatus   = service.SchedStatus
)

// Network profiles reproducing the paper's evaluation configurations.
var (
	// ProfileSysnet models the UCSD Sysnet cluster (§4, config 1).
	ProfileSysnet = netem.Sysnet
	// ProfileB2P models clients at Berkeley with replicas at Princeton
	// (§4, config 2).
	ProfileB2P = netem.B2P
	// ProfileWAN models the wide-area spread with the leader at UIUC
	// (§4, config 3); pass the replica hosted at the leader site.
	ProfileWAN = netem.WAN
	// ProfileLoopback is a near-zero-latency profile for tests.
	ProfileLoopback = netem.Loopback
	// ProfileWAN3 models three replicas spread across three continents
	// with asymmetric per-link latency and heavy-tail jitter; ProfileWAN5
	// extends the spread to five regions. See internal/netem/profiles.go
	// for the latency matrices and EXPERIMENTS.md for the fig-wan runs.
	ProfileWAN3 = netem.WAN3
	ProfileWAN5 = netem.WAN5
	// ProfileByName resolves a profile from its -profile flag name
	// (sysnet, b2p, wan, wan3, wan5, loopback); the error lists the valid
	// names. ProfileNames returns them in flag-help order.
	ProfileByName = netem.ProfileByName
	ProfileNames  = netem.ProfileNames
)

// ClusterOptions configures an in-process deployment.
type ClusterOptions struct {
	// Replicas is the replica count (default 3, tolerating one crash —
	// the paper's configuration).
	Replicas int
	// Service creates each replica's service (default: the noop
	// benchmark service).
	Service ServiceFactory
	// Profile selects the network model (default ProfileLoopback()).
	Profile Profile
	// Seed drives the network model's randomness.
	Seed int64
	// DataDir, when non-empty, gives each replica a file-backed
	// write-ahead log under it; empty means in-memory stable storage.
	DataDir string
	// SyncPolicy governs group-commit fsyncs for DataDir-backed WALs
	// (default SyncBatch); SyncEvery only applies to SyncInterval.
	SyncPolicy SyncPolicy
	// SyncEvery is the SyncInterval period (default 2ms).
	SyncEvery time.Duration
	// ClientDeadline bounds each client operation (default 30s).
	ClientDeadline time.Duration
	// StateMode selects how proposals carry service state (default
	// StateAuto).
	StateMode StateMode
	// PipelineDepth bounds how many accept waves the leader keeps in
	// flight speculatively (default 1 — the paper's serial protocol,
	// one wave per RTT+fsync). Higher depths overlap consensus instances
	// on the stable leader; see DESIGN.md §10.
	PipelineDepth int
	// Groups is the number of independent consensus groups hosted by
	// every replica process (default 1). With Groups > 1 the key space
	// is partitioned by hash routing: each group runs its own state
	// machine, Ω elector, and WAL family (group-<g>/ subdirectories
	// under DataDir), with leadership spread so group g prefers replica
	// g mod Replicas. Transactions must stay within one group — a
	// multi-group transaction fails with ErrCrossGroup. See DESIGN.md
	// §13.
	Groups int
	// CommitFlushDelay bounds how long a committed wave's client
	// notifications may wait for batching. Zero adopts the profile's
	// tuning hint (WAN profiles widen the window), falling back to 1ms.
	CommitFlushDelay time.Duration
	// RTTPlacement folds measured network distance into Ω leader
	// placement (DESIGN.md §16): each replica gossips its mean peer RTT
	// and the elector converges on the best-connected replica regardless
	// of boot order.
	RTTPlacement bool
	// NearReads makes clients serve X-Paxos reads from their nearest
	// replica's confirm quorum instead of always the leader (DESIGN.md
	// §16) — the WAN read-latency optimisation.
	NearReads bool
}

// Cluster is a running in-process deployment.
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster starts an in-process replicated service.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	cfg := cluster.Config{
		N:              opts.Replicas,
		Groups:         opts.Groups,
		Service:        opts.Service,
		Profile:        opts.Profile,
		Seed:           opts.Seed,
		ClientDeadline: opts.ClientDeadline,
		StateMode:      opts.StateMode,
		PipelineDepth:  opts.PipelineDepth,

		CommitFlushDelay: opts.CommitFlushDelay,
		RTTPlacement:     opts.RTTPlacement,
		NearReads:        opts.NearReads,
	}
	if opts.DataDir != "" {
		cfg.Stores = make(map[wire.NodeID]storage.Store)
		n := opts.Replicas
		if n == 0 {
			n = 3
		}
		for i := 0; i < n; i++ {
			st, err := storage.OpenFile(walPath(opts.DataDir, i))
			if err != nil {
				return nil, err
			}
			st.SetPolicy(opts.SyncPolicy, opts.SyncEvery)
			cfg.Stores[wire.NodeID(i)] = st
		}
		// Groups beyond 0 are created by the cluster itself under
		// DataDir/group-<g>/ with the same sync policy.
		cfg.DataDir = opts.DataDir
		cfg.SyncPolicy = opts.SyncPolicy
		cfg.SyncInterval = opts.SyncEvery
	}
	inner, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

func walPath(dir string, i int) string {
	return fmt.Sprintf("%s/replica-%d.wal", dir, i)
}

// NewClient attaches a client to the cluster.
func (c *Cluster) NewClient() (*Client, error) { return c.inner.NewClient() }

// WaitReady blocks until a leader is active and ready to serve.
func (c *Cluster) WaitReady(timeout time.Duration) error {
	_, err := c.inner.WaitForLeader(timeout)
	return err
}

// Leader returns the active leader, if any.
func (c *Cluster) Leader() (NodeID, bool) { return c.inner.Leader() }

// Crash fails a replica (stop + drop all its traffic).
func (c *Cluster) Crash(id NodeID) { c.inner.Crash(id) }

// Restart recovers a crashed replica from its stable storage.
func (c *Cluster) Restart(id NodeID) error { return c.inner.Restart(id) }

// SuspectLeader forces a leader switch without a crash (§3.6).
func (c *Cluster) SuspectLeader() { c.inner.SuspectLeader() }

// Close stops the cluster.
func (c *Cluster) Close() { c.inner.Close() }

// Internal returns the underlying harness for advanced use (failure
// injection, benchmarks).
func (c *Cluster) Internal() *cluster.Cluster { return c.inner }
