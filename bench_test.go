// Benchmarks regenerating the paper's evaluation (§4), one per table or
// figure. Run everything with:
//
//	go test -bench=. -benchmem
//
// Naming: BenchmarkRRT* reproduce the response-time numbers quoted in the
// §4.1 text for the three network configurations; BenchmarkThroughput*
// reproduce Figures 5-8; BenchmarkTxnRT* reproduce Table 1;
// BenchmarkTxnThroughput* reproduce Figure 9; BenchmarkAblation* cover
// the design-choice ablations called out in DESIGN.md §5. Custom metrics:
// ms/req (mean response time), req/s or txn/s (closed-loop throughput).
//
// cmd/benchpaxos runs the same experiments with the paper's full sweep
// parameters and prints paper-style tables.
package gridrep_test

import (
	"fmt"
	"testing"
	"time"

	"gridrep/internal/bench"
	"gridrep/internal/cluster"
	"gridrep/internal/core"
	"gridrep/internal/netem"
	"gridrep/internal/service"
)

// benchCluster builds a 3-replica cluster on the given profile.
func benchCluster(b *testing.B, profile netem.Profile, mut func(*cluster.Config)) *cluster.Cluster {
	b.Helper()
	cfg := cluster.Config{Profile: profile, Seed: 1, ClientDeadline: 120 * time.Second}
	if mut != nil {
		mut(&cfg)
	}
	c, err := cluster.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	if _, err := c.WaitForLeader(15 * time.Second); err != nil {
		b.Fatal(err)
	}
	return c
}

// benchRRT runs b.N sequential requests of the class through one client
// and reports the mean response time.
func benchRRT(b *testing.B, profile netem.Profile, class bench.ReqClass) {
	c := benchCluster(b, profile, nil)
	cli, err := c.NewClient()
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	issue := func() error {
		switch class {
		case bench.ClassRead:
			_, err := cli.Read(service.NoopReadOp)
			return err
		case bench.ClassWrite:
			_, err := cli.Write(service.NoopWriteOp)
			return err
		default:
			_, err := cli.Original(service.NoopWriteOp)
			return err
		}
	}
	if err := issue(); err != nil { // warmup
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := issue(); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(float64(elapsed.Microseconds())/1000.0/float64(b.N), "ms/req")
}

// §4.1 text, Sysnet: original 0.181 ms / read 0.263 ms / write 0.338 ms.
func BenchmarkRRTSysnetOriginal(b *testing.B) { benchRRT(b, netem.Sysnet(), bench.ClassOriginal) }
func BenchmarkRRTSysnetRead(b *testing.B)     { benchRRT(b, netem.Sysnet(), bench.ClassRead) }
func BenchmarkRRTSysnetWrite(b *testing.B)    { benchRRT(b, netem.Sysnet(), bench.ClassWrite) }

// §4.1 text, Berkeley→Princeton: 91.85 / 92.79 / 93.13 ms (all ≈ equal).
func BenchmarkRRTB2POriginal(b *testing.B) { benchRRT(b, netem.B2P(), bench.ClassOriginal) }
func BenchmarkRRTB2PRead(b *testing.B)     { benchRRT(b, netem.B2P(), bench.ClassRead) }
func BenchmarkRRTB2PWrite(b *testing.B)    { benchRRT(b, netem.B2P(), bench.ClassWrite) }

// §4.1 text, WAN spread: 70.82 / 75.49 / 106.73 ms (X-Paxos ≪ basic).
func BenchmarkRRTWANOriginal(b *testing.B) { benchRRT(b, netem.WAN(0), bench.ClassOriginal) }
func BenchmarkRRTWANRead(b *testing.B)     { benchRRT(b, netem.WAN(0), bench.ClassRead) }
func BenchmarkRRTWANWrite(b *testing.B)    { benchRRT(b, netem.WAN(0), bench.ClassWrite) }

// benchThroughput runs one throughput point (c clients, b.N total
// requests) and reports req/s.
func benchThroughput(b *testing.B, profile netem.Profile, class bench.ReqClass, clients int, mut func(*cluster.Config)) {
	c := benchCluster(b, profile, mut)
	total := b.N
	if total < clients {
		total = clients
	}
	b.ResetTimer()
	tp, err := bench.MeasureThroughput(c, class, clients, total)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(tp, "req/s")
}

// Figure 5: service throughput on Sysnet (the 16-client point of each
// series; cmd/benchpaxos sweeps 1-16).
func BenchmarkThroughputSysnetRead(b *testing.B) {
	benchThroughput(b, netem.Sysnet(), bench.ClassRead, 16, nil)
}
func BenchmarkThroughputSysnetWrite(b *testing.B) {
	benchThroughput(b, netem.Sysnet(), bench.ClassWrite, 16, nil)
}
func BenchmarkThroughputSysnetOriginal(b *testing.B) {
	benchThroughput(b, netem.Sysnet(), bench.ClassOriginal, 16, nil)
}

// Figure 6: more clients (the 64-client points, near the paper's peak).
func BenchmarkThroughputManyClientsRead(b *testing.B) {
	benchThroughput(b, netem.Sysnet(), bench.ClassRead, 64, nil)
}
func BenchmarkThroughputManyClientsWrite(b *testing.B) {
	benchThroughput(b, netem.Sysnet(), bench.ClassWrite, 64, nil)
}

// Figure 7: Berkeley→Princeton (the 16-client points; curves coincide).
func BenchmarkThroughputB2PRead(b *testing.B) {
	benchThroughput(b, netem.B2P(), bench.ClassRead, 16, nil)
}
func BenchmarkThroughputB2PWrite(b *testing.B) {
	benchThroughput(b, netem.B2P(), bench.ClassWrite, 16, nil)
}

// Figure 8: WAN spread (the 16-client points; read clearly above write).
func BenchmarkThroughputWANRead(b *testing.B) {
	benchThroughput(b, netem.WAN(0), bench.ClassRead, 16, nil)
}
func BenchmarkThroughputWANWrite(b *testing.B) {
	benchThroughput(b, netem.WAN(0), bench.ClassWrite, 16, nil)
}

// benchTxnRT runs b.N sequential transactions and reports mean TRT.
func benchTxnRT(b *testing.B, mode bench.TxnMode, nReqs int) {
	c := benchCluster(b, netem.Sysnet(), nil)
	b.ResetTimer()
	s, err := bench.MeasureTxnRT(c, mode, nReqs, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(s.Mean, "ms/txn")
}

// Table 1: transaction response time on Sysnet.
// Paper: read/write 1.17 / 1.79 ms; write-only 1.29 / 2.01 ms;
// optimized 0.85 / 1.23 ms (3 / 5 requests per transaction).
func BenchmarkTxnRTReadWrite3(b *testing.B) { benchTxnRT(b, bench.TxnReadWrite, 3) }
func BenchmarkTxnRTReadWrite5(b *testing.B) { benchTxnRT(b, bench.TxnReadWrite, 5) }
func BenchmarkTxnRTWriteOnly3(b *testing.B) { benchTxnRT(b, bench.TxnWriteOnly, 3) }
func BenchmarkTxnRTWriteOnly5(b *testing.B) { benchTxnRT(b, bench.TxnWriteOnly, 5) }
func BenchmarkTxnRTOptimized3(b *testing.B) { benchTxnRT(b, bench.TxnOptimized, 3) }
func BenchmarkTxnRTOptimized5(b *testing.B) { benchTxnRT(b, bench.TxnOptimized, 5) }

// benchTxnThroughput runs one Figure 9 point (8 clients).
func benchTxnThroughput(b *testing.B, mode bench.TxnMode, nReqs int) {
	c := benchCluster(b, netem.Sysnet(), nil)
	total := b.N
	if total < 8 {
		total = 8
	}
	b.ResetTimer()
	tp, err := bench.MeasureTxnThroughput(c, mode, nReqs, 8, total)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(tp, "txn/s")
}

// Figure 9a: transaction throughput, 3 requests per transaction.
func BenchmarkTxnThroughput3ReadWrite(b *testing.B) { benchTxnThroughput(b, bench.TxnReadWrite, 3) }
func BenchmarkTxnThroughput3WriteOnly(b *testing.B) { benchTxnThroughput(b, bench.TxnWriteOnly, 3) }
func BenchmarkTxnThroughput3Optimized(b *testing.B) { benchTxnThroughput(b, bench.TxnOptimized, 3) }

// Figure 9b: transaction throughput, 5 requests per transaction.
func BenchmarkTxnThroughput5ReadWrite(b *testing.B) { benchTxnThroughput(b, bench.TxnReadWrite, 5) }
func BenchmarkTxnThroughput5WriteOnly(b *testing.B) { benchTxnThroughput(b, bench.TxnWriteOnly, 5) }
func BenchmarkTxnThroughput5Optimized(b *testing.B) { benchTxnThroughput(b, bench.TxnOptimized, 5) }

// §4.3 ablation: tolerating more failures (n=5, t=2) on the WAN profile.
// The paper predicts writes barely change while X-Paxos reads degrade
// with the extra wide-area confirm paths.
func BenchmarkAblationReplicas5Read(b *testing.B) {
	c := benchCluster(b, netem.WAN(0), func(cfg *cluster.Config) { cfg.N = 5 })
	b.ResetTimer()
	s, err := bench.MeasureRRT(c, bench.ClassRead, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(s.Mean, "ms/req")
}

func BenchmarkAblationReplicas5Write(b *testing.B) {
	c := benchCluster(b, netem.WAN(0), func(cfg *cluster.Config) { cfg.N = 5 })
	b.ResetTimer()
	s, err := bench.MeasureRRT(c, bench.ClassWrite, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(s.Mean, "ms/req")
}

// DESIGN.md §5.1 ablation: disable multi-instance accept waves. Write
// throughput collapses to ~1/(2m) because §3.3's no-gap rule then admits
// only one instance at a time.
func BenchmarkAblationNoBatchWrite(b *testing.B) {
	benchThroughput(b, netem.Sysnet(), bench.ClassWrite, 16,
		func(cfg *cluster.Config) { cfg.NoBatch = true })
}

// DESIGN.md §5.2 ablation: proposal state size. The basic protocol ships
// full post-execution state; larger service state costs accept-message
// bytes. Measured with the KV service at three value sizes.
func BenchmarkAblationStateSize(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("state=%dB", size), func(b *testing.B) {
			c := benchCluster(b, netem.Sysnet(), func(cfg *cluster.Config) {
				cfg.Service = service.KVFactory
			})
			cli, err := c.NewClient()
			if err != nil {
				b.Fatal(err)
			}
			defer cli.Close()
			payload := make([]byte, size)
			if _, err := cli.Write(service.KVPut("warm", payload)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := cli.Write(service.KVPut("k", payload)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(time.Since(start).Microseconds())/1000.0/float64(b.N), "ms/req")
		})
	}
}

// DESIGN.md §5.2 ablation, second axis: the §3.3 state-transfer modes.
// With a large store, full mode ships the whole snapshot per wave while
// delta mode ships only the touched keys.
func BenchmarkAblationStateModes(b *testing.B) {
	for _, mode := range []core.StateMode{core.StateModeFull, core.StateModeDelta} {
		b.Run(mode.String(), func(b *testing.B) {
			c := benchCluster(b, netem.Sysnet(), func(cfg *cluster.Config) {
				cfg.Service = service.KVFactory
				cfg.StateMode = mode
			})
			cli, err := c.NewClient()
			if err != nil {
				b.Fatal(err)
			}
			defer cli.Close()
			// Pre-populate a store large enough that full snapshots hurt.
			big := make([]byte, 1024)
			for i := 0; i < 200; i++ {
				if _, err := cli.Write(service.KVPut(fmt.Sprintf("pre%d", i), big)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := cli.Write(service.KVAdd("hot", 1)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(time.Since(start).Microseconds())/1000.0/float64(b.N), "ms/req")
		})
	}
}
