GO ?= go

.PHONY: all tier1 fmt race chaos chaos-reconfig pipeline-race shard-race bench bench-quick bench-durable-quick bench-pipeline-quick bench-shard-quick microbench benchstat clean

all: tier1

# Tier-1: the gate every change must keep green.
tier1: fmt
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

# Formatting gate: fails listing any file gofmt would rewrite.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Race tier: vet + full test suite under the race detector. The chaos
# and transport tests are required to be race-clean.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Just the socket-level chaos suite (transport + chaos), race-enabled.
chaos:
	$(GO) test -race ./internal/transport ./internal/chaos

# Online-reconfiguration suite under the race detector (PR 6): snapshot
# catch-up, consensus-decided membership change, WAL pruning, the
# crash-rejoin-via-snapshot chaos scenario, the join-under-link-chaos
# acceptance test, the TCP -join test, and graceful-shutdown WAL
# flushing.
chaos-reconfig:
	$(GO) test -race -count 1 -run 'Reconfig|OnlineJoin|ChaosCrashRejoin|RemoveReplica|TCPOnlineJoin|GracefulShutdown|Learner|SetPeers|Prune|SnapshotMembers|TailBitFlip|Checkpoint' ./internal/cluster ./internal/core ./internal/omega ./internal/storage ./internal/chaos .

# Pipelined-mode suite under the race detector: wave pipelining, the
# linearizability matrix (depth × batching), recovery truncation, and
# the leader-crash-mid-pipeline chaos test.
pipeline-race:
	$(GO) test -race -count 1 -run 'Pipelin|Linearizability|Recovery' ./internal/core ./internal/chaos ./internal/paxos

# Sharded-consensus suite under the race detector (PR 7, DESIGN.md §13):
# the shard router, the group multiplexer, per-group WAL directory
# creation, the sharded in-process cluster scenarios, the groups={1,4}
# TCP linearizability matrix, and the cross-group transaction refusal.
shard-race:
	$(GO) test -race -count 1 -run 'Shard|GroupMux|CrossGroup|OpenFile|WithPrefix|Rank|Group' ./internal/shard ./internal/transport ./internal/storage ./internal/metrics ./internal/omega ./internal/cluster ./internal/bench .

bench:
	$(GO) run ./cmd/benchpaxos -exp all

# Scaled-down full suite (~30-60s): every experiment, shape-checkable.
bench-quick:
	$(GO) run ./cmd/benchpaxos -exp all -quick

# Scaled-down durable-mode run: fig5/fig6 over file-backed WALs with
# group commit, plus the inline-fsync ablation baseline.
bench-durable-quick:
	$(GO) run ./cmd/benchpaxos -exp fig5,fig6 -quick -durable
	$(GO) run ./cmd/benchpaxos -exp fig5,fig6 -quick -durable -nopersist -syncpolicy always

# Scaled-down pipeline-depth sweep over durable WALs (PR 4).
bench-pipeline-quick:
	$(GO) run ./cmd/benchpaxos -exp pipeline -quick -durable

# Scaled-down sharded benchmarks (PR 7): the single-vs-sharded Figure 6
# write curve and the durable groups × GOMAXPROCS sweep.
bench-shard-quick:
	$(GO) run ./cmd/benchpaxos -exp fig6-sharded -quick
	$(GO) run ./cmd/benchpaxos -exp shard-sweep -quick -durable

# Hot-path microbenchmarks: wire codec, both transports, and the WAL
# write path (per-record vs group commit), with allocs.
microbench:
	$(GO) test -run '^$$' -bench . -benchmem -count 1 ./internal/wire ./internal/transport ./internal/storage

# Compare current microbenchmarks against the checked-in baseline.
# Fails when allocs/op regresses beyond 10%; run
#   make microbench > bench_baseline.txt
# to re-baseline after an intentional change.
benchstat:
	$(GO) test -run '^$$' -bench . -benchmem -count 1 ./internal/wire ./internal/transport ./internal/storage > /tmp/bench_current.txt || (cat /tmp/bench_current.txt; exit 1)
	$(GO) run ./cmd/benchdiff bench_baseline.txt /tmp/bench_current.txt

clean:
	$(GO) clean ./...
