GO ?= go

.PHONY: all tier1 fmt race chaos chaos-reconfig pipeline-race shard-race multicore-race overload-race wan-race bench bench-quick bench-durable-quick bench-pipeline-quick bench-shard-quick bench-multicore-quick bench-overload-quick bench-wan-quick microbench benchstat clean

all: tier1

# Tier-1: the gate every change must keep green.
tier1: fmt
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

# Formatting gate: fails listing any file gofmt would rewrite.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Race tier: vet + full test suite under the race detector. The chaos
# and transport tests are required to be race-clean.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Just the socket-level chaos suite (transport + chaos), race-enabled.
chaos:
	$(GO) test -race ./internal/transport ./internal/chaos

# Online-reconfiguration suite under the race detector (PR 6): snapshot
# catch-up, consensus-decided membership change, WAL pruning, the
# crash-rejoin-via-snapshot chaos scenario, the join-under-link-chaos
# acceptance test, the TCP -join test, and graceful-shutdown WAL
# flushing.
chaos-reconfig:
	$(GO) test -race -count 1 -run 'Reconfig|OnlineJoin|ChaosCrashRejoin|RemoveReplica|TCPOnlineJoin|GracefulShutdown|Learner|SetPeers|Prune|SnapshotMembers|TailBitFlip|Checkpoint' ./internal/cluster ./internal/core ./internal/omega ./internal/storage ./internal/chaos .

# Pipelined-mode suite under the race detector: wave pipelining, the
# linearizability matrix (depth × batching), recovery truncation, and
# the leader-crash-mid-pipeline chaos test.
pipeline-race:
	$(GO) test -race -count 1 -run 'Pipelin|Linearizability|Recovery' ./internal/core ./internal/chaos ./internal/paxos

# Sharded-consensus suite under the race detector (PR 7, DESIGN.md §13):
# the shard router, the group multiplexer, per-group WAL directory
# creation, the sharded in-process cluster scenarios, the groups={1,4}
# TCP linearizability matrix, and the cross-group transaction refusal.
shard-race:
	$(GO) test -race -count 1 -run 'Shard|GroupMux|CrossGroup|OpenFile|WithPrefix|Rank|Group' ./internal/shard ./internal/transport ./internal/storage ./internal/metrics ./internal/omega ./internal/cluster ./internal/bench .

# Multi-core gate at a widened scheduler (PR 8, DESIGN.md §14): tier-1
# plus the pipeline/shard race suites at GOMAXPROCS=4, then the new
# concurrency matrix under the race detector — the parallel read pool
# vs write commits vs snapshot rewrites vs metrics scrapes, the
# read-view copy-on-write service contract, the off-loop decode stage,
# and the linearizability bracket at GOMAXPROCS ∈ {1,4}.
# The leadership *placement* tests (group g lands on replica g mod N)
# run unskipped since PR 10: a rank function now opts the elector into
# rank preemption, so the preferred replica reclaims its group after
# the stability holddown even when a GOMAXPROCS=4 boot race let a
# sibling claim first (DESIGN.md §16).
multicore-race:
	GOMAXPROCS=4 $(GO) test -count 1 ./...
	GOMAXPROCS=4 $(GO) test -race -count 1 -run 'Pipelin|Linearizability|Recovery' ./internal/core ./internal/chaos ./internal/paxos
	GOMAXPROCS=4 $(GO) test -race -count 1 -run 'Shard|GroupMux|CrossGroup|OpenFile|WithPrefix|Rank|Group' ./internal/shard ./internal/transport ./internal/storage ./internal/metrics ./internal/omega ./internal/cluster ./internal/bench .
	GOMAXPROCS=4 $(GO) test -race -count 1 -run 'ParallelRead|ReadView|ReadPool|Sink|DecodeStage|ReplyWriter|Multicore' ./internal/core ./internal/service ./internal/transport ./internal/cluster

bench:
	$(GO) run ./cmd/benchpaxos -exp all

# Scaled-down full suite (~30-60s): every experiment, shape-checkable.
bench-quick:
	$(GO) run ./cmd/benchpaxos -exp all -quick

# Scaled-down durable-mode run: fig5/fig6 over file-backed WALs with
# group commit, plus the inline-fsync ablation baseline.
bench-durable-quick:
	$(GO) run ./cmd/benchpaxos -exp fig5,fig6 -quick -durable
	$(GO) run ./cmd/benchpaxos -exp fig5,fig6 -quick -durable -nopersist -syncpolicy always

# Scaled-down pipeline-depth sweep over durable WALs (PR 4).
bench-pipeline-quick:
	$(GO) run ./cmd/benchpaxos -exp pipeline -quick -durable

# Scaled-down sharded benchmarks (PR 7): the single-vs-sharded Figure 6
# write curve and the durable groups × GOMAXPROCS sweep.
bench-shard-quick:
	$(GO) run ./cmd/benchpaxos -exp fig6-sharded -quick
	$(GO) run ./cmd/benchpaxos -exp shard-sweep -quick -durable

# Scaled-down multi-core sweep (PR 8): read & write throughput across
# GOMAXPROCS × groups over durable WALs.
bench-multicore-quick:
	$(GO) run ./cmd/benchpaxos -exp multicore-sweep -quick -durable

# Gateway / overload suite under the race detector at GOMAXPROCS=4
# (PR 9, DESIGN.md §15): the full edge package (admission, fair
# queueing, dedup window, session mux), the typed-overload client
# contract, the reply-drop accounting split, the open-loop harness,
# and the idempotent-retry-across-leader-crash test over real TCP +
# WALs.
overload-race:
	GOMAXPROCS=4 $(GO) test -race -count 1 ./internal/gateway
	GOMAXPROCS=4 $(GO) test -race -count 1 -run 'Overload|RetryAfter|ReplyDrop|Shed|OpenLoop' ./internal/client ./internal/transport ./internal/bench
	GOMAXPROCS=4 $(GO) test -race -count 1 -run 'TCPIdempotentRetryAcrossLeaderCrash' .

# Scaled-down open-loop goodput ablation (PR 9): Poisson offered load
# at 1-4x saturation with admission on vs off, on the latency-bound
# overload-lab substrate.
bench-overload-quick:
	$(GO) run ./cmd/benchpaxos -exp fig-overload -quick

# Geo-replication suite under the race detector at GOMAXPROCS=4
# (PR 10, DESIGN.md §16): Ω rank preemption and cost-composed ranks,
# the RTT placement feed, nearest-replica reads end to end, the WAN
# profile timeout derivation, the wan3 linearizability bracket under
# region partition (in-process fabric), and the region-partition chaos
# scenario over real TCP.
wan-race:
	GOMAXPROCS=4 $(GO) test -race -count 1 -run 'Preempt|Cost|Rank|Near|WAN|Wan|ProfileTimeout|ProfileByName|RegionPartition' ./internal/omega ./internal/core ./internal/client ./internal/netem ./internal/cluster ./internal/chaos .

# Scaled-down per-region read-latency comparison (PR 10): leader reads
# vs nearest-replica reads on the compressed wan3/wan5 geographies.
bench-wan-quick:
	$(GO) run ./cmd/benchpaxos -exp fig-wan -quick

# Hot-path microbenchmarks: wire codec, both transports, and the WAL
# write path (per-record vs group commit), with allocs.
microbench:
	$(GO) test -run '^$$' -bench . -benchmem -count 1 ./internal/wire ./internal/transport ./internal/storage

# Compare current microbenchmarks against the checked-in baseline.
# Fails when allocs/op regresses beyond 10%; run
#   make microbench > bench_baseline.txt
# to re-baseline after an intentional change.
benchstat:
	$(GO) test -run '^$$' -bench . -benchmem -count 1 ./internal/wire ./internal/transport ./internal/storage > /tmp/bench_current.txt || (cat /tmp/bench_current.txt; exit 1)
	$(GO) run ./cmd/benchdiff bench_baseline.txt /tmp/bench_current.txt

clean:
	$(GO) clean ./...
