GO ?= go

.PHONY: all tier1 race chaos bench bench-quick microbench benchstat clean

all: tier1

# Tier-1: the gate every change must keep green.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# Race tier: vet + full test suite under the race detector. The chaos
# and transport tests are required to be race-clean.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Just the socket-level chaos suite (transport + chaos), race-enabled.
chaos:
	$(GO) test -race ./internal/transport ./internal/chaos

bench:
	$(GO) run ./cmd/benchpaxos -exp all

# Scaled-down full suite (~30-60s): every experiment, shape-checkable.
bench-quick:
	$(GO) run ./cmd/benchpaxos -exp all -quick

# Hot-path microbenchmarks: wire codec + both transports, with allocs.
microbench:
	$(GO) test -run '^$$' -bench . -benchmem -count 1 ./internal/wire ./internal/transport

# Compare current microbenchmarks against the checked-in baseline.
# Fails when allocs/op regresses beyond 10%; run
#   make microbench > bench_baseline.txt
# to re-baseline after an intentional change.
benchstat:
	$(GO) test -run '^$$' -bench . -benchmem -count 1 ./internal/wire ./internal/transport > /tmp/bench_current.txt || (cat /tmp/bench_current.txt; exit 1)
	$(GO) run ./cmd/benchdiff bench_baseline.txt /tmp/bench_current.txt

clean:
	$(GO) clean ./...
