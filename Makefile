GO ?= go

.PHONY: all tier1 race chaos bench clean

all: tier1

# Tier-1: the gate every change must keep green.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# Race tier: vet + full test suite under the race detector. The chaos
# and transport tests are required to be race-clean.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Just the socket-level chaos suite (transport + chaos), race-enabled.
chaos:
	$(GO) test -race ./internal/transport ./internal/chaos

bench:
	$(GO) run ./cmd/benchpaxos -exp all

clean:
	$(GO) clean ./...
