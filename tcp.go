package gridrep

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/core"
	"gridrep/internal/metrics"
	"gridrep/internal/storage"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// TransportOptions tunes the self-healing TCP transport: queue bounds,
// reconnect backoff, write deadlines, and the heartbeat that detects
// dead links. The zero value picks sensible defaults.
type TransportOptions = transport.Options

// TransportStats is a snapshot of the TCP transport's counters: dials,
// reconnects, drops by cause, queue depth, and heartbeat RTT.
type TransportStats = transport.Stats

// ServerOptions configures one TCP replica process.
type ServerOptions struct {
	// ID is this replica's index into Peers.
	ID NodeID
	// Peers maps every replica ID (including ID) to its host:port
	// listen address. The paper's prototype used raw TCP sockets
	// between all processes (§4); so does this deployment mode.
	Peers map[NodeID]string
	// Service is this replica's service instance.
	Service Service
	// WALPath, when non-empty, enables file-backed stable storage.
	WALPath string
	// SyncPolicy governs group-commit fsyncs on the WAL (default
	// SyncBatch); SyncEvery only applies to SyncInterval.
	SyncPolicy SyncPolicy
	// SyncEvery is the SyncInterval period (default 2ms).
	SyncEvery time.Duration
	// HeartbeatInterval tunes Ω (default 25ms).
	HeartbeatInterval time.Duration
	// PipelineDepth bounds how many accept waves this replica keeps in
	// flight speculatively while leading (default 1 — the paper's serial
	// protocol; see DESIGN.md §10).
	PipelineDepth int
	// Join starts this replica as an online joiner (DESIGN.md §12): a
	// non-voting learner that announces itself to the peers listed in
	// Peers, catches up via snapshot streaming, and becomes a voter
	// through a committed configuration entry. Peers must still contain
	// this replica's own listen address under ID.
	Join bool
	// SnapshotEvery and PruneKeep tune the durable-snapshot cadence and
	// the WAL retention slack below the cluster-wide applied watermark
	// (defaults 4096 and 1024 instances).
	SnapshotEvery uint64
	PruneKeep     uint64
	// Transport tunes the TCP transport (zero value = defaults).
	Transport TransportOptions
}

// Server is one running TCP replica.
type Server struct {
	rep   *core.Replica
	tr    *transport.TCP
	store storage.Store // nil when running on in-memory storage
}

// ListenAndServe starts a replica serving the replication protocol over
// TCP. It returns once the replica is listening; the protocol runs in
// the background until Close.
func ListenAndServe(opts ServerOptions) (*Server, error) {
	if opts.Service == nil {
		return nil, fmt.Errorf("gridrep: ServerOptions.Service is required")
	}
	book := make(map[wire.NodeID]string, len(opts.Peers))
	peers := make([]wire.NodeID, 0, len(opts.Peers))
	for id, addr := range opts.Peers {
		book[id] = addr
		peers = append(peers, id)
	}
	tr, err := transport.ListenTCPOpts(opts.ID, book, opts.Transport)
	if err != nil {
		return nil, err
	}
	var store storage.Store
	if opts.WALPath != "" {
		fs, err := storage.OpenFile(opts.WALPath)
		if err != nil {
			tr.Close()
			return nil, err
		}
		fs.SetPolicy(opts.SyncPolicy, opts.SyncEvery)
		store = fs
	}
	rep, err := core.New(core.Config{
		ID:                opts.ID,
		Peers:             peers,
		Service:           opts.Service,
		Store:             store,
		Transport:         tr,
		HeartbeatInterval: opts.HeartbeatInterval,
		PipelineDepth:     opts.PipelineDepth,
		Join:              opts.Join,
		AdvertiseAddr:     opts.Peers[opts.ID],
		SnapshotEvery:     opts.SnapshotEvery,
		PruneKeep:         opts.PruneKeep,
	})
	if err != nil {
		tr.Close()
		return nil, err
	}
	rep.Start()
	return &Server{rep: rep, tr: tr, store: store}, nil
}

// Addr returns the replica's actual listen address.
func (s *Server) Addr() string { return s.tr.Addr() }

// TransportStats snapshots the replica's transport counters.
func (s *Server) TransportStats() TransportStats { return s.tr.Stats() }

// ReplicaStats snapshots the replica's protocol counters: pipeline
// occupancy, speculative rollbacks, and deferred-request drops.
func (s *Server) ReplicaStats() ReplicaStats { return s.rep.Stats() }

// Metrics returns the replica's metrics registry — protocol, WAL, and
// transport instruments in one place. Safe from any goroutine.
func (s *Server) Metrics() *MetricsRegistry { return s.rep.Metrics() }

// Health snapshots the replica's protocol position: role, ballot, commit
// index, applied index. Safe from any goroutine.
func (s *Server) Health() Health { return s.rep.Health() }

// DebugHandler returns the replica's debug HTTP surface: /metrics serves
// the registry (Prometheus text by default, JSON with ?format=json), and
// /healthz serves the Health snapshot as JSON. replicad mounts this on
// -metrics-addr; embedders can mount it on their own mux.
func (s *Server) DebugHandler() http.Handler {
	return debugHandler(s.rep)
}

// debugHandler builds the /metrics + /healthz mux for one replica.
func debugHandler(rep *core.Replica) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(rep.Metrics()))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep.Health())
	})
	return mux
}

// Close stops the replica abruptly (the crash model: staged WAL
// records are dropped — acknowledged writes are durable on a quorum,
// not on one replica's shutdown path). Use Shutdown for a clean exit.
func (s *Server) Close() { s.rep.Stop() }

// Shutdown stops the replica gracefully: the event loop and persister
// exit, the staged WAL batch is flushed, and the store is closed —
// which joins any in-flight background snapshot rewrite and truncates
// the preallocated tail. Preferred over Close when the process will
// restart and should replay as much of its own log as possible.
func (s *Server) Shutdown() error {
	s.rep.Stop()
	if s.store == nil {
		return nil
	}
	var err error
	if fl, ok := s.store.(storage.Flusher); ok {
		err = fl.Flush()
	}
	if cl, ok := s.store.(interface{ Close() error }); ok {
		if cerr := cl.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// AddVoter asks this replica (which must be the active leader) to
// promote a caught-up learner to voter; RemoveReplica proposes removing
// a member. Both changes are decided by consensus and take effect at
// the configuration entry's commit point (DESIGN.md §12).
func (s *Server) AddVoter(id NodeID, addr string) error {
	return s.rep.Reconfigure(wire.ConfigAddVoter, id, addr)
}

// RemoveReplica proposes removing a member from the voting
// configuration through this replica (which must be the active
// leader). The leader refuses unsafe transitions: removing itself, or
// any change that would drop the live voter count below the new
// configuration's quorum.
func (s *Server) RemoveReplica(id NodeID) error {
	return s.rep.Reconfigure(wire.ConfigRemove, id, "")
}

// DialOptions configures a TCP client.
type DialOptions struct {
	// ID must be unique among clients; it is offset into the client ID
	// space automatically.
	ID uint32
	// Replicas maps every replica ID to its host:port address.
	Replicas map[NodeID]string
	// Deadline bounds each operation (default 30s).
	Deadline time.Duration
	// Transport tunes the TCP transport (zero value = defaults).
	Transport TransportOptions
}

// Dial connects a client to a TCP-deployed replicated service.
func Dial(opts DialOptions) (*Client, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("gridrep: DialOptions.Replicas is required")
	}
	book := make(map[wire.NodeID]string, len(opts.Replicas))
	ids := make([]wire.NodeID, 0, len(opts.Replicas))
	for id, addr := range opts.Replicas {
		book[id] = addr
		ids = append(ids, id)
	}
	tr := transport.DialTCPOpts(wire.ClientIDBase+wire.NodeID(opts.ID), book, opts.Transport)
	return client.New(client.Config{
		Transport: tr,
		Replicas:  ids,
		Deadline:  opts.Deadline,
	}), nil
}
