package gridrep

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/core"
	"gridrep/internal/gateway"
	"gridrep/internal/metrics"
	"gridrep/internal/shard"
	"gridrep/internal/storage"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// TransportOptions tunes the self-healing TCP transport: queue bounds,
// reconnect backoff, write deadlines, and the heartbeat that detects
// dead links. The zero value picks sensible defaults.
type TransportOptions = transport.Options

// TransportStats is a snapshot of the TCP transport's counters: dials,
// reconnects, drops by cause, queue depth, and heartbeat RTT.
type TransportStats = transport.Stats

// ServerOptions configures one TCP replica process.
type ServerOptions struct {
	// ID is this replica's index into Peers.
	ID NodeID
	// Peers maps every replica ID (including ID) to its host:port
	// listen address. The paper's prototype used raw TCP sockets
	// between all processes (§4); so does this deployment mode.
	Peers map[NodeID]string
	// Service is this replica's service instance (single-group mode).
	Service Service
	// Groups is the number of independent consensus groups this process
	// hosts (default 1). With Groups > 1 the key space is partitioned by
	// hash routing (DESIGN.md §13): each group runs its own state
	// machine, Ω elector, and WAL (per-group subdirectories next to
	// WALPath), multiplexed over the same TCP connections, with group
	// g's preferred leader at replica g mod len(Peers). NewService is
	// required instead of Service.
	Groups int
	// NewService creates one service instance per group; required when
	// Groups > 1 (each group owns an independent partition of the key
	// space), optional otherwise (used for group 0 if Service is nil).
	NewService ServiceFactory
	// WALPath, when non-empty, enables file-backed stable storage.
	WALPath string
	// SyncPolicy governs group-commit fsyncs on the WAL (default
	// SyncBatch); SyncEvery only applies to SyncInterval.
	SyncPolicy SyncPolicy
	// SyncEvery is the SyncInterval period (default 2ms).
	SyncEvery time.Duration
	// HeartbeatInterval tunes Ω (default 25ms).
	HeartbeatInterval time.Duration
	// PipelineDepth bounds how many accept waves this replica keeps in
	// flight speculatively while leading (default 1 — the paper's serial
	// protocol; see DESIGN.md §10).
	PipelineDepth int
	// CommitFlushDelay bounds how long a committed wave's client
	// notifications may wait for batching (default 1ms). WAN deployments
	// benefit from wider windows — see the profile tuning hints in
	// EXPERIMENTS.md.
	CommitFlushDelay time.Duration
	// RTTPlacement folds measured link RTTs into Ω leader placement
	// (DESIGN.md §16): each replica gossips its mean peer RTT and the
	// elector converges on the best-connected replica regardless of boot
	// order. Heartbeat RTT estimates come from the TCP transport's pings.
	RTTPlacement bool
	// WireCompat keeps every emitted message decodable by pre-§16
	// binaries for rolling upgrades of a mixed-version cluster: the
	// Confirm.MaxAcc barrier stamp and heartbeat cost gossip — trailing
	// wire fields old peers reject — are suppressed. Overrides
	// RTTPlacement; nearest-replica reads fall back to the leader path
	// while set. Roll the new binaries with WireCompat, drop it once
	// every replica is upgraded, then enable the §16 features.
	WireCompat bool
	// Join starts this replica as an online joiner (DESIGN.md §12): a
	// non-voting learner that announces itself to the peers listed in
	// Peers, catches up via snapshot streaming, and becomes a voter
	// through a committed configuration entry. Peers must still contain
	// this replica's own listen address under ID.
	Join bool
	// SnapshotEvery and PruneKeep tune the durable-snapshot cadence and
	// the WAL retention slack below the cluster-wide applied watermark
	// (defaults 4096 and 1024 instances).
	SnapshotEvery uint64
	PruneKeep     uint64
	// Transport tunes the TCP transport (zero value = defaults).
	Transport TransportOptions
	// Gateway, when non-nil, enables the client-facing edge (DESIGN.md
	// §15): per-tenant admission control, weighted fair queueing, typed
	// StatusOverload sheds with retry-after hints, and the per-session
	// dedup window. A zero GatewayOptions value picks defaults, with the
	// global in-flight budget sized from pipeline depth × groups. Nil
	// keeps the exact PR 8 byte path.
	Gateway *GatewayOptions
}

// GatewayOptions tunes the client-facing edge; see internal/gateway.
type GatewayOptions = gateway.Config

// GatewayStats is a snapshot of the edge counters: admissions, queue
// occupancy, sheds by cause, and dedup hits.
type GatewayStats = gateway.Stats

// Server is one running TCP replica process — every consensus group it
// hosts (one in the classic deployment, N in a sharded one).
type Server struct {
	rep    *core.Replica   // group 0
	groups []*core.Replica // all groups, index = group id
	tr     *transport.TCP
	gw     *gateway.Gateway    // nil when the edge is disabled
	mux    *transport.GroupMux // nil in single-group mode
	stores []storage.Store     // per group; nil entries for in-memory
	store  storage.Store       // group 0 (nil when in-memory)
	reg    *metrics.Registry   // shared registry in sharded mode, else group 0's
}

// groupWALPath derives group g's WAL path from the configured one:
// group 0 keeps it unchanged (a -groups 1 data dir is byte-for-byte a
// single-group one), group g nests in a group-<g> subdirectory.
func groupWALPath(walPath string, g int) string {
	if g == 0 {
		return walPath
	}
	return filepath.Join(filepath.Dir(walPath), fmt.Sprintf("group-%d", g), filepath.Base(walPath))
}

// ListenAndServe starts a replica serving the replication protocol over
// TCP. It returns once the replica is listening; the protocol runs in
// the background until Close.
func ListenAndServe(opts ServerOptions) (*Server, error) {
	groups := opts.Groups
	if groups <= 0 {
		groups = 1
	}
	newService := opts.NewService
	if newService == nil {
		if opts.Service == nil {
			return nil, fmt.Errorf("gridrep: ServerOptions.Service (or NewService) is required")
		}
		if groups > 1 {
			return nil, fmt.Errorf("gridrep: Groups > 1 requires ServerOptions.NewService (one independent service instance per group)")
		}
		svc := opts.Service
		newService = func() Service { return svc }
	}
	book := make(map[wire.NodeID]string, len(opts.Peers))
	peers := make([]wire.NodeID, 0, len(opts.Peers))
	for id, addr := range opts.Peers {
		book[id] = addr
		peers = append(peers, id)
	}
	tr, err := transport.ListenTCPOpts(opts.ID, book, opts.Transport)
	if err != nil {
		return nil, err
	}
	s := &Server{tr: tr}

	// The client-facing edge wraps the TCP transport before the group
	// multiplexer sees it: TCP → gateway → (mux) → cores, so admission
	// decisions happen on the decode goroutines, at the edge. With
	// Gateway nil the TCP endpoint is used directly — the PR 8 path,
	// byte for byte.
	var edge transport.Transport = tr
	if opts.Gateway != nil {
		gcfg := *opts.Gateway
		if gcfg.MaxInFlight <= 0 {
			depth := opts.PipelineDepth
			if depth <= 0 {
				depth = 1
			}
			gcfg.MaxInFlight = depth * groups * 64
		}
		s.gw = gateway.Wrap(tr, gcfg)
		edge = s.gw
	}

	fail := func(err error) (*Server, error) {
		for _, rep := range s.groups {
			rep.Stop()
		}
		if s.mux != nil {
			s.mux.Close()
		} else {
			edge.Close()
		}
		return nil, err
	}

	// Transport and metrics assembly. Single-group keeps the exact
	// pre-sharding path: the TCP endpoint goes straight into the core,
	// which probes it for metrics/health itself. Sharded mode wraps it
	// in a GroupMux (hash routing, group-id stamping, health fan-out)
	// and shares one registry: group 0 unprefixed, group g prefixed
	// group_<g>_, the shared transport registered once at the root.
	trFor := func(g int) transport.Transport { return edge }
	regFor := func(g int) *metrics.Registry { return nil }
	if groups > 1 {
		router := shard.NewRouter(groups, newService())
		s.mux = transport.NewGroupMux(edge, groups, router.Route)
		s.reg = metrics.NewRegistry()
		if s.gw != nil {
			s.gw.RegisterMetrics(s.reg) // registers the TCP underlay too
		} else {
			tr.RegisterMetrics(s.reg)
		}
		trFor = func(g int) transport.Transport { return s.mux.Group(g) }
		regFor = func(g int) *metrics.Registry {
			if g == 0 {
				return s.reg
			}
			return s.reg.WithPrefix(fmt.Sprintf("group_%d_", g))
		}
	}
	// Leadership spread ranks are derived from the bootstrap member
	// count; a joiner's book already includes itself, so subtract it to
	// agree with the members' ranks.
	rankN := len(opts.Peers)
	if opts.Join && rankN > 1 {
		rankN--
	}

	for g := 0; g < groups; g++ {
		var store storage.Store
		if opts.WALPath != "" {
			fs, err := storage.OpenFile(groupWALPath(opts.WALPath, g))
			if err != nil {
				return fail(err)
			}
			fs.SetPolicy(opts.SyncPolicy, opts.SyncEvery)
			store = fs
		}
		var rank func(wire.NodeID) uint64
		if groups > 1 {
			rank = shard.LeaderRank(uint32(g), rankN)
		}
		rep, err := core.New(core.Config{
			ID:                opts.ID,
			Peers:             peers,
			Service:           newService(),
			Store:             store,
			Transport:         trFor(g),
			HeartbeatInterval: opts.HeartbeatInterval,
			PipelineDepth:     opts.PipelineDepth,
			CommitFlushDelay:  opts.CommitFlushDelay,
			RTTPlacement:      opts.RTTPlacement,
			WireCompat:        opts.WireCompat,
			Join:              opts.Join,
			AdvertiseAddr:     opts.Peers[opts.ID],
			SnapshotEvery:     opts.SnapshotEvery,
			PruneKeep:         opts.PruneKeep,
			Metrics:           regFor(g),
			LeaderRank:        rank,
		})
		if err != nil {
			if store != nil {
				if cl, ok := store.(interface{ Close() error }); ok {
					cl.Close()
				}
			}
			return fail(err)
		}
		s.groups = append(s.groups, rep)
		s.stores = append(s.stores, store)
		rep.Start()
	}
	s.rep = s.groups[0]
	s.store = s.stores[0]
	if s.reg == nil {
		s.reg = s.rep.Metrics()
	}
	return s, nil
}

// Groups returns the number of consensus groups this process hosts.
func (s *Server) Groups() int { return len(s.groups) }

// Addr returns the replica's actual listen address.
func (s *Server) Addr() string { return s.tr.Addr() }

// TransportStats snapshots the replica's transport counters.
func (s *Server) TransportStats() TransportStats { return s.tr.Stats() }

// ReplicaStats snapshots the replica's protocol counters: pipeline
// occupancy, speculative rollbacks, and deferred-request drops.
func (s *Server) ReplicaStats() ReplicaStats { return s.rep.Stats() }

// GatewayStats snapshots the client-facing edge counters; the zero
// value when the gateway is disabled.
func (s *Server) GatewayStats() GatewayStats {
	if s.gw == nil {
		return GatewayStats{}
	}
	return s.gw.Stats()
}

// Metrics returns the process's metrics registry — protocol, WAL, and
// transport instruments in one place (sharded: group 0 unprefixed,
// group g under group_<g>_). Safe from any goroutine.
func (s *Server) Metrics() *MetricsRegistry { return s.reg }

// Health snapshots the group-0 replica's protocol position: role,
// ballot, commit index, applied index. Safe from any goroutine; see
// GroupHealths for the per-group view of a sharded server.
func (s *Server) Health() Health { return s.rep.Health() }

// GroupHealths snapshots every consensus group's protocol position, in
// group order — the payload of the sharded /healthz array.
func (s *Server) GroupHealths() []Health {
	out := make([]Health, 0, len(s.groups))
	for _, rep := range s.groups {
		out = append(out, rep.Health())
	}
	return out
}

// groupHealth is one /healthz array element: a group id plus that
// group's Health, flattened into one JSON object.
type groupHealth struct {
	Group int `json:"group"`
	Health
}

// DebugHandler returns the replica's debug HTTP surface: /metrics serves
// the registry (Prometheus text by default, JSON with ?format=json), and
// /healthz serves the Health snapshot as JSON — a single object for a
// single-group server, an array of {"group": g, ...health} objects when
// the process hosts several consensus groups (README documents both).
// replicad mounts this on -metrics-addr; embedders can mount it on
// their own mux.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(s.reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if len(s.groups) == 1 {
			_ = enc.Encode(s.rep.Health())
			return
		}
		out := make([]groupHealth, 0, len(s.groups))
		for g, rep := range s.groups {
			out = append(out, groupHealth{Group: g, Health: rep.Health()})
		}
		_ = enc.Encode(out)
	})
	return mux
}

// Close stops the process abruptly — every group's replica (the crash
// model: staged WAL records are dropped — acknowledged writes are
// durable on a quorum, not on one replica's shutdown path). Use
// Shutdown for a clean exit.
func (s *Server) Close() {
	for _, rep := range s.groups {
		rep.Stop()
	}
	if s.mux != nil {
		s.mux.Close()
	}
}

// Shutdown stops the process gracefully: every group's event loop and
// persister exit, staged WAL batches are flushed, and the stores are
// closed — which joins any in-flight background snapshot rewrite and
// truncates the preallocated tail. Preferred over Close when the
// process will restart and should replay as much of its own logs as
// possible.
func (s *Server) Shutdown() error {
	for _, rep := range s.groups {
		rep.Stop()
	}
	if s.mux != nil {
		s.mux.Close()
	}
	var err error
	for _, store := range s.stores {
		if store == nil {
			continue
		}
		if fl, ok := store.(storage.Flusher); ok {
			if ferr := fl.Flush(); err == nil {
				err = ferr
			}
		}
		if cl, ok := store.(interface{ Close() error }); ok {
			if cerr := cl.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// AddVoter asks this replica to promote a caught-up learner to voter;
// RemoveReplica proposes removing a member. Both changes are decided by
// consensus and take effect at the configuration entry's commit point
// (DESIGN.md §12). The change is proposed in every consensus group this
// process hosts; with leadership spread across replicas a group whose
// leader lives elsewhere answers ErrNotLeader, and the operator repeats
// the call against the remaining leaders (group order is stable, and a
// group that already committed the change accepts the retry as a
// no-op-level refusal it reports distinctly).
func (s *Server) AddVoter(id NodeID, addr string) error {
	for g, rep := range s.groups {
		if err := rep.Reconfigure(wire.ConfigAddVoter, id, addr); err != nil {
			if len(s.groups) > 1 {
				return fmt.Errorf("group %d: %w", g, err)
			}
			return err
		}
	}
	return nil
}

// RemoveReplica proposes removing a member from the voting
// configuration through this replica (which must be the active
// leader of each hosted group; see AddVoter for the sharded contract).
// The leader refuses unsafe transitions: removing itself, or any change
// that would drop the live voter count below the new configuration's
// quorum.
func (s *Server) RemoveReplica(id NodeID) error {
	for g, rep := range s.groups {
		if err := rep.Reconfigure(wire.ConfigRemove, id, ""); err != nil {
			if len(s.groups) > 1 {
				return fmt.Errorf("group %d: %w", g, err)
			}
			return err
		}
	}
	return nil
}

// DialOptions configures a TCP client.
type DialOptions struct {
	// ID must be unique among clients; it is offset into the client ID
	// space automatically.
	ID uint32
	// Replicas maps every replica ID to its host:port address.
	Replicas map[NodeID]string
	// Deadline bounds each operation (default 30s).
	Deadline time.Duration
	// Transport tunes the TCP transport (zero value = defaults).
	Transport TransportOptions
	// NearRead serves X-Paxos reads from the nearest replica's confirm
	// quorum instead of always the leader (DESIGN.md §16). The nearest
	// replica is picked from the transport's heartbeat RTT estimates, or
	// pinned explicitly with NearPin/NearReplica.
	NearRead    bool
	NearPin     bool
	NearReplica NodeID
}

// Dial connects a client to a TCP-deployed replicated service.
func Dial(opts DialOptions) (*Client, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("gridrep: DialOptions.Replicas is required")
	}
	book := make(map[wire.NodeID]string, len(opts.Replicas))
	ids := make([]wire.NodeID, 0, len(opts.Replicas))
	for id, addr := range opts.Replicas {
		book[id] = addr
		ids = append(ids, id)
	}
	tr := transport.DialTCPOpts(wire.ClientIDBase+wire.NodeID(opts.ID), book, opts.Transport)
	return client.New(client.Config{
		Transport:   tr,
		Replicas:    ids,
		Deadline:    opts.Deadline,
		NearRead:    opts.NearRead,
		NearPin:     opts.NearPin,
		NearReplica: opts.NearReplica,
	}), nil
}

// ClientMux multiplexes many logical client sessions over one shared
// TCP connection set (DESIGN.md §15): each session gets its own client
// ID — tenant in the upper bits, session number in the lower — and its
// own sequence space, so tens of thousands of clients don't need tens
// of thousands of sockets.
type ClientMux struct {
	mux      *gateway.SessionMux
	replicas []wire.NodeID
	deadline time.Duration
	near     client.Config // NearRead/NearPin/NearReplica template
}

// DialMux connects the shared transport for a session-multiplexed
// client process. The ID in opts seeds nothing here — session identity
// comes from Session's tenant and session number.
func DialMux(opts DialOptions) (*ClientMux, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("gridrep: DialOptions.Replicas is required")
	}
	book := make(map[wire.NodeID]string, len(opts.Replicas))
	ids := make([]wire.NodeID, 0, len(opts.Replicas))
	for id, addr := range opts.Replicas {
		book[id] = addr
		ids = append(ids, id)
	}
	tr := transport.DialTCPOpts(wire.ClientIDBase+wire.NodeID(opts.ID), book, opts.Transport)
	return &ClientMux{
		mux:      gateway.NewSessionMux(tr),
		replicas: ids,
		deadline: opts.Deadline,
		near: client.Config{
			NearRead:    opts.NearRead,
			NearPin:     opts.NearPin,
			NearReplica: opts.NearReplica,
		},
	}, nil
}

// Session opens (or returns) the client for session n of tenant. All
// sessions share the underlying connections; closing the returned
// client detaches only that session.
func (m *ClientMux) Session(tenant uint8, n uint32) (*Client, error) {
	ep, err := m.mux.Open(tenant, n)
	if err != nil {
		return nil, err
	}
	return client.New(client.Config{
		Transport:   ep,
		Replicas:    m.replicas,
		Deadline:    m.deadline,
		NearRead:    m.near.NearRead,
		NearPin:     m.near.NearPin,
		NearReplica: m.near.NearReplica,
	}), nil
}

// Close closes every session and the shared transport.
func (m *ClientMux) Close() error { return m.mux.Close() }
