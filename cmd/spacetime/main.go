// Command spacetime regenerates the paper's protocol diagrams — Figure 1
// (Paxos), Figure 2 (the basic protocol), Figure 3 (X-Paxos), and Figure
// 4 (T-Paxos) — as ASCII space-time diagrams captured from live
// executions on the Sysnet network profile.
//
//	go run ./cmd/spacetime -fig 3
//	go run ./cmd/spacetime -fig all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gridrep/internal/cluster"
	"gridrep/internal/netem"
	"gridrep/internal/service"
	"gridrep/internal/trace"
	"gridrep/internal/wire"
)

func main() {
	fig := flag.String("fig", "all", "figure to draw: 1, 2, 3, 4, or all")
	flag.Parse()

	figs := map[string]func() error{
		"1": fig1, "2": fig2, "3": fig3, "4": fig4,
	}
	run := func(id string) {
		if err := figs[id](); err != nil {
			log.Fatalf("figure %s: %v", id, err)
		}
	}
	if *fig == "all" {
		for _, id := range []string{"1", "2", "3", "4"} {
			run(id)
		}
		return
	}
	if _, ok := figs[*fig]; !ok {
		fmt.Fprintln(os.Stderr, "unknown figure; use 1, 2, 3, 4, or all")
		os.Exit(2)
	}
	run(*fig)
}

// setup builds an n-replica Sysnet cluster with a collector attached from
// the very first message.
func setup(n int) (*cluster.Cluster, *trace.Collector, error) {
	col := trace.NewCollector()
	c, err := cluster.New(cluster.Config{
		N:       n,
		Profile: netem.Sysnet(),
		Service: service.KVFactory,
		Tracer:  col.TransportTracer(),
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := c.WaitForLeader(10 * time.Second); err != nil {
		c.Close()
		return nil, nil, err
	}
	return c, col, nil
}

func participants(n int, withClient bool) []wire.NodeID {
	var out []wire.NodeID
	if withClient {
		out = append(out, wire.ClientIDBase+1)
	}
	for i := 0; i < n; i++ {
		out = append(out, wire.NodeID(i))
	}
	return out
}

func keep(types ...wire.MsgType) func(trace.Event) bool {
	set := map[wire.MsgType]bool{}
	for _, t := range types {
		set[t] = true
	}
	return func(ev trace.Event) bool { return set[ev.Type] }
}

// fig1 reproduces Figure 1: one proposer (P1) carrying out the prepare
// and accept phases with five acceptors. The prepare phase is the
// cluster's own cold-start election; the accept phase is triggered by one
// client write, shown without the client.
func fig1() error {
	c, col, err := setup(5)
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	defer cli.Close()
	if _, err := cli.Write(service.KVPut("v", []byte("x"))); err != nil {
		return err
	}
	time.Sleep(20 * time.Millisecond) // let commits land
	evs := trace.Filter(col.Events(), keep(wire.MsgPrepare, wire.MsgPromise,
		wire.MsgAccept, wire.MsgAccepted, wire.MsgCommit))
	fmt.Println("Figure 1. Paxos — prepare phase, then accept phase (P1=r0, five acceptors)")
	fmt.Println(trace.Render(evs, participants(5, false)))
	return nil
}

// fig2 reproduces Figure 2: the basic protocol serving two consecutive
// client requests — two consensus instances deciding <req, state>.
func fig2() error {
	c, col, err := setup(3)
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	defer cli.Close()
	if _, err := cli.Write(service.KVPut("warm", []byte("up"))); err != nil {
		return err
	}
	col.Reset()
	for i := 0; i < 2; i++ {
		if _, err := cli.Write(service.KVPut("k", []byte{byte(i)})); err != nil {
			return err
		}
	}
	time.Sleep(20 * time.Millisecond)
	evs := trace.Filter(col.Events(), keep(wire.MsgRequest, wire.MsgReply,
		wire.MsgAccept, wire.MsgAccepted, wire.MsgCommit))
	fmt.Println("Figure 2. The basic protocol — two instances (leader=r0)")
	fmt.Println(trace.Render(evs, participants(3, true)))
	return nil
}

// fig3 reproduces Figure 3: X-Paxos serving one read — the client
// broadcasts, the backups confirm to the leader, the leader replies.
func fig3() error {
	c, col, err := setup(3)
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	defer cli.Close()
	if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
		return err
	}
	col.Reset()
	if _, err := cli.Read(service.KVGet("k")); err != nil {
		return err
	}
	time.Sleep(10 * time.Millisecond)
	evs := trace.Filter(col.Events(), keep(wire.MsgRequest, wire.MsgReply, wire.MsgConfirm))
	fmt.Println("Figure 3. X-Paxos — one read: broadcast, majority confirms, reply")
	fmt.Println(trace.Render(evs, participants(3, true)))
	return nil
}

// fig4 reproduces Figure 4: T-Paxos serving the transaction r1, r2, r3,
// commit — immediate replies for the three operations, one consensus
// instance at commit.
func fig4() error {
	c, col, err := setup(3)
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	defer cli.Close()
	if _, err := cli.Write(service.KVPut("warm", []byte("up"))); err != nil {
		return err
	}
	col.Reset()
	tx := cli.Begin()
	for i := 0; i < 3; i++ {
		if _, err := tx.Do(service.KVPut(fmt.Sprintf("r%d", i+1), []byte("v"))); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	time.Sleep(20 * time.Millisecond)
	evs := trace.Filter(col.Events(), keep(wire.MsgRequest, wire.MsgReply,
		wire.MsgAccept, wire.MsgAccepted, wire.MsgCommit))
	fmt.Println("Figure 4. T-Paxos — r1, r2, r3, commit (coordination only at commit)")
	fmt.Println(trace.Render(evs, participants(3, true)))
	return nil
}
