// Command benchdiff compares two `go test -bench` output files and
// prints per-benchmark deltas for time, bytes, and allocations — a
// self-contained stand-in for benchstat, so the perf-regression gate
// needs no tools outside this repo:
//
//	go test -bench . -benchmem ./internal/wire ./internal/transport > new.txt
//	go run ./cmd/benchdiff bench_baseline.txt new.txt
//
// Exit status 1 when any benchmark's allocs/op regressed by more than
// -tolerance (default 10%), so `make benchstat` fails on a hot-path
// regression. Time deltas are reported but never gate: wall-clock is too
// noisy on shared hosts, while allocation counts are deterministic.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result holds one benchmark's metrics (zero when a metric is absent).
type result struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	have        bool
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

func parse(path string) (map[string]result, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		// Strip the -GOMAXPROCS suffix so files from different hosts
		// compare.
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := out[name]
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp = v
			case "B/op":
				r.bytesPerOp = v
			case "allocs/op":
				r.allocsPerOp = v
			}
		}
		if !r.have {
			order = append(order, name)
		}
		r.have = true
		out[name] = r
	}
	return out, order, sc.Err()
}

func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "     ~"
		}
		return "  +inf"
	}
	return fmt.Sprintf("%+5.1f%%", 100*(new-old)/old)
}

func main() {
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional allocs/op regression before failing")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance 0.1] old.txt new.txt")
		os.Exit(2)
	}
	oldRes, order, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRes, newOrder, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	// Report benchmarks present in either file, old-file order first.
	seen := make(map[string]bool)
	for _, n := range order {
		seen[n] = true
	}
	for _, n := range newOrder {
		if !seen[n] {
			order = append(order, n)
		}
	}

	fmt.Printf("%-44s %12s %12s %7s   %9s %9s %7s\n",
		"benchmark", "old ns/op", "new ns/op", "Δtime", "old alloc", "new alloc", "Δalloc")
	regressed := false
	for _, name := range order {
		o, n := oldRes[name], newRes[name]
		if !o.have || !n.have {
			fmt.Printf("%-44s %s\n", name, "(only in one file)")
			continue
		}
		fmt.Printf("%-44s %12.1f %12.1f %7s   %9.0f %9.0f %7s\n",
			name, o.nsPerOp, n.nsPerOp, delta(o.nsPerOp, n.nsPerOp),
			o.allocsPerOp, n.allocsPerOp, delta(o.allocsPerOp, n.allocsPerOp))
		if n.allocsPerOp > o.allocsPerOp*(1+*tolerance)+0.5 {
			regressed = true
		}
	}
	if regressed {
		fmt.Println("\nFAIL: allocs/op regressed beyond tolerance")
		os.Exit(1)
	}
}
