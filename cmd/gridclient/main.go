// Command gridclient is a CLI client for a TCP-deployed replicated
// service (see cmd/replicad).
//
//	gridclient -peers 0=:7000,1=:7001,2=:7002 put greeting hello
//	gridclient -peers 0=:7000,1=:7001,2=:7002 get greeting
//	gridclient -peers 0=:7000,1=:7001,2=:7002 add counter 5
//	gridclient -peers 0=:7000,1=:7001,2=:7002 txn "add alice -30" "add bob 30"
//
// Subcommands (kv service): put <k> <v>, get <k>, del <k>, add <k> <n>,
// txn <op>... (each op in the shell-quoted mini-syntax above; commits at
// the end).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"gridrep"
)

func main() {
	peersFlag := flag.String("peers", "", "comma-separated id=host:port list for all replicas")
	id := flag.Uint("client", 1, "client ID (unique per concurrent client)")
	deadline := flag.Duration("deadline", 30*time.Second, "per-operation deadline")
	flag.Parse()
	args := flag.Args()
	if *peersFlag == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: gridclient -peers ... <put|get|del|add|txn> args...")
		os.Exit(2)
	}
	peers := make(map[gridrep.NodeID]string)
	for _, part := range strings.Split(*peersFlag, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			log.Fatalf("bad peer entry %q", part)
		}
		n, err := strconv.Atoi(kv[0])
		if err != nil {
			log.Fatalf("bad peer id %q", kv[0])
		}
		peers[gridrep.NodeID(n)] = kv[1]
	}

	cli, err := gridrep.Dial(gridrep.DialOptions{
		ID: uint32(*id), Replicas: peers, Deadline: *deadline,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	switch args[0] {
	case "txn":
		runTxn(cli, args[1:])
	default:
		op, isRead, err := parseOp(args)
		if err != nil {
			log.Fatal(err)
		}
		var res []byte
		if isRead {
			res, err = cli.Read(op)
		} else {
			res, err = cli.Write(op)
		}
		if err != nil {
			log.Fatal(err)
		}
		printResult(args[0], res)
	}
}

// parseOp turns CLI words into a kv operation payload.
func parseOp(args []string) (op []byte, isRead bool, err error) {
	switch args[0] {
	case "put":
		if len(args) != 3 {
			return nil, false, fmt.Errorf("usage: put <key> <value>")
		}
		return gridrep.KVPut(args[1], []byte(args[2])), false, nil
	case "get":
		if len(args) != 2 {
			return nil, false, fmt.Errorf("usage: get <key>")
		}
		return gridrep.KVGet(args[1]), true, nil
	case "del":
		if len(args) != 2 {
			return nil, false, fmt.Errorf("usage: del <key>")
		}
		return gridrep.KVDelete(args[1]), false, nil
	case "add":
		if len(args) != 3 {
			return nil, false, fmt.Errorf("usage: add <key> <delta>")
		}
		n, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return nil, false, fmt.Errorf("bad delta %q", args[2])
		}
		return gridrep.KVAdd(args[1], n), false, nil
	default:
		return nil, false, fmt.Errorf("unknown op %q", args[0])
	}
}

func runTxn(cli *gridrep.Client, ops []string) {
	if len(ops) == 0 {
		log.Fatal("txn: no operations given")
	}
	tx := cli.Begin()
	for _, raw := range ops {
		words := strings.Fields(raw)
		op, _, err := parseOp(words)
		if err != nil {
			tx.Abort()
			log.Fatalf("txn op %q: %v", raw, err)
		}
		res, err := tx.Do(op)
		if err != nil {
			// Abort before exiting: a failed op (a conflict, a
			// cross-group key) leaves the transaction open and its
			// locks held on the leader until a leader switch.
			tx.Abort()
			log.Fatalf("txn op %q: %v", raw, err)
		}
		printResult(words[0], res)
	}
	if err := tx.Commit(); err != nil {
		log.Fatalf("commit: %v", err)
	}
	fmt.Println("committed")
}

func printResult(verb string, res []byte) {
	switch verb {
	case "get":
		v, found := gridrep.KVReply(res)
		if !found {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s\n", v)
	case "add":
		n, _ := gridrep.KVInt(res)
		fmt.Println(n)
	default:
		fmt.Println("ok")
	}
}
