// Command soak runs a replicated key-value counter workload under
// continuous fault injection — leader switches (§3.6), replica crashes
// with recovery (§3.1), and message-loss bursts — then verifies the two
// properties that matter: every acknowledged increment was applied
// exactly once, and all replicas reconverged to identical state.
//
// -openloop swaps the closed-loop client pool for a Poisson arrival
// process through the admission gateway (DESIGN.md §15): arrivals keep
// coming at -rate regardless of what the faults do to the cluster, so
// outages turn into queueing at the edge and the gateway's shed/dedup
// machinery is exercised under crash-recovery rather than steady state.
//
//	go run ./cmd/soak -duration 10s -clients 4
//	go run ./cmd/soak -openloop -duration 10s -rate 2000
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"gridrep/internal/bench"
	"gridrep/internal/client"
	"gridrep/internal/cluster"
	"gridrep/internal/core"
	"gridrep/internal/failure"
	"gridrep/internal/gateway"
	"gridrep/internal/netem"
	"gridrep/internal/service"
)

func main() {
	duration := flag.Duration("duration", 10*time.Second, "how long to run the workload")
	clients := flag.Int("clients", 4, "concurrent closed-loop clients")
	every := flag.Duration("every", 300*time.Millisecond, "fault injection period")
	seed := flag.Int64("seed", 42, "fault schedule seed")
	openloop := flag.Bool("openloop", false, "open-loop (Poisson) offered load through the admission gateway instead of the closed-loop pool")
	rate := flag.Float64("rate", 2000, "open-loop offered load in req/s (with -openloop)")
	workers := flag.Int("workers", 256, "open-loop session pool; sized past the edge budget so faults produce real sheds (with -openloop)")
	profile := flag.String("profile", "", "netem profile for the in-process fabric (see -profile list; e.g. wan3 soaks the geo spread)")
	profileScale := flag.Float64("profile-scale", 1, "latency scale factor applied to the chosen profile (0.05 compresses wan3 for quick runs)")
	near := flag.Bool("near", false, "serve client reads from the nearest replica's confirm quorum (DESIGN.md §16)")
	rttPlace := flag.Bool("rtt-placement", false, "feed measured per-peer RTT into leader placement so Ω prefers the lowest-aggregate-RTT replica")
	flag.Parse()

	cfg := cluster.Config{
		Service:           service.KVFactory,
		HeartbeatInterval: 5 * time.Millisecond,
		ClientRetryEvery:  50 * time.Millisecond,
		ClientDeadline:    30 * time.Second,
		NearReads:         *near,
		RTTPlacement:      *rttPlace,
	}
	if *profile != "" {
		p, err := netem.ProfileByName(*profile)
		if err != nil {
			log.Fatal(err)
		}
		if *profileScale != 1 {
			switch *profile {
			case "wan3":
				p = netem.WAN3Scaled(*profileScale)
			case "wan5":
				p = netem.WAN5Scaled(*profileScale)
			default:
				log.Fatalf("-profile-scale is only supported for the geo spreads (wan3, wan5), not %q", *profile)
			}
		}
		cfg.Profile = p
		// WAN geographies need timeouts derived from the profile's
		// worst one-way delay, not the LAN defaults above.
		cfg.HeartbeatInterval = 0
		cfg.ClientRetryEvery = 0
	}
	if *openloop {
		cfg.Gateway = &gateway.Config{}
	}
	c, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if _, err := c.WaitForLeader(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up; injecting faults every %v for %v\n", *every, *duration)

	inj := failure.New(c, *seed)
	plan := failure.Plan{
		Every: *every,
		Weights: map[failure.Action]int{
			failure.ActionLeaderSwitch: 3,
			failure.ActionCrashBackup:  2,
			failure.ActionCrashLeader:  1,
			failure.ActionLossBurst:    2,
		},
		RecoverAfter: *every / 2,
		LossProb:     0.25,
		BurstLen:     *every / 4,
	}

	// acked is the count of increments known applied exactly once;
	// ambiguous counts outcomes (timeouts, sheds) whose request may or
	// may not have executed — the counter check below brackets with them.
	var acked, ambiguous int64
	if *openloop {
		acked, ambiguous = runOpenLoop(c, inj, plan, *rate, *duration, *workers)
	} else {
		acked, ambiguous = runClosedLoop(c, inj, plan, *clients, *duration)
	}

	// Recover everyone and verify.
	for _, id := range c.IDs() {
		if _, ok := c.Replica(id); !ok {
			if err := c.Restart(id); err != nil {
				log.Fatal(err)
			}
		}
	}
	if _, err := c.WaitForLeader(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	verifier, err := c.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer verifier.Close()
	res, err := verifier.Read(service.KVGet("ctr"))
	if err != nil {
		log.Fatal(err)
	}
	got, _ := service.KVInt(res)
	lo, hi := acked, acked+ambiguous
	fmt.Printf("counter = %d (acknowledged: %d, ambiguous: %d)\n", got, acked, ambiguous)
	if got < lo || got > hi {
		log.Fatalf("EXACTLY-ONCE VIOLATED: counter outside [%d, %d]", lo, hi)
	}

	// Convergence: wait until all replicas hold identical state.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var snaps [][]byte
		ok := true
		for _, id := range c.IDs() {
			rep, live := c.Replica(id)
			if !live {
				ok = false
				break
			}
			var snap []byte
			var chosen, applied uint64
			rep.Inspect(func(r *core.Replica) {
				snap = r.Service().Snapshot()
				chosen, applied = r.Chosen(), r.Applied()
			})
			if chosen != applied {
				ok = false
				break
			}
			snaps = append(snaps, snap)
		}
		if ok {
			for _, s := range snaps {
				if !bytes.Equal(s, snaps[0]) {
					ok = false
				}
			}
		}
		if ok && len(snaps) == len(c.IDs()) {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("CONVERGENCE FAILED: replicas did not reconverge")
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("verified: exactly-once execution and replica convergence. PASS")
}

// runClosedLoop is the original soak workload: a fixed pool of
// closed-loop clients incrementing one counter as fast as faults allow.
func runClosedLoop(c *cluster.Cluster, inj *failure.Injector, plan failure.Plan, clients int, duration time.Duration) (acked, ambiguous int64) {
	inj.Start(plan)
	var oks, timeouts atomic.Int64
	var wg sync.WaitGroup
	stopAt := time.Now().Add(duration)
	for i := 0; i < clients; i++ {
		cli, err := c.NewClient()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(cli *client.Client) {
			defer wg.Done()
			defer cli.Close()
			for time.Now().Before(stopAt) {
				_, err := cli.Write(service.KVAdd("ctr", 1))
				switch {
				case err == nil:
					oks.Add(1)
				case errors.Is(err, client.ErrTimeout):
					// Ambiguous outcome; this client stops so its
					// possible in-flight retransmit stays bounded.
					timeouts.Add(1)
					return
				default:
					log.Fatalf("workload error: %v", err)
				}
			}
		}(cli)
	}
	wg.Wait()
	rep := inj.Stop()
	fmt.Printf("injected: %d leader switches, %d crashes, %d restarts, %d loss bursts\n",
		rep.Switches, rep.Crashes, rep.Restarts, rep.LossBursts)
	fmt.Printf("workload: %d acknowledged increments, %d client timeouts\n",
		oks.Load(), timeouts.Load())
	return oks.Load(), timeouts.Load()
}

// runOpenLoop offers Poisson arrivals at a fixed rate through the
// gateway while faults land. A shed is ambiguous here, not a guarantee
// of non-execution: the request was broadcast, so a backup's edge can
// shed it while the leader's edge admits and executes it — the typed
// overload only promises the CLIENT saw no ack.
func runOpenLoop(c *cluster.Cluster, inj *failure.Injector, plan failure.Plan, rate float64, duration time.Duration, workers int) (acked, ambiguous int64) {
	type outcome struct {
		p   bench.OpenLoopPoint
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		p, err := bench.MeasureOpenLoop(c, bench.OpenLoopConfig{
			Class:    bench.ClassWrite,
			Rate:     rate,
			Duration: duration,
			Workers:  workers,
			Deadline: 5 * time.Second,
			OpFor:    func(int) []byte { return service.KVAdd("ctr", 1) },
		})
		done <- outcome{p, err}
	}()
	// Hold the first fault until the harness's warmup has finished on a
	// healthy cluster. Warmup ops are real increments — exactly one
	// success per worker, counted below — but a warmup attempt that
	// timed out under a fault and was retried would apply outside that
	// accounting and break the counter bracket.
	time.Sleep(2 * time.Second)
	inj.Start(plan)
	o := <-done
	rep := inj.Stop()
	if o.err != nil {
		log.Fatalf("open-loop workload: %v", o.err)
	}
	if o.p.Errors > 0 {
		log.Fatalf("open-loop workload: %d hard errors: %+v", o.p.Errors, o.p)
	}
	fmt.Printf("injected: %d leader switches, %d crashes, %d restarts, %d loss bursts\n",
		rep.Switches, rep.Crashes, rep.Restarts, rep.LossBursts)
	fmt.Printf("workload: offered %.0f/s, goodput %.0f/s, %d acked, %d sheds, %d timeouts, %d unserved, p95 %.1fms\n",
		o.p.OfferedPerSec, o.p.GoodputPerSec, o.p.OKs, o.p.Sheds, o.p.Timeouts, o.p.Unserved, o.p.LatP95MS)
	// Stats sum over the currently-running edges only: a crashed node
	// comes back with a fresh gateway, so these undercount the run.
	gs := c.GatewayStats()
	fmt.Printf("edge (live nodes): admitted=%d queued=%d sheds=%d dedup=%d dup_pass=%d expired=%d\n",
		gs.Admitted, gs.Queued, gs.Sheds(), gs.DedupHits, gs.DupPassthrough, gs.ExpiredInFlight)
	// One warmup success per worker precedes the measured window.
	return int64(o.p.OKs + workers), int64(o.p.Sheds + o.p.Timeouts)
}
