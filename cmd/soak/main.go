// Command soak runs a replicated key-value counter workload under
// continuous fault injection — leader switches (§3.6), replica crashes
// with recovery (§3.1), and message-loss bursts — then verifies the two
// properties that matter: every acknowledged increment was applied
// exactly once, and all replicas reconverged to identical state.
//
//	go run ./cmd/soak -duration 10s -clients 4
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/cluster"
	"gridrep/internal/core"
	"gridrep/internal/failure"
	"gridrep/internal/service"
)

func main() {
	duration := flag.Duration("duration", 10*time.Second, "how long to run the workload")
	clients := flag.Int("clients", 4, "concurrent closed-loop clients")
	every := flag.Duration("every", 300*time.Millisecond, "fault injection period")
	seed := flag.Int64("seed", 42, "fault schedule seed")
	flag.Parse()

	c, err := cluster.New(cluster.Config{
		Service:           service.KVFactory,
		HeartbeatInterval: 5 * time.Millisecond,
		ClientRetryEvery:  50 * time.Millisecond,
		ClientDeadline:    30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if _, err := c.WaitForLeader(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up; injecting faults every %v for %v\n", *every, *duration)

	inj := failure.New(c, *seed)
	inj.Start(failure.Plan{
		Every: *every,
		Weights: map[failure.Action]int{
			failure.ActionLeaderSwitch: 3,
			failure.ActionCrashBackup:  2,
			failure.ActionCrashLeader:  1,
			failure.ActionLossBurst:    2,
		},
		RecoverAfter: *every / 2,
		LossProb:     0.25,
		BurstLen:     *every / 4,
	})

	var acked, timeouts atomic.Int64
	var wg sync.WaitGroup
	stopAt := time.Now().Add(*duration)
	for i := 0; i < *clients; i++ {
		cli, err := c.NewClient()
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(cli *client.Client) {
			defer wg.Done()
			defer cli.Close()
			for time.Now().Before(stopAt) {
				_, err := cli.Write(service.KVAdd("ctr", 1))
				switch {
				case err == nil:
					acked.Add(1)
				case errors.Is(err, client.ErrTimeout):
					// Ambiguous outcome; this client stops so its
					// possible in-flight retransmit stays bounded.
					timeouts.Add(1)
					return
				default:
					log.Fatalf("workload error: %v", err)
				}
			}
		}(cli)
	}
	wg.Wait()
	rep := inj.Stop()
	fmt.Printf("injected: %d leader switches, %d crashes, %d restarts, %d loss bursts\n",
		rep.Switches, rep.Crashes, rep.Restarts, rep.LossBursts)
	fmt.Printf("workload: %d acknowledged increments, %d client timeouts\n",
		acked.Load(), timeouts.Load())

	// Recover everyone and verify.
	for _, id := range c.IDs() {
		if _, ok := c.Replica(id); !ok {
			if err := c.Restart(id); err != nil {
				log.Fatal(err)
			}
		}
	}
	if _, err := c.WaitForLeader(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	verifier, err := c.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	defer verifier.Close()
	res, err := verifier.Read(service.KVGet("ctr"))
	if err != nil {
		log.Fatal(err)
	}
	got, _ := service.KVInt(res)
	lo, hi := acked.Load(), acked.Load()+timeouts.Load()
	fmt.Printf("counter = %d (acknowledged: %d, ambiguous timeouts: %d)\n", got, acked.Load(), timeouts.Load())
	if got < lo || got > hi {
		log.Fatalf("EXACTLY-ONCE VIOLATED: counter outside [%d, %d]", lo, hi)
	}

	// Convergence: wait until all replicas hold identical state.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var snaps [][]byte
		ok := true
		for _, id := range c.IDs() {
			rep, live := c.Replica(id)
			if !live {
				ok = false
				break
			}
			var snap []byte
			var chosen, applied uint64
			rep.Inspect(func(r *core.Replica) {
				snap = r.Service().Snapshot()
				chosen, applied = r.Chosen(), r.Applied()
			})
			if chosen != applied {
				ok = false
				break
			}
			snaps = append(snaps, snap)
		}
		if ok {
			for _, s := range snaps {
				if !bytes.Equal(s, snaps[0]) {
					ok = false
				}
			}
		}
		if ok && len(snaps) == len(c.IDs()) {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("CONVERGENCE FAILED: replicas did not reconverge")
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("verified: exactly-once execution and replica convergence. PASS")
}
