package main

import (
	"testing"

	"gridrep"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("0=127.0.0.1:7000,1=host:7001,2=:7002")
	if err != nil {
		t.Fatal(err)
	}
	want := map[gridrep.NodeID]string{
		0: "127.0.0.1:7000",
		1: "host:7001",
		2: ":7002",
	}
	if len(peers) != len(want) {
		t.Fatalf("peers = %v", peers)
	}
	for id, addr := range want {
		if peers[id] != addr {
			t.Errorf("peers[%v] = %q, want %q", id, peers[id], addr)
		}
	}
}

func TestParsePeersErrors(t *testing.T) {
	for _, in := range []string{"", "nonsense", "x=host:1", "0only"} {
		if _, err := ParsePeers(in); err == nil {
			t.Errorf("ParsePeers(%q) accepted", in)
		}
	}
}

func TestSplitComma(t *testing.T) {
	got := splitComma("a,b,,c,")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitComma = %v", got)
	}
	if out := splitComma(""); len(out) != 0 {
		t.Fatalf("splitComma(\"\") = %v", out)
	}
}
