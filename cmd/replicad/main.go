// Command replicad runs one service replica over real TCP, the
// multi-process deployment mode (the paper's prototype likewise spoke raw
// TCP between all processes, §4).
//
// Start a 3-replica key-value service on one machine:
//
//	replicad -id 0 -peers 0=:7000,1=:7001,2=:7002 -service kv &
//	replicad -id 1 -peers 0=:7000,1=:7001,2=:7002 -service kv &
//	replicad -id 2 -peers 0=:7000,1=:7001,2=:7002 -service kv &
//
// Then talk to it with gridclient. Pass -wal to survive crashes.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"gridrep"
)

func main() {
	id := flag.Uint("id", 0, "this replica's ID (index into -peers)")
	peersFlag := flag.String("peers", "", "comma-separated id=host:port list for all replicas")
	svcName := flag.String("service", "kv", "service to replicate: kv, broker, sched, noop")
	groups := flag.Int("groups", 1, "independent consensus groups hosted by this process (sharded key space; 1 = classic single-group deployment)")
	wal := flag.String("wal", "", "write-ahead log path (empty = in-memory storage)")
	syncFlag := flag.String("sync", "batch", "WAL sync policy: always, batch, or interval")
	syncEvery := flag.Duration("syncinterval", 0, "fsync period for -sync interval (default 2ms)")
	seed := flag.Int64("seed", time.Now().UnixNano(), "RNG seed for nondeterministic services")
	hb := flag.Duration("heartbeat", 25*time.Millisecond, "Ω heartbeat interval")
	pipeline := flag.Int("pipeline", 1, "max accept waves in flight while leading (1 = serial protocol)")
	commitFlush := flag.Duration("commit-flush", 0, "commit notification batching window (0 = default 1ms; widen on WAN links)")
	rttPlace := flag.Bool("rtt-placement", false, "fold measured peer RTTs into leader placement: the cluster converges on the best-connected replica regardless of boot order (DESIGN.md 16)")
	wireCompat := flag.Bool("wire-compat", false, "emit only pre-geo wire encodings so not-yet-upgraded replicas keep decoding this one (rolling upgrades); overrides -rtt-placement, near reads fall back to the leader path")
	join := flag.Bool("join", false, "join a running cluster as a learner: catch up via snapshot streaming, then get promoted to voter by a committed config entry")
	snapEvery := flag.Uint64("snapshot-every", 0, "durable service snapshot cadence in applied instances (0 = default 4096)")
	pruneKeep := flag.Uint64("prune-keep", 0, "WAL instances retained below the cluster-min applied watermark (0 = default 1024)")
	gatewayOn := flag.Bool("gateway", false, "enable the client-facing edge: admission control, per-tenant fair queueing, typed overload sheds, session dedup window")
	gwInflight := flag.Int("gateway-inflight", 0, "global admitted-but-unanswered budget (0 = pipeline depth x groups x 64)")
	gwQueue := flag.Int("gateway-queue", 0, "per-tenant fair-queue length (0 = 2x the in-flight budget)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate in requests/second (0 = no per-tenant throttle)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant token bucket capacity (0 = max(16, in-flight budget))")
	statsEvery := flag.Duration("stats", 0, "log transport and replica counters at this interval (0 = off)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text; ?format=json) and /healthz on this host:port (empty = off)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file (stopped on shutdown)")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file on shutdown")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
			f.Close()
		}()
	}

	peers, err := ParsePeers(*peersFlag)
	if err != nil {
		log.Fatal(err)
	}
	if _, ok := peers[gridrep.NodeID(*id)]; !ok {
		log.Fatalf("replicad: -id %d not present in -peers", *id)
	}

	// Each consensus group owns an independent slice of the key space,
	// so every group gets its own service instance.
	var newSvc gridrep.ServiceFactory
	switch *svcName {
	case "kv":
		newSvc = func() gridrep.Service { return gridrep.NewKV() }
	case "broker":
		newSvc = func() gridrep.Service { return gridrep.NewBroker(*seed) }
	case "sched":
		newSvc = func() gridrep.Service { return gridrep.NewSched() }
	case "noop":
		newSvc = func() gridrep.Service { return gridrep.NewNoop() }
	default:
		log.Fatalf("replicad: unknown service %q", *svcName)
	}
	pol, err := gridrep.ParseSyncPolicy(*syncFlag)
	if err != nil {
		log.Fatalf("replicad: %v", err)
	}
	sopts := gridrep.ServerOptions{
		ID:                gridrep.NodeID(*id),
		Peers:             peers,
		NewService:        newSvc,
		Groups:            *groups,
		WALPath:           *wal,
		SyncPolicy:        pol,
		SyncEvery:         *syncEvery,
		HeartbeatInterval: *hb,
		PipelineDepth:     *pipeline,
		CommitFlushDelay:  *commitFlush,
		RTTPlacement:      *rttPlace,
		WireCompat:        *wireCompat,
		Join:              *join,
		SnapshotEvery:     *snapEvery,
		PruneKeep:         *pruneKeep,
	}
	if *gatewayOn {
		sopts.Gateway = &gridrep.GatewayOptions{
			MaxInFlight: *gwInflight,
			QueueLen:    *gwQueue,
			TenantRate:  *tenantRate,
			TenantBurst: *tenantBurst,
		}
	}
	srv, err := gridrep.ListenAndServe(sopts)
	if err != nil {
		log.Fatal(err)
	}
	mode := "serving"
	if *join {
		mode = "joining as learner,"
	}
	if *groups > 1 {
		fmt.Printf("replica %d %s %s on %s (peers: %d, groups: %d)\n", *id, mode, *svcName, srv.Addr(), len(peers), *groups)
	} else {
		fmt.Printf("replica %d %s %s on %s (peers: %d)\n", *id, mode, *svcName, srv.Addr(), len(peers))
	}

	var dbg *http.Server
	if *metricsAddr != "" {
		dbg = &http.Server{Addr: *metricsAddr, Handler: srv.DebugHandler()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("replicad: metrics endpoint: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics (health: /healthz)\n", *metricsAddr)
	}

	stopStats := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			ticker := time.NewTicker(*statsEvery)
			defer ticker.Stop()
			for {
				select {
				case <-stopStats:
					return
				case <-ticker.C:
					st := srv.TransportStats()
					log.Printf("transport: peers=%d depth=%d dials=%d fails=%d reconnects=%d sent=%d recvd=%d rtt=%v drops{queue=%d route=%d write=%d recv=%d reply=%d(shed=%d slow=%d)}",
						st.ConnectedPeers, st.QueueDepth, st.Dials, st.DialFails,
						st.Reconnects, st.Sent, st.Recvd, st.LastRTT,
						st.DropsQueueFull, st.DropsNoRoute, st.DropsWriteFail, st.DropsRecvOverflow,
						st.DropsReplyOverflow, st.DropsReplyShed, st.DropsReplySlowClient)
					if *gatewayOn {
						gs := srv.GatewayStats()
						log.Printf("gateway: admitted=%d queued=%d dedup=%d dup_pass=%d sheds{throttle=%d queue_full=%d aged=%d} expired=%d inflight=%d depth=%d sessions=%d",
							gs.Admitted, gs.Queued, gs.DedupHits, gs.DupPassthrough,
							gs.ShedThrottle, gs.ShedQueueFull, gs.ShedQueueAged,
							gs.ExpiredInFlight, gs.InFlight, gs.QueueDepth, gs.Sessions)
					}
					rs := srv.ReplicaStats()
					log.Printf("replica: pipeline=%d inflight=%d/%d waves{started=%d committed=%d} rollbacks{demotions=%d waves=%d recovery_discarded=%d} deferred_drops=%d",
						rs.PipelineDepth, rs.WavesInFlight, rs.MaxWavesInFlight,
						rs.WavesStarted, rs.WavesCommitted,
						rs.SpecRollbacks, rs.WavesRolledBack, rs.RecoveryDiscarded,
						rs.DeferredDrops)
				}
			}
		}()
	}

	// Graceful shutdown on SIGTERM/SIGINT: stop the protocol loop, flush
	// the staged WAL batch, join any in-flight snapshot rewrite (the
	// store close does both), and close the metrics listener — so a
	// supervised restart replays the whole local log instead of losing
	// the staged tail to the crash model.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	close(stopStats)
	st := srv.TransportStats()
	log.Printf("transport final: dials=%d reconnects=%d drops=%d", st.Dials, st.Reconnects, st.Drops())
	if dbg != nil {
		dbg.Close()
	}
	if err := srv.Shutdown(); err != nil {
		log.Printf("replicad: shutdown: %v", err)
	}
}

// ParsePeers parses "0=host:port,1=host:port,..." into an address book.
func ParsePeers(s string) (map[gridrep.NodeID]string, error) {
	if s == "" {
		return nil, fmt.Errorf("replicad: -peers is required")
	}
	out := make(map[gridrep.NodeID]string)
	for _, part := range splitComma(s) {
		var id uint32
		var addr string
		if n, err := fmt.Sscanf(part, "%d=%s", &id, &addr); n != 2 || err != nil {
			return nil, fmt.Errorf("replicad: bad peer entry %q (want id=host:port)", part)
		}
		out[gridrep.NodeID(id)] = addr
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
