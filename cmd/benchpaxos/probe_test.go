package main

import (
	"sync"
	"testing"
	"time"

	"gridrep/internal/cluster"
	"gridrep/internal/netem"
	"gridrep/internal/storage"
	"gridrep/internal/wire"
)

// TestProbeWaveFragmentation reports waves started, average batch size,
// and leader WAL flush/sync counts per pipeline depth under a fixed
// closed-loop write load — the diagnostic that exposed (and now guards)
// speculative batch fragmentation: without the launch gate in
// maybeStartWave, depth 4 runs 2-3× the waves of depth 1 with
// near-singleton batches. Run with -v for the numbers:
//
//	go test -run TestProbeWaveFragmentation -v ./cmd/benchpaxos
func TestProbeWaveFragmentation(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	var serialWaves uint64
	for _, depth := range []int{1, 4} {
		dir := t.TempDir()
		stores := map[wire.NodeID]storage.Store{}
		for i := 0; i < 3; i++ {
			fs, err := storage.OpenFile(dir + "/r" + string(rune('0'+i)) + ".wal")
			if err != nil {
				t.Fatal(err)
			}
			stores[wire.NodeID(i)] = fs
		}
		cfg := cluster.Config{N: 3, Profile: netem.Sysnet(), Seed: 1,
			ClientDeadline: 60 * time.Second, PipelineDepth: depth, Stores: stores}
		c, err := cluster.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitForLeader(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		const writers, each = 8, 250
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			cli, err := c.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer cli.Close()
				for i := 0; i < each; i++ {
					if _, err := cli.Write([]byte("x")); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		el := time.Since(start)
		lead, _ := c.Leader()
		rep, _ := c.Replica(lead)
		st := rep.Stats()
		fs := stores[lead].(*storage.File).Stats()
		t.Logf("depth=%d: %.0f req/s, waves=%d avg_batch=%.2f max_inflight=%d leader_wal{batches=%d syncs=%d records=%d}",
			depth, float64(writers*each)/el.Seconds(), st.WavesStarted,
			float64(writers*each)/float64(st.WavesStarted), st.MaxWavesInFlight,
			fs.Batches, fs.Syncs, fs.Records)
		if st.MaxWavesInFlight > int64(depth) {
			t.Errorf("depth=%d: %d waves in flight exceeds PipelineDepth", depth, st.MaxWavesInFlight)
		}
		// The launch gate must hold batching at the serial schedule's
		// size: the whole run is writers×each requests, and the serial
		// protocol needs at most one wave per round trip. A fragmenting
		// leader (the pre-gate failure mode) started 2-3× the serial
		// wave count; allow 25% slack for the cold-start ramp.
		if depth > 1 && st.WavesStarted > serialWaves*5/4 {
			t.Errorf("depth=%d: %d waves for %d requests (serial took %d) — speculative batch fragmentation",
				depth, st.WavesStarted, writers*each, serialWaves)
		}
		if depth == 1 {
			serialWaves = st.WavesStarted
		}
		c.Close()
	}
}
