// Command benchpaxos regenerates every quantitative result of the
// paper's evaluation (§4): the Sysnet / Berkeley→Princeton / WAN response
// times, the throughput curves of Figures 5-8, Table 1's transaction
// response times, the transaction throughput curves of Figure 9, and the
// t>1 ablation of §4.3.
//
//	go run ./cmd/benchpaxos -exp all          # everything (slow)
//	go run ./cmd/benchpaxos -exp rrt-sysnet   # one experiment
//	go run ./cmd/benchpaxos -exp all -quick   # CI smoke: ~30s full suite
//	go run ./cmd/benchpaxos -exp fig6 -json out.json
//
// Experiment IDs: rrt-sysnet, fig5, fig6, rrt-b2p, fig7, rrt-wan, fig8,
// table1, fig9a, fig9b, t2, pipeline, fig6-sharded, shard-sweep,
// multicore-sweep, fig-overload, fig-wan.
//
// -groups N runs every cluster with N consensus groups per process
// (DESIGN.md §13); fig6-sharded and shard-sweep exercise sharding
// explicitly, and -gomaxprocs widens the scheduler for the sweep.
//
// -quick shrinks both the sample counts and the client grids so the full
// suite finishes in tens of seconds while preserving every paper-shape
// criterion (ordering of the three request classes, the Figure 6 knee,
// the B2P coincidence, the WAN read/write gap). Defaults keep the paper
// parameters. -json writes the same numbers machine-readably, one object
// per experiment, for the repo's BENCH_*.json perf trajectory.
// -cpuprofile/-memprofile capture pprof profiles of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"sort"

	"gridrep/internal/bench"
	"gridrep/internal/client"
	"gridrep/internal/cluster"
	"gridrep/internal/gateway"
	"gridrep/internal/metrics"
	"gridrep/internal/netem"
	"gridrep/internal/service"
	"gridrep/internal/storage"
	"gridrep/internal/wire"
)

var (
	quick      = flag.Bool("quick", false, "reduce sample counts and client grids for a fast smoke run")
	samples    = flag.Int("samples", 0, "override RRT sample count (0 = default)")
	jsonPath   = flag.String("json", "", "write machine-readable results to this file")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")

	// Durable mode: every replica runs over a real storage.File WAL
	// (Sync on) in a temp dir, so the numbers include the fsync path the
	// in-memory default hides. -nopersist is the before-side of the
	// group-commit comparison: per-record inline fsync on the event
	// loop, the pre-durability-pipeline behavior.
	durable    = flag.Bool("durable", false, "run over file-backed WALs (storage.File, Sync on) in a temp dir")
	syncPolicy = flag.String("syncpolicy", "batch", "durable-mode sync policy: always|batch|interval")
	syncEvery  = flag.Duration("syncinterval", 0, "durable-mode fsync interval for -syncpolicy interval (default 2ms)")
	noPersist  = flag.Bool("nopersist", false, "durable-mode ablation: inline per-record fsync, no persister (the pre-group-commit baseline)")

	// Pipelining: -pipeline sets PipelineDepth for every cluster an
	// experiment builds (1 = the paper's serial wave protocol); the
	// dedicated `pipeline` experiment sweeps depths itself.
	pipeline = flag.Int("pipeline", 1, "accept-wave pipeline depth for all experiments (1 = serial)")

	// Sharding (DESIGN.md §13): -groups sets the consensus-group count
	// for every cluster an experiment builds (1 = the classic
	// single-group deployment); fig6-sharded and shard-sweep pick their
	// own counts. -gomaxprocs overrides the Go scheduler's processor
	// count — sharded clusters host N independent event loops per
	// process, so they can use more than one core.
	groups       = flag.Int("groups", 1, "consensus groups per replica process for all experiments")
	gomaxprocsFl = flag.Int("gomaxprocs", 0, "override GOMAXPROCS for the whole run (0 = runtime default)")

	// Overload (PR 9): fig-overload sweeps open-loop offered load past
	// saturation with the admission-controlling gateway on and/or off.
	admission = flag.String("admission", "both", "fig-overload: run with the gateway's admission control on, off, or both")
)

// scale returns n, or a reduced count under -quick.
func scale(n int) int {
	if *quick {
		if n > 100 {
			return n / 20
		}
		if n > 10 {
			return n / 4
		}
	}
	return n
}

// grid returns the full client grid, or first/middle/last under -quick.
func grid(full []int) []int {
	if !*quick || len(full) <= 3 {
		return full
	}
	return []int{full[0], full[len(full)/2], full[len(full)-1]}
}

func rrtSamples() int {
	if *samples > 0 {
		return *samples
	}
	if *quick {
		return 30
	}
	return 400
}

var (
	durableMu   sync.Mutex
	durableRoot string
	durableSeq  int
)

// clusterConfig assembles the shared cluster parameters, including the
// -durable WAL directory (a fresh subdir per cluster, removed at exit).
func clusterConfig(profile netem.Profile, n int) cluster.Config {
	cfg := cluster.Config{N: n, Profile: profile, Seed: 1,
		ClientDeadline: 120 * time.Second, PipelineDepth: *pipeline,
		Groups: *groups}
	if !*durable {
		return cfg
	}
	pol, err := storage.ParseSyncPolicy(*syncPolicy)
	if err != nil {
		log.Fatal(err)
	}
	durableMu.Lock()
	if durableRoot == "" {
		dir, err := os.MkdirTemp("", "benchpaxos-wal-")
		if err != nil {
			log.Fatal(err)
		}
		durableRoot = dir
	}
	durableSeq++
	cfg.DataDir = filepath.Join(durableRoot, fmt.Sprintf("c%03d", durableSeq))
	durableMu.Unlock()
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		log.Fatal(err)
	}
	cfg.SyncPolicy = pol
	cfg.SyncInterval = *syncEvery
	cfg.NoPersist = *noPersist
	return cfg
}

func newCluster(profile netem.Profile, n int) *cluster.Cluster {
	return startCluster(clusterConfig(profile, n))
}

func startCluster(cfg cluster.Config) *cluster.Cluster {
	c, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if c.Groups() > 1 {
		if _, err := c.WaitForAllLeaders(30 * time.Second); err != nil {
			log.Fatal(err)
		}
	} else if _, err := c.WaitForLeader(15 * time.Second); err != nil {
		log.Fatal(err)
	}
	return c
}

// --- machine-readable results (-json) ---

// RRTResult is one response-time row (per request class or txn mode).
type RRTResult struct {
	Label  string  `json:"label"`
	N      int     `json:"n"`
	MeanMS float64 `json:"mean_ms"`
	CI99   float64 `json:"ci99_ms"`
	P50    float64 `json:"p50_ms"`
	P95    float64 `json:"p95_ms"`
}

// SeriesPoint is one (clients, throughput) sample, with the run's
// client-observed latency quantiles (zero/omitted for txn series, which
// predate the latency capture).
type SeriesPoint struct {
	Clients   int     `json:"clients"`
	PerSec    float64 `json:"per_sec"`
	LatMeanMS float64 `json:"lat_mean_ms,omitempty"`
	LatP50MS  float64 `json:"lat_p50_ms,omitempty"`
	LatP95MS  float64 `json:"lat_p95_ms,omitempty"`
	LatP99MS  float64 `json:"lat_p99_ms,omitempty"`
}

// SeriesResult is one throughput curve of a figure. GoMaxProcs records
// the effective scheduler width while the series ran — sweeps that
// mutate GOMAXPROCS mid-experiment (shard-sweep, multicore-sweep) stamp
// it per row, because the report header only captures the value at
// startup.
type SeriesResult struct {
	Label      string        `json:"label"`
	GoMaxProcs int           `json:"gomaxprocs,omitempty"`
	Points     []SeriesPoint `json:"points"`
}

// PhaseResult summarizes one leader-side phase latency histogram after a
// write series — the paper-style breakdown of where a request's time
// goes (execute, propose→quorum, commit, admission→reply, WAL fsync).
type PhaseResult struct {
	Phase  string  `json:"phase"`
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// OverloadPoint is one open-loop rate point of fig-overload: offered
// load (a multiple of the measured closed-loop saturation throughput)
// against goodput, shed fraction, and arrival-to-ack latency.
type OverloadPoint struct {
	Label         string  `json:"label"` // admission=on | admission=off
	RateMultiple  float64 `json:"rate_multiple"`
	TargetRate    float64 `json:"target_rate_per_sec"`
	OfferedPerSec float64 `json:"offered_per_sec"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	ShedFrac      float64 `json:"shed_frac"`
	EdgeSheds     int     `json:"edge_sheds,omitempty"`
	Timeouts      int     `json:"timeouts"`
	Unserved      int     `json:"unserved"`
	LatP50MS      float64 `json:"lat_p50_ms"`
	LatP95MS      float64 `json:"lat_p95_ms"`
	LatP99MS      float64 `json:"lat_p99_ms"`
}

// ExpResult is everything one experiment measured. GoMaxProcs is the
// scheduler width when the experiment started (per-row values live on
// SeriesResult for experiments that sweep it).
type ExpResult struct {
	ID         string          `json:"id"`
	Paper      string          `json:"paper"`
	ElapsedS   float64         `json:"elapsed_s"`
	GoMaxProcs int             `json:"gomaxprocs,omitempty"`
	RRT        []RRTResult     `json:"rrt,omitempty"`
	Series     []SeriesResult  `json:"series,omitempty"`
	Phases     []PhaseResult   `json:"phases,omitempty"`
	Overload   []OverloadPoint `json:"overload,omitempty"`
	Replicas   []int           `json:"replicas,omitempty"`
}

// Report is the top-level -json document.
type Report struct {
	GeneratedAt   string      `json:"generated_at"`
	Quick         bool        `json:"quick"`
	GoMaxProcs    int         `json:"gomaxprocs"`
	Durable       bool        `json:"durable,omitempty"`
	SyncPolicy    string      `json:"sync_policy,omitempty"`
	NoPersist     bool        `json:"no_persist,omitempty"`
	PipelineDepth int         `json:"pipeline_depth,omitempty"`
	Groups        int         `json:"groups,omitempty"`
	Experiments   []ExpResult `json:"experiments"`
}

var report = Report{}

func statsRow(label string, s bench.Stats) RRTResult {
	return RRTResult{Label: label, N: s.N, MeanMS: s.Mean, CI99: s.CI99, P50: s.P50, P95: s.P95}
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see package doc), comma-separated list, or 'all'")
	flag.Parse()
	want := make(map[string]bool)
	for _, id := range strings.Split(*exp, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}

	exps := []struct {
		id    string
		run   func(res *ExpResult)
		paper string
	}{
		{"rrt-sysnet", rrtSysnet, "§4.1 text: 0.181 / 0.263 / 0.338 ms"},
		{"fig5", fig5, "Figure 5: throughput on Sysnet, 1-16 clients"},
		{"fig6", fig6, "Figure 6: throughput, 8-128 clients (peak 32-64)"},
		{"rrt-b2p", rrtB2P, "§4.1 text: 91.85 / 92.79 / 93.13 ms"},
		{"fig7", fig7, "Figure 7: throughput Berkeley→Princeton"},
		{"rrt-wan", rrtWAN, "§4.1 text: 70.82 / 75.49 / 106.73 ms"},
		{"fig8", fig8, "Figure 8: throughput on WAN"},
		{"table1", table1, "Table 1: transaction response time"},
		{"fig9a", fig9a, "Figure 9a: txn throughput, 3 req/txn"},
		{"fig9b", fig9b, "Figure 9b: txn throughput, 5 req/txn"},
		{"t2", t2, "§4.3: replica-count ablation on WAN"},
		{"pipeline", pipelineSweep, "PR 4: write throughput vs PipelineDepth (batching-vs-pipelining tradeoff)"},
		{"fig6-sharded", fig6Sharded, "PR 7: Figure 6 write curve, single-group vs sharded (DESIGN.md §13)"},
		{"shard-sweep", shardSweep, "PR 7: write throughput vs consensus groups × GOMAXPROCS"},
		{"multicore-sweep", multicoreSweep, "PR 8: read & write throughput vs GOMAXPROCS × groups (DESIGN.md §14)"},
		{"fig-overload", figOverload, "PR 9: open-loop goodput vs offered load, admission on/off (DESIGN.md §15)"},
		{"fig-wan", figWAN, "PR 10: per-region read latency on the geo spreads, leader vs nearest-replica reads (DESIGN.md §16)"},
	}
	if *gomaxprocsFl > 0 {
		runtime.GOMAXPROCS(*gomaxprocsFl)
	}
	report.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	report.Quick = *quick
	report.GoMaxProcs = runtime.GOMAXPROCS(0)
	report.PipelineDepth = *pipeline
	report.Groups = *groups
	if *durable {
		report.Durable = true
		report.SyncPolicy = *syncPolicy
		report.NoPersist = *noPersist
		mode := "group commit, off-loop persister"
		if *noPersist {
			mode = "inline per-record fsync (baseline)"
		}
		fmt.Printf("durable mode: storage.File WALs, policy=%s, %s\n\n", *syncPolicy, mode)
	}
	defer func() {
		if durableRoot != "" {
			os.RemoveAll(durableRoot)
		}
	}()

	found := false
	for _, e := range exps {
		if want["all"] || want[e.id] {
			found = true
			fmt.Printf("=== %s — paper: %s ===\n", e.id, e.paper)
			res := ExpResult{ID: e.id, Paper: e.paper, GoMaxProcs: runtime.GOMAXPROCS(0)}
			start := time.Now()
			e.run(&res)
			res.ElapsedS = time.Since(start).Seconds()
			report.Experiments = append(report.Experiments, res)
			fmt.Printf("--- %s done in %v ---\n\n", e.id, time.Since(start).Round(time.Millisecond))
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
}

func rrtRow(c *cluster.Cluster, class bench.ReqClass) bench.Stats {
	s, err := bench.MeasureRRT(c, class, rrtSamples())
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func printRRT(c *cluster.Cluster, res *ExpResult) (orig, read, write bench.Stats) {
	orig = rrtRow(c, bench.ClassOriginal)
	read = rrtRow(c, bench.ClassRead)
	write = rrtRow(c, bench.ClassWrite)
	fmt.Printf("  original: %s\n", orig.FmtMS())
	fmt.Printf("  read    : %s\n", read.FmtMS())
	fmt.Printf("  write   : %s\n", write.FmtMS())
	res.RRT = append(res.RRT,
		statsRow("original", orig), statsRow("read", read), statsRow("write", write))
	return
}

func rrtSysnet(res *ExpResult) {
	c := newCluster(netem.Sysnet(), 3)
	defer c.Close()
	_, read, write := printRRT(c, res)
	fmt.Printf("  X-Paxos read vs basic write: %.1f%% lower RRT (paper: 22%%)\n",
		100*(1-read.Mean/write.Mean))
}

func rrtB2P(res *ExpResult) {
	c := newCluster(netem.B2P(), 3)
	defer c.Close()
	printRRT(c, res)
	fmt.Println("  expectation: all three within ~1.5% (replication ~free here)")
}

func rrtWAN(res *ExpResult) {
	c := newCluster(netem.WAN(0), 3)
	defer c.Close()
	_, read, write := printRRT(c, res)
	fmt.Printf("  X-Paxos read vs basic write: %.1f%% lower RRT (paper: 29%%)\n",
		100*(1-read.Mean/write.Mean))
}

func throughputFigure(res *ExpResult, profile netem.Profile, clients []int, total int) {
	clients = grid(clients)
	fmt.Printf("  %-8s", "clients")
	for _, cc := range clients {
		fmt.Printf("%10d", cc)
	}
	fmt.Println()
	for _, class := range []bench.ReqClass{bench.ClassRead, bench.ClassWrite, bench.ClassOriginal} {
		// A fresh cluster per series keeps the log short and the runs
		// independent, like the paper's separate samples.
		c := newCluster(profile, 3)
		pts, err := bench.Series(c, class, clients, total)
		var phases []PhaseResult
		if err == nil && class == bench.ClassWrite {
			phases = leaderPhases(c)
		}
		c.Close()
		if err != nil {
			log.Fatal(err)
		}
		sr := SeriesResult{Label: class.String()}
		fmt.Printf("  %-8s", class.String())
		for _, p := range pts {
			fmt.Printf("%10.0f", p.PerSecond)
			sr.Points = append(sr.Points, SeriesPoint{Clients: p.Clients, PerSec: p.PerSecond,
				LatMeanMS: p.LatMeanMS, LatP50MS: p.LatP50MS, LatP95MS: p.LatP95MS, LatP99MS: p.LatP99MS})
		}
		fmt.Println(" req/s")
		fmt.Printf("  %-8s", "")
		for _, p := range pts {
			fmt.Printf("%10s", fmt.Sprintf("%.1f/%.1f", p.LatP50MS, p.LatP95MS))
		}
		fmt.Println(" p50/p95 ms")
		res.Series = append(res.Series, sr)
		if len(phases) > 0 {
			res.Phases = phases
			fmt.Println("  write phase latency (leader, cumulative over series):")
			fmt.Printf("    %-8s %10s %10s %10s %10s %10s\n", "phase", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms")
			for _, ph := range phases {
				fmt.Printf("    %-8s %10d %10.3f %10.3f %10.3f %10.3f\n",
					ph.Phase, ph.Count, ph.MeanMS, ph.P50MS, ph.P95MS, ph.P99MS)
			}
		}
	}
}

// phaseOrder maps leader-side registry histograms to display labels, in
// request-lifecycle order: batch execution, propose→quorum, propose→
// commit-eligible, admission→reply, and the WAL fsync inside the wave
// (durable mode only — absent on in-memory storage).
var phaseOrder = []struct{ name, label string }{
	{"gridrep_execute_latency_seconds", "execute"},
	{"gridrep_quorum_latency_seconds", "quorum"},
	{"gridrep_commit_latency_seconds", "commit"},
	{"gridrep_request_latency_seconds", "request"},
	{"gridrep_wal_fsync_latency_seconds", "fsync"},
}

// leaderPhases summarizes the leader's per-phase latency histograms —
// the breakdown benchpaxos prints after each write series.
func leaderPhases(c *cluster.Cluster) []PhaseResult {
	lead, ok := c.Leader()
	if !ok {
		return nil
	}
	rep, ok := c.Replica(lead)
	if !ok {
		return nil
	}
	snap := rep.Metrics().Snapshot()
	var out []PhaseResult
	for _, ph := range phaseOrder {
		m, ok := metrics.Find(snap, ph.name)
		if !ok || m.Hist == nil || m.Hist.Count == 0 {
			continue
		}
		h := m.Hist
		out = append(out, PhaseResult{Phase: ph.label, Count: h.Count,
			MeanMS: h.MS(h.Mean()), P50MS: h.MS(h.P50()), P95MS: h.MS(h.P95()), P99MS: h.MS(h.P99())})
	}
	return out
}

func fig5(res *ExpResult) {
	// The paper used 1000 total requests per sample and averaged
	// hundreds of samples; one longer run per point gives equivalent
	// stability here.
	throughputFigure(res, netem.Sysnet(), []int{1, 2, 4, 8, 16}, scale(8000))
}

func fig6(res *ExpResult) {
	// The paper used 1000 requests per sample; on this substrate each
	// point then lasts only tens of milliseconds and scheduler jitter
	// dominates, so the sweep uses a longer run per point.
	throughputFigure(res, netem.Sysnet(), []int{8, 16, 32, 64, 128}, scale(12000))
}

func fig7(res *ExpResult) {
	throughputFigure(res, netem.B2P(), []int{1, 2, 4, 8, 16}, scale(200))
}

func fig8(res *ExpResult) {
	throughputFigure(res, netem.WAN(0), []int{1, 2, 4, 8, 16}, scale(200))
}

func table1(res *ExpResult) {
	c := newCluster(netem.Sysnet(), 3)
	defer c.Close()
	n := scale(200)
	fmt.Println("  Operation   Req/tran   Avg TRT        99% CI")
	type row struct {
		mode  bench.TxnMode
		nReqs int
	}
	rows := []row{
		{bench.TxnReadWrite, 3}, {bench.TxnReadWrite, 5},
		{bench.TxnWriteOnly, 3}, {bench.TxnWriteOnly, 5},
		{bench.TxnOptimized, 3}, {bench.TxnOptimized, 5},
	}
	results := make(map[row]bench.Stats)
	for _, r := range rows {
		s, err := bench.MeasureTxnRT(c, r.mode, r.nReqs, n)
		if err != nil {
			log.Fatal(err)
		}
		results[r] = s
		fmt.Printf("  %-12s %6d   %8.3f ms   ±%.3f ms\n", r.mode, r.nReqs, s.Mean, s.CI99)
		res.RRT = append(res.RRT, statsRow(fmt.Sprintf("%s/%d", r.mode, r.nReqs), s))
	}
	for _, k := range []int{3, 5} {
		rw := results[row{bench.TxnReadWrite, k}].Mean
		wo := results[row{bench.TxnWriteOnly, k}].Mean
		op := results[row{bench.TxnOptimized, k}].Mean
		fmt.Printf("  T-Paxos reduction, %d req/txn: %.0f%% vs read/write, %.0f%% vs write-only\n",
			k, 100*(1-op/rw), 100*(1-op/wo))
	}
	fmt.Println("  (paper: 28%/34% at 3 req, 31%/39% at 5 req)")
}

func txnFigure(res *ExpResult, nReqs int) {
	clients := grid([]int{1, 2, 4, 8, 16})
	total := scale(500)
	fmt.Printf("  %-12s", "clients")
	for _, cc := range clients {
		fmt.Printf("%10d", cc)
	}
	fmt.Println()
	for _, mode := range []bench.TxnMode{bench.TxnReadWrite, bench.TxnWriteOnly, bench.TxnOptimized} {
		c := newCluster(netem.Sysnet(), 3)
		pts, err := bench.TxnSeries(c, mode, nReqs, clients, total)
		c.Close()
		if err != nil {
			log.Fatal(err)
		}
		sr := SeriesResult{Label: mode.String()}
		fmt.Printf("  %-12s", mode.String())
		for _, p := range pts {
			fmt.Printf("%10.0f", p.PerSecond)
			sr.Points = append(sr.Points, SeriesPoint{Clients: p.Clients, PerSec: p.PerSecond})
		}
		fmt.Println(" txn/s")
		res.Series = append(res.Series, sr)
	}
}

func fig9a(res *ExpResult) { txnFigure(res, 3) }
func fig9b(res *ExpResult) { txnFigure(res, 5) }

// t2 explores §4.3: replica counts beyond t=1 on the WAN profile, where
// X-Paxos's extra wide-area confirm paths matter most.
func t2(res *ExpResult) {
	n := scale(60)
	counts := []int{3, 5, 7}
	if *quick {
		counts = []int{3, 5}
	}
	res.Replicas = counts
	fmt.Println("  replicas   original        read            write")
	for _, nrep := range counts {
		c, err := cluster.New(clusterConfig(wanProfileN(), nrep))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.WaitForLeader(15 * time.Second); err != nil {
			log.Fatal(err)
		}
		var row []string
		for _, class := range []bench.ReqClass{bench.ClassOriginal, bench.ClassRead, bench.ClassWrite} {
			s, err := bench.MeasureRRT(c, class, n)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%7.2f±%.2f", s.Mean, s.CI99))
			res.RRT = append(res.RRT, statsRow(fmt.Sprintf("n%d/%s", nrep, class), s))
		}
		c.Close()
		fmt.Printf("  %8d   %s ms\n", nrep, strings.Join(row, "   "))
	}
	fmt.Println("  expectation: client latency grows with t for X-Paxos (more WAN")
	fmt.Println("  confirm paths, higher delay variance) but barely for writes (§4.3)")
}

// wanProfileN is the WAN profile for arbitrary replica counts: WAN(0)
// already maps every replica other than 0 to the remote-site class, so
// it generalizes as-is.
func wanProfileN() netem.Profile { return netem.WAN(0) }

// pipelineSweep measures durable write throughput against the
// speculative pipeline depth (DESIGN.md §10). At low client counts a
// serial leader spends most of each wave waiting on the quorum RTT and
// the group-commit fsync; deeper pipelines overlap those waits, while at
// high client counts batching already fills the pipe and depth matters
// less. Run with -durable so the fsync is part of the wave latency being
// overlapped.
func pipelineSweep(res *ExpResult) {
	depths := []int{1, 2, 4, 8}
	if *quick {
		depths = []int{1, 4}
	}
	clients := grid([]int{1, 2, 4, 8, 16, 32})
	total := scale(4000)
	fmt.Printf("  %-8s", "clients")
	for _, cc := range clients {
		fmt.Printf("%10d", cc)
	}
	fmt.Println()
	for _, depth := range depths {
		cfg := clusterConfig(netem.Sysnet(), 3)
		cfg.PipelineDepth = depth
		c, err := cluster.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.WaitForLeader(15 * time.Second); err != nil {
			log.Fatal(err)
		}
		pts, err := bench.Series(c, bench.ClassWrite, clients, total)
		c.Close()
		if err != nil {
			log.Fatal(err)
		}
		sr := SeriesResult{Label: fmt.Sprintf("depth=%d", depth)}
		fmt.Printf("  depth=%-2d", depth)
		for _, p := range pts {
			fmt.Printf("%10.0f", p.PerSecond)
			sr.Points = append(sr.Points, SeriesPoint{Clients: p.Clients, PerSec: p.PerSecond})
		}
		fmt.Println(" req/s")
		res.Series = append(res.Series, sr)
	}
	fmt.Println("  expectation: depth=1 is the serial paper protocol; deeper")
	fmt.Println("  pipelines win where wave cadence is latency-bound — mid-to-high")
	fmt.Println("  client counts when fsync dominates the round trip (this host),")
	fmt.Println("  low counts when the network RTT does (WAN profiles) — and must")
	fmt.Println("  never lose to depth=1: the launch gate falls back to the serial")
	fmt.Println("  schedule rather than fragment batches")
}

// fig6Sharded reruns the Figure 6 write curve single-group and sharded
// (DESIGN.md §13) on the same substrate: N independent consensus groups
// per process, keyed ops spreading the closed-loop workers across
// groups. The sharded group count follows -groups (default 4 when
// -groups is left at 1, so the variant compares against something).
func fig6Sharded(res *ExpResult) {
	g := *groups
	if g <= 1 {
		g = 4
	}
	clients := grid([]int{8, 16, 32, 64, 128})
	total := scale(12000)
	fmt.Printf("  %-12s", "clients")
	for _, cc := range clients {
		fmt.Printf("%10d", cc)
	}
	fmt.Println()
	for _, gg := range []int{1, g} {
		cfg := clusterConfig(netem.Sysnet(), 3)
		cfg.Groups = gg
		c := startCluster(cfg)
		pts, err := bench.Series(c, bench.ClassWrite, clients, total)
		c.Close()
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("write/groups=%d", gg)
		sr := SeriesResult{Label: label}
		fmt.Printf("  %-12s", label)
		for _, p := range pts {
			fmt.Printf("%10.0f", p.PerSecond)
			sr.Points = append(sr.Points, SeriesPoint{Clients: p.Clients, PerSec: p.PerSecond,
				LatMeanMS: p.LatMeanMS, LatP50MS: p.LatP50MS, LatP95MS: p.LatP95MS, LatP99MS: p.LatP99MS})
		}
		fmt.Println(" req/s")
		res.Series = append(res.Series, sr)
	}
	fmt.Println("  expectation: sharding helps where one group's serial wave cadence")
	fmt.Println("  is the bottleneck (durable mode: the fsync pipeline; multicore:")
	fmt.Println("  the single event loop); on one core with in-memory WALs the two")
	fmt.Println("  curves converge — N groups share the only CPU")
}

// shardSweep is the PR 7 acceptance sweep: durable write throughput
// across consensus-group count × GOMAXPROCS at a fixed client count.
// Run with -durable so each group owns a real WAL family and the fsync
// decoupling between groups is part of what is measured.
func shardSweep(res *ExpResult) {
	groupCounts := []int{1, 2, 4}
	procCounts := []int{1, 2, 4}
	if *quick {
		groupCounts = []int{1, 4}
		procCounts = []int{1, 4}
	}
	clients := 32
	total := scale(8000)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	fmt.Printf("  %d clients, %d writes per point; host CPUs: %d\n", clients, total, runtime.NumCPU())
	fmt.Printf("  %-20s %12s %12s %12s\n", "", "req/s", "p50 ms", "p95 ms")
	for _, procs := range procCounts {
		runtime.GOMAXPROCS(procs)
		for _, gg := range groupCounts {
			cfg := clusterConfig(netem.Sysnet(), 3)
			cfg.Groups = gg
			c := startCluster(cfg)
			pt, err := bench.MeasureThroughputPoint(c, bench.ClassWrite, clients, total)
			c.Close()
			if err != nil {
				log.Fatal(err)
			}
			label := fmt.Sprintf("groups=%d/procs=%d", gg, procs)
			fmt.Printf("  %-20s %12.0f %12.2f %12.2f\n", label, pt.PerSecond, pt.LatP50MS, pt.LatP95MS)
			// Per-row effective GOMAXPROCS: this sweep mutates it, so the
			// report-header value (captured at startup) is wrong for every
			// row after the first proc count.
			res.Series = append(res.Series, SeriesResult{Label: label, GoMaxProcs: runtime.GOMAXPROCS(0),
				Points: []SeriesPoint{{
					Clients: clients, PerSec: pt.PerSecond,
					LatMeanMS: pt.LatMeanMS, LatP50MS: pt.LatP50MS, LatP95MS: pt.LatP95MS, LatP99MS: pt.LatP99MS}}})
		}
	}
	fmt.Println("  expectation: groups×procs scale-out needs (a) a real fsync per")
	fmt.Println("  group to decouple (run -durable) and (b) spare cores for the")
	fmt.Println("  extra event loops; with one host CPU the sweep documents the")
	fmt.Println("  substrate ceiling rather than a speedup")
}

// multicoreSweep is the PR 8 acceptance sweep: read and write
// throughput across GOMAXPROCS × consensus groups at a fixed client
// count. Reads exercise the parallel read path (DESIGN.md §14): past
// the X-Paxos commit barrier they execute concurrently on the replica's
// read worker pool against an immutable state view, so extra processors
// lift read throughput without touching the write order. Writes stay
// strictly ordered per group; their scaling axis is the group count
// (shard-sweep's territory), which the groups dimension here
// cross-checks. Run with -durable so writes carry their fsync cost.
func multicoreSweep(res *ExpResult) {
	procCounts := []int{1, 2, 4, 8}
	groupCounts := []int{1, 4}
	if *quick {
		procCounts = []int{1, 4}
		groupCounts = []int{1}
	}
	clients := 32
	total := scale(8000)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	fmt.Printf("  %d clients, %d requests per point; host CPUs: %d\n", clients, total, runtime.NumCPU())
	fmt.Printf("  %-28s %12s %12s %12s\n", "", "req/s", "p50 ms", "p95 ms")
	for _, procs := range procCounts {
		runtime.GOMAXPROCS(procs)
		for _, gg := range groupCounts {
			for _, class := range []bench.ReqClass{bench.ClassRead, bench.ClassWrite} {
				cfg := clusterConfig(netem.Sysnet(), 3)
				cfg.Groups = gg
				c := startCluster(cfg)
				pt, err := bench.MeasureThroughputPoint(c, class, clients, total)
				c.Close()
				if err != nil {
					log.Fatal(err)
				}
				label := fmt.Sprintf("%s/procs=%d/groups=%d", class, procs, gg)
				fmt.Printf("  %-28s %12.0f %12.2f %12.2f\n", label, pt.PerSecond, pt.LatP50MS, pt.LatP95MS)
				res.Series = append(res.Series, SeriesResult{Label: label, GoMaxProcs: runtime.GOMAXPROCS(0),
					Points: []SeriesPoint{{
						Clients: clients, PerSec: pt.PerSecond,
						LatMeanMS: pt.LatMeanMS, LatP50MS: pt.LatP50MS, LatP95MS: pt.LatP95MS, LatP99MS: pt.LatP99MS}}})
			}
		}
	}
	fmt.Println("  expectation: reads scale with procs once the pool engages")
	fmt.Println("  (GOMAXPROCS>1) and spare cores exist; writes scale with groups,")
	fmt.Println("  not procs. With one host CPU every extra proc only adds")
	fmt.Println("  scheduler overlap, so the sweep documents the substrate ceiling")
	fmt.Println("  (EXPERIMENTS.md, multi-core chapter) rather than a speedup")
}

// figWAN is the PR 10 acceptance experiment: per-region read latency on
// the modernized geo spreads (wan3/wan5), once with every read served by
// the leader (the classic X-Paxos path) and once with nearest-replica
// reads (DESIGN.md §16). One client per region measures reads against
// the same profile and seed in both modes; the per-region p50/p95 make
// the geography visible — the leader's region is fast either way, while
// remote regions drop from a cross-continent round trip to a local one.
// Writes (leader path, mode-independent) are measured once for context.
// -quick compresses the geography with WAN3Scaled/WAN5Scaled instead of
// shrinking only the sample count, so even CI runs keep the real latency
// shape.
func figWAN(res *ExpResult) {
	scalef := 1.0
	samples := scale(60)
	if *quick {
		scalef = 0.05
	}
	profs := []struct {
		name string
		p    netem.Profile
		n    int
	}{
		{"wan3", netem.WAN3Scaled(scalef), 3},
		{"wan5", netem.WAN5Scaled(scalef), 5},
	}
	for _, pr := range profs {
		type regionRow struct {
			leader, near, write []time.Duration
		}
		rows := make([]regionRow, pr.n)
		var lead wire.NodeID
		for _, near := range []bool{false, true} {
			cfg := clusterConfig(pr.p, pr.n)
			cfg.NearReads = near
			c := startCluster(cfg)
			lead, _ = c.Leader()
			clis := regionClients(c, pr.n)
			for r, cli := range clis {
				// Warm the session (and the near replica's applied index)
				// before timing.
				if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
					log.Fatal(err)
				}
				for i := 0; i < samples; i++ {
					t := time.Now()
					if _, err := cli.Read(service.KVGet("k")); err != nil {
						log.Fatal(err)
					}
					d := time.Since(t)
					if near {
						rows[r].near = append(rows[r].near, d)
					} else {
						rows[r].leader = append(rows[r].leader, d)
					}
				}
				if !near {
					for i := 0; i < samples; i++ {
						t := time.Now()
						if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
							log.Fatal(err)
						}
						rows[r].write = append(rows[r].write, time.Since(t))
					}
				}
				cli.Close()
			}
			c.Close()
		}
		fmt.Printf("  %s: %d samples per region per mode, latencies x%.2f, leader at %s\n",
			pr.name, samples, scalef, netem.RegionName(int(lead)%pr.n))
		fmt.Printf("  %-14s %18s %18s %18s\n", "region", "leader-read p50/p95", "near-read p50/p95", "write p50/p95")
		nearWins := 0
		for r := 0; r < pr.n; r++ {
			lp50, lp95 := pctiles(rows[r].leader)
			np50, np95 := pctiles(rows[r].near)
			wp50, wp95 := pctiles(rows[r].write)
			fmt.Printf("  %-14s %18s %18s %18s\n", netem.RegionName(r),
				fmtP(lp50, lp95), fmtP(np50, np95), fmtP(wp50, wp95))
			if np50 < lp50 && np95 < lp95 {
				nearWins++
			}
			res.RRT = append(res.RRT,
				RRTResult{Label: fmt.Sprintf("%s/%s/leader-read", pr.name, netem.RegionName(r)),
					N: len(rows[r].leader), P50: lp50, P95: lp95},
				RRTResult{Label: fmt.Sprintf("%s/%s/near-read", pr.name, netem.RegionName(r)),
					N: len(rows[r].near), P50: np50, P95: np95},
				RRTResult{Label: fmt.Sprintf("%s/%s/write", pr.name, netem.RegionName(r)),
					N: len(rows[r].write), P50: wp50, P95: wp95})
		}
		fmt.Printf("  near reads beat leader reads on p50+p95 in %d/%d regions\n", nearWins, pr.n)
	}
	fmt.Println("  expectation: in the leader's region the two read modes tie; in")
	fmt.Println("  every other region nearest-replica reads replace the cross-")
	fmt.Println("  continent hop to the leader with a local confirm quorum, so both")
	fmt.Println("  p50 and p95 drop — while writes stay on the leader path either way")
}

// regionClients returns one client per region of an n-region geo spread,
// indexed by region. Cluster client IDs are sequential, and wanSpread
// maps client c to region (c - ClientIDBase) mod n, so n consecutive
// clients cover every region; surplus ones are closed.
func regionClients(c *cluster.Cluster, n int) []*client.Client {
	out := make([]*client.Client, n)
	for have := 0; have < n; {
		cli, err := c.NewClient()
		if err != nil {
			log.Fatal(err)
		}
		r := int(cli.ID()-wire.ClientIDBase) % n
		if out[r] == nil {
			out[r] = cli
			have++
		} else {
			cli.Close()
		}
	}
	return out
}

// pctiles returns the p50 and p95 of a sample set, in milliseconds.
func pctiles(ds []time.Duration) (p50, p95 float64) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		return float64(sorted[int(q*float64(len(sorted)-1))]) / 1e6
	}
	return at(0.50), at(0.95)
}

func fmtP(p50, p95 float64) string {
	return fmt.Sprintf("%.1f/%.1f ms", p50, p95)
}

// overloadLabProfile is the substrate for fig-overload: a latency-bound
// cluster whose capacity does not depend on the host CPU. NoBatch mode
// pins throughput to one accept wave per request, PipelineDepth 1 makes
// waves serial, and the ~500µs replica links price each wave at about a
// millisecond — roughly 1k writes/s of capacity regardless of how fast
// the machine is. That matters because the open-loop driver shares the
// process with the cluster: against the normal batching substrate the
// saturation point is a CPU ceiling, so driving 2-4x past it starves
// the replicas' own event loops and the measurement collapses into
// scheduler noise (single-core runs produced goodput anywhere from 6k
// to 43k req/s at the same nominal point). Against a latency-bound
// ceiling, 4x overload is a few thousand arrivals per second — trivially
// cheap to generate — and every drop of goodput is the protocol's
// queueing, not the harness fighting the cluster for cycles.
func overloadLabProfile() netem.Profile {
	return netem.Profile{
		Name:      "overload-lab",
		MaxOneWay: 2 * time.Millisecond,
		Configure: func(m *netem.Model) {
			cr := netem.Latency{Base: 100 * time.Microsecond, Jitter: 10 * time.Microsecond}
			rr := netem.Latency{Base: 500 * time.Microsecond, Jitter: 20 * time.Microsecond}
			m.SetLinkSym(netem.ClassClient, netem.ClassReplica, cr)
			m.SetLinkSym(netem.ClassReplica, netem.ClassReplica, rr)
			m.SetLinkSym(netem.ClassClient, netem.ClassClient, cr)
		},
	}
}

func overloadLabConfig(gw *gateway.Config) cluster.Config {
	return cluster.Config{
		N: 3, Profile: overloadLabProfile(), Seed: 1,
		ClientDeadline: 120 * time.Second, PipelineDepth: 1,
		NoBatch: true, Gateway: gw,
	}
}

// figOverload is the PR 9 acceptance experiment: open-loop (Poisson)
// offered load swept past closed-loop saturation, once with the
// admission-controlling gateway in front of every replica and once
// without. With admission on, the edge sheds the excess with typed
// retry-after hints and goodput must hold near the closed-loop peak at
// 2-4x saturation; with it off, every arrival enters the protocol, the
// leader's queue grows past the client deadline, and goodput collapses
// into timeouts — the leader keeps burning consensus waves on requests
// whose clients already gave up.
func figOverload(res *ExpResult) {
	modes := []bool{true, false}
	switch *admission {
	case "on":
		modes = []bool{true}
	case "off":
		modes = []bool{false}
	case "both":
	default:
		log.Fatalf("bad -admission %q (want on, off, or both)", *admission)
	}
	multiples := []float64{0.5, 1, 2, 3, 4}
	dur := 3 * time.Second
	if *quick {
		multiples = []float64{1, 2, 4}
		dur = 2 * time.Second
	}

	// One gateway-less closed-loop measurement anchors both series: the
	// same absolute offered rates are replayed with and without
	// admission, so the two curves differ only in the edge. The sample
	// is deliberately not -quick-scaled — a noisy saturation estimate
	// would shift every rate point of the ablation.
	base := startCluster(overloadLabConfig(nil))
	sat, err := bench.MeasureThroughputPoint(base, bench.ClassWrite, 32, 2000)
	base.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  closed-loop saturation %.0f req/s (32 clients, no gateway, overload-lab substrate)\n", sat.PerSecond)

	for _, withGateway := range modes {
		label := "admission=off"
		var gw *gateway.Config
		if withGateway {
			label = "admission=on"
			gw = &gateway.Config{}
		}
		c := startCluster(overloadLabConfig(gw))
		fmt.Printf("  %-14s %10s %10s %8s %10s %8s %8s %8s %8s\n",
			label, "offered/s", "goodput/s", "shed%", "edge-shed", "t/o", "p50 ms", "p95 ms", "p99 ms")
		var prevSheds uint64
		for _, m := range multiples {
			// Workers must exceed the edge's budget+queue capacity
			// (otherwise the pool itself becomes the admission controller
			// and the gateway never sees enough concurrency to shed) AND
			// exceed capacity x deadline (otherwise the pool caps
			// in-protocol queueing below the point where the no-admission
			// mode starts missing deadlines, hiding the collapse the
			// ablation exists to show).
			p, err := bench.MeasureOpenLoop(c, bench.OpenLoopConfig{
				Class:      bench.ClassWrite,
				Rate:       m * sat.PerSecond,
				Duration:   dur,
				Workers:    2048,
				Deadline:   time.Second,
				RetryEvery: 250 * time.Millisecond,
			})
			if err != nil {
				c.Close()
				log.Fatalf("%s at %.1fx: %v", label, m, err)
			}
			edgeSheds := 0
			if withGateway {
				s := c.GatewayStats().Sheds()
				edgeSheds = int(s - prevSheds)
				prevSheds = s
			}
			fmt.Printf("  %4.1fx%9s %10.0f %10.0f %7.1f%% %10d %8d %8.1f %8.1f %8.1f\n",
				m, "", p.OfferedPerSec, p.GoodputPerSec, 100*p.ShedFrac, edgeSheds,
				p.Timeouts, p.LatP50MS, p.LatP95MS, p.LatP99MS)
			res.Overload = append(res.Overload, OverloadPoint{
				Label: label, RateMultiple: m, TargetRate: p.TargetRate,
				OfferedPerSec: p.OfferedPerSec, GoodputPerSec: p.GoodputPerSec,
				ShedFrac: p.ShedFrac, EdgeSheds: edgeSheds,
				Timeouts: p.Timeouts, Unserved: p.Unserved,
				LatP50MS: p.LatP50MS, LatP95MS: p.LatP95MS, LatP99MS: p.LatP99MS,
			})
		}
		if withGateway {
			gs := c.GatewayStats()
			fmt.Printf("  %s: edge totals admitted=%d queued=%d sheds=%d dedup=%d dup_pass=%d\n",
				label, gs.Admitted, gs.Queued, gs.Sheds(), gs.DedupHits, gs.DupPassthrough)
		}
		c.Close()
	}
	fmt.Println("  expectation: with admission on, goodput at 2-4x saturation holds")
	fmt.Println("  within ~10% of its peak with zero timeouts and bounded tail")
	fmt.Println("  latency — the edge sheds the excess with typed retry-after hints")
	fmt.Println("  before it can queue inside the protocol; with admission off the")
	fmt.Println("  same offered load piles into the leader queue, replies miss the")
	fmt.Println("  client deadline, and goodput collapses into timeouts")
}
