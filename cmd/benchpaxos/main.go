// Command benchpaxos regenerates every quantitative result of the
// paper's evaluation (§4): the Sysnet / Berkeley→Princeton / WAN response
// times, the throughput curves of Figures 5-8, Table 1's transaction
// response times, the transaction throughput curves of Figure 9, and the
// t>1 ablation of §4.3.
//
//	go run ./cmd/benchpaxos -exp all          # everything (slow)
//	go run ./cmd/benchpaxos -exp rrt-sysnet   # one experiment
//	go run ./cmd/benchpaxos -exp fig5 -quick  # reduced request counts
//
// Experiment IDs: rrt-sysnet, fig5, fig6, rrt-b2p, fig7, rrt-wan, fig8,
// table1, fig9a, fig9b, t2.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gridrep/internal/bench"
	"gridrep/internal/cluster"
	"gridrep/internal/netem"
)

var (
	quick   = flag.Bool("quick", false, "reduce sample counts for a fast smoke run")
	samples = flag.Int("samples", 0, "override RRT sample count (0 = default)")
)

// scale returns n, or a reduced count under -quick.
func scale(n int) int {
	if *quick {
		if n > 100 {
			return n / 10
		}
		if n > 10 {
			return n / 2
		}
	}
	return n
}

func rrtSamples() int {
	if *samples > 0 {
		return *samples
	}
	return scale(400)
}

func newCluster(profile netem.Profile, n int) *cluster.Cluster {
	c, err := cluster.New(cluster.Config{N: n, Profile: profile, Seed: 1,
		ClientDeadline: 120 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.WaitForLeader(15 * time.Second); err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see package doc) or 'all'")
	flag.Parse()

	exps := []struct {
		id    string
		run   func()
		paper string
	}{
		{"rrt-sysnet", rrtSysnet, "§4.1 text: 0.181 / 0.263 / 0.338 ms"},
		{"fig5", fig5, "Figure 5: throughput on Sysnet, 1-16 clients"},
		{"fig6", fig6, "Figure 6: throughput, 8-128 clients (peak 32-64)"},
		{"rrt-b2p", rrtB2P, "§4.1 text: 91.85 / 92.79 / 93.13 ms"},
		{"fig7", fig7, "Figure 7: throughput Berkeley→Princeton"},
		{"rrt-wan", rrtWAN, "§4.1 text: 70.82 / 75.49 / 106.73 ms"},
		{"fig8", fig8, "Figure 8: throughput on WAN"},
		{"table1", table1, "Table 1: transaction response time"},
		{"fig9a", fig9a, "Figure 9a: txn throughput, 3 req/txn"},
		{"fig9b", fig9b, "Figure 9b: txn throughput, 5 req/txn"},
		{"t2", t2, "§4.3: replica-count ablation on WAN"},
	}
	found := false
	for _, e := range exps {
		if *exp == "all" || *exp == e.id {
			found = true
			fmt.Printf("=== %s — paper: %s ===\n", e.id, e.paper)
			start := time.Now()
			e.run()
			fmt.Printf("--- %s done in %v ---\n\n", e.id, time.Since(start).Round(time.Millisecond))
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func rrtRow(c *cluster.Cluster, class bench.ReqClass) bench.Stats {
	s, err := bench.MeasureRRT(c, class, rrtSamples())
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func printRRT(c *cluster.Cluster) (orig, read, write bench.Stats) {
	orig = rrtRow(c, bench.ClassOriginal)
	read = rrtRow(c, bench.ClassRead)
	write = rrtRow(c, bench.ClassWrite)
	fmt.Printf("  original: %s\n", orig.FmtMS())
	fmt.Printf("  read    : %s\n", read.FmtMS())
	fmt.Printf("  write   : %s\n", write.FmtMS())
	return
}

func rrtSysnet() {
	c := newCluster(netem.Sysnet(), 3)
	defer c.Close()
	_, read, write := printRRT(c)
	fmt.Printf("  X-Paxos read vs basic write: %.1f%% lower RRT (paper: 22%%)\n",
		100*(1-read.Mean/write.Mean))
}

func rrtB2P() {
	c := newCluster(netem.B2P(), 3)
	defer c.Close()
	printRRT(c)
	fmt.Println("  expectation: all three within ~1.5% (replication ~free here)")
}

func rrtWAN() {
	c := newCluster(netem.WAN(0), 3)
	defer c.Close()
	_, read, write := printRRT(c)
	fmt.Printf("  X-Paxos read vs basic write: %.1f%% lower RRT (paper: 29%%)\n",
		100*(1-read.Mean/write.Mean))
}

func throughputFigure(profile netem.Profile, clients []int, total int) {
	fmt.Printf("  %-8s", "clients")
	for _, cc := range clients {
		fmt.Printf("%10d", cc)
	}
	fmt.Println()
	for _, class := range []bench.ReqClass{bench.ClassRead, bench.ClassWrite, bench.ClassOriginal} {
		// A fresh cluster per series keeps the log short and the runs
		// independent, like the paper's separate samples.
		c := newCluster(profile, 3)
		pts, err := bench.Series(c, class, clients, total)
		c.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s", class.String())
		for _, p := range pts {
			fmt.Printf("%10.0f", p.PerSecond)
		}
		fmt.Println(" req/s")
	}
}

func fig5() {
	// The paper used 1000 total requests per sample and averaged
	// hundreds of samples; one longer run per point gives equivalent
	// stability here.
	throughputFigure(netem.Sysnet(), []int{1, 2, 4, 8, 16}, scale(8000))
}

func fig6() {
	// The paper used 1000 requests per sample; on this substrate each
	// point then lasts only tens of milliseconds and scheduler jitter
	// dominates, so the sweep uses a longer run per point.
	throughputFigure(netem.Sysnet(), []int{8, 16, 32, 64, 128}, scale(12000))
}

func fig7() {
	throughputFigure(netem.B2P(), []int{1, 2, 4, 8, 16}, scale(200))
}

func fig8() {
	throughputFigure(netem.WAN(0), []int{1, 2, 4, 8, 16}, scale(200))
}

func table1() {
	c := newCluster(netem.Sysnet(), 3)
	defer c.Close()
	n := scale(200)
	fmt.Println("  Operation   Req/tran   Avg TRT        99% CI")
	type row struct {
		mode  bench.TxnMode
		nReqs int
	}
	rows := []row{
		{bench.TxnReadWrite, 3}, {bench.TxnReadWrite, 5},
		{bench.TxnWriteOnly, 3}, {bench.TxnWriteOnly, 5},
		{bench.TxnOptimized, 3}, {bench.TxnOptimized, 5},
	}
	results := make(map[row]bench.Stats)
	for _, r := range rows {
		s, err := bench.MeasureTxnRT(c, r.mode, r.nReqs, n)
		if err != nil {
			log.Fatal(err)
		}
		results[r] = s
		fmt.Printf("  %-12s %6d   %8.3f ms   ±%.3f ms\n", r.mode, r.nReqs, s.Mean, s.CI99)
	}
	for _, k := range []int{3, 5} {
		rw := results[row{bench.TxnReadWrite, k}].Mean
		wo := results[row{bench.TxnWriteOnly, k}].Mean
		op := results[row{bench.TxnOptimized, k}].Mean
		fmt.Printf("  T-Paxos reduction, %d req/txn: %.0f%% vs read/write, %.0f%% vs write-only\n",
			k, 100*(1-op/rw), 100*(1-op/wo))
	}
	fmt.Println("  (paper: 28%/34% at 3 req, 31%/39% at 5 req)")
}

func txnFigure(nReqs int) {
	clients := []int{1, 2, 4, 8, 16}
	total := scale(500)
	fmt.Printf("  %-12s", "clients")
	for _, cc := range clients {
		fmt.Printf("%10d", cc)
	}
	fmt.Println()
	for _, mode := range []bench.TxnMode{bench.TxnReadWrite, bench.TxnWriteOnly, bench.TxnOptimized} {
		c := newCluster(netem.Sysnet(), 3)
		pts, err := bench.TxnSeries(c, mode, nReqs, clients, total)
		c.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s", mode.String())
		for _, p := range pts {
			fmt.Printf("%10.0f", p.PerSecond)
		}
		fmt.Println(" txn/s")
	}
}

func fig9a() { txnFigure(3) }
func fig9b() { txnFigure(5) }

// t2 explores §4.3: replica counts beyond t=1 on the WAN profile, where
// X-Paxos's extra wide-area confirm paths matter most.
func t2() {
	n := scale(60)
	fmt.Println("  replicas   original        read            write")
	for _, nrep := range []int{3, 5, 7} {
		c, err := cluster.New(cluster.Config{
			N: nrep, Seed: 1, ClientDeadline: 120 * time.Second,
			Profile: wanProfileN(),
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.WaitForLeader(15 * time.Second); err != nil {
			log.Fatal(err)
		}
		var row []string
		for _, class := range []bench.ReqClass{bench.ClassOriginal, bench.ClassRead, bench.ClassWrite} {
			s, err := bench.MeasureRRT(c, class, n)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%7.2f±%.2f", s.Mean, s.CI99))
		}
		c.Close()
		fmt.Printf("  %8d   %s ms\n", nrep, strings.Join(row, "   "))
	}
	fmt.Println("  expectation: client latency grows with t for X-Paxos (more WAN")
	fmt.Println("  confirm paths, higher delay variance) but barely for writes (§4.3)")
}

// wanProfileN is the WAN profile for arbitrary replica counts: WAN(0)
// already maps every replica other than 0 to the remote-site class, so
// it generalizes as-is.
func wanProfileN() netem.Profile { return netem.WAN(0) }
