package bench

import (
	"fmt"
	"sync"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/cluster"
	"gridrep/internal/metrics"
	"gridrep/internal/service"
	"gridrep/internal/wire"
)

// ReqClass selects which request kind a workload issues, matching the
// three classes of §4: read (X-Paxos), write (basic protocol), original
// (unreplicated baseline).
type ReqClass int

const (
	ClassRead ReqClass = iota
	ClassWrite
	ClassOriginal
)

func (c ReqClass) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	default:
		return "original"
	}
}

// issue sends one request of the class through cli.
func (c ReqClass) issue(cli *client.Client) error { return c.issueOp(cli, service.NoopWriteOp) }

// issueOp sends one request of the class with the given mutation op.
// Reads always use the empty read op: a keyed (non-empty) op would turn
// the X-Paxos leader-local read into a state mutation.
func (c ReqClass) issueOp(cli *client.Client, op []byte) error {
	var err error
	switch c {
	case ClassRead:
		_, err = cli.Read(service.NoopReadOp)
	case ClassWrite:
		_, err = cli.Write(op)
	default:
		_, err = cli.Original(op)
	}
	return err
}

// KeyedWriteOp returns a noop write op tagged with the worker index.
// The noop service treats every non-empty op as the same empty mutation,
// so the tag is semantically inert — but the shard router hashes the
// whole op when a service exposes no keys, so distinct tags give each
// closed-loop worker a stable consensus group. Without it every worker
// of a sharded benchmark would hash onto one group and measure nothing.
func KeyedWriteOp(worker int) []byte {
	op := make([]byte, 5)
	op[0] = service.NoopWriteOp[0] // mutation marker
	op[1] = byte(worker)
	op[2] = byte(worker >> 8)
	op[3] = byte(worker >> 16)
	op[4] = byte(worker >> 24)
	return op
}

// defaultOpFor picks the per-worker op family for a cluster: sharded
// clusters get keyed ops so workers spread across groups; single-group
// clusters keep the byte-identical classic op (the bench baseline's
// wire bytes must not change at -groups 1).
func defaultOpFor(cl *cluster.Cluster) func(worker int) []byte {
	if cl.Groups() > 1 {
		return KeyedWriteOp
	}
	return nil
}

// MeasureRRT measures request response time with a single closed-loop
// client sending n sequential requests (the paper used 20 per sample and
// hundreds of samples; callers control n). It returns per-request
// latencies in milliseconds.
func MeasureRRT(c *cluster.Cluster, class ReqClass, n int) (Stats, error) {
	cli, err := c.NewClient()
	if err != nil {
		return Stats{}, err
	}
	defer cli.Close()
	// Warm up: ensures the leader is active and paths are hot.
	for i := 0; i < 3; i++ {
		if err := class.issue(cli); err != nil {
			return Stats{}, fmt.Errorf("warmup: %w", err)
		}
	}
	lat := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := class.issue(cli); err != nil {
			return Stats{}, err
		}
		lat = append(lat, float64(time.Since(start).Microseconds())/1000.0)
	}
	return Summarize(lat), nil
}

// MeasureThroughput runs the paper's throughput experiment: c concurrent
// clients, total/c requests each, all released by a common start signal
// (§4: the leader's start signal made clients begin "at (roughly) the
// same time"). It returns requests per second.
func MeasureThroughput(cl *cluster.Cluster, class ReqClass, clients, total int) (float64, error) {
	p, err := MeasureThroughputPoint(cl, class, clients, total)
	return p.PerSecond, err
}

// MeasureThroughputPoint is MeasureThroughput plus the client-observed
// per-request latency distribution of the run. Every worker observes
// each request's wall time into one shared histogram (lock-free atomic
// buckets, so the measurement does not perturb the workload), from which
// the point's quantiles are extracted.
func MeasureThroughputPoint(cl *cluster.Cluster, class ReqClass, clients, total int) (ThroughputPoint, error) {
	return MeasureThroughputPointOps(cl, class, clients, total, defaultOpFor(cl))
}

// MeasureThroughputPointOps is MeasureThroughputPoint with an explicit
// per-worker op family (nil = the shared classic op). Sharded callers
// pass KeyedWriteOp — or their own keyed builder — so each worker lands
// on a stable consensus group.
func MeasureThroughputPointOps(cl *cluster.Cluster, class ReqClass, clients, total int, opFor func(worker int) []byte) (ThroughputPoint, error) {
	per := total / clients
	if per == 0 {
		per = 1
	}
	if opFor == nil {
		opFor = func(int) []byte { return service.NoopWriteOp }
	}
	clis := make([]*client.Client, clients)
	for i := range clis {
		cli, err := cl.NewClient()
		if err != nil {
			return ThroughputPoint{}, err
		}
		defer cli.Close()
		clis[i] = cli
		// Per-client warmup before the barrier.
		if err := class.issueOp(cli, opFor(i)); err != nil {
			return ThroughputPoint{}, fmt.Errorf("warmup: %w", err)
		}
	}
	hist := metrics.NewHistogram(metrics.UnitNanoseconds)
	start := make(chan struct{})
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i, cli := range clis {
		wg.Add(1)
		go func(cli *client.Client, op []byte) {
			defer wg.Done()
			<-start
			for j := 0; j < per; j++ {
				t := time.Now()
				if err := class.issueOp(cli, op); err != nil {
					errs <- err
					return
				}
				hist.Since(t)
			}
		}(cli, opFor(i))
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	select {
	case err := <-errs:
		return ThroughputPoint{}, err
	default:
	}
	s := hist.Snapshot()
	return ThroughputPoint{
		Clients:    clients,
		PerSecond:  float64(per*clients) / elapsed.Seconds(),
		RequestTot: per * clients,
		LatMeanMS:  s.MS(s.Mean()),
		LatP50MS:   s.MS(s.P50()),
		LatP95MS:   s.MS(s.P95()),
		LatP99MS:   s.MS(s.P99()),
	}, nil
}

// TxnMode selects the §4.2 transaction coordination mode.
type TxnMode int

const (
	// TxnReadWrite: mixed reads and writes, coordinated individually
	// (X-Paxos for reads, basic protocol for writes and the commit) —
	// T-Paxos not used.
	TxnReadWrite TxnMode = iota
	// TxnWriteOnly: all writes, coordinated individually, plus a
	// coordinated commit — T-Paxos not used.
	TxnWriteOnly
	// TxnOptimized: T-Paxos — replicas coordinate only at commit.
	TxnOptimized
)

func (m TxnMode) String() string {
	switch m {
	case TxnReadWrite:
		return "read/write"
	case TxnWriteOnly:
		return "write-only"
	default:
		return "optimized"
	}
}

// runTxn executes one transaction of nReqs operations in the given mode.
// Mixed transactions follow the paper's composition: a 3-request
// read/write transaction is 2 reads + 1 write; a 5-request one is 3
// reads + 2 writes.
func runTxn(cli *client.Client, mode TxnMode, nReqs int) error {
	switch mode {
	case TxnOptimized:
		tx := cli.Begin()
		for i := 0; i < nReqs; i++ {
			if _, err := tx.Do(service.NoopWriteOp); err != nil {
				return err
			}
		}
		return tx.Commit()
	case TxnWriteOnly:
		for i := 0; i < nReqs; i++ {
			if _, err := cli.Write(service.NoopWriteOp); err != nil {
				return err
			}
		}
		// Processes coordinate for the commit even without T-Paxos
		// (§4.2: committing deletes checkpoints and logs).
		_, err := cli.Write(service.NoopWriteOp)
		return err
	default: // TxnReadWrite
		writes := nReqs / 2 // 3 -> 1 write, 5 -> 2 writes
		reads := nReqs - writes
		for i := 0; i < reads; i++ {
			if _, err := cli.Read(service.NoopReadOp); err != nil {
				return err
			}
		}
		for i := 0; i < writes; i++ {
			if _, err := cli.Write(service.NoopWriteOp); err != nil {
				return err
			}
		}
		_, err := cli.Write(service.NoopWriteOp) // commit
		return err
	}
}

// MeasureTxnRT measures transaction response time (TRT, §4.2 Table 1):
// one client, n sequential transactions of nReqs requests each, in
// milliseconds.
func MeasureTxnRT(c *cluster.Cluster, mode TxnMode, nReqs, n int) (Stats, error) {
	cli, err := c.NewClient()
	if err != nil {
		return Stats{}, err
	}
	defer cli.Close()
	if err := runTxn(cli, mode, nReqs); err != nil {
		return Stats{}, fmt.Errorf("warmup: %w", err)
	}
	lat := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := runTxn(cli, mode, nReqs); err != nil {
			return Stats{}, err
		}
		lat = append(lat, float64(time.Since(start).Microseconds())/1000.0)
	}
	return Summarize(lat), nil
}

// MeasureTxnThroughput measures transactions per second with c concurrent
// closed-loop clients (§4.2 Figure 9).
func MeasureTxnThroughput(cl *cluster.Cluster, mode TxnMode, nReqs, clients, totalTxns int) (float64, error) {
	per := totalTxns / clients
	if per == 0 {
		per = 1
	}
	clis := make([]*client.Client, clients)
	for i := range clis {
		cli, err := cl.NewClient()
		if err != nil {
			return 0, err
		}
		defer cli.Close()
		clis[i] = cli
		if err := runTxn(cli, mode, nReqs); err != nil {
			return 0, fmt.Errorf("warmup: %w", err)
		}
	}
	start := make(chan struct{})
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for _, cli := range clis {
		wg.Add(1)
		go func(cli *client.Client) {
			defer wg.Done()
			<-start
			for j := 0; j < per; j++ {
				if err := runTxn(cli, mode, nReqs); err != nil {
					errs <- err
					return
				}
			}
		}(cli)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(per*clients) / elapsed.Seconds(), nil
}

// ThroughputPoint is one (clients, throughput) sample of a figure series,
// with the run's client-observed latency distribution in milliseconds
// (zero for series that predate the latency capture, e.g. transactions).
type ThroughputPoint struct {
	Clients    int
	PerSecond  float64
	RequestTot int
	LatMeanMS  float64
	LatP50MS   float64
	LatP95MS   float64
	LatP99MS   float64
}

// Series runs MeasureThroughputPoint across the client counts and returns
// the curve — one series of Figures 5-8.
func Series(cl *cluster.Cluster, class ReqClass, clientCounts []int, total int) ([]ThroughputPoint, error) {
	var out []ThroughputPoint
	for _, c := range clientCounts {
		tp, err := MeasureThroughputPoint(cl, class, c, total)
		if err != nil {
			return nil, fmt.Errorf("%v clients=%d: %w", class, c, err)
		}
		out = append(out, tp)
	}
	return out, nil
}

// TxnSeries runs MeasureTxnThroughput across client counts — one series
// of Figure 9.
func TxnSeries(cl *cluster.Cluster, mode TxnMode, nReqs int, clientCounts []int, totalTxns int) ([]ThroughputPoint, error) {
	var out []ThroughputPoint
	for _, c := range clientCounts {
		tp, err := MeasureTxnThroughput(cl, mode, nReqs, c, totalTxns)
		if err != nil {
			return nil, fmt.Errorf("%v clients=%d: %w", mode, c, err)
		}
		out = append(out, ThroughputPoint{Clients: c, PerSecond: tp, RequestTot: totalTxns})
	}
	return out, nil
}

// RequestKindFor maps a ReqClass to its wire kind (exported for tools).
func (c ReqClass) RequestKindFor() wire.RequestKind {
	switch c {
	case ClassRead:
		return wire.KindRead
	case ClassWrite:
		return wire.KindWrite
	default:
		return wire.KindOriginal
	}
}
