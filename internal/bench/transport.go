package bench

import (
	"sync"
	"time"

	"gridrep/internal/transport"
)

// TransportWatch samples a transport's counters on a fixed period so a
// benchmark run can correlate throughput dips with reconnect storms,
// queue growth, or drop bursts. Sampling runs in the background from
// WatchTransport until Stop.
type TransportWatch struct {
	mu      sync.Mutex
	samples []transport.Stats
	stop    chan struct{}
	done    chan struct{}
	stopped bool
}

// WatchTransport starts sampling src every period (default 250ms). src
// is typically the Stats method of a *transport.TCP or a closure summing
// several of them.
func WatchTransport(src func() transport.Stats, every time.Duration) *TransportWatch {
	if every <= 0 {
		every = 250 * time.Millisecond
	}
	w := &TransportWatch{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	w.record(src())
	go w.run(src, every)
	return w
}

func (w *TransportWatch) run(src func() transport.Stats, every time.Duration) {
	defer close(w.done)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			w.record(src())
			return
		case <-ticker.C:
			w.record(src())
		}
	}
}

func (w *TransportWatch) record(s transport.Stats) {
	w.mu.Lock()
	w.samples = append(w.samples, s)
	w.mu.Unlock()
}

// Stop ends sampling (taking one final sample) and returns all samples
// in order. It is safe to call more than once.
func (w *TransportWatch) Stop() []transport.Stats {
	w.mu.Lock()
	if !w.stopped {
		w.stopped = true
		close(w.stop)
	}
	w.mu.Unlock()
	<-w.done
	return w.Samples()
}

// Samples returns a copy of the samples collected so far.
func (w *TransportWatch) Samples() []transport.Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]transport.Stats{}, w.samples...)
}

// Delta returns the counter movement over the watch window (last sample
// minus first); gauges (QueueDepth, ConnectedPeers, LastRTT) carry the
// final value.
func (w *TransportWatch) Delta() transport.Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.samples) == 0 {
		return transport.Stats{}
	}
	first, last := w.samples[0], w.samples[len(w.samples)-1]
	return transport.Stats{
		Dials:             last.Dials - first.Dials,
		DialFails:         last.DialFails - first.DialFails,
		Reconnects:        last.Reconnects - first.Reconnects,
		Sent:              last.Sent - first.Sent,
		Recvd:             last.Recvd - first.Recvd,
		PingsSent:         last.PingsSent - first.PingsSent,
		PongsRecvd:        last.PongsRecvd - first.PongsRecvd,
		LastRTT:           last.LastRTT,
		DropsQueueFull:    last.DropsQueueFull - first.DropsQueueFull,
		DropsNoRoute:      last.DropsNoRoute - first.DropsNoRoute,
		DropsWriteFail:    last.DropsWriteFail - first.DropsWriteFail,
		DropsRecvOverflow: last.DropsRecvOverflow - first.DropsRecvOverflow,
		QueueDepth:        last.QueueDepth,
		ConnectedPeers:    last.ConnectedPeers,
	}
}

// QueueDepths extracts the sampled queue-depth series for Summarize.
func (w *TransportWatch) QueueDepths() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]float64, len(w.samples))
	for i, s := range w.samples {
		out[i] = float64(s.QueueDepth)
	}
	return out
}
