package bench

import (
	"testing"
	"time"

	"gridrep/internal/cluster"
	"gridrep/internal/gateway"
)

func gatewayCluster(t *testing.T, gw *gateway.Config) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		HeartbeatInterval: 5 * time.Millisecond,
		ClientRetryEvery:  200 * time.Millisecond,
		ClientDeadline:    10 * time.Second,
		Gateway:           gw,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMeasureOpenLoopUnderCapacity: at a modest target rate with no
// gateway, everything offered completes and the accounting identity
// holds.
func TestMeasureOpenLoopUnderCapacity(t *testing.T) {
	c := loopbackCluster(t)
	p, err := MeasureOpenLoop(c, OpenLoopConfig{
		Class:    ClassWrite,
		Rate:     200,
		Duration: 500 * time.Millisecond,
		Workers:  16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Offered == 0 || p.OKs == 0 {
		t.Fatalf("no work done: %+v", p)
	}
	if got := p.OKs + p.Sheds + p.Timeouts + p.Errors + p.Unserved; got != p.Offered {
		t.Fatalf("outcomes %d do not account for %d offered: %+v", got, p.Offered, p)
	}
	if p.GoodputPerSec <= 0 || p.LatP50MS <= 0 {
		t.Fatalf("missing goodput/latency: %+v", p)
	}
	if p.Sheds != 0 {
		t.Fatalf("sheds with no gateway: %+v", p)
	}
}

// TestMeasureOpenLoopShedsPastBudget: a gateway with a tiny admission
// budget facing far more offered load than it will admit must shed, and
// the sheds must surface as typed outcomes rather than timeouts.
func TestMeasureOpenLoopShedsPastBudget(t *testing.T) {
	c := gatewayCluster(t, &gateway.Config{
		MaxInFlight: 1,
		QueueLen:    1,
		RetryAfter:  200 * time.Millisecond,
	})
	p, err := MeasureOpenLoop(c, OpenLoopConfig{
		Class:    ClassWrite,
		Rate:     2000,
		Duration: 500 * time.Millisecond,
		Workers:  32,
		Deadline: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.OKs + p.Sheds + p.Timeouts + p.Errors + p.Unserved; got != p.Offered {
		t.Fatalf("outcomes %d do not account for %d offered: %+v", got, p.Offered, p)
	}
	if p.Sheds == 0 {
		t.Fatalf("a 1-slot gateway at 2000/s shed nothing: %+v", p)
	}
	if p.Errors > 0 {
		t.Fatalf("unexpected hard errors: %+v", p)
	}
}
