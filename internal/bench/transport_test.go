package bench

import (
	"sync/atomic"
	"testing"
	"time"

	"gridrep/internal/transport"
)

func TestWatchTransportSamplesAndDelta(t *testing.T) {
	var n atomic.Uint64
	src := func() transport.Stats {
		v := n.Add(1)
		return transport.Stats{
			Sent:       10 * v,
			Reconnects: v,
			QueueDepth: int(v),
		}
	}
	w := WatchTransport(src, 5*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	samples := w.Stop()
	if len(samples) < 3 {
		t.Fatalf("got %d samples, want >= 3", len(samples))
	}
	d := w.Delta()
	want := samples[len(samples)-1].Sent - samples[0].Sent
	if d.Sent != want {
		t.Errorf("Delta.Sent = %d, want %d", d.Sent, want)
	}
	if d.Reconnects == 0 {
		t.Error("Delta.Reconnects should have moved")
	}
	if d.QueueDepth != samples[len(samples)-1].QueueDepth {
		t.Errorf("Delta.QueueDepth = %d, want final gauge %d",
			d.QueueDepth, samples[len(samples)-1].QueueDepth)
	}
	if qs := w.QueueDepths(); len(qs) != len(samples) || qs[0] != float64(samples[0].QueueDepth) {
		t.Errorf("QueueDepths misaligned: %v", qs)
	}
	// Stop is idempotent.
	if again := w.Stop(); len(again) != len(samples) {
		t.Errorf("second Stop returned %d samples, want %d", len(again), len(samples))
	}
}

func TestWatchTransportEmptyDelta(t *testing.T) {
	var w TransportWatch
	if d := w.Delta(); d != (transport.Stats{}) {
		t.Errorf("empty watch delta = %+v", d)
	}
}
