package bench

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 {
		t.Fatalf("N=%d Mean=%v", s.N, s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("Std = %v", s.Std)
	}
	if s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("order stats: %+v", s)
	}
	// CI99 = t(4) * std / sqrt(5) = 4.604 * 1.5811 / 2.2360
	want := 4.604 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(s.CI99-want) > 1e-3 {
		t.Fatalf("CI99 = %v, want %v", s.CI99, want)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty sample")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.CI99 != 0 {
		t.Fatalf("singleton: %+v", s)
	}
	// Constant sample: zero variance.
	s = Summarize([]float64{2, 2, 2, 2})
	if s.Std != 0 || s.CI99 != 0 {
		t.Fatalf("constant: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input reordered")
	}
}

func TestTCrit99Table(t *testing.T) {
	cases := map[int]float64{1: 63.657, 5: 4.032, 10: 3.169, 30: 2.750, 120: 2.617}
	for df, want := range cases {
		if got := TCrit99(df); math.Abs(got-want) > 1e-9 {
			t.Errorf("TCrit99(%d) = %v, want %v", df, got, want)
		}
	}
}

func TestTCrit99MonotoneDecreasing(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 2000; df++ {
		got := TCrit99(df)
		if got > prev+1e-9 {
			t.Fatalf("TCrit99 not monotone at df=%d: %v > %v", df, got, prev)
		}
		prev = got
	}
	if TCrit99(100000) != 2.576 {
		t.Fatal("large df must converge to the normal quantile")
	}
	if !math.IsInf(TCrit99(0), 1) {
		t.Fatal("df=0 must be infinite")
	}
}

func TestTCrit99Interpolation(t *testing.T) {
	// Between df=10 (3.169) and df=12 (3.055).
	got := TCrit99(11)
	if got <= 3.055 || got >= 3.169 {
		t.Fatalf("TCrit99(11) = %v outside (3.055, 3.169)", got)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if q := quantile(sorted, 0); q != 10 {
		t.Fatalf("q0 = %v", q)
	}
	if q := quantile(sorted, 1); q != 40 {
		t.Fatalf("q1 = %v", q)
	}
	if q := quantile(sorted, 0.5); q != 25 {
		t.Fatalf("q50 = %v", q)
	}
}

func TestSummarizeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*100 - 50
		}
		s := Summarize(xs)
		// Mean within [min, max]; order stats ordered; CI nonnegative.
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.CI99 >= 0 && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestCIShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := func(n int) Stats {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return Summarize(xs)
	}
	small := sample(10)
	large := sample(10000)
	if large.CI99 >= small.CI99 {
		t.Fatalf("CI99 did not shrink: n=10 %v vs n=10000 %v", small.CI99, large.CI99)
	}
}

func TestFmtMS(t *testing.T) {
	s := Summarize([]float64{1.0, 1.2, 1.4})
	got := s.FmtMS()
	if got == "" || got[len(got)-1] != ')' {
		t.Fatalf("FmtMS = %q", got)
	}
}
