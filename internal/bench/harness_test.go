package bench

import (
	"testing"
	"time"

	"gridrep/internal/cluster"
)

func loopbackCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		HeartbeatInterval: 5 * time.Millisecond,
		ClientRetryEvery:  200 * time.Millisecond,
		ClientDeadline:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMeasureRRTAllClasses(t *testing.T) {
	c := loopbackCluster(t)
	for _, class := range []ReqClass{ClassOriginal, ClassRead, ClassWrite} {
		s, err := MeasureRRT(c, class, 10)
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		if s.N != 10 || s.Mean <= 0 {
			t.Fatalf("%v: stats %+v", class, s)
		}
	}
}

func TestMeasureThroughput(t *testing.T) {
	c := loopbackCluster(t)
	tp, err := MeasureThroughput(c, ClassWrite, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	if tp <= 0 {
		t.Fatalf("throughput = %v", tp)
	}
}

func TestMeasureTxnRTAllModes(t *testing.T) {
	c := loopbackCluster(t)
	for _, mode := range []TxnMode{TxnReadWrite, TxnWriteOnly, TxnOptimized} {
		s, err := MeasureTxnRT(c, mode, 3, 5)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if s.N != 5 || s.Mean <= 0 {
			t.Fatalf("%v: stats %+v", mode, s)
		}
	}
}

func TestMeasureTxnThroughput(t *testing.T) {
	c := loopbackCluster(t)
	tp, err := MeasureTxnThroughput(c, TxnOptimized, 3, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tp <= 0 {
		t.Fatalf("txn throughput = %v", tp)
	}
}

func TestSeries(t *testing.T) {
	c := loopbackCluster(t)
	pts, err := Series(c, ClassOriginal, []int{1, 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Clients != 1 || pts[1].Clients != 2 {
		t.Fatalf("series = %+v", pts)
	}
	for _, p := range pts {
		if p.PerSecond <= 0 {
			t.Fatalf("point %+v", p)
		}
	}
}

func TestTxnSeries(t *testing.T) {
	c := loopbackCluster(t)
	pts, err := TxnSeries(c, TxnOptimized, 3, []int{1, 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("series = %+v", pts)
	}
}

// TestLatencyOrderingLoopback checks the paper's fundamental ordering on
// a uniform-latency network: original <= read <= write in the mean.
func TestLatencyOrderingLoopback(t *testing.T) {
	c := loopbackCluster(t)
	orig, err := MeasureRRT(c, ClassOriginal, 40)
	if err != nil {
		t.Fatal(err)
	}
	read, err := MeasureRRT(c, ClassRead, 40)
	if err != nil {
		t.Fatal(err)
	}
	write, err := MeasureRRT(c, ClassWrite, 40)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("loopback RRT: original=%.3fms read=%.3fms write=%.3fms", orig.Mean, read.Mean, write.Mean)
	// Require the structural ordering, with a noise allowance: on
	// loopback the three 40-sample means sit within tens of
	// microseconds of each other, so a single scheduling hiccup in one
	// series can invert the raw means without any protocol regression.
	slack := 0.25*orig.Mean + 0.05 // ms
	if write.Mean < orig.Mean-slack {
		t.Errorf("write (%.3f) should not beat original (%.3f) beyond noise (slack %.3f)", write.Mean, orig.Mean, slack)
	}
	if write.Mean < read.Mean-slack {
		t.Errorf("write (%.3f) should not beat read (%.3f) beyond noise (slack %.3f)", write.Mean, read.Mean, slack)
	}
}

// TestShardedThroughputSpreadsGroups: on a sharded cluster the default
// keyed write ops land on more than one consensus group — the property
// that makes the sharded fig6 variant measure scale-out rather than a
// single hot group.
func TestShardedThroughputSpreadsGroups(t *testing.T) {
	const groups = 4
	c, err := cluster.New(cluster.Config{
		Groups:            groups,
		HeartbeatInterval: 5 * time.Millisecond,
		ClientRetryEvery:  200 * time.Millisecond,
		ClientDeadline:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.WaitForAllLeaders(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	tp, err := MeasureThroughputPoint(c, ClassWrite, 8, 160)
	if err != nil {
		t.Fatal(err)
	}
	if tp.PerSecond <= 0 {
		t.Fatalf("throughput = %+v", tp)
	}
	progressed := 0
	for g := 0; g < groups; g++ {
		rep, ok := c.GroupReplica(0, g)
		if !ok {
			t.Fatalf("group %d replica missing", g)
		}
		if rep.Health().CommitIndex > 0 {
			progressed++
		}
	}
	if progressed < 2 {
		t.Fatalf("only %d groups committed anything; keyed ops are not spreading", progressed)
	}
}
