package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/cluster"
	"gridrep/internal/gateway"
	"gridrep/internal/metrics"
)

// The closed-loop harnesses above hold offered load hostage to service
// time: when the cluster slows down, the clients slow down with it, so
// a closed-loop sweep can never push the system past saturation. The
// open-loop harness below does the opposite — arrivals follow a Poisson
// process at a fixed target rate regardless of how the cluster is
// doing, which is how real front ends experience overload. Goodput
// (acked requests per second), shed fraction, and arrival-to-ack
// latency at rates beyond saturation are the gateway's admission-control
// acceptance metrics (DESIGN.md §15).

// OpenLoopConfig parameterizes one open-loop measurement point.
type OpenLoopConfig struct {
	// Class selects the request kind (default ClassWrite — the paper's
	// coordinated path, and the one that saturates first).
	Class ReqClass
	// Rate is the target offered load in requests/second.
	Rate float64
	// Duration is the arrival-generation window (default 2s).
	Duration time.Duration
	// Workers bounds concurrent in-service requests; arrivals beyond it
	// queue, open-loop style (default 128).
	Workers int
	// Tenant is the session tenant for the worker pool's client IDs.
	Tenant uint8
	// Deadline bounds one request end to end (default 2s). The default
	// factory's clients treat the first shed as terminal (see
	// client.Config.AbortOnOverload), so the deadline is what turns a
	// request stuck inside the protocol into a Timeout outcome.
	Deadline time.Duration
	// RetryEvery is the pool clients' base rebroadcast interval (default
	// 100ms); overload sheds override it with the gateway's typed hint.
	RetryEvery time.Duration
	// Seed drives the Poisson arrival process (default 1).
	Seed int64
	// OpFor gives each worker its op family (nil = cluster default:
	// keyed ops when sharded, the classic shared op otherwise).
	OpFor func(worker int) []byte
	// NewClient overrides the session-client factory (nil = a fresh
	// session of Tenant per worker on the cluster's network).
	NewClient func(worker int) (*client.Client, error)
}

// OpenLoopPoint is one measured (offered load → outcome) sample.
type OpenLoopPoint struct {
	// TargetRate is the configured arrival rate; OfferedPerSec is the
	// rate actually generated (they track closely unless the generator
	// itself fell behind).
	TargetRate    float64
	OfferedPerSec float64
	// GoodputPerSec is acked (StatusOK) requests per second of the
	// generation window — the headline number admission control must
	// hold flat past saturation.
	GoodputPerSec float64
	ShedPerSec    float64
	// ShedFrac is Sheds/Offered: the fraction of offered load the edge
	// turned away with a typed overload.
	ShedFrac float64
	// Outcome counts over every offered arrival. Unserved arrivals were
	// still queued client-side when the window closed — casualties of
	// saturation that never reached the wire.
	Offered, OKs, Sheds, Timeouts, Errors, Unserved int
	// Arrival-to-ack latency of acked requests, client-side queueing
	// included (open-loop latency, not service time).
	LatMeanMS, LatP50MS, LatP95MS, LatP99MS float64
}

// openLoopSession hands out cluster-unique session numbers so that
// back-to-back measurement points on one cluster never reuse a (client,
// seq) identity — a reused session would restart its sequence space and
// look like a replay of a stale duplicate to the leader's reply cache
// and the gateway dedup window. The counter starts far above the small
// per-cluster offsets cluster.NewClient hands to closed-loop clients,
// which live in the same tenant-0 band of the session ID space.
var openLoopSession = func() *atomic.Uint32 {
	var v atomic.Uint32
	v.Store(1 << 20)
	return &v
}()

func (cfg *OpenLoopConfig) withDefaults(cl *cluster.Cluster) error {
	if cfg.Rate <= 0 {
		return fmt.Errorf("bench: open loop needs a positive Rate, got %v", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 128
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 2 * time.Second
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 100 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.OpFor == nil {
		if f := defaultOpFor(cl); f != nil {
			cfg.OpFor = f
		} else {
			cfg.OpFor = func(int) []byte { return nil }
		}
	}
	if cfg.NewClient == nil {
		cfg.NewClient = func(worker int) (*client.Client, error) {
			ep, err := cl.Net.Endpoint(gateway.SessionID(cfg.Tenant, openLoopSession.Add(1)))
			if err != nil {
				return nil, err
			}
			return client.New(client.Config{
				Transport:  ep,
				Replicas:   cl.IDs(),
				RetryEvery: cfg.RetryEvery,
				Deadline:   cfg.Deadline,
				// A shed arrival is a terminal outcome for the sweep: if
				// the worker instead looped on the retry-after hint, the
				// retries would add themselves to the offered load the
				// sweep is supposed to control, and a worker stuck in a
				// shed-retry loop until its deadline would throttle the
				// pool exactly when the measurement needs it most.
				AbortOnOverload: true,
			}), nil
		}
	}
	return nil
}

// MeasureOpenLoop offers cfg.Rate requests/second of Poisson arrivals to
// the cluster for cfg.Duration and reports what came back. Unlike the
// closed-loop harnesses, the arrival process never waits for the
// cluster: when offered load exceeds capacity the client-side queue
// grows, latency includes the wait, and the edge's shed/timeout policy —
// not the arrival rate — decides what completes.
func MeasureOpenLoop(cl *cluster.Cluster, cfg OpenLoopConfig) (OpenLoopPoint, error) {
	if err := cfg.withDefaults(cl); err != nil {
		return OpenLoopPoint{}, err
	}

	clis := make([]*client.Client, cfg.Workers)
	for i := range clis {
		cli, err := cfg.NewClient(i)
		if err != nil {
			return OpenLoopPoint{}, err
		}
		defer cli.Close()
		clis[i] = cli
	}
	// Warm every session's route (and the leader) before the clock
	// starts — in parallel, because a measurement pool can be thousands
	// of sessions and serial warmup would take longer than the window.
	// Warmup ops retry on sheds and timeouts: the pool deliberately
	// outnumbers the edge's admission budget (sheds are expected), and a
	// back-to-back sweep's previous point may leave the leader a backlog
	// of abandoned requests that warmup must outwait — retrying here is
	// what makes warmup double as the inter-point settling barrier.
	// Anything else failing means the cluster is not ready at all.
	warmSem := make(chan struct{}, 64)
	warmErr := make(chan error, 1)
	var warmWG sync.WaitGroup
	for i, cli := range clis {
		warmWG.Add(1)
		go func(i int, cli *client.Client) {
			defer warmWG.Done()
			warmSem <- struct{}{}
			defer func() { <-warmSem }()
			op := cfg.OpFor(i)
			var err error
			for attempt := 0; attempt < 20; attempt++ {
				if err = cfg.Class.issueOp(cli, op); err == nil ||
					(!errors.Is(err, client.ErrOverloaded) && !errors.Is(err, client.ErrTimeout)) {
					break
				}
				time.Sleep(25 * time.Millisecond)
			}
			if err != nil {
				select {
				case warmErr <- fmt.Errorf("open-loop warmup: %w", err):
				default:
				}
			}
		}(i, cli)
	}
	warmWG.Wait()
	select {
	case err := <-warmErr:
		return OpenLoopPoint{}, err
	default:
	}

	// The work queue is the open-loop client-side backlog. It is sized
	// for every arrival the window can generate, so the Poisson process
	// itself never blocks; the Unserved count at drain time is what
	// saturation left behind.
	backlog := int(cfg.Rate*cfg.Duration.Seconds()) + cfg.Workers + 16
	work := make(chan time.Time, backlog)

	var (
		oks, sheds, timeouts, errs, unserved atomic.Int64
		hist                                 = metrics.NewHistogram(metrics.UnitNanoseconds)
		wg                                   sync.WaitGroup
		end                                  time.Time
		endMu                                sync.Mutex // guards end until the generator stamps it
	)
	windowClosed := func(now time.Time) bool {
		endMu.Lock()
		defer endMu.Unlock()
		return !end.IsZero() && now.After(end)
	}
	for i, cli := range clis {
		wg.Add(1)
		go func(cli *client.Client, op []byte) {
			defer wg.Done()
			for arrival := range work {
				now := time.Now()
				if windowClosed(now) {
					// The window is over and this arrival never got a
					// worker: it queued for the entire remainder of the
					// run. Serving it now would measure the drain, not
					// the offered-load point.
					unserved.Add(1)
					continue
				}
				err := cfg.Class.issueOp(cli, op)
				switch {
				case err == nil:
					oks.Add(1)
					hist.Since(arrival)
				case errors.Is(err, client.ErrOverloaded):
					sheds.Add(1)
				case errors.Is(err, client.ErrTimeout):
					timeouts.Add(1)
				default:
					errs.Add(1)
				}
			}
		}(cli, cfg.OpFor(i))
	}

	// Poisson arrival generator: exponential inter-arrival gaps at the
	// target rate. Oversleeps are not compensated by bursting harder —
	// each gap is measured from the previous intended arrival, so the
	// process self-corrects toward the target rate.
	rng := rand.New(rand.NewSource(cfg.Seed))
	t0 := time.Now()
	stop := t0.Add(cfg.Duration)
	offered := 0
	next := t0
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
		if next.After(stop) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		work <- next
		offered++
	}
	endMu.Lock()
	end = time.Now()
	endMu.Unlock()
	close(work)
	wg.Wait()

	elapsed := end.Sub(t0).Seconds()
	s := hist.Snapshot()
	p := OpenLoopPoint{
		TargetRate:    cfg.Rate,
		OfferedPerSec: float64(offered) / elapsed,
		GoodputPerSec: float64(oks.Load()) / elapsed,
		ShedPerSec:    float64(sheds.Load()) / elapsed,
		Offered:       offered,
		OKs:           int(oks.Load()),
		Sheds:         int(sheds.Load()),
		Timeouts:      int(timeouts.Load()),
		Errors:        int(errs.Load()),
		Unserved:      int(unserved.Load()),
		LatMeanMS:     s.MS(s.Mean()),
		LatP50MS:      s.MS(s.P50()),
		LatP95MS:      s.MS(s.P95()),
		LatP99MS:      s.MS(s.P99()),
	}
	if offered > 0 {
		p.ShedFrac = float64(p.Sheds) / float64(offered)
	}
	return p, nil
}

// OpenLoopSeries measures one point per target rate, reusing cfg for
// everything else. Each point draws fresh sessions, so rate points are
// independent runs against the same cluster.
func OpenLoopSeries(cl *cluster.Cluster, cfg OpenLoopConfig, rates []float64) ([]OpenLoopPoint, error) {
	var out []OpenLoopPoint
	for _, r := range rates {
		c := cfg
		c.Rate = r
		p, err := MeasureOpenLoop(cl, c)
		if err != nil {
			return nil, fmt.Errorf("open loop at %.0f/s: %w", r, err)
		}
		out = append(out, p)
	}
	return out, nil
}
