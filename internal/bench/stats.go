// Package bench measures the replicated service the way the paper's
// evaluation does (§4): request response time (RRT) with 99% confidence
// intervals, closed-loop service throughput with c concurrent clients
// issuing 1000/c requests each after a common start signal, and the
// transaction metrics of §4.2.
package bench

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes a sample: mean, standard deviation, and the 99%
// confidence half-interval (Student t), the statistic the paper reports
// for every measurement.
type Stats struct {
	N    int
	Mean float64
	Std  float64
	CI99 float64 // half-width of the 99% confidence interval
	Min  float64
	P50  float64
	P95  float64
	Max  float64
}

// Summarize computes Stats over xs.
func Summarize(xs []float64) Stats {
	n := len(xs)
	if n == 0 {
		return Stats{}
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	st := Stats{
		N:    n,
		Mean: mean,
		Min:  sorted[0],
		P50:  quantile(sorted, 0.50),
		P95:  quantile(sorted, 0.95),
		Max:  sorted[n-1],
	}
	if n > 1 {
		st.Std = math.Sqrt(ss / float64(n-1))
		st.CI99 = TCrit99(n-1) * st.Std / math.Sqrt(float64(n))
	}
	return st
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// tTable99 holds two-sided 99% Student t critical values by degrees of
// freedom.
var tTable99 = []struct {
	df int
	t  float64
}{
	{1, 63.657}, {2, 9.925}, {3, 5.841}, {4, 4.604}, {5, 4.032},
	{6, 3.707}, {7, 3.499}, {8, 3.355}, {9, 3.250}, {10, 3.169},
	{12, 3.055}, {15, 2.947}, {20, 2.845}, {25, 2.787}, {30, 2.750},
	{40, 2.704}, {60, 2.660}, {120, 2.617},
}

// TCrit99 returns the two-sided 99% Student t critical value for the
// given degrees of freedom, interpolating between tabulated points and
// converging to the normal quantile 2.576 for large df.
func TCrit99(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df >= 1000 {
		return 2.576
	}
	last := tTable99[len(tTable99)-1]
	if df > last.df {
		// Interpolate in 1/df toward the normal limit.
		frac := (1/float64(last.df) - 1/float64(df)) / (1 / float64(last.df))
		return last.t + (2.576-last.t)*frac
	}
	for i, e := range tTable99 {
		if df == e.df {
			return e.t
		}
		if df < e.df {
			prev := tTable99[i-1]
			frac := float64(df-prev.df) / float64(e.df-prev.df)
			return prev.t + (e.t-prev.t)*frac
		}
	}
	return last.t
}

// FmtMS renders a Stats as the paper renders response times: mean ±CI in
// milliseconds.
func (s Stats) FmtMS() string {
	return fmt.Sprintf("%.3f ms (99%% CI ±%.3f ms, n=%d)", s.Mean, s.CI99, s.N)
}
