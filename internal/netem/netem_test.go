package netem

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gridrep/internal/wire"
)

func TestLatencySampleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := Latency{Base: 100 * time.Microsecond, Jitter: 50 * time.Microsecond,
		Tail: 10 * time.Millisecond, TailProb: 0.5}
	lo := l.Base
	hi := l.Base + l.Jitter + l.Tail
	for i := 0; i < 10000; i++ {
		d := l.Sample(rng)
		if d < lo || d >= hi {
			t.Fatalf("sample %v outside [%v, %v)", d, lo, hi)
		}
	}
}

func TestLatencySampleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(base, jitter uint16) bool {
		l := Latency{Base: time.Duration(base) * time.Microsecond,
			Jitter: time.Duration(jitter) * time.Microsecond}
		d := l.Sample(rng)
		return d >= l.Base && d <= l.Base+l.Jitter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyMean(t *testing.T) {
	l := Latency{Base: 100, Jitter: 50, Tail: 1000, TailProb: 0.1}
	want := time.Duration(100 + 25 + 50)
	if got := l.Mean(); got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	rng := rand.New(rand.NewSource(3))
	var sum time.Duration
	const n = 200000
	for i := 0; i < n; i++ {
		sum += l.Sample(rng)
	}
	emp := sum / n
	if emp < want*8/10 || emp > want*12/10 {
		t.Fatalf("empirical mean %v far from analytic %v", emp, want)
	}
}

func TestModelDefaultClasses(t *testing.T) {
	m := NewModel(1, nil)
	if m.ClassOf(0) != ClassReplica || m.ClassOf(2) != ClassReplica {
		t.Error("replica IDs must map to ClassReplica")
	}
	if m.ClassOf(wire.ClientIDBase) != ClassClient {
		t.Error("client IDs must map to ClassClient")
	}
}

func TestModelDecideLatency(t *testing.T) {
	m := NewModel(1, nil)
	m.SetLinkSym(ClassReplica, ClassReplica, Latency{Base: 5 * time.Millisecond})
	d, ok := m.Decide(0, 1)
	if !ok || d != 5*time.Millisecond {
		t.Fatalf("Decide = (%v, %v), want (5ms, true)", d, ok)
	}
}

func TestModelLoss(t *testing.T) {
	m := NewModel(7, nil)
	m.SetLoss(ClassReplica, ClassReplica, 1.0)
	if _, ok := m.Decide(0, 1); ok {
		t.Fatal("loss=1.0 must drop every message")
	}
	m.SetLoss(ClassReplica, ClassReplica, 0)
	if _, ok := m.Decide(0, 1); !ok {
		t.Fatal("loss=0 must deliver")
	}
	// Statistical check at p=0.3.
	m.SetLoss(ClassReplica, ClassReplica, 0.3)
	dropped := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if _, ok := m.Decide(0, 1); !ok {
			dropped++
		}
	}
	frac := float64(dropped) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("drop fraction %.3f far from 0.3", frac)
	}
}

func TestModelCutAndHeal(t *testing.T) {
	m := NewModel(1, nil)
	m.Cut(0, 1)
	if _, ok := m.Decide(0, 1); ok {
		t.Fatal("cut link must drop")
	}
	if _, ok := m.Decide(1, 0); ok {
		t.Fatal("cut must be bidirectional")
	}
	if _, ok := m.Decide(0, 2); !ok {
		t.Fatal("other links must be unaffected")
	}
	m.Heal(0, 1)
	if _, ok := m.Decide(0, 1); !ok {
		t.Fatal("healed link must deliver")
	}
}

func TestModelDown(t *testing.T) {
	m := NewModel(1, nil)
	m.SetDown(1, true)
	if !m.IsDown(1) {
		t.Fatal("IsDown must report crash")
	}
	if _, ok := m.Decide(0, 1); ok {
		t.Fatal("messages to a crashed node must drop")
	}
	if _, ok := m.Decide(1, 0); ok {
		t.Fatal("messages from a crashed node must drop")
	}
	m.SetDown(1, false)
	if _, ok := m.Decide(0, 1); !ok {
		t.Fatal("recovered node must receive again")
	}
}

// TestSysnetCalibration checks that the Sysnet profile reproduces the
// paper's latency algebra: original = 2M+E ≈ 0.181 ms, write = 2M+E+2m ≈
// 0.338 ms, read = 2M+max(E,m) ≈ 0.263 ms (E ≈ 0 for the empty service).
func TestSysnetCalibration(t *testing.T) {
	p := Sysnet()
	m := p.NewModel(1)
	M := m.MeanLatency(ClassClient, ClassReplica)
	mm := m.MeanLatency(ClassReplica, ClassReplica)
	orig := 2 * M
	write := 2*M + 2*mm
	read := 2*M + mm
	within := func(got time.Duration, wantMS float64) bool {
		w := time.Duration(wantMS * float64(time.Millisecond))
		diff := got - w
		if diff < 0 {
			diff = -diff
		}
		return diff < w/5 // within 20%
	}
	if !within(orig, 0.181) {
		t.Errorf("original model latency %v, paper 0.181ms", orig)
	}
	if !within(write, 0.338) {
		t.Errorf("write model latency %v, paper 0.338ms", write)
	}
	if !within(read, 0.263) {
		t.Errorf("read model latency %v, paper 0.263ms", read)
	}
}

// TestB2PCalibration: all three request kinds should land near 92 ms, with
// write − original = 2m ≈ 1.3 ms.
func TestB2PCalibration(t *testing.T) {
	p := B2P()
	m := p.NewModel(1)
	M := m.MeanLatency(ClassClient, ClassReplica)
	mm := m.MeanLatency(ClassReplica, ClassReplica)
	if o := 2 * M; o < 88*time.Millisecond || o > 96*time.Millisecond {
		t.Errorf("original 2M = %v, paper 91.85ms", o)
	}
	if d := 2 * mm; d < 500*time.Microsecond || d > 2500*time.Microsecond {
		t.Errorf("write-original gap 2m = %v, paper ≈1.3ms", d)
	}
}

// TestWANCalibration: original ≈ 70.8 ms, write ≈ 106.7 ms; the X-Paxos
// confirm detour (client→backup + backup→leader − client→leader) ≈ 4.7 ms.
func TestWANCalibration(t *testing.T) {
	p := WAN(0)
	m := p.NewModel(1)
	M := m.MeanLatency(ClassClient, ClassLeaderSite)
	Mb := m.MeanLatency(ClassClient, ClassRemoteSite)
	rr := m.MeanLatency(ClassLeaderSite, ClassRemoteSite)
	if o := 2 * M; o < 67*time.Millisecond || o > 75*time.Millisecond {
		t.Errorf("original 2M = %v, paper 70.82ms", o)
	}
	if w := 2*M + 2*rr; w < 100*time.Millisecond || w > 113*time.Millisecond {
		t.Errorf("write 2M+2m = %v, paper 106.73ms", w)
	}
	detour := Mb + rr - M
	if detour < 2*time.Millisecond || detour > 8*time.Millisecond {
		t.Errorf("confirm detour = %v, paper ≈4.7ms", detour)
	}
}

func TestWANClassMapping(t *testing.T) {
	p := WAN(0)
	m := p.NewModel(1)
	if m.ClassOf(0) != ClassLeaderSite {
		t.Error("replica 0 must be at the leader site")
	}
	if m.ClassOf(1) != ClassRemoteSite || m.ClassOf(2) != ClassRemoteSite {
		t.Error("other replicas must be at remote sites")
	}
	if m.ClassOf(wire.ClientIDBase) != ClassClient {
		t.Error("clients must map to ClassClient")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ProfileByName(%q).Name = %q", name, p.Name)
		}
		if p.Configure == nil || p.MaxOneWay == 0 {
			t.Errorf("profile %q incomplete", name)
		}
	}
	// Regression: an unknown name must be a hard error naming the valid
	// profiles, not a silently unconfigured zero model.
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile must return an error")
	} else if !strings.Contains(err.Error(), "wan3") {
		t.Errorf("error should list valid names, got %v", err)
	}
}

// TestProfileMaxOneWayCoversTails pins the timeout-derivation contract:
// every profile's advertised MaxOneWay bounds the worst sample any of
// its links can produce, jitter and heavy tail included. A profile that
// violates this makes cluster-derived Ω timeouts false-trigger under
// tail delays.
func TestProfileMaxOneWayCoversTails(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m := p.NewModel(1)
		if worst := m.MaxOneWay(); worst > p.MaxOneWay {
			t.Errorf("profile %q: worst link sample %v exceeds advertised MaxOneWay %v",
				name, worst, p.MaxOneWay)
		}
	}
}

// TestWANSpreadGeometry sanity-checks the modernized geo profiles:
// region mapping covers replicas and clients, links are asymmetric, and
// scaling compresses latency without changing shape.
func TestWANSpreadGeometry(t *testing.T) {
	p := WAN3()
	if p.Regions != 3 || p.RegionOf == nil {
		t.Fatal("wan3 must describe 3 regions")
	}
	for r := 0; r < 3; r++ {
		if p.RegionOf(wire.NodeID(r)) != r {
			t.Errorf("replica %d region = %d", r, p.RegionOf(wire.NodeID(r)))
		}
		if p.RegionOf(wire.ClientIDBase+wire.NodeID(r)) != r {
			t.Errorf("client %d region = %d", r, p.RegionOf(wire.ClientIDBase+wire.NodeID(r)))
		}
	}
	m := p.NewModel(1)
	// Replica 0 (us-east) and its co-located client share a region:
	// the local link must be far cheaper than the cross-continent one.
	local := m.MeanLatency(m.ClassOf(wire.ClientIDBase), m.ClassOf(0))
	far := m.MeanLatency(m.ClassOf(wire.ClientIDBase), m.ClassOf(2))
	if local >= far/10 {
		t.Errorf("intra-region %v should be far below cross-continent %v", local, far)
	}
	// Asymmetry: us-east→ap-southeast differs from the reverse path.
	ab := m.MeanLatency(m.ClassOf(0), m.ClassOf(2))
	ba := m.MeanLatency(m.ClassOf(2), m.ClassOf(0))
	if ab == ba {
		t.Error("cross-continent links must be asymmetric")
	}
	// Scaling preserves shape.
	s := WAN3Scaled(0.1)
	sm := s.NewModel(1)
	sab := sm.MeanLatency(sm.ClassOf(0), sm.ClassOf(2))
	if sab <= 0 || sab >= ab {
		t.Errorf("scaled latency %v should be below unscaled %v", sab, ab)
	}
	if s.MaxOneWay >= p.MaxOneWay {
		t.Error("scaled MaxOneWay must shrink with the geometry")
	}
	if w5 := WAN5(); w5.Regions != 5 || w5.MaxOneWay <= p.MaxOneWay {
		t.Error("wan5 must span 5 regions and a wider spread than wan3")
	}
}

func TestModelConcurrency(t *testing.T) {
	m := Sysnet().NewModel(1)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 2000; i++ {
				m.Decide(wire.NodeID(g%3), wire.ClientIDBase+wire.NodeID(i%5))
				if i%100 == 0 {
					m.SetDown(wire.NodeID(g%3), i%200 == 0)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
