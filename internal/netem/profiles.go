package netem

import (
	"fmt"
	"strings"
	"time"

	"gridrep/internal/wire"
)

// Extra classes used by the WAN profile: the leader's site versus the
// other replica sites, because in the paper's third configuration the
// client→replica latency differs per site.
const (
	ClassLeaderSite Class = 2
	ClassRemoteSite Class = 3
)

// ClassRegionBase is the first class used by the modernized geo-spread
// profiles (wan3/wan5): region r maps to class ClassRegionBase+r, and
// clients share their region's class — a client and the replica in its
// region sit in the same data center.
const ClassRegionBase Class = 4

// Profile names one of the evaluation network configurations (§4), or
// one of the modernized cross-continent spreads (DESIGN.md §16).
type Profile struct {
	// Name identifies the profile ("sysnet", "b2p", "wan", "wan3",
	// "wan5", "loopback").
	Name string
	// ClassOf maps nodes to link classes; nil means the default
	// replica/client split.
	ClassOf func(wire.NodeID) Class
	// Configure installs the profile's link latencies into a model.
	Configure func(*Model)
	// MaxOneWay is an upper bound on one-way delay — including the
	// jitter and tail terms, so Ω timeouts derived from it are not
	// false-triggered by heavy-tail samples (the timeout-derivation
	// contract is pinned by cluster.TestProfileTimeoutDerivation).
	MaxOneWay time.Duration
	// Regions and RegionOf describe the profile's geography when it has
	// one (wan3/wan5): RegionOf maps any node — replica or client — to
	// its region index in [0, Regions). Regions is 0 for the classic
	// single-geometry profiles.
	Regions  int
	RegionOf func(wire.NodeID) int
	// PipelineDepth and CommitFlushDelay are per-profile tuning hints:
	// long-haul profiles need a deep speculative pipeline to hide the
	// round trip and a wider commit-flush window to amortize commit
	// broadcasts. Harnesses apply them when the caller did not override
	// (0 = no hint, keep the core defaults).
	PipelineDepth    int
	CommitFlushDelay time.Duration
}

// NewModel builds a configured network model for the profile.
func (p Profile) NewModel(seed int64) *Model {
	m := NewModel(seed, p.ClassOf)
	p.Configure(m)
	return m
}

// Sysnet models the paper's local cluster: Pentium IV machines on a
// Gigabit Ethernet. Calibrated from the measured response times
// (original 0.181 ms = 2M+E, write 0.338 ms = 2M+E+2m, read 0.263 ms =
// 2M+max(E,m)): one-way client↔replica M ≈ 88 µs, replica↔replica
// m ≈ 78 µs, with a few microseconds of jitter.
func Sysnet() Profile {
	return Profile{
		Name:      "sysnet",
		MaxOneWay: 150 * time.Microsecond,
		Configure: func(m *Model) {
			cr := Latency{Base: 84 * time.Microsecond, Jitter: 8 * time.Microsecond}
			rr := Latency{Base: 74 * time.Microsecond, Jitter: 8 * time.Microsecond}
			m.SetLinkSym(ClassClient, ClassReplica, cr)
			m.SetLinkSym(ClassReplica, ClassReplica, rr)
			m.SetLinkSym(ClassClient, ClassClient, cr)
		},
	}
}

// B2P models the paper's second configuration: all replicas close
// together at Princeton, clients at Berkeley. Calibrated from the
// measured 91.85/92.79/93.13 ms RRTs: M ≈ 45.8 ms, m ≈ 0.45 ms.
func B2P() Profile {
	return Profile{
		Name:      "b2p",
		MaxOneWay: 50 * time.Millisecond,
		Configure: func(m *Model) {
			cr := Latency{Base: 45600 * time.Microsecond, Jitter: 400 * time.Microsecond,
				Tail: 3 * time.Millisecond, TailProb: 0.01}
			rr := Latency{Base: 400 * time.Microsecond, Jitter: 100 * time.Microsecond}
			m.SetLinkSym(ClassClient, ClassReplica, cr)
			m.SetLinkSym(ClassReplica, ClassReplica, rr)
			m.SetLinkSym(ClassClient, ClassClient, cr)
		},
	}
}

// WAN models the paper's third configuration: the leader replica at UIUC,
// backups at Utah and UT Austin, clients at Berkeley and Intel Oregon.
// Calibrated from the measured 70.82/75.49/106.73 ms RRTs:
// client→leader-site ≈ 35.2 ms, client→backup-site ≈ 21.8 ms,
// replica↔replica ≈ 17.8 ms. The asymmetry (clients closer to the backup
// sites than to the leader) is what makes the X-Paxos confirm path nearly
// free in this configuration.
//
// leaderNode is the replica hosted at the leader site (the paper pinned
// the leader at UIUC; with the shipped Ω election, replica 0 stays leader
// while alive, so pass 0).
func WAN(leaderNode wire.NodeID) Profile {
	classOf := func(id wire.NodeID) Class {
		switch {
		case id.IsClient():
			return ClassClient
		case id == leaderNode:
			return ClassLeaderSite
		default:
			return ClassRemoteSite
		}
	}
	return Profile{
		Name:      "wan",
		ClassOf:   classOf,
		MaxOneWay: 45 * time.Millisecond,
		Configure: func(m *Model) {
			cl := Latency{Base: 35 * time.Millisecond, Jitter: 400 * time.Microsecond,
				Tail: 4 * time.Millisecond, TailProb: 0.02}
			cb := Latency{Base: 21600 * time.Microsecond, Jitter: 400 * time.Microsecond,
				Tail: 4 * time.Millisecond, TailProb: 0.02}
			rr := Latency{Base: 17600 * time.Microsecond, Jitter: 300 * time.Microsecond,
				Tail: 3 * time.Millisecond, TailProb: 0.01}
			m.SetLinkSym(ClassClient, ClassLeaderSite, cl)
			m.SetLinkSym(ClassClient, ClassRemoteSite, cb)
			m.SetLinkSym(ClassLeaderSite, ClassRemoteSite, rr)
			m.SetLinkSym(ClassRemoteSite, ClassRemoteSite, rr)
			m.SetLinkSym(ClassClient, ClassClient, cb)
		},
	}
}

// Loopback is a near-zero-latency profile for unit and integration tests
// where wall-clock time should not matter.
func Loopback() Profile {
	return Profile{
		Name:      "loopback",
		MaxOneWay: time.Millisecond,
		Configure: func(m *Model) {
			l := Latency{Base: 20 * time.Microsecond, Jitter: 20 * time.Microsecond}
			for a := Class(0); a < 2; a++ {
				for b := Class(0); b < 2; b++ {
					m.SetLink(a, b, l)
				}
			}
		},
	}
}

// wanRegions is the one-way base latency matrix (row = source region,
// column = destination region) for the modernized geo spreads,
// calibrated from present-day inter-region cloud measurements. The five
// regions are us-east, eu-west, ap-southeast, us-west, sa-east; wan3
// uses the first three. The matrix is deliberately asymmetric — routes
// differ per direction on real backbones — and every cross-region link
// gets jitter plus a heavy tail (cf. the PlanetLab delivery-time
// variance of §4.3).
var wanRegionNames = [5]string{"us-east", "eu-west", "ap-southeast", "us-west", "sa-east"}

var wanOneWayMS = [5][5]float64{
	{0.3, 37, 105, 30, 58},
	{40, 0.3, 88, 65, 92},
	{112, 92, 0.3, 85, 160},
	{32, 68, 89, 0.3, 90},
	{62, 95, 168, 93, 0.3},
}

// wanSpread builds an n-region cross-continent profile. Replica r lives
// in region r mod n; client c (IDs from wire.ClientIDBase) lives in
// region c mod n, co-located with that region's replica. scale
// multiplies every latency — tests compress a 200 ms geography into a
// few milliseconds without changing its shape.
func wanSpread(name string, n int, scale float64) Profile {
	regionOf := func(id wire.NodeID) int {
		if id.IsClient() {
			return int(id-wire.ClientIDBase) % n
		}
		return int(id) % n
	}
	classOf := func(id wire.NodeID) Class {
		return ClassRegionBase + Class(regionOf(id))
	}
	at := func(ms float64) time.Duration {
		return time.Duration(ms * scale * float64(time.Millisecond))
	}
	var maxOneWay time.Duration
	lat := func(a, b int) Latency {
		if a == b {
			return Latency{Base: at(wanOneWayMS[a][b]), Jitter: at(0.2)}
		}
		return Latency{
			Base:     at(wanOneWayMS[a][b]),
			Jitter:   at(2),
			Tail:     at(40),
			TailProb: 0.04,
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			l := lat(a, b)
			if w := l.Base + l.Jitter + l.Tail; w > maxOneWay {
				maxOneWay = w
			}
		}
	}
	return Profile{
		Name:      name,
		ClassOf:   classOf,
		Regions:   n,
		RegionOf:  regionOf,
		MaxOneWay: maxOneWay,
		Configure: func(m *Model) {
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					m.SetLink(ClassRegionBase+Class(a), ClassRegionBase+Class(b), lat(a, b))
				}
			}
		},
		// Long-haul tuning: enough pipeline depth to keep several waves
		// in flight across a ~100 ms RTT, and a commit-flush window wide
		// enough to piggyback commits on the next wave instead of paying
		// a broadcast per instance. Scaled with the geography, floored
		// at the core defaults.
		PipelineDepth:    8,
		CommitFlushDelay: maxDuration(time.Millisecond, at(5)),
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// WAN3 is a modernized three-continent spread (us-east, eu-west,
// ap-southeast): one replica and one client fleet per region, asymmetric
// per-link latency, jittery heavy tails.
func WAN3() Profile { return wanSpread("wan3", 3, 1) }

// WAN5 extends WAN3 with us-west and sa-east for five regions.
func WAN5() Profile { return wanSpread("wan5", 5, 1) }

// WAN3Scaled / WAN5Scaled return the same topologies with every latency
// multiplied by scale, so tests can run the real geometry in compressed
// time.
func WAN3Scaled(scale float64) Profile { return wanSpread("wan3", 3, scale) }

// WAN5Scaled is WAN3Scaled for the five-region spread.
func WAN5Scaled(scale float64) Profile { return wanSpread("wan5", 5, scale) }

// RegionName returns a human-readable name for a wan3/wan5 region index.
func RegionName(r int) string {
	if r < 0 || r >= len(wanRegionNames) {
		return fmt.Sprintf("region%d", r)
	}
	return wanRegionNames[r]
}

// ProfileNames lists every name ProfileByName accepts.
func ProfileNames() []string {
	return []string{"sysnet", "b2p", "wan", "wan3", "wan5", "loopback"}
}

// ProfileByName returns the named profile, defaulting the WAN leader site
// to replica 0. Unknown names are an error listing the valid ones — a
// typoed -profile flag must fail fast, not run on an unconfigured
// zero-latency network.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "sysnet":
		return Sysnet(), nil
	case "b2p":
		return B2P(), nil
	case "wan":
		return WAN(0), nil
	case "wan3":
		return WAN3(), nil
	case "wan5":
		return WAN5(), nil
	case "loopback":
		return Loopback(), nil
	default:
		return Profile{}, fmt.Errorf("netem: unknown profile %q (valid: %s)",
			name, strings.Join(ProfileNames(), ", "))
	}
}
