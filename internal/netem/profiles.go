package netem

import (
	"time"

	"gridrep/internal/wire"
)

// Extra classes used by the WAN profile: the leader's site versus the
// other replica sites, because in the paper's third configuration the
// client→replica latency differs per site.
const (
	ClassLeaderSite Class = 2
	ClassRemoteSite Class = 3
)

// Profile names one of the evaluation network configurations (§4).
type Profile struct {
	// Name identifies the profile ("sysnet", "b2p", "wan").
	Name string
	// ClassOf maps nodes to link classes; nil means the default
	// replica/client split.
	ClassOf func(wire.NodeID) Class
	// Configure installs the profile's link latencies into a model.
	Configure func(*Model)
	// MaxOneWay is an upper bound (excluding tail events) on one-way
	// delay, used by harnesses to derive heartbeat/retry timeouts.
	MaxOneWay time.Duration
}

// NewModel builds a configured network model for the profile.
func (p Profile) NewModel(seed int64) *Model {
	m := NewModel(seed, p.ClassOf)
	p.Configure(m)
	return m
}

// Sysnet models the paper's local cluster: Pentium IV machines on a
// Gigabit Ethernet. Calibrated from the measured response times
// (original 0.181 ms = 2M+E, write 0.338 ms = 2M+E+2m, read 0.263 ms =
// 2M+max(E,m)): one-way client↔replica M ≈ 88 µs, replica↔replica
// m ≈ 78 µs, with a few microseconds of jitter.
func Sysnet() Profile {
	return Profile{
		Name:      "sysnet",
		MaxOneWay: 150 * time.Microsecond,
		Configure: func(m *Model) {
			cr := Latency{Base: 84 * time.Microsecond, Jitter: 8 * time.Microsecond}
			rr := Latency{Base: 74 * time.Microsecond, Jitter: 8 * time.Microsecond}
			m.SetLinkSym(ClassClient, ClassReplica, cr)
			m.SetLinkSym(ClassReplica, ClassReplica, rr)
			m.SetLinkSym(ClassClient, ClassClient, cr)
		},
	}
}

// B2P models the paper's second configuration: all replicas close
// together at Princeton, clients at Berkeley. Calibrated from the
// measured 91.85/92.79/93.13 ms RRTs: M ≈ 45.8 ms, m ≈ 0.45 ms.
func B2P() Profile {
	return Profile{
		Name:      "b2p",
		MaxOneWay: 50 * time.Millisecond,
		Configure: func(m *Model) {
			cr := Latency{Base: 45600 * time.Microsecond, Jitter: 400 * time.Microsecond,
				Tail: 3 * time.Millisecond, TailProb: 0.01}
			rr := Latency{Base: 400 * time.Microsecond, Jitter: 100 * time.Microsecond}
			m.SetLinkSym(ClassClient, ClassReplica, cr)
			m.SetLinkSym(ClassReplica, ClassReplica, rr)
			m.SetLinkSym(ClassClient, ClassClient, cr)
		},
	}
}

// WAN models the paper's third configuration: the leader replica at UIUC,
// backups at Utah and UT Austin, clients at Berkeley and Intel Oregon.
// Calibrated from the measured 70.82/75.49/106.73 ms RRTs:
// client→leader-site ≈ 35.2 ms, client→backup-site ≈ 21.8 ms,
// replica↔replica ≈ 17.8 ms. The asymmetry (clients closer to the backup
// sites than to the leader) is what makes the X-Paxos confirm path nearly
// free in this configuration.
//
// leaderNode is the replica hosted at the leader site (the paper pinned
// the leader at UIUC; with the shipped Ω election, replica 0 stays leader
// while alive, so pass 0).
func WAN(leaderNode wire.NodeID) Profile {
	classOf := func(id wire.NodeID) Class {
		switch {
		case id.IsClient():
			return ClassClient
		case id == leaderNode:
			return ClassLeaderSite
		default:
			return ClassRemoteSite
		}
	}
	return Profile{
		Name:      "wan",
		ClassOf:   classOf,
		MaxOneWay: 45 * time.Millisecond,
		Configure: func(m *Model) {
			cl := Latency{Base: 35 * time.Millisecond, Jitter: 400 * time.Microsecond,
				Tail: 4 * time.Millisecond, TailProb: 0.02}
			cb := Latency{Base: 21600 * time.Microsecond, Jitter: 400 * time.Microsecond,
				Tail: 4 * time.Millisecond, TailProb: 0.02}
			rr := Latency{Base: 17600 * time.Microsecond, Jitter: 300 * time.Microsecond,
				Tail: 3 * time.Millisecond, TailProb: 0.01}
			m.SetLinkSym(ClassClient, ClassLeaderSite, cl)
			m.SetLinkSym(ClassClient, ClassRemoteSite, cb)
			m.SetLinkSym(ClassLeaderSite, ClassRemoteSite, rr)
			m.SetLinkSym(ClassRemoteSite, ClassRemoteSite, rr)
			m.SetLinkSym(ClassClient, ClassClient, cb)
		},
	}
}

// Loopback is a near-zero-latency profile for unit and integration tests
// where wall-clock time should not matter.
func Loopback() Profile {
	return Profile{
		Name:      "loopback",
		MaxOneWay: time.Millisecond,
		Configure: func(m *Model) {
			l := Latency{Base: 20 * time.Microsecond, Jitter: 20 * time.Microsecond}
			for a := Class(0); a < 2; a++ {
				for b := Class(0); b < 2; b++ {
					m.SetLink(a, b, l)
				}
			}
		},
	}
}

// ProfileByName returns the named profile, defaulting the WAN leader site
// to replica 0. It returns a zero-Name profile when unknown.
func ProfileByName(name string) Profile {
	switch name {
	case "sysnet":
		return Sysnet()
	case "b2p":
		return B2P()
	case "wan":
		return WAN(0)
	case "loopback":
		return Loopback()
	default:
		return Profile{}
	}
}
