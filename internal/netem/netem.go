// Package netem models wide-area and cluster network behaviour for the
// in-process transport: per-link one-way latency distributions, message
// loss, and partitions.
//
// The HPDC 2006 paper evaluates on three physical configurations — the
// UCSD "Sysnet" cluster, PlanetLab Berkeley→Princeton, and a PlanetLab
// wide-area spread. Profiles calibrated from the paper's measured response
// times are provided by the profiles.go file so benchmarks exercise the
// same latency algebra (2M+E+2m for writes, 2M+max(E,m) for X-Paxos reads)
// as the original testbed.
package netem

import (
	"math/rand"
	"sync"
	"time"

	"gridrep/internal/wire"
)

// Latency describes a one-way link delay distribution: a base delay plus
// uniform jitter in [0, Jitter), plus — with probability TailProb — an
// extra delay uniform in [0, Tail). The heavy-tail term models the large
// delivery-time variance of PlanetLab paths (§4.3).
type Latency struct {
	Base     time.Duration
	Jitter   time.Duration
	Tail     time.Duration
	TailProb float64
}

// Sample draws one delay from the distribution using rng.
func (l Latency) Sample(rng *rand.Rand) time.Duration {
	d := l.Base
	if l.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(l.Jitter)))
	}
	if l.TailProb > 0 && l.Tail > 0 && rng.Float64() < l.TailProb {
		d += time.Duration(rng.Int63n(int64(l.Tail)))
	}
	return d
}

// Mean returns the expected one-way delay of the distribution.
func (l Latency) Mean() time.Duration {
	m := float64(l.Base) + float64(l.Jitter)/2
	m += l.TailProb * float64(l.Tail) / 2
	return time.Duration(m)
}

// Class partitions nodes for link lookup. Profiles define latencies
// between classes rather than between individual nodes; a ClassFunc maps a
// node to its class (e.g. "replica at Princeton", "client at Berkeley").
type Class uint8

// Predefined classes used by the shipped profiles. Profiles may define
// more classes (e.g. per-site replica groups in the WAN configuration).
const (
	ClassReplica Class = iota
	ClassClient
	classLimit = 16
)

// Model is the mutable network model consulted by the transport on every
// send. It is safe for concurrent use.
type Model struct {
	mu      sync.Mutex
	rng     *rand.Rand
	classOf func(wire.NodeID) Class
	link    [classLimit][classLimit]Latency
	loss    [classLimit][classLimit]float64
	cut     map[[2]wire.NodeID]bool // severed node pairs (both directions stored explicitly)
	down    map[wire.NodeID]bool    // crashed nodes drop all traffic
}

// NewModel builds a network model with the given node→class mapping and
// RNG seed. A nil classOf maps replicas (IDs below wire.ClientIDBase) to
// ClassReplica and everything else to ClassClient.
func NewModel(seed int64, classOf func(wire.NodeID) Class) *Model {
	if classOf == nil {
		classOf = func(id wire.NodeID) Class {
			if id.IsClient() {
				return ClassClient
			}
			return ClassReplica
		}
	}
	return &Model{
		rng:     rand.New(rand.NewSource(seed)),
		classOf: classOf,
		cut:     make(map[[2]wire.NodeID]bool),
		down:    make(map[wire.NodeID]bool),
	}
}

// SetLink sets the one-way latency distribution from class a to class b
// (directional; call twice for symmetric links or use SetLinkSym).
func (m *Model) SetLink(a, b Class, l Latency) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.link[a][b] = l
}

// SetLinkSym sets the latency distribution in both directions.
func (m *Model) SetLinkSym(a, b Class, l Latency) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.link[a][b] = l
	m.link[b][a] = l
}

// SetLoss sets the independent drop probability from class a to class b.
func (m *Model) SetLoss(a, b Class, p float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.loss[a][b] = p
}

// Cut severs the link between two specific nodes in both directions.
func (m *Model) Cut(a, b wire.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cut[[2]wire.NodeID{a, b}] = true
	m.cut[[2]wire.NodeID{b, a}] = true
}

// Heal restores the link between two specific nodes.
func (m *Model) Heal(a, b wire.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cut, [2]wire.NodeID{a, b})
	delete(m.cut, [2]wire.NodeID{b, a})
}

// SetDown marks a node crashed (true) or recovered (false). Messages to
// and from a crashed node are dropped, modelling a crash failure in which
// the process executes no protocol steps (§3.1).
func (m *Model) SetDown(n wire.NodeID, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if down {
		m.down[n] = true
	} else {
		delete(m.down, n)
	}
}

// IsDown reports whether the node is currently marked crashed.
func (m *Model) IsDown(n wire.NodeID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down[n]
}

// Decide returns the delivery delay for one message from a to b, and
// whether it is delivered at all.
func (m *Model) Decide(a, b wire.NodeID) (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down[a] || m.down[b] || m.cut[[2]wire.NodeID{a, b}] {
		return 0, false
	}
	ca, cb := m.classOf(a), m.classOf(b)
	if p := m.loss[ca][cb]; p > 0 && m.rng.Float64() < p {
		return 0, false
	}
	return m.link[ca][cb].Sample(m.rng), true
}

// MeanLatency returns the expected one-way delay between two classes,
// useful for computing heartbeat and retry timeouts from a profile.
func (m *Model) MeanLatency(a, b Class) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.link[a][b].Mean()
}

// ClassOf exposes the node→class mapping.
func (m *Model) ClassOf(n wire.NodeID) Class { return m.classOf(n) }

// MaxOneWay returns the largest one-way delay any configured link can
// sample: base + jitter + tail over the whole class matrix. Profiles
// must advertise a MaxOneWay at least this large, or the timeouts
// harnesses derive from it would be false-triggered by tail samples.
func (m *Model) MaxOneWay() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max time.Duration
	for a := 0; a < classLimit; a++ {
		for b := 0; b < classLimit; b++ {
			l := m.link[a][b]
			if w := l.Base + l.Jitter + l.Tail; w > max {
				max = w
			}
		}
	}
	return max
}
