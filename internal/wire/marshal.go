package wire

import "fmt"

// This file implements MarshalTo/UnmarshalFrom for every protocol message.
// Encodings are versionless and positional; the envelope type byte selects
// the decoder. Every slice is bounds-checked through Decoder.SliceLen and
// every blob through Decoder.Bytes8.

// nearFlag marks a request whose kind byte is followed by a Near target
// (nearest-replica reads, DESIGN.md §16). Like the envelope's grouped
// flag (codec.go), it keeps requests without the extension byte-for-byte
// the original encoding.
const nearFlag = 0x80

func marshalRequest(enc *Encoder, r *Request) {
	enc.NodeID(r.Client)
	enc.Uvarint(r.Seq)
	k := uint8(r.Kind)
	if r.NearSet {
		k |= nearFlag
	}
	enc.Uint8(k)
	if r.NearSet {
		enc.NodeID(r.Near)
	}
	enc.Uvarint(r.Txn)
	enc.Uvarint(uint64(r.TxnSeq))
	enc.Bytes8(r.Op)
}

func unmarshalRequest(dec *Decoder, r *Request) error {
	r.Client = dec.NodeID()
	r.Seq = dec.Uvarint()
	k := dec.Uint8()
	r.NearSet = k&nearFlag != 0
	k &^= nearFlag
	if k >= uint8(numRequestKinds) && dec.Err() == nil {
		return fmt.Errorf("wire: invalid request kind %d", k)
	}
	r.Kind = RequestKind(k)
	if r.NearSet {
		r.Near = dec.NodeID()
	} else {
		r.Near = 0
	}
	r.Txn = dec.Uvarint()
	r.TxnSeq = uint32(dec.Uvarint())
	r.Op = dec.Bytes8()
	return dec.Err()
}

func marshalProposal(enc *Encoder, p *Proposal) {
	enc.Uvarint(uint64(len(p.Reqs)))
	for i := range p.Reqs {
		marshalRequest(enc, &p.Reqs[i])
	}
	enc.Bool(p.HasState)
	if p.HasState {
		enc.Uint8(uint8(p.Kind))
		enc.Bytes8(p.State)
	}
	enc.Uvarint(uint64(len(p.Aux)))
	for _, aux := range p.Aux {
		enc.Bytes8(aux)
	}
	enc.Uvarint(uint64(len(p.Results)))
	for _, res := range p.Results {
		enc.Bytes8(res)
	}
	enc.Uint8(uint8(p.ConfigOp))
	if p.ConfigOp != ConfigNone {
		enc.NodeID(p.ConfigNode)
		enc.String(p.ConfigAddr)
	}
}

func unmarshalProposal(dec *Decoder, p *Proposal) error {
	n := dec.SliceLen()
	if dec.Err() != nil {
		return dec.Err()
	}
	p.Reqs = make([]Request, n)
	for i := range p.Reqs {
		if err := unmarshalRequest(dec, &p.Reqs[i]); err != nil {
			return err
		}
	}
	p.HasState = dec.Bool()
	if p.HasState {
		p.Kind = StateKind(dec.Uint8())
		p.State = dec.Bytes8()
	} else {
		p.Kind = StateFull
		p.State = nil
	}
	na := dec.SliceLen()
	if dec.Err() != nil {
		return dec.Err()
	}
	if na > 0 {
		p.Aux = make([][]byte, na)
		for i := range p.Aux {
			p.Aux[i] = dec.Bytes8()
		}
	} else {
		p.Aux = nil
	}
	m := dec.SliceLen()
	if dec.Err() != nil {
		return dec.Err()
	}
	if m > 0 {
		p.Results = make([][]byte, m)
		for i := range p.Results {
			p.Results[i] = dec.Bytes8()
		}
	} else {
		p.Results = nil
	}
	op := dec.Uint8()
	if op >= uint8(numConfigOps) && dec.Err() == nil {
		return fmt.Errorf("wire: invalid config op %d", op)
	}
	p.ConfigOp = ConfigOp(op)
	if p.ConfigOp != ConfigNone {
		p.ConfigNode = dec.NodeID()
		p.ConfigAddr = dec.String()
	} else {
		p.ConfigNode = 0
		p.ConfigAddr = ""
	}
	return dec.Err()
}

func marshalEntry(enc *Encoder, e *Entry) {
	enc.Uvarint(e.Instance)
	enc.Ballot(e.Bal)
	marshalProposal(enc, &e.Prop)
}

func unmarshalEntry(dec *Decoder, e *Entry) error {
	e.Instance = dec.Uvarint()
	e.Bal = dec.Ballot()
	return unmarshalProposal(dec, &e.Prop)
}

func marshalEntries(enc *Encoder, es []Entry) {
	enc.Uvarint(uint64(len(es)))
	for i := range es {
		marshalEntry(enc, &es[i])
	}
}

func unmarshalEntries(dec *Decoder) ([]Entry, error) {
	n := dec.SliceLen()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	if n == 0 {
		return nil, nil
	}
	es := make([]Entry, n)
	for i := range es {
		if err := unmarshalEntry(dec, &es[i]); err != nil {
			return nil, err
		}
	}
	return es, nil
}

func marshalUint64s(enc *Encoder, vs []uint64) {
	enc.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		enc.Uvarint(v)
	}
}

func unmarshalUint64s(dec *Decoder) []uint64 {
	n := dec.SliceLen()
	if dec.Err() != nil || n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = dec.Uvarint()
	}
	return vs
}

// MarshalTo implements Message.
func (m *RequestMsg) MarshalTo(enc *Encoder) { marshalRequest(enc, &m.Req) }

// UnmarshalFrom implements Message.
func (m *RequestMsg) UnmarshalFrom(dec *Decoder) error { return unmarshalRequest(dec, &m.Req) }

// MarshalTo implements Message.
func (m *ReplyMsg) MarshalTo(enc *Encoder) {
	r := &m.Rep
	enc.NodeID(r.Client)
	enc.Uvarint(r.Seq)
	enc.Uint8(uint8(r.Status))
	enc.NodeID(r.Leader)
	enc.Bytes8(r.Result)
	enc.String(r.Err)
	if r.Status == StatusOverload {
		// Status-gated field: legacy replies encode byte-for-byte as
		// before, and only gateway sheds pay for the hint.
		enc.Uvarint(uint64(r.RetryAfterMS))
	}
}

// UnmarshalFrom implements Message.
func (m *ReplyMsg) UnmarshalFrom(dec *Decoder) error {
	r := &m.Rep
	r.Client = dec.NodeID()
	r.Seq = dec.Uvarint()
	r.Status = ReplyStatus(dec.Uint8())
	r.Leader = dec.NodeID()
	r.Result = dec.Bytes8()
	r.Err = dec.String()
	if r.Status == StatusOverload {
		r.RetryAfterMS = uint32(dec.Uvarint())
	}
	return dec.Err()
}

// MarshalTo implements Message.
func (m *Prepare) MarshalTo(enc *Encoder) {
	enc.Ballot(m.Bal)
	enc.Uvarint(m.After)
	marshalUint64s(enc, m.Gaps)
}

// UnmarshalFrom implements Message.
func (m *Prepare) UnmarshalFrom(dec *Decoder) error {
	m.Bal = dec.Ballot()
	m.After = dec.Uvarint()
	m.Gaps = unmarshalUint64s(dec)
	return dec.Err()
}

// MarshalTo implements Message.
func (m *Promise) MarshalTo(enc *Encoder) {
	enc.Ballot(m.Bal)
	enc.NodeID(m.From)
	enc.Bool(m.OK)
	enc.Ballot(m.MaxProm)
	marshalEntries(enc, m.Entries)
	enc.Uvarint(m.Chosen)
}

// UnmarshalFrom implements Message.
func (m *Promise) UnmarshalFrom(dec *Decoder) error {
	m.Bal = dec.Ballot()
	m.From = dec.NodeID()
	m.OK = dec.Bool()
	m.MaxProm = dec.Ballot()
	var err error
	if m.Entries, err = unmarshalEntries(dec); err != nil {
		return err
	}
	m.Chosen = dec.Uvarint()
	return dec.Err()
}

// MarshalTo implements Message.
func (m *Accept) MarshalTo(enc *Encoder) {
	enc.Ballot(m.Bal)
	marshalEntries(enc, m.Entries)
	enc.Uvarint(m.Commit)
}

// UnmarshalFrom implements Message.
func (m *Accept) UnmarshalFrom(dec *Decoder) error {
	m.Bal = dec.Ballot()
	var err error
	if m.Entries, err = unmarshalEntries(dec); err != nil {
		return err
	}
	m.Commit = dec.Uvarint()
	return dec.Err()
}

// MarshalTo implements Message.
func (m *Accepted) MarshalTo(enc *Encoder) {
	enc.Ballot(m.Bal)
	enc.NodeID(m.From)
	enc.Bool(m.OK)
	enc.Ballot(m.MaxProm)
	marshalUint64s(enc, m.Instances)
}

// UnmarshalFrom implements Message.
func (m *Accepted) UnmarshalFrom(dec *Decoder) error {
	m.Bal = dec.Ballot()
	m.From = dec.NodeID()
	m.OK = dec.Bool()
	m.MaxProm = dec.Ballot()
	m.Instances = unmarshalUint64s(dec)
	return dec.Err()
}

// MarshalTo implements Message.
func (m *Commit) MarshalTo(enc *Encoder) {
	enc.Ballot(m.Bal)
	enc.Uvarint(m.Index)
}

// UnmarshalFrom implements Message.
func (m *Commit) UnmarshalFrom(dec *Decoder) error {
	m.Bal = dec.Ballot()
	m.Index = dec.Uvarint()
	return dec.Err()
}

// MarshalTo implements Message. MaxAcc is a presence-gated trailing
// field (like Request's nearFlag, but keyed on position: the envelope
// holds exactly one message, so "bytes remain" is the presence bit):
// confirms without the stamp encode byte-for-byte as the pre-§16
// format, which is what lets a mixed-version cluster roll through an
// upgrade with core.Config.WireCompat set on the new binaries.
func (m *Confirm) MarshalTo(enc *Encoder) {
	enc.Ballot(m.Bal)
	enc.NodeID(m.From)
	enc.Uvarint(uint64(len(m.Reads)))
	for _, k := range m.Reads {
		enc.NodeID(k.Client)
		enc.Uvarint(k.Seq)
	}
	if m.MaxAccSet {
		enc.Uvarint(m.MaxAcc)
	}
}

// UnmarshalFrom implements Message. A confirm from a peer that does not
// stamp MaxAcc (pre-§16 binary, or WireCompat mode) decodes with
// MaxAccSet false — the receiver must not treat the absent barrier
// claim as "barrier zero".
func (m *Confirm) UnmarshalFrom(dec *Decoder) error {
	m.Bal = dec.Ballot()
	m.From = dec.NodeID()
	n := dec.SliceLen()
	if dec.Err() != nil {
		return dec.Err()
	}
	if n > 0 {
		m.Reads = make([]Key, n)
		for i := range m.Reads {
			m.Reads[i].Client = dec.NodeID()
			m.Reads[i].Seq = dec.Uvarint()
		}
	}
	if m.MaxAccSet = dec.Remaining() > 0 && dec.Err() == nil; m.MaxAccSet {
		m.MaxAcc = dec.Uvarint()
	} else {
		m.MaxAcc = 0
	}
	return dec.Err()
}

// MarshalTo implements Message. Cost is a presence-gated trailing
// field: zero means unknown/off (the pre-§16 meaning of "no cost") and
// is simply not encoded, so heartbeats from clusters not running RTT
// placement stay byte-for-byte the prior format and decode on
// pre-§16 peers.
func (m *Heartbeat) MarshalTo(enc *Encoder) {
	enc.NodeID(m.From)
	enc.Uvarint(m.Epoch)
	enc.NodeID(m.Leader)
	enc.Uvarint(m.Chosen)
	enc.Uvarint(m.Applied)
	if m.Cost != 0 {
		enc.Uvarint(uint64(m.Cost))
	}
}

// UnmarshalFrom implements Message. An absent trailing Cost decodes as
// 0 — exactly the unknown/off sentinel, so old-format heartbeats mean
// what they always meant.
func (m *Heartbeat) UnmarshalFrom(dec *Decoder) error {
	m.From = dec.NodeID()
	m.Epoch = dec.Uvarint()
	m.Leader = dec.NodeID()
	m.Chosen = dec.Uvarint()
	m.Applied = dec.Uvarint()
	if dec.Remaining() > 0 && dec.Err() == nil {
		m.Cost = uint32(dec.Uvarint())
	} else {
		m.Cost = 0
	}
	return dec.Err()
}

// MarshalTo implements Message.
func (m *CatchUpReq) MarshalTo(enc *Encoder) {
	enc.NodeID(m.From)
	enc.Uvarint(m.HaveChosen)
}

// UnmarshalFrom implements Message.
func (m *CatchUpReq) UnmarshalFrom(dec *Decoder) error {
	m.From = dec.NodeID()
	m.HaveChosen = dec.Uvarint()
	return dec.Err()
}

func marshalNodeIDs(enc *Encoder, ids []NodeID) {
	enc.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		enc.NodeID(id)
	}
}

func unmarshalNodeIDs(dec *Decoder) []NodeID {
	n := dec.SliceLen()
	if dec.Err() != nil || n == 0 {
		return nil
	}
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = dec.NodeID()
	}
	return ids
}

// MarshalTo implements Message.
func (m *JoinReq) MarshalTo(enc *Encoder) {
	enc.NodeID(m.From)
	enc.String(m.Addr)
	enc.Uvarint(m.Applied)
}

// UnmarshalFrom implements Message.
func (m *JoinReq) UnmarshalFrom(dec *Decoder) error {
	m.From = dec.NodeID()
	m.Addr = dec.String()
	m.Applied = dec.Uvarint()
	return dec.Err()
}

// MarshalTo implements Message.
func (m *SnapReq) MarshalTo(enc *Encoder) {
	enc.NodeID(m.From)
	enc.Uvarint(m.SnapAt)
	enc.Uvarint(m.Offset)
}

// UnmarshalFrom implements Message.
func (m *SnapReq) UnmarshalFrom(dec *Decoder) error {
	m.From = dec.NodeID()
	m.SnapAt = dec.Uvarint()
	m.Offset = dec.Uvarint()
	return dec.Err()
}

// MarshalTo implements Message.
func (m *SnapChunk) MarshalTo(enc *Encoder) {
	enc.NodeID(m.From)
	enc.Uvarint(m.SnapAt)
	enc.Uvarint(m.Total)
	enc.Uvarint(m.Offset)
	enc.Bytes8(m.Data)
	enc.Uint32(m.Sum)
	marshalNodeIDs(enc, m.Members)
	marshalNodeIDs(enc, m.Learners)
}

// UnmarshalFrom implements Message.
func (m *SnapChunk) UnmarshalFrom(dec *Decoder) error {
	m.From = dec.NodeID()
	m.SnapAt = dec.Uvarint()
	m.Total = dec.Uvarint()
	m.Offset = dec.Uvarint()
	m.Data = dec.Bytes8()
	m.Sum = dec.Uint32()
	m.Members = unmarshalNodeIDs(dec)
	m.Learners = unmarshalNodeIDs(dec)
	return dec.Err()
}

// MarshalTo implements Message.
func (m *CatchUpResp) MarshalTo(enc *Encoder) {
	enc.NodeID(m.From)
	marshalEntries(enc, m.Entries)
	enc.Uvarint(m.Chosen)
	enc.Bytes8(m.State)
	enc.Uvarint(m.StateAt)
}

// UnmarshalFrom implements Message.
func (m *CatchUpResp) UnmarshalFrom(dec *Decoder) error {
	m.From = dec.NodeID()
	var err error
	if m.Entries, err = unmarshalEntries(dec); err != nil {
		return err
	}
	m.Chosen = dec.Uvarint()
	m.State = dec.Bytes8()
	m.StateAt = dec.Uvarint()
	return dec.Err()
}
