package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Codec errors.
var (
	ErrTruncated = errors.New("wire: truncated message")
	ErrOversize  = errors.New("wire: length field exceeds limit")
	ErrBadType   = errors.New("wire: unknown message type")
	ErrTrailing  = errors.New("wire: trailing bytes after message")
)

// MaxBlob bounds any single length-prefixed byte field, guarding decoders
// against corrupt or hostile length fields.
const MaxBlob = 64 << 20

// MaxSlice bounds any element count field.
const MaxSlice = 1 << 20

// Encoder appends primitive values to a byte buffer. The zero Encoder is
// ready to use; Bytes returns the accumulated encoding.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder writing into buf (may be nil). Passing a
// reused buffer with zero length avoids allocation in hot paths.
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded bytes accumulated so far.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes accumulated so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the accumulated encoding but keeps the buffer capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uvarint appends v in unsigned LEB128 form.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Uint32 appends v as a fixed 4-byte little-endian value.
func (e *Encoder) Uint32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// Uint64 appends v as a fixed 8-byte little-endian value.
func (e *Encoder) Uint64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Bool appends v as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Float64 appends v as its IEEE-754 bit pattern.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Bytes8 appends a length-prefixed byte string.
func (e *Encoder) Bytes8(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// NodeID appends a node identifier.
func (e *Encoder) NodeID(id NodeID) { e.Uvarint(uint64(id)) }

// Ballot appends a ballot number.
func (e *Encoder) Ballot(b Ballot) {
	e.Uvarint(b.Round)
	e.NodeID(b.Node)
}

// Decoder consumes primitive values from a byte buffer. Decoding methods
// record the first error and subsequently return zero values, so call
// sites can decode a whole struct and check Err once.
type Decoder struct {
	buf   []byte
	off   int
	err   error
	alias bool
}

// NewDecoder returns a Decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// NewDecoderNoCopy returns a Decoder whose Bytes8 results alias buf
// instead of copying it. Ownership of buf transfers to the decoded
// values: the caller must not modify or reuse buf afterwards. Aliased
// slices are capped at their own length, so appending to one never
// clobbers neighbouring fields.
func NewDecoderNoCopy(buf []byte) *Decoder { return &Decoder{buf: buf, alias: true} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Done returns nil when the buffer was fully consumed without error.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint consumes an unsigned LEB128 value.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.off += n
	return v
}

// Uint8 consumes one byte.
func (d *Decoder) Uint8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Uint32 consumes a fixed 4-byte little-endian value.
func (d *Decoder) Uint32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// Uint64 consumes a fixed 8-byte little-endian value.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Bool consumes one byte as a boolean.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Float64 consumes an IEEE-754 bit pattern.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bytes8 consumes a length-prefixed byte string. With NewDecoder the
// result is a copy and remains valid after the source buffer is reused;
// with NewDecoderNoCopy it aliases the source buffer.
func (d *Decoder) Bytes8() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > MaxBlob {
		d.fail(ErrOversize)
		return nil
	}
	if d.off+int(n) > len(d.buf) {
		d.fail(ErrTruncated)
		return nil
	}
	if n == 0 {
		return nil
	}
	if d.alias {
		end := d.off + int(n)
		out := d.buf[d.off:end:end]
		d.off = end
		return out
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}

// String consumes a length-prefixed string.
func (d *Decoder) String() string {
	b := d.Bytes8()
	return string(b)
}

// SliceLen consumes an element count, bounds-checking it.
func (d *Decoder) SliceLen() int {
	n := d.Uvarint()
	if n > MaxSlice {
		d.fail(ErrOversize)
		return 0
	}
	return int(n)
}

// NodeID consumes a node identifier.
func (d *Decoder) NodeID() NodeID { return NodeID(d.Uvarint()) }

// Ballot consumes a ballot number.
func (d *Decoder) Ballot() Ballot {
	var b Ballot
	b.Round = d.Uvarint()
	b.Node = d.NodeID()
	return b
}

// EncodeEnvelope appends the full wire form of env — header plus message
// body — to buf and returns the extended slice. The layout is:
//
//	uvarint from | uvarint to | uint8 type | [uvarint group] | body...
//
// The group field only exists when Group != 0: bit groupedFlag of the
// type byte marks its presence. Group 0 therefore encodes byte-for-byte
// as the pre-sharding protocol, which is the `-groups 1` compatibility
// guarantee of DESIGN.md §13.
//
// Framing (length prefixes for stream transports) is the transport's job.
//
// The Encoder itself is pooled: it escapes through the MarshalTo
// interface call, so without pooling every encoded envelope would pay
// one Encoder allocation. With a pooled or pre-sized buf the whole
// encode is allocation-free.
func EncodeEnvelope(buf []byte, env *Envelope) []byte {
	enc := encPool.Get().(*Encoder)
	enc.buf = buf
	enc.NodeID(env.From)
	enc.NodeID(env.To)
	if env.Group == 0 {
		enc.Uint8(uint8(env.Msg.Type()))
	} else {
		enc.Uint8(uint8(env.Msg.Type()) | groupedFlag)
		enc.Uvarint(uint64(env.Group))
	}
	env.Msg.MarshalTo(enc)
	out := enc.buf
	enc.buf = nil // drop the reference before pooling
	encPool.Put(enc)
	return out
}

// groupedFlag marks a type byte that is followed by a uvarint group id.
// MsgType values stay well below it, so the flag bit is unambiguous.
const groupedFlag = 0x80

var encPool = sync.Pool{New: func() any { return new(Encoder) }}

// DecodeEnvelope parses one envelope from buf, which must contain exactly
// one encoded envelope. Byte fields are copied out of buf, so the caller
// may reuse buf immediately.
func DecodeEnvelope(buf []byte) (*Envelope, error) {
	return decodeEnvelopePooled(buf, false)
}

// DecodeEnvelopeOwned parses one envelope from buf without copying byte
// fields: Op, Result, and State slices in the returned message alias buf
// directly. Ownership of buf transfers to the envelope — the caller must
// not modify, reuse, or pool buf after a successful return. Use this on
// receive paths that hand each frame its own buffer; use DecodeEnvelope
// when the buffer is reused.
func DecodeEnvelopeOwned(buf []byte) (*Envelope, error) {
	return decodeEnvelopePooled(buf, true)
}

// decPool recycles Decoder structs: passing a decoder through the
// Message.UnmarshalFrom interface makes it escape, so without pooling
// every decoded envelope pays one Decoder allocation.
var decPool = sync.Pool{New: func() any { return new(Decoder) }}

func decodeEnvelopePooled(buf []byte, alias bool) (*Envelope, error) {
	dec := decPool.Get().(*Decoder)
	*dec = Decoder{buf: buf, alias: alias}
	env, err := decodeEnvelope(dec)
	*dec = Decoder{} // drop the buf reference before pooling
	decPool.Put(dec)
	return env, err
}

func decodeEnvelope(dec *Decoder) (*Envelope, error) {
	from := dec.NodeID()
	to := dec.NodeID()
	tb := dec.Uint8()
	var group uint32
	if tb&groupedFlag != 0 {
		tb &^= groupedFlag
		group = uint32(dec.Uvarint())
	}
	t := MsgType(tb)
	if err := dec.Err(); err != nil {
		return nil, err
	}
	env := newEnvelopeFor(t)
	if env == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadType, t)
	}
	env.From, env.To = from, to
	env.Group = group
	if err := env.Msg.UnmarshalFrom(dec); err != nil {
		return nil, err
	}
	if err := dec.Done(); err != nil {
		return nil, err
	}
	return env, nil
}

// newEnvelopeFor returns an envelope whose Msg is a zero message of the
// given type, or nil if the type is unknown. Envelope and message come
// from a single allocation — they have identical lifetimes, and fusing
// them halves the fixed per-decode allocation cost.
func newEnvelopeFor(t MsgType) *Envelope {
	switch t {
	case MsgRequest:
		x := new(struct {
			e Envelope
			m RequestMsg
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgReply:
		x := new(struct {
			e Envelope
			m ReplyMsg
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgPrepare:
		x := new(struct {
			e Envelope
			m Prepare
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgPromise:
		x := new(struct {
			e Envelope
			m Promise
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgAccept:
		x := new(struct {
			e Envelope
			m Accept
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgAccepted:
		x := new(struct {
			e Envelope
			m Accepted
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgCommit:
		x := new(struct {
			e Envelope
			m Commit
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgConfirm:
		x := new(struct {
			e Envelope
			m Confirm
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgHeartbeat:
		x := new(struct {
			e Envelope
			m Heartbeat
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgCatchUpReq:
		x := new(struct {
			e Envelope
			m CatchUpReq
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgCatchUpResp:
		x := new(struct {
			e Envelope
			m CatchUpResp
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgJoinReq:
		x := new(struct {
			e Envelope
			m JoinReq
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgSnapReq:
		x := new(struct {
			e Envelope
			m SnapReq
		})
		x.e.Msg = &x.m
		return &x.e
	case MsgSnapChunk:
		x := new(struct {
			e Envelope
			m SnapChunk
		})
		x.e.Msg = &x.m
		return &x.e
	default:
		return nil
	}
}
