package wire

import "sync"

// maxPooledBuf caps the capacity of buffers returned to the pool.
// Occasional giant frames (full-state snapshots) would otherwise pin
// megabytes per pooled slot indefinitely.
const maxPooledBuf = 1 << 20

// bufPool recycles encode buffers across frames. It stores *[]byte so
// that Get/Put don't allocate an interface box per call.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// GetBuf returns a pooled encode buffer with zero length and some spare
// capacity. Pass (*bp)[:0] to EncodeEnvelope and store the result back
// through the pointer, then PutBuf when the encoded bytes are no longer
// referenced:
//
//	bp := wire.GetBuf()
//	*bp = wire.EncodeEnvelope((*bp)[:0], env)
//	... write *bp to the connection ...
//	wire.PutBuf(bp)
//
// Never PutBuf a buffer whose contents were handed to
// DecodeEnvelopeOwned — ownership moved to the decoded envelope.
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuf returns a buffer obtained from GetBuf to the pool. Oversized
// buffers are dropped so snapshot-carrying frames don't pin their
// capacity forever.
func PutBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}
