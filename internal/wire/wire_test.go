package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBallotOrder(t *testing.T) {
	cases := []struct {
		a, b Ballot
		less bool
	}{
		{Ballot{1, 0}, Ballot{2, 0}, true},
		{Ballot{2, 0}, Ballot{1, 0}, false},
		{Ballot{1, 1}, Ballot{1, 2}, true},
		{Ballot{1, 2}, Ballot{1, 1}, false},
		{Ballot{1, 1}, Ballot{1, 1}, false},
		{Ballot{0, 0}, Ballot{1, 0}, true},
		{Ballot{3, 7}, Ballot{4, 0}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestBallotLessIsStrictTotalOrder(t *testing.T) {
	f := func(ar, br uint64, an, bn uint32) bool {
		a := Ballot{ar, NodeID(an)}
		b := Ballot{br, NodeID(bn)}
		// Trichotomy: exactly one of a<b, b<a, a==b.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProposalNumOrder(t *testing.T) {
	// §3.3: proposal numbers are ordered lexicographically, first by
	// ballot and then by instance.
	a := ProposalNum{Bal: Ballot{1, 0}, Instance: 99}
	b := ProposalNum{Bal: Ballot{2, 0}, Instance: 1}
	if !a.Less(b) {
		t.Errorf("ballot must dominate instance in proposal-number order")
	}
	c := ProposalNum{Bal: Ballot{2, 0}, Instance: 2}
	if !b.Less(c) {
		t.Errorf("equal ballots must order by instance")
	}
	if c.Less(b) {
		t.Errorf("order must be antisymmetric")
	}
}

func TestZeroBallot(t *testing.T) {
	var z Ballot
	if !z.IsZero() {
		t.Fatal("zero ballot must report IsZero")
	}
	if !z.Less(Ballot{1, 0}) {
		t.Fatal("zero ballot must order below issued ballots")
	}
	if (Ballot{1, 0}).IsZero() {
		t.Fatal("issued ballot must not report IsZero")
	}
}

func TestNodeIDSpaces(t *testing.T) {
	if NodeID(0).IsClient() || NodeID(100).IsClient() {
		t.Error("replica IDs must not be client IDs")
	}
	if !ClientIDBase.IsClient() || !(ClientIDBase + 7).IsClient() {
		t.Error("IDs at/above ClientIDBase must be client IDs")
	}
	if got := NodeID(3).String(); got != "r3" {
		t.Errorf("replica NodeID string = %q, want r3", got)
	}
	if got := (ClientIDBase + 2).String(); got != "c2" {
		t.Errorf("client NodeID string = %q, want c2", got)
	}
}

func TestRequestKindMutates(t *testing.T) {
	mutating := map[RequestKind]bool{
		KindWrite:     true,
		KindRead:      false,
		KindOriginal:  false,
		KindTxnOp:     true,
		KindTxnCommit: true,
		KindTxnAbort:  true,
	}
	for k, want := range mutating {
		if got := k.Mutates(); got != want {
			t.Errorf("%v.Mutates() = %v, want %v", k, got, want)
		}
	}
}

// roundTrip encodes env and decodes it back, failing the test on error.
func roundTrip(t *testing.T, env *Envelope) *Envelope {
	t.Helper()
	buf := EncodeEnvelope(nil, env)
	got, err := DecodeEnvelope(buf)
	if err != nil {
		t.Fatalf("DecodeEnvelope(%v): %v", env.Msg.Type(), err)
	}
	if got.From != env.From || got.To != env.To {
		t.Fatalf("header mismatch: got %v->%v want %v->%v", got.From, got.To, env.From, env.To)
	}
	if got.Msg.Type() != env.Msg.Type() {
		t.Fatalf("type mismatch: got %v want %v", got.Msg.Type(), env.Msg.Type())
	}
	return got
}

func sampleEntry() Entry {
	return Entry{
		Instance: 42,
		Bal:      Ballot{3, 1},
		Prop: Proposal{
			Reqs: []Request{
				{Client: ClientIDBase + 1, Seq: 9, Kind: KindWrite, Op: []byte("put x 1")},
				{Client: ClientIDBase + 2, Seq: 3, Kind: KindTxnOp, Txn: 77, Op: []byte("get y")},
			},
			State:    []byte{1, 2, 3, 4},
			HasState: true,
			Results:  [][]byte{[]byte("ok"), nil},
		},
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	msgs := []Message{
		&RequestMsg{Req: Request{Client: ClientIDBase, Seq: 1, Kind: KindRead, Op: []byte("get k")}},
		&RequestMsg{Req: Request{Client: ClientIDBase + 5, Seq: 0, Kind: KindTxnAbort, Txn: 12}},
		&ReplyMsg{Rep: Reply{Client: ClientIDBase, Seq: 1, Status: StatusOK, Leader: 0, Result: []byte("v")}},
		&ReplyMsg{Rep: Reply{Client: ClientIDBase, Seq: 2, Status: StatusAborted, Err: "leader switch"}},
		&Prepare{Bal: Ballot{5, 2}, After: 90, Gaps: []uint64{88, 89}},
		&Prepare{Bal: Ballot{1, 0}},
		&Promise{Bal: Ballot{5, 2}, From: 1, OK: true, Entries: []Entry{sampleEntry()}, Chosen: 87},
		&Promise{Bal: Ballot{5, 2}, From: 1, OK: false, MaxProm: Ballot{6, 0}},
		&Accept{Bal: Ballot{5, 2}, Entries: []Entry{sampleEntry()}, Commit: 41},
		&Accepted{Bal: Ballot{5, 2}, From: 2, OK: true, Instances: []uint64{88, 89, 91}},
		&Accepted{Bal: Ballot{5, 2}, From: 2, OK: false, MaxProm: Ballot{9, 1}},
		&Commit{Bal: Ballot{5, 2}, Index: 91},
		&Confirm{Bal: Ballot{5, 2}, From: 1, Reads: []Key{{ClientIDBase + 3, 17}}},
		&Confirm{Bal: Ballot{5, 2}, From: 1, Reads: []Key{
			{ClientIDBase + 3, 17}, {ClientIDBase + 4, 2}, {ClientIDBase + 9, 1}}},
		&Confirm{Bal: Ballot{5, 2}, From: 1},
		&Confirm{Bal: Ballot{5, 2}, From: 1, Reads: []Key{{ClientIDBase + 3, 17}}, MaxAcc: 91, MaxAccSet: true},
		&Confirm{Bal: Ballot{5, 2}, From: 1, MaxAccSet: true}, // stamped barrier 0 stays stamped
		&Heartbeat{From: 0, Epoch: 123, Leader: 0},
		&Heartbeat{From: 2, Epoch: 7, Leader: 2, Chosen: 40, Applied: 40, Cost: 42},
		&CatchUpReq{From: 2, HaveChosen: 80},
		&CatchUpResp{From: 0, Entries: []Entry{sampleEntry()}, Chosen: 91},
		&Heartbeat{From: 1, Epoch: 124, Leader: 0, Chosen: 91, Applied: 88},
		&JoinReq{From: 3, Addr: "127.0.0.1:9003", Applied: 12},
		&JoinReq{From: 4},
		&SnapReq{From: 3, SnapAt: 90, Offset: 65536},
		&SnapChunk{From: 0, SnapAt: 90, Total: 100, Offset: 64,
			Data: []byte("chunk-bytes"), Sum: 0xdeadbeef,
			Members: []NodeID{0, 1, 2}, Learners: []NodeID{3}},
		&SnapChunk{From: 0, SnapAt: 90, Total: 0, Sum: 1},
	}
	for _, m := range msgs {
		env := &Envelope{From: 0, To: 1, Msg: m}
		got := roundTrip(t, env)
		// Re-encode the decoded message; byte-for-byte equality is a
		// strong structural equality check without reflection.
		a := EncodeEnvelope(nil, env)
		b := EncodeEnvelope(nil, got)
		if string(a) != string(b) {
			t.Errorf("%v: re-encoded bytes differ\n a=%x\n b=%x", m.Type(), a, b)
		}
	}
}

func TestRoundTripEntryFields(t *testing.T) {
	e := sampleEntry()
	env := &Envelope{From: 0, To: 2, Msg: &Accept{Bal: Ballot{3, 1}, Entries: []Entry{e}}}
	got := roundTrip(t, env).Msg.(*Accept)
	if len(got.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(got.Entries))
	}
	ge := got.Entries[0]
	if ge.Instance != e.Instance || !ge.Bal.Equal(e.Bal) {
		t.Errorf("entry header mismatch: %+v", ge)
	}
	if len(ge.Prop.Reqs) != 2 {
		t.Fatalf("reqs = %d, want 2", len(ge.Prop.Reqs))
	}
	r := ge.Prop.Reqs[1]
	if r.Txn != 77 || r.Kind != KindTxnOp || string(r.Op) != "get y" {
		t.Errorf("request fields lost: %+v", r)
	}
	if !ge.Prop.HasState || string(ge.Prop.State) != string(e.Prop.State) {
		t.Errorf("state lost: %+v", ge.Prop)
	}
	if len(ge.Prop.Results) != 2 || string(ge.Prop.Results[0]) != "ok" {
		t.Errorf("results lost: %+v", ge.Prop.Results)
	}
}

func TestProposalWithoutState(t *testing.T) {
	e := sampleEntry()
	e.Prop.HasState = false
	e.Prop.State = nil
	env := &Envelope{From: 0, To: 1, Msg: &Accept{Bal: e.Bal, Entries: []Entry{e}}}
	got := roundTrip(t, env).Msg.(*Accept)
	if got.Entries[0].Prop.HasState || got.Entries[0].Prop.State != nil {
		t.Errorf("state should be absent: %+v", got.Entries[0].Prop)
	}
}

func TestDecodeErrors(t *testing.T) {
	// Truncated at every prefix length must error, never panic.
	env := &Envelope{From: 0, To: 1, Msg: &Promise{
		Bal: Ballot{5, 2}, From: 1, OK: true, Entries: []Entry{sampleEntry()}, Chosen: 87,
	}}
	buf := EncodeEnvelope(nil, env)
	for i := 0; i < len(buf); i++ {
		if _, err := DecodeEnvelope(buf[:i]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", i, len(buf))
		}
	}
	// Trailing garbage must error.
	if _, err := DecodeEnvelope(append(append([]byte{}, buf...), 0xff)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	// Unknown message type must error.
	bad := EncodeEnvelope(nil, env)
	// from=0 (1 byte) to=1 (1 byte) type at offset 2.
	bad[2] = 0xEE
	if _, err := DecodeEnvelope(bad); err == nil {
		t.Fatal("unknown type decoded without error")
	}
	// Invalid request kind must error.
	reqEnv := &Envelope{From: ClientIDBase, To: 0, Msg: &RequestMsg{Req: Request{Kind: KindWrite}}}
	rb := EncodeEnvelope(nil, reqEnv)
	// Find the kind byte: header is from(varint, 3 bytes for 1<<16), to(1), type(1),
	// then client(3), seq(1), kind(1). Easier: flip a byte and just check
	// for error-or-valid, so instead encode directly.
	_ = rb
	enc := NewEncoder(nil)
	enc.NodeID(ClientIDBase)
	enc.NodeID(0)
	enc.Uint8(uint8(MsgRequest))
	enc.NodeID(ClientIDBase)
	enc.Uvarint(1)
	enc.Uint8(200) // invalid kind
	enc.Uvarint(0)
	enc.Uvarint(0)
	enc.Bytes8(nil)
	if _, err := DecodeEnvelope(enc.Bytes()); err == nil {
		t.Fatal("invalid request kind decoded without error")
	}
}

func TestOversizeFieldsRejected(t *testing.T) {
	enc := NewEncoder(nil)
	enc.NodeID(0)
	enc.NodeID(1)
	enc.Uint8(uint8(MsgCatchUpResp))
	enc.NodeID(0)
	enc.Uvarint(MaxSlice + 1) // absurd entry count
	if _, err := DecodeEnvelope(enc.Bytes()); err == nil {
		t.Fatal("oversize slice count decoded without error")
	}

	enc.Reset()
	enc.NodeID(0)
	enc.NodeID(1)
	enc.Uint8(uint8(MsgReply))
	enc.NodeID(ClientIDBase)
	enc.Uvarint(1)
	enc.Uint8(uint8(StatusOK))
	enc.NodeID(0)
	enc.Uvarint(MaxBlob + 1) // absurd blob length
	if _, err := DecodeEnvelope(enc.Bytes()); err == nil {
		t.Fatal("oversize blob length decoded without error")
	}
}

func TestEncoderPrimitivesRoundTrip(t *testing.T) {
	f := func(u64 uint64, u32 uint32, u8 uint8, b bool, f64 float64, blob []byte, s string) bool {
		enc := NewEncoder(nil)
		enc.Uvarint(u64)
		enc.Uint32(u32)
		enc.Uint8(u8)
		enc.Bool(b)
		enc.Float64(f64)
		enc.Bytes8(blob)
		enc.String(s)
		dec := NewDecoder(enc.Bytes())
		if dec.Uvarint() != u64 || dec.Uint32() != u32 || dec.Uint8() != u8 || dec.Bool() != b {
			return false
		}
		g := dec.Float64()
		if g != f64 && !(g != g && f64 != f64) { // NaN-tolerant compare
			return false
		}
		gb := dec.Bytes8()
		if string(gb) != string(blob) {
			return false
		}
		if dec.String() != s {
			return false
		}
		return dec.Done() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		req := Request{
			Client: ClientIDBase + NodeID(rng.Intn(1000)),
			Seq:    rng.Uint64(),
			Kind:   RequestKind(rng.Intn(int(numRequestKinds))),
			Txn:    rng.Uint64() % 100,
			TxnSeq: rng.Uint32() % 8,
			Op:     randBytes(rng, rng.Intn(64)),
		}
		env := &Envelope{From: req.Client, To: 0, Msg: &RequestMsg{Req: req}}
		got := roundTrip(t, env).Msg.(*RequestMsg).Req
		if got.Client != req.Client || got.Seq != req.Seq || got.Kind != req.Kind ||
			got.Txn != req.Txn || got.TxnSeq != req.TxnSeq || string(got.Op) != string(req.Op) {
			t.Fatalf("iteration %d: got %+v want %+v", i, got, req)
		}
	}
}

func TestDecoderBytesAreCopies(t *testing.T) {
	enc := NewEncoder(nil)
	enc.Bytes8([]byte("hello"))
	buf := enc.Bytes()
	dec := NewDecoder(buf)
	got := dec.Bytes8()
	buf[len(buf)-1] = 'X' // mutate source
	if string(got) != "hello" {
		t.Fatalf("decoded bytes alias the source buffer: %q", got)
	}
}

func TestEncoderReuse(t *testing.T) {
	enc := NewEncoder(make([]byte, 0, 64))
	enc.Uvarint(7)
	first := enc.Len()
	enc.Reset()
	if enc.Len() != 0 {
		t.Fatal("Reset did not clear length")
	}
	enc.Uvarint(7)
	if enc.Len() != first {
		t.Fatal("re-encoding after Reset changed length")
	}
}

func TestRequestKeyIdentity(t *testing.T) {
	a := Request{Client: ClientIDBase + 1, Seq: 5}
	b := Request{Client: ClientIDBase + 1, Seq: 5, Kind: KindRead}
	c := Request{Client: ClientIDBase + 2, Seq: 5}
	if a.Key() != b.Key() {
		t.Error("keys must depend only on client+seq")
	}
	if a.Key() == c.Key() {
		t.Error("different clients must have different keys")
	}
}

func TestNewCoversAllTypes(t *testing.T) {
	for ty := MsgType(1); ty < numMsgTypes; ty++ {
		m := New(ty)
		if m == nil {
			t.Fatalf("New(%v) = nil", ty)
		}
		if m.Type() != ty {
			t.Fatalf("New(%v).Type() = %v", ty, m.Type())
		}
	}
	if New(MsgInvalid) != nil || New(numMsgTypes) != nil {
		t.Fatal("New must reject invalid types")
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestProposalDeltaAndAuxRoundTrip(t *testing.T) {
	e := Entry{
		Instance: 7,
		Bal:      Ballot{2, 1},
		Prop: Proposal{
			Reqs:     []Request{{Client: ClientIDBase, Seq: 1, Kind: KindWrite, Op: []byte("op")}},
			State:    []byte("delta-bytes"),
			HasState: true,
			Kind:     StateDelta,
			Aux:      [][]byte{[]byte("choice")},
			Results:  [][]byte{[]byte("r")},
		},
	}
	env := &Envelope{From: 0, To: 1, Msg: &Accept{Bal: e.Bal, Entries: []Entry{e}}}
	got := roundTrip(t, env).Msg.(*Accept).Entries[0]
	if got.Prop.Kind != StateDelta || string(got.Prop.State) != "delta-bytes" {
		t.Fatalf("delta lost: %+v", got.Prop)
	}
	if len(got.Prop.Aux) != 1 || string(got.Prop.Aux[0]) != "choice" {
		t.Fatalf("aux lost: %+v", got.Prop.Aux)
	}
}

func TestProposalNilAuxElementPreserved(t *testing.T) {
	// A deterministic op in replay mode has aux = nil, but the slice
	// length must match Reqs so the receiver can pair them.
	e := Entry{Instance: 1, Prop: Proposal{
		Reqs: []Request{{Client: ClientIDBase, Seq: 1, Kind: KindWrite}},
		Aux:  [][]byte{nil},
	}}
	env := &Envelope{From: 0, To: 1, Msg: &Accept{Entries: []Entry{e}}}
	got := roundTrip(t, env).Msg.(*Accept).Entries[0]
	if len(got.Prop.Aux) != 1 || len(got.Prop.Aux[0]) != 0 {
		t.Fatalf("nil aux element not preserved: %+v", got.Prop.Aux)
	}
}

func TestConfigProposalRoundTrip(t *testing.T) {
	e := Entry{Instance: 7, Bal: Ballot{3, 0}, Prop: Proposal{
		ConfigOp:   ConfigAddVoter,
		ConfigNode: 3,
		ConfigAddr: "127.0.0.1:9003",
	}}
	env := &Envelope{From: 0, To: 1, Msg: &Accept{Bal: Ballot{3, 0}, Entries: []Entry{e}}}
	got := roundTrip(t, env).Msg.(*Accept).Entries[0]
	if !got.Prop.IsConfig() || got.Prop.ConfigOp != ConfigAddVoter ||
		got.Prop.ConfigNode != 3 || got.Prop.ConfigAddr != "127.0.0.1:9003" {
		t.Fatalf("config entry lost: %+v", got.Prop)
	}
}

func TestCatchUpRespSnapshotRoundTrip(t *testing.T) {
	env := &Envelope{From: 1, To: 2, Msg: &CatchUpResp{
		From:    1,
		Entries: []Entry{sampleEntry()},
		Chosen:  42,
		State:   []byte("full-snapshot"),
		StateAt: 42,
	}}
	got := roundTrip(t, env).Msg.(*CatchUpResp)
	if string(got.State) != "full-snapshot" || got.StateAt != 42 || got.Chosen != 42 {
		t.Fatalf("catch-up snapshot lost: %+v", got)
	}
}

func TestHeartbeatChosenRoundTrip(t *testing.T) {
	env := &Envelope{From: 0, To: 1, Msg: &Heartbeat{From: 0, Epoch: 3, Leader: 0, Chosen: 99}}
	got := roundTrip(t, env).Msg.(*Heartbeat)
	if got.Chosen != 99 || got.Epoch != 3 {
		t.Fatalf("heartbeat fields lost: %+v", got)
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	// The decoder must reject arbitrary garbage gracefully — corrupt
	// peers and bit flips yield errors, never panics.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		if env, err := DecodeEnvelope(buf); err == nil {
			// Valid by chance: re-encoding must round-trip.
			re := EncodeEnvelope(nil, env)
			if _, err := DecodeEnvelope(re); err != nil {
				t.Fatalf("re-decode of accepted garbage failed: %v", err)
			}
		}
	}
}

func TestDecodeMutatedValidMessages(t *testing.T) {
	// Flip every single byte of a valid encoding: each mutation must
	// either decode cleanly or error — no panics, no hangs.
	env := &Envelope{From: 0, To: 1, Msg: &Accept{
		Bal: Ballot{3, 1}, Entries: []Entry{sampleEntry()}, Commit: 41,
	}}
	buf := EncodeEnvelope(nil, env)
	for pos := 0; pos < len(buf); pos++ {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			mut := append([]byte{}, buf...)
			mut[pos] ^= flip
			_, _ = DecodeEnvelope(mut)
		}
	}
}
