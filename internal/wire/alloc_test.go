package wire

import "testing"

// Allocation regression tests for the codec hot path. The budgets are
// the measured steady-state costs of this implementation; a change that
// exceeds them has regressed the wire path and should be caught here,
// not in a throughput run three PRs later.

// TestEncodeEnvelopeAllocs: encoding into a pooled buffer is
// allocation-free once the buffer has grown to the message size.
func TestEncodeEnvelopeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts on pooled paths are not meaningful under -race (sync.Pool drops items)")
	}
	for _, tc := range benchEnvelopes() {
		// Warm the pool so the buffer has capacity and the pooled
		// Encoder exists.
		bp := GetBuf()
		*bp = EncodeEnvelope((*bp)[:0], tc.env)
		PutBuf(bp)
		avg := testing.AllocsPerRun(200, func() {
			bp := GetBuf()
			*bp = EncodeEnvelope((*bp)[:0], tc.env)
			PutBuf(bp)
		})
		if avg > 0.1 {
			t.Errorf("%s: pooled encode allocates %.2f/op, want 0", tc.name, avg)
		}
	}
}

// TestDecodeEnvelopeAllocs: the owned (zero-copy) decoder allocates only
// the envelope+message block and the unavoidable slice headers — byte
// payloads alias the input buffer.
func TestDecodeEnvelopeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts on pooled paths are not meaningful under -race (sync.Pool drops items)")
	}
	budgets := map[string]float64{
		"request":     1,  // fused envelope+message only
		"accept-wave": 10, // + entries slice + per-entry req/result slices
		"accepted":    2,  // + instances slice
		"confirm":     2,  // + read-key slice
	}
	for _, tc := range benchEnvelopes() {
		buf := EncodeEnvelope(nil, tc.env)
		if _, err := DecodeEnvelopeOwned(buf); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		avg := testing.AllocsPerRun(200, func() {
			if _, err := DecodeEnvelopeOwned(buf); err != nil {
				t.Fatal(err)
			}
		})
		if budget := budgets[tc.name]; avg > budget {
			t.Errorf("%s: owned decode allocates %.2f/op, budget %.0f", tc.name, avg, budget)
		}
	}
}
