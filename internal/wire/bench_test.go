package wire

import (
	"testing"
)

// Representative hot-path envelopes. benchAccept mirrors a loaded accept
// wave (several requests, results, and a snapshot on the top instance);
// benchAccepted, benchConfirm, and benchRequest are the small control
// messages that dominate message *count* on a busy cluster.

func benchRequest() *Envelope {
	return &Envelope{
		From: ClientIDBase + 7, To: 0,
		Msg: &RequestMsg{Req: Request{
			Client: ClientIDBase + 7, Seq: 42, Kind: KindWrite,
			Op: make([]byte, 128),
		}},
	}
}

func benchAccept() *Envelope {
	entries := make([]Entry, 4)
	for i := range entries {
		e := Entry{
			Instance: uint64(100 + i),
			Bal:      Ballot{Round: 3, Node: 1},
			Prop: Proposal{
				Reqs: []Request{{
					Client: ClientIDBase + NodeID(i), Seq: uint64(i), Kind: KindWrite,
					Op: make([]byte, 128),
				}},
				Results: [][]byte{make([]byte, 32)},
			},
		}
		if i == len(entries)-1 {
			e.Prop.HasState = true
			e.Prop.Kind = StateFull
			e.Prop.State = make([]byte, 1024)
		}
		entries[i] = e
	}
	return &Envelope{From: 0, To: 1, Msg: &Accept{
		Bal: Ballot{Round: 3, Node: 1}, Entries: entries, Commit: 99,
	}}
}

func benchAccepted() *Envelope {
	return &Envelope{From: 1, To: 0, Msg: &Accepted{
		Bal: Ballot{Round: 3, Node: 1}, From: 1, OK: true,
		Instances: []uint64{100, 101, 102, 103},
	}}
}

func benchConfirm() *Envelope {
	keys := make([]Key, 8)
	for i := range keys {
		keys[i] = Key{Client: ClientIDBase + NodeID(i), Seq: uint64(i)}
	}
	return &Envelope{From: 1, To: 0, Msg: &Confirm{
		Bal: Ballot{Round: 3, Node: 1}, From: 1, Reads: keys,
	}}
}

func benchEnvelopes() []struct {
	name string
	env  *Envelope
} {
	return []struct {
		name string
		env  *Envelope
	}{
		{"request", benchRequest()},
		{"accept-wave", benchAccept()},
		{"accepted", benchAccepted()},
		{"confirm", benchConfirm()},
	}
}

// BenchmarkEncodeEnvelope measures the transport send path's encoding
// cost: one envelope serialized per op, exactly as tcpx.Send and
// Network.send do it.
func BenchmarkEncodeEnvelope(b *testing.B) {
	for _, tc := range benchEnvelopes() {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bp := GetBuf()
				*bp = EncodeEnvelope((*bp)[:0], tc.env)
				PutBuf(bp)
			}
		})
	}
}

// BenchmarkDecodeEnvelope measures the transport receive path's decoding
// cost: one owned frame payload parsed per op, exactly as the tcpx read
// loop and Network.send's delivery copy do it.
func BenchmarkDecodeEnvelope(b *testing.B) {
	for _, tc := range benchEnvelopes() {
		buf := EncodeEnvelope(nil, tc.env)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeEnvelopeOwned(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeEnvelopeCopy pins the cost of the copying decoder so the
// zero-copy win stays measured against it.
func BenchmarkDecodeEnvelopeCopy(b *testing.B) {
	for _, tc := range benchEnvelopes() {
		buf := EncodeEnvelope(nil, tc.env)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeEnvelope(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodeDecodeRoundTrip is the full codec round trip for one
// loaded accept wave, the per-message work a backup's link does under
// write load.
func BenchmarkEncodeDecodeRoundTrip(b *testing.B) {
	env := benchAccept()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bp := GetBuf()
		*bp = EncodeEnvelope((*bp)[:0], env)
		owned := append([]byte(nil), *bp...)
		PutBuf(bp)
		if _, err := DecodeEnvelopeOwned(owned); err != nil {
			b.Fatal(err)
		}
	}
}
