// Package wire defines the message types exchanged between clients and
// service replicas, and a compact hand-rolled binary encoding for them.
//
// The protocol follows "Replicating Nondeterministic Services on Grid
// Environments" (HPDC 2006): the value decided by consensus instance i is a
// tuple <req, state> — the i-th executed request together with the leader's
// service state after executing it. All messages required by the basic
// protocol (§3.3), the X-Paxos read path (§3.4), the T-Paxos transaction
// path (§3.5), leader election heartbeats, and replica catch-up are defined
// here.
package wire

import "fmt"

// NodeID identifies a process. Service replicas use small dense IDs
// (0..n-1); clients use IDs at or above ClientIDBase so the two spaces
// never collide on the same transport network.
type NodeID uint32

// ClientIDBase is the first NodeID used for client processes.
const ClientIDBase NodeID = 1 << 16

// IsClient reports whether id belongs to the client ID space.
func (id NodeID) IsClient() bool { return id >= ClientIDBase }

func (id NodeID) String() string {
	if id.IsClient() {
		return fmt.Sprintf("c%d", uint32(id-ClientIDBase))
	}
	return fmt.Sprintf("r%d", uint32(id))
}

// Ballot is a Paxos ballot number. Ballots are totally ordered first by
// round and then by the proposing node, so two nodes can never issue equal
// ballots. The zero Ballot is smaller than every ballot issued by a leader.
type Ballot struct {
	Round uint64
	Node  NodeID
}

// Less reports whether b orders strictly before o.
func (b Ballot) Less(o Ballot) bool {
	if b.Round != o.Round {
		return b.Round < o.Round
	}
	return b.Node < o.Node
}

// Equal reports whether b and o are the same ballot.
func (b Ballot) Equal(o Ballot) bool { return b.Round == o.Round && b.Node == o.Node }

// IsZero reports whether b is the zero ballot (never issued).
func (b Ballot) IsZero() bool { return b.Round == 0 && b.Node == 0 }

func (b Ballot) String() string { return fmt.Sprintf("(%d.%s)", b.Round, b.Node) }

// ProposalNum is the proposal number of an accepted proposal: the ballot
// under which it was accepted paired with its instance number. Proposal
// numbers are ordered lexicographically, first by ballot and then by
// instance (§3.3).
type ProposalNum struct {
	Bal      Ballot
	Instance uint64
}

// Less reports whether p orders strictly before o.
func (p ProposalNum) Less(o ProposalNum) bool {
	if !p.Bal.Equal(o.Bal) {
		return p.Bal.Less(o.Bal)
	}
	return p.Instance < o.Instance
}

// RequestKind classifies a client request. The replica picks the
// coordination protocol from the kind: writes run the basic protocol,
// reads run X-Paxos, originals bypass coordination entirely (the paper's
// non-replicated baseline), and the Txn* kinds drive T-Paxos.
type RequestKind uint8

const (
	// KindWrite changes the service state; coordinated with the basic
	// protocol (one consensus instance deciding <req, state>).
	KindWrite RequestKind = iota
	// KindRead does not change service state; coordinated with X-Paxos
	// majority confirms.
	KindRead
	// KindOriginal is the unreplicated baseline: the leader executes and
	// replies immediately with no coordination.
	KindOriginal
	// KindTxnOp is a request inside an open transaction: the leader
	// executes it against the transaction workspace and replies
	// immediately (T-Paxos).
	KindTxnOp
	// KindTxnCommit commits an open transaction: one consensus instance
	// decides the whole transaction and the resulting state.
	KindTxnCommit
	// KindTxnAbort aborts an open transaction; the leader discards the
	// workspace.
	KindTxnAbort

	numRequestKinds
)

func (k RequestKind) String() string {
	switch k {
	case KindWrite:
		return "write"
	case KindRead:
		return "read"
	case KindOriginal:
		return "original"
	case KindTxnOp:
		return "txn-op"
	case KindTxnCommit:
		return "txn-commit"
	case KindTxnAbort:
		return "txn-abort"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Mutates reports whether a request of this kind can change service state.
func (k RequestKind) Mutates() bool { return k != KindRead && k != KindOriginal }

// Request is a client request. Clients broadcast every request to all
// service replicas so they need not know which replica is the current
// leader (§3.3); only the leader replies.
type Request struct {
	Client NodeID      // issuing client
	Seq    uint64      // client-local sequence number, for matching replies
	Kind   RequestKind // coordination class
	Txn    uint64      // transaction ID; 0 when not in a transaction
	TxnSeq uint32      // 0-based index of this op within its transaction
	Op     []byte      // service-specific operation payload
	// Near, when NearSet, asks the named replica to serve this X-Paxos
	// read from its own confirm quorum instead of the leader (nearest-
	// replica reads, DESIGN.md §16). Every other replica sends its
	// Confirm to Near rather than to the leader; Near assembles a
	// majority, waits for its applied state to cover the quorum's
	// highest accepted instance, and executes the read locally. Encoded
	// as a flag bit on the kind byte, so requests without it are
	// byte-for-byte the pre-§16 format. Only meaningful for KindRead.
	Near    NodeID
	NearSet bool
}

// Key uniquely identifies a request for reply matching and deduplication.
type Key struct {
	Client NodeID
	Seq    uint64
}

// Key returns the request's identity.
func (r *Request) Key() Key { return Key{r.Client, r.Seq} }

// ReplyStatus describes the outcome of a request.
type ReplyStatus uint8

const (
	// StatusOK: the request executed; Result holds the service reply.
	StatusOK ReplyStatus = iota
	// StatusAborted: the enclosing transaction aborted (T-Paxos).
	StatusAborted
	// StatusNotLeader: the receiving replica is not the leader; the
	// client should wait for the leader's reply or retry.
	StatusNotLeader
	// StatusError: the service rejected the operation.
	StatusError
	// StatusCrossGroup: the request's operations span more than one
	// consensus group in a sharded deployment; cross-group transactions
	// are not supported (DESIGN.md §13).
	StatusCrossGroup
	// StatusOverload: the gateway shed the request at the edge before it
	// reached a consensus group (DESIGN.md §15). Reply.RetryAfterMS
	// carries the typed backoff hint; the request was NOT executed and
	// retrying it with the same sequence number is safe.
	StatusOverload
)

func (s ReplyStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusAborted:
		return "aborted"
	case StatusNotLeader:
		return "not-leader"
	case StatusError:
		return "error"
	case StatusCrossGroup:
		return "cross-group"
	case StatusOverload:
		return "overload"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Reply is the leader's response to a client request.
type Reply struct {
	Client NodeID
	Seq    uint64
	Status ReplyStatus
	Leader NodeID // hint: the replying (or believed) leader
	Result []byte // service reply payload
	Err    string // diagnostic detail for StatusError / StatusAborted
	// RetryAfterMS is the gateway's typed backoff hint, present on the
	// wire only when Status == StatusOverload — like the envelope group
	// field (codec.go), the extension costs zero bytes on every reply the
	// pre-gateway protocol can produce, keeping the PR 8 byte-for-byte
	// compatibility guarantee with the gateway disabled.
	RetryAfterMS uint32
}

// StateKind classifies a proposal's State payload. §3.3 describes two
// ways to shrink state transfer: replicas "may be able to exchange only
// the updated state" (StateDelta), or — when the nondeterministic
// operation "can be reproduced with the client request and some
// additional information" — exchange just that additional information
// (the Aux field) and regenerate the state locally.
type StateKind uint8

const (
	// StateFull: State is a complete service snapshot.
	StateFull StateKind = iota
	// StateDelta: State is a delta against the previous instance's
	// post-state; applying it requires a contiguous log.
	StateDelta
)

// ConfigOp classifies a membership-change proposal (online
// reconfiguration). Configuration entries ride the normal Paxos path —
// one instance decides one add-one or remove-one change — and the voter
// set and quorum sizes switch exactly at the commit point.
type ConfigOp uint8

const (
	// ConfigNone: an ordinary proposal, no membership change.
	ConfigNone ConfigOp = iota
	// ConfigAddVoter promotes a caught-up learner to a voting member.
	ConfigAddVoter
	// ConfigRemove removes a member from the voter set.
	ConfigRemove

	numConfigOps
)

func (o ConfigOp) String() string {
	switch o {
	case ConfigNone:
		return "none"
	case ConfigAddVoter:
		return "add-voter"
	case ConfigRemove:
		return "remove"
	default:
		return fmt.Sprintf("configop(%d)", uint8(o))
	}
}

// Proposal is the value decided by one consensus instance: the request and
// the leader's post-execution state (§3.3). For ordinary instances the
// proposal carries exactly one request; for T-Paxos commit instances it
// carries every request of the transaction in execution order. A
// configuration entry (ConfigOp != ConfigNone) carries no requests; it
// changes the membership when it commits.
type Proposal struct {
	Reqs []Request
	// State is the leader's service state after executing Reqs — a full
	// snapshot or a delta, per Kind. In full mode, multi-instance
	// accept messages carry it only on the highest instance
	// (HasState=false elsewhere) because replicas only ever need the
	// latest state.
	State    []byte
	HasState bool
	// Kind classifies State.
	Kind StateKind
	// Aux carries, per request, the captured nondeterministic choices
	// for replay-mode services (§3.3's "additional information");
	// replicas regenerate the state by deterministic re-execution.
	Aux [][]byte
	// Results are the service replies produced by the leader when it
	// executed Reqs, carried so that a new leader can re-reply to
	// clients without re-executing (nondeterminism is captured once).
	Results [][]byte
	// ConfigOp, when not ConfigNone, marks this proposal as a
	// membership-change entry for ConfigNode. The new configuration
	// takes effect at the commit point of this instance.
	ConfigOp ConfigOp
	// ConfigNode is the member being added or removed.
	ConfigNode NodeID
	// ConfigAddr is ConfigNode's transport address (add-voter entries
	// only), so replicas that learn the entry late — through recovery or
	// catch-up — can still route to the new member.
	ConfigAddr string
}

// IsConfig reports whether the proposal is a membership-change entry.
func (p *Proposal) IsConfig() bool { return p.ConfigOp != ConfigNone }

// Entry is a proposal bound to an instance and the ballot under which it
// was accepted.
type Entry struct {
	Instance uint64
	Bal      Ballot
	Prop     Proposal
}

// Num returns the entry's proposal number.
func (e *Entry) Num() ProposalNum { return ProposalNum{Bal: e.Bal, Instance: e.Instance} }

// MsgType discriminates envelope payloads on the wire.
type MsgType uint8

const (
	MsgInvalid MsgType = iota
	MsgRequest
	MsgReply
	MsgPrepare
	MsgPromise
	MsgAccept
	MsgAccepted
	MsgCommit
	MsgConfirm
	MsgHeartbeat
	MsgCatchUpReq
	MsgCatchUpResp
	MsgJoinReq
	MsgSnapReq
	MsgSnapChunk

	numMsgTypes
)

func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "request"
	case MsgReply:
		return "reply"
	case MsgPrepare:
		return "prepare"
	case MsgPromise:
		return "promise"
	case MsgAccept:
		return "accept"
	case MsgAccepted:
		return "accepted"
	case MsgCommit:
		return "commit"
	case MsgConfirm:
		return "confirm"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgCatchUpReq:
		return "catchup-req"
	case MsgCatchUpResp:
		return "catchup-resp"
	case MsgJoinReq:
		return "join-req"
	case MsgSnapReq:
		return "snap-req"
	case MsgSnapChunk:
		return "snap-chunk"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// Message is implemented by every protocol message body.
type Message interface {
	// Type returns the wire discriminator for this message.
	Type() MsgType
	// MarshalTo appends the binary encoding of the message to enc.
	MarshalTo(enc *Encoder)
	// UnmarshalFrom decodes the message body from dec.
	UnmarshalFrom(dec *Decoder) error
}

// Envelope is a routed protocol message. Group selects the consensus
// group the message belongs to when the process hosts several independent
// Paxos groups (sharded mode, DESIGN.md §13); group 0 is encoded exactly
// like the pre-sharding protocol, so a single-group deployment is
// byte-for-byte the original wire format.
type Envelope struct {
	From  NodeID
	To    NodeID
	Group uint32
	Msg   Message
}

// Prepare is the phase-1a message. A freshly elected leader sends a single
// Prepare covering every instance it does not know to be chosen: the gap
// instances below its highest known chosen instance, plus every instance
// strictly above After (§3.3).
type Prepare struct {
	Bal   Ballot
	After uint64   // prepare all instances > After ...
	Gaps  []uint64 // ... plus these specific unchosen instances below it
}

func (*Prepare) Type() MsgType { return MsgPrepare }

// Promise is the phase-1b message. Entries reports accepted proposals the
// acceptor knows for the prepared instances; per §3.3 only the entry with
// the highest instance carries service state.
type Promise struct {
	Bal     Ballot
	From    NodeID
	OK      bool
	MaxProm Ballot // on rejection: the ballot that blocked the prepare
	Entries []Entry
	// Chosen is the acceptor's commit index, letting a new leader learn
	// already-chosen instances without re-running consensus for them.
	Chosen uint64
}

func (*Promise) Type() MsgType { return MsgPromise }

// Accept is the phase-2a message. One message may carry several instances
// (recovery after a leader switch, and batched client writes); only the
// highest instance needs HasState=true.
type Accept struct {
	Bal     Ballot
	Entries []Entry
	// Commit piggybacks the sender's commit index so backups learn
	// chosen instances without a separate Commit message round.
	Commit uint64
}

func (*Accept) Type() MsgType { return MsgAccept }

// Accepted is the phase-2b message acknowledging (or rejecting) an Accept.
type Accepted struct {
	Bal       Ballot
	From      NodeID
	OK        bool
	MaxProm   Ballot   // on rejection: the promise that blocked acceptance
	Instances []uint64 // instances acknowledged
}

func (*Accepted) Type() MsgType { return MsgAccepted }

// Commit announces that all instances up to and including Index are chosen.
type Commit struct {
	Bal   Ballot
	Index uint64
}

func (*Commit) Type() MsgType { return MsgCommit }

// Confirm is the X-Paxos read confirmation (§3.4): upon receiving a read
// request from a client, every non-leader replica sends a Confirm for that
// read to the process that proposed the highest ballot it has accepted.
// Reads that arrive at a backup in one burst coalesce into a single
// Confirm carrying every read's key, so N concurrent reads cost one
// confirm message per backup instead of N. Each key is still independent
// per-read evidence: the confirm was sent after each listed read was
// received, which is what the linearizability argument needs.
type Confirm struct {
	Bal   Ballot // highest ballot the sender has accepted
	From  NodeID
	Reads []Key // the read requests being confirmed
	// MaxAcc is the sender's highest accepted instance at send time. A
	// nearest-replica read server (DESIGN.md §16) takes the maximum over
	// its confirm quorum as the read barrier: any acked write is
	// accepted by a majority, every confirm majority intersects it, so
	// the barrier covers the write. The leader's confirm path ignores it
	// (the leader's own log is the barrier there). Encoded as a trailing
	// field only when MaxAccSet, so confirms without the stamp are
	// byte-for-byte the pre-§16 format; a confirm without the stamp
	// (an old peer, or WireCompat mode) never vouches for near reads —
	// there is no barrier claim to fold.
	MaxAcc    uint64
	MaxAccSet bool
}

func (*Confirm) Type() MsgType { return MsgConfirm }

// Heartbeat drives the Ω leader-election service and doubles as the
// anti-entropy signal: Chosen lets a recovered replica discover that it
// is behind and request catch-up even when no client traffic flows.
type Heartbeat struct {
	From   NodeID
	Epoch  uint64 // leadership claim epoch (0 when not claiming)
	Leader NodeID // sender's current leader estimate
	Chosen uint64 // sender's commit index
	// Applied is the sender's applied watermark — the instance whose
	// post-state its service reflects. Replicas gossip it so storage can
	// prune WAL records below the cluster-wide minimum (DESIGN.md §12).
	Applied uint64
	// Cost is the sender's self-measured placement cost (a quantized
	// aggregate peer RTT offset by one, DESIGN.md §16; 0 = unknown/off,
	// ranked behind every measured cost). Electors fold it in front of
	// the configured rank, so leadership drifts to the best-connected
	// replica once costs are gossiped. Encoded as a trailing field only
	// when nonzero, so heartbeats from clusters not using RTT placement
	// stay byte-for-byte the pre-§16 format.
	Cost uint32
}

func (*Heartbeat) Type() MsgType { return MsgHeartbeat }

// CatchUpReq asks a peer for the log suffix after HaveChosen and the
// latest state.
type CatchUpReq struct {
	From       NodeID
	HaveChosen uint64
}

func (*CatchUpReq) Type() MsgType { return MsgCatchUpReq }

// CatchUpResp carries chosen log entries (request metadata) plus a full
// snapshot of the responder's service state, exactly what a lagging
// replica needs (§3.3: replicas keep all requests but only the latest
// state). The explicit snapshot makes catch-up independent of the
// proposals' state mode.
type CatchUpResp struct {
	From    NodeID
	Entries []Entry
	Chosen  uint64
	// State is the responder's full service snapshot, valid after
	// applying instance StateAt.
	State   []byte
	StateAt uint64
}

func (*CatchUpResp) Type() MsgType { return MsgCatchUpResp }

// JoinReq announces a node that wants to become a member. The joiner
// broadcasts it until it sees itself in a committed configuration: every
// receiver learns the joiner's transport address, and the leader admits
// the node as a non-voting learner, proposing the add-voter configuration
// entry once the learner's gossiped applied watermark has caught up.
type JoinReq struct {
	From NodeID
	// Addr is the joiner's transport listen address ("" on transports
	// that route by node ID and need no address book).
	Addr string
	// Applied is the joiner's applied watermark at send time, so the
	// leader can track catch-up progress before the first heartbeat.
	Applied uint64
}

func (*JoinReq) Type() MsgType { return MsgJoinReq }

// SnapReq asks a peer for one chunk of its latest service-state snapshot.
// The first request carries SnapAt 0 (any snapshot) and Offset 0; the
// responder pins a snapshot and the requester then asks for successive
// offsets of that SnapAt, which is what makes the stream resumable: after
// a lost chunk or a responder switch, the requester re-asks at the offset
// it has assembled so far.
type SnapReq struct {
	From NodeID
	// SnapAt names the snapshot being streamed (its applied instance); 0
	// lets the responder pick its latest.
	SnapAt uint64
	// Offset is the byte offset of the requested chunk.
	Offset uint64
}

func (*SnapReq) Type() MsgType { return MsgSnapReq }

// SnapChunk carries one bounded chunk of a service-state snapshot valid
// after applying instance SnapAt. Sum is the CRC-32 of the *whole*
// snapshot, verified by the requester after the final chunk; each chunk
// is additionally protected by the transport framing. Members/Learners
// describe the membership as of SnapAt so a fresh replica installs the
// configuration together with the state.
type SnapChunk struct {
	From     NodeID
	SnapAt   uint64
	Total    uint64 // total snapshot bytes
	Offset   uint64 // offset of Data within the snapshot
	Data     []byte
	Sum      uint32 // CRC-32 (IEEE) of the full snapshot
	Members  []NodeID
	Learners []NodeID
}

func (*SnapChunk) Type() MsgType { return MsgSnapChunk }

// RequestMsg wraps a client Request for transport.
type RequestMsg struct {
	Req Request
}

func (*RequestMsg) Type() MsgType { return MsgRequest }

// ReplyMsg wraps a Reply for transport.
type ReplyMsg struct {
	Rep Reply
}

func (*ReplyMsg) Type() MsgType { return MsgReply }

// New returns a zero message value for the given wire type, or nil if the
// type is unknown.
func New(t MsgType) Message {
	switch t {
	case MsgRequest:
		return &RequestMsg{}
	case MsgReply:
		return &ReplyMsg{}
	case MsgPrepare:
		return &Prepare{}
	case MsgPromise:
		return &Promise{}
	case MsgAccept:
		return &Accept{}
	case MsgAccepted:
		return &Accepted{}
	case MsgCommit:
		return &Commit{}
	case MsgConfirm:
		return &Confirm{}
	case MsgHeartbeat:
		return &Heartbeat{}
	case MsgCatchUpReq:
		return &CatchUpReq{}
	case MsgCatchUpResp:
		return &CatchUpResp{}
	case MsgJoinReq:
		return &JoinReq{}
	case MsgSnapReq:
		return &SnapReq{}
	case MsgSnapChunk:
		return &SnapChunk{}
	default:
		return nil
	}
}
