//go:build race

package wire

// raceEnabled reports whether the race detector is on. Under -race,
// sync.Pool deliberately drops items at random to widen race coverage,
// so allocation counts on pooled paths are not meaningful.
const raceEnabled = true
