package wire

import (
	"bytes"
	"testing"
)

// TestEnvelopeGroupRoundTrip: the group id survives encode/decode for
// every message type and across the uvarint width spectrum.
func TestEnvelopeGroupRoundTrip(t *testing.T) {
	groups := []uint32{0, 1, 3, 127, 128, 1 << 20}
	msgs := []Message{
		&RequestMsg{Req: Request{Client: ClientIDBase, Seq: 1, Kind: KindWrite, Op: []byte("put k v")}},
		&ReplyMsg{Rep: Reply{Client: ClientIDBase, Seq: 1, Status: StatusOK}},
		&Prepare{Bal: Ballot{5, 2}},
		&Heartbeat{From: 1, Epoch: 9, Leader: 0},
		&Commit{Bal: Ballot{5, 2}, Index: 7},
	}
	for _, g := range groups {
		for _, m := range msgs {
			env := &Envelope{From: 0, To: 1, Group: g, Msg: m}
			got, err := DecodeEnvelope(EncodeEnvelope(nil, env))
			if err != nil {
				t.Fatalf("group %d %v: %v", g, m.Type(), err)
			}
			if got.Group != g {
				t.Fatalf("group %d %v: decoded group %d", g, m.Type(), got.Group)
			}
			if got.From != env.From || got.To != env.To {
				t.Fatalf("group %d %v: header corrupted: %+v", g, m.Type(), got)
			}
		}
	}
}

// TestGroupZeroIsByteCompatible: an envelope with Group == 0 must encode
// exactly as the pre-sharding protocol did — no flag bit, no group field.
// This is the `-groups 1` wire-compatibility guarantee of DESIGN.md §13:
// a single-group deployment emits bytes indistinguishable from a binary
// that predates sharding.
func TestGroupZeroIsByteCompatible(t *testing.T) {
	env := &Envelope{From: 2, To: 0, Msg: &Commit{Bal: Ballot{3, 1}, Index: 42}}
	buf := EncodeEnvelope(nil, env)

	// Reconstruct the legacy header by hand: uvarint from, uvarint to,
	// bare type byte, then the message body.
	var enc Encoder
	enc.NodeID(env.From)
	enc.NodeID(env.To)
	enc.Uint8(uint8(env.Msg.Type()))
	env.Msg.MarshalTo(&enc)
	if !bytes.Equal(buf, enc.Bytes()) {
		t.Fatalf("group-0 encoding differs from legacy layout:\n got %x\nwant %x", buf, enc.Bytes())
	}

	// The type byte (third byte here: from and to are single-byte
	// uvarints) must not carry the grouped flag.
	if buf[2]&groupedFlag != 0 {
		t.Fatalf("group-0 type byte %#x has grouped flag set", buf[2])
	}

	// And a grouped envelope of the same message must NOT be
	// byte-identical — the flag and field must actually appear.
	grouped := EncodeEnvelope(nil, &Envelope{From: 2, To: 0, Group: 7, Msg: env.Msg})
	if bytes.Equal(buf, grouped) {
		t.Fatal("grouped envelope encoded identically to group 0")
	}
	if grouped[2]&groupedFlag == 0 {
		t.Fatalf("grouped type byte %#x missing flag", grouped[2])
	}
	if len(grouped) != len(buf)+1 {
		t.Fatalf("group 7 should cost exactly one extra byte: %d vs %d", len(grouped), len(buf))
	}
}
