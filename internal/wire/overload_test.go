package wire

import (
	"bytes"
	"testing"
)

// TestOverloadRetryAfterRoundTrip: the retry-after hint survives the
// codec for StatusOverload replies across the uvarint width spectrum,
// including a zero hint (field present, value zero).
func TestOverloadRetryAfterRoundTrip(t *testing.T) {
	for _, ms := range []uint32{0, 1, 50, 127, 128, 65536, 1 << 30} {
		env := &Envelope{From: 1, To: ClientIDBase, Msg: &ReplyMsg{Rep: Reply{
			Client: ClientIDBase, Seq: 9, Status: StatusOverload,
			RetryAfterMS: ms,
		}}}
		got, err := DecodeEnvelope(EncodeEnvelope(nil, env))
		if err != nil {
			t.Fatalf("retry-after %d: %v", ms, err)
		}
		rep := &got.Msg.(*ReplyMsg).Rep
		if rep.Status != StatusOverload || rep.RetryAfterMS != ms {
			t.Fatalf("retry-after %d: decoded %+v", ms, rep)
		}
	}
}

// TestLegacyReplyIsByteCompatible: every reply status the pre-gateway
// protocol can produce must encode exactly as it did before the
// RetryAfterMS field existed — the field is status-gated, like the
// envelope group flag, so a deployment with the gateway disabled emits
// bytes indistinguishable from a PR 8 binary (ISSUE 9 acceptance).
func TestLegacyReplyIsByteCompatible(t *testing.T) {
	legacy := []ReplyStatus{StatusOK, StatusNotLeader, StatusAborted, StatusError, StatusCrossGroup}
	for _, st := range legacy {
		rep := Reply{Client: ClientIDBase + 3, Seq: 41, Status: st,
			Leader: 2, Result: []byte("r"), Err: "e",
			// A stray hint on a legacy status must NOT leak onto the wire.
			RetryAfterMS: 999}
		buf := EncodeEnvelope(nil, &Envelope{From: 2, To: ClientIDBase + 3, Msg: &ReplyMsg{Rep: rep}})

		// Reconstruct the PR 8 layout by hand: envelope header, then
		// client, seq, status, leader, result, err — and nothing else.
		var enc Encoder
		enc.NodeID(2)
		enc.NodeID(ClientIDBase + 3)
		enc.Uint8(uint8(MsgReply))
		enc.NodeID(rep.Client)
		enc.Uvarint(rep.Seq)
		enc.Uint8(uint8(rep.Status))
		enc.NodeID(rep.Leader)
		enc.Bytes8(rep.Result)
		enc.String(rep.Err)
		if !bytes.Equal(buf, enc.Bytes()) {
			t.Fatalf("status %v: encoding differs from PR 8 layout:\n got %x\nwant %x", st, buf, enc.Bytes())
		}

		got, err := DecodeEnvelope(buf)
		if err != nil {
			t.Fatalf("status %v: %v", st, err)
		}
		if got.Msg.(*ReplyMsg).Rep.RetryAfterMS != 0 {
			t.Fatalf("status %v: phantom retry-after decoded", st)
		}
	}

	// And an overload reply must actually carry the field.
	over := EncodeEnvelope(nil, &Envelope{From: 2, To: ClientIDBase, Msg: &ReplyMsg{
		Rep: Reply{Client: ClientIDBase, Seq: 1, Status: StatusOverload, RetryAfterMS: 200}}})
	plain := EncodeEnvelope(nil, &Envelope{From: 2, To: ClientIDBase, Msg: &ReplyMsg{
		Rep: Reply{Client: ClientIDBase, Seq: 1, Status: StatusOverload}}})
	if bytes.Equal(over, plain) {
		t.Fatal("retry-after hint did not reach the wire")
	}
}
