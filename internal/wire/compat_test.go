package wire

import (
	"bytes"
	"testing"
)

// The §16 geo fields — Confirm.MaxAcc and Heartbeat.Cost — are
// presence-gated trailing extensions, mirroring Request's nearFlag:
// messages that do not carry them must encode byte-for-byte as the
// pre-§16 format (what an old binary emits and the only thing it can
// decode), and a new decoder must accept both forms. These tests pin
// the rolling-upgrade contract the core WireCompat knob relies on.

// legacyConfirmBytes hand-builds the pre-§16 encoding of a Confirm
// envelope: ballot, sender, reads — and no trailing MaxAcc.
func legacyConfirmBytes(from, to NodeID, m *Confirm) []byte {
	enc := NewEncoder(nil)
	enc.NodeID(from)
	enc.NodeID(to)
	enc.Uint8(uint8(MsgConfirm))
	enc.Ballot(m.Bal)
	enc.NodeID(m.From)
	enc.Uvarint(uint64(len(m.Reads)))
	for _, k := range m.Reads {
		enc.NodeID(k.Client)
		enc.Uvarint(k.Seq)
	}
	return enc.Bytes()
}

// legacyHeartbeatBytes hand-builds the pre-§16 encoding of a Heartbeat
// envelope: no trailing Cost.
func legacyHeartbeatBytes(from, to NodeID, m *Heartbeat) []byte {
	enc := NewEncoder(nil)
	enc.NodeID(from)
	enc.NodeID(to)
	enc.Uint8(uint8(MsgHeartbeat))
	enc.NodeID(m.From)
	enc.Uvarint(m.Epoch)
	enc.NodeID(m.Leader)
	enc.Uvarint(m.Chosen)
	enc.Uvarint(m.Applied)
	return enc.Bytes()
}

func TestConfirmWithoutStampIsLegacyFormat(t *testing.T) {
	m := &Confirm{Bal: Ballot{5, 2}, From: 1, Reads: []Key{{ClientIDBase + 3, 17}}}
	got := EncodeEnvelope(nil, &Envelope{From: 1, To: 2, Msg: m})
	want := legacyConfirmBytes(1, 2, m)
	if !bytes.Equal(got, want) {
		t.Fatalf("unstamped confirm encoding diverged from the pre-geo format:\n got %x\nwant %x", got, want)
	}
}

func TestConfirmDecodesLegacyFormat(t *testing.T) {
	m := &Confirm{Bal: Ballot{9, 1}, From: 2, Reads: []Key{{ClientIDBase, 4}, {ClientIDBase + 1, 8}}}
	env, err := DecodeEnvelope(legacyConfirmBytes(2, 0, m))
	if err != nil {
		t.Fatalf("legacy confirm rejected: %v", err)
	}
	got := env.Msg.(*Confirm)
	if got.MaxAccSet {
		t.Fatal("legacy confirm decoded with MaxAccSet — an absent barrier claim must not be invented")
	}
	if got.MaxAcc != 0 || !got.Bal.Equal(m.Bal) || len(got.Reads) != 2 {
		t.Fatalf("legacy confirm decoded as %+v", got)
	}
}

func TestConfirmStampRoundTrips(t *testing.T) {
	m := &Confirm{Bal: Ballot{5, 2}, From: 1, Reads: []Key{{ClientIDBase + 3, 17}}, MaxAcc: 91, MaxAccSet: true}
	buf := EncodeEnvelope(nil, &Envelope{From: 1, To: 2, Msg: m})
	env, err := DecodeEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := env.Msg.(*Confirm)
	if !got.MaxAccSet || got.MaxAcc != 91 {
		t.Fatalf("stamp lost in round trip: MaxAccSet=%v MaxAcc=%d", got.MaxAccSet, got.MaxAcc)
	}
}

func TestHeartbeatWithoutCostIsLegacyFormat(t *testing.T) {
	m := &Heartbeat{From: 0, Epoch: 3, Leader: 0, Chosen: 99, Applied: 98}
	got := EncodeEnvelope(nil, &Envelope{From: 0, To: 1, Msg: m})
	want := legacyHeartbeatBytes(0, 1, m)
	if !bytes.Equal(got, want) {
		t.Fatalf("costless heartbeat encoding diverged from the pre-geo format:\n got %x\nwant %x", got, want)
	}
}

func TestHeartbeatDecodesLegacyFormat(t *testing.T) {
	m := &Heartbeat{From: 1, Epoch: 12, Leader: 1, Chosen: 7, Applied: 7}
	env, err := DecodeEnvelope(legacyHeartbeatBytes(1, 2, m))
	if err != nil {
		t.Fatalf("legacy heartbeat rejected: %v", err)
	}
	got := env.Msg.(*Heartbeat)
	if got.Cost != 0 {
		t.Fatalf("legacy heartbeat decoded with cost %d, want the unknown sentinel 0", got.Cost)
	}
	if got.Epoch != 12 || got.Chosen != 7 {
		t.Fatalf("legacy heartbeat decoded as %+v", got)
	}
}
