package service

import (
	"encoding/binary"
	"fmt"
	"sort"

	"gridrep/internal/wire"
)

// KV is a replicated key-value store with native transaction support:
// per-key locks acquired first-come (a transaction touching a key another
// open transaction holds gets ErrConflict and aborts, the "locks or other
// mechanisms" of §3.5).
//
// Operation payloads are built with KVPut/KVGet/KVDelete/KVAdd and
// replies parsed with KVReply.
type KV struct {
	data  map[string][]byte
	locks map[string]uint64 // key -> owning transaction
	open  map[uint64]*kvWS
	// shared marks data as pinned by at least one concurrent ReadView:
	// the next mutation must copy the map first (copy-on-write) so view
	// holders keep reading the pinned state race-free. Values are never
	// mutated in place (every put stores a fresh slice), so sharing the
	// value slices between generations is safe.
	shared bool
}

// NewKV returns an empty store.
func NewKV() *KV {
	return &KV{
		data:  make(map[string][]byte),
		locks: make(map[string]uint64),
		open:  make(map[uint64]*kvWS),
	}
}

var (
	_ Service       = (*KV)(nil)
	_ Transactional = (*KV)(nil)
)

// KV operation opcodes.
const (
	kvGet uint8 = iota + 1
	kvPut
	kvDel
	kvAdd
)

// KVGet builds a read of key.
func KVGet(key string) []byte { return kvOp(kvGet, key, nil) }

// KVPut builds a write of key=value.
func KVPut(key string, value []byte) []byte { return kvOp(kvPut, key, value) }

// KVDelete builds a deletion of key.
func KVDelete(key string) []byte { return kvOp(kvDel, key, nil) }

// KVAdd builds an atomic integer addition: the key's value is parsed as a
// little-endian int64 (missing key = 0), delta is added, and the new
// value is stored and returned.
func KVAdd(key string, delta int64) []byte {
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], uint64(delta))
	return kvOp(kvAdd, key, v[:])
}

func kvOp(code uint8, key string, value []byte) []byte {
	enc := wire.NewEncoder(nil)
	enc.Uint8(code)
	enc.String(key)
	enc.Bytes8(value)
	return enc.Bytes()
}

func kvParse(op []byte) (code uint8, key string, value []byte, err error) {
	dec := wire.NewDecoder(op)
	code = dec.Uint8()
	key = dec.String()
	value = dec.Bytes8()
	if e := dec.Done(); e != nil {
		return 0, "", nil, fmt.Errorf("%w: %v", ErrBadOp, e)
	}
	if code < kvGet || code > kvAdd {
		return 0, "", nil, fmt.Errorf("%w: opcode %d", ErrBadOp, code)
	}
	return code, key, value, nil
}

// KV implements Sharder: every operation addresses exactly one key, so
// a sharded deployment routes it by that key (DESIGN.md §13).
var _ Sharder = (*KV)(nil)

// ShardKey implements Sharder.
func (s *KV) ShardKey(op []byte) ([]byte, bool) {
	_, key, _, err := kvParse(op)
	if err != nil {
		return nil, false
	}
	return []byte(key), true
}

// KVReply parses a reply payload into (value, found).
func KVReply(res []byte) (value []byte, found bool) {
	dec := wire.NewDecoder(res)
	found = dec.Bool()
	value = dec.Bytes8()
	if dec.Done() != nil {
		return nil, false
	}
	return value, found
}

// KVInt parses an integer reply (from KVAdd or KVGet of an integer key).
func KVInt(res []byte) (int64, bool) {
	v, ok := KVReply(res)
	if !ok || len(v) != 8 {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(v)), true
}

func kvReply(value []byte, found bool) []byte {
	enc := wire.NewEncoder(nil)
	enc.Bool(found)
	enc.Bytes8(value)
	return enc.Bytes()
}

// IsWriteOp reports whether op mutates the store — callers use it to pick
// wire.KindWrite vs wire.KindRead.
func IsWriteOp(op []byte) bool {
	if len(op) == 0 {
		return false
	}
	return op[0] != kvGet
}

// applyTo runs one parsed op against a read/write view.
func kvApply(code uint8, key string, value []byte, get func(string) ([]byte, bool),
	put func(string, []byte), del func(string)) []byte {
	switch code {
	case kvGet:
		v, ok := get(key)
		return kvReply(v, ok)
	case kvPut:
		put(key, value)
		return kvReply(nil, true)
	case kvDel:
		_, ok := get(key)
		del(key)
		return kvReply(nil, ok)
	case kvAdd:
		cur, _ := get(key)
		var n int64
		if len(cur) == 8 {
			n = int64(binary.LittleEndian.Uint64(cur))
		}
		n += int64(binary.LittleEndian.Uint64(value))
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], uint64(n))
		nv := out[:]
		put(key, nv)
		return kvReply(nv, true)
	}
	return nil
}

// Execute implements Service.
func (s *KV) Execute(op []byte) ([]byte, error) {
	code, key, value, err := kvParse(op)
	if err != nil {
		return nil, err
	}
	if owner, locked := s.locks[key]; locked {
		// A non-transactional op hitting a locked key conflicts; §3.5's
		// lock discipline applies to singleton operations too.
		return nil, fmt.Errorf("%w: key %q locked by txn %d", ErrConflict, key, owner)
	}
	res := kvApply(code, key, value,
		func(k string) ([]byte, bool) { v, ok := s.data[k]; return v, ok },
		func(k string, v []byte) { s.mutableData()[k] = v },
		func(k string) { delete(s.mutableData(), k) })
	return res, nil
}

// mutableData returns the data map, first cloning it if a concurrent
// ReadView has it pinned. Amortized cost is one map copy per pinned
// view generation; the single-goroutine mutation discipline is
// unchanged (only the event loop calls this).
func (s *KV) mutableData() map[string][]byte {
	if s.shared {
		clone := make(map[string][]byte, len(s.data))
		for k, v := range s.data {
			clone[k] = v
		}
		s.data = clone
		s.shared = false
	}
	return s.data
}

// Snapshot implements Service with a deterministic (sorted) encoding.
func (s *KV) Snapshot() []byte {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc := wire.NewEncoder(nil)
	enc.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		enc.String(k)
		enc.Bytes8(s.data[k])
	}
	return enc.Bytes()
}

// Restore implements Service. Open transactions are discarded: a restore
// happens only on state transfer, when local speculation is void anyway.
func (s *KV) Restore(snap []byte) error {
	dec := wire.NewDecoder(snap)
	n := dec.SliceLen()
	if dec.Err() != nil {
		return dec.Err()
	}
	data := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := dec.String()
		v := dec.Bytes8()
		data[k] = v
	}
	if err := dec.Done(); err != nil {
		return err
	}
	s.data = data
	s.shared = false // brand-new map; pinned views keep the old one
	s.locks = make(map[string]uint64)
	s.open = make(map[uint64]*kvWS)
	return nil
}

// Len returns the number of keys (for tests).
func (s *KV) Len() int { return len(s.data) }

// Begin implements Transactional.
func (s *KV) Begin(txn uint64) (Workspace, error) {
	if _, dup := s.open[txn]; dup {
		return nil, fmt.Errorf("%w: transaction %d already open", ErrConflict, txn)
	}
	w := &kvWS{s: s, txn: txn, overlay: make(map[string][]byte), deleted: make(map[string]bool)}
	s.open[txn] = w
	return w, nil
}

type kvWS struct {
	s       *KV
	txn     uint64
	held    []string
	overlay map[string][]byte
	deleted map[string]bool
	done    bool
}

// lock acquires key for this transaction or reports a conflict.
func (w *kvWS) lock(key string) error {
	owner, locked := w.s.locks[key]
	if locked && owner != w.txn {
		return fmt.Errorf("%w: key %q held by txn %d", ErrConflict, key, owner)
	}
	if !locked {
		w.s.locks[key] = w.txn
		w.held = append(w.held, key)
	}
	return nil
}

func (w *kvWS) Execute(op []byte) ([]byte, error) {
	if w.done {
		return nil, fmt.Errorf("%w: transaction finished", ErrConflict)
	}
	code, key, value, err := kvParse(op)
	if err != nil {
		return nil, err
	}
	if err := w.lock(key); err != nil {
		return nil, err
	}
	res := kvApply(code, key, value,
		func(k string) ([]byte, bool) {
			if w.deleted[k] {
				return nil, false
			}
			if v, ok := w.overlay[k]; ok {
				return v, true
			}
			v, ok := w.s.data[k]
			return v, ok
		},
		func(k string, v []byte) { w.overlay[k] = v; delete(w.deleted, k) },
		func(k string) { delete(w.overlay, k); w.deleted[k] = true })
	return res, nil
}

func (w *kvWS) Commit() error {
	if w.done {
		return nil
	}
	if len(w.overlay) > 0 || len(w.deleted) > 0 {
		data := w.s.mutableData()
		for k, v := range w.overlay {
			data[k] = v
		}
		for k := range w.deleted {
			delete(data, k)
		}
	}
	w.finish()
	return nil
}

func (w *kvWS) Abort() {
	if w.done {
		return
	}
	w.finish()
}

func (w *kvWS) finish() {
	w.done = true
	for _, k := range w.held {
		if w.s.locks[k] == w.txn {
			delete(w.s.locks, k)
		}
	}
	delete(w.s.open, w.txn)
}

// KV implements ReadViewer by copy-on-write: ReadView pins the current
// data map; the next mutation clones it (mutableData), so view holders
// keep a stable, never-again-written map with zero per-read cost.
var _ ReadViewer = (*KV)(nil)

// ReadView implements ReadViewer. Pinning is refused while any
// transaction holds locks: an inline read of a locked key must return
// ErrConflict (§3.5), and a frozen view cannot see the live lock table,
// so the caller falls back to inline execution until the locks drain.
func (s *KV) ReadView() (ReadView, bool) {
	if len(s.locks) > 0 {
		return nil, false
	}
	s.shared = true
	return kvView{data: s.data}, true
}

// kvView is a pinned KV state generation. Safe for concurrent
// ReadExecute calls: the map is never written after pinning.
type kvView struct {
	data map[string][]byte
}

// ReadExecute implements ReadView: kvGet only — every other opcode
// mutates and must be rejected, not silently applied to a frozen copy.
func (v kvView) ReadExecute(op []byte) ([]byte, error) {
	code, key, _, err := kvParse(op)
	if err != nil {
		return nil, err
	}
	if code != kvGet {
		return nil, fmt.Errorf("%w: opcode %d on read-only view", ErrBadOp, code)
	}
	val, ok := v.data[key]
	return kvReply(val, ok), nil
}

// KVFactory is a Factory for the key-value store.
func KVFactory() Service { return NewKV() }

// KV implements Differ: each operation's effect is a small set of key
// updates, so deltas stay tiny even when the full store is large (§3.3's
// "exchange only the updated state").
var _ Differ = (*KV)(nil)

// ExecuteDelta implements Differ.
func (s *KV) ExecuteDelta(op []byte) (reply, delta []byte, err error) {
	code, key, value, err := kvParse(op)
	if err != nil {
		return nil, nil, err
	}
	if owner, locked := s.locks[key]; locked {
		return nil, nil, fmt.Errorf("%w: key %q locked by txn %d", ErrConflict, key, owner)
	}
	enc := wire.NewEncoder(nil)
	var changes uint64
	res := kvApply(code, key, value,
		func(k string) ([]byte, bool) { v, ok := s.data[k]; return v, ok },
		func(k string, v []byte) {
			s.mutableData()[k] = v
			enc.Bool(true) // put
			enc.String(k)
			enc.Bytes8(v)
			changes++
		},
		func(k string) {
			delete(s.mutableData(), k)
			enc.Bool(false) // delete
			enc.String(k)
			changes++
		})
	hdr := wire.NewEncoder(nil)
	hdr.Uvarint(changes)
	return res, append(hdr.Bytes(), enc.Bytes()...), nil
}

// ApplyDelta implements Differ.
func (s *KV) ApplyDelta(delta []byte) error {
	dec := wire.NewDecoder(delta)
	n := dec.SliceLen()
	if dec.Err() != nil {
		return dec.Err()
	}
	data := s.data
	if n > 0 {
		data = s.mutableData()
	}
	for i := 0; i < n; i++ {
		if dec.Bool() {
			k := dec.String()
			v := dec.Bytes8()
			if dec.Err() != nil {
				return dec.Err()
			}
			data[k] = v
		} else {
			k := dec.String()
			if dec.Err() != nil {
				return dec.Err()
			}
			delete(data, k)
		}
	}
	return dec.Done()
}
