package service

import (
	"fmt"
	"math/rand"
	"sort"

	"gridrep/internal/wire"
)

// Broker is the paper's first motivating application (§2): a distributed
// grid resource broker that "accepts requests for resources and selects
// appropriate resources", using a randomized algorithm to balance load
// across resources. The randomization — here the power-of-two-choices
// policy of the load-balancing literature the paper cites — makes the
// service intentionally nondeterministic: two replicas given the same
// request sequence select different resources. Replication therefore
// must ship the leader's post-execution state, which is exactly what the
// basic protocol does.
type Broker struct {
	rng       *rand.Rand
	resources map[string]*resource
}

type resource struct {
	capacity int64
	inUse    int64
}

// NewBroker returns a broker whose randomized selections are driven by
// the given seed. Different replicas should use different seeds; the
// protocol keeps them consistent anyway.
func NewBroker(seed int64) *Broker {
	return &Broker{
		rng:       rand.New(rand.NewSource(seed)),
		resources: make(map[string]*resource),
	}
}

var _ Service = (*Broker)(nil)

// Broker opcodes.
const (
	brRegister uint8 = iota + 1
	brRequest
	brRelease
	brList
)

// BrokerRegister builds an op adding a resource with the given capacity.
func BrokerRegister(name string, capacity int64) []byte {
	enc := wire.NewEncoder(nil)
	enc.Uint8(brRegister)
	enc.String(name)
	enc.Uvarint(uint64(capacity))
	return enc.Bytes()
}

// BrokerRequest builds an op asking for n resource slots.
func BrokerRequest(n int) []byte {
	enc := wire.NewEncoder(nil)
	enc.Uint8(brRequest)
	enc.Uvarint(uint64(n))
	return enc.Bytes()
}

// BrokerRelease builds an op returning one slot on the named resource.
func BrokerRelease(name string) []byte {
	enc := wire.NewEncoder(nil)
	enc.Uint8(brRelease)
	enc.String(name)
	return enc.Bytes()
}

// BrokerList builds a read op returning "name used/capacity" lines.
func BrokerList() []byte { return []byte{brList} }

// BrokerIsWrite reports whether op mutates broker state.
func BrokerIsWrite(op []byte) bool { return len(op) > 0 && op[0] != brList }

// BrokerSelection parses a BrokerRequest reply into the selected resource
// names.
func BrokerSelection(res []byte) ([]string, error) {
	dec := wire.NewDecoder(res)
	n := dec.SliceLen()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, dec.String())
	}
	if err := dec.Done(); err != nil {
		return nil, err
	}
	return out, nil
}

// Execute implements Service.
func (b *Broker) Execute(op []byte) ([]byte, error) {
	if len(op) == 0 {
		return nil, ErrBadOp
	}
	dec := wire.NewDecoder(op)
	switch code := dec.Uint8(); code {
	case brRegister:
		name := dec.String()
		cap := int64(dec.Uvarint())
		if err := dec.Done(); err != nil {
			return nil, err
		}
		b.resources[name] = &resource{capacity: cap}
		return nil, nil
	case brRequest:
		n := int(dec.Uvarint())
		if err := dec.Done(); err != nil {
			return nil, err
		}
		return b.request(n)
	case brRelease:
		name := dec.String()
		if err := dec.Done(); err != nil {
			return nil, err
		}
		r, ok := b.resources[name]
		if !ok || r.inUse == 0 {
			return nil, fmt.Errorf("%w: release of idle or unknown resource %q", ErrBadOp, name)
		}
		r.inUse--
		return nil, nil
	case brList:
		return b.list(), nil
	default:
		return nil, fmt.Errorf("%w: broker opcode %d", ErrBadOp, code)
	}
}

// request allocates n slots with the power-of-two-choices randomized
// policy: sample two resources with free capacity, take the less loaded.
// This is the intentional nondeterminism of §2.
func (b *Broker) request(n int) ([]byte, error) {
	free := make([]string, 0, len(b.resources))
	for name, r := range b.resources {
		if r.inUse < r.capacity {
			free = append(free, name)
		}
	}
	sort.Strings(free) // stable candidate order; choice stays random
	selected := make([]string, 0, n)
	for i := 0; i < n; i++ {
		// Refresh the free list lazily: drop now-full entries.
		avail := free[:0]
		for _, name := range free {
			r := b.resources[name]
			if r.inUse < r.capacity {
				avail = append(avail, name)
			}
		}
		free = avail
		if len(free) == 0 {
			return nil, fmt.Errorf("%w: no free resources (allocated %d of %d)", ErrBadOp, i, n)
		}
		pick := free[b.rng.Intn(len(free))]
		if len(free) > 1 {
			alt := free[b.rng.Intn(len(free))]
			la, lb := b.resources[pick], b.resources[alt]
			if float64(lb.inUse)/float64(lb.capacity) < float64(la.inUse)/float64(la.capacity) {
				pick = alt
			}
		}
		b.resources[pick].inUse++
		selected = append(selected, pick)
	}
	enc := wire.NewEncoder(nil)
	enc.Uvarint(uint64(len(selected)))
	for _, s := range selected {
		enc.String(s)
	}
	return enc.Bytes(), nil
}

func (b *Broker) list() []byte {
	names := make([]string, 0, len(b.resources))
	for n := range b.resources {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		r := b.resources[n]
		out += fmt.Sprintf("%s %d/%d\n", n, r.inUse, r.capacity)
	}
	return []byte(out)
}

// Snapshot implements Service with a deterministic encoding. The RNG is
// deliberately not part of the state: it is the source of local
// nondeterminism, not replicated data.
func (b *Broker) Snapshot() []byte {
	names := make([]string, 0, len(b.resources))
	for n := range b.resources {
		names = append(names, n)
	}
	sort.Strings(names)
	enc := wire.NewEncoder(nil)
	enc.Uvarint(uint64(len(names)))
	for _, n := range names {
		r := b.resources[n]
		enc.String(n)
		enc.Uvarint(uint64(r.capacity))
		enc.Uvarint(uint64(r.inUse))
	}
	return enc.Bytes()
}

// Restore implements Service.
func (b *Broker) Restore(snap []byte) error {
	dec := wire.NewDecoder(snap)
	n := dec.SliceLen()
	if dec.Err() != nil {
		return dec.Err()
	}
	res := make(map[string]*resource, n)
	for i := 0; i < n; i++ {
		name := dec.String()
		cap := int64(dec.Uvarint())
		inUse := int64(dec.Uvarint())
		res[name] = &resource{capacity: cap, inUse: inUse}
	}
	if err := dec.Done(); err != nil {
		return err
	}
	b.resources = res
	return nil
}

// Load returns (inUse, capacity) for a resource (for tests).
func (b *Broker) Load(name string) (int64, int64) {
	r, ok := b.resources[name]
	if !ok {
		return 0, 0
	}
	return r.inUse, r.capacity
}

// Broker implements Replayer: the only nondeterministic operation is the
// randomized resource selection, and it is fully reproduced by the list
// of resources the leader actually picked — exactly §3.3's "request and
// some additional information" reduction.
var _ Replayer = (*Broker)(nil)

// ExecuteCapture implements Replayer. For brRequest the aux is the
// selection itself (which doubles as the reply); all other broker
// operations are deterministic and carry no aux.
func (b *Broker) ExecuteCapture(op []byte) (reply, aux []byte, err error) {
	reply, err = b.Execute(op)
	if err != nil {
		return nil, nil, err
	}
	if len(op) > 0 && op[0] == brRequest {
		aux = reply
	}
	return reply, aux, nil
}

// Replay implements Replayer: it applies the leader's captured selection
// instead of drawing fresh random numbers.
func (b *Broker) Replay(op, aux []byte) ([]byte, error) {
	if len(op) == 0 {
		return nil, ErrBadOp
	}
	if op[0] != brRequest {
		return b.Execute(op)
	}
	selected, err := BrokerSelection(aux)
	if err != nil {
		return nil, err
	}
	for _, name := range selected {
		r, ok := b.resources[name]
		if !ok || r.inUse >= r.capacity {
			return nil, fmt.Errorf("%w: replay selection %q invalid", ErrBadOp, name)
		}
		r.inUse++
	}
	return aux, nil
}
