package service

import (
	"bytes"
	"errors"
	"testing"
)

func TestNoopReadWrite(t *testing.T) {
	n := NewNoop()
	if _, err := n.Execute(NoopReadOp); err != nil {
		t.Fatal(err)
	}
	if n.Version() != 0 {
		t.Fatal("read must not mutate")
	}
	if _, err := n.Execute(NoopWriteOp); err != nil {
		t.Fatal(err)
	}
	if n.Version() != 1 {
		t.Fatal("write must bump version")
	}
}

func TestNoopSnapshotRestore(t *testing.T) {
	a := NewNoop()
	for i := 0; i < 5; i++ {
		a.Execute(NoopWriteOp)
	}
	b := NewNoop()
	if err := b.Restore(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.Version() != 5 {
		t.Fatalf("restored version = %d", b.Version())
	}
	if err := b.Restore([]byte{1, 2}); err == nil {
		t.Fatal("short snapshot must be rejected")
	}
}

func TestNoopConcurrentTxns(t *testing.T) {
	n := NewNoop()
	w1, err := n.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := n.Begin(2)
	if err != nil {
		t.Fatalf("noop transactions must admit concurrency: %v", err)
	}
	w1.Execute(NoopWriteOp)
	w2.Execute(NoopWriteOp)
	w2.Execute(NoopWriteOp)
	if n.Version() != 0 {
		t.Fatal("uncommitted txn ops must not touch base state")
	}
	w1.Commit()
	w2.Abort()
	if n.Version() != 1 {
		t.Fatalf("version = %d: commit must apply, abort must not", n.Version())
	}
}

func TestKVBasicOps(t *testing.T) {
	s := NewKV()
	if res, err := s.Execute(KVPut("k", []byte("v"))); err != nil || res == nil {
		t.Fatalf("put: %v", err)
	}
	res, err := s.Execute(KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	v, found := KVReply(res)
	if !found || string(v) != "v" {
		t.Fatalf("get = %q,%v", v, found)
	}
	res, _ = s.Execute(KVDelete("k"))
	if _, found := KVReply(res); !found {
		t.Fatal("delete of existing key must report found")
	}
	res, _ = s.Execute(KVGet("k"))
	if _, found := KVReply(res); found {
		t.Fatal("get after delete must miss")
	}
	res, _ = s.Execute(KVDelete("k"))
	if _, found := KVReply(res); found {
		t.Fatal("delete of missing key must report not-found")
	}
}

func TestKVAdd(t *testing.T) {
	s := NewKV()
	res, err := s.Execute(KVAdd("acct", 100))
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := KVInt(res); !ok || n != 100 {
		t.Fatalf("add = %d,%v", n, ok)
	}
	res, _ = s.Execute(KVAdd("acct", -30))
	if n, _ := KVInt(res); n != 70 {
		t.Fatalf("add result = %d, want 70", n)
	}
}

func TestKVBadOps(t *testing.T) {
	s := NewKV()
	for _, op := range [][]byte{nil, {99}, {0}, []byte("garbage")} {
		if _, err := s.Execute(op); err == nil {
			t.Errorf("op %v accepted", op)
		}
	}
}

func TestKVIsWriteOp(t *testing.T) {
	if IsWriteOp(KVGet("k")) {
		t.Error("get classified as write")
	}
	for _, op := range [][]byte{KVPut("k", nil), KVDelete("k"), KVAdd("k", 1)} {
		if !IsWriteOp(op) {
			t.Error("mutating op classified as read")
		}
	}
	if IsWriteOp(nil) {
		t.Error("empty op classified as write")
	}
}

func TestKVSnapshotRestore(t *testing.T) {
	a := NewKV()
	a.Execute(KVPut("x", []byte("1")))
	a.Execute(KVPut("y", []byte("2")))
	snap := a.Snapshot()
	b := NewKV()
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("restored %d keys", b.Len())
	}
	res, _ := b.Execute(KVGet("y"))
	if v, _ := KVReply(res); string(v) != "2" {
		t.Fatalf("restored value = %q", v)
	}
	// Snapshot must be deterministic.
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("snapshots of equal states differ")
	}
	if err := b.Restore([]byte{0xff, 0x01}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestKVTxnIsolationAndCommit(t *testing.T) {
	s := NewKV()
	s.Execute(KVPut("a", []byte("base")))
	w, _ := s.Begin(1)
	w.Execute(KVPut("a", []byte("txn")))
	w.Execute(KVPut("b", []byte("new")))

	// Base state unchanged while the txn is open... but reads inside the
	// workspace see the overlay.
	res, _ := w.Execute(KVGet("a"))
	if v, _ := KVReply(res); string(v) != "txn" {
		t.Fatalf("workspace read = %q, want overlay value", v)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Execute(KVGet("a"))
	if v, _ := KVReply(res); string(v) != "txn" {
		t.Fatal("commit did not apply overlay")
	}
	res, _ = s.Execute(KVGet("b"))
	if _, found := KVReply(res); !found {
		t.Fatal("commit lost new key")
	}
}

func TestKVTxnAbortRollsBack(t *testing.T) {
	s := NewKV()
	s.Execute(KVPut("a", []byte("base")))
	w, _ := s.Begin(1)
	w.Execute(KVPut("a", []byte("txn")))
	w.Execute(KVDelete("a"))
	w.Abort()
	res, _ := s.Execute(KVGet("a"))
	if v, _ := KVReply(res); string(v) != "base" {
		t.Fatalf("abort leaked: a = %q", v)
	}
	// Locks must be released.
	if _, err := s.Execute(KVPut("a", []byte("after"))); err != nil {
		t.Fatalf("lock leaked after abort: %v", err)
	}
}

func TestKVTxnConflict(t *testing.T) {
	s := NewKV()
	w1, _ := s.Begin(1)
	w2, _ := s.Begin(2)
	if _, err := w1.Execute(KVPut("k", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	_, err := w2.Execute(KVPut("k", []byte("2")))
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting txn op returned %v, want ErrConflict", err)
	}
	// Disjoint keys proceed concurrently.
	if _, err := w2.Execute(KVPut("other", []byte("2"))); err != nil {
		t.Fatalf("disjoint key conflicted: %v", err)
	}
	// A non-transactional write on a locked key conflicts too.
	if _, err := s.Execute(KVPut("k", []byte("x"))); !errors.Is(err, ErrConflict) {
		t.Fatalf("singleton op on locked key returned %v", err)
	}
	w1.Commit()
	w2.Commit()
	if _, err := s.Execute(KVPut("k", []byte("x"))); err != nil {
		t.Fatalf("locks not released after commit: %v", err)
	}
}

func TestKVTxnDeleteVisibility(t *testing.T) {
	s := NewKV()
	s.Execute(KVPut("k", []byte("v")))
	w, _ := s.Begin(1)
	w.Execute(KVDelete("k"))
	res, _ := w.Execute(KVGet("k"))
	if _, found := KVReply(res); found {
		t.Fatal("workspace must see its own delete")
	}
	w.Commit()
	res, _ = s.Execute(KVGet("k"))
	if _, found := KVReply(res); found {
		t.Fatal("committed delete lost")
	}
}

func TestKVDuplicateTxnID(t *testing.T) {
	s := NewKV()
	s.Begin(7)
	if _, err := s.Begin(7); !errors.Is(err, ErrConflict) {
		t.Fatal("duplicate txn id admitted")
	}
}

func TestSerializeAdapter(t *testing.T) {
	base := NewBroker(1)
	if _, ok := Service(base).(Transactional); ok {
		t.Skip("broker became natively transactional; adapter untested here")
	}
	tr := AsTransactional(base)
	w, err := tr.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	// Only one serialized transaction at a time.
	if _, err := tr.Begin(2); !errors.Is(err, ErrConflict) {
		t.Fatalf("second serialized txn admitted: %v", err)
	}
	w.Execute(BrokerRegister("n1", 4))
	w.Abort()
	// Abort must restore the pre-txn state.
	if _, cap := base.Load("n1"); cap != 0 {
		t.Fatal("abort did not roll back serialized txn")
	}
	// And release the slot.
	w2, err := tr.Begin(3)
	if err != nil {
		t.Fatal(err)
	}
	w2.Execute(BrokerRegister("n2", 2))
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, cap := base.Load("n2"); cap != 2 {
		t.Fatal("commit lost serialized txn effects")
	}
}

func TestAsTransactionalPassthrough(t *testing.T) {
	kv := NewKV()
	if AsTransactional(kv) != Transactional(kv) {
		t.Fatal("natively transactional service must not be wrapped")
	}
}

func TestBrokerAllocateRelease(t *testing.T) {
	b := NewBroker(42)
	b.Execute(BrokerRegister("a", 2))
	b.Execute(BrokerRegister("b", 2))
	res, err := b.Execute(BrokerRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := BrokerSelection(res)
	if err != nil || len(sel) != 3 {
		t.Fatalf("selection = %v, %v", sel, err)
	}
	usedA, _ := b.Load("a")
	usedB, _ := b.Load("b")
	if usedA+usedB != 3 {
		t.Fatalf("allocated %d+%d, want 3 total", usedA, usedB)
	}
	// Power-of-two-choices with 3 picks over capacity-2 nodes cannot
	// put all 3 on one resource (capacity bound).
	if usedA > 2 || usedB > 2 {
		t.Fatal("capacity exceeded")
	}
	if _, err := b.Execute(BrokerRequest(2)); err == nil {
		t.Fatal("over-allocation must fail")
	}
	if _, err := b.Execute(BrokerRelease(sel[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Execute(BrokerRelease("missing")); err == nil {
		t.Fatal("release of unknown resource must fail")
	}
}

func TestBrokerNondeterminism(t *testing.T) {
	// Two replicas with different seeds, same request sequence, may
	// diverge — the motivating problem of §2. With 8 resources and 6
	// picks the probability of identical selections across 20 rounds is
	// negligible.
	b1, b2 := NewBroker(1), NewBroker(2)
	for i := 0; i < 8; i++ {
		op := BrokerRegister(string(rune('a'+i)), 10)
		b1.Execute(op)
		b2.Execute(op)
	}
	same := true
	for i := 0; i < 20 && same; i++ {
		r1, _ := b1.Execute(BrokerRequest(6))
		r2, _ := b2.Execute(BrokerRequest(6))
		if !bytes.Equal(r1, r2) {
			same = false
		}
	}
	if same {
		t.Fatal("independent replicas never diverged; service is not exercising nondeterminism")
	}
}

func TestBrokerLoadBalance(t *testing.T) {
	b := NewBroker(7)
	for i := 0; i < 4; i++ {
		b.Execute(BrokerRegister(string(rune('a'+i)), 100))
	}
	b.Execute(BrokerRequest(200))
	// Power-of-two-choices keeps the spread tight: no resource should
	// be at capacity while another is nearly idle.
	for i := 0; i < 4; i++ {
		used, _ := b.Load(string(rune('a' + i)))
		if used < 20 || used > 80 {
			t.Fatalf("resource %c load %d badly balanced", 'a'+i, used)
		}
	}
}

func TestBrokerSnapshotRestore(t *testing.T) {
	a := NewBroker(1)
	a.Execute(BrokerRegister("x", 5))
	a.Execute(BrokerRequest(2))
	b := NewBroker(99) // different seed must not matter for state
	if err := b.Restore(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("restored broker state differs")
	}
	used, cap := b.Load("x")
	if used != 2 || cap != 5 {
		t.Fatalf("restored load = %d/%d", used, cap)
	}
}

func TestBrokerListAndClassify(t *testing.T) {
	b := NewBroker(1)
	b.Execute(BrokerRegister("x", 5))
	res, err := b.Execute(BrokerList())
	if err != nil || string(res) != "x 0/5\n" {
		t.Fatalf("list = %q, %v", res, err)
	}
	if BrokerIsWrite(BrokerList()) {
		t.Error("list classified as write")
	}
	if !BrokerIsWrite(BrokerRequest(1)) {
		t.Error("request classified as read")
	}
}

func TestSchedPriorityAndFCFS(t *testing.T) {
	s := NewSched()
	s.Execute(SchedSubmit("low1", 1))
	s.Execute(SchedSubmit("low2", 1))
	s.Execute(SchedSubmit("high", 9))
	// Priority overrides FCFS.
	res, _ := s.Execute(SchedDispatch())
	if string(res) != "high" {
		t.Fatalf("dispatched %q, want high", res)
	}
	// FCFS among equal priorities.
	res, _ = s.Execute(SchedDispatch())
	if string(res) != "low1" {
		t.Fatalf("dispatched %q, want low1 (FCFS)", res)
	}
	res, _ = s.Execute(SchedDispatch())
	if string(res) != "low2" {
		t.Fatalf("dispatched %q, want low2", res)
	}
	// Empty queue dispatch returns empty.
	res, err := s.Execute(SchedDispatch())
	if err != nil || len(res) != 0 {
		t.Fatalf("empty dispatch = %q, %v", res, err)
	}
}

// TestSchedTimingNondeterminism reproduces the §2 scenario: job A arrives
// at t1, job B (higher priority) at t2 > t1. A scheduler examining the
// queue between t1 and t2 selects A; after t2 it selects B. The outcome
// depends on execution timing, not on the request set.
func TestSchedTimingNondeterminism(t *testing.T) {
	fast := NewSched()
	fast.Execute(SchedSubmit("A", 1))
	fastPick, _ := fast.Execute(SchedDispatch()) // examines before B arrives
	fast.Execute(SchedSubmit("B", 9))

	slow := NewSched()
	slow.Execute(SchedSubmit("A", 1))
	slow.Execute(SchedSubmit("B", 9))
	slowPick, _ := slow.Execute(SchedDispatch()) // examines after B arrives

	if string(fastPick) != "A" || string(slowPick) != "B" {
		t.Fatalf("fast=%q slow=%q; want A vs B divergence", fastPick, slowPick)
	}
}

func TestSchedCompleteAndStatus(t *testing.T) {
	s := NewSched()
	s.Execute(SchedSubmit("j1", 1))
	s.Execute(SchedDispatch())
	q, r := s.Counts()
	if q != 0 || r != 1 {
		t.Fatalf("counts = %d,%d", q, r)
	}
	res, _ := s.Execute(SchedStatus())
	if string(res) != "j1 running\n" {
		t.Fatalf("status = %q", res)
	}
	if _, err := s.Execute(SchedComplete("j1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(SchedComplete("j1")); err == nil {
		t.Fatal("double complete must fail")
	}
	if _, err := s.Execute(SchedSubmit("j1", 1)); err != nil {
		t.Fatalf("job id must be reusable after completion: %v", err)
	}
	if _, err := s.Execute(SchedSubmit("j1", 1)); err == nil {
		t.Fatal("duplicate queued job admitted")
	}
}

func TestSchedSnapshotRestore(t *testing.T) {
	a := NewSched()
	a.Execute(SchedSubmit("x", 3))
	a.Execute(SchedSubmit("y", 1))
	a.Execute(SchedDispatch())
	b := NewSched()
	if err := b.Restore(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("restored scheduler state differs")
	}
	// FCFS stamps must survive: submitting to the restored replica must
	// order after the existing jobs.
	b.Execute(SchedSubmit("z", 1))
	res, _ := b.Execute(SchedDispatch())
	if string(res) != "y" {
		t.Fatalf("dispatched %q, want y (older arrival)", res)
	}
}

func TestSchedClassify(t *testing.T) {
	if SchedIsWrite(SchedStatus()) {
		t.Error("status classified as write")
	}
	if !SchedIsWrite(SchedDispatch()) {
		t.Error("dispatch classified as read — it mutates the queue")
	}
}

func TestSchedBadOps(t *testing.T) {
	s := NewSched()
	for _, op := range [][]byte{nil, {0}, {77}} {
		if _, err := s.Execute(op); err == nil {
			t.Errorf("bad op %v accepted", op)
		}
	}
}
