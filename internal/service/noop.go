package service

import (
	"encoding/binary"

	"gridrep/internal/wire"
)

// Noop is the paper's benchmark service (§4): every request invokes an
// empty method, so measurements isolate replication overhead. Its state
// is a few bytes — a version counter bumped by mutating operations —
// matching "the size of service state is small (a few bytes) in our
// experiments".
//
// Noop implements Transactional with fully concurrent, conflict-free
// workspaces, which is what lets the T-Paxos throughput curves (Figure 9)
// scale with the client count.
type Noop struct {
	version uint64
}

// NewNoop returns the benchmark service.
func NewNoop() *Noop { return &Noop{} }

var (
	_ Service       = (*Noop)(nil)
	_ Transactional = (*Noop)(nil)
)

// Execute implements Service: it does no work; any non-empty op bumps the
// version (treated as a write), an empty op is a pure read.
func (n *Noop) Execute(op []byte) ([]byte, error) {
	if len(op) > 0 {
		n.version++
	}
	return nil, nil
}

// Snapshot implements Service.
func (n *Noop) Snapshot() []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], n.version)
	return b[:]
}

// Restore implements Service.
func (n *Noop) Restore(snap []byte) error {
	if len(snap) != 8 {
		return ErrBadOp
	}
	n.version = binary.LittleEndian.Uint64(snap)
	return nil
}

// Version returns the mutation counter (for tests).
func (n *Noop) Version() uint64 { return n.version }

// Begin implements Transactional.
func (n *Noop) Begin(txn uint64) (Workspace, error) {
	return &noopWS{svc: n}, nil
}

type noopWS struct {
	svc    *Noop
	writes uint64
	done   bool
}

func (w *noopWS) Execute(op []byte) ([]byte, error) {
	if len(op) > 0 {
		w.writes++
	}
	return nil, nil
}

func (w *noopWS) Commit() error {
	if !w.done {
		w.done = true
		w.svc.version += w.writes
	}
	return nil
}

func (w *noopWS) Abort() { w.done = true }

// Noop implements ReadViewer trivially: a read observes nothing, so the
// pinned view is stateless and always available.
var _ ReadViewer = (*Noop)(nil)

type noopView struct{}

// ReadView implements ReadViewer.
func (n *Noop) ReadView() (ReadView, bool) { return noopView{}, true }

// ReadExecute implements ReadView: only the empty (pure-read) op is
// read-only; anything else would bump the version and must go through
// the ordered write path.
func (noopView) ReadExecute(op []byte) ([]byte, error) {
	if len(op) > 0 {
		return nil, ErrBadOp
	}
	return nil, nil
}

// NoopFactory is a Factory for the benchmark service.
func NoopFactory() Service { return NewNoop() }

// Benchmark operation payloads for the three request classes of §4. The
// read op is empty (no state change); write and original ops carry one
// byte so Noop counts them as mutations.
var (
	NoopReadOp  = []byte(nil)
	NoopWriteOp = []byte{1}
)

// NoopRequest builds a benchmark request of the given kind.
func NoopRequest(kind wire.RequestKind) []byte {
	if kind == wire.KindRead {
		return NoopReadOp
	}
	return NoopWriteOp
}
