package service

import (
	"bytes"
	"testing"
)

func TestKVDeltaRoundTrip(t *testing.T) {
	leader := NewKV()
	backup := NewKV()
	ops := [][]byte{
		KVPut("a", []byte("1")),
		KVPut("b", []byte("2")),
		KVAdd("ctr", 7),
		KVDelete("a"),
		KVAdd("ctr", -3),
		KVPut("b", []byte("22")),
	}
	for _, op := range ops {
		reply, delta, err := leader.ExecuteDelta(op)
		if err != nil {
			t.Fatalf("ExecuteDelta: %v", err)
		}
		_ = reply
		if err := backup.ApplyDelta(delta); err != nil {
			t.Fatalf("ApplyDelta: %v", err)
		}
	}
	if !bytes.Equal(leader.Snapshot(), backup.Snapshot()) {
		t.Fatal("delta-applied state diverged from executed state")
	}
}

func TestKVDeltaMatchesExecute(t *testing.T) {
	// ExecuteDelta must produce the same replies and state as Execute.
	a, b := NewKV(), NewKV()
	ops := [][]byte{KVPut("x", []byte("v")), KVAdd("n", 5), KVGet("x"), KVDelete("x")}
	for _, op := range ops {
		ra, err := a.Execute(op)
		if err != nil {
			t.Fatal(err)
		}
		rb, _, err := b.ExecuteDelta(op)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ra, rb) {
			t.Fatalf("replies differ for op %v: %q vs %q", op, ra, rb)
		}
	}
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("states diverged")
	}
}

func TestKVDeltaGetIsEmpty(t *testing.T) {
	s := NewKV()
	s.Execute(KVPut("k", []byte("v")))
	_, delta, err := s.ExecuteDelta(KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	// A read's delta must encode zero changes.
	fresh := NewKV()
	before := fresh.Snapshot()
	if err := fresh.ApplyDelta(delta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, fresh.Snapshot()) {
		t.Fatal("read delta mutated state")
	}
}

func TestKVApplyDeltaRejectsGarbage(t *testing.T) {
	s := NewKV()
	if err := s.ApplyDelta([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("garbage delta accepted")
	}
}

func TestBrokerReplayReproducesSelection(t *testing.T) {
	leader := NewBroker(1)
	backup := NewBroker(999) // wildly different RNG
	setup := [][]byte{BrokerRegister("a", 5), BrokerRegister("b", 5)}
	for _, op := range setup {
		if _, _, err := leader.ExecuteCapture(op); err != nil {
			t.Fatal(err)
		}
		if _, err := backup.Replay(op, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		op := BrokerRequest(1)
		reply, aux, err := leader.ExecuteCapture(op)
		if err != nil {
			t.Fatal(err)
		}
		got, err := backup.Replay(op, aux)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reply, got) {
			t.Fatalf("replayed reply differs: %x vs %x", reply, got)
		}
	}
	if !bytes.Equal(leader.Snapshot(), backup.Snapshot()) {
		t.Fatal("replayed broker state diverged")
	}
}

func TestBrokerReplayRejectsInvalidSelection(t *testing.T) {
	b := NewBroker(1)
	b.Execute(BrokerRegister("a", 1))
	// Aux claiming a selection of an unknown resource must fail loudly.
	enc := BrokerRequest(1)
	badAux := []byte{1, 7, 'u', 'n', 'k', 'n', 'o', 'w', 'n'}
	if _, err := b.Replay(enc, badAux); err == nil {
		t.Fatal("invalid replay selection accepted")
	}
}

func TestSchedReplayReproducesDispatch(t *testing.T) {
	leader := NewSched()
	backup := NewSched()
	for _, op := range [][]byte{
		SchedSubmit("a", 1), SchedSubmit("b", 9), SchedSubmit("c", 9),
	} {
		if _, _, err := leader.ExecuteCapture(op); err != nil {
			t.Fatal(err)
		}
		if _, err := backup.Replay(op, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		op := SchedDispatch()
		reply, aux, err := leader.ExecuteCapture(op)
		if err != nil {
			t.Fatal(err)
		}
		got, err := backup.Replay(op, aux)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reply, got) {
			t.Fatalf("dispatch %d: replay picked %q, leader picked %q", i, got, reply)
		}
	}
	if !bytes.Equal(leader.Snapshot(), backup.Snapshot()) {
		t.Fatal("replayed scheduler state diverged")
	}
}

func TestSchedReplayEmptyDispatch(t *testing.T) {
	s := NewSched()
	res, err := s.Replay(SchedDispatch(), nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty-queue replay = %q, %v", res, err)
	}
}

func TestSchedReplayUnknownJobFails(t *testing.T) {
	s := NewSched()
	if _, err := s.Replay(SchedDispatch(), []byte("ghost")); err == nil {
		t.Fatal("replay of unknown job accepted")
	}
}

func TestModeInterfaceDetection(t *testing.T) {
	if _, ok := Service(NewKV()).(Differ); !ok {
		t.Error("KV must implement Differ")
	}
	if _, ok := Service(NewBroker(1)).(Replayer); !ok {
		t.Error("Broker must implement Replayer")
	}
	if _, ok := Service(NewSched()).(Replayer); !ok {
		t.Error("Sched must implement Replayer")
	}
	if _, ok := Service(NewNoop()).(Differ); ok {
		t.Error("Noop must not implement Differ")
	}
	if _, ok := Service(NewNoop()).(Replayer); ok {
		t.Error("Noop must not implement Replayer")
	}
}
