package service

import (
	"errors"
	"sync"
	"testing"
)

// TestKVReadViewImmutable pins a view, mutates the base state through
// every write path, and checks the view still answers from the pinned
// state — the DESIGN.md §14 contract that lets read execution run off
// the event loop while writes proceed.
func TestKVReadViewImmutable(t *testing.T) {
	s := NewKV()
	s.Execute(KVPut("a", []byte("1")))
	s.Execute(KVPut("b", []byte("2")))

	view, ok := s.ReadView()
	if !ok {
		t.Fatal("quiescent KV must pin a view")
	}
	// Mutate through Execute, ExecuteDelta, ApplyDelta, and a committed
	// transaction — all the paths that write the base map.
	s.Execute(KVPut("a", []byte("changed")))
	s.Execute(KVDelete("b"))
	if _, delta, err := s.ExecuteDelta(KVPut("c", []byte("3"))); err != nil || delta == nil {
		t.Fatalf("delta: %v", err)
	}
	w, err := s.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	w.Execute(KVPut("d", []byte("4")))
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	res, err := view.ReadExecute(KVGet("a"))
	if err != nil {
		t.Fatal(err)
	}
	if v, found := KVReply(res); !found || string(v) != "1" {
		t.Fatalf("view saw mutation: a = %q,%v", v, found)
	}
	res, _ = view.ReadExecute(KVGet("b"))
	if _, found := KVReply(res); !found {
		t.Fatal("view must still see deleted key b")
	}
	for _, key := range []string{"c", "d"} {
		res, _ = view.ReadExecute(KVGet(key))
		if _, found := KVReply(res); found {
			t.Fatalf("view must not see post-pin key %q", key)
		}
	}
	// The base, meanwhile, sees everything.
	res, _ = s.Execute(KVGet("a"))
	if v, _ := KVReply(res); string(v) != "changed" {
		t.Fatalf("base state lost its write: a = %q", v)
	}
}

// TestKVReadViewRefusedUnderLocks checks the pin refusal: a frozen view
// cannot honor the §3.5 lock-conflict semantics, so ReadView must
// decline while any transaction holds locks and resume once they drain.
func TestKVReadViewRefusedUnderLocks(t *testing.T) {
	s := NewKV()
	w, err := s.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Execute(KVPut("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ReadView(); ok {
		t.Fatal("ReadView must refuse while transaction locks are held")
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ReadView(); !ok {
		t.Fatal("ReadView must pin again once locks drain")
	}
}

// TestKVReadViewRejectsMutations: a view is read-only; every mutating
// opcode must fail with ErrBadOp and leave both view and base intact.
func TestKVReadViewRejectsMutations(t *testing.T) {
	s := NewKV()
	s.Execute(KVPut("k", []byte("v")))
	view, ok := s.ReadView()
	if !ok {
		t.Fatal("pin failed")
	}
	for _, op := range [][]byte{KVPut("k", []byte("x")), KVDelete("k"), KVAdd("k", 1)} {
		if _, err := view.ReadExecute(op); !errors.Is(err, ErrBadOp) {
			t.Fatalf("mutating op on view: err = %v, want ErrBadOp", err)
		}
	}
	res, _ := s.Execute(KVGet("k"))
	if v, _ := KVReply(res); string(v) != "v" {
		t.Fatalf("base mutated through view: k = %q", v)
	}
}

// TestKVReadViewConcurrent hammers pinned views from many goroutines
// while the base keeps writing and re-pinning — the actual shape of the
// parallel read path, meaningful chiefly under -race.
func TestKVReadViewConcurrent(t *testing.T) {
	s := NewKV()
	s.Execute(KVPut("k", []byte("v0")))

	var wg sync.WaitGroup
	views := make(chan ReadView, 64)
	wg.Add(1)
	go func() { // writer + pinner: the event loop's role
		defer wg.Done()
		defer close(views)
		for i := 0; i < 200; i++ {
			s.Execute(KVAdd("ctr", 1))
			if view, ok := s.ReadView(); ok {
				select {
				case views <- view:
				default:
				}
			}
		}
	}()
	for r := 0; r < 4; r++ { // readers: the worker pool's role
		wg.Add(1)
		go func() {
			defer wg.Done()
			for view := range views {
				res, err := view.ReadExecute(KVGet("k"))
				if err != nil {
					t.Error(err)
					return
				}
				if v, found := KVReply(res); !found || string(v) != "v0" {
					t.Errorf("k = %q,%v", v, found)
					return
				}
				view.ReadExecute(KVGet("ctr"))
			}
		}()
	}
	wg.Wait()
}

// TestKVReadViewSurvivesRestore: Restore swaps the whole map in; a view
// pinned beforehand must keep answering from the pre-restore state.
func TestKVReadViewSurvivesRestore(t *testing.T) {
	s := NewKV()
	s.Execute(KVPut("k", []byte("old")))
	view, ok := s.ReadView()
	if !ok {
		t.Fatal("pin failed")
	}
	other := NewKV()
	other.Execute(KVPut("k", []byte("new")))
	if err := s.Restore(other.Snapshot()); err != nil {
		t.Fatal(err)
	}
	res, _ := view.ReadExecute(KVGet("k"))
	if v, _ := KVReply(res); string(v) != "old" {
		t.Fatalf("view leaked restored state: k = %q", v)
	}
	res, _ = s.Execute(KVGet("k"))
	if v, _ := KVReply(res); string(v) != "new" {
		t.Fatalf("restore lost: k = %q", v)
	}
}

// TestNoopReadView: the no-op service pins trivially and keeps the
// read/op validation of its Execute path.
func TestNoopReadView(t *testing.T) {
	n := NewNoop()
	view, ok := n.ReadView()
	if !ok {
		t.Fatal("noop must always pin")
	}
	if _, err := view.ReadExecute(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := view.ReadExecute([]byte{1}); !errors.Is(err, ErrBadOp) {
		t.Fatalf("non-empty op: err = %v, want ErrBadOp", err)
	}
}
