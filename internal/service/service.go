// Package service defines the replicated service abstraction and ships
// the services used by the examples and benchmarks.
//
// Services may be nondeterministic (§2): executing the same operation
// from the same state on two replicas may produce different results —
// randomized resource brokers, schedulers whose decisions depend on
// examination timing, anything consulting local time or random numbers.
// The replication protocol therefore executes every operation exactly
// once, on the leader, and replicates the resulting state (§3.3). A
// Service must be able to externalize that state (Snapshot) and adopt a
// peer's state (Restore); it never needs deterministic re-execution.
package service

import "errors"

// Common service errors.
var (
	// ErrConflict reports a transactional lock conflict; the enclosing
	// transaction must abort (§3.5: concurrent transactions are handled
	// "using locks or other mechanisms").
	ErrConflict = errors.New("service: transaction conflict")
	// ErrBadOp reports an operation payload the service cannot parse.
	ErrBadOp = errors.New("service: malformed operation")
)

// Service is a replicated application. Implementations are driven by a
// single replica goroutine and need no internal locking.
type Service interface {
	// Execute applies one operation and returns its reply. Execution
	// may be nondeterministic and may mutate state; the protocol layer
	// captures the post-execution state via Snapshot.
	Execute(op []byte) ([]byte, error)
	// Snapshot returns an opaque, self-contained encoding of the
	// current state.
	Snapshot() []byte
	// Restore replaces the current state with a snapshot produced by
	// Snapshot on any replica.
	Restore(snap []byte) error
}

// Transactional is implemented by services that support concurrent
// T-Paxos transactions natively (with per-item locking). Services that do
// not implement it are wrapped by Serialize, which provides one-at-a-time
// transactions via snapshot/undo.
type Transactional interface {
	Service
	// Begin opens a workspace for a transaction. It returns ErrConflict
	// if the service cannot admit another transaction right now.
	Begin(txn uint64) (Workspace, error)
}

// Workspace is the execution context of one open transaction. Operations
// executed in a workspace are isolated from the base service until
// Commit.
type Workspace interface {
	// Execute applies one operation inside the transaction. A returned
	// ErrConflict aborts the whole transaction.
	Execute(op []byte) ([]byte, error)
	// Commit atomically applies the workspace to the base service.
	Commit() error
	// Abort discards the workspace.
	Abort()
}

// Factory creates a fresh service instance; each replica owns one.
type Factory func() Service

// AsTransactional returns svc's native transactional interface, or wraps
// it with Serialize.
func AsTransactional(svc Service) Transactional {
	if t, ok := svc.(Transactional); ok {
		return t
	}
	return Serialize(svc)
}

// serialized adapts any Service to Transactional by admitting one
// transaction at a time and keeping an undo snapshot.
type serialized struct {
	Service
	busy bool
}

// Serialize wraps a non-transactional service so T-Paxos can still run
// against it: one transaction at a time, with abort implemented by
// restoring the pre-transaction snapshot.
func Serialize(svc Service) Transactional { return &serialized{Service: svc} }

func (s *serialized) Begin(txn uint64) (Workspace, error) {
	if s.busy {
		return nil, ErrConflict
	}
	s.busy = true
	return &serialWS{s: s, undo: s.Snapshot()}, nil
}

type serialWS struct {
	s    *serialized
	undo []byte
	done bool
}

func (w *serialWS) Execute(op []byte) ([]byte, error) {
	if w.done {
		return nil, ErrConflict
	}
	return w.s.Service.Execute(op)
}

func (w *serialWS) Commit() error {
	if w.done {
		return nil
	}
	w.done = true
	w.s.busy = false
	return nil
}

func (w *serialWS) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.s.busy = false
	// Ignoring the error is safe: undo came from this very service's
	// Snapshot moments ago.
	_ = w.s.Service.Restore(w.undo)
}

// Exclusive is implemented by Transactional services that admit only one
// transaction at a time and execute transaction operations directly
// against base state (the Serialize adapter). The replica serializes all
// other work around such transactions.
type Exclusive interface {
	ExclusiveTxns() bool
}

// ExclusiveTxns implements Exclusive.
func (s *serialized) ExclusiveTxns() bool { return true }

// IsExclusive reports whether t serializes transactions.
func IsExclusive(t Transactional) bool {
	e, ok := t.(Exclusive)
	return ok && e.ExclusiveTxns()
}

// Differ is the §3.3 "exchange only the updated state" optimization: the
// service expresses each operation's effect as a delta against the
// pre-operation state. Replicas holding the previous state apply deltas
// instead of adopting full snapshots, shrinking state transfer.
type Differ interface {
	Service
	// ExecuteDelta executes op (possibly nondeterministically) and
	// additionally returns a delta: ApplyDelta(delta) on a replica
	// holding the pre-operation state reproduces the post-operation
	// state exactly.
	ExecuteDelta(op []byte) (reply, delta []byte, err error)
	// ApplyDelta applies a delta produced by ExecuteDelta.
	ApplyDelta(delta []byte) error
}

// Sharder is implemented by services whose operations address a single
// key, enabling sharded deployments (DESIGN.md §13) to route each
// operation to one of N independent consensus groups by hashing that
// key. Services without Sharder still shard — the router hashes the
// whole operation encoding, which spreads load but gives no affinity
// guarantee between operations that touch the same logical datum.
type Sharder interface {
	Service
	// ShardKey extracts the routing key from an operation encoding. ok
	// is false when the operation does not address a single key (the
	// router then falls back to hashing op itself). ShardKey must be
	// pure and must not retain op.
	ShardKey(op []byte) (key []byte, ok bool)
}

// ReadView is an immutable snapshot of a service's state, pinned at the
// moment ReadViewer.ReadView returned it. Unlike every other service
// surface it is NOT confined to the replica's event loop: the replica
// hands views to a worker pool that executes X-Paxos reads concurrently,
// so ReadExecute must be safe for simultaneous calls from many
// goroutines and must keep observing exactly the pinned state no matter
// what the owning service mutates afterwards.
type ReadView interface {
	// ReadExecute applies one read-only operation against the pinned
	// state. It must not mutate anything (neither the view nor the
	// owning service) and must reject operations that would.
	ReadExecute(op []byte) ([]byte, error)
}

// ReadViewer is implemented by services that can pin an immutable view
// of their current state — by copy-on-write, epoch pinning, or any other
// scheme — enabling the replica to execute reads in parallel off the
// event loop while writes keep mutating the live state. Services without
// ReadViewer still serve reads; they just execute inline on the event
// loop, the pre-parallelism behavior.
type ReadViewer interface {
	Service
	// ReadView pins the current state. ok is false when the state cannot
	// be pinned right now (e.g. open transactions hold locks whose
	// conflict semantics a concurrent frozen view could not honor); the
	// caller then falls back to inline execution.
	ReadView() (ReadView, bool)
}

// Replayer is the §3.3 "request plus additional information" optimization:
// the nondeterministic operation can be reproduced from the request and
// the choices the leader actually made, so replicas exchange only that
// information and regenerate the state by deterministic re-execution.
type Replayer interface {
	Service
	// ExecuteCapture executes op and returns the reply together with
	// the captured nondeterministic choices (aux). Deterministic
	// operations may return nil aux.
	ExecuteCapture(op []byte) (reply, aux []byte, err error)
	// Replay re-executes op deterministically given aux, reproducing
	// the leader's state transition and reply.
	Replay(op, aux []byte) (reply []byte, err error)
}
