package service

import (
	"fmt"
	"sort"

	"gridrep/internal/wire"
)

// Sched is the paper's second motivating application (§2): a grid
// scheduling service (after the NILE Global Planner) that examines jobs
// in FCFS order, with FCFS overridden by job priorities.
//
// The service is unintentionally nondeterministic: which job a Dispatch
// selects depends on which submissions the scheduler has seen when it
// examines the queue — a function of machine speed and message timing,
// not just of the request set. Under replication, the leader's execution
// order captures that timing; the decided <req, state> tuples make every
// replica agree on the schedule (§2: "we need a protocol that can
// synchronize the replicas of a nondeterministic service").
type Sched struct {
	arrivals uint64
	queued   map[string]*job
	running  map[string]*job
}

type job struct {
	id      string
	prio    int64
	arrival uint64 // FCFS order stamp
}

// NewSched returns an empty scheduler.
func NewSched() *Sched {
	return &Sched{queued: make(map[string]*job), running: make(map[string]*job)}
}

var _ Service = (*Sched)(nil)

// Scheduler opcodes.
const (
	schSubmit uint8 = iota + 1
	schDispatch
	schComplete
	schStatus
)

// SchedSubmit builds an op submitting a job with a priority (higher wins).
func SchedSubmit(id string, prio int64) []byte {
	enc := wire.NewEncoder(nil)
	enc.Uint8(schSubmit)
	enc.String(id)
	enc.Uint64(uint64(prio))
	return enc.Bytes()
}

// SchedDispatch builds an op that examines the queue and starts the best
// job: highest priority, FCFS among equals. The reply is the chosen job
// ID, or empty when the queue is empty.
func SchedDispatch() []byte { return []byte{schDispatch} }

// SchedComplete builds an op marking a running job finished.
func SchedComplete(id string) []byte {
	enc := wire.NewEncoder(nil)
	enc.Uint8(schComplete)
	enc.String(id)
	return enc.Bytes()
}

// SchedStatus builds a read op returning a human-readable queue summary.
func SchedStatus() []byte { return []byte{schStatus} }

// SchedIsWrite reports whether op mutates scheduler state.
func SchedIsWrite(op []byte) bool { return len(op) > 0 && op[0] != schStatus }

// Execute implements Service.
func (s *Sched) Execute(op []byte) ([]byte, error) {
	if len(op) == 0 {
		return nil, ErrBadOp
	}
	dec := wire.NewDecoder(op)
	switch code := dec.Uint8(); code {
	case schSubmit:
		id := dec.String()
		prio := int64(dec.Uint64())
		if err := dec.Done(); err != nil {
			return nil, err
		}
		if _, dup := s.queued[id]; dup {
			return nil, fmt.Errorf("%w: duplicate job %q", ErrBadOp, id)
		}
		if _, dup := s.running[id]; dup {
			return nil, fmt.Errorf("%w: job %q already running", ErrBadOp, id)
		}
		s.arrivals++
		s.queued[id] = &job{id: id, prio: prio, arrival: s.arrivals}
		return nil, nil
	case schDispatch:
		if err := dec.Done(); err != nil {
			return nil, err
		}
		best := s.pick()
		if best == nil {
			return nil, nil
		}
		delete(s.queued, best.id)
		s.running[best.id] = best
		return []byte(best.id), nil
	case schComplete:
		id := dec.String()
		if err := dec.Done(); err != nil {
			return nil, err
		}
		if _, ok := s.running[id]; !ok {
			return nil, fmt.Errorf("%w: job %q not running", ErrBadOp, id)
		}
		delete(s.running, id)
		return nil, nil
	case schStatus:
		if err := dec.Done(); err != nil {
			return nil, err
		}
		return s.status(), nil
	default:
		return nil, fmt.Errorf("%w: scheduler opcode %d", ErrBadOp, code)
	}
}

// pick returns the job the FCFS-with-priority policy selects from the
// submissions seen so far.
func (s *Sched) pick() *job {
	var best *job
	for _, j := range s.queued {
		if best == nil || j.prio > best.prio || (j.prio == best.prio && j.arrival < best.arrival) {
			best = j
		}
	}
	return best
}

func (s *Sched) status() []byte {
	type row struct{ id, state string }
	var rows []row
	for id := range s.queued {
		rows = append(rows, row{id, "queued"})
	}
	for id := range s.running {
		rows = append(rows, row{id, "running"})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	out := ""
	for _, r := range rows {
		out += fmt.Sprintf("%s %s\n", r.id, r.state)
	}
	return []byte(out)
}

// Snapshot implements Service with a deterministic encoding.
func (s *Sched) Snapshot() []byte {
	enc := wire.NewEncoder(nil)
	enc.Uvarint(s.arrivals)
	writeJobs := func(m map[string]*job) {
		ids := make([]string, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		enc.Uvarint(uint64(len(ids)))
		for _, id := range ids {
			j := m[id]
			enc.String(j.id)
			enc.Uint64(uint64(j.prio))
			enc.Uvarint(j.arrival)
		}
	}
	writeJobs(s.queued)
	writeJobs(s.running)
	return enc.Bytes()
}

// Restore implements Service.
func (s *Sched) Restore(snap []byte) error {
	dec := wire.NewDecoder(snap)
	arrivals := dec.Uvarint()
	readJobs := func() (map[string]*job, error) {
		n := dec.SliceLen()
		if dec.Err() != nil {
			return nil, dec.Err()
		}
		m := make(map[string]*job, n)
		for i := 0; i < n; i++ {
			j := &job{}
			j.id = dec.String()
			j.prio = int64(dec.Uint64())
			j.arrival = dec.Uvarint()
			m[j.id] = j
		}
		return m, nil
	}
	queued, err := readJobs()
	if err != nil {
		return err
	}
	running, err := readJobs()
	if err != nil {
		return err
	}
	if err := dec.Done(); err != nil {
		return err
	}
	s.arrivals, s.queued, s.running = arrivals, queued, running
	return nil
}

// Counts returns (queued, running) sizes (for tests).
func (s *Sched) Counts() (int, int) { return len(s.queued), len(s.running) }

// Sched implements Replayer: the timing-dependent choice is which job a
// dispatch selects, reproduced exactly by the chosen job ID (§3.3's
// "request and some additional information", the paper's own example:
// "the primary only need to send the state of its queue when it selects
// a new request").
var _ Replayer = (*Sched)(nil)

// ExecuteCapture implements Replayer; a dispatch's aux is the selected
// job ID (its reply), every other operation is deterministic.
func (s *Sched) ExecuteCapture(op []byte) (reply, aux []byte, err error) {
	reply, err = s.Execute(op)
	if err != nil {
		return nil, nil, err
	}
	if len(op) > 0 && op[0] == schDispatch {
		aux = reply
	}
	return reply, aux, nil
}

// Replay implements Replayer: a dispatch starts exactly the job the
// leader picked rather than re-examining the queue.
func (s *Sched) Replay(op, aux []byte) ([]byte, error) {
	if len(op) == 0 {
		return nil, ErrBadOp
	}
	if op[0] != schDispatch {
		return s.Execute(op)
	}
	if len(aux) == 0 {
		return nil, nil // the leader dispatched from an empty queue
	}
	id := string(aux)
	j, ok := s.queued[id]
	if !ok {
		return nil, fmt.Errorf("%w: replay dispatch of unknown job %q", ErrBadOp, id)
	}
	delete(s.queued, id)
	s.running[id] = j
	return aux, nil
}
