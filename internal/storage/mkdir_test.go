package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"gridrep/internal/wire"
)

// TestOpenFileCreatesMissingDirs: OpenFile must create missing parent
// directories itself (sharded deployments open group-<g>/replica-<id>.wal
// before any group-<g>/ directory exists) and the WAL must work normally
// afterwards.
func TestOpenFileCreatesMissingDirs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "group-3", "nested", "replica-0.wal")
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.PutAccepted([]wire.Entry{entry(1, wire.Ballot{Round: 1}, "a", false)}, wire.Ballot{Round: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen replays through the created directories.
	f, err = OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Accepted.Len(); got != 1 {
		t.Fatalf("reopened WAL has %d entries, want 1", got)
	}
}

// TestOpenFileConcurrentSiblingDirs is the regression test for the
// sharded-startup race: N groups of one process open their WALs
// concurrently, each in its own fresh group-<g>/ subdirectory of one
// shared parent. Every MkdirAll must succeed (EEXIST from a sibling's
// concurrent create is not an error) and every WAL must be usable.
func TestOpenFileConcurrentSiblingDirs(t *testing.T) {
	dir := t.TempDir()
	const groups = 8
	var wg sync.WaitGroup
	errs := make([]error, groups)
	files := make([]*File, groups)
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			path := filepath.Join(dir, fmt.Sprintf("group-%d", g), "replica-0.wal")
			f, err := OpenFile(path)
			if err != nil {
				errs[g] = err
				return
			}
			files[g] = f
			errs[g] = f.PutAccepted([]wire.Entry{entry(1, wire.Ballot{Round: 1}, fmt.Sprintf("g%d", g), false)}, wire.Ballot{Round: 1})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
	}
	for g, f := range files {
		if f != nil {
			if err := f.Close(); err != nil {
				t.Fatalf("group %d close: %v", g, err)
			}
		}
	}
	// All eight sibling directories must exist with their WALs inside.
	for g := 0; g < groups; g++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("group-%d", g), "replica-0.wal")); err != nil {
			t.Fatalf("group %d WAL missing: %v", g, err)
		}
	}
}

// TestOpenFileConcurrentSameDir: several replicas of different IDs (or
// retries of the same open) racing to create the SAME missing directory
// must all succeed — the historical bug was treating a concurrently
// created directory as a fatal open error.
func TestOpenFileConcurrentSameDir(t *testing.T) {
	dir := t.TempDir()
	shared := filepath.Join(dir, "group-1")
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := OpenFile(filepath.Join(shared, fmt.Sprintf("replica-%d.wal", i)))
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = f.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
}
