package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"gridrep/internal/wire"
)

func entry(inst uint64, bal wire.Ballot, op string, withState bool) wire.Entry {
	e := wire.Entry{
		Instance: inst,
		Bal:      bal,
		Prop: wire.Proposal{
			Reqs:    []wire.Request{{Client: wire.ClientIDBase, Seq: inst, Kind: wire.KindWrite, Op: []byte(op)}},
			Results: [][]byte{[]byte("r" + op)},
		},
	}
	if withState {
		e.Prop.HasState = true
		e.Prop.State = []byte("state-" + op)
	}
	return e
}

// storeFactory lets every test run against both implementations.
func stores(t *testing.T) map[string]func(t *testing.T) Store {
	return map[string]func(t *testing.T) Store{
		"mem": func(t *testing.T) Store { return NewMem() },
		"file": func(t *testing.T) Store {
			s, err := OpenFile(filepath.Join(t.TempDir(), "wal"))
			if err != nil {
				t.Fatal(err)
			}
			s.Sync = false // tests don't need real fsync latency
			return s
		},
	}
}

func TestStoreBasics(t *testing.T) {
	for name, mk := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()

			b1 := wire.Ballot{Round: 1, Node: 0}
			b2 := wire.Ballot{Round: 2, Node: 1}
			if err := s.SetPromised(b1); err != nil {
				t.Fatal(err)
			}
			if err := s.PutAccepted([]wire.Entry{entry(1, b1, "a", true)}, b1); err != nil {
				t.Fatal(err)
			}
			if err := s.SetPromised(b2); err != nil {
				t.Fatal(err)
			}
			if err := s.SetChosen(1); err != nil {
				t.Fatal(err)
			}

			st, err := s.Load()
			if err != nil {
				t.Fatal(err)
			}
			if !st.Promised.Equal(b2) {
				t.Errorf("Promised = %v, want %v", st.Promised, b2)
			}
			if !st.MaxAccepted.Equal(b1) {
				t.Errorf("MaxAccepted = %v, want %v", st.MaxAccepted, b1)
			}
			if st.Chosen != 1 {
				t.Errorf("Chosen = %d, want 1", st.Chosen)
			}
			e, ok := st.Accepted.Get(1)
			if !ok || string(e.Prop.Reqs[0].Op) != "a" || !e.Prop.HasState {
				t.Errorf("Accepted.Get(1) = %+v", e)
			}
		})
	}
}

func TestPromiseMonotonic(t *testing.T) {
	for name, mk := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()
			hi := wire.Ballot{Round: 9, Node: 1}
			lo := wire.Ballot{Round: 3, Node: 0}
			s.SetPromised(hi)
			s.SetPromised(lo) // must be ignored
			st, _ := s.Load()
			if !st.Promised.Equal(hi) {
				t.Errorf("promise regressed to %v", st.Promised)
			}
		})
	}
}

func TestChosenMonotonic(t *testing.T) {
	for name, mk := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()
			s.SetChosen(10)
			s.SetChosen(4) // must be ignored
			st, _ := s.Load()
			if st.Chosen != 10 {
				t.Errorf("chosen regressed to %d", st.Chosen)
			}
		})
	}
}

func TestCompactDropsOldStateKeepsRequests(t *testing.T) {
	for name, mk := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()
			b := wire.Ballot{Round: 1, Node: 0}
			s.PutAccepted([]wire.Entry{
				entry(1, b, "a", true), entry(2, b, "b", true), entry(3, b, "c", true),
			}, b)
			if err := s.Compact(3); err != nil {
				t.Fatal(err)
			}
			st, _ := s.Load()
			for inst := uint64(1); inst <= 2; inst++ {
				e, _ := st.Accepted.Get(inst)
				if e.Prop.HasState {
					t.Errorf("instance %d kept state after compact", inst)
				}
				if len(e.Prop.Reqs) == 0 {
					t.Errorf("instance %d lost its request", inst)
				}
			}
			if e3, _ := st.Accepted.Get(3); !e3.Prop.HasState {
				t.Error("latest instance must keep state")
			}
		})
	}
}

func TestLoadIsolation(t *testing.T) {
	for name, mk := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()
			b := wire.Ballot{Round: 1, Node: 0}
			s.PutAccepted([]wire.Entry{entry(1, b, "a", true)}, b)
			st, _ := s.Load()
			st.Accepted.Put(entry(99, b, "evil", false))
			st.Promised = wire.Ballot{Round: 100, Node: 3}
			st2, _ := s.Load()
			if _, ok := st2.Accepted.Get(99); ok {
				t.Error("Load must return an isolated copy")
			}
			if st2.Promised.Equal(st.Promised) {
				t.Error("Load must not share the promised ballot")
			}
		})
	}
}

func TestFileRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Sync = false
	b := wire.Ballot{Round: 5, Node: 2}
	s.SetPromised(b)
	s.PutAccepted([]wire.Entry{entry(7, b, "x", true)}, b)
	s.SetChosen(7)
	s.Close()

	// Reopen: state must replay identically.
	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, _ := s2.Load()
	if !st.Promised.Equal(b) || st.Chosen != 7 {
		t.Fatalf("replayed state wrong: %+v", st)
	}
	e, _ := st.Accepted.Get(7)
	if string(e.Prop.Reqs[0].Op) != "x" || string(e.Prop.State) != "state-x" {
		t.Fatalf("replayed entry wrong: %+v", e)
	}
}

func TestFileTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	s, _ := OpenFile(path)
	s.Sync = false
	b := wire.Ballot{Round: 1, Node: 0}
	s.SetPromised(b)
	s.SetChosen(3)
	s.Close()

	// Simulate a torn write: append garbage.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.Write([]byte{0x55, 0x01, 0x02})
	f.Close()

	s2, err := OpenFile(path)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer s2.Close()
	st, _ := s2.Load()
	if !st.Promised.Equal(b) || st.Chosen != 3 {
		t.Fatalf("state lost after torn tail: %+v", st)
	}
	// The store must be writable again after truncation.
	if err := s2.SetChosen(4); err != nil {
		t.Fatal(err)
	}
}

func TestFileCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	s, _ := OpenFile(path)
	s.Sync = false
	s.SetChosen(1)
	off, _ := s.f.Seek(0, 2)
	s.SetChosen(2)
	s.Close()

	// Flip a byte inside the second record's body.
	data, _ := os.ReadFile(path)
	data[off+2] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, _ := s2.Load()
	if st.Chosen != 1 {
		t.Fatalf("Chosen = %d, want replay to stop at 1", st.Chosen)
	}
}

func TestFileRewriteSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	s, _ := OpenFile(path)
	s.Sync = false
	s.rewriteAt = 1 // force rewrite on first Compact
	b := wire.Ballot{Round: 2, Node: 1}
	s.SetPromised(b)
	s.PutAccepted([]wire.Entry{entry(1, b, "a", true), entry(2, b, "b", true)}, b)
	s.SetChosen(2)
	if err := s.Compact(2); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, _ := s2.Load()
	if st.Chosen != 2 || !st.Promised.Equal(b) || st.Accepted.Len() != 2 {
		t.Fatalf("snapshot replay wrong: %+v", st)
	}
	if e1, _ := st.Accepted.Get(1); e1.Prop.HasState {
		t.Error("compacted entry must have no state after snapshot")
	}
	if e2, _ := st.Accepted.Get(2); !e2.Prop.HasState {
		t.Error("latest entry must keep state in snapshot")
	}
}

// TestMemFileEquivalence drives both stores through a random mutation
// sequence and requires identical final states.
func TestMemFileEquivalence(t *testing.T) {
	f := func(ops []uint8) bool {
		mem := NewMem()
		file, err := OpenFile(filepath.Join(t.TempDir(), "wal"))
		if err != nil {
			t.Fatal(err)
		}
		file.Sync = false
		defer file.Close()
		both := []Store{mem, file}
		var inst uint64
		for _, op := range ops {
			inst++
			b := wire.Ballot{Round: uint64(op%7) + 1, Node: wire.NodeID(op % 3)}
			for _, s := range both {
				switch op % 4 {
				case 0:
					s.SetPromised(b)
				case 1:
					s.PutAccepted([]wire.Entry{entry(inst, b, "op", true)}, b)
				case 2:
					s.SetChosen(uint64(op))
				case 3:
					s.Compact(inst)
				}
			}
		}
		a, _ := mem.Load()
		bSt, _ := file.Load()
		if !a.Promised.Equal(bSt.Promised) || !a.MaxAccepted.Equal(bSt.MaxAccepted) ||
			a.Chosen != bSt.Chosen || a.Accepted.Len() != bSt.Accepted.Len() {
			return false
		}
		same := true
		a.Accepted.Ascend(0, 0, func(v wire.Entry) bool {
			w, ok := bSt.Accepted.Get(v.Instance)
			if !ok || v.Prop.HasState != w.Prop.HasState {
				same = false
			}
			return same
		})
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFileTailBitFlipTruncates is the tail-corruption regression test:
// a bit flip inside the last record of a real WAL (a torn or silently
// corrupted final write) must make replay truncate at that record, keep
// everything before it, and leave the store writable — and a record
// appended after the truncation must survive a further reopen (no
// corrupt garbage may linger past the new tail).
func TestFileTailBitFlipTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Sync = false
	b := wire.Ballot{Round: 2, Node: 1}
	s.SetPromised(b)
	s.PutAccepted([]wire.Entry{entry(1, b, "a", true), entry(2, b, "b", true)}, b)
	s.SetChosen(2)
	off, _ := s.f.Seek(0, 2) // start of the record we are about to tear
	s.PutAccepted([]wire.Entry{entry(3, b, "c", true)}, b)
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off+3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFile(path)
	if err != nil {
		t.Fatalf("bit-flipped tail must not fail open: %v", err)
	}
	st, _ := s2.Load()
	if !st.Promised.Equal(b) || st.Chosen != 2 {
		t.Fatalf("state before the corrupt record lost: %+v", st)
	}
	if _, ok := st.Accepted.Get(3); ok {
		t.Fatal("corrupt tail record must be dropped")
	}
	if e2, ok := st.Accepted.Get(2); !ok || string(e2.Prop.Reqs[0].Op) != "b" {
		t.Fatalf("entry 2 lost: %+v", e2)
	}
	// The store must accept appends past the truncation point, and those
	// appends must be replayable: no corrupt bytes may survive past the
	// new tail to poison the next recovery.
	if err := s2.PutAccepted([]wire.Entry{entry(3, b, "c2", true)}, b); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	s3, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	st3, _ := s3.Load()
	e3, ok := st3.Accepted.Get(3)
	if !ok || string(e3.Prop.Reqs[0].Op) != "c2" {
		t.Fatalf("re-appended record lost after second reopen: %+v", e3)
	}
}

// TestSnapshotMembersPruneReplay drives the reconfiguration records —
// service snapshot, membership, prune — through a real WAL and requires
// a reopen to replay them exactly (DESIGN.md §12).
func TestSnapshotMembersPruneReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Sync = false
	b := wire.Ballot{Round: 1, Node: 0}
	var ents []wire.Entry
	for i := uint64(1); i <= 5; i++ {
		ents = append(ents, entry(i, b, fmt.Sprintf("op%d", i), true))
	}
	s.PutAccepted(ents, b)
	s.SetChosen(5)
	if err := s.SaveSnapshot([]byte("snap@4"), 4); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMembers([]wire.NodeID{0, 1, 2, 3}, []wire.NodeID{7}, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.PruneTo(4); err != nil { // discards instances 1..3
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, _ := s2.Load()
	if string(st.ServiceSnap) != "snap@4" || st.ServiceSnapAt != 4 {
		t.Fatalf("snapshot replay wrong: %q at %d", st.ServiceSnap, st.ServiceSnapAt)
	}
	if len(st.Members) != 4 || st.Members[3] != 3 || len(st.Learners) != 1 || st.Learners[0] != 7 || st.MembersAt != 3 {
		t.Fatalf("membership replay wrong: %v %v at %d", st.Members, st.Learners, st.MembersAt)
	}
	if st.PrunedTo != 3 {
		t.Fatalf("PrunedTo = %d, want 3", st.PrunedTo)
	}
	if _, ok := st.Accepted.Get(2); ok {
		t.Fatal("pruned entry 2 must not replay")
	}
	for i := uint64(4); i <= 5; i++ {
		if _, ok := st.Accepted.Get(i); !ok {
			t.Fatalf("retained entry %d lost", i)
		}
	}
}

// TestPruneClampedToSnapshot requires both stores to refuse to discard
// log entries the durable service snapshot does not cover — the prune
// safety guard.
func TestPruneClampedToSnapshot(t *testing.T) {
	for name, mk := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			defer s.Close()
			b := wire.Ballot{Round: 1, Node: 0}
			var ents []wire.Entry
			for i := uint64(1); i <= 6; i++ {
				ents = append(ents, entry(i, b, "x", false))
			}
			s.PutAccepted(ents, b)
			s.SaveSnapshot([]byte("s"), 2)
			// Ask to prune past the snapshot: only 1..2 may go.
			if err := s.PruneTo(6); err != nil {
				t.Fatal(err)
			}
			st, _ := s.Load()
			if st.PrunedTo != 2 {
				t.Fatalf("PrunedTo = %d, want clamp at snapshot index 2", st.PrunedTo)
			}
			if _, ok := st.Accepted.Get(3); !ok {
				t.Fatal("entry 3 above the snapshot must survive the clamped prune")
			}
			if _, ok := st.Accepted.Get(2); ok {
				t.Fatal("entry 2 under the snapshot should be pruned")
			}
		})
	}
}

// TestFileCheckpointKeepsReconfigState folds snapshot + membership +
// prune state through a synchronous checkpoint rewrite and a reopen.
func TestFileCheckpointKeepsReconfigState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Sync = false
	b := wire.Ballot{Round: 3, Node: 2}
	s.PutAccepted([]wire.Entry{entry(1, b, "a", true), entry(2, b, "b", true)}, b)
	s.SetChosen(2)
	s.SaveSnapshot([]byte("chk"), 1)
	s.SetMembers([]wire.NodeID{0, 1}, nil, 2)
	s.PruneTo(2)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, _ := s2.Load()
	if string(st.ServiceSnap) != "chk" || st.ServiceSnapAt != 1 || st.PrunedTo != 1 ||
		len(st.Members) != 2 || st.MembersAt != 2 {
		t.Fatalf("checkpoint lost reconfig state: %+v", st)
	}
	if _, ok := st.Accepted.Get(2); !ok {
		t.Fatal("retained entry 2 lost across checkpoint")
	}
}

func TestFilePoisonedAfterFailedAppend(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFile(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SetPromised(wire.Ballot{Round: 1, Node: 0}); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	// Pull the file out from under the store: the next append fails and
	// must poison every later call (fail-stop).
	st.f.Close()
	first := st.SetPromised(wire.Ballot{Round: 2, Node: 0})
	if first == nil {
		t.Fatal("append on closed file should fail")
	}
	if err := st.SetChosen(99); err == nil {
		t.Error("SetChosen after poison should fail")
	}
	if err := st.PutAccepted([]wire.Entry{entry(1, wire.Ballot{Round: 2, Node: 0}, "x", false)}, wire.Ballot{Round: 2, Node: 0}); err == nil {
		t.Error("PutAccepted after poison should fail")
	}
	if err := st.Compact(1); err == nil {
		t.Error("Compact after poison should fail")
	}
	if _, err := st.Load(); err == nil {
		t.Error("Load after poison should fail")
	}
	// The poison is sticky and self-identifying.
	if again := st.SetChosen(100); again == nil || again.Error() != first.Error() {
		t.Errorf("poison not sticky: first=%v again=%v", first, again)
	}
	// Even a no-op mutation (stale ballot) must refuse.
	if err := st.SetPromised(wire.Ballot{Round: 0, Node: 0}); err == nil {
		t.Error("stale SetPromised after poison should fail")
	}
}
