package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gridrep/internal/metrics"
	"gridrep/internal/wire"
)

// SyncPolicy selects when a buffered File forces its batch to disk.
type SyncPolicy int

const (
	// SyncPolicyBatch (the default, and the zero value so zero-valued
	// configs inherit it) fsyncs a batch only when it contains a
	// critical record — a promise or an accepted proposal. Chosen and
	// compaction records are written immediately but ride the next
	// critical batch's fsync: losing them in a crash is safe, because the
	// commit index is re-learned from the quorum (heartbeats, the next
	// accept's Commit field, or catch-up).
	SyncPolicyBatch SyncPolicy = iota
	// SyncPolicyAlways fsyncs every flushed batch, even one that only
	// carries chosen-index or compaction records.
	SyncPolicyAlways
	// SyncPolicyInterval fsyncs at most once per configured interval.
	// This bounds — rather than eliminates — the window in which an
	// acknowledged record can be lost, so it weakens the §3.1 recovery
	// guarantee; it models deployments that accept a bounded loss window
	// in exchange for disk-independent throughput.
	SyncPolicyInterval
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncPolicyAlways:
		return "always"
	case SyncPolicyBatch:
		return "batch"
	case SyncPolicyInterval:
		return "interval"
	default:
		return fmt.Sprintf("syncpolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -sync flag values used by replicad and
// benchpaxos.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncPolicyAlways, nil
	case "batch", "":
		return SyncPolicyBatch, nil
	case "interval":
		return SyncPolicyInterval, nil
	default:
		return 0, fmt.Errorf("storage: unknown sync policy %q (want always|batch|interval)", s)
	}
}

// FileStats is a point-in-time snapshot of a File's I/O counters.
type FileStats struct {
	// Records appended (staged or written through).
	Records uint64
	// Batches flushed by group commit and the bytes they carried.
	Batches    uint64
	BatchBytes uint64
	// Syncs actually issued to the device.
	Syncs uint64
	// Rewrites completed and rewrite attempts that failed.
	Rewrites    uint64
	RewriteErrs uint64
}

// File is an append-only write-ahead log implementing Store. Every
// mutation is one CRC-protected record; Load replays the log and stops at
// the first torn or corrupt record (the tail a crash may have produced).
// When the log grows past rewriteAt bytes, it is rewritten as a single
// snapshot record.
//
// File has two write modes. Unbuffered (the default, and the only mode
// before the durability pipeline existed) writes and — when Sync is set —
// fsyncs each record inline, on the caller's goroutine. Buffered mode
// (SetBuffered; see Flusher) stages the records of one event-loop burst
// in memory and makes them durable together at the next Flush: one write
// into a preallocated region, one fdatasync, governed by the SyncPolicy.
// In buffered mode a mutation is NOT durable when the method returns; the
// replica's persister goroutine calls Flush before releasing any protocol
// message that claims the staged state.
type File struct {
	path string

	// Sync controls whether records are fsynced at all. Benchmarks may
	// turn it off to model battery-backed stable storage; correctness
	// tests leave it on.
	Sync bool

	// policy and syncEvery govern buffered flushes only; unbuffered
	// writes always sync per record (when Sync is set).
	policy    SyncPolicy
	syncEvery time.Duration

	rewriteAt int64

	// mu guards the in-memory mirror, the staging buffer, and the poison
	// flag. It is never held across file I/O.
	mu         sync.Mutex
	state      *PersistentState // mirror of the (durable + staged) state
	buffered   bool
	staged     []byte        // framed records awaiting the next Flush
	stagedRecs uint64        // record count in the staged batch
	stagedCrit bool          // staged batch holds a promise/accepted record
	spare      []byte        // previously flushed buffer, recycled
	scratch    *wire.Encoder // reusable record encoder; see encScratch

	// failed poisons the store after the first write or sync failure. A
	// record that may be partially on disk leaves the log in an unknown
	// state; continuing would let the replica promise or accept on
	// storage that cannot honour it. Fail-stop instead: every later call
	// returns the original error, and the replica is expected to crash
	// and recover by replaying the intact prefix.
	failed error

	// wmu serializes file writes, syncs, and the rewrite swap.
	wmu       sync.Mutex
	f         *os.File
	size      int64 // logical end of the log
	allocEnd  int64 // preallocated extent; size <= allocEnd
	dirty     bool  // bytes written since the last sync
	dirtyCrit bool  // ... including a critical record
	lastSync  time.Time
	rewriting bool           // a background rewrite is in flight
	tail      []byte         // records flushed while the rewrite snapshot was built
	rewriteWG sync.WaitGroup // joins the rewrite goroutine on Close

	// I/O instruments (metrics package atomics; FileStats is the shim).
	// The histograms are created in OpenFile so the hot path never has to
	// nil-check; RegisterMetrics publishes everything into a registry.
	records, batches, batchBytes, syncs, rewrites, rewriteErrs metrics.Counter
	fsyncLat                                                   *metrics.Histogram // device sync latency
	batchRecs                                                  *metrics.Histogram // records per flushed group-commit batch
}

// Record types in the WAL.
const (
	recPromise     = 1
	recAccepted    = 2
	recChosen      = 3
	recCompact     = 4
	recSnapshot    = 5
	recServiceSnap = 6 // service-state snapshot + its applied instance
	recMembers     = 7 // membership decided by a committed config entry
	recPrune       = 8 // accepted-log prune watermark
)

// preallocChunk is how far ahead of the logical end the file extent is
// reserved, so batched appends change no allocation metadata and
// fdatasync stays a pure data flush.
const preallocChunk = 1 << 20

// OpenFile opens (or creates) a WAL at path and replays it. Missing
// parent directories are created (concurrency-safe: N groups of one
// process boot their per-group WAL subdirectories in parallel) and, on
// first creation of the file or its directories, fsynced so the
// directory entries are as durable as the records appended behind them.
func OpenFile(path string) (*File, error) {
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	if created {
		if err := mkdirAllSynced(filepath.Dir(path)); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if created {
		// A freshly created WAL's directory entry must survive a crash
		// before any record in it can be acknowledged as durable.
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	st := &File{
		path:      path,
		f:         f,
		state:     NewPersistentState(),
		scratch:   wire.NewEncoder(nil),
		Sync:      true,
		policy:    SyncPolicyBatch,
		syncEvery: 2 * time.Millisecond,
		rewriteAt: 8 << 20,
		fsyncLat:  metrics.NewHistogram(metrics.UnitNanoseconds),
		batchRecs: metrics.NewHistogram(metrics.UnitCount),
	}
	if err := st.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

var (
	_ Store   = (*File)(nil)
	_ Flusher = (*File)(nil)
)

// SetPolicy selects the buffered-mode sync policy. every is only used by
// SyncPolicyInterval (default 2ms). Call before the store is shared.
func (s *File) SetPolicy(p SyncPolicy, every time.Duration) {
	s.policy = p
	if every > 0 {
		s.syncEvery = every
	}
}

// Policy returns the buffered-mode sync policy.
func (s *File) Policy() SyncPolicy { return s.policy }

// SetBuffered implements Flusher. Turning buffering off with records
// staged is the caller's bug; Flush first.
func (s *File) SetBuffered(on bool) {
	s.mu.Lock()
	s.buffered = on
	s.mu.Unlock()
}

// Staged implements Flusher.
func (s *File) Staged() bool {
	s.mu.Lock()
	n := len(s.staged)
	s.mu.Unlock()
	return n > 0
}

// Stats returns a snapshot of the I/O counters. Kept as a compatibility
// shim over the registered instruments.
func (s *File) Stats() FileStats {
	return FileStats{
		Records:     s.records.Load(),
		Batches:     s.batches.Load(),
		BatchBytes:  s.batchBytes.Load(),
		Syncs:       s.syncs.Load(),
		Rewrites:    s.rewrites.Load(),
		RewriteErrs: s.rewriteErrs.Load(),
	}
}

// FsyncLatency snapshots the device-sync latency histogram.
func (s *File) FsyncLatency() metrics.HistSnapshot { return s.fsyncLat.Snapshot() }

// RegisterMetrics implements metrics.Instrumented: the replica that owns
// this store publishes its instruments into the replica's registry.
func (s *File) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("gridrep_wal_records_total",
		"WAL records appended (staged or written through)", &s.records)
	reg.RegisterCounter("gridrep_wal_batches_total",
		"group-commit batches flushed", &s.batches)
	reg.RegisterCounter("gridrep_wal_batch_bytes_total",
		"bytes carried by flushed group-commit batches", &s.batchBytes)
	reg.RegisterCounter("gridrep_wal_syncs_total",
		"syncs issued to the device", &s.syncs)
	reg.RegisterCounter("gridrep_wal_rewrites_total",
		"log rewrites (snapshot compactions) completed", &s.rewrites)
	reg.RegisterCounter("gridrep_wal_rewrite_errors_total",
		"log rewrite attempts that failed", &s.rewriteErrs)
	reg.RegisterHistogram("gridrep_wal_fsync_latency_seconds",
		"device sync latency per fsync/fdatasync", s.fsyncLat)
	reg.RegisterHistogram("gridrep_wal_batch_records",
		"records per flushed group-commit batch", s.batchRecs)
}

// replay loads every intact record; a torn tail (including the zero bytes
// of a preallocated extent) is truncated away.
func (s *File) replay() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := io.ReadAll(s.f)
	if err != nil {
		return err
	}
	off := 0
	good := 0
	for off < len(data) {
		n, hdr := binary.Uvarint(data[off:])
		if hdr <= 0 || n > uint64(wire.MaxBlob) || off+hdr+int(n)+4 > len(data) {
			break // torn tail
		}
		body := data[off+hdr : off+hdr+int(n)]
		sum := binary.LittleEndian.Uint32(data[off+hdr+int(n):])
		if crc32.Update(0, crcTable, body) != sum {
			break // corrupt tail
		}
		if err := s.applyRecord(body); err != nil {
			break
		}
		off += hdr + int(n) + 4
		good = off
	}
	if good != len(data) {
		if err := s.f.Truncate(int64(good)); err != nil {
			return err
		}
	}
	s.size = int64(good)
	s.allocEnd = s.size
	_, err = s.f.Seek(int64(good), io.SeekStart)
	return err
}

func (s *File) applyRecord(body []byte) error {
	dec := wire.NewDecoder(body)
	switch typ := dec.Uint8(); typ {
	case recPromise:
		b := dec.Ballot()
		if err := dec.Done(); err != nil {
			return err
		}
		if s.state.Promised.Less(b) {
			s.state.Promised = b
		}
	case recAccepted:
		max := dec.Ballot()
		n := dec.SliceLen()
		if dec.Err() != nil {
			return dec.Err()
		}
		entries := make([]wire.Entry, 0, n)
		for i := 0; i < n; i++ {
			var acc wire.Accept
			if err := acc.UnmarshalFrom(dec); err != nil {
				return err
			}
			entries = append(entries, acc.Entries...)
		}
		if err := dec.Done(); err != nil {
			return err
		}
		s.state.putAccepted(entries, max)
	case recChosen:
		idx := dec.Uvarint()
		if err := dec.Done(); err != nil {
			return err
		}
		if idx > s.state.Chosen {
			s.state.Chosen = idx
		}
	case recCompact:
		from := dec.Uvarint()
		if err := dec.Done(); err != nil {
			return err
		}
		s.compactInMemory(from)
	case recSnapshot:
		st := NewPersistentState()
		st.Promised = dec.Ballot()
		st.MaxAccepted = dec.Ballot()
		st.Chosen = dec.Uvarint()
		n := dec.SliceLen()
		if dec.Err() != nil {
			return dec.Err()
		}
		for i := 0; i < n; i++ {
			var acc wire.Accept
			if err := acc.UnmarshalFrom(dec); err != nil {
				return err
			}
			for _, e := range acc.Entries {
				st.Accepted.Put(e)
			}
		}
		st.PrunedTo = dec.Uvarint()
		snapAt := dec.Uvarint()
		st.ApplySnapshot(dec.Bytes8(), snapAt)
		st.MembersAt = dec.Uvarint()
		if dec.Bool() {
			nm := dec.SliceLen()
			if dec.Err() != nil {
				return dec.Err()
			}
			st.Members = make([]wire.NodeID, nm)
			for i := range st.Members {
				st.Members[i] = dec.NodeID()
			}
		}
		nl := dec.SliceLen()
		if dec.Err() != nil {
			return dec.Err()
		}
		if nl > 0 {
			st.Learners = make([]wire.NodeID, nl)
			for i := range st.Learners {
				st.Learners[i] = dec.NodeID()
			}
		}
		if err := dec.Done(); err != nil {
			return err
		}
		st.Accepted.PruneTo(st.PrunedTo + 1)
		s.state = st
	case recServiceSnap:
		at := dec.Uvarint()
		snap := dec.Bytes8()
		if err := dec.Done(); err != nil {
			return err
		}
		s.state.ApplySnapshot(snap, at)
	case recMembers:
		at := dec.Uvarint()
		nm := dec.SliceLen()
		if dec.Err() != nil {
			return dec.Err()
		}
		members := make([]wire.NodeID, nm)
		for i := range members {
			members[i] = dec.NodeID()
		}
		nl := dec.SliceLen()
		if dec.Err() != nil {
			return dec.Err()
		}
		learners := make([]wire.NodeID, nl)
		for i := range learners {
			learners[i] = dec.NodeID()
		}
		if err := dec.Done(); err != nil {
			return err
		}
		s.state.ApplyMembers(members, learners, at)
	case recPrune:
		keepFrom := dec.Uvarint()
		if err := dec.Done(); err != nil {
			return err
		}
		s.state.Accepted.PruneTo(keepFrom)
		if keepFrom > 0 && keepFrom-1 > s.state.PrunedTo {
			s.state.PrunedTo = keepFrom - 1
		}
	default:
		return fmt.Errorf("storage: unknown record type %d", typ)
	}
	return nil
}

func (s *File) compactInMemory(keepStateFrom uint64) {
	s.state.Accepted.StripStatesBelow(keepStateFrom)
}

// poison records the first write failure and makes it sticky.
func (s *File) poison(err error) error {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = fmt.Errorf("storage: WAL poisoned by failed append: %w", err)
	}
	err = s.failed
	s.mu.Unlock()
	return err
}

// crcTable is the shared IEEE polynomial table. Building it once keeps
// the append and replay hot paths off ChecksumIEEE's per-call lazy-init
// check, and crc32.Update against it streams over each record body in
// place — a large group-committed burst is checksummed as its frames
// are built, never by rescanning a rebuilt buffer.
var crcTable = crc32.MakeTable(crc32.IEEE)

// appendFrame appends one length-prefixed, checksummed record frame to
// dst. The checksum covers exactly the body bytes just appended,
// computed by streaming over them (crc32.Update) with the shared table.
func appendFrame(dst, body []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(body)))
	dst = append(dst, hdr[:n]...)
	dst = append(dst, body...)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Update(0, crcTable, body))
	return append(dst, sum[:]...)
}

// encScratch resets and returns the shared record encoder. Mutations all
// run on the replica's event loop, one at a time, and both stage and
// writeRecord copy the encoded bytes out before returning, so one
// buffer serves every record without a per-mutation allocation.
func (s *File) encScratch() *wire.Encoder {
	s.scratch.Reset()
	return s.scratch
}

// stage buffers one record for the next Flush. Caller holds mu.
func (s *File) stage(body []byte, critical bool) {
	s.staged = appendFrame(s.staged, body)
	if critical {
		s.stagedCrit = true
	}
	s.stagedRecs++
	s.records.Add(1)
}

// writeRecord writes one framed record through to the file and — when
// Sync is set — fsyncs it, exactly the pre-group-commit semantics. Any
// failure poisons the store.
func (s *File) writeRecord(body []byte) error {
	rec := appendFrame(nil, body)
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return s.poison(err)
	}
	s.size += int64(len(rec))
	if s.rewriting {
		s.tail = append(s.tail, rec...)
	}
	s.records.Add(1)
	if s.Sync {
		start := time.Now()
		if err := s.f.Sync(); err != nil {
			return s.poison(err)
		}
		s.fsyncLat.Since(start)
		s.syncs.Add(1)
		s.lastSync = time.Now()
	} else {
		s.dirty = true
	}
	return nil
}

// Flush implements Flusher: it writes every staged record as one batch
// into the preallocated extent and syncs it per the policy. A failed
// write or sync poisons the store — the whole batch is in an unknown
// state on disk, so the fail-stop contract is per batch. Safe to call
// concurrently with staging; records staged after Flush reads the buffer
// wait for the next Flush.
func (s *File) Flush() error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	batch := s.staged
	crit := s.stagedCrit
	recs := s.stagedRecs
	s.staged = s.spare[:0]
	s.spare = nil
	s.stagedCrit = false
	s.stagedRecs = 0
	s.mu.Unlock()

	s.wmu.Lock()
	if len(batch) > 0 {
		if err := s.preallocLocked(s.size + int64(len(batch))); err != nil {
			s.wmu.Unlock()
			return s.poison(err)
		}
		if _, err := s.f.WriteAt(batch, s.size); err != nil {
			s.wmu.Unlock()
			return s.poison(err)
		}
		s.size += int64(len(batch))
		if s.rewriting {
			s.tail = append(s.tail, batch...)
		}
		s.dirty = true
		s.dirtyCrit = s.dirtyCrit || crit
		s.batches.Add(1)
		s.batchBytes.Add(uint64(len(batch)))
		s.batchRecs.Observe(recs)
	}
	if s.shouldSyncLocked() {
		start := time.Now()
		if err := fdatasync(s.f); err != nil {
			s.wmu.Unlock()
			return s.poison(err)
		}
		s.fsyncLat.Since(start)
		s.dirty, s.dirtyCrit = false, false
		s.lastSync = time.Now()
		s.syncs.Add(1)
	}
	s.maybeRewriteLocked()
	s.wmu.Unlock()

	// Recycle the flushed buffer for the next burst.
	s.mu.Lock()
	if s.spare == nil {
		s.spare = batch[:0]
	}
	s.mu.Unlock()
	return nil
}

// shouldSyncLocked decides whether this flush forces the batch to the
// device. Caller holds wmu.
func (s *File) shouldSyncLocked() bool {
	if !s.Sync || !s.dirty {
		return false
	}
	switch s.policy {
	case SyncPolicyBatch:
		return s.dirtyCrit
	case SyncPolicyInterval:
		return time.Since(s.lastSync) >= s.syncEvery
	default:
		return true
	}
}

// preallocLocked extends the reserved extent ahead of need. Caller holds
// wmu.
func (s *File) preallocLocked(need int64) error {
	if need <= s.allocEnd {
		return nil
	}
	end := need + preallocChunk
	if err := preallocExtend(s.f, s.allocEnd, end-s.allocEnd); err != nil {
		return err
	}
	s.allocEnd = end
	return nil
}

// Load implements Store. In buffered mode the returned state includes
// staged (not yet durable) mutations — the event loop's own view.
func (s *File) Load() (*PersistentState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return nil, s.failed
	}
	return s.state.Clone(), nil
}

// SetPromised implements Store.
func (s *File) SetPromised(b wire.Ballot) error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	if !s.state.Promised.Less(b) {
		s.mu.Unlock()
		return nil
	}
	enc := s.encScratch()
	enc.Uint8(recPromise)
	enc.Ballot(b)
	if s.buffered {
		s.stage(enc.Bytes(), true)
		s.state.Promised = b
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := s.writeRecord(enc.Bytes()); err != nil {
		return err
	}
	s.mu.Lock()
	s.state.Promised = b
	s.mu.Unlock()
	return nil
}

// PutAccepted implements Store. The entries are encoded by reusing the
// Accept message marshaller.
func (s *File) PutAccepted(entries []wire.Entry, maxAccepted wire.Ballot) error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	enc := s.encScratch()
	enc.Uint8(recAccepted)
	enc.Ballot(maxAccepted)
	enc.Uvarint(1)
	acc := wire.Accept{Entries: entries}
	acc.MarshalTo(enc)
	if s.buffered {
		s.stage(enc.Bytes(), true)
		s.state.putAccepted(entries, maxAccepted)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := s.writeRecord(enc.Bytes()); err != nil {
		return err
	}
	s.mu.Lock()
	s.state.putAccepted(entries, maxAccepted)
	s.mu.Unlock()
	return nil
}

// SetChosen implements Store. Chosen records are non-critical: in
// buffered mode they never force a sync of their own (see
// SyncPolicyBatch).
func (s *File) SetChosen(idx uint64) error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	if idx <= s.state.Chosen {
		s.mu.Unlock()
		return nil
	}
	enc := s.encScratch()
	enc.Uint8(recChosen)
	enc.Uvarint(idx)
	if s.buffered {
		s.stage(enc.Bytes(), false)
		s.state.Chosen = idx
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := s.writeRecord(enc.Bytes()); err != nil {
		return err
	}
	s.mu.Lock()
	s.state.Chosen = idx
	s.mu.Unlock()
	return nil
}

// Compact implements Store. Past the rewrite threshold the whole state is
// folded into one snapshot record in a fresh file — synchronously in
// unbuffered mode, in the background in buffered mode (triggered by the
// next Flush).
func (s *File) Compact(keepStateFrom uint64) error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	enc := s.encScratch()
	enc.Uint8(recCompact)
	enc.Uvarint(keepStateFrom)
	if s.buffered {
		s.stage(enc.Bytes(), false)
		s.compactInMemory(keepStateFrom)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := s.writeRecord(enc.Bytes()); err != nil {
		return err
	}
	s.mu.Lock()
	s.compactInMemory(keepStateFrom)
	s.mu.Unlock()

	s.wmu.Lock()
	need := s.size >= s.rewriteAt && !s.rewriting
	s.wmu.Unlock()
	if !need {
		return nil
	}
	s.mu.Lock()
	snap := s.state.Clone()
	s.mu.Unlock()
	return s.rewriteTo(snap)
}

// SaveSnapshot implements Store. Snapshot records are critical: pruning
// relies on the snapshot being durable, so it must not linger unsynced
// behind a batch policy.
func (s *File) SaveSnapshot(snap []byte, at uint64) error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	if at < s.state.ServiceSnapAt {
		s.mu.Unlock()
		return nil
	}
	enc := s.encScratch()
	enc.Uint8(recServiceSnap)
	enc.Uvarint(at)
	enc.Bytes8(snap)
	if s.buffered {
		s.stage(enc.Bytes(), true)
		s.state.ApplySnapshot(snap, at)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := s.writeRecord(enc.Bytes()); err != nil {
		return err
	}
	s.mu.Lock()
	s.state.ApplySnapshot(snap, at)
	s.mu.Unlock()
	return nil
}

// SetMembers implements Store. Membership records are critical: a
// replica that forgot a committed configuration could count votes
// against the wrong quorum after recovery.
func (s *File) SetMembers(members, learners []wire.NodeID, at uint64) error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	enc := s.encScratch()
	enc.Uint8(recMembers)
	enc.Uvarint(at)
	enc.Uvarint(uint64(len(members)))
	for _, id := range members {
		enc.NodeID(id)
	}
	enc.Uvarint(uint64(len(learners)))
	for _, id := range learners {
		enc.NodeID(id)
	}
	if s.buffered {
		s.stage(enc.Bytes(), true)
		s.state.ApplyMembers(members, learners, at)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := s.writeRecord(enc.Bytes()); err != nil {
		return err
	}
	s.mu.Lock()
	s.state.ApplyMembers(members, learners, at)
	s.mu.Unlock()
	return nil
}

// PruneTo implements Store. The prune point is clamped to the durable
// service snapshot so a crash can always recover: replay finds the
// snapshot record before (or folded together with) the prune record.
// Physical reclamation happens at the next log rewrite, which skips the
// pruned prefix.
func (s *File) PruneTo(keepFrom uint64) error {
	s.mu.Lock()
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	if keepFrom > s.state.ServiceSnapAt+1 {
		keepFrom = s.state.ServiceSnapAt + 1
	}
	if keepFrom == 0 || keepFrom-1 <= s.state.PrunedTo {
		s.mu.Unlock()
		return nil
	}
	enc := s.encScratch()
	enc.Uint8(recPrune)
	enc.Uvarint(keepFrom)
	if s.buffered {
		s.stage(enc.Bytes(), false)
		s.state.Accepted.PruneTo(keepFrom)
		s.state.PrunedTo = keepFrom - 1
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := s.writeRecord(enc.Bytes()); err != nil {
		return err
	}
	s.mu.Lock()
	s.state.Accepted.PruneTo(keepFrom)
	s.state.PrunedTo = keepFrom - 1
	s.mu.Unlock()
	return nil
}

// Checkpoint synchronously folds the current state into a single
// snapshot record in a fresh file — the same temp file + rename +
// parent-dir fsync path as background rewrites — physically reclaiming
// pruned and compacted records. Used after a snapshot install and by
// tests that bound WAL disk usage.
func (s *File) Checkpoint() error {
	s.wmu.Lock()
	if s.rewriting {
		// A background rewrite is already folding the log; it will
		// capture the same state via its tail.
		s.wmu.Unlock()
		return nil
	}
	s.rewriting = true
	s.tail = s.tail[:0]
	s.wmu.Unlock()
	s.mu.Lock()
	snap := s.state.Clone()
	s.mu.Unlock()
	if err := s.rewriteTo(snap); err != nil {
		s.rewriteErrs.Add(1)
		s.wmu.Lock()
		s.rewriting = false
		s.tail = nil
		s.wmu.Unlock()
		os.Remove(s.path + ".tmp")
		return err
	}
	return nil
}

// maybeRewriteLocked starts a background rewrite once the log passes the
// threshold. Caller holds wmu. The rewriting flag is raised before the
// snapshot is cloned, so every record flushed from here on is captured in
// tail and replayed into the fresh file at swap time; a record may end up
// in both the snapshot and the tail, which is harmless because replaying
// a record is idempotent.
func (s *File) maybeRewriteLocked() {
	if s.rewriting || s.size < s.rewriteAt || !s.buffered {
		return
	}
	s.rewriting = true
	s.tail = s.tail[:0]
	s.rewriteWG.Add(1)
	go func() {
		defer s.rewriteWG.Done()
		s.rewriteAsync()
	}()
}

func (s *File) rewriteAsync() {
	s.mu.Lock()
	snap := s.state.Clone()
	s.mu.Unlock()
	if err := s.rewriteTo(snap); err != nil {
		// The old log is intact and still the live file, so a failed
		// rewrite is not fatal: count it and retry at a later flush.
		s.rewriteErrs.Add(1)
		s.wmu.Lock()
		s.rewriting = false
		s.tail = nil
		s.wmu.Unlock()
		os.Remove(s.path + ".tmp")
	}
}

// rewriteTo writes snap as a single snapshot record into a temp file,
// syncs it, appends the tail of records that raced the snapshot, and
// atomically renames it over the live log. The parent directory is
// fsynced once, after the rename: without that, a crash could lose the
// new file's directory entry — and with it every record flushed after the
// swap — even though the rename "succeeded".
func (s *File) rewriteTo(snap *PersistentState) error {
	enc := wire.NewEncoder(nil)
	enc.Uint8(recSnapshot)
	enc.Ballot(snap.Promised)
	enc.Ballot(snap.MaxAccepted)
	enc.Uvarint(snap.Chosen)
	enc.Uvarint(uint64(snap.Accepted.Len()))
	snap.Accepted.Ascend(0, 0, func(e wire.Entry) bool {
		acc := wire.Accept{Entries: []wire.Entry{e}}
		acc.MarshalTo(enc)
		return true
	})
	enc.Uvarint(snap.PrunedTo)
	enc.Uvarint(snap.ServiceSnapAt)
	enc.Bytes8(snap.ServiceSnap)
	enc.Uvarint(snap.MembersAt)
	enc.Bool(snap.Members != nil)
	if snap.Members != nil {
		enc.Uvarint(uint64(len(snap.Members)))
		for _, id := range snap.Members {
			enc.NodeID(id)
		}
	}
	enc.Uvarint(uint64(len(snap.Learners)))
	for _, id := range snap.Learners {
		enc.NodeID(id)
	}
	buf := appendFrame(nil, enc.Bytes())

	tmp := s.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	// The bulk of the snapshot is written and synced outside the write
	// lock; appends to the live log are never blocked behind it.
	if _, err := nf.Write(buf); err != nil {
		return fail(err)
	}
	if s.Sync {
		if err := nf.Sync(); err != nil {
			return fail(err)
		}
	}

	s.wmu.Lock()
	defer s.wmu.Unlock()
	nsize := int64(len(buf))
	if len(s.tail) > 0 {
		if _, err := nf.WriteAt(s.tail, nsize); err != nil {
			return fail(err)
		}
		nsize += int64(len(s.tail))
	}
	if s.Sync {
		if err := nf.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fail(err)
	}
	old := s.f
	s.f, s.size, s.allocEnd = nf, nsize, nsize
	s.tail = nil
	s.rewriting = false
	s.dirty, s.dirtyCrit = false, false
	s.lastSync = time.Now()
	old.Close()
	s.rewrites.Add(1)
	if s.Sync {
		if err := syncDir(filepath.Dir(s.path)); err != nil {
			// The swap is installed in memory but its directory entry may
			// not be durable; acknowledging later records against the new
			// file would be unsafe, so fail-stop.
			return s.poison(err)
		}
	}
	return nil
}

// mkdirAllSynced creates dir and any missing ancestors, then fsyncs
// every directory level that did not exist beforehand (plus the deepest
// pre-existing ancestor, which gained a new entry). MkdirAll tolerates
// losing the create race, so N goroutines may call this concurrently on
// overlapping trees — each still fsyncs the levels it cares about.
func mkdirAllSynced(dir string) error {
	if dir == "" || dir == "." {
		return nil
	}
	// Walk up to the deepest ancestor that already exists.
	missing := []string{}
	anchor := dir
	for {
		if _, err := os.Stat(anchor); err == nil {
			break
		} else if !os.IsNotExist(err) {
			return err
		}
		missing = append(missing, anchor)
		parent := filepath.Dir(anchor)
		if parent == anchor {
			break
		}
		anchor = parent
	}
	if len(missing) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Durable bottom-up: sync each created level, then the pre-existing
	// parent that now holds a new entry.
	for _, d := range missing {
		if err := syncDir(d); err != nil {
			return err
		}
	}
	return syncDir(anchor)
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close implements Store. Staged records that were never flushed are
// dropped — the crash semantics the replica's Stop path relies on;
// callers wanting durability flush first. Written-but-unsynced bytes are
// synced so a graceful close loses nothing.
func (s *File) Close() error {
	// Join any in-flight background rewrite first: it owns file handles
	// and a .tmp path, and must not race the close (or, in tests, the
	// removal of the WAL's directory).
	s.rewriteWG.Wait()
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.dirty && s.Sync {
		if err := s.f.Sync(); err == nil {
			s.dirty, s.dirtyCrit = false, false
		}
	}
	if s.size < s.allocEnd {
		// Drop the preallocated zero tail so the file's length is its
		// logical length again.
		if err := s.f.Truncate(s.size); err == nil {
			s.allocEnd = s.size
		}
	}
	return s.f.Close()
}
