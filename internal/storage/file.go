package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"gridrep/internal/wire"
)

// File is an append-only write-ahead log implementing Store. Every
// mutation is one CRC-protected record; Load replays the log and stops at
// the first torn or corrupt record (the tail a crash may have produced).
// When the log grows past rewriteAt bytes, Compact rewrites it as a single
// snapshot record.
type File struct {
	path  string
	f     *os.File
	state *PersistentState // mirror of the durable state
	size  int64

	// Sync controls whether each record is fsynced. Benchmarks may turn
	// it off to model battery-backed stable storage; correctness tests
	// leave it on.
	Sync bool

	rewriteAt int64

	// failed poisons the store after the first append failure. A record
	// that may be partially on disk leaves the log in an unknown state;
	// continuing would let the replica promise or accept on storage that
	// cannot honour it. Fail-stop instead: every later call returns the
	// original error, and the replica is expected to crash and recover by
	// replaying the intact prefix.
	failed error
}

// Record types in the WAL.
const (
	recPromise  = 1
	recAccepted = 2
	recChosen   = 3
	recCompact  = 4
	recSnapshot = 5
)

// OpenFile opens (or creates) a WAL at path and replays it.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st := &File{path: path, f: f, state: NewPersistentState(), Sync: true, rewriteAt: 8 << 20}
	if err := st.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

var _ Store = (*File)(nil)

// replay loads every intact record; a torn tail is truncated away.
func (s *File) replay() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := io.ReadAll(s.f)
	if err != nil {
		return err
	}
	off := 0
	good := 0
	for off < len(data) {
		n, hdr := binary.Uvarint(data[off:])
		if hdr <= 0 || n > uint64(wire.MaxBlob) || off+hdr+int(n)+4 > len(data) {
			break // torn tail
		}
		body := data[off+hdr : off+hdr+int(n)]
		sum := binary.LittleEndian.Uint32(data[off+hdr+int(n):])
		if crc32.ChecksumIEEE(body) != sum {
			break // corrupt tail
		}
		if err := s.applyRecord(body); err != nil {
			break
		}
		off += hdr + int(n) + 4
		good = off
	}
	if good != len(data) {
		if err := s.f.Truncate(int64(good)); err != nil {
			return err
		}
	}
	s.size = int64(good)
	_, err = s.f.Seek(int64(good), io.SeekStart)
	return err
}

func (s *File) applyRecord(body []byte) error {
	dec := wire.NewDecoder(body)
	switch typ := dec.Uint8(); typ {
	case recPromise:
		b := dec.Ballot()
		if err := dec.Done(); err != nil {
			return err
		}
		if s.state.Promised.Less(b) {
			s.state.Promised = b
		}
	case recAccepted:
		max := dec.Ballot()
		n := dec.SliceLen()
		if dec.Err() != nil {
			return dec.Err()
		}
		entries := make([]wire.Entry, 0, n)
		for i := 0; i < n; i++ {
			var acc wire.Accept
			if err := acc.UnmarshalFrom(dec); err != nil {
				return err
			}
			entries = append(entries, acc.Entries...)
		}
		if err := dec.Done(); err != nil {
			return err
		}
		s.state.putAccepted(entries, max)
	case recChosen:
		idx := dec.Uvarint()
		if err := dec.Done(); err != nil {
			return err
		}
		if idx > s.state.Chosen {
			s.state.Chosen = idx
		}
	case recCompact:
		from := dec.Uvarint()
		if err := dec.Done(); err != nil {
			return err
		}
		s.compactInMemory(from)
	case recSnapshot:
		st := NewPersistentState()
		st.Promised = dec.Ballot()
		st.MaxAccepted = dec.Ballot()
		st.Chosen = dec.Uvarint()
		n := dec.SliceLen()
		if dec.Err() != nil {
			return dec.Err()
		}
		for i := 0; i < n; i++ {
			var acc wire.Accept
			if err := acc.UnmarshalFrom(dec); err != nil {
				return err
			}
			for _, e := range acc.Entries {
				st.Accepted[e.Instance] = e
			}
		}
		if err := dec.Done(); err != nil {
			return err
		}
		s.state = st
	default:
		return fmt.Errorf("storage: unknown record type %d", typ)
	}
	return nil
}

func (s *File) compactInMemory(keepStateFrom uint64) {
	for inst, e := range s.state.Accepted {
		if inst < keepStateFrom && e.Prop.HasState {
			e.Prop.HasState = false
			e.Prop.State = nil
			s.state.Accepted[inst] = e
		}
	}
}

// poison records the first append failure and makes it sticky.
func (s *File) poison(err error) error {
	if s.failed == nil {
		s.failed = fmt.Errorf("storage: WAL poisoned by failed append: %w", err)
	}
	return s.failed
}

// append writes one framed, checksummed record. Any failure poisons the
// store: the record may be partially written, so nothing durable can be
// promised afterwards.
func (s *File) append(body []byte) error {
	if s.failed != nil {
		return s.failed
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(body)))
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(body))
	rec := make([]byte, 0, n+len(body)+4)
	rec = append(rec, hdr[:n]...)
	rec = append(rec, body...)
	rec = append(rec, sum[:]...)
	if _, err := s.f.Write(rec); err != nil {
		return s.poison(err)
	}
	s.size += int64(len(rec))
	if s.Sync {
		if err := s.f.Sync(); err != nil {
			return s.poison(err)
		}
	}
	return nil
}

// Load implements Store.
func (s *File) Load() (*PersistentState, error) {
	if s.failed != nil {
		return nil, s.failed
	}
	return s.state.Clone(), nil
}

// SetPromised implements Store.
func (s *File) SetPromised(b wire.Ballot) error {
	if s.failed != nil {
		return s.failed
	}
	if !s.state.Promised.Less(b) {
		return nil
	}
	enc := wire.NewEncoder(nil)
	enc.Uint8(recPromise)
	enc.Ballot(b)
	if err := s.append(enc.Bytes()); err != nil {
		return err
	}
	s.state.Promised = b
	return nil
}

// PutAccepted implements Store. The entries are encoded by reusing the
// Accept message marshaller.
func (s *File) PutAccepted(entries []wire.Entry, maxAccepted wire.Ballot) error {
	if s.failed != nil {
		return s.failed
	}
	enc := wire.NewEncoder(nil)
	enc.Uint8(recAccepted)
	enc.Ballot(maxAccepted)
	enc.Uvarint(1)
	acc := wire.Accept{Entries: entries}
	acc.MarshalTo(enc)
	if err := s.append(enc.Bytes()); err != nil {
		return err
	}
	s.state.putAccepted(entries, maxAccepted)
	return nil
}

// SetChosen implements Store.
func (s *File) SetChosen(idx uint64) error {
	if s.failed != nil {
		return s.failed
	}
	if idx <= s.state.Chosen {
		return nil
	}
	enc := wire.NewEncoder(nil)
	enc.Uint8(recChosen)
	enc.Uvarint(idx)
	if err := s.append(enc.Bytes()); err != nil {
		return err
	}
	s.state.Chosen = idx
	return nil
}

// Compact implements Store. Past the rewrite threshold it folds the whole
// state into one snapshot record in a fresh file.
func (s *File) Compact(keepStateFrom uint64) error {
	if s.failed != nil {
		return s.failed
	}
	enc := wire.NewEncoder(nil)
	enc.Uint8(recCompact)
	enc.Uvarint(keepStateFrom)
	if err := s.append(enc.Bytes()); err != nil {
		return err
	}
	s.compactInMemory(keepStateFrom)
	if s.size >= s.rewriteAt {
		return s.rewrite()
	}
	return nil
}

// rewrite replaces the log with a single snapshot record, atomically via
// rename.
func (s *File) rewrite() error {
	enc := wire.NewEncoder(nil)
	enc.Uint8(recSnapshot)
	enc.Ballot(s.state.Promised)
	enc.Ballot(s.state.MaxAccepted)
	enc.Uvarint(s.state.Chosen)
	enc.Uvarint(uint64(len(s.state.Accepted)))
	for _, e := range s.state.Accepted {
		acc := wire.Accept{Entries: []wire.Entry{e}}
		acc.MarshalTo(enc)
	}
	body := enc.Bytes()

	tmp := s.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	old := s.f
	oldSize := s.size
	s.f, s.size = nf, 0
	if err := s.append(body); err != nil {
		nf.Close()
		os.Remove(tmp)
		s.f, s.size = old, oldSize
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		s.f, s.size = old, oldSize
		return err
	}
	old.Close()
	if s.Sync {
		if d, err := os.Open(filepath.Dir(s.path)); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}

// Close implements Store.
func (s *File) Close() error { return s.f.Close() }
