//go:build linux

package storage

import (
	"os"
	"syscall"
)

// fdatasync flushes f's data — and the metadata needed to retrieve it —
// without forcing a full inode flush. On the preallocated WAL tail this
// skips the journal commit a plain fsync pays for the mtime update alone.
func fdatasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}

// preallocExtend reserves [off, off+n) on disk, growing the file, so that
// later appends into the region allocate no new extents and fdatasync
// stays a pure data flush. Filesystems without fallocate fall back to a
// sparse extension via Truncate, which keeps correctness (the region
// reads as zeros, which replay treats as the torn tail) at the cost of
// journaling extent allocations on sync.
func preallocExtend(f *os.File, off, n int64) error {
	err := syscall.Fallocate(int(f.Fd()), 0, off, n)
	if err == nil {
		return nil
	}
	if errno, ok := err.(syscall.Errno); ok {
		switch errno {
		case syscall.EOPNOTSUPP, syscall.ENOSYS, syscall.EINVAL:
			return f.Truncate(off + n)
		}
	}
	return err
}
