//go:build !linux

package storage

import "os"

// fdatasync falls back to a full fsync where the syscall is unavailable.
func fdatasync(f *os.File) error { return f.Sync() }

// preallocExtend falls back to a sparse extension; replay treats the zero
// region as the torn tail, so correctness is unaffected.
func preallocExtend(f *os.File, off, n int64) error { return f.Truncate(off + n) }
