package storage

import (
	"fmt"
	"path/filepath"
	"testing"

	"gridrep/internal/wire"
)

// benchEntry builds a one-request entry with a payload in the size range
// the paper's write workload produces.
func benchEntry(inst uint64, bal wire.Ballot) wire.Entry {
	op := make([]byte, 100)
	for i := range op {
		op[i] = byte(inst + uint64(i))
	}
	return wire.Entry{
		Instance: inst,
		Bal:      bal,
		Prop: wire.Proposal{
			Reqs: []wire.Request{{Client: 1, Seq: inst, Op: op}},
		},
	}
}

func benchFile(b *testing.B, sync bool) *File {
	b.Helper()
	s, err := OpenFile(filepath.Join(b.TempDir(), "bench.wal"))
	if err != nil {
		b.Fatal(err)
	}
	s.Sync = sync
	s.rewriteAt = 1 << 40 // keep background rewrites out of the measurement
	b.Cleanup(func() { s.Close() })
	return s
}

// BenchmarkFileAppendPerRecord is the pre-group-commit write path: every
// record is its own write (and, in the sync variant, its own fsync).
func BenchmarkFileAppendPerRecord(b *testing.B) {
	for _, sync := range []bool{true, false} {
		name := "nosync"
		if sync {
			name = "sync"
		}
		b.Run(name, func(b *testing.B) {
			s := benchFile(b, sync)
			bal := wire.Ballot{Round: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.PutAccepted([]wire.Entry{benchEntry(uint64(i+1), bal)}, bal); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFileAppendGroupCommit stages records in buffered mode and makes
// a whole burst durable with one Flush — one write into the preallocated
// extent, one fdatasync — amortizing the per-record sync cost burst-fold.
func BenchmarkFileAppendGroupCommit(b *testing.B) {
	for _, sync := range []bool{true, false} {
		mode := "nosync"
		if sync {
			mode = "sync"
		}
		for _, burst := range []int{8, 64} {
			b.Run(fmt.Sprintf("%s/burst=%d", mode, burst), func(b *testing.B) {
				s := benchFile(b, sync)
				s.SetBuffered(true)
				bal := wire.Ballot{Round: 1}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.PutAccepted([]wire.Entry{benchEntry(uint64(i+1), bal)}, bal); err != nil {
						b.Fatal(err)
					}
					if (i+1)%burst == 0 {
						if err := s.Flush(); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := s.Flush(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkFileWaveAppend measures the leader's actual per-wave record
// shape — one accepted record carrying a whole wave of entries plus the
// piggybacked chosen record — per-record vs group-commit.
func BenchmarkFileWaveAppend(b *testing.B) {
	const waveSize = 32
	bal := wire.Ballot{Round: 1}
	for _, buffered := range []bool{false, true} {
		name := "per-record"
		if buffered {
			name = "group-commit"
		}
		b.Run(name, func(b *testing.B) {
			s := benchFile(b, true)
			s.SetBuffered(buffered)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := uint64(i*waveSize + 1)
				wave := make([]wire.Entry, waveSize)
				for j := range wave {
					wave[j] = benchEntry(base+uint64(j), bal)
				}
				if err := s.PutAccepted(wave, bal); err != nil {
					b.Fatal(err)
				}
				if err := s.SetChosen(base + waveSize - 1); err != nil {
					b.Fatal(err)
				}
				if buffered {
					if err := s.Flush(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
