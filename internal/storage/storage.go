// Package storage provides the stable storage a replica needs to survive
// crash-recovery (§3.1: faulty processes can recover and then execute the
// protocol correctly). Two facts must survive a crash:
//
//   - the acceptor's promises and accepted proposals, because forgetting a
//     promise could let the replica accept a smaller ballot and violate
//     Paxos safety; and
//   - the log of commands (§3.1), which guarantees that a new leader
//     learns about all previously accepted requests.
//
// A Store is single-writer (the replica's event loop) but may be read
// concurrently during snapshots.
package storage

import (
	"gridrep/internal/wire"
)

// PersistentState is everything a replica writes to stable storage.
type PersistentState struct {
	// Promised is the highest ballot the acceptor has promised.
	Promised wire.Ballot
	// MaxAccepted is the highest ballot among accepted proposals,
	// maintained for X-Paxos confirm routing (§3.4).
	MaxAccepted wire.Ballot
	// Accepted holds accepted proposals by instance. Per §3.3 a replica
	// remembers every accepted request but only needs the state of the
	// latest proposal; Compact enforces that.
	Accepted *AcceptedLog
	// Chosen is the commit index: all instances <= Chosen are chosen.
	Chosen uint64
	// ServiceSnap is the latest durable service-state snapshot, valid
	// after applying instance ServiceSnapAt. It is what makes WAL pruning
	// safe: every instance <= ServiceSnapAt is covered by the snapshot,
	// so its log entries may be discarded.
	ServiceSnap   []byte
	ServiceSnapAt uint64
	// Members and Learners are the membership in force as decided by the
	// configuration entry at instance MembersAt (nil Members means the
	// boot-time static configuration). Membership is persisted explicitly
	// because the configuration entries that produced it may sit below
	// the pruned prefix and can no longer be replayed.
	Members   []wire.NodeID
	Learners  []wire.NodeID
	MembersAt uint64
	// PrunedTo records that accepted entries with instance <= PrunedTo
	// have been discarded from the log (a service snapshot covers them).
	PrunedTo uint64
}

// NewPersistentState returns an empty state.
func NewPersistentState() *PersistentState {
	return &PersistentState{Accepted: NewAcceptedLog()}
}

// AcceptedLog holds accepted proposals indexed by instance. Instances
// are dense and arrive almost always in order, so a flat slice (index =
// instance−1) serves lookups and inserts without hashing — and, unlike
// the map it replaced, without incremental rehash pauses on the replica
// event loop as the log grows across a long run.
type AcceptedLog struct {
	// base is the number of leading instances pruned away: instances
	// <= base are gone (covered by a service snapshot) and ents[i]
	// holds instance base+i+1.
	base uint64
	ents []wire.Entry // ents[i] holds instance base+i+1; Instance==0 marks a hole
	n    int          // number of present entries
	max  uint64       // highest instance ever present
	// stripLo is the slice index below which state payloads have already
	// been stripped; successive StripStatesBelow calls resume there
	// instead of rescanning from zero (compaction runs periodically
	// forever, so a fresh full scan each time would be quadratic).
	stripLo uint64
}

// NewAcceptedLog returns an empty log.
func NewAcceptedLog() *AcceptedLog { return &AcceptedLog{} }

// Get returns the proposal accepted for inst, if any.
func (l *AcceptedLog) Get(inst uint64) (wire.Entry, bool) {
	if inst <= l.base || inst > l.base+uint64(len(l.ents)) {
		return wire.Entry{}, false
	}
	e := l.ents[inst-l.base-1]
	return e, e.Instance != 0
}

// Put records e under its instance, overwriting any earlier proposal.
// Entries inside the pruned prefix are dropped: a service snapshot
// already covers them.
func (l *AcceptedLog) Put(e wire.Entry) {
	if e.Instance == 0 || e.Instance <= l.base {
		return
	}
	for l.base+uint64(len(l.ents)) < e.Instance {
		l.ents = append(l.ents, wire.Entry{})
	}
	i := e.Instance - l.base - 1
	if l.ents[i].Instance == 0 {
		l.n++
	}
	l.ents[i] = e
	if e.Instance > l.max {
		l.max = e.Instance
	}
}

// Len returns the number of instances holding an accepted proposal.
func (l *AcceptedLog) Len() int { return l.n }

// Max returns the highest instance that ever held an accepted proposal,
// 0 if none. Pruning does not lower it.
func (l *AcceptedLog) Max() uint64 { return l.max }

// Base returns the pruned prefix bound: instances <= Base have been
// discarded.
func (l *AcceptedLog) Base() uint64 { return l.base }

// Ascend calls fn on every present entry with lo < instance <= hi in
// instance order; hi == 0 means unbounded above. fn returning false
// stops the walk.
func (l *AcceptedLog) Ascend(lo, hi uint64, fn func(e wire.Entry) bool) {
	if hi != 0 && hi <= l.base {
		return
	}
	if lo < l.base {
		lo = l.base
	}
	start := lo - l.base
	end := uint64(len(l.ents))
	if hi != 0 && hi-l.base < end {
		end = hi - l.base
	}
	for i := start; i < end; i++ {
		if e := l.ents[i]; e.Instance != 0 {
			if !fn(e) {
				return
			}
		}
	}
}

// StripStatesBelow clears the state payloads of entries with instance <
// keepStateFrom, keeping their requests — the Compact semantics of §3.3
// (a new leader can still learn the full command log; only the latest
// state matters).
func (l *AcceptedLog) StripStatesBelow(keepStateFrom uint64) {
	if keepStateFrom == 0 || keepStateFrom <= l.base {
		return
	}
	end := uint64(len(l.ents))
	if rel := keepStateFrom - l.base - 1; rel < end {
		end = rel
	}
	for i := l.stripLo; i < end; i++ {
		if l.ents[i].Instance != 0 && l.ents[i].Prop.HasState {
			l.ents[i].Prop.HasState = false
			l.ents[i].Prop.State = nil
		}
	}
	if end > l.stripLo {
		l.stripLo = end
	}
}

// PruneTo discards every entry with instance < keepFrom, releasing the
// backing memory. Callers must ensure a service snapshot covers the
// discarded prefix first (see Store.PruneTo).
func (l *AcceptedLog) PruneTo(keepFrom uint64) {
	if keepFrom == 0 || keepFrom-1 <= l.base {
		return
	}
	newBase := keepFrom - 1
	if top := l.base + uint64(len(l.ents)); newBase > top {
		newBase = top
	}
	drop := newBase - l.base
	for i := uint64(0); i < drop; i++ {
		if l.ents[i].Instance != 0 {
			l.n--
		}
	}
	// Copy the survivors into a fresh slice so the pruned prefix's
	// backing array (and the payloads it pins) becomes collectable.
	rest := make([]wire.Entry, uint64(len(l.ents))-drop)
	copy(rest, l.ents[drop:])
	l.ents = rest
	l.base = newBase
	if l.stripLo > drop {
		l.stripLo -= drop
	} else {
		l.stripLo = 0
	}
}

// Clone deep-copies the log structure (entries share backing payloads).
func (l *AcceptedLog) Clone() *AcceptedLog {
	return &AcceptedLog{base: l.base, ents: append([]wire.Entry(nil), l.ents...), n: l.n, max: l.max, stripLo: l.stripLo}
}

// Store is the stable-storage interface used by a replica. The protocol
// invariant is that every mutation is durable before any protocol message
// claiming it is sent. A plain Store provides that directly: each
// mutation is durable when the method returns. A Store that also
// implements Flusher may instead stage mutations and make them durable at
// the next Flush; the replica core detects this and routes the dependent
// sends through its persister goroutine, so the invariant holds with the
// fsync off the event loop.
type Store interface {
	// Load returns the persisted state, or a fresh empty state.
	Load() (*PersistentState, error)
	// SetPromised durably records a promise.
	SetPromised(b wire.Ballot) error
	// PutAccepted durably records accepted proposals and the new
	// max-accepted ballot.
	PutAccepted(entries []wire.Entry, maxAccepted wire.Ballot) error
	// SetChosen durably advances the commit index.
	SetChosen(idx uint64) error
	// Compact drops state payloads (not requests) from accepted entries
	// below keepStateFrom, bounding storage growth; requests are kept
	// so a new leader can still learn the full command log.
	Compact(keepStateFrom uint64) error
	// SaveSnapshot durably records the service snapshot valid after
	// applying instance at, superseding any older one. It is the
	// prune guard: PruneTo never discards entries the latest snapshot
	// does not cover.
	SaveSnapshot(snap []byte, at uint64) error
	// SetMembers durably records the membership decided by the
	// configuration entry at instance at.
	SetMembers(members, learners []wire.NodeID, at uint64) error
	// PruneTo discards accepted entries with instance < keepFrom,
	// clamped so the durable service snapshot always covers the
	// discarded prefix (keepFrom <= ServiceSnapAt+1).
	PruneTo(keepFrom uint64) error
	// Close releases resources.
	Close() error
}

// Flusher is a Store supporting staged group commit: with SetBuffered(true)
// mutations apply to the in-memory mirror immediately but buffer their
// records, and become durable together — one write, one sync — at the
// next Flush. The replica's persister goroutine owns Flush; no protocol
// message that claims staged state may be sent before the Flush covering
// it returns. Mem deliberately does not implement Flusher: it models
// infinitely fast storage, for which the inline path is already optimal.
type Flusher interface {
	Store
	// SetBuffered toggles staged mode. Callers must Flush before turning
	// buffering off.
	SetBuffered(on bool)
	// Staged reports whether unflushed staged records exist.
	Staged() bool
	// Flush makes every staged record durable per the store's sync
	// policy. Safe to call concurrently with staging.
	Flush() error
}

// Apply replays a mutation record onto s; shared by implementations.
func (s *PersistentState) putAccepted(entries []wire.Entry, maxAccepted wire.Ballot) {
	for _, e := range entries {
		s.Accepted.Put(e)
	}
	if s.MaxAccepted.Less(maxAccepted) {
		s.MaxAccepted = maxAccepted
	}
}

// ApplyMembers records a membership decision if it is newer than the one
// held; shared by implementations.
func (s *PersistentState) ApplyMembers(members, learners []wire.NodeID, at uint64) {
	if at < s.MembersAt && s.Members != nil {
		return
	}
	s.Members = append([]wire.NodeID(nil), members...)
	s.Learners = append([]wire.NodeID(nil), learners...)
	s.MembersAt = at
}

// ApplySnapshot records a service snapshot if it is at least as new as
// the one held; shared by implementations.
func (s *PersistentState) ApplySnapshot(snap []byte, at uint64) {
	if at < s.ServiceSnapAt {
		return
	}
	s.ServiceSnap = append([]byte(nil), snap...)
	s.ServiceSnapAt = at
}

// Clone deep-copies the state (for snapshot isolation in tests).
func (s *PersistentState) Clone() *PersistentState {
	return &PersistentState{
		Promised:      s.Promised,
		MaxAccepted:   s.MaxAccepted,
		Chosen:        s.Chosen,
		Accepted:      s.Accepted.Clone(),
		ServiceSnap:   append([]byte(nil), s.ServiceSnap...),
		ServiceSnapAt: s.ServiceSnapAt,
		Members:       append([]wire.NodeID(nil), s.Members...),
		Learners:      append([]wire.NodeID(nil), s.Learners...),
		MembersAt:     s.MembersAt,
		PrunedTo:      s.PrunedTo,
	}
}

// Mem is a volatile Store for tests and benchmarks. It models stable
// storage that is infinitely fast; the file-backed implementation is in
// file.go.
type Mem struct {
	state *PersistentState
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{state: NewPersistentState()} }

var _ Store = (*Mem)(nil)

// Load implements Store. It returns a deep copy so the caller owns it.
func (m *Mem) Load() (*PersistentState, error) { return m.state.Clone(), nil }

// SetPromised implements Store.
func (m *Mem) SetPromised(b wire.Ballot) error {
	if m.state.Promised.Less(b) {
		m.state.Promised = b
	}
	return nil
}

// PutAccepted implements Store.
func (m *Mem) PutAccepted(entries []wire.Entry, maxAccepted wire.Ballot) error {
	m.state.putAccepted(entries, maxAccepted)
	return nil
}

// SetChosen implements Store.
func (m *Mem) SetChosen(idx uint64) error {
	if idx > m.state.Chosen {
		m.state.Chosen = idx
	}
	return nil
}

// Compact implements Store.
func (m *Mem) Compact(keepStateFrom uint64) error {
	m.state.Accepted.StripStatesBelow(keepStateFrom)
	return nil
}

// SaveSnapshot implements Store.
func (m *Mem) SaveSnapshot(snap []byte, at uint64) error {
	m.state.ApplySnapshot(snap, at)
	return nil
}

// SetMembers implements Store.
func (m *Mem) SetMembers(members, learners []wire.NodeID, at uint64) error {
	m.state.ApplyMembers(members, learners, at)
	return nil
}

// PruneTo implements Store.
func (m *Mem) PruneTo(keepFrom uint64) error {
	if keepFrom > m.state.ServiceSnapAt+1 {
		keepFrom = m.state.ServiceSnapAt + 1
	}
	m.state.Accepted.PruneTo(keepFrom)
	if keepFrom > 0 && keepFrom-1 > m.state.PrunedTo {
		m.state.PrunedTo = keepFrom - 1
	}
	return nil
}

// Close implements Store.
func (m *Mem) Close() error { return nil }
