// Package storage provides the stable storage a replica needs to survive
// crash-recovery (§3.1: faulty processes can recover and then execute the
// protocol correctly). Two facts must survive a crash:
//
//   - the acceptor's promises and accepted proposals, because forgetting a
//     promise could let the replica accept a smaller ballot and violate
//     Paxos safety; and
//   - the log of commands (§3.1), which guarantees that a new leader
//     learns about all previously accepted requests.
//
// A Store is single-writer (the replica's event loop) but may be read
// concurrently during snapshots.
package storage

import (
	"gridrep/internal/wire"
)

// PersistentState is everything a replica writes to stable storage.
type PersistentState struct {
	// Promised is the highest ballot the acceptor has promised.
	Promised wire.Ballot
	// MaxAccepted is the highest ballot among accepted proposals,
	// maintained for X-Paxos confirm routing (§3.4).
	MaxAccepted wire.Ballot
	// Accepted holds accepted proposals by instance. Per §3.3 a replica
	// remembers every accepted request but only needs the state of the
	// latest proposal; Compact enforces that.
	Accepted map[uint64]wire.Entry
	// Chosen is the commit index: all instances <= Chosen are chosen.
	Chosen uint64
}

// NewPersistentState returns an empty state.
func NewPersistentState() *PersistentState {
	return &PersistentState{Accepted: make(map[uint64]wire.Entry)}
}

// Store is the stable-storage interface used by a replica. Every mutation
// must be durable before the corresponding protocol message is sent.
type Store interface {
	// Load returns the persisted state, or a fresh empty state.
	Load() (*PersistentState, error)
	// SetPromised durably records a promise.
	SetPromised(b wire.Ballot) error
	// PutAccepted durably records accepted proposals and the new
	// max-accepted ballot.
	PutAccepted(entries []wire.Entry, maxAccepted wire.Ballot) error
	// SetChosen durably advances the commit index.
	SetChosen(idx uint64) error
	// Compact drops state payloads (not requests) from accepted entries
	// below keepStateFrom, bounding storage growth; requests are kept
	// so a new leader can still learn the full command log.
	Compact(keepStateFrom uint64) error
	// Close releases resources.
	Close() error
}

// Apply replays a mutation record onto s; shared by implementations.
func (s *PersistentState) putAccepted(entries []wire.Entry, maxAccepted wire.Ballot) {
	for _, e := range entries {
		s.Accepted[e.Instance] = e
	}
	if s.MaxAccepted.Less(maxAccepted) {
		s.MaxAccepted = maxAccepted
	}
}

// Clone deep-copies the state (for snapshot isolation in tests).
func (s *PersistentState) Clone() *PersistentState {
	c := &PersistentState{
		Promised:    s.Promised,
		MaxAccepted: s.MaxAccepted,
		Chosen:      s.Chosen,
		Accepted:    make(map[uint64]wire.Entry, len(s.Accepted)),
	}
	for k, v := range s.Accepted {
		c.Accepted[k] = v
	}
	return c
}

// Mem is a volatile Store for tests and benchmarks. It models stable
// storage that is infinitely fast; the file-backed implementation is in
// file.go.
type Mem struct {
	state *PersistentState
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{state: NewPersistentState()} }

var _ Store = (*Mem)(nil)

// Load implements Store. It returns a deep copy so the caller owns it.
func (m *Mem) Load() (*PersistentState, error) { return m.state.Clone(), nil }

// SetPromised implements Store.
func (m *Mem) SetPromised(b wire.Ballot) error {
	if m.state.Promised.Less(b) {
		m.state.Promised = b
	}
	return nil
}

// PutAccepted implements Store.
func (m *Mem) PutAccepted(entries []wire.Entry, maxAccepted wire.Ballot) error {
	m.state.putAccepted(entries, maxAccepted)
	return nil
}

// SetChosen implements Store.
func (m *Mem) SetChosen(idx uint64) error {
	if idx > m.state.Chosen {
		m.state.Chosen = idx
	}
	return nil
}

// Compact implements Store.
func (m *Mem) Compact(keepStateFrom uint64) error {
	for inst, e := range m.state.Accepted {
		if inst < keepStateFrom && e.Prop.HasState {
			e.Prop.HasState = false
			e.Prop.State = nil
			m.state.Accepted[inst] = e
		}
	}
	return nil
}

// Close implements Store.
func (m *Mem) Close() error { return nil }
