// Package storage provides the stable storage a replica needs to survive
// crash-recovery (§3.1: faulty processes can recover and then execute the
// protocol correctly). Two facts must survive a crash:
//
//   - the acceptor's promises and accepted proposals, because forgetting a
//     promise could let the replica accept a smaller ballot and violate
//     Paxos safety; and
//   - the log of commands (§3.1), which guarantees that a new leader
//     learns about all previously accepted requests.
//
// A Store is single-writer (the replica's event loop) but may be read
// concurrently during snapshots.
package storage

import (
	"gridrep/internal/wire"
)

// PersistentState is everything a replica writes to stable storage.
type PersistentState struct {
	// Promised is the highest ballot the acceptor has promised.
	Promised wire.Ballot
	// MaxAccepted is the highest ballot among accepted proposals,
	// maintained for X-Paxos confirm routing (§3.4).
	MaxAccepted wire.Ballot
	// Accepted holds accepted proposals by instance. Per §3.3 a replica
	// remembers every accepted request but only needs the state of the
	// latest proposal; Compact enforces that.
	Accepted *AcceptedLog
	// Chosen is the commit index: all instances <= Chosen are chosen.
	Chosen uint64
}

// NewPersistentState returns an empty state.
func NewPersistentState() *PersistentState {
	return &PersistentState{Accepted: NewAcceptedLog()}
}

// AcceptedLog holds accepted proposals indexed by instance. Instances
// are dense and arrive almost always in order, so a flat slice (index =
// instance−1) serves lookups and inserts without hashing — and, unlike
// the map it replaced, without incremental rehash pauses on the replica
// event loop as the log grows across a long run.
type AcceptedLog struct {
	ents []wire.Entry // ents[i] holds instance i+1; Instance==0 marks a hole
	n    int          // number of present entries
	max  uint64       // highest present instance
	// stripLo is the slice index below which state payloads have already
	// been stripped; successive StripStatesBelow calls resume there
	// instead of rescanning from zero (compaction runs periodically
	// forever, so a fresh full scan each time would be quadratic).
	stripLo uint64
}

// NewAcceptedLog returns an empty log.
func NewAcceptedLog() *AcceptedLog { return &AcceptedLog{} }

// Get returns the proposal accepted for inst, if any.
func (l *AcceptedLog) Get(inst uint64) (wire.Entry, bool) {
	if inst == 0 || inst > uint64(len(l.ents)) {
		return wire.Entry{}, false
	}
	e := l.ents[inst-1]
	return e, e.Instance != 0
}

// Put records e under its instance, overwriting any earlier proposal.
func (l *AcceptedLog) Put(e wire.Entry) {
	if e.Instance == 0 {
		return
	}
	for uint64(len(l.ents)) < e.Instance {
		l.ents = append(l.ents, wire.Entry{})
	}
	if l.ents[e.Instance-1].Instance == 0 {
		l.n++
	}
	l.ents[e.Instance-1] = e
	if e.Instance > l.max {
		l.max = e.Instance
	}
}

// Len returns the number of instances holding an accepted proposal.
func (l *AcceptedLog) Len() int { return l.n }

// Max returns the highest instance with an accepted proposal, 0 if none.
func (l *AcceptedLog) Max() uint64 { return l.max }

// Ascend calls fn on every present entry with lo < instance <= hi in
// instance order; hi == 0 means unbounded above. fn returning false
// stops the walk.
func (l *AcceptedLog) Ascend(lo, hi uint64, fn func(e wire.Entry) bool) {
	end := uint64(len(l.ents))
	if hi != 0 && hi < end {
		end = hi
	}
	for i := lo; i < end; i++ {
		if e := l.ents[i]; e.Instance != 0 {
			if !fn(e) {
				return
			}
		}
	}
}

// StripStatesBelow clears the state payloads of entries with instance <
// keepStateFrom, keeping their requests — the Compact semantics of §3.3
// (a new leader can still learn the full command log; only the latest
// state matters).
func (l *AcceptedLog) StripStatesBelow(keepStateFrom uint64) {
	if keepStateFrom == 0 {
		return
	}
	end := uint64(len(l.ents))
	if keepStateFrom-1 < end {
		end = keepStateFrom - 1
	}
	for i := l.stripLo; i < end; i++ {
		if l.ents[i].Instance != 0 && l.ents[i].Prop.HasState {
			l.ents[i].Prop.HasState = false
			l.ents[i].Prop.State = nil
		}
	}
	if end > l.stripLo {
		l.stripLo = end
	}
}

// Clone deep-copies the log structure (entries share backing payloads).
func (l *AcceptedLog) Clone() *AcceptedLog {
	return &AcceptedLog{ents: append([]wire.Entry(nil), l.ents...), n: l.n, max: l.max, stripLo: l.stripLo}
}

// Store is the stable-storage interface used by a replica. The protocol
// invariant is that every mutation is durable before any protocol message
// claiming it is sent. A plain Store provides that directly: each
// mutation is durable when the method returns. A Store that also
// implements Flusher may instead stage mutations and make them durable at
// the next Flush; the replica core detects this and routes the dependent
// sends through its persister goroutine, so the invariant holds with the
// fsync off the event loop.
type Store interface {
	// Load returns the persisted state, or a fresh empty state.
	Load() (*PersistentState, error)
	// SetPromised durably records a promise.
	SetPromised(b wire.Ballot) error
	// PutAccepted durably records accepted proposals and the new
	// max-accepted ballot.
	PutAccepted(entries []wire.Entry, maxAccepted wire.Ballot) error
	// SetChosen durably advances the commit index.
	SetChosen(idx uint64) error
	// Compact drops state payloads (not requests) from accepted entries
	// below keepStateFrom, bounding storage growth; requests are kept
	// so a new leader can still learn the full command log.
	Compact(keepStateFrom uint64) error
	// Close releases resources.
	Close() error
}

// Flusher is a Store supporting staged group commit: with SetBuffered(true)
// mutations apply to the in-memory mirror immediately but buffer their
// records, and become durable together — one write, one sync — at the
// next Flush. The replica's persister goroutine owns Flush; no protocol
// message that claims staged state may be sent before the Flush covering
// it returns. Mem deliberately does not implement Flusher: it models
// infinitely fast storage, for which the inline path is already optimal.
type Flusher interface {
	Store
	// SetBuffered toggles staged mode. Callers must Flush before turning
	// buffering off.
	SetBuffered(on bool)
	// Staged reports whether unflushed staged records exist.
	Staged() bool
	// Flush makes every staged record durable per the store's sync
	// policy. Safe to call concurrently with staging.
	Flush() error
}

// Apply replays a mutation record onto s; shared by implementations.
func (s *PersistentState) putAccepted(entries []wire.Entry, maxAccepted wire.Ballot) {
	for _, e := range entries {
		s.Accepted.Put(e)
	}
	if s.MaxAccepted.Less(maxAccepted) {
		s.MaxAccepted = maxAccepted
	}
}

// Clone deep-copies the state (for snapshot isolation in tests).
func (s *PersistentState) Clone() *PersistentState {
	return &PersistentState{
		Promised:    s.Promised,
		MaxAccepted: s.MaxAccepted,
		Chosen:      s.Chosen,
		Accepted:    s.Accepted.Clone(),
	}
}

// Mem is a volatile Store for tests and benchmarks. It models stable
// storage that is infinitely fast; the file-backed implementation is in
// file.go.
type Mem struct {
	state *PersistentState
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{state: NewPersistentState()} }

var _ Store = (*Mem)(nil)

// Load implements Store. It returns a deep copy so the caller owns it.
func (m *Mem) Load() (*PersistentState, error) { return m.state.Clone(), nil }

// SetPromised implements Store.
func (m *Mem) SetPromised(b wire.Ballot) error {
	if m.state.Promised.Less(b) {
		m.state.Promised = b
	}
	return nil
}

// PutAccepted implements Store.
func (m *Mem) PutAccepted(entries []wire.Entry, maxAccepted wire.Ballot) error {
	m.state.putAccepted(entries, maxAccepted)
	return nil
}

// SetChosen implements Store.
func (m *Mem) SetChosen(idx uint64) error {
	if idx > m.state.Chosen {
		m.state.Chosen = idx
	}
	return nil
}

// Compact implements Store.
func (m *Mem) Compact(keepStateFrom uint64) error {
	m.state.Accepted.StripStatesBelow(keepStateFrom)
	return nil
}

// Close implements Store.
func (m *Mem) Close() error { return nil }
