package storage

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gridrep/internal/wire"
)

func openTestFile(t *testing.T, path string) *File {
	t.Helper()
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// reopen models a crash: the old File is abandoned (its staged buffer and
// fd die with the process) and the WAL is replayed fresh from disk.
func reopen(t *testing.T, path string) *PersistentState {
	t.Helper()
	s2 := openTestFile(t, path)
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBufferedFlushDurability: staged records are invisible to a crash
// until Flush; after Flush they survive it.
func TestBufferedFlushDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s := openTestFile(t, path)
	defer s.Close()
	s.SetBuffered(true)

	b := wire.Ballot{Round: 1, Node: 0}
	if err := s.SetPromised(b); err != nil {
		t.Fatal(err)
	}
	if err := s.PutAccepted([]wire.Entry{entry(1, b, "a", true)}, b); err != nil {
		t.Fatal(err)
	}
	if !s.Staged() {
		t.Fatal("records should be staged before Flush")
	}
	// The event loop's own view includes staged mutations...
	if st, _ := s.Load(); st.Accepted.Len() != 1 {
		t.Fatal("staged mutation missing from Load")
	}
	// ...but a crash before Flush loses them.
	if st := reopen(t, path); st.Accepted.Len() != 0 || !st.Promised.Equal(wire.Ballot{}) {
		t.Fatalf("staged records must not be durable before Flush: %+v", st)
	}

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Staged() {
		t.Fatal("Flush must drain the staging buffer")
	}
	st := reopen(t, path)
	if st.Accepted.Len() != 1 || !st.Promised.Equal(b) {
		t.Fatalf("flushed records must survive a crash: %+v", st)
	}
	if e, ok := st.Accepted.Get(1); !ok || string(e.Prop.Reqs[0].Op) != "a" {
		t.Fatalf("replayed entry wrong: %+v", e)
	}
}

// TestFlushBatchesOneSync: a burst of mutations becomes one batch and one
// device sync.
func TestFlushBatchesOneSync(t *testing.T) {
	s := openTestFile(t, filepath.Join(t.TempDir(), "wal"))
	defer s.Close()
	s.SetBuffered(true)

	b := wire.Ballot{Round: 1, Node: 0}
	for i := uint64(1); i <= 8; i++ {
		if err := s.PutAccepted([]wire.Entry{entry(i, b, "x", false)}, b); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetChosen(8); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Records != 9 {
		t.Errorf("Records = %d, want 9", st.Records)
	}
	if st.Batches != 1 {
		t.Errorf("Batches = %d, want 1", st.Batches)
	}
	if st.Syncs != 1 {
		t.Errorf("Syncs = %d, want 1 (one fdatasync per burst)", st.Syncs)
	}
}

// TestChosenCoalescing: under SyncPolicyBatch a chosen-only batch is
// written but never forces its own fsync — it rides the next critical
// batch's sync instead.
func TestChosenCoalescing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s := openTestFile(t, path)
	defer s.Close()
	s.SetBuffered(true)

	b := wire.Ballot{Round: 1, Node: 0}
	if err := s.PutAccepted([]wire.Entry{entry(1, b, "a", false)}, b); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Syncs; got != 1 {
		t.Fatalf("Syncs after critical batch = %d, want 1", got)
	}

	// A chosen-only burst: written, not synced.
	if err := s.SetChosen(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Syncs; got != 1 {
		t.Fatalf("chosen-only batch forced a sync: Syncs = %d, want 1", got)
	}

	// The next critical batch's fsync covers the chosen record too.
	if err := s.PutAccepted([]wire.Entry{entry(2, b, "b", false)}, b); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Syncs; got != 2 {
		t.Fatalf("Syncs after second critical batch = %d, want 2", got)
	}
	if st := reopen(t, path); st.Chosen != 1 || st.Accepted.Len() != 2 {
		t.Fatalf("coalesced chosen record lost: %+v", st)
	}
}

// TestSyncPolicyAlways: every flushed batch syncs, critical or not.
func TestSyncPolicyAlways(t *testing.T) {
	s := openTestFile(t, filepath.Join(t.TempDir(), "wal"))
	defer s.Close()
	s.SetPolicy(SyncPolicyAlways, 0)
	s.SetBuffered(true)

	b := wire.Ballot{Round: 1, Node: 0}
	if err := s.PutAccepted([]wire.Entry{entry(1, b, "a", false)}, b); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.SetChosen(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Syncs; got != 2 {
		t.Fatalf("Syncs = %d, want 2 under SyncPolicyAlways", got)
	}
}

// TestSyncPolicyInterval: syncs are rate-limited to the configured
// interval, independent of record criticality.
func TestSyncPolicyInterval(t *testing.T) {
	s := openTestFile(t, filepath.Join(t.TempDir(), "wal"))
	defer s.Close()
	s.SetPolicy(SyncPolicyInterval, time.Hour)
	s.SetBuffered(true)

	b := wire.Ballot{Round: 1, Node: 0}
	for i := uint64(1); i <= 3; i++ {
		if err := s.PutAccepted([]wire.Entry{entry(i, b, "a", false)}, b); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// The first flush syncs (no sync has ever run); the rest fall within
	// the hour-long interval and are deferred.
	if got := s.Stats().Syncs; got != 1 {
		t.Fatalf("Syncs = %d, want 1 within the interval", got)
	}

	s2 := openTestFile(t, filepath.Join(t.TempDir(), "wal2"))
	defer s2.Close()
	s2.SetPolicy(SyncPolicyInterval, time.Nanosecond)
	s2.SetBuffered(true)
	if err := s2.SetChosen(1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Syncs; got != 1 {
		t.Fatalf("Syncs = %d, want 1 once the interval elapsed", got)
	}
}

// TestBatchedFlushPoisonsStore: a Flush that cannot reach the device
// poisons the store — every later mutation fails with the original error,
// the fail-stop contract under group commit.
func TestBatchedFlushPoisonsStore(t *testing.T) {
	s := openTestFile(t, filepath.Join(t.TempDir(), "wal"))
	s.SetBuffered(true)

	b := wire.Ballot{Round: 1, Node: 0}
	if err := s.PutAccepted([]wire.Entry{entry(1, b, "a", false)}, b); err != nil {
		t.Fatal(err)
	}
	s.f.Close() // the device "fails" under the batch
	err := s.Flush()
	if err == nil {
		t.Fatal("Flush over a failed device must error")
	}
	if !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("Flush error should mark the poisoning: %v", err)
	}
	if err2 := s.PutAccepted([]wire.Entry{entry(2, b, "b", false)}, b); err2 == nil {
		t.Fatal("mutations after a failed batch must fail")
	}
	if err3 := s.Flush(); err3 == nil {
		t.Fatal("later flushes must return the sticky poison error")
	}
	if _, err4 := s.Load(); err4 == nil {
		t.Fatal("Load after poisoning must fail")
	}
}

// TestAsyncRewrite: in buffered mode the snapshot rewrite runs off the
// flush path; appends continue during it and the reopened state matches.
func TestAsyncRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s := openTestFile(t, path)
	defer s.Close()
	s.rewriteAt = 4 << 10 // tiny threshold so rewrites trigger quickly
	s.SetBuffered(true)

	b := wire.Ballot{Round: 1, Node: 0}
	var chosen uint64
	for i := uint64(1); i <= 400; i++ {
		if err := s.PutAccepted([]wire.Entry{entry(i, b, "abcdefghij", i%7 == 0)}, b); err != nil {
			t.Fatal(err)
		}
		chosen = i
		if err := s.SetChosen(chosen); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Let in-flight background rewrites finish before checking.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Rewrites == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := s.Stats()
	if st.Rewrites == 0 {
		t.Fatal("no background rewrite ran despite tiny threshold")
	}
	if st.RewriteErrs != 0 {
		t.Fatalf("RewriteErrs = %d, want 0", st.RewriteErrs)
	}

	got := reopen(t, path)
	if got.Chosen != chosen {
		t.Fatalf("Chosen after rewrite = %d, want %d", got.Chosen, chosen)
	}
	if got.Accepted.Len() != 400 {
		t.Fatalf("Accepted.Len after rewrite = %d, want 400", got.Accepted.Len())
	}
	for _, inst := range []uint64{1, 200, 400} {
		if e, ok := got.Accepted.Get(inst); !ok || len(e.Prop.Reqs) == 0 {
			t.Fatalf("entry %d lost across rewrite: %+v", inst, e)
		}
	}
}

// TestConcurrentFlushAndStage: staging from one goroutine while another
// flushes must neither lose records nor race (run under -race in CI).
func TestConcurrentFlushAndStage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	s := openTestFile(t, path)
	s.SetBuffered(true)
	s.rewriteAt = 8 << 10

	const n = 500
	b := wire.Ballot{Round: 1, Node: 0}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := s.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := uint64(1); i <= n; i++ {
		if err := s.PutAccepted([]wire.Entry{entry(i, b, "op", false)}, b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := reopen(t, path)
	if st.Accepted.Len() != n {
		t.Fatalf("Accepted.Len = %d, want %d", st.Accepted.Len(), n)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncPolicyAlways, true},
		{"batch", SyncPolicyBatch, true},
		{"", SyncPolicyBatch, true},
		{"interval", SyncPolicyInterval, true},
		{"bogus", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && tc.in != "" && got.String() != tc.in {
			t.Errorf("String() round trip: %q != %q", got.String(), tc.in)
		}
	}
}
