// Package metrics is the repo's unified observability layer (DESIGN.md
// §11): allocation-free counters, gauges, and fixed-bucket histograms,
// plus a registry that snapshots them and renders Prometheus text or
// JSON. Every instrument is a few atomic words; Observe/Add/Set never
// allocate and never take a lock, so they are safe to stamp through the
// replica's hot path. The paper's evaluation (§5) is entirely
// measurement-driven — per-request latency and throughput — and this
// package is the one place all of those counters now live.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// SetMax raises the gauge to v if v is larger. Not atomic against
// concurrent SetMax callers; the replica's event loop is the only writer
// of every high-water gauge, so a load+store race cannot occur there.
func (g *Gauge) SetMax(v int64) {
	if v > g.v.Load() {
		g.v.Store(v)
	}
}

// Unit tells exporters how to render a histogram's native values.
type Unit int

const (
	// UnitNanoseconds: values are time.Duration nanoseconds; Prometheus
	// output converts bounds and sums to seconds.
	UnitNanoseconds Unit = iota
	// UnitCount: dimensionless counts (e.g. records per batch).
	UnitCount
	// UnitBytes: byte sizes.
	UnitBytes
)

func (u Unit) String() string {
	switch u {
	case UnitNanoseconds:
		return "ns"
	case UnitBytes:
		return "bytes"
	default:
		return "count"
	}
}

// histBuckets is the number of finite histogram buckets. Bucket i spans
// (2^(i-1), 2^i] in the histogram's native unit (bucket 0 is [0, 1]), so
// for nanosecond latencies the range 1ns..2^39ns (~9 minutes) is covered
// with ≤2x resolution; one extra overflow bucket catches the rest.
const histBuckets = 40

// Histogram is a fixed-bucket exponential histogram. Observe is
// allocation-free and lock-free; Snapshot extracts count, sum, and
// interpolated quantiles (p50/p95/p99). The zero Histogram is NOT ready
// to use from a registry — create via NewHistogram or Registry.Histogram
// so the unit is recorded.
type Histogram struct {
	unit   Unit
	counts [histBuckets + 1]atomic.Uint64
	sum    atomic.Uint64
	n      atomic.Uint64
}

// NewHistogram returns an empty histogram measuring the given unit.
func NewHistogram(unit Unit) *Histogram { return &Histogram{unit: unit} }

// Unit returns the histogram's native unit.
func (h *Histogram) Unit() Unit { return h.unit }

// bucketIndex maps a value to its bucket: the smallest i with v <= 2^i,
// clamped into the overflow bucket.
func bucketIndex(v uint64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(v - 1)
	if i > histBuckets {
		return histBuckets
	}
	return i
}

// Observe records one value in the histogram's native unit.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// ObserveDuration records d (for UnitNanoseconds histograms).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Since records the elapsed time from t to now.
func (h *Histogram) Since(t time.Time) { h.ObserveDuration(time.Since(t)) }

// HistSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); bucket i's upper bound is 2^i in the
// native unit, and the last entry is the overflow bucket.
type HistSnapshot struct {
	Unit   Unit
	Count  uint64
	Sum    uint64
	Counts [histBuckets + 1]uint64
}

// Snapshot copies the histogram's state. Concurrent Observes may land
// between bucket reads; the snapshot is still a valid histogram, just
// not a single instant's.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Unit: h.unit, Count: h.n.Load(), Sum: h.sum.Load()}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the average observed value in native units (0 if empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketBounds returns bucket i's value span [lo, hi].
func bucketBounds(i int) (lo, hi float64) {
	hi = math.Ldexp(1, i) // 2^i
	if i == 0 {
		return 0, 1
	}
	return math.Ldexp(1, i-1), hi
}

// Quantile returns the q-quantile (0 < q <= 1) in native units, linearly
// interpolated inside the covering bucket. The overflow bucket reports
// its lower bound — an underestimate, flagged by the caller if needed.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		if cum+float64(c) >= rank {
			if i == len(s.Counts)-1 {
				return lo
			}
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += float64(c)
	}
	lo, _ := bucketBounds(len(s.Counts) - 1)
	return lo
}

// P50, P95, P99 are the quantiles the paper-style breakdowns print.
func (s *HistSnapshot) P50() float64 { return s.Quantile(0.50) }
func (s *HistSnapshot) P95() float64 { return s.Quantile(0.95) }
func (s *HistSnapshot) P99() float64 { return s.Quantile(0.99) }

// MS converts a native-unit value of a nanosecond histogram to
// milliseconds (identity for other units).
func (s *HistSnapshot) MS(v float64) float64 {
	if s.Unit == UnitNanoseconds {
		return v / 1e6
	}
	return v
}
