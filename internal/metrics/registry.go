package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Kind classifies a registered instrument.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Instrumented is implemented by components that own instruments and can
// publish them into a registry (storage.File, transport.TCP). The core
// replica probes its store and transport for this interface, so one
// registry per replica covers every layer.
type Instrumented interface {
	RegisterMetrics(*Registry)
}

// entry is one registered instrument.
type entry struct {
	name, help string
	kind       Kind
	counter    *Counter
	gauge      *Gauge
	gaugeFn    func() int64
	hist       *Histogram
}

// Registry is a named collection of instruments. Registration is
// mutex-guarded (it happens at assembly time); reading instruments goes
// straight to their atomics, and Snapshot only locks to copy the entry
// list. Names must be unique; registering a duplicate panics, since it
// is always an assembly-time bug.
type Registry struct {
	mu      sync.Mutex
	entries []entry

	// root/prefix implement WithPrefix views. A view owns no entries:
	// add() prepends prefix and stores into root, and every read method
	// operates on root's entry list.
	root   *Registry
	prefix string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// WithPrefix returns a registration view that prepends prefix to every
// name registered through it, storing the instruments in the shared root
// registry. This is how N consensus groups hosted in one process share a
// single registry without tripping the duplicate-name panic: group 0
// registers unprefixed (names stay byte-identical to a single-group
// deployment), group g registers through WithPrefix("group_<g>_").
// Prefixes nest; read methods (Snapshot, Write*, Names) always cover the
// whole root registry.
func (r *Registry) WithPrefix(prefix string) *Registry {
	return &Registry{root: r.base(), prefix: r.prefix + prefix}
}

// base resolves the registry owning the entries: the root for a
// WithPrefix view, r itself otherwise.
func (r *Registry) base() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

func (r *Registry) add(e entry) {
	if r.root != nil {
		e.name = r.prefix + e.name
		r.root.add(e)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, cur := range r.entries {
		if cur.name == e.name {
			panic(fmt.Sprintf("metrics: duplicate registration of %q", e.name))
		}
	}
	r.entries = append(r.entries, e)
}

// Counter creates and registers a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c)
	return c
}

// Gauge creates and registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, g)
	return g
}

// Histogram creates and registers a histogram of the given unit.
func (r *Registry) Histogram(name, help string, unit Unit) *Histogram {
	h := NewHistogram(unit)
	r.RegisterHistogram(name, help, h)
	return h
}

// RegisterCounter registers an existing counter under name.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.add(entry{name: name, help: help, kind: KindCounter, counter: c})
}

// RegisterGauge registers an existing gauge under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) {
	r.add(entry{name: name, help: help, kind: KindGauge, gauge: g})
}

// RegisterGaugeFunc registers a gauge computed on demand (queue depths,
// values mirrored from atomics elsewhere). fn must be safe to call from
// any goroutine.
func (r *Registry) RegisterGaugeFunc(name, help string, fn func() int64) {
	r.add(entry{name: name, help: help, kind: KindGauge, gaugeFn: fn})
}

// RegisterHistogram registers an existing histogram under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.add(entry{name: name, help: help, kind: KindHistogram, hist: h})
}

// Metric is one instrument's state inside a Snapshot.
type Metric struct {
	Name  string
	Help  string
	Kind  Kind
	Value int64         // counter (cast) or gauge value
	Hist  *HistSnapshot // histograms only
}

// Snapshot captures every registered instrument. This is the API that
// replaced the ad-hoc stats structs; the old surfaces are thin shims
// over the same instruments.
func (r *Registry) Snapshot() []Metric {
	r = r.base()
	r.mu.Lock()
	entries := append([]entry{}, r.entries...)
	r.mu.Unlock()
	out := make([]Metric, 0, len(entries))
	for _, e := range entries {
		m := Metric{Name: e.name, Help: e.help, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			m.Value = int64(e.counter.Load())
		case KindGauge:
			if e.gaugeFn != nil {
				m.Value = e.gaugeFn()
			} else {
				m.Value = e.gauge.Load()
			}
		case KindHistogram:
			s := e.hist.Snapshot()
			m.Hist = &s
		}
		out = append(out, m)
	}
	return out
}

// Find returns the snapshot metric with the given name, if registered.
func Find(snap []Metric, name string) (Metric, bool) {
	for _, m := range snap {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// promValue renders a native-unit value for Prometheus: seconds for
// nanosecond histograms, the raw value otherwise.
func promValue(u Unit, v float64) string {
	if u == UnitNanoseconds {
		v /= 1e9
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (text/plain; version 0.0.4). Histograms emit cumulative
// `_bucket{le=...}` lines plus `_sum` and `_count`, with nanosecond
// units converted to seconds as Prometheus convention requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
			return err
		}
		if m.Kind != KindHistogram {
			if _, err := fmt.Fprintf(w, "%s %d\n", m.Name, m.Value); err != nil {
				return err
			}
			continue
		}
		s := m.Hist
		var cum uint64
		for i, c := range s.Counts {
			cum += c
			// Collapse empty leading/trailing buckets would change the
			// schema between scrapes; emit only non-empty buckets plus
			// +Inf, which Prometheus accepts (cumulative counts carry
			// the information).
			if c == 0 && i != len(s.Counts)-1 {
				continue
			}
			le := "+Inf"
			if i != len(s.Counts)-1 {
				_, hi := bucketBounds(i)
				le = promValue(s.Unit, hi)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", m.Name, promValue(s.Unit, float64(s.Sum))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", m.Name, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// jsonMetric is the machine-readable form of one instrument.
type jsonMetric struct {
	Name  string    `json:"name"`
	Kind  string    `json:"kind"`
	Value *int64    `json:"value,omitempty"`
	Hist  *jsonHist `json:"histogram,omitempty"`
}

type jsonHist struct {
	Unit  string  `json:"unit"`
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// WriteJSON renders the registry as a JSON object keyed by metric name
// order (an array, preserving registration order).
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	out := make([]jsonMetric, 0, len(snap))
	for _, m := range snap {
		jm := jsonMetric{Name: m.Name, Kind: m.Kind.String()}
		if m.Kind == KindHistogram {
			s := m.Hist
			jm.Hist = &jsonHist{
				Unit:  s.Unit.String(),
				Count: s.Count,
				Sum:   s.Sum,
				Mean:  s.Mean(),
				P50:   s.P50(),
				P95:   s.P95(),
				P99:   s.P99(),
			}
		} else {
			v := m.Value
			jm.Value = &v
		}
		out = append(out, jm)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Names returns the registered metric names, sorted (test helper).
func (r *Registry) Names() []string {
	r = r.base()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.name)
	}
	sort.Strings(out)
	return out
}
