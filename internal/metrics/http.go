package metrics

import "net/http"

// Handler serves the registry over HTTP: Prometheus text by default,
// JSON with ?format=json. Mount it wherever the deployment exposes its
// debug surface (replicad -metrics-addr mounts it at /metrics).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
