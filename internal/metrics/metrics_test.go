package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.SetMax(2)
	if got := g.Load(); got != 4 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("SetMax = %d, want 9", got)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{1 << histBuckets, histBuckets}, {1<<63 + 5, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(UnitCount)
	// 100 observations of value 1000, 100 of value 100000.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
		h.Observe(100000)
	}
	s := h.Snapshot()
	if s.Count != 200 {
		t.Fatalf("count = %d, want 200", s.Count)
	}
	if s.Sum != 100*1000+100*100000 {
		t.Fatalf("sum = %d", s.Sum)
	}
	// p50 must land in the bucket covering 1000 (512, 1024], p99 in the
	// bucket covering 100000 (65536, 131072].
	if p := s.P50(); p < 512 || p > 1024 {
		t.Errorf("p50 = %g, want within (512, 1024]", p)
	}
	if p := s.P99(); p < 65536 || p > 131072 {
		t.Errorf("p99 = %g, want within (65536, 131072]", p)
	}
	if m := s.Mean(); math.Abs(m-50500) > 1 {
		t.Errorf("mean = %g, want 50500", m)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := NewHistogram(UnitNanoseconds)
	s := h.Snapshot()
	if s.P50() != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram should report zeros")
	}
	h.Observe(1 << 62) // overflow bucket
	s = h.Snapshot()
	if s.Counts[histBuckets] != 1 {
		t.Fatalf("overflow observation not in last bucket")
	}
	lo, _ := bucketBounds(histBuckets)
	if p := s.P99(); p != lo {
		t.Fatalf("overflow quantile = %g, want bucket floor %g", p, lo)
	}
}

func TestHistogramDuration(t *testing.T) {
	h := NewHistogram(UnitNanoseconds)
	h.ObserveDuration(2 * time.Millisecond)
	h.ObserveDuration(-time.Second) // clamped to 0
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	if ms := s.MS(s.Quantile(1)); ms < 1 || ms > 3 {
		t.Fatalf("p100 = %gms, want ~2ms", ms)
	}
}

func TestRegistrySnapshotAndFind(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	r.RegisterGaugeFunc("test_live", "live", func() int64 { return 42 })
	h := r.Histogram("test_lat_seconds", "latency", UnitNanoseconds)
	c.Add(3)
	g.Set(-2)
	h.Observe(1000)

	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d metrics, want 4", len(snap))
	}
	if m, ok := Find(snap, "test_ops_total"); !ok || m.Value != 3 {
		t.Fatalf("counter snapshot = %+v ok=%v", m, ok)
	}
	if m, ok := Find(snap, "test_depth"); !ok || m.Value != -2 {
		t.Fatalf("gauge snapshot = %+v ok=%v", m, ok)
	}
	if m, ok := Find(snap, "test_live"); !ok || m.Value != 42 {
		t.Fatalf("gaugefunc snapshot = %+v ok=%v", m, ok)
	}
	if m, ok := Find(snap, "test_lat_seconds"); !ok || m.Hist == nil || m.Hist.Count != 1 {
		t.Fatalf("histogram snapshot = %+v ok=%v", m, ok)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup", "")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_reqs_total", "requests").Add(7)
	h := r.Histogram("app_commit_latency_seconds", "commit latency", UnitNanoseconds)
	h.ObserveDuration(time.Millisecond)
	h.ObserveDuration(4 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE app_reqs_total counter",
		"app_reqs_total 7",
		"# TYPE app_commit_latency_seconds histogram",
		`app_commit_latency_seconds_bucket{le="+Inf"} 2`,
		"app_commit_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Nanosecond histograms export second-valued bounds: the 1ms
	// observation must sit under a le bound in (0, 1) seconds.
	if !strings.Contains(out, `le="0.001`) {
		t.Errorf("expected a seconds-scale le bound near 0.001:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("j_total", "").Add(5)
	r.Histogram("j_lat", "", UnitNanoseconds).Observe(1000)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 2 {
		t.Fatalf("got %d metrics", len(out))
	}
	if out[0]["name"] != "j_total" || out[0]["value"].(float64) != 5 {
		t.Fatalf("counter json = %v", out[0])
	}
	if out[1]["histogram"] == nil {
		t.Fatalf("histogram json missing: %v", out[1])
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(res.Body)
	res.Body.Close()
	if !strings.Contains(buf.String(), "h_total 1") {
		t.Fatalf("prometheus body = %q", buf.String())
	}

	res, err = srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	_, _ = buf.ReadFrom(res.Body)
	res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
	if !strings.Contains(buf.String(), `"h_total"`) {
		t.Fatalf("json body = %q", buf.String())
	}
}

// TestConcurrentObserve hammers one histogram and registry snapshots
// from many goroutines; run under -race this is the package-level data
// race check.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_lat", "", UnitNanoseconds)
	c := r.Counter("conc_total", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for j := 0; j < 10000; j++ {
				h.Observe(seed * uint64(j))
				c.Inc()
			}
		}(uint64(i + 1))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
			_ = r.WritePrometheus(bytes.NewBuffer(nil))
		}
	}()
	wg.Wait()
	<-done
	if got := c.Load(); got != 80000 {
		t.Fatalf("counter = %d, want 80000", got)
	}
	if s := h.Snapshot(); s.Count != 80000 {
		t.Fatalf("hist count = %d, want 80000", s.Count)
	}
}
