package metrics

import "testing"

// TestWithPrefixSharesRoot: instruments registered through a prefixed
// view land in the root registry under the prefixed name, so N consensus
// groups can share one registry without duplicate-name panics while
// group 0's names stay byte-identical to a single-group deployment.
func TestWithPrefixSharesRoot(t *testing.T) {
	root := NewRegistry()
	root.Counter("paxos_commits_total", "").Add(1)

	g1 := root.WithPrefix("group_1_")
	g2 := root.WithPrefix("group_2_")
	g1.Counter("paxos_commits_total", "").Add(2)
	g2.Counter("paxos_commits_total", "").Add(3)

	want := map[string]int64{
		"paxos_commits_total":         1,
		"group_1_paxos_commits_total": 2,
		"group_2_paxos_commits_total": 3,
	}
	got := map[string]int64{}
	for _, m := range root.Snapshot() {
		got[m.Name] = m.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Fatalf("%s = %d, want %d (snapshot: %v)", name, got[name], v, got)
		}
	}

	// Reads through a view cover the whole root, not just the view's
	// prefix — there is one observability surface per process.
	if len(g1.Snapshot()) != len(root.Snapshot()) {
		t.Fatal("view snapshot differs from root snapshot")
	}
}

// TestWithPrefixNesting: prefixes compose left to right.
func TestWithPrefixNesting(t *testing.T) {
	root := NewRegistry()
	root.WithPrefix("group_3_").WithPrefix("wal_").Counter("fsyncs_total", "").Add(9)
	for _, m := range root.Snapshot() {
		if m.Name == "group_3_wal_fsyncs_total" && m.Value == 9 {
			return
		}
	}
	t.Fatalf("nested prefix name not found: %v", root.Names())
}

// TestWithPrefixDuplicateStillPanics: the duplicate-name panic must hold
// across views — two groups with the same prefix registering the same
// instrument is still an assembly bug.
func TestWithPrefixDuplicateStillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate prefixed name did not panic")
		}
	}()
	root := NewRegistry()
	root.WithPrefix("group_1_").Counter("x", "")
	root.WithPrefix("group_1_").Counter("x", "")
}
