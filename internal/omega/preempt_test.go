package omega

import (
	"testing"
	"time"

	"gridrep/internal/wire"
)

// preemptElector builds an elector with rank preemption enabled and a
// rank function that prefers node `pref`.
func preemptElector(self, pref wire.NodeID) *Elector {
	return New(Config{
		Self:     self,
		Peers:    []wire.NodeID{0, 1, 2},
		Interval: 10 * time.Millisecond,
		Timeout:  50 * time.Millisecond,
		Rank: func(n wire.NodeID) uint64 {
			if n == pref {
				return 0
			}
			return uint64(n) + 1
		},
		Preempt:      true,
		PreemptAfter: 30 * time.Millisecond,
	})
}

// TestPreemptReclaimsFromBootOrderWinner is the boot-order regression:
// node 0 boots first and claims, but the rank prefers node 2. With
// preemption enabled, node 2 deposes node 0 after the holddown — so
// placement no longer depends on which replica started first.
func TestPreemptReclaimsFromBootOrderWinner(t *testing.T) {
	e := preemptElector(2, 2)
	// The boot-order winner's claim arrives and keeps refreshing.
	e.OnHeartbeat(claimHB(0, 1), t0)
	if l, ok := e.Leader(t0.Add(time.Millisecond)); !ok || l != 0 {
		t.Fatalf("leader = %v,%v; want incumbent 0 before holddown", l, ok)
	}
	// Conditions hold continuously; before the holddown elapses the
	// incumbent must be untouched.
	e.OnHeartbeat(claimHB(0, 1), t0.Add(20*time.Millisecond))
	if l, _ := e.Leader(t0.Add(25 * time.Millisecond)); l != 0 {
		t.Fatal("preemption must not fire before the holddown")
	}
	e.OnHeartbeat(claimHB(0, 1), t0.Add(30*time.Millisecond))
	l, ok := e.Leader(t0.Add(40 * time.Millisecond))
	if !ok || l != 2 {
		t.Fatalf("leader = %v,%v; want rank-preferred 2 after holddown", l, ok)
	}
	if e.ClaimEpoch() <= 1 {
		t.Fatalf("preemptor must out-claim the incumbent's epoch, got %d", e.ClaimEpoch())
	}
}

// TestNoPreemptWhenDisabled pins that the knob defaults off: without
// Preempt, a rank-preferred node never disturbs a live incumbent (the
// classic stability property).
func TestNoPreemptWhenDisabled(t *testing.T) {
	e := New(Config{
		Self:     2,
		Peers:    []wire.NodeID{0, 1, 2},
		Interval: 10 * time.Millisecond,
		Timeout:  50 * time.Millisecond,
		Rank: func(n wire.NodeID) uint64 {
			if n == 2 {
				return 0
			}
			return uint64(n) + 1
		},
	})
	for i := 0; i < 20; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Millisecond)
		e.OnHeartbeat(claimHB(0, 1), at)
		if l, ok := e.Leader(at.Add(time.Millisecond)); !ok || l != 0 {
			t.Fatalf("step %d: leader = %v,%v; want stable incumbent 0", i, l, ok)
		}
	}
}

// TestPreemptUniqueness: only the best-ranked live member may preempt.
// Node 1 outranks the incumbent 0 but node 2 (alive) ranks even lower,
// so node 1 must never start a rival claim — no dueling preemptors.
func TestPreemptUniqueness(t *testing.T) {
	e := preemptElector(1, 2) // rank prefers 2; self is 1
	for i := 0; i < 20; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Millisecond)
		e.OnHeartbeat(claimHB(0, 1), at)
		e.OnHeartbeat(hb(2), at) // 2 is alive but slow to claim
		if l, ok := e.Leader(at.Add(time.Millisecond)); !ok || l != 0 {
			t.Fatalf("step %d: leader = %v,%v; want 0 (node 1 must defer to 2)", i, l, ok)
		}
	}
}

// TestPreemptHolddownResets: a break in the conditions (the incumbent
// becomes best-ranked again via cost gossip) must restart the holddown.
func TestPreemptHolddownResets(t *testing.T) {
	e := preemptElector(2, 2)
	e.OnHeartbeat(claimHB(0, 1), t0)
	e.Leader(t0.Add(time.Millisecond)) // conditions first observed
	// At t=20ms the incumbent gossips a lower cost than ours: break.
	e.SetCost(5)
	hbWithCost := claimHB(0, 1)
	hbWithCost.Cost = 1
	e.OnHeartbeat(hbWithCost, t0.Add(20*time.Millisecond))
	if l, _ := e.Leader(t0.Add(21 * time.Millisecond)); l != 0 {
		t.Fatal("cost-advantaged incumbent must not be preempted")
	}
	// Costs level out again at t=25ms; the holddown restarts from here,
	// so nothing may fire before t=55ms.
	e.SetCost(0)
	hbNoCost := claimHB(0, 1)
	e.OnHeartbeat(hbNoCost, t0.Add(25*time.Millisecond))
	e.Leader(t0.Add(26 * time.Millisecond))
	e.OnHeartbeat(claimHB(0, 1), t0.Add(45*time.Millisecond))
	if l, _ := e.Leader(t0.Add(50 * time.Millisecond)); l != 0 {
		t.Fatal("holddown must restart after a conditions break")
	}
	e.OnHeartbeat(claimHB(0, 1), t0.Add(55*time.Millisecond))
	if l, _ := e.Leader(t0.Add(60 * time.Millisecond)); l != 2 {
		t.Fatal("preemption must fire once the restarted holddown elapses")
	}
}

// TestCostOverridesBaseRank: gossiped placement costs are the major
// preference key — a high-ID node with the lowest cost is preferred,
// and preemption moves leadership onto it.
func TestCostOverridesBaseRank(t *testing.T) {
	e := New(Config{
		Self:         2,
		Peers:        []wire.NodeID{0, 1, 2},
		Interval:     10 * time.Millisecond,
		Timeout:      50 * time.Millisecond,
		Preempt:      true,
		PreemptAfter: 30 * time.Millisecond,
	})
	e.SetCost(10) // self: 10ms aggregate RTT
	at := func(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }
	costHB := func(from wire.NodeID, epoch uint64, cost uint32) *wire.Heartbeat {
		h := claimHB(from, epoch)
		h.Cost = cost
		return h
	}
	// Node 0 leads (boot order) but sits far from everyone: cost 90.
	// Node 1 is alive at cost 40. Self (cost 10) is globally best and
	// must take over after the holddown.
	for ms := 0; ms <= 40; ms += 10 {
		e.OnHeartbeat(costHB(0, 1, 90), at(ms))
		h := hb(1)
		h.Cost = 40
		e.OnHeartbeat(h, at(ms))
		e.Leader(at(ms + 1))
	}
	l, ok := e.Leader(at(45))
	if !ok || l != 2 {
		t.Fatalf("leader = %v,%v; want lowest-cost node 2", l, ok)
	}
}

// TestUnknownCostRanksLast: a replica gossiping no cost (0 — RTT
// placement disabled, or an empty estimator) must never out-rank the
// replicas with measured costs. Regression for the inverted default:
// an absent cost used to be the *best* possible rank, so in a mixed
// deployment preemption converged leadership onto the one replica with
// no RTT data — the opposite of the feature's intent.
func TestUnknownCostRanksLast(t *testing.T) {
	e := New(Config{
		Self:         2,
		Peers:        []wire.NodeID{0, 1, 2},
		Interval:     10 * time.Millisecond,
		Timeout:      50 * time.Millisecond,
		Preempt:      true,
		PreemptAfter: 30 * time.Millisecond,
	})
	e.SetCost(10) // self measures: 10ms aggregate RTT bucket
	at := func(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }
	// Node 0 leads from boot order but gossips no cost (placement off);
	// node 1 measures 40. The best-measured member — self — must
	// preempt the non-measuring incumbent after the holddown.
	for ms := 0; ms <= 40; ms += 10 {
		e.OnHeartbeat(claimHB(0, 1), at(ms)) // Cost zero: unknown
		h := hb(1)
		h.Cost = 40
		e.OnHeartbeat(h, at(ms))
		e.Leader(at(ms + 1))
	}
	l, ok := e.Leader(at(45))
	if !ok || l != 2 {
		t.Fatalf("leader = %v,%v; want measuring node 2, not the cost-blind incumbent", l, ok)
	}
}

// TestZeroCostsDegenerateToBaseRank pins byte-compat of the composed
// rank: with no costs gossiped anywhere, rank order is exactly the base
// rank order (here rank-by-ID).
func TestZeroCostsDegenerateToBaseRank(t *testing.T) {
	e := New(Config{
		Self:     0,
		Peers:    []wire.NodeID{0, 1, 2},
		Interval: 10 * time.Millisecond,
		Timeout:  50 * time.Millisecond,
		Preempt:  true,
	})
	e.OnHeartbeat(hb(1), t0)
	e.OnHeartbeat(hb(2), t0)
	l, ok := e.Leader(t0.Add(time.Millisecond))
	if !ok || l != 0 {
		t.Fatalf("leader = %v,%v; want lowest ID with all-zero costs", l, ok)
	}
}
