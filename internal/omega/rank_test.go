package omega

import (
	"testing"
	"time"

	"gridrep/internal/shard"
	"gridrep/internal/wire"
)

// rankedElector builds an elector whose leader preference follows the
// sharded rotation for group g over 3 members (DESIGN.md §13): group g's
// preferred leader is replica g mod 3.
func rankedElector(self wire.NodeID, g uint32) *Elector {
	return New(Config{
		Self:     self,
		Peers:    []wire.NodeID{0, 1, 2},
		Interval: 10 * time.Millisecond,
		Timeout:  50 * time.Millisecond,
		Rank:     shard.LeaderRank(g, 3),
	})
}

// TestRankPreferredNodeClaims: under the group-1 rotation, replica 1 is
// rank 0 and must self-claim once it hears a peer — the role node 0
// plays in the unranked elector.
func TestRankPreferredNodeClaims(t *testing.T) {
	e := rankedElector(1, 1)
	e.OnHeartbeat(hb(0), t0)
	l, ok := e.Leader(t0.Add(time.Millisecond))
	if !ok || l != 1 {
		t.Fatalf("leader = %v,%v; want self-claim by preferred replica 1", l, ok)
	}
}

// TestRankNonPreferredWaits: replica 0 — the unranked winner — must NOT
// claim group 1's leadership while the preferred replica is alive.
func TestRankNonPreferredWaits(t *testing.T) {
	e := rankedElector(0, 1)
	e.OnHeartbeat(hb(1), t0)
	if _, ok := e.Leader(t0.Add(time.Millisecond)); ok {
		t.Fatal("replica 0 must wait for group 1's preferred replica to claim")
	}
	// Once the preferred replica goes silent past Timeout, the
	// next-ranked one takes over.
	l, ok := e.Leader(t0.Add(100 * time.Millisecond))
	if !ok || l != 0 {
		t.Fatalf("leader after preferred silence = %v,%v; want 0 (rank 2, only live)", l, ok)
	}
}

// TestRankTieBreakInClaimWar: simultaneous claims at the same epoch
// resolve to the better-ranked claimant, not the lower ID.
func TestRankTieBreakInClaimWar(t *testing.T) {
	e := rankedElector(0, 2) // group 2: preference order 2, 0, 1
	e.OnHeartbeat(claimHB(1, 5), t0)
	e.OnHeartbeat(claimHB(2, 5), t0)
	l, ok := e.Leader(t0.Add(time.Millisecond))
	if !ok || l != 2 {
		t.Fatalf("leader = %v,%v; want best-ranked claimant 2", l, ok)
	}
}

// TestNilRankIsByID: the default rank must reproduce the classic
// lowest-ID-leads order exactly — with no costs gossiped every node
// sits at the same (unknown) cost and the ID is the deciding key.
func TestNilRankIsByID(t *testing.T) {
	e := newElector(0)
	if got := e.rank(7) & (1<<costBits - 1); got != 7 {
		t.Fatalf("nil Rank: base of rank(7) = %d, want identity", got)
	}
	for id := wire.NodeID(1); id < 8; id++ {
		if e.rank(id-1) >= e.rank(id) {
			t.Fatalf("nil Rank: rank(%d)=%d !< rank(%d)=%d — lowest ID must lead",
				id-1, e.rank(id-1), id, e.rank(id))
		}
	}
}
