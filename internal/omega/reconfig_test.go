package omega

import (
	"testing"
	"time"

	"gridrep/internal/wire"
)

// newLearner returns an elector for node 3 watching a voter set it does
// not belong to — the Ω view of a joining learner (DESIGN.md §12).
func newLearner() *Elector {
	return New(Config{
		Self:     3,
		Peers:    []wire.NodeID{0, 1, 2},
		Interval: 10 * time.Millisecond,
		Timeout:  50 * time.Millisecond,
	})
}

func TestLearnerNeverSelfClaims(t *testing.T) {
	e := newLearner()
	// The learner hears the voters once, then they all go silent far
	// past the failure timeout. A voter in this position would
	// self-claim; the learner must not, no matter how long it waits.
	for _, p := range []wire.NodeID{0, 1, 2} {
		e.OnHeartbeat(hb(p), t0)
	}
	for i := 1; i <= 20; i++ {
		now := t0.Add(time.Duration(i) * 50 * time.Millisecond)
		if l, ok := e.Leader(now); ok && l == 3 {
			t.Fatalf("learner self-claimed leadership at %v", now)
		}
	}
	if e.ClaimEpoch() != 0 {
		t.Fatal("learner must never start a claim")
	}
}

func TestLearnerAdoptsVoterClaim(t *testing.T) {
	e := newLearner()
	e.OnHeartbeat(claimHB(0, 1), t0)
	l, ok := e.Leader(t0.Add(time.Millisecond))
	if !ok || l != 0 {
		t.Fatalf("leader = %v,%v; want 0,true (learner tracks voter claims)", l, ok)
	}
}

func TestSetPeersEntitlesPromotedVoter(t *testing.T) {
	e := newLearner()
	for _, p := range []wire.NodeID{0, 1, 2} {
		e.OnHeartbeat(hb(p), t0)
	}
	// Promotion commits: node 3 becomes a voter. With every other voter
	// dead it is now the smallest live member and must claim.
	e.SetPeers([]wire.NodeID{0, 1, 2, 3})
	l, ok := e.Leader(t0.Add(500 * time.Millisecond))
	if !ok || l != 3 {
		t.Fatalf("leader = %v,%v; want self-claim by promoted voter 3", l, ok)
	}
	if e.ClaimEpoch() == 0 {
		t.Fatal("promoted voter must be claiming")
	}
}

func TestSetPeersWithdrawsRemovedSelfClaim(t *testing.T) {
	e := newElector(0)
	e.OnHeartbeat(hb(1), t0)
	if l, ok := e.Leader(t0.Add(time.Millisecond)); !ok || l != 0 {
		t.Fatalf("setup: node 0 should claim, got %v,%v", l, ok)
	}
	// Node 0 is removed from the configuration: its claim must be
	// withdrawn immediately, not time out.
	e.SetPeers([]wire.NodeID{1, 2})
	if l, ok := e.Leader(t0.Add(2 * time.Millisecond)); ok && l == 0 {
		t.Fatal("removed node kept its leadership claim")
	}
	if e.ClaimEpoch() != 0 {
		t.Fatal("removed node must stop claiming")
	}
}

func TestSetPeersDropsRemovedPeerClaim(t *testing.T) {
	e := newElector(2)
	e.OnHeartbeat(claimHB(0, 1), t0)
	if l, ok := e.Leader(t0.Add(time.Millisecond)); !ok || l != 0 {
		t.Fatalf("setup: leader = %v,%v; want 0", l, ok)
	}
	// Node 0 is removed: its stored claim is dropped so it cannot stay
	// leader on the strength of a pre-removal heartbeat.
	e.SetPeers([]wire.NodeID{1, 2})
	e.OnHeartbeat(hb(1), t0.Add(2*time.Millisecond))
	if l, ok := e.Leader(t0.Add(3 * time.Millisecond)); ok && l == 0 {
		t.Fatal("removed peer still considered leader")
	}
}
