package omega

import (
	"testing"
	"time"

	"gridrep/internal/wire"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newElector(self wire.NodeID) *Elector {
	return New(Config{
		Self:     self,
		Peers:    []wire.NodeID{0, 1, 2},
		Interval: 10 * time.Millisecond,
		Timeout:  50 * time.Millisecond,
	})
}

// hb builds a plain (non-claiming) heartbeat.
func hb(from wire.NodeID) *wire.Heartbeat { return &wire.Heartbeat{From: from, Leader: from + 100} }

// claimHB builds a heartbeat claiming leadership at the given epoch.
func claimHB(from wire.NodeID, epoch uint64) *wire.Heartbeat {
	return &wire.Heartbeat{From: from, Leader: from, Epoch: epoch}
}

func TestStartupGraceNonMin(t *testing.T) {
	e := newElector(1)
	if _, ok := e.Leader(t0); ok {
		t.Fatal("no leader should exist before any heartbeat")
	}
	// Node 0 is alive but not claiming yet: node 1 must keep waiting
	// rather than racing it.
	e.OnHeartbeat(hb(0), t0.Add(5*time.Millisecond))
	if _, ok := e.Leader(t0.Add(6 * time.Millisecond)); ok {
		t.Fatal("node 1 must wait for the smaller live node to claim")
	}
	// Once node 0 claims, node 1 adopts it.
	e.OnHeartbeat(claimHB(0, 1), t0.Add(10*time.Millisecond))
	l, ok := e.Leader(t0.Add(11 * time.Millisecond))
	if !ok || l != 0 {
		t.Fatalf("leader = %v,%v; want 0,true", l, ok)
	}
}

func TestMinNodeClaimsAfterHearingPeers(t *testing.T) {
	e := newElector(0)
	e.OnHeartbeat(hb(1), t0)
	l, ok := e.Leader(t0.Add(time.Millisecond))
	if !ok || l != 0 {
		t.Fatalf("leader = %v,%v; want self-claim by 0", l, ok)
	}
	if e.ClaimEpoch() == 0 {
		t.Fatal("node 0 must be claiming")
	}
}

func TestSelfElectionAfterGrace(t *testing.T) {
	e := newElector(1)
	e.Leader(t0) // starts the clock; total silence follows
	l, ok := e.Leader(t0.Add(60 * time.Millisecond))
	if !ok || l != 1 {
		t.Fatalf("leader = %v,%v; want self-election of 1", l, ok)
	}
}

func TestSingleNodeClusterElectsImmediately(t *testing.T) {
	e := New(Config{Self: 0, Peers: []wire.NodeID{0}, Interval: time.Millisecond, Timeout: 5 * time.Millisecond})
	l, ok := e.Leader(t0)
	if !ok || l != 0 {
		t.Fatalf("singleton cluster must elect itself at once, got %v,%v", l, ok)
	}
}

func TestFailoverOnTimeout(t *testing.T) {
	e := newElector(1)
	e.OnHeartbeat(claimHB(0, 1), t0)
	if l, _ := e.Leader(t0.Add(time.Millisecond)); l != 0 {
		t.Fatal("node 0 should lead initially")
	}
	changes := e.Epoch()
	// Node 0 goes silent; after Timeout node 1 takes over with a higher
	// claim epoch.
	l, ok := e.Leader(t0.Add(100 * time.Millisecond))
	if !ok || l != 1 {
		t.Fatalf("leader after timeout = %v,%v; want 1,true", l, ok)
	}
	if e.ClaimEpoch() <= 1 {
		t.Fatalf("new claim epoch %d must exceed the dead leader's", e.ClaimEpoch())
	}
	if e.Epoch() == changes {
		t.Error("change counter must advance on leadership change")
	}
}

func TestStickinessOverRank(t *testing.T) {
	// §3.6 stability: when node 0 recovers after node 1 took over,
	// leadership must NOT bounce back while node 1 is alive.
	e := newElector(1)
	e.OnHeartbeat(claimHB(0, 1), t0)
	e.Leader(t0.Add(time.Millisecond))               // 0 leads
	l, _ := e.Leader(t0.Add(100 * time.Millisecond)) // 0 timed out; 1 claims
	if l != 1 {
		t.Fatalf("precondition failed: leader = %v", l)
	}
	// Node 0 recovers. A fresh process does not claim (it sees 1's
	// fresh claim), so it sends plain heartbeats.
	e.OnHeartbeat(hb(0), t0.Add(110*time.Millisecond))
	l, _ = e.Leader(t0.Add(111 * time.Millisecond))
	if l != 1 {
		t.Fatalf("leadership bounced to %v; stickiness requires 1", l)
	}
}

func TestRecoveredNodeAdoptsIncumbent(t *testing.T) {
	// The recovered min-ID node itself: it must adopt the incumbent's
	// claim instead of claiming.
	e := newElector(0)
	e.OnHeartbeat(claimHB(1, 5), t0)
	l, ok := e.Leader(t0.Add(time.Millisecond))
	if !ok || l != 1 {
		t.Fatalf("leader = %v,%v; want the incumbent 1", l, ok)
	}
	if e.ClaimEpoch() != 0 {
		t.Fatal("node 0 must not start a rival claim")
	}
}

func TestClaimWarConvergence(t *testing.T) {
	// Two simultaneous equal-epoch claims: lowest ID wins and the loser
	// yields its claim.
	e := newElector(1)
	e.Leader(t0)
	e.Leader(t0.Add(60 * time.Millisecond)) // 1 self-elects, epoch 1
	if e.ClaimEpoch() != 1 {
		t.Fatalf("claim epoch = %d", e.ClaimEpoch())
	}
	e.OnHeartbeat(claimHB(0, 1), t0.Add(61*time.Millisecond))
	l, _ := e.Leader(t0.Add(62 * time.Millisecond))
	if l != 0 {
		t.Fatalf("equal-epoch tie must go to the lower ID; leader = %v", l)
	}
	if e.ClaimEpoch() != 0 {
		t.Fatal("losing claimer must yield")
	}
}

func TestHigherEpochBeatsLowerID(t *testing.T) {
	e := newElector(2)
	e.OnHeartbeat(claimHB(0, 1), t0)
	e.OnHeartbeat(claimHB(1, 7), t0)
	l, _ := e.Leader(t0.Add(time.Millisecond))
	if l != 1 {
		t.Fatalf("leader = %v; claim epochs must dominate IDs", l)
	}
}

func TestSuspectForcesSwitch(t *testing.T) {
	e := newElector(1)
	e.OnHeartbeat(claimHB(0, 1), t0)
	e.Leader(t0.Add(time.Millisecond))
	e.Suspect(0)
	l, ok := e.Leader(t0.Add(2 * time.Millisecond))
	if !ok || l != 1 {
		t.Fatalf("after Suspect(0), leader = %v,%v; want 1", l, ok)
	}
	// Heartbeats from the suspected node are ignored within the window:
	// leadership stays with 1.
	e.OnHeartbeat(claimHB(0, 1), t0.Add(3*time.Millisecond))
	if l, _ := e.Leader(t0.Add(4 * time.Millisecond)); l != 1 {
		t.Fatalf("leader = %v; suspicion window must hold", l)
	}
	// After the window passes, node 0's (old-epoch) claim still loses
	// to node 1's newer claim — stability.
	later := t0.Add(200 * time.Millisecond)
	e.OnHeartbeat(claimHB(0, 1), later)
	e.OnHeartbeat(hb(2), later) // keep somebody else alive too
	if l, _ := e.Leader(later.Add(time.Millisecond)); l != 1 {
		t.Fatalf("leader = %v; old claim must not beat the incumbent", l)
	}
}

func TestSuspectSelfDemotes(t *testing.T) {
	e := newElector(1)
	e.Leader(t0)
	e.Leader(t0.Add(60 * time.Millisecond)) // self-claim
	if e.ClaimEpoch() == 0 {
		t.Fatal("precondition: should be claiming")
	}
	e.Suspect(1)
	if e.ClaimEpoch() != 0 {
		t.Fatal("Suspect(self) must withdraw the claim")
	}
}

func TestTickCadenceAndClaimCarrying(t *testing.T) {
	e := newElector(0)
	first := e.Tick(t0)
	if first == nil {
		t.Fatal("first Tick must emit a heartbeat")
	}
	if e.Tick(t0.Add(5*time.Millisecond)) != nil {
		t.Fatal("Tick before Interval must not emit")
	}
	// Hear a peer so node 0 claims; the next heartbeat must carry the
	// claim.
	e.OnHeartbeat(hb(1), t0.Add(6*time.Millisecond))
	hb2 := e.Tick(t0.Add(11 * time.Millisecond))
	if hb2 == nil {
		t.Fatal("Tick after Interval must emit")
	}
	if hb2.Leader != 0 || hb2.Epoch == 0 {
		t.Fatalf("claiming node's heartbeat = %+v; want Leader=0, Epoch>0", hb2)
	}
}

func TestTickCarriesLeaderHintWithoutClaim(t *testing.T) {
	e := newElector(1)
	e.OnHeartbeat(claimHB(0, 3), t0)
	hb := e.Tick(t0.Add(time.Millisecond))
	if hb == nil || hb.Leader != 0 {
		t.Fatalf("heartbeat = %+v; want leader hint 0", hb)
	}
	if hb.Epoch != 0 {
		t.Fatal("non-claimer must not stamp a claim epoch")
	}
}

func TestIgnoresOwnHeartbeat(t *testing.T) {
	e := newElector(1)
	e.OnHeartbeat(hb(1), t0)
	if _, ok := e.Leader(t0.Add(time.Millisecond)); ok {
		t.Fatal("own heartbeat must not end the startup grace period")
	}
}

func TestChangesMonotonic(t *testing.T) {
	e := newElector(1)
	e.OnHeartbeat(claimHB(0, 1), t0)
	var last uint64
	for _, d := range []time.Duration{time.Millisecond, 100 * time.Millisecond} {
		e.Leader(t0.Add(d))
		if e.Epoch() < last {
			t.Fatal("change counter regressed")
		}
		last = e.Epoch()
	}
}

func TestAllDeadThenSelfClaim(t *testing.T) {
	e := newElector(2)
	e.OnHeartbeat(claimHB(0, 1), t0)
	e.OnHeartbeat(hb(1), t0)
	if l, _ := e.Leader(t0.Add(time.Millisecond)); l != 0 {
		t.Fatal("0 should lead")
	}
	// Everyone times out: node 2 claims with a higher epoch.
	l, ok := e.Leader(t0.Add(200 * time.Millisecond))
	if !ok || l != 2 {
		t.Fatalf("leader = %v,%v; want 2", l, ok)
	}
	if e.ClaimEpoch() <= 1 {
		t.Fatalf("claim epoch = %d; must exceed the dead claim", e.ClaimEpoch())
	}
}

func TestDemote(t *testing.T) {
	e := newElector(1)
	e.Leader(t0)
	e.Leader(t0.Add(60 * time.Millisecond))
	e.Demote()
	if e.ClaimEpoch() != 0 {
		t.Fatal("Demote must clear the claim")
	}
	if l, ok := e.Leader(t0.Add(61 * time.Millisecond)); ok && l == 1 {
		// Re-claiming immediately is allowed (still entitled as min
		// alive), but only via a fresh epoch.
		if e.ClaimEpoch() < 2 {
			t.Fatalf("re-claim must use a fresh epoch, got %d", e.ClaimEpoch())
		}
	}
}

func TestPeerDownForcesImmediateSwitch(t *testing.T) {
	e := newElector(1)
	e.OnHeartbeat(claimHB(0, 1), t0)
	l, ok := e.Leader(t0.Add(time.Millisecond))
	if !ok || l != 0 {
		t.Fatalf("leader = %v,%v; want 0,true", l, ok)
	}
	// Socket-level death of the leader: no timeout wait, the claim and
	// liveness credit vanish at once and node 1 takes over (node 2 is
	// also down, so node 1 is the smallest live node).
	e.PeerDown(0, t0.Add(2*time.Millisecond))
	l, ok = e.Leader(t0.Add(3 * time.Millisecond))
	if !ok || l != 1 {
		t.Fatalf("after PeerDown leader = %v,%v; want 1,true", l, ok)
	}
}

func TestPeerDownRetrustsOnReconnect(t *testing.T) {
	e := newElector(1)
	e.OnHeartbeat(claimHB(0, 1), t0)
	e.Leader(t0.Add(time.Millisecond))
	e.PeerDown(0, t0.Add(2*time.Millisecond))
	// Unlike Suspect, a fresh heartbeat right after the reconnect is
	// believed immediately: node 0's claim stands again.
	e.OnHeartbeat(claimHB(0, 2), t0.Add(3*time.Millisecond))
	l, ok := e.Leader(t0.Add(4 * time.Millisecond))
	if !ok || l != 0 {
		t.Fatalf("after reconnect leader = %v,%v; want 0,true", l, ok)
	}
}

func TestPeerUpCountsAsLiveness(t *testing.T) {
	e := newElector(0)
	e.PeerUp(1, t0)
	// Node 0 heard evidence of a peer, so after its own claim it leads.
	l, ok := e.Leader(t0.Add(time.Millisecond))
	if !ok || l != 0 {
		t.Fatalf("leader = %v,%v; want 0,true", l, ok)
	}
	if !e.alive(1, t0.Add(time.Millisecond)) {
		t.Fatal("PeerUp must grant liveness credit")
	}
}

func TestPeerDownSelfIgnored(t *testing.T) {
	e := newElector(0)
	e.OnHeartbeat(hb(1), t0)
	e.Leader(t0.Add(time.Millisecond))
	e.PeerDown(0, t0.Add(2*time.Millisecond)) // self: no-op
	l, ok := e.Leader(t0.Add(3 * time.Millisecond))
	if !ok || l != 0 {
		t.Fatalf("leader = %v,%v; want 0,true", l, ok)
	}
}
