// Package omega implements the leader-election service the paper assumes
// (§3.1: "we assume that there is an underlying leader election service").
//
// The elector is a heartbeat-based Ω failure detector with *claim-based
// stability*, following the leader-stability line of work the paper cites
// in §3.6 (Malkhi, Oprea, Zhou — DISC 2005). A node that decides to lead
// starts broadcasting a leadership claim stamped with an epoch one higher
// than any epoch it has observed. Among fresh claims from live nodes, the
// highest epoch wins (ties break to the lowest node ID), and a losing
// claimer stops claiming. This gives both properties the replication
// protocol needs:
//
//   - stability: a live incumbent keeps its leadership even when a
//     smaller-ID node recovers, because the recovering node sees the
//     incumbent's fresh claim and never starts a rival claim; and
//   - convergence: any two simultaneous claimers order themselves by
//     (epoch, ID) and one of them deterministically yields.
//
// Deployments that express a placement preference (a Rank rotation for
// sharded groups, or an RTT-derived cost) can additionally enable
// *rank preemption* (Config.Preempt): the best-ranked live member
// deposes a worse-ranked incumbent by starting a fresh higher-epoch
// claim after a holddown. Without it, placement is a boot-order
// artifact — epoch-priority claims let whichever entitled replica
// claims first keep the group forever. Preemption is off by default,
// preserving the classic stability property exactly.
//
// The elector owns no goroutine and no clock: the replica's event loop
// feeds it received heartbeats and periodic ticks with an explicit
// timestamp, which makes elections deterministic under test.
package omega

import (
	"time"

	"gridrep/internal/wire"
)

// Config parameterizes an elector.
type Config struct {
	// Self is the local replica.
	Self wire.NodeID
	// Peers lists all replicas, including Self.
	Peers []wire.NodeID
	// Interval is the heartbeat broadcast period.
	Interval time.Duration
	// Timeout is how long a silent peer stays trusted, and how long a
	// claim stays fresh. It must exceed Interval plus the largest
	// expected one-way delay.
	Timeout time.Duration
	// Rank orders nodes for leader preference: wherever the elector
	// breaks ties or picks an entitled claimer, the node with the lowest
	// rank wins. Nil means rank-by-ID, the classic "lowest ID leads"
	// rule. Sharded deployments rotate ranks per group so group g
	// prefers replica g mod n (DESIGN.md §13); all replicas must use the
	// same Rank for a given group or elections may not converge.
	Rank func(wire.NodeID) uint64
	// Preempt lets the best-ranked live member depose a worse-ranked
	// incumbent (DESIGN.md §16). Rank alone only breaks ties between
	// simultaneous claims; with epoch-priority claims, whichever entitled
	// replica claims first otherwise keeps leadership forever, making
	// placement a boot-order artifact. With Preempt set, a member that
	// (a) ranks strictly below the incumbent, (b) is the best-ranked
	// live member overall — so at most one node ever preempts — and
	// (c) has observed both conditions continuously for PreemptAfter,
	// starts a fresh claim at maxEpoch+1; the incumbent yields by the
	// normal convergence rule. Off by default: the classic stability
	// property (an incumbent survives the recovery of a better-ranked
	// node) is preserved exactly.
	Preempt bool
	// PreemptAfter is the holddown before a rank preemption fires.
	// Zero means Timeout. It damps flapping when ranks shift (e.g. an
	// RTT-derived cost settling after boot): conditions must hold for a
	// full window before leadership moves.
	PreemptAfter time.Duration
}

type claim struct {
	epoch uint64
	at    time.Time
}

// Elector tracks peer liveness and leadership claims.
type Elector struct {
	cfg      Config
	start    time.Time
	started  bool
	lastSeen map[wire.NodeID]time.Time
	suspend  map[wire.NodeID]time.Time // distrust until this instant
	claims   map[wire.NodeID]claim
	lastSent time.Time
	sentAny  bool
	heardAny bool

	myClaim  bool
	myEpoch  uint64
	maxEpoch uint64 // highest claim epoch observed anywhere

	// preemptSince is when the rank-preemption conditions (see
	// Config.Preempt) were first continuously observed; zero when they
	// do not currently hold.
	preemptSince time.Time

	// myCost and costs carry the gossiped placement costs (SetCost,
	// Heartbeat.Cost). A cost prefixes the configured rank
	// lexicographically: lower cost wins, Rank breaks ties. Zero is the
	// "unknown / placement off" sentinel and ranks behind every measured
	// cost (see costUnknown); all zero — the default when RTT placement
	// is off — degenerates to pure Rank.
	myCost uint32
	costs  map[wire.NodeID]uint32

	leader    wire.NodeID
	hasLeader bool
	changes   uint64 // leadership transitions observed locally
}

// New returns an elector. Call Tick regularly (at least every Interval)
// and OnHeartbeat for every received heartbeat.
func New(cfg Config) *Elector {
	return &Elector{
		cfg:      cfg,
		lastSeen: make(map[wire.NodeID]time.Time),
		suspend:  make(map[wire.NodeID]time.Time),
		claims:   make(map[wire.NodeID]claim),
		costs:    make(map[wire.NodeID]uint32),
	}
}

// SetPeers replaces the participant set after a committed configuration
// change. Peers need not include Self: a learner (or a removed node)
// tracks the voters' claims but is not entitled to start one — the
// entitlement rule in Leader only considers membership. Claims from
// nodes no longer in the set are dropped so a removed node cannot stay
// leader.
func (e *Elector) SetPeers(peers []wire.NodeID) {
	e.cfg.Peers = append([]wire.NodeID(nil), peers...)
	in := make(map[wire.NodeID]bool, len(peers))
	for _, p := range peers {
		in[p] = true
	}
	for n := range e.claims {
		if !in[n] {
			delete(e.claims, n)
		}
	}
	for n := range e.costs {
		if !in[n] {
			delete(e.costs, n)
		}
	}
	if !in[e.cfg.Self] {
		e.Demote()
	}
	if e.hasLeader && !in[e.leader] {
		e.hasLeader = false
	}
}

// isMember reports whether Self is in the current participant set.
func (e *Elector) isMember() bool {
	for _, p := range e.cfg.Peers {
		if p == e.cfg.Self {
			return true
		}
	}
	return false
}

// OnHeartbeat records a peer's heartbeat. A heartbeat whose Leader field
// names the sender and whose Epoch is nonzero is a leadership claim.
func (e *Elector) OnHeartbeat(hb *wire.Heartbeat, now time.Time) {
	e.noteStart(now)
	if hb.From == e.cfg.Self {
		return
	}
	if until, susp := e.suspend[hb.From]; susp {
		if now.Before(until) {
			return // still in the suspicion window: distrust entirely
		}
		delete(e.suspend, hb.From)
	}
	if cur, ok := e.lastSeen[hb.From]; !ok || cur.Before(now) {
		e.lastSeen[hb.From] = now
	}
	e.heardAny = true
	if hb.Leader == hb.From && hb.Epoch > 0 {
		e.claims[hb.From] = claim{epoch: hb.Epoch, at: now}
		if hb.Epoch > e.maxEpoch {
			e.maxEpoch = hb.Epoch
		}
	}
	if hb.Cost != e.costs[hb.From] {
		e.costs[hb.From] = hb.Cost
	}
}

// SetCost records this node's self-measured placement cost (an
// RTT-derived bucket; 0 = none/unknown, which ranks behind every
// measured cost). It is gossiped on every heartbeat this elector
// emits, so all observers rank this node the same way: effective rank
// is (cost, Rank) lexicographic.
func (e *Elector) SetCost(c uint32) { e.myCost = c }

// Cost returns the node's own placement cost (for heartbeat stamping
// and introspection).
func (e *Elector) Cost() uint32 { return e.myCost }

// Observe records liveness evidence from any protocol message: under
// load, heartbeats queue behind bulk protocol traffic, and without this
// a saturated (but healthy) leader would be falsely suspected.
func (e *Elector) Observe(from wire.NodeID, now time.Time) {
	e.noteStart(now)
	if from == e.cfg.Self {
		return
	}
	if until, susp := e.suspend[from]; susp {
		if now.Before(until) {
			return
		}
		delete(e.suspend, from)
	}
	if cur, ok := e.lastSeen[from]; !ok || cur.Before(now) {
		e.lastSeen[from] = now
	}
	e.heardAny = true
}

func (e *Elector) noteStart(now time.Time) {
	if !e.started {
		e.started = true
		e.start = now
	}
}

// Suspect distrusts a node for one Timeout window: its heartbeats are
// ignored until the window passes. Failure injection and tests use it to
// force leader switches (§3.6).
func (e *Elector) Suspect(n wire.NodeID) {
	if n == e.cfg.Self {
		e.Demote()
		return
	}
	now := e.lastSeen[n]
	if e.started && e.start.After(now) {
		now = e.start
	}
	e.suspend[n] = now.Add(e.cfg.Timeout)
	delete(e.lastSeen, n)
	delete(e.claims, n)
	if e.hasLeader && e.leader == n {
		e.hasLeader = false
	}
}

// PeerDown records transport-level evidence that the link to n died (a
// socket error or missed transport heartbeat). Unlike Suspect, it opens
// no distrust window: the peer's liveness credit and claim are revoked
// immediately, but the first heartbeat after a reconnect re-trusts it.
// This is how real socket failures — not just missing Ω heartbeats —
// drive the §3.6 leader switches on the TCP deployment.
func (e *Elector) PeerDown(n wire.NodeID, now time.Time) {
	e.noteStart(now)
	if n == e.cfg.Self {
		return
	}
	delete(e.lastSeen, n)
	delete(e.claims, n)
	if e.hasLeader && e.leader == n {
		e.hasLeader = false
	}
}

// PeerUp records transport-level evidence that the link to n was
// (re-)established; it counts as plain liveness evidence.
func (e *Elector) PeerUp(n wire.NodeID, now time.Time) { e.Observe(n, now) }

// Demote withdraws the local leadership claim (if any); another claimer,
// or the min-alive rule, takes over.
func (e *Elector) Demote() {
	if e.myClaim {
		e.myClaim = false
		if e.hasLeader && e.leader == e.cfg.Self {
			e.hasLeader = false
		}
	}
}

// costBits is how much of the effective rank the base Rank occupies;
// the gossiped cost is shifted above it. Node IDs stay below
// wire.ClientIDBase (1<<16) and shard.LeaderRank maps into the same
// range, so 20 bits never clips a real base rank.
const costBits = 20

// costUnknown is the effective cost of a node gossiping cost 0 — the
// wire sentinel for "unknown / RTT placement off" (wire.Heartbeat.Cost).
// It sits strictly above every expressible measured cost, so a replica
// with no RTT data ranks behind every replica that has some: in a mixed
// deployment (placement enabled on some replicas only) leadership
// converges onto a measuring replica, never onto the one flying blind.
// This mirrors core's own convention (placementCostUnknown) that
// unknown ranks last; core never emits 0 for a genuine measurement
// (buckets are offset by one), so the sentinel cannot collide with a
// sub-millisecond RTT.
const costUnknown = uint64(1) << 32

// rank applies the configured leader-preference order: the gossiped
// placement cost is the major key, the configured Rank (or node ID)
// breaks ties. With no costs gossiped — the default — every node sits
// at costUnknown, and the order is exactly the base rank.
func (e *Elector) rank(n wire.NodeID) uint64 {
	base := uint64(n)
	if e.cfg.Rank != nil {
		base = e.cfg.Rank(n)
	}
	if base >= 1<<costBits {
		base = 1<<costBits - 1
	}
	cost := uint64(e.costs[n])
	if n == e.cfg.Self {
		cost = uint64(e.myCost)
	}
	if cost == 0 {
		cost = costUnknown
	}
	return cost<<costBits | base
}

// alive reports whether n responded within the timeout. Self is always
// alive.
func (e *Elector) alive(n wire.NodeID, now time.Time) bool {
	if n == e.cfg.Self {
		return true
	}
	seen, ok := e.lastSeen[n]
	return ok && now.Sub(seen) <= e.cfg.Timeout
}

// Alive reports whether n responded within the timeout (Self is always
// alive). The leader uses it to refuse membership changes that would
// drop the live voter count below the new configuration's quorum.
func (e *Elector) Alive(n wire.NodeID, now time.Time) bool { return e.alive(n, now) }

// Leader returns the current leader. The boolean is false when no live
// claim exists and this node is not entitled to start one.
func (e *Elector) Leader(now time.Time) (wire.NodeID, bool) {
	e.noteStart(now)

	// Collect fresh claims from live nodes, including our own.
	best := e.cfg.Self
	bestEpoch := uint64(0)
	found := false
	consider := func(n wire.NodeID, epoch uint64) {
		if !found || epoch > bestEpoch || (epoch == bestEpoch && e.rank(n) < e.rank(best)) {
			best, bestEpoch, found = n, epoch, true
		}
	}
	if e.myClaim {
		consider(e.cfg.Self, e.myEpoch)
	}
	for n, c := range e.claims {
		if now.Sub(c.at) <= e.cfg.Timeout && e.alive(n, now) {
			consider(n, c.epoch)
		}
	}

	if found {
		if best != e.cfg.Self && e.myClaim {
			// A stronger claim exists: yield (convergence).
			e.myClaim = false
		}
		if best != e.cfg.Self && e.shouldPreempt(best, now) {
			// Rank preemption (Config.Preempt): out-claim the
			// worse-ranked incumbent; everyone — incumbent included —
			// converges on the higher epoch.
			e.preemptSince = time.Time{}
			e.myClaim = true
			e.myEpoch = e.maxEpoch + 1
			e.maxEpoch = e.myEpoch
			e.setLeader(e.cfg.Self)
			return e.cfg.Self, true
		}
		if best == e.cfg.Self {
			e.preemptSince = time.Time{}
		}
		e.setLeader(best)
		return best, true
	}
	e.preemptSince = time.Time{}

	// No live claim anywhere. During the startup grace period, wait for
	// one rather than racing to self-elect.
	if !e.heardAny && now.Sub(e.start) < e.cfg.Timeout && len(e.cfg.Peers) > 1 {
		e.hasLeader = false
		return 0, false
	}

	// Entitlement rule: only the lowest-ranked live *member* starts a
	// new claim. A learner or removed node is never entitled, no matter
	// its rank: it waits for the voters to elect among themselves.
	if !e.isMember() {
		e.hasLeader = false
		return 0, false
	}
	min := e.cfg.Self
	for _, p := range e.cfg.Peers {
		if e.alive(p, now) && e.rank(p) < e.rank(min) {
			min = p
		}
	}
	if min != e.cfg.Self {
		// Someone smaller is alive but not claiming yet; wait for it.
		e.hasLeader = false
		return 0, false
	}
	e.myClaim = true
	e.myEpoch = e.maxEpoch + 1
	e.maxEpoch = e.myEpoch
	e.setLeader(e.cfg.Self)
	return e.cfg.Self, true
}

// shouldPreempt reports whether this node should depose the incumbent
// leader right now. All three preemption conditions (enabled+member,
// strictly better rank than the incumbent, best-ranked live member
// overall) must hold continuously for the holddown window; any break
// resets the clock.
func (e *Elector) shouldPreempt(incumbent wire.NodeID, now time.Time) bool {
	if !e.cfg.Preempt || !e.isMember() {
		return false
	}
	self := e.rank(e.cfg.Self)
	if self >= e.rank(incumbent) {
		e.preemptSince = time.Time{}
		return false
	}
	// Uniqueness: only the best-ranked live member preempts, so two
	// nodes that both outrank the incumbent never duel.
	for _, p := range e.cfg.Peers {
		if p != e.cfg.Self && e.alive(p, now) && e.rank(p) < self {
			e.preemptSince = time.Time{}
			return false
		}
	}
	if e.preemptSince.IsZero() {
		e.preemptSince = now
		return false
	}
	hold := e.cfg.PreemptAfter
	if hold <= 0 {
		hold = e.cfg.Timeout
	}
	return now.Sub(e.preemptSince) >= hold
}

func (e *Elector) setLeader(n wire.NodeID) {
	if !e.hasLeader || e.leader != n {
		e.leader = n
		e.hasLeader = true
		e.changes++
	}
}

// Epoch counts leadership changes observed locally.
func (e *Elector) Epoch() uint64 { return e.changes }

// ClaimEpoch returns the epoch of the local claim (0 when not claiming).
func (e *Elector) ClaimEpoch() uint64 {
	if !e.myClaim {
		return 0
	}
	return e.myEpoch
}

// Tick advances the elector's periodic work. It returns a heartbeat to
// broadcast if the heartbeat interval has elapsed, else nil. The
// heartbeat carries the local claim (Leader=self, Epoch=claim epoch) when
// this node is claiming leadership, or a plain leader hint otherwise.
func (e *Elector) Tick(now time.Time) *wire.Heartbeat {
	e.noteStart(now)
	if e.sentAny && now.Sub(e.lastSent) < e.cfg.Interval {
		return nil
	}
	e.lastSent = now
	e.sentAny = true
	leader, ok := e.Leader(now)
	hb := &wire.Heartbeat{From: e.cfg.Self, Cost: e.myCost}
	if ok {
		hb.Leader = leader
		if leader == e.cfg.Self && e.myClaim {
			hb.Epoch = e.myEpoch
		}
	}
	return hb
}
