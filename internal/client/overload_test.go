package client

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gridrep/internal/wire"
)

// TestClientHonorsRetryAfter: a StatusOverload shed reschedules the
// next rebroadcast to the gateway's typed hint instead of the jittered
// exponential backoff, and the operation still completes when the
// replica has room on the retry.
func TestClientHonorsRetryAfter(t *testing.T) {
	net := newClientNet(t)
	var mu sync.Mutex
	var times []time.Time
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
		mu.Lock()
		n := len(times)
		times = append(times, time.Now())
		mu.Unlock()
		if n == 0 {
			// First transmission: shed with a hint far below the client's
			// RetryEvery (30ms in newTestClient) — if the hint is honored
			// the retry arrives well before the backoff would fire.
			send(wire.Reply{Status: wire.StatusOverload, RetryAfterMS: 5})
			return
		}
		send(wire.Reply{Status: wire.StatusOK, Result: []byte("r")})
	})
	cli := newTestClient(t, net, []wire.NodeID{0})
	// Widen the base backoff so hint-vs-backoff is unambiguous.
	cli.cfg.RetryEvery = 200 * time.Millisecond
	cli.cfg.RetryMax = 400 * time.Millisecond

	res, err := cli.Write([]byte("op"))
	if err != nil || string(res) != "r" {
		t.Fatalf("write = %q, %v", res, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) < 2 {
		t.Fatalf("saw %d transmissions, want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap > 100*time.Millisecond {
		t.Fatalf("retry after %v; the 5ms hint was not honored", gap)
	}
}

// TestClientOverloadedAtDeadline: when every transmission is shed, the
// operation fails with the typed ErrOverloaded, not a generic timeout.
func TestClientOverloadedAtDeadline(t *testing.T) {
	net := newClientNet(t)
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
		send(wire.Reply{Status: wire.StatusOverload, RetryAfterMS: 10})
	})
	cli := newTestClient(t, net, []wire.NodeID{0})
	_, err := cli.Write([]byte("op"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
}

// TestClientOverloadKeepsWaitingForLeader: a follower-side shed must
// not abort the wait — the leader's OK, arriving later, wins.
func TestClientOverloadKeepsWaitingForLeader(t *testing.T) {
	net := newClientNet(t)
	startFake(t, net, 1, func(req wire.Request, send func(wire.Reply)) {
		send(wire.Reply{Status: wire.StatusOverload, RetryAfterMS: 400})
	})
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
		time.Sleep(20 * time.Millisecond) // the shed arrives first
		send(wire.Reply{Status: wire.StatusOK, Result: []byte("real")})
	})
	cli := newTestClient(t, net, []wire.NodeID{0, 1})
	res, err := cli.Write([]byte("op"))
	if err != nil || string(res) != "real" {
		t.Fatalf("write = %q, %v", res, err)
	}
}

// TestClientStopsRetryingOnTerminalStatus: Aborted, Error, and
// CrossGroup replies end the operation immediately — no further
// rebroadcast reaches the replica.
func TestClientStopsRetryingOnTerminalStatus(t *testing.T) {
	for _, tc := range []struct {
		status wire.ReplyStatus
		check  func(error) bool
	}{
		{wire.StatusAborted, func(err error) bool { return errors.Is(err, ErrAborted) }},
		{wire.StatusError, func(err error) bool { var se *ServiceError; return errors.As(err, &se) }},
		{wire.StatusCrossGroup, func(err error) bool { return errors.Is(err, ErrCrossGroup) }},
	} {
		net := newClientNet(t)
		var mu sync.Mutex
		sends := 0
		startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
			mu.Lock()
			sends++
			mu.Unlock()
			send(wire.Reply{Status: tc.status, Err: "x"})
		})
		cli := newTestClient(t, net, []wire.NodeID{0})
		cli.cfg.RetryEvery = 10 * time.Millisecond
		cli.cfg.RetryMax = 20 * time.Millisecond
		if _, err := cli.Write([]byte("op")); !tc.check(err) {
			t.Fatalf("status %v mapped to %v", tc.status, err)
		}
		// The property is silence AFTER the terminal reply was seen. A
		// scheduling hiccup can delay the reply past RetryEvery and
		// produce one legitimate pre-reply retransmit, so let any such
		// in-flight transmission land, take a baseline, then require
		// that a full retry interval passes with no further send — a
		// retry loop that wrongly survived the terminal status would
		// fire within RetryMax.
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		before := sends
		mu.Unlock()
		time.Sleep(60 * time.Millisecond)
		mu.Lock()
		n := sends
		mu.Unlock()
		if n != before {
			t.Fatalf("status %v: replica saw %d transmissions after the terminal reply (baseline %d) — terminal statuses must stop the retry loop", tc.status, n-before, before)
		}
	}
}
