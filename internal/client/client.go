// Package client implements the client side of the replication protocol:
// every request is broadcast to all service replicas — so clients need
// not know which replica currently leads (§3.3) — and only the leader's
// reply is awaited. Lost requests and leader switches are handled by
// rebroadcasting with the same sequence number; the leader's reply cache
// makes retransmits safe (at-most-once execution).
//
// The transaction API drives T-Paxos (§3.5): operations inside a
// transaction are answered by the leader immediately; Commit triggers the
// single consensus round.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// Client errors.
var (
	// ErrAborted reports that the enclosing transaction was aborted by
	// the service (lock conflict) or by a leader switch (§3.6).
	ErrAborted = errors.New("client: transaction aborted")
	// ErrTimeout reports that no leader answered within the deadline.
	ErrTimeout = errors.New("client: request timed out")
	// ErrClosed reports use of a closed client.
	ErrClosed = errors.New("client: closed")
	// ErrCrossGroup reports a transaction operation that routed to a
	// different consensus group than the transaction's first operation.
	// Sharded deployments (DESIGN.md §13) coordinate each group
	// independently; a transaction must stay within one group.
	ErrCrossGroup = errors.New("client: transaction spans consensus groups")
	// ErrOverloaded reports that the gateway shed the request at the
	// edge (StatusOverload, DESIGN.md §15) and no replica answered it
	// before the deadline. The request was never executed; retrying it
	// is safe.
	ErrOverloaded = errors.New("client: request shed by overloaded gateway")
)

// ServiceError wraps a StatusError reply from the service.
type ServiceError struct{ Msg string }

func (e *ServiceError) Error() string { return "service: " + e.Msg }

// Config assembles a client.
type Config struct {
	// Transport is the client's endpoint; its Local ID must be in the
	// client ID space.
	Transport transport.Transport
	// Replicas lists all service replicas.
	Replicas []wire.NodeID
	// RetryEvery is the base rebroadcast interval while waiting for a
	// reply (default 500ms). Successive rebroadcasts of one operation
	// back off exponentially from this base with full jitter, so a herd
	// of clients hammering a recovering cluster spreads itself out.
	RetryEvery time.Duration
	// RetryMax caps the exponential backoff between rebroadcasts
	// (default 8×RetryEvery).
	RetryMax time.Duration
	// Deadline bounds one operation end to end (default 30s).
	Deadline time.Duration
	// AbortOnOverload makes the first StatusOverload reply terminal: the
	// call returns ErrOverloaded immediately instead of honoring the
	// retry-after hint until the deadline. Production clients should
	// leave this off; open-loop measurement clients set it so that a
	// shed arrival is counted once and its worker freed, rather than
	// turning the shed into a client-side retry storm that inflates the
	// very offered load the sweep is trying to control.
	AbortOnOverload bool
	// NearRead routes reads through the nearest-replica path (DESIGN.md
	// §16): the first broadcast of every read is stamped with the
	// replica the transport reports the lowest RTT to, asking it to
	// serve the read from its local state once a voter quorum vouches.
	// Any rebroadcast drops the stamp and falls back to the leader
	// path, so a dead or partitioned near replica costs one retry
	// interval, never liveness. No-op when the transport cannot report
	// RTTs (unless NearPin names a replica explicitly).
	NearRead bool
	// NearPin, with NearRead, pins the near replica to NearReplica
	// instead of consulting transport RTTs — deployments that know
	// their geography (a client co-located with a specific replica)
	// skip the estimator warm-up. A pin naming a node outside Replicas
	// is dropped at construction: stamping a non-member would make
	// every replica vouch to a serving replica that does not exist, so
	// no one answers and each first read burns a retry interval.
	NearPin     bool
	NearReplica wire.NodeID
}

// Client issues requests to a replicated service. It is synchronous and
// single-threaded: one outstanding operation at a time, which is the
// closed-loop behaviour of the paper's test clients (§4).
type Client struct {
	cfg    Config
	id     wire.NodeID
	rng    *rand.Rand
	seq    uint64
	txnSeq uint64
	closed bool
}

// seedCounter decorrelates the jitter RNGs of clients created in the
// same nanosecond (a benchmark spawning a fleet in a tight loop): each
// construction draws a distinct count that is mixed into the seed, so
// identical timestamps can no longer produce identical backoff streams.
var seedCounter atomic.Uint64

// jitterSeed mixes the clock, the client ID, and the construction count
// into one well-spread seed (splitmix64 finalizer — consecutive inputs
// land far apart, unlike the raw XOR they replace).
func jitterSeed(id wire.NodeID) int64 {
	z := uint64(time.Now().UnixNano()) ^ uint64(id)<<32 ^ seedCounter.Add(1)
	z += 0x9e3779b97f4a7c15
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return int64(z ^ z>>31)
}

// New returns a client over the given transport.
func New(cfg Config) *Client {
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 500 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 8 * cfg.RetryEvery
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.NearPin && !contains(cfg.Replicas, cfg.NearReplica) {
		// See the NearPin doc: an invalid pin turns every first read
		// into a guaranteed retry. Fall back to the RTT estimator (or
		// the plain leader path when the transport has no estimates).
		cfg.NearPin = false
	}
	id := cfg.Transport.Local()
	return &Client{
		cfg: cfg,
		id:  id,
		rng: rand.New(rand.NewSource(jitterSeed(id))),
	}
}

// ID returns the client's node ID.
func (c *Client) ID() wire.NodeID { return c.id }

// Close releases the transport endpoint.
func (c *Client) Close() {
	if !c.closed {
		c.closed = true
		c.cfg.Transport.Close()
	}
}

// Read issues an X-Paxos-coordinated read (§3.4).
func (c *Client) Read(op []byte) ([]byte, error) { return c.do(wire.KindRead, 0, 0, op) }

// Write issues a write coordinated with the basic protocol (§3.3).
func (c *Client) Write(op []byte) ([]byte, error) { return c.do(wire.KindWrite, 0, 0, op) }

// Original issues an uncoordinated baseline request: the leader executes
// and replies immediately, exactly like an unreplicated service (§4).
func (c *Client) Original(op []byte) ([]byte, error) { return c.do(wire.KindOriginal, 0, 0, op) }

func (c *Client) do(kind wire.RequestKind, txn uint64, txnSeq uint32, op []byte) ([]byte, error) {
	if c.closed {
		return nil, ErrClosed
	}
	c.seq++
	req := wire.Request{
		Client: c.id,
		Seq:    c.seq,
		Kind:   kind,
		Txn:    txn,
		TxnSeq: txnSeq,
		Op:     op,
	}
	if kind == wire.KindRead && c.cfg.NearRead {
		if near, ok := c.nearestReplica(); ok {
			req.Near, req.NearSet = near, true
		}
	}
	deadline := time.Now().Add(c.cfg.Deadline)
	c.broadcast(&req)
	attempt := 0
	overloaded := false
	retry := time.NewTimer(retryBackoff(c.rng, c.cfg.RetryEvery, c.cfg.RetryMax, attempt, time.Until(deadline)))
	defer retry.Stop()
	for {
		select {
		case env, ok := <-c.cfg.Transport.Recv():
			if !ok {
				return nil, ErrClosed
			}
			rm, ok := env.Msg.(*wire.ReplyMsg)
			if !ok || rm.Rep.Seq != c.seq {
				continue // stale or foreign message
			}
			switch rm.Rep.Status {
			case wire.StatusOK:
				return rm.Rep.Result, nil
			case wire.StatusAborted:
				// Terminal: retrying cannot help (the transaction is
				// dead), so stop rather than rebroadcast.
				return nil, fmt.Errorf("%w: %s", ErrAborted, rm.Rep.Err)
			case wire.StatusError:
				// Terminal: the service rejected the operation itself.
				return nil, &ServiceError{Msg: rm.Rep.Err}
			case wire.StatusCrossGroup:
				// Terminal: a retry would route identically.
				return nil, fmt.Errorf("%w: %s", ErrCrossGroup, rm.Rep.Err)
			case wire.StatusNotLeader:
				// Keep waiting; the rebroadcast timer covers the case
				// where no real leader saw the request.
				continue
			case wire.StatusOverload:
				if c.cfg.AbortOnOverload {
					// Measurement mode: the shed is the outcome.
					if rm.Rep.Err != "" {
						return nil, fmt.Errorf("%w: %s", ErrOverloaded, rm.Rep.Err)
					}
					return nil, ErrOverloaded
				}
				// One edge shed the request — but it was broadcast, so
				// the leader may still answer. Keep waiting, and honor
				// the typed retry-after hint in place of the blind
				// exponential backoff: the next rebroadcast fires when
				// the gateway said there may be room, not sooner.
				overloaded = true
				wait := time.Duration(rm.Rep.RetryAfterMS) * time.Millisecond
				if wait <= 0 {
					wait = c.cfg.RetryEvery
				}
				if remain := time.Until(deadline); wait > remain {
					wait = remain
				}
				if wait <= 0 {
					return nil, fmt.Errorf("%w: %s", ErrOverloaded, rm.Rep.Err)
				}
				if !retry.Stop() {
					select {
					case <-retry.C:
					default:
					}
				}
				retry.Reset(wait)
				continue
			}
		case <-retry.C:
			if !time.Now().Before(deadline) {
				if overloaded {
					// The last word from the cluster was a shed: report
					// the typed overload, not a generic timeout.
					return nil, ErrOverloaded
				}
				return nil, ErrTimeout
			}
			attempt++
			// A rebroadcast drops the Near stamp: if the nearest
			// replica could not assemble its quorum (down,
			// partitioned), the leader path is the liveness backstop.
			req.Near, req.NearSet = 0, false
			c.broadcast(&req)
			retry.Reset(retryBackoff(c.rng, c.cfg.RetryEvery, c.cfg.RetryMax, attempt, time.Until(deadline)))
		}
	}
}

// retryBackoff returns how long to wait before rebroadcast number
// attempt+1: exponential in the attempt count with full jitter (uniform
// over (0, base·2^attempt]), capped at max, and never sleeping past the
// operation deadline (remain) — the retry that would cross it wakes
// exactly on it to report the timeout.
func retryBackoff(rng *rand.Rand, base, max time.Duration, attempt int, remain time.Duration) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if d <= 0 {
		// A non-positive window (zero-valued config reaching here, or a
		// base so large that doubling overflowed) would panic Int63n;
		// floor it to one tick so the jitter draw stays valid.
		d = 1
	}
	d = time.Duration(rng.Int63n(int64(d))) + 1
	if remain > 0 && d > remain {
		d = remain
	}
	return d
}

// nearestReplica picks the replica to stamp on a near read: the pinned
// one, or the lowest-RTT replica per the transport's estimator. False
// when no replica has an estimate yet (cold client) — the read then
// takes the ordinary leader path.
func (c *Client) nearestReplica() (wire.NodeID, bool) {
	if c.cfg.NearPin {
		return c.cfg.NearReplica, true
	}
	rr, ok := c.cfg.Transport.(transport.RTTReporter)
	if !ok {
		return 0, false
	}
	var best wire.NodeID
	bestRTT := time.Duration(-1)
	for _, rep := range c.cfg.Replicas {
		if d, ok := rr.PeerRTT(rep); ok && (bestRTT < 0 || d < bestRTT) {
			best, bestRTT = rep, d
		}
	}
	return best, bestRTT >= 0
}

func contains(ids []wire.NodeID, id wire.NodeID) bool {
	for _, n := range ids {
		if n == id {
			return true
		}
	}
	return false
}

func (c *Client) broadcast(req *wire.Request) {
	for _, rep := range c.cfg.Replicas {
		c.cfg.Transport.Send(&wire.Envelope{To: rep, Msg: &wire.RequestMsg{Req: *req}})
	}
}

// Txn is an open T-Paxos transaction.
type Txn struct {
	c    *Client
	id   uint64
	n    uint32 // ops issued so far
	dead bool
}

// Begin opens a transaction. No message is sent until the first Do.
func (c *Client) Begin() *Txn {
	c.txnSeq++
	return &Txn{c: c, id: c.txnSeq}
}

// Do executes one operation inside the transaction. The leader answers
// immediately, without coordinating with the backups (§3.5). A returned
// ErrAborted means the whole transaction is dead.
func (t *Txn) Do(op []byte) ([]byte, error) {
	if t.dead {
		return nil, ErrAborted
	}
	res, err := t.c.do(wire.KindTxnOp, t.id, t.n, op)
	if err != nil {
		if errors.Is(err, ErrAborted) {
			t.dead = true
		}
		return nil, err
	}
	t.n++
	return res, nil
}

// Commit atomically applies the transaction: the replicas agree on the
// whole transaction and the resulting state in one consensus instance.
func (t *Txn) Commit() error {
	if t.dead {
		return ErrAborted
	}
	t.dead = true
	_, err := t.c.do(wire.KindTxnCommit, t.id, t.n, nil)
	return err
}

// Abort discards the transaction on the leader.
func (t *Txn) Abort() error {
	if t.dead {
		return nil
	}
	t.dead = true
	_, err := t.c.do(wire.KindTxnAbort, t.id, t.n, nil)
	return err
}
