package client

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"gridrep/internal/netem"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// fakeReplica runs a scripted responder on the network: script maps a
// request Seq to the reply behaviour.
type fakeReplica struct {
	ep     *transport.Endpoint
	handle func(req wire.Request, reply func(wire.Reply))
	stop   chan struct{}
}

func startFake(t *testing.T, net *transport.Network, id wire.NodeID,
	handle func(req wire.Request, reply func(wire.Reply))) *fakeReplica {
	t.Helper()
	ep, err := net.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeReplica{ep: ep, handle: handle, stop: make(chan struct{})}
	go func() {
		for {
			select {
			case <-f.stop:
				return
			case env, ok := <-ep.Recv():
				if !ok {
					return
				}
				if rm, isReq := env.Msg.(*wire.RequestMsg); isReq {
					req := rm.Req
					f.handle(req, func(rep wire.Reply) {
						rep.Client = req.Client
						rep.Seq = req.Seq
						ep.Send(&wire.Envelope{To: req.Client, Msg: &wire.ReplyMsg{Rep: rep}})
					})
				}
			}
		}
	}()
	t.Cleanup(func() { close(f.stop) })
	return f
}

func newClientNet(t *testing.T) *transport.Network {
	t.Helper()
	n := transport.NewNetwork(netem.Loopback().NewModel(1))
	t.Cleanup(func() { n.Close() })
	return n
}

func newTestClient(t *testing.T, net *transport.Network, replicas []wire.NodeID) *Client {
	t.Helper()
	ep, err := net.Endpoint(wire.ClientIDBase + 1)
	if err != nil {
		t.Fatal(err)
	}
	cli := New(Config{
		Transport:  ep,
		Replicas:   replicas,
		RetryEvery: 30 * time.Millisecond,
		Deadline:   500 * time.Millisecond,
	})
	t.Cleanup(cli.Close)
	return cli
}

func TestClientBroadcastsToAllReplicas(t *testing.T) {
	net := newClientNet(t)
	got := make(chan wire.NodeID, 8)
	for i := 0; i < 3; i++ {
		id := wire.NodeID(i)
		reply := i == 0 // only the "leader" replies
		startFake(t, net, id, func(req wire.Request, send func(wire.Reply)) {
			got <- id
			if reply {
				send(wire.Reply{Status: wire.StatusOK, Result: []byte("r")})
			}
		})
	}
	cli := newTestClient(t, net, []wire.NodeID{0, 1, 2})
	res, err := cli.Write([]byte("op"))
	if err != nil || string(res) != "r" {
		t.Fatalf("write = %q, %v", res, err)
	}
	seen := map[wire.NodeID]bool{}
	timeout := time.After(time.Second)
	for len(seen) < 3 {
		select {
		case id := <-got:
			seen[id] = true
		case <-timeout:
			t.Fatalf("request reached only %v", seen)
		}
	}
}

func TestClientRetriesUntilReply(t *testing.T) {
	net := newClientNet(t)
	count := 0
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
		count++
		if count >= 3 { // ignore the first two transmissions
			send(wire.Reply{Status: wire.StatusOK})
		}
	})
	cli := newTestClient(t, net, []wire.NodeID{0})
	if _, err := cli.Write([]byte("op")); err != nil {
		t.Fatalf("write with retries: %v", err)
	}
	if count < 3 {
		t.Fatalf("replica saw %d transmissions, want >= 3", count)
	}
}

func TestClientTimeout(t *testing.T) {
	net := newClientNet(t)
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {}) // never replies
	cli := newTestClient(t, net, []wire.NodeID{0})
	start := time.Now()
	_, err := cli.Write([]byte("op"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 400*time.Millisecond {
		t.Fatal("timed out before the deadline")
	}
}

func TestClientIgnoresNotLeaderAndStaleReplies(t *testing.T) {
	net := newClientNet(t)
	startFake(t, net, 1, func(req wire.Request, send func(wire.Reply)) {
		send(wire.Reply{Status: wire.StatusNotLeader})
	})
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
		// Send a stale-Seq reply first, then the real one.
		stale := wire.Reply{Client: req.Client, Seq: req.Seq - 1, Status: wire.StatusOK, Result: []byte("stale")}
		_ = stale
		send(wire.Reply{Status: wire.StatusOK, Result: []byte("real")})
	})
	cli := newTestClient(t, net, []wire.NodeID{0, 1})
	res, err := cli.Write([]byte("op"))
	if err != nil || string(res) != "real" {
		t.Fatalf("write = %q, %v", res, err)
	}
}

func TestClientStatusMapping(t *testing.T) {
	net := newClientNet(t)
	var status wire.ReplyStatus
	var errText string
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
		send(wire.Reply{Status: status, Err: errText})
	})
	cli := newTestClient(t, net, []wire.NodeID{0})

	status, errText = wire.StatusAborted, "conflict"
	if _, err := cli.Write([]byte("op")); !errors.Is(err, ErrAborted) {
		t.Fatalf("aborted mapped to %v", err)
	}
	status, errText = wire.StatusError, "bad op"
	var se *ServiceError
	if _, err := cli.Write([]byte("op")); !errors.As(err, &se) || se.Msg != "bad op" {
		t.Fatalf("service error mapped to %v", err)
	}
}

func TestClientSeqMonotonic(t *testing.T) {
	net := newClientNet(t)
	var seqs []uint64
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
		seqs = append(seqs, req.Seq)
		send(wire.Reply{Status: wire.StatusOK})
	})
	cli := newTestClient(t, net, []wire.NodeID{0})
	for i := 0; i < 5; i++ {
		if _, err := cli.Write(nil); err != nil {
			t.Fatal(err)
		}
	}
	// A starved round trip may retransmit an operation, and a
	// retransmit legitimately reuses its seq (that is the idempotency
	// contract) — so require non-decreasing order plus one distinct seq
	// per operation, which still catches a client reusing a seq for a
	// new op or handing them out out of order.
	distinct := 0
	for i := range seqs {
		if i == 0 || seqs[i] != seqs[i-1] {
			distinct++
		}
		if i > 0 && seqs[i] < seqs[i-1] {
			t.Fatalf("seqs went backwards: %v", seqs)
		}
	}
	if distinct != 5 {
		t.Fatalf("5 ops produced %d distinct seqs: %v", distinct, seqs)
	}
}

func TestClientTxnFieldsOnWire(t *testing.T) {
	net := newClientNet(t)
	var got []wire.Request
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
		got = append(got, req)
		send(wire.Reply{Status: wire.StatusOK})
	})
	cli := newTestClient(t, net, []wire.NodeID{0})
	tx := cli.Begin()
	tx.Do([]byte("a"))
	tx.Do([]byte("b"))
	tx.Commit()
	ops := collapseRetransmits(got)
	if len(ops) != 3 {
		t.Fatalf("saw %d distinct requests: %+v", len(ops), got)
	}
	if ops[0].Kind != wire.KindTxnOp || ops[0].TxnSeq != 0 ||
		ops[1].Kind != wire.KindTxnOp || ops[1].TxnSeq != 1 ||
		ops[2].Kind != wire.KindTxnCommit || ops[2].TxnSeq != 2 {
		t.Fatalf("txn wire fields wrong: %+v", ops)
	}
	if ops[0].Txn == 0 || ops[0].Txn != ops[2].Txn {
		t.Fatalf("txn IDs inconsistent: %+v", ops)
	}
}

// collapseRetransmits drops adjacent requests sharing a seq: a starved
// round trip may rebroadcast an operation, and the retransmit is
// byte-identical by the idempotency contract. The client is synchronous
// per operation and the fabric link is FIFO, so a retransmit always
// lands adjacent to its original.
func collapseRetransmits(reqs []wire.Request) []wire.Request {
	var out []wire.Request
	for i, r := range reqs {
		if i == 0 || r.Seq != reqs[i-1].Seq {
			out = append(out, r)
		}
	}
	return out
}

func TestClientTxnIDsDistinct(t *testing.T) {
	net := newClientNet(t)
	var got []wire.Request
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
		got = append(got, req)
		send(wire.Reply{Status: wire.StatusOK})
	})
	cli := newTestClient(t, net, []wire.NodeID{0})
	t1 := cli.Begin()
	t1.Do(nil)
	t1.Abort()
	t2 := cli.Begin()
	t2.Do(nil)
	t2.Abort()
	ops := collapseRetransmits(got)
	if len(ops) < 3 || ops[0].Txn == ops[2].Txn {
		t.Fatalf("txn IDs reused: %+v", ops)
	}
}

func TestClientDeadTxnRefusesOps(t *testing.T) {
	net := newClientNet(t)
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
		send(wire.Reply{Status: wire.StatusAborted})
	})
	cli := newTestClient(t, net, []wire.NodeID{0})
	tx := cli.Begin()
	if _, err := tx.Do(nil); !errors.Is(err, ErrAborted) {
		t.Fatalf("first op = %v", err)
	}
	// Everything after the abort short-circuits locally.
	if _, err := tx.Do(nil); !errors.Is(err, ErrAborted) {
		t.Fatal("dead txn accepted an op")
	}
	if err := tx.Commit(); !errors.Is(err, ErrAborted) {
		t.Fatal("dead txn accepted a commit")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal("aborting a dead txn must be a no-op")
	}
}

func TestClientClosed(t *testing.T) {
	net := newClientNet(t)
	cli := newTestClient(t, net, []wire.NodeID{0})
	cli.Close()
	if _, err := cli.Write(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	cli.Close() // idempotent
}

func TestRetryBackoffFullJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := 10 * time.Millisecond
	max := 80 * time.Millisecond
	for attempt := 0; attempt < 10; attempt++ {
		cap := base << attempt
		if cap > max {
			cap = max
		}
		for i := 0; i < 200; i++ {
			d := retryBackoff(rng, base, max, attempt, time.Hour)
			if d <= 0 || d > cap {
				t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, cap)
			}
		}
	}
}

func TestRetryBackoffCappedAtDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	remain := 3 * time.Millisecond
	for i := 0; i < 200; i++ {
		d := retryBackoff(rng, time.Second, 8*time.Second, 5, remain)
		if d <= 0 || d > remain {
			t.Fatalf("backoff %v exceeds remaining deadline %v", d, remain)
		}
	}
}

// Regression: a non-positive backoff window reaching rng.Int63n panicked.
// Zero and negative bases (and the zero window a misconfigured caller can
// produce) must yield a small positive wait instead.
func TestRetryBackoffNonPositiveWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, base := range []time.Duration{0, -time.Second} {
		for attempt := 0; attempt < 4; attempt++ {
			d := retryBackoff(rng, base, 8*base, attempt, time.Hour)
			if d <= 0 {
				t.Fatalf("base %v attempt %d: backoff %v not positive", base, attempt, d)
			}
		}
	}
	// Also via New: non-positive config values fall back to defaults
	// rather than reaching the jitter draw as a zero window.
	net := newClientNet(t)
	ep, err := net.Endpoint(wire.ClientIDBase + 9)
	if err != nil {
		t.Fatal(err)
	}
	cli := New(Config{Transport: ep, Replicas: []wire.NodeID{0}, RetryEvery: -time.Second})
	defer cli.Close()
	if cli.cfg.RetryEvery <= 0 || cli.cfg.RetryMax <= 0 || cli.cfg.Deadline <= 0 {
		t.Fatalf("negative config not defaulted: %+v", cli.cfg)
	}
}

// Regression: a NearPin naming a node outside Replicas stamped every
// first read with a serving replica that does not exist — all replicas
// queue vouches for it, nobody serves, and each read burns a retry
// interval before the unstamped rebroadcast reaches the leader path.
// New must drop such a pin at construction; a valid pin must survive.
func TestClientDropsInvalidNearPin(t *testing.T) {
	net := newClientNet(t)
	var got []wire.Request
	startFake(t, net, 0, func(req wire.Request, send func(wire.Reply)) {
		got = append(got, req)
		send(wire.Reply{Status: wire.StatusOK})
	})
	mk := func(pin wire.NodeID) *Client {
		ep, err := net.Endpoint(wire.ClientIDBase + 2 + pin)
		if err != nil {
			t.Fatal(err)
		}
		cli := New(Config{
			Transport:   ep,
			Replicas:    []wire.NodeID{0},
			RetryEvery:  30 * time.Millisecond,
			Deadline:    500 * time.Millisecond,
			NearRead:    true,
			NearPin:     true,
			NearReplica: pin,
		})
		t.Cleanup(cli.Close)
		return cli
	}

	bad := mk(7) // not a member
	if bad.cfg.NearPin {
		t.Fatal("pin to a non-member survived construction")
	}
	if _, err := bad.Read([]byte("op")); err != nil {
		t.Fatal(err)
	}
	// With the pin dropped the client falls back to the RTT estimator,
	// which may legitimately stamp a member — but never the non-member.
	if len(got) == 0 || (got[0].NearSet && got[0].Near != 0) {
		t.Fatalf("first read stamped Near=%d, not a member: %+v", got[0].Near, got[0])
	}

	got = nil
	good := mk(0)
	if !good.cfg.NearPin {
		t.Fatal("valid pin dropped at construction")
	}
	if _, err := good.Read([]byte("op")); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || !got[0].NearSet || got[0].Near != 0 {
		t.Fatalf("valid pin did not stamp the first read: %+v", got)
	}
}

// Regression: clients constructed in the same nanosecond seeded their
// jitter RNGs identically (seed was UnixNano ^ id), so a fleet spawned in
// a tight loop backed off in lockstep. The construction counter mixed
// into jitterSeed must decorrelate them even with identical clock and ID.
func TestJitterSeedsDistinctForSameNanosecond(t *testing.T) {
	const n = 64
	seen := make(map[int64]bool, n)
	streams := make(map[int64]bool, n)
	for i := 0; i < n; i++ {
		s := jitterSeed(wire.ClientIDBase + 1) // same ID every time
		if seen[s] {
			t.Fatalf("duplicate seed %#x after %d constructions", s, i)
		}
		seen[s] = true
		first := rand.New(rand.NewSource(s)).Int63()
		if streams[first] {
			t.Fatalf("two clients drew the same first jitter value %#x", first)
		}
		streams[first] = true
	}
}
