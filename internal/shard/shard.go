// Package shard routes client requests across N independent consensus
// groups hosted in one replica process (DESIGN.md §13).
//
// Each group is a complete instance of the paper's protocol — its own
// multi-instance Paxos state machine, Ω elector, and WAL — deciding a
// disjoint partition of the service key space. Routing is a pure
// function of the request: FNV-1a over the operation's shard key
// (service.Sharder when the service can extract one, the whole
// operation encoding otherwise) modulo the group count. Every replica
// computes the same route, so a request reaches the same group no
// matter which replica's multiplexer inspects it.
//
// Transactions are pinned to the group of their first operation: the
// client API is synchronous (one outstanding request per transaction)
// and links are FIFO, so every replica observes the same first
// operation and pins identically. A later operation that routes to a
// different group fails with wire.StatusCrossGroup — cross-group
// transactions are explicitly out of scope for this layer.
package shard

import (
	"fmt"

	"gridrep/internal/service"
	"gridrep/internal/wire"
)

// ErrCrossGroup reports a transaction operation that routed to a
// different consensus group than the transaction's pinned group.
var ErrCrossGroup = fmt.Errorf("shard: transaction spans multiple consensus groups")

// Hash is FNV-1a over key — the routing hash. Exposed so tests and
// tools can predict placements.
func Hash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// txnKey identifies one client transaction for pinning.
type txnKey struct {
	client wire.NodeID
	txn    uint64
}

// maxPinned bounds the pin table. Pins are dropped at commit/abort; the
// cap only matters when clients vanish mid-transaction, and 1<<16
// in-flight transactions is far beyond any deployment here.
const maxPinned = 1 << 16

// Router maps requests to groups. It is not safe for concurrent use:
// the multiplexer serializes calls to Route (historically by confining
// them to its pump goroutine; since the sharded fan-in of DESIGN.md §14
// by a mutex, because dispatch runs on per-connection transport
// goroutines).
type Router struct {
	n       int
	sharder service.Sharder // nil: hash whole ops
	pinned  map[txnKey]uint32
}

// NewRouter returns a router over n groups. svc (any replica's service
// instance, used purely for key extraction) is probed for
// service.Sharder; pass nil to always hash whole operations.
func NewRouter(n int, svc service.Service) *Router {
	r := &Router{n: n, pinned: make(map[txnKey]uint32)}
	if sh, ok := svc.(service.Sharder); ok {
		r.sharder = sh
	}
	return r
}

// GroupForOp returns the group an operation encoding routes to.
func (r *Router) GroupForOp(op []byte) uint32 {
	if r.n <= 1 {
		return 0
	}
	key := op
	if r.sharder != nil {
		if k, ok := r.sharder.ShardKey(op); ok {
			key = k
		}
	}
	return uint32(Hash(key) % uint64(r.n))
}

// Route returns the consensus group req belongs to. Transaction
// requests are pinned to their first operation's group; a later
// operation hashing elsewhere returns ErrCrossGroup and the caller
// must reply wire.StatusCrossGroup without consuming a consensus
// instance anywhere.
func (r *Router) Route(req *wire.Request) (uint32, error) {
	if r.n <= 1 {
		return 0, nil
	}
	if req.Txn == 0 {
		return r.GroupForOp(req.Op), nil
	}
	k := txnKey{client: req.Client, txn: req.Txn}
	switch req.Kind {
	case wire.KindTxnOp:
		g := r.GroupForOp(req.Op)
		if pinned, ok := r.pinned[k]; ok {
			if pinned != g {
				return 0, ErrCrossGroup
			}
			return pinned, nil
		}
		if len(r.pinned) >= maxPinned {
			// Emergency valve: drop the table rather than grow without
			// bound on leaked transactions. Live retried txns re-pin to
			// the same group because routing is deterministic.
			r.pinned = make(map[txnKey]uint32)
		}
		r.pinned[k] = g
		return g, nil
	case wire.KindTxnCommit, wire.KindTxnAbort:
		if pinned, ok := r.pinned[k]; ok {
			delete(r.pinned, k)
			return pinned, nil
		}
		// Commit/abort of a transaction this router never saw an op for
		// (e.g. an empty transaction, or a pump restart): fall back to a
		// deterministic hash of the transaction identity so all replicas
		// still agree on one group.
		var idkey [16]byte
		for i := 0; i < 8; i++ {
			idkey[i] = byte(uint64(req.Client) >> (8 * i))
			idkey[8+i] = byte(req.Txn >> (8 * i))
		}
		return uint32(Hash(idkey[:]) % uint64(r.n)), nil
	default:
		return r.GroupForOp(req.Op), nil
	}
}

// LeaderRank returns the Ω rank function for group g over a cluster of
// n bootstrap members: group g's preferred leader is replica g mod n,
// then IDs ascending cyclically, so leadership — and with it the
// per-leader execute/fsync/quorum pipelines — spreads across the
// membership. IDs at or above n (replicas joined after bootstrap) rank
// after all bootstrap members, keeping the function injective and
// identical on every replica that booted with the same n.
func LeaderRank(g uint32, n int) func(wire.NodeID) uint64 {
	if n <= 0 {
		n = 1
	}
	pref := uint64(g) % uint64(n)
	return func(id wire.NodeID) uint64 {
		u := uint64(id)
		if u >= uint64(n) {
			return u
		}
		return (u + uint64(n) - pref) % uint64(n)
	}
}
