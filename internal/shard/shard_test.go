package shard

import (
	"errors"
	"fmt"
	"testing"

	"gridrep/internal/service"
	"gridrep/internal/wire"
)

// TestRoutingIsDeterministicAndCovers: the same op always routes to the
// same group, every group receives some keys, and all routes are in
// range.
func TestRoutingIsDeterministicAndCovers(t *testing.T) {
	const n = 4
	r := NewRouter(n, service.NewKV())
	r2 := NewRouter(n, service.NewKV())
	seen := make(map[uint32]int)
	for i := 0; i < 256; i++ {
		op := service.KVPut(fmt.Sprintf("k%03d", i), []byte("v"))
		g := r.GroupForOp(op)
		if g >= n {
			t.Fatalf("group %d out of range", g)
		}
		if g2 := r2.GroupForOp(op); g2 != g {
			t.Fatalf("routers disagree: %d vs %d", g, g2)
		}
		seen[g]++
	}
	for g := uint32(0); g < n; g++ {
		if seen[g] == 0 {
			t.Fatalf("group %d received no keys: %v", g, seen)
		}
	}
}

// TestRoutingFollowsShardKey: ops on the same key route identically no
// matter the opcode or value — the property that keeps one key's
// history inside one group's total order.
func TestRoutingFollowsShardKey(t *testing.T) {
	r := NewRouter(8, service.NewKV())
	put := r.GroupForOp(service.KVPut("alpha", []byte("v1")))
	if g := r.GroupForOp(service.KVGet("alpha")); g != put {
		t.Fatalf("get routed to %d, put to %d", g, put)
	}
	if g := r.GroupForOp(service.KVDelete("alpha")); g != put {
		t.Fatalf("delete routed to %d, put to %d", g, put)
	}
	if g := r.GroupForOp(service.KVAdd("alpha", 7)); g != put {
		t.Fatalf("add routed to %d, put to %d", g, put)
	}
}

// TestRouterFallbackWithoutSharder: a service that cannot extract keys
// still shards (whole-op hashing), deterministically.
func TestRouterFallbackWithoutSharder(t *testing.T) {
	r := NewRouter(4, service.NewNoop())
	op := []byte("some-opaque-op")
	g := r.GroupForOp(op)
	for i := 0; i < 10; i++ {
		if r.GroupForOp(op) != g {
			t.Fatal("fallback routing not deterministic")
		}
	}
}

// findKeys returns two KV keys that route to different groups.
func findKeys(t *testing.T, r *Router) (same, other string) {
	t.Helper()
	base := "k0"
	g0 := r.GroupForOp(service.KVPut(base, nil))
	for i := 1; i < 1000; i++ {
		k := fmt.Sprintf("k%03d", i)
		if r.GroupForOp(service.KVPut(k, nil)) != g0 {
			return base, k
		}
	}
	t.Fatal("no cross-group key pair found")
	return "", ""
}

// TestTxnPinningAndCrossGroup: a transaction is pinned to its first
// op's group; a second op hashing elsewhere is refused with
// ErrCrossGroup, and commit/abort release the pin.
func TestTxnPinningAndCrossGroup(t *testing.T) {
	r := NewRouter(4, service.NewKV())
	k1, k2 := findKeys(t, r)
	g1 := r.GroupForOp(service.KVPut(k1, nil))

	req := func(kind wire.RequestKind, txn uint64, op []byte) *wire.Request {
		return &wire.Request{Client: 100, Seq: 1, Kind: kind, Txn: txn, Op: op}
	}

	// First op pins.
	g, err := r.Route(req(wire.KindTxnOp, 7, service.KVPut(k1, []byte("v"))))
	if err != nil || g != g1 {
		t.Fatalf("pin: g=%d err=%v want %d", g, err, g1)
	}
	// Same-group op passes.
	if g, err = r.Route(req(wire.KindTxnOp, 7, service.KVGet(k1))); err != nil || g != g1 {
		t.Fatalf("same-group op: g=%d err=%v", g, err)
	}
	// Cross-group op refused.
	if _, err = r.Route(req(wire.KindTxnOp, 7, service.KVPut(k2, []byte("v")))); !errors.Is(err, ErrCrossGroup) {
		t.Fatalf("cross-group op: err=%v, want ErrCrossGroup", err)
	}
	// Commit routes to the pinned group and releases the pin.
	if g, err = r.Route(req(wire.KindTxnCommit, 7, nil)); err != nil || g != g1 {
		t.Fatalf("commit: g=%d err=%v", g, err)
	}
	if len(r.pinned) != 0 {
		t.Fatalf("pin not released: %v", r.pinned)
	}

	// A non-transactional request on k2 is unaffected.
	if _, err := r.Route(req(wire.KindWrite, 0, service.KVPut(k2, nil))); err != nil {
		t.Fatalf("plain write: %v", err)
	}
}

// TestTxnCommitWithoutPinIsDeterministic: committing a transaction the
// router never pinned (empty txn) still lands on one deterministic
// group on every replica.
func TestTxnCommitWithoutPinIsDeterministic(t *testing.T) {
	a := NewRouter(4, service.NewKV())
	b := NewRouter(4, service.NewKV())
	req := &wire.Request{Client: 42, Seq: 9, Kind: wire.KindTxnCommit, Txn: 3}
	ga, err := a.Route(req)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := b.Route(req)
	if err != nil {
		t.Fatal(err)
	}
	if ga != gb {
		t.Fatalf("replicas disagree on unpinned commit: %d vs %d", ga, gb)
	}
}

// TestSingleGroupRoutesEverythingToZero: n=1 must short-circuit — no
// hashing, no pinning, group 0 always.
func TestSingleGroupRoutesEverythingToZero(t *testing.T) {
	r := NewRouter(1, service.NewKV())
	for _, req := range []*wire.Request{
		{Kind: wire.KindWrite, Op: service.KVPut("x", nil)},
		{Kind: wire.KindTxnOp, Txn: 5, Op: service.KVPut("y", nil)},
		{Kind: wire.KindTxnCommit, Txn: 5},
	} {
		g, err := r.Route(req)
		if err != nil || g != 0 {
			t.Fatalf("route %v: g=%d err=%v", req.Kind, g, err)
		}
	}
	if len(r.pinned) != 0 {
		t.Fatal("single-group router must not pin")
	}
}

// TestLeaderRank: group g's preferred leader is replica g mod n, ranks
// are injective, and post-bootstrap IDs rank last.
func TestLeaderRank(t *testing.T) {
	const n = 3
	for g := uint32(0); g < 5; g++ {
		rank := LeaderRank(g, n)
		pref := wire.NodeID(g % n)
		for id := wire.NodeID(0); id < n; id++ {
			if id == pref && rank(id) != 0 {
				t.Fatalf("group %d: preferred %v has rank %d", g, id, rank(id))
			}
			if id != pref && rank(id) == 0 {
				t.Fatalf("group %d: %v ties the preferred leader", g, id)
			}
		}
		seen := make(map[uint64]wire.NodeID)
		for id := wire.NodeID(0); id < 6; id++ {
			rk := rank(id)
			if prev, dup := seen[rk]; dup {
				t.Fatalf("group %d: rank %d shared by %v and %v", g, rk, prev, id)
			}
			seen[rk] = id
			if id >= n && rk < n {
				t.Fatalf("group %d: joiner %v ranked %d, before a bootstrap member", g, id, rk)
			}
		}
	}
}
