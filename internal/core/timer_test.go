package core

import (
	"testing"
	"time"
)

// Regression: commitWave reuses commitFlush via Reset. If the timer had
// already fired and its tick was never consumed (flushCommit ran off a
// piggybacked commit instead), a plain Reset leaves the stale tick in
// the channel and the "new" window appears to expire immediately.
// resetTimerDrained must swallow that tick.
func TestResetTimerDrainedSwallowsStaleTick(t *testing.T) {
	tm := time.NewTimer(time.Microsecond)
	defer tm.Stop()
	time.Sleep(10 * time.Millisecond) // let it fire; leave t.C unread

	resetTimerDrained(tm, time.Hour)
	select {
	case <-tm.C:
		t.Fatal("stale tick survived the reset: timer fired immediately")
	case <-time.After(50 * time.Millisecond):
	}
}

// resetTimerDrained on a timer that never fired (or was already drained)
// must still arm it normally.
func TestResetTimerDrainedArmsTimer(t *testing.T) {
	tm := time.NewTimer(time.Hour)
	defer tm.Stop()
	resetTimerDrained(tm, 5*time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(time.Second):
		t.Fatal("timer never fired after reset")
	}
	// And again after consuming the tick, exercising the stopped/drained
	// branch of the idiom.
	resetTimerDrained(tm, 5*time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(time.Second):
		t.Fatal("timer never fired after second reset")
	}
}
