package core_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"gridrep/internal/cluster"
	"gridrep/internal/core"
	"gridrep/internal/service"
	"gridrep/internal/storage"
	"gridrep/internal/wire"
)

// modeCluster builds a KV cluster forced into a specific state mode.
func modeCluster(t *testing.T, mode core.StateMode) *cluster.Cluster {
	t.Helper()
	return newCluster(t, cluster.Config{
		Service:   service.KVFactory,
		StateMode: mode,
	})
}

// TestStateModesEquivalent drives the identical workload through all
// three state-transfer modes and requires identical replicated state —
// §3.3's point that the reductions change bytes on the wire, not
// semantics.
func TestStateModesEquivalent(t *testing.T) {
	var finals [][]byte
	for _, mode := range []core.StateMode{core.StateModeFull, core.StateModeDelta} {
		c := modeCluster(t, mode)
		cli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := cli.Write(service.KVPut(fmt.Sprintf("k%d", i%3), []byte{byte(i)})); err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			if _, err := cli.Write(service.KVAdd("ctr", 2)); err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
		}
		waitConverged(t, c)
		snaps := snapshotAll(t, c)
		for i, s := range snaps {
			if !bytes.Equal(s, snaps[0]) {
				t.Fatalf("%v: replica #%d diverged", mode, i)
			}
		}
		finals = append(finals, snaps[0])
		cli.Close()
	}
	if !bytes.Equal(finals[0], finals[1]) {
		t.Fatal("full and delta modes produced different final states")
	}
}

func TestDeltaModeBackupsFollow(t *testing.T) {
	c := modeCluster(t, core.StateModeDelta)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 20; i++ {
		if _, err := cli.Write(service.KVAdd("n", 1)); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, c)
	for _, id := range c.IDs() {
		rep, _ := c.Replica(id)
		var snap []byte
		rep.Inspect(func(r *core.Replica) { snap = r.Service().Snapshot() })
		kv := service.NewKV()
		if err := kv.Restore(snap); err != nil {
			t.Fatal(err)
		}
		res, _ := kv.Execute(service.KVGet("n"))
		if n, _ := service.KVInt(res); n != 20 {
			t.Fatalf("replica %v: n = %d, want 20", id, n)
		}
	}
}

func TestDeltaModeFailover(t *testing.T) {
	c := modeCluster(t, core.StateModeDelta)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 10; i++ {
		if _, err := cli.Write(service.KVAdd("n", 1)); err != nil {
			t.Fatal(err)
		}
	}
	old, _ := c.Leader()
	c.Crash(old)
	if _, err := cli.Write(service.KVAdd("n", 1)); err != nil {
		t.Fatalf("delta-mode write after failover: %v", err)
	}
	res, err := cli.Read(service.KVGet("n"))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := service.KVInt(res); n != 11 {
		t.Fatalf("n = %d after delta-mode failover, want 11", n)
	}
}

func TestDeltaModeCatchUp(t *testing.T) {
	c := modeCluster(t, core.StateModeDelta)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	c.Crash(2)
	for i := 0; i < 10; i++ {
		if _, err := cli.Write(service.KVAdd("n", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c)
	snaps := snapshotAll(t, c)
	for i, s := range snaps {
		if !bytes.Equal(s, snaps[0]) {
			t.Fatalf("replica #%d diverged after delta-mode catch-up", i)
		}
	}
}

func TestDeltaModeTransactions(t *testing.T) {
	// Transactions attach full snapshots even in delta mode; interleave
	// them with delta writes and verify consistency.
	c := modeCluster(t, core.StateModeDelta)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(service.KVAdd("n", 1)); err != nil {
		t.Fatal(err)
	}
	tx := cli.Begin()
	if _, err := tx.Do(service.KVAdd("t", 5)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(service.KVAdd("n", 1)); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c)
	snaps := snapshotAll(t, c)
	for i, s := range snaps {
		if !bytes.Equal(s, snaps[0]) {
			t.Fatalf("replica #%d diverged mixing txns into delta mode", i)
		}
	}
}

// TestReplayModeBroker covers the §3.3 "request plus additional
// information" path end to end: backups re-execute the randomized broker
// deterministically from the leader's captured selections.
func TestReplayModeBroker(t *testing.T) {
	seed := int64(0)
	c := newCluster(t, cluster.Config{
		StateMode: core.StateModeReplay,
		Service: func() service.Service {
			seed++
			return service.NewBroker(seed)
		},
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 3; i++ {
		if _, err := cli.Write(service.BrokerRegister(fmt.Sprintf("r%d", i), 10)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := cli.Write(service.BrokerRequest(2)); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, c)
	snaps := snapshotAll(t, c)
	for i, s := range snaps {
		if !bytes.Equal(s, snaps[0]) {
			t.Fatalf("replica #%d diverged in replay mode", i)
		}
	}
}

func TestReplayModeFailoverKeepsSelections(t *testing.T) {
	seed := int64(50)
	c := newCluster(t, cluster.Config{
		StateMode: core.StateModeReplay,
		Service: func() service.Service {
			seed++
			return service.NewBroker(seed)
		},
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(service.BrokerRegister("a", 10)); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Write(service.BrokerRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := service.BrokerSelection(res)
	old, _ := c.Leader()
	c.Crash(old)
	list, err := cli.Read(service.BrokerList())
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("a %d/10\n", len(sel))
	if string(list) != want {
		t.Fatalf("allocation after replay-mode failover = %q, want %q", list, want)
	}
}

func TestReplayModeSchedDurable(t *testing.T) {
	// Scheduler in replay mode across crash-recovery with file storage:
	// dispatch decisions survive a full cluster restart.
	stores := map[wire.NodeID]storage.Store{}
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		st, err := storage.OpenFile(fmt.Sprintf("%s/r%d.wal", dir, i))
		if err != nil {
			t.Fatal(err)
		}
		st.Sync = false
		stores[wire.NodeID(i)] = st
	}
	c := newCluster(t, cluster.Config{
		StateMode: core.StateModeReplay,
		Service:   func() service.Service { return service.NewSched() },
		Stores:    stores,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Write(service.SchedSubmit("j1", 1))
	cli.Write(service.SchedSubmit("j2", 9))
	picked, err := cli.Write(service.SchedDispatch())
	if err != nil {
		t.Fatal(err)
	}
	if string(picked) != "j2" {
		t.Fatalf("dispatched %q", picked)
	}
	// Crash and recover a backup; it must rebuild the schedule by
	// replaying from its WAL + catch-up.
	c.Crash(2)
	cli.Write(service.SchedSubmit("j3", 5))
	if err := c.Restart(2); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c)
	snaps := snapshotAll(t, c)
	for i, s := range snaps {
		if !bytes.Equal(s, snaps[0]) {
			t.Fatalf("replica #%d schedule diverged", i)
		}
	}
}

func TestModeMismatchRejected(t *testing.T) {
	// Forcing a mode the service cannot support must fail at
	// construction, not corrupt state later.
	_, err := core.New(core.Config{
		ID:        0,
		Peers:     []wire.NodeID{0},
		Service:   service.NewNoop(),
		StateMode: core.StateModeDelta,
		Transport: nopTransport{},
	})
	if err == nil {
		t.Fatal("delta mode accepted for a non-Differ service")
	}
	_, err = core.New(core.Config{
		ID:        0,
		Peers:     []wire.NodeID{0},
		Service:   service.NewNoop(),
		StateMode: core.StateModeReplay,
		Transport: nopTransport{},
	})
	if err == nil {
		t.Fatal("replay mode accepted for a non-Replayer service")
	}
}

type nopTransport struct{}

func (nopTransport) Local() wire.NodeID          { return 0 }
func (nopTransport) Send(*wire.Envelope)         {}
func (nopTransport) Recv() <-chan *wire.Envelope { return nil }
func (nopTransport) Close() error                { return nil }

var _ = time.Now // keep time imported for helpers
