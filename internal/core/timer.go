package core

import "time"

// resetTimerDrained resets t to d, first stopping it and draining any
// tick already delivered to t.C. Plain Reset on an expired-but-unread
// timer leaves the stale tick in the channel, so the consumer would fire
// once immediately — for commitFlush that meant a spurious early
// standalone Commit broadcast. Only safe from the goroutine that also
// receives from t.C (the event loop), otherwise the drain races the
// receiver.
func resetTimerDrained(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}
