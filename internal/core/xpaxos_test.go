package core_test

import (
	"sync"
	"testing"
	"time"

	"gridrep/internal/cluster"
	"gridrep/internal/core"
	"gridrep/internal/netem"
	"gridrep/internal/service"
)

func TestReadsConsumeNoLogInstances(t *testing.T) {
	// X-Paxos reads are not consensus instances (§3.4): the commit
	// index must not move.
	c, cli := newKVCluster(t)
	if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	leaderID, _ := c.Leader()
	var before uint64
	c.Replicas[leaderID].Inspect(func(r *core.Replica) { before = r.Chosen() })
	for i := 0; i < 10; i++ {
		if _, err := cli.Read(service.KVGet("k")); err != nil {
			t.Fatal(err)
		}
	}
	var after uint64
	c.Replicas[leaderID].Inspect(func(r *core.Replica) { after = r.Chosen() })
	if after != before {
		t.Fatalf("reads consumed %d log instances", after-before)
	}
}

func TestDeposedLeaderCannotServeReads(t *testing.T) {
	// §3.4's safety claim: only the leader with the highest accepted
	// ballot can assemble majority confirms. Partition the old leader
	// away from everyone, force a new leader, heal the partition for
	// client traffic only, and check the old leader never answers.
	c, cli := newKVCluster(t)
	if _, err := cli.Write(service.KVPut("k", []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	old, _ := c.Leader()
	// Cut the old leader off from the other replicas (but not from
	// clients).
	for _, id := range c.IDs() {
		if id != old {
			c.Net.Model().Cut(old, id)
		}
	}
	c.SuspectLeader()
	// Wait for a new leader among the connected majority.
	deadline := time.Now().Add(5 * time.Second)
	var newLeader = old
	for time.Now().Before(deadline) {
		if l, ok := c.Leader(); ok && l != old {
			newLeader = l
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if newLeader == old {
		t.Fatal("no new leader emerged")
	}
	// Write through the new leader, then read. The old leader may still
	// think it leads, but it cannot collect confirms for its stale
	// ballot, so the reply must come from the new leader and reflect
	// the new write.
	if _, err := cli.Write(service.KVPut("k", []byte("v2"))); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Read(service.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "v2" {
		t.Fatalf("read returned %q — a deposed leader served a stale read", v)
	}
}

func TestReadsWaitForInFlightWrites(t *testing.T) {
	// A read arriving while writes are in flight must reflect them once
	// they commit (the barrier rule). Hammer interleaved writes/reads
	// from two goroutines sharing a monotonic counter.
	c := newCluster(t, cluster.Config{Service: service.KVFactory})
	wcli, _ := c.NewClient()
	rcli, _ := c.NewClient()
	defer wcli.Close()
	defer rcli.Close()

	var mu sync.Mutex
	written := int64(0) // count of completed (replied) writes

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 60; i++ {
			if _, err := wcli.Write(service.KVAdd("ctr", 1)); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			written++
			mu.Unlock()
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		mu.Lock()
		lower := written
		mu.Unlock()
		res, err := rcli.Read(service.KVGet("ctr"))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := service.KVInt(res)
		// Monotone-read bound: the read started after `lower` writes
		// had completed, so it must see at least that many.
		if got < lower {
			t.Fatalf("read %d < %d completed writes: stale read", got, lower)
		}
	}
}

// TestXPaxosLatencyAlgebra verifies the §3.4 latency claims on the WAN
// profile, where they are starkest: read ≈ 2M + max(E, m) is far below
// write ≈ 2M + E + 2m, and original ≈ 2M.
func TestXPaxosLatencyAlgebra(t *testing.T) {
	if testing.Short() {
		t.Skip("latency test uses real WAN-profile delays")
	}
	c := newCluster(t, cluster.Config{
		Profile: netem.WAN(0),
		Seed:    42,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	measure := func(f func() error) time.Duration {
		// One warmup, then the median of 5.
		if err := f(); err != nil {
			t.Fatal(err)
		}
		var best time.Duration = time.Hour
		for i := 0; i < 5; i++ {
			start := time.Now()
			if err := f(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	orig := measure(func() error { _, err := cli.Original(service.NoopWriteOp); return err })
	read := measure(func() error { _, err := cli.Read(service.NoopReadOp); return err })
	write := measure(func() error { _, err := cli.Write(service.NoopWriteOp); return err })

	t.Logf("WAN RRT: original=%v read=%v write=%v (paper: 70.8 / 75.5 / 106.7 ms)", orig, read, write)
	if write < orig+25*time.Millisecond {
		t.Errorf("write (%v) should exceed original (%v) by ≈2m=35ms", write, orig)
	}
	if read > orig+15*time.Millisecond {
		t.Errorf("read (%v) should be within a few ms of original (%v)", read, orig)
	}
	if read >= write {
		t.Errorf("X-Paxos read (%v) must beat the basic protocol write (%v)", read, write)
	}
}

func TestConfirmBufferedBeforeRead(t *testing.T) {
	// On the WAN profile, backup confirms can reach the leader before
	// the client's own request does (client→backup is faster than
	// client→leader). Reads must still complete.
	if testing.Short() {
		t.Skip("uses WAN-profile delays")
	}
	c := newCluster(t, cluster.Config{Profile: netem.WAN(0), Seed: 7})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 5; i++ {
		if _, err := cli.Read(service.NoopReadOp); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}
