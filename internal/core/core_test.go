package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/cluster"
	"gridrep/internal/core"
	"gridrep/internal/netem"
	"gridrep/internal/service"
	"gridrep/internal/wire"
)

// newCluster builds a 3-replica loopback cluster with fast timeouts and
// waits for a leader.
func newCluster(t *testing.T, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 5 * time.Millisecond
	}
	if cfg.ClientRetryEvery == 0 {
		cfg.ClientRetryEvery = 100 * time.Millisecond
	}
	if cfg.ClientDeadline == 0 {
		cfg.ClientDeadline = 10 * time.Second
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func newKVCluster(t *testing.T) (*cluster.Cluster, *client.Client) {
	t.Helper()
	c := newCluster(t, cluster.Config{Service: service.KVFactory})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return c, cli
}

func TestBootElectsSingleStableLeader(t *testing.T) {
	// Ω guarantees a single stable leader, and the entitlement rule
	// biases the boot election to the lowest live replica; under heavy
	// scheduler stalls (e.g. the race detector) a higher replica may
	// legitimately win, so only stability is asserted.
	c := newCluster(t, cluster.Config{})
	leader, ok := c.Leader()
	if !ok {
		t.Fatal("no leader after boot")
	}
	time.Sleep(100 * time.Millisecond)
	again, ok := c.Leader()
	if !ok || again != leader {
		t.Fatalf("leadership flapped: %v -> %v", leader, again)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, cli := newKVCluster(t)
	if _, err := cli.Write(service.KVPut("k", []byte("v1"))); err != nil {
		t.Fatalf("write: %v", err)
	}
	res, err := cli.Read(service.KVGet("k"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if v, ok := service.KVReply(res); !ok || string(v) != "v1" {
		t.Fatalf("read = %q,%v", v, ok)
	}
}

func TestReadReflectsLatestWrite(t *testing.T) {
	// §3.4's consistency requirement: the value returned by a read must
	// reflect the latest update.
	_, cli := newKVCluster(t)
	for i := 0; i < 20; i++ {
		want := []byte(fmt.Sprintf("v%d", i))
		if _, err := cli.Write(service.KVPut("k", want)); err != nil {
			t.Fatal(err)
		}
		res, err := cli.Read(service.KVGet("k"))
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := service.KVReply(res); !bytes.Equal(v, want) {
			t.Fatalf("iteration %d: read %q, want %q", i, v, want)
		}
	}
}

func TestOriginalBaseline(t *testing.T) {
	_, cli := newKVCluster(t)
	if _, err := cli.Original(service.KVPut("k", []byte("v"))); err != nil {
		t.Fatalf("original: %v", err)
	}
	res, err := cli.Original(service.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "v" {
		t.Fatalf("original read = %q", v)
	}
}

func TestServiceErrorReported(t *testing.T) {
	_, cli := newKVCluster(t)
	_, err := cli.Write([]byte{0xFF, 0x00}) // malformed op
	var se *client.ServiceError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ServiceError", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	c := newCluster(t, cluster.Config{Service: service.KVFactory})
	const nClients = 8
	const nOps = 25
	errCh := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		cli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		go func(i int, cli *client.Client) {
			defer cli.Close()
			key := fmt.Sprintf("k%d", i)
			for j := 0; j < nOps; j++ {
				if _, err := cli.Write(service.KVAdd(key, 1)); err != nil {
					errCh <- err
					return
				}
			}
			res, err := cli.Read(service.KVGet(key))
			if err != nil {
				errCh <- err
				return
			}
			if n, _ := service.KVInt(res); n != nOps {
				errCh <- fmt.Errorf("client %d: counter = %d, want %d", i, n, nOps)
				return
			}
			errCh <- nil
		}(i, cli)
	}
	for i := 0; i < nClients; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// TestNondeterministicStateConsistency is the paper's core claim: even
// for a service whose executions are randomized, all replicas end up with
// the identical state, because the leader's post-execution state — not
// the request — is what consensus decides.
func TestNondeterministicStateConsistency(t *testing.T) {
	seed := int64(0)
	c := newCluster(t, cluster.Config{Service: func() service.Service {
		seed++
		return service.NewBroker(seed) // every replica gets a different RNG
	}})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for i := 0; i < 4; i++ {
		if _, err := cli.Write(service.BrokerRegister(fmt.Sprintf("res%d", i), 10)); err != nil {
			t.Fatal(err)
		}
	}
	var selections [][]string
	for i := 0; i < 10; i++ {
		res, err := cli.Write(service.BrokerRequest(2))
		if err != nil {
			t.Fatal(err)
		}
		sel, err := service.BrokerSelection(res)
		if err != nil {
			t.Fatal(err)
		}
		selections = append(selections, sel)
	}
	waitConverged(t, c)

	// All replicas must hold the identical broker state.
	snaps := snapshotAll(t, c)
	for id, snap := range snaps {
		if !bytes.Equal(snap, snaps[0]) {
			t.Fatalf("replica %v state diverged from replica 0", id)
		}
	}
	// And the replicated state must reflect the leader's actual random
	// selections: total in-use = 20.
	total := 0
	for _, sel := range selections {
		total += len(sel)
	}
	if total != 20 {
		t.Fatalf("selections lost: %d", total)
	}
}

// waitConverged blocks until every replica has applied the same commit
// index as the leader.
func waitConverged(t *testing.T, c *cluster.Cluster) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var chosen []uint64
		var applied []uint64
		for _, id := range c.IDs() {
			rep, ok := c.Replicas[id]
			if !ok {
				continue // crashed
			}
			rep.Inspect(func(r *core.Replica) {
				chosen = append(chosen, r.Chosen())
				applied = append(applied, r.Applied())
			})
		}
		same := true
		for i := 1; i < len(chosen); i++ {
			if chosen[i] != chosen[0] || applied[i] != applied[0] || applied[i] != chosen[i] {
				same = false
			}
		}
		if same && len(chosen) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("replicas did not converge")
}

// snapshotAll returns every live replica's service snapshot, indexed by
// position in IDs order.
func snapshotAll(t *testing.T, c *cluster.Cluster) [][]byte {
	t.Helper()
	var snaps [][]byte
	for _, id := range c.IDs() {
		rep, ok := c.Replicas[id]
		if !ok {
			continue
		}
		var snap []byte
		rep.Inspect(func(r *core.Replica) { snap = r.Service().Snapshot() })
		snaps = append(snaps, snap)
	}
	return snaps
}

func TestBackupsAdoptLeaderState(t *testing.T) {
	c, cli := newKVCluster(t)
	for i := 0; i < 10; i++ {
		if _, err := cli.Write(service.KVPut(fmt.Sprintf("k%d", i), []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, c)
	snaps := snapshotAll(t, c)
	for i, snap := range snaps {
		if !bytes.Equal(snap, snaps[0]) {
			t.Fatalf("replica #%d state differs", i)
		}
	}
}

func TestRetransmitIsIdempotent(t *testing.T) {
	// A lossy network forces client retransmits; KVAdd is not
	// idempotent at the service level, so exactly-once depends on the
	// leader's reply cache.
	c := newCluster(t, cluster.Config{
		Service: service.KVFactory,
		Profile: netem.Loopback(),
	})
	// 20% loss on client<->replica traffic.
	c.Net.Model().SetLoss(netem.ClassClient, netem.ClassReplica, 0.2)
	c.Net.Model().SetLoss(netem.ClassReplica, netem.ClassClient, 0.2)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const n = 15
	for i := 0; i < n; i++ {
		if _, err := cli.Write(service.KVAdd("ctr", 1)); err != nil {
			t.Fatal(err)
		}
	}
	c.Net.Model().SetLoss(netem.ClassClient, netem.ClassReplica, 0)
	c.Net.Model().SetLoss(netem.ClassReplica, netem.ClassClient, 0)
	res, err := cli.Read(service.KVGet("ctr"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := service.KVInt(res); got != n {
		t.Fatalf("counter = %d, want %d (duplicated or lost execution)", got, n)
	}
}

func TestLeaderFailover(t *testing.T) {
	c, cli := newKVCluster(t)
	if _, err := cli.Write(service.KVPut("k", []byte("before"))); err != nil {
		t.Fatal(err)
	}
	old, _ := c.Leader()
	c.Crash(old)
	// The client keeps retrying; a new leader must take over and serve.
	if _, err := cli.Write(service.KVPut("k", []byte("after"))); err != nil {
		t.Fatalf("write after leader crash: %v", err)
	}
	res, err := cli.Read(service.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "after" {
		t.Fatalf("read = %q after failover", v)
	}
	newLeader, ok := c.Leader()
	if !ok || newLeader == old {
		t.Fatalf("leader did not move: %v", newLeader)
	}
}

func TestFailoverPreservesCommittedState(t *testing.T) {
	c, cli := newKVCluster(t)
	for i := 0; i < 10; i++ {
		if _, err := cli.Write(service.KVAdd("ctr", 1)); err != nil {
			t.Fatal(err)
		}
	}
	old, _ := c.Leader()
	c.Crash(old)
	res, err := cli.Read(service.KVGet("ctr"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := service.KVInt(res); got != 10 {
		t.Fatalf("counter = %d after failover, want 10", got)
	}
}

func TestCrashedReplicaRecoversAndCatchesUp(t *testing.T) {
	c, cli := newKVCluster(t)
	crash := wire.NodeID(2) // crash a backup
	c.Crash(crash)
	for i := 0; i < 10; i++ {
		if _, err := cli.Write(service.KVPut(fmt.Sprintf("k%d", i), []byte("x"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Restart(crash); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c)
	snaps := snapshotAll(t, c)
	for i, snap := range snaps {
		if !bytes.Equal(snap, snaps[0]) {
			t.Fatalf("recovered replica state differs (#%d)", i)
		}
	}
}

func TestRecoveredReplicaCanLead(t *testing.T) {
	c, cli := newKVCluster(t)
	if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	// Crash both backups, write is impossible (no quorum), so first
	// crash only one, write, restart it, then crash the other two and
	// let the recovered one... simpler: crash backup 1, write, restart,
	// wait converged, then crash leader 0 AND backup 2 is alive: the
	// new leader is chosen between 1 and 2; force it to be the
	// recovered replica by crashing 2 as well after 1 catches up? A
	// majority of 3 is 2, so only one crash at a time.
	c.Crash(1)
	if _, err := cli.Write(service.KVPut("k", []byte("v2"))); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c)
	// Now crash the leader and replica 2, leaving only the recovered
	// replica 1... that breaks quorum. Instead crash just the leader;
	// replica 1 (recovered, lower ID than 2) must take over with full
	// state.
	c.Crash(0)
	res, err := cli.Read(service.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "v2" {
		t.Fatalf("read after recovered-replica failover = %q", v)
	}
	leader, ok := c.Leader()
	if !ok || leader != 1 {
		t.Fatalf("leader = %v, want recovered replica 1", leader)
	}
}

func TestMinorityCrashTolerated(t *testing.T) {
	// floor((n-1)/2) = 1 crash of a 3-replica group must not block.
	c, cli := newKVCluster(t)
	c.Crash(2)
	for i := 0; i < 5; i++ {
		if _, err := cli.Write(service.KVAdd("ctr", 1)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cli.Read(service.KVGet("ctr"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := service.KVInt(res); got != 5 {
		t.Fatalf("counter = %d", got)
	}
}

func TestFiveReplicasTolerateTwoCrashes(t *testing.T) {
	c := newCluster(t, cluster.Config{N: 5, Service: service.KVFactory})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	c.Crash(3)
	c.Crash(4)
	if _, err := cli.Write(service.KVPut("k", []byte("v2"))); err != nil {
		t.Fatalf("write with 2/5 crashed: %v", err)
	}
	res, err := cli.Read(service.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "v2" {
		t.Fatalf("read = %q", v)
	}
}

func TestSingleReplicaCluster(t *testing.T) {
	c := newCluster(t, cluster.Config{N: 1, Service: service.KVFactory})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Read(service.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "v" {
		t.Fatalf("read = %q", v)
	}
}

func TestForcedLeaderSwitch(t *testing.T) {
	c, cli := newKVCluster(t)
	if _, err := cli.Write(service.KVPut("k", []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	old, _ := c.Leader()
	c.SuspectLeader()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if l, ok := c.Leader(); ok && l != old {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no leader switch after SuspectLeader")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Service keeps working and state survived.
	res, err := cli.Read(service.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "v1" {
		t.Fatalf("read = %q after forced switch", v)
	}
	if _, err := cli.Write(service.KVPut("k", []byte("v2"))); err != nil {
		t.Fatal(err)
	}
}
