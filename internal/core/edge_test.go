package core_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/cluster"
	"gridrep/internal/service"
	"gridrep/internal/wire"
)

// TestRequestsDuringElectionAreServed floods requests while no leader is
// active yet (cold boot): deferral plus client retries must serve every
// one of them exactly once.
func TestRequestsDuringElectionAreServed(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Service:           service.KVFactory,
		HeartbeatInterval: 5 * time.Millisecond,
		ClientRetryEvery:  100 * time.Millisecond,
		ClientDeadline:    20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	// Deliberately NO WaitForLeader: clients fire from the first moment.
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		cli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, cli *client.Client) {
			defer wg.Done()
			defer cli.Close()
			if _, err := cli.Write(service.KVAdd("boot", 1)); err != nil {
				errs <- err
				return
			}
			errs <- nil
		}(i, cli)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	verifier, _ := c.NewClient()
	defer verifier.Close()
	res, err := verifier.Read(service.KVGet("boot"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := service.KVInt(res); got != n {
		t.Fatalf("boot counter = %d, want %d", got, n)
	}
}

// TestStrayConfirmsIgnored sends confirms for reads that do not exist and
// with wrong ballots: the leader must ignore them without state damage.
func TestStrayConfirmsIgnored(t *testing.T) {
	c, cli := newKVCluster(t)
	leaderID, _ := c.Leader()
	ep, err := c.Net.Endpoint(wire.ClientIDBase + 900)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage confirms: unknown read keys, zero and absurd ballots.
	for i := 0; i < 50; i++ {
		ep.Send(&wire.Envelope{To: leaderID, Msg: &wire.Confirm{
			Bal:  wire.Ballot{Round: uint64(i % 3), Node: wire.NodeID(i % 5)},
			From: wire.NodeID(i % 3),
			Reads: []wire.Key{
				{Client: wire.ClientIDBase + wire.NodeID(i), Seq: uint64(i)},
				{Client: wire.ClientIDBase + wire.NodeID(i+1), Seq: uint64(i + 1)},
			},
		}})
	}
	// Service must still work.
	if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Read(service.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "v" {
		t.Fatalf("read = %q after stray confirms", v)
	}
}

// TestStaleBallotMessagesIgnored injects prepares/accepts below the
// current ballot directly at the leader; the protocol must reject them
// without disturbing service.
func TestStaleBallotMessagesIgnored(t *testing.T) {
	c, cli := newKVCluster(t)
	if _, err := cli.Write(service.KVPut("k", []byte("v1"))); err != nil {
		t.Fatal(err)
	}
	leaderID, _ := c.Leader()
	ep, err := c.Net.Endpoint(wire.ClientIDBase + 901)
	if err != nil {
		t.Fatal(err)
	}
	zero := wire.Ballot{}
	ep.Send(&wire.Envelope{To: leaderID, Msg: &wire.Prepare{Bal: zero}})
	ep.Send(&wire.Envelope{To: leaderID, Msg: &wire.Accept{Bal: zero, Entries: []wire.Entry{{
		Instance: 999,
		Prop: wire.Proposal{Reqs: []wire.Request{{
			Client: wire.ClientIDBase + 901, Seq: 1, Kind: wire.KindWrite,
			Op: service.KVPut("k", []byte("evil")),
		}}},
	}}}})
	ep.Send(&wire.Envelope{To: leaderID, Msg: &wire.Commit{Bal: zero, Index: 999}})
	time.Sleep(50 * time.Millisecond)
	res, err := cli.Read(service.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "v1" {
		t.Fatalf("stale-ballot injection corrupted state: k = %q", v)
	}
}

// TestManySequentialLeaderSwitches cycles leadership repeatedly; state
// must survive every switch and the log must stay dense.
func TestManySequentialLeaderSwitches(t *testing.T) {
	if testing.Short() {
		t.Skip("slow switch cycling")
	}
	c, cli := newKVCluster(t)
	total := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 4; i++ {
			if _, err := cli.Write(service.KVAdd("ctr", 1)); err != nil {
				t.Fatalf("round %d write %d: %v", round, i, err)
			}
			total++
		}
		old, _ := c.Leader()
		c.SuspectLeader()
		// Generous deadline and periodic re-suspicion: under whole-tree
		// test load a single election can overrun several seconds, and a
		// lone suspicion can be washed out by an incumbent heartbeat
		// that was already in flight.
		deadline := time.Now().Add(20 * time.Second)
		resuspect := time.Now().Add(time.Second)
		for {
			if l, ok := c.Leader(); ok && l != old {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: no switch", round)
			}
			if time.Now().After(resuspect) {
				c.SuspectLeader()
				resuspect = time.Now().Add(time.Second)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	res, err := cli.Read(service.KVGet("ctr"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := service.KVInt(res); got != int64(total) {
		t.Fatalf("ctr = %d, want %d after 5 leader switches", got, total)
	}
}

// TestLargeOperationPayloads pushes MB-scale operations through the full
// protocol stack (codec, waves, state snapshots).
func TestLargeOperationPayloads(t *testing.T) {
	_, cli := newKVCluster(t)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if _, err := cli.Write(service.KVPut("big", big)); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Read(service.KVGet("big"))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := service.KVReply(res)
	if len(v) != len(big) || v[123456] != big[123456] {
		t.Fatal("large payload corrupted through the protocol")
	}
}

// TestManyClientsManyKeys is a breadth smoke: 12 clients, disjoint key
// ranges, interleaved reads and writes.
func TestManyClientsManyKeys(t *testing.T) {
	c := newCluster(t, cluster.Config{Service: service.KVFactory})
	const nClients = 12
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		cli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		go func(i int, cli *client.Client) {
			defer cli.Close()
			for j := 0; j < 10; j++ {
				key := fmt.Sprintf("c%d-k%d", i, j)
				if _, err := cli.Write(service.KVPut(key, []byte{byte(j)})); err != nil {
					errs <- err
					return
				}
				res, err := cli.Read(service.KVGet(key))
				if err != nil {
					errs <- err
					return
				}
				if v, _ := service.KVReply(res); len(v) != 1 || v[0] != byte(j) {
					errs <- fmt.Errorf("client %d key %d: read %v", i, j, v)
					return
				}
			}
			errs <- nil
		}(i, cli)
	}
	for i := 0; i < nClients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
