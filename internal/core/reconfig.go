package core

import (
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"gridrep/internal/paxos"
	"gridrep/internal/wire"
)

// Online reconfiguration: membership changes decided by consensus,
// streaming snapshot catch-up for lagging or fresh replicas, and WAL
// pruning below the cluster-wide applied watermark. DESIGN.md §12.
//
// Membership is itself replicated state: a configuration change is a
// proposal (wire.Proposal.ConfigOp) decided by one Paxos instance under
// the *old* configuration, and every replica switches its participant
// set and quorum size at the instance's commit point. Changes are
// one-at-a-time — the leader refuses a second change while one is in
// flight — which keeps old and new quorums overlapping without joint
// consensus. A new node enters as a non-voting learner: it receives all
// broadcasts (so live accept traffic is its WAL suffix stream) but its
// votes are ignored and Ω never entitles it to lead; the leader
// promotes it with a committed add-voter entry once its gossiped
// applied watermark has caught up.

var (
	// ErrNotLeader: the replica is not the active leader.
	ErrNotLeader = errors.New("core: not the active leader")
	// ErrConfigInFlight: a configuration change is already in flight.
	ErrConfigInFlight = errors.New("core: configuration change already in flight")
	// ErrUnsafeChange: the change would leave the cluster unable to
	// form a quorum of live voters, or remove the leader itself.
	ErrUnsafeChange = errors.New("core: unsafe configuration change")
	// ErrStopped: the replica's event loop has exited.
	ErrStopped = errors.New("core: replica stopped")
)

const (
	// snapChunkSize bounds one catch-up chunk (bounded memory per
	// message; the requester reassembles).
	snapChunkSize = 256 << 10
	// maxSnapTotal bounds the reassembly buffer a requester will
	// allocate for a peer-announced snapshot size.
	maxSnapTotal = 1 << 31
	// promoteLag is how close (in instances) a learner's gossiped
	// applied watermark must be to the commit index before the leader
	// proposes its promotion to voter.
	promoteLag = 256
)

// snapFetch is the requester side of one in-progress snapshot stream:
// chunks are pulled sequentially by offset from a single peer, so memory
// stays bounded to the snapshot being assembled and the stream resumes
// from the last received offset after a drop.
type snapFetch struct {
	from     wire.NodeID
	at       uint64 // instance the snapshot is valid after
	total    uint64
	sum      uint32 // CRC-32 (IEEE) of the complete snapshot
	buf      []byte
	members  []wire.NodeID
	learners []wire.NodeID
	started  time.Time
	lastAt   time.Time
}

// isVoter reports whether n is in the current voting membership.
func (r *Replica) isVoter(n wire.NodeID) bool {
	for _, v := range r.voters {
		if v == n {
			return true
		}
	}
	return false
}

// isLearner reports whether n is a non-voting learner.
func (r *Replica) isLearner(n wire.NodeID) bool {
	for _, l := range r.learners {
		if l == n {
			return true
		}
	}
	return false
}

func removeID(ids []wire.NodeID, n wire.NodeID) []wire.NodeID {
	out := ids[:0:0]
	for _, id := range ids {
		if id != n {
			out = append(out, id)
		}
	}
	return out
}

// refreshMembership rebuilds everything derived from the membership
// lists: the broadcast set (voters ∪ learners minus self), the Ω
// participant set (voters only — a learner is never entitled to lead),
// and the cross-goroutine health mirror.
func (r *Replica) refreshMembership() {
	r.others = r.others[:0]
	for _, p := range r.voters {
		if p != r.cfg.ID {
			r.others = append(r.others, p)
		}
	}
	for _, p := range r.learners {
		if p != r.cfg.ID {
			r.others = append(r.others, p)
		}
	}
	r.elector.SetPeers(r.voters)
	r.stats.membersView.Store(&membersView{
		members:  append([]wire.NodeID(nil), r.voters...),
		learners: append([]wire.NodeID(nil), r.learners...),
	})
}

// initMembership seeds the membership lists at boot: from the durably
// persisted configuration when one exists (it may sit below the pruned
// WAL prefix, so it cannot be replayed from log entries), else from the
// static boot configuration — minus self when joining, because a joiner
// is a learner until a committed configuration entry promotes it.
func (r *Replica) initMembership() {
	members, learners, at := r.acc.Members()
	switch {
	case members != nil:
		r.voters = append([]wire.NodeID(nil), members...)
		r.learners = append([]wire.NodeID(nil), learners...)
		r.membersAt = at
	case r.cfg.Join:
		for _, p := range r.cfg.Peers {
			if p != r.cfg.ID {
				r.voters = append(r.voters, p)
			}
		}
		r.learners = []wire.NodeID{r.cfg.ID}
	default:
		r.voters = append([]wire.NodeID(nil), r.cfg.Peers...)
	}
	r.joining = r.cfg.Join && !r.isVoter(r.cfg.ID)
	r.refreshMembership()
}

// notePeerAddr records a peer's transport address and installs it into
// the transport's address book when the transport routes by address.
func (r *Replica) notePeerAddr(id wire.NodeID, addr string) {
	if addr == "" || r.peerAddrs[id] == addr {
		return
	}
	r.peerAddrs[id] = addr
	if ab, ok := r.tr.(interface {
		SetAddr(wire.NodeID, string)
	}); ok {
		ab.SetAddr(id, addr)
	}
}

// notePeerApplied folds a gossiped applied watermark (heartbeats and
// join requests carry them) into the per-peer map the prune driver
// consults.
func (r *Replica) notePeerApplied(id wire.NodeID, applied uint64) {
	if id == r.cfg.ID {
		return
	}
	if cur, ok := r.peerApplied[id]; !ok || applied > cur {
		r.peerApplied[id] = applied
	}
}

// Reconfigure proposes a membership change. It must reach the active
// leader; the returned error is the leader's admission verdict.
// Commitment is asynchronous — the change is in force once a quorum
// has accepted the configuration entry and it commits, observable via
// Health().Members. Safe to call from any goroutine.
func (r *Replica) Reconfigure(op wire.ConfigOp, node wire.NodeID, addr string) error {
	err := ErrStopped
	r.Inspect(func(r *Replica) { err = r.proposeConfig(op, node, addr) })
	return err
}

// proposeConfig validates a membership change and launches it as its
// own single-entry accept wave. Event-loop only.
func (r *Replica) proposeConfig(op wire.ConfigOp, node wire.NodeID, addr string) error {
	if r.role != RoleLeading || !r.activated {
		return ErrNotLeader
	}
	if r.pendingConfig {
		return ErrConfigInFlight
	}
	now := time.Now()
	switch op {
	case wire.ConfigAddVoter:
		if r.isVoter(node) {
			return nil // already a voter: trivially done
		}
		if !r.isLearner(node) {
			return fmt.Errorf("%w: node must join as a learner before promotion", ErrUnsafeChange)
		}
		if w, ok := r.peerApplied[node]; !ok || r.acc.Chosen() > w+promoteLag || w < r.acc.PrunedTo() {
			return fmt.Errorf("%w: learner too far behind to promote safely", ErrUnsafeChange)
		}
	case wire.ConfigRemove:
		if !r.isVoter(node) {
			if !r.isLearner(node) {
				return fmt.Errorf("%w: node is not a member", ErrUnsafeChange)
			}
			// Dropping a learner never touches quorums.
			break
		}
		if node == r.cfg.ID {
			return ErrUnsafeChange // transfer leadership first
		}
		// The surviving voters must still hold a live quorum of the
		// new (smaller) configuration, else the cluster wedges the
		// moment the change commits.
		live := 0
		for _, v := range r.voters {
			if v != node && r.elector.Alive(v, now) {
				live++
			}
		}
		if live < paxos.Quorum(len(r.voters)-1) {
			return ErrUnsafeChange
		}
	default:
		return fmt.Errorf("%w: unknown configuration op", ErrUnsafeChange)
	}
	prop := wire.Proposal{ConfigOp: op, ConfigNode: node, ConfigAddr: addr}
	entries := []wire.Entry{{Instance: r.nextInstance, Prop: prop}}
	r.nextInstance++
	r.pendingConfig = true
	r.logf("proposing config %v %v at instance %d", op, node, entries[0].Instance)
	r.launchWave(&wave{entries: entries, undo: r.svc.Snapshot()})
	return nil
}

// applyConfigEntry switches the participant set at a configuration
// entry's commit point. Runs on every replica — the leader from
// commitWave, backups from applyCommitted — and during boot replay.
// The new membership is persisted as its own WAL record because the
// deciding entry may later be pruned away.
func (r *Replica) applyConfigEntry(inst uint64, p *wire.Proposal) {
	if inst <= r.membersAt {
		return // already in force (persisted membership from this or a later instance)
	}
	switch p.ConfigOp {
	case wire.ConfigAddVoter:
		r.learners = removeID(r.learners, p.ConfigNode)
		if !r.isVoter(p.ConfigNode) {
			r.voters = append(r.voters, p.ConfigNode)
		}
		r.notePeerAddr(p.ConfigNode, p.ConfigAddr)
	case wire.ConfigRemove:
		r.voters = removeID(r.voters, p.ConfigNode)
		r.learners = removeID(r.learners, p.ConfigNode)
		delete(r.peerApplied, p.ConfigNode)
	}
	r.membersAt = inst
	if err := r.acc.SetMembers(r.voters, r.learners, inst); err != nil {
		r.fatal("persist membership: %v", err)
		return
	}
	r.refreshMembership()
	r.stats.configCommits.Add(1)
	r.logf("config %v %v in force at %d (voters=%v learners=%v)",
		p.ConfigOp, p.ConfigNode, inst, r.voters, r.learners)
	if r.pendingConfig {
		r.pendingConfig = false
	}
	switch {
	case p.ConfigOp == wire.ConfigAddVoter && p.ConfigNode == r.cfg.ID:
		r.joining = false
		r.logf("promoted to voter")
	case p.ConfigOp == wire.ConfigRemove && p.ConfigNode == r.cfg.ID:
		if r.role != RoleBackup {
			r.stepDown()
		}
	}
}

// onJoinReq admits a joiner as a non-voting learner on every replica
// that hears it: from then on the joiner is in the broadcast set, so it
// receives heartbeats (learning the commit index to catch up toward)
// and live accept traffic (the WAL suffix above its snapshot). The
// learner set is soft until the promoting configuration entry persists
// it; a restarted joiner simply re-announces.
func (r *Replica) onJoinReq(m *wire.JoinReq) {
	if m.From == r.cfg.ID {
		return
	}
	r.notePeerAddr(m.From, m.Addr)
	r.notePeerApplied(m.From, m.Applied)
	if r.isVoter(m.From) || r.isLearner(m.From) {
		return
	}
	r.learners = append(r.learners, m.From)
	r.refreshMembership()
	r.logf("admitted %v as learner (applied=%d)", m.From, m.Applied)
}

// maybePromote proposes a committed add-voter entry for the first
// learner whose gossiped applied watermark has caught up: within
// promoteLag of the commit index AND past this leader's pruned prefix —
// a learner still below the prune point has not finished its snapshot
// install, no matter how short the log looks. Leader tick path.
func (r *Replica) maybePromote() {
	if r.role != RoleLeading || !r.activated || r.pendingConfig || len(r.learners) == 0 {
		return
	}
	chosen := r.acc.Chosen()
	for _, l := range r.learners {
		if w, ok := r.peerApplied[l]; ok && chosen <= w+promoteLag && w >= r.acc.PrunedTo() && (w > 0 || chosen == 0) {
			if err := r.proposeConfig(wire.ConfigAddVoter, l, r.peerAddrs[l]); err == nil {
				return
			}
		}
	}
}

// --- streaming snapshot catch-up ---

// snapSum returns the CRC-32 of the durable snapshot, cached per
// snapshot instance so serving n chunks costs one pass, not n.
func (r *Replica) snapSum(snap []byte, at uint64) uint32 {
	if r.snapSumAt != at {
		r.snapSumAt, r.snapSumVal = at, crc32.ChecksumIEEE(snap)
	}
	return r.snapSumVal
}

// sendSnapChunk serves one chunk of the durable service snapshot. The
// durable snapshot (not the live state) is served so the responder
// needs no quiescence and the bytes cannot change under an in-progress
// stream — SaveSnapshot replaces the slice wholesale, it never mutates
// it, so a pinned stream either finishes against the old bytes or the
// requester sees a new SnapAt and restarts.
func (r *Replica) sendSnapChunk(to wire.NodeID, offset uint64) {
	snap, at := r.acc.ServiceSnapshot()
	if at == 0 || offset > uint64(len(snap)) {
		return
	}
	end := offset + snapChunkSize
	if end > uint64(len(snap)) {
		end = uint64(len(snap))
	}
	r.stats.catchupChunksOut.Add(1)
	r.send(to, &wire.SnapChunk{
		From:     r.cfg.ID,
		SnapAt:   at,
		Total:    uint64(len(snap)),
		Offset:   offset,
		Data:     snap[offset:end],
		Sum:      r.snapSum(snap, at),
		Members:  append([]wire.NodeID(nil), r.voters...),
		Learners: append([]wire.NodeID(nil), r.learners...),
	})
}

// onSnapReq serves a requester-driven chunk pull. A request for a
// snapshot instance this replica no longer holds (SaveSnapshot moved
// on) restarts the stream at the current snapshot's offset 0.
func (r *Replica) onSnapReq(m *wire.SnapReq) {
	_, at := r.acc.ServiceSnapshot()
	if at == 0 {
		return
	}
	if m.SnapAt != 0 && m.SnapAt != at {
		r.sendSnapChunk(m.From, 0)
		return
	}
	r.sendSnapChunk(m.From, m.Offset)
}

// onSnapChunk folds one received chunk into the in-progress fetch,
// pulls the next, and installs the snapshot when complete. Only a
// backup that actually trails the snapshot installs; anything else is
// a stale or duplicate stream.
func (r *Replica) onSnapChunk(m *wire.SnapChunk) {
	if r.role != RoleBackup || m.SnapAt <= r.applied || m.Total > maxSnapTotal {
		return
	}
	f := r.snapFetch
	if f == nil || f.at != m.SnapAt || f.from != m.From {
		if m.Offset != 0 {
			return // mid-stream chunk of a stream we are not assembling
		}
		f = &snapFetch{
			from:    m.From,
			at:      m.SnapAt,
			total:   m.Total,
			sum:     m.Sum,
			buf:     make([]byte, 0, m.Total),
			started: time.Now(),
		}
		r.snapFetch = f
	}
	if m.Offset != uint64(len(f.buf)) {
		return // duplicate or out-of-order; the retry path re-pulls
	}
	f.buf = append(f.buf, m.Data...)
	f.lastAt = time.Now()
	f.members = m.Members
	f.learners = m.Learners
	r.stats.catchupChunksIn.Add(1)
	r.stats.catchupBytes.Add(uint64(len(m.Data)))
	if uint64(len(f.buf)) < f.total {
		r.send(f.from, &wire.SnapReq{From: r.cfg.ID, SnapAt: f.at, Offset: uint64(len(f.buf))})
		return
	}
	r.installSnapshot(f)
}

// installSnapshot atomically adopts a fully assembled snapshot: verify
// the checksum, restore the service, persist the snapshot (the WAL has
// no entries below it to replay — the snapshot record *is* the durable
// prefix), advance the commit and applied indexes, adopt the shipped
// membership, and drop the now-covered local log prefix. Then the
// normal catch-up path streams the suffix above the snapshot.
func (r *Replica) installSnapshot(f *snapFetch) {
	r.snapFetch = nil
	if crc32.ChecksumIEEE(f.buf) != f.sum {
		r.logf("catch-up snapshot at %d from %v failed checksum; restarting", f.at, f.from)
		return // tick-driven catch-up starts a fresh stream
	}
	if f.at <= r.applied {
		return
	}
	if err := r.svc.Restore(f.buf); err != nil {
		r.fatal("catch-up snapshot restore: %v", err)
		return
	}
	if err := r.acc.SaveSnapshot(f.buf, f.at); err != nil {
		r.fatal("catch-up snapshot persist: %v", err)
		return
	}
	if err := r.acc.MarkChosen(f.at); err != nil {
		r.fatal("catch-up mark chosen: %v", err)
		return
	}
	if err := r.acc.PruneTo(f.at + 1); err != nil {
		r.fatal("catch-up prune: %v", err)
		return
	}
	r.applied = f.at
	if f.members != nil && f.at > r.membersAt {
		r.voters = append([]wire.NodeID(nil), f.members...)
		r.learners = append([]wire.NodeID(nil), f.learners...)
		r.membersAt = f.at
		if err := r.acc.SetMembers(r.voters, r.learners, f.at); err != nil {
			r.fatal("persist membership: %v", err)
			return
		}
		r.refreshMembership()
		r.joining = r.cfg.Join && !r.isVoter(r.cfg.ID)
	}
	r.stats.catchupInstalls.Add(1)
	r.stats.catchupLat.Since(f.started)
	r.logf("installed catch-up snapshot at %d (%d bytes) from %v",
		f.at, len(f.buf), f.from)
	r.sendCatchup(time.Now())
}

// tickFetch drives the in-progress snapshot stream's reliability: a
// quiet stream re-pulls the current offset; a dead one is abandoned so
// the normal catch-up broadcast can find another peer.
func (r *Replica) tickFetch(now time.Time) {
	f := r.snapFetch
	if f == nil || now.Sub(f.lastAt) <= r.cfg.RetryTimeout {
		return
	}
	if now.Sub(f.lastAt) > 4*r.cfg.RetryTimeout {
		r.logf("catch-up stream from %v stalled at %d/%d bytes; abandoning",
			f.from, len(f.buf), f.total)
		r.snapFetch = nil
		r.sendCatchup(now)
		return
	}
	r.send(f.from, &wire.SnapReq{From: r.cfg.ID, SnapAt: f.at, Offset: uint64(len(f.buf))})
}

// --- durable service snapshots and WAL pruning ---

// maybeSnapshot takes a durable service snapshot every SnapshotEvery
// applied instances. Only a clean state is captured: no speculative
// wave executions and no open exclusive transaction, so the service
// reflects exactly instance r.applied. Snapshots are what make pruning
// (and snapshot catch-up) possible — storage refuses to prune above
// the last durable snapshot.
func (r *Replica) maybeSnapshot() {
	if r.cfg.SnapshotEvery == 0 {
		return
	}
	_, at := r.acc.ServiceSnapshot()
	if r.applied < at+r.cfg.SnapshotEvery {
		return
	}
	if len(r.waves) > 0 || (r.exclus && len(r.txns) > 0) {
		return
	}
	snap := r.svc.Snapshot()
	if err := r.acc.SaveSnapshot(snap, r.applied); err != nil {
		r.fatal("snapshot save: %v", err)
		return
	}
	r.stats.snapSaves.Add(1)
}

// maybePrune discards WAL entries below the cluster-wide minimum
// applied watermark (minus a retention slack), at most once a second.
// Pruning requires a watermark from every current member — a silent or
// dead peer blocks pruning until it recovers or is removed, which is
// the safety property: no replica still entitled to entry catch-up can
// have its suffix pruned away (it would be forced into a full snapshot
// install instead, which also works, but the slack keeps the cheap
// path available). Storage additionally clamps the cut to the durable
// snapshot bound.
func (r *Replica) maybePrune(now time.Time) {
	if r.cfg.PruneKeep == 0 || now.Sub(r.lastPruneCheck) < time.Second {
		return
	}
	r.lastPruneCheck = now
	min := r.applied
	for _, p := range r.others {
		w, ok := r.peerApplied[p]
		if !ok {
			return // never heard from p: cannot bound its lag
		}
		if w < min {
			min = w
		}
	}
	if min <= r.cfg.PruneKeep {
		return
	}
	keepFrom := min - r.cfg.PruneKeep + 1
	if _, at := r.acc.ServiceSnapshot(); keepFrom > at+1 {
		keepFrom = at + 1
	}
	pruned := r.acc.PrunedTo()
	if keepFrom == 0 || keepFrom-1 <= pruned {
		return
	}
	if err := r.acc.PruneTo(keepFrom); err != nil {
		r.fatal("wal prune: %v", err)
		return
	}
	r.stats.pruneRuns.Add(1)
	r.stats.pruneEntries.Add(keepFrom - 1 - pruned)
	r.logf("pruned wal below %d (cluster-min applied %d)", keepFrom, min)
}

// tickJoin broadcasts this joiner's announcement until a committed
// configuration entry makes it a voter (applyConfigEntry clears
// joining). Re-announcing is what makes joining idempotent across
// leader switches and joiner restarts.
func (r *Replica) tickJoin(now time.Time) {
	if !r.joining || now.Sub(r.joinSentAt) < r.cfg.RetryTimeout {
		return
	}
	r.joinSentAt = now
	r.othersDo(&wire.JoinReq{From: r.cfg.ID, Addr: r.cfg.AdvertiseAddr, Applied: r.applied})
}

// Voters returns the current voting membership (call inside Inspect).
func (r *Replica) Voters() []wire.NodeID {
	return append([]wire.NodeID(nil), r.voters...)
}

// Learners returns the current learner set (call inside Inspect).
func (r *Replica) Learners() []wire.NodeID {
	return append([]wire.NodeID(nil), r.learners...)
}
