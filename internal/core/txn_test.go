package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"gridrep/internal/client"
	"gridrep/internal/cluster"
	"gridrep/internal/core"
	"gridrep/internal/service"
	"gridrep/internal/wire"
)

func TestTxnCommitAppliesAtomically(t *testing.T) {
	c, cli := newKVCluster(t)
	tx := cli.Begin()
	if _, err := tx.Do(service.KVPut("a", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Do(service.KVPut("b", []byte("2"))); err != nil {
		t.Fatal(err)
	}
	// Before commit, a plain read of a locked key hits the 2PL lock —
	// the "locks or other mechanisms" of §3.5 — rather than observing
	// uncommitted state.
	var se *client.ServiceError
	if _, err := cli.Read(service.KVGet("a")); !errors.As(err, &se) {
		t.Fatalf("read of locked key returned %v, want lock-conflict ServiceError", err)
	}
	// A read of an untouched key proceeds and sees nothing.
	res, err := cli.Read(service.KVGet("c"))
	if err != nil {
		t.Fatal(err)
	}
	if _, found := service.KVReply(res); found {
		t.Fatal("phantom key visible")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"a": "1", "b": "2"} {
		res, err := cli.Read(service.KVGet(k))
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := service.KVReply(res); string(v) != want {
			t.Fatalf("%s = %q, want %q", k, v, want)
		}
	}
	// The committed transaction must have replicated to the backups.
	waitConverged(t, c)
	snaps := snapshotAll(t, c)
	for i, snap := range snaps {
		if !bytes.Equal(snap, snaps[0]) {
			t.Fatalf("replica #%d diverged after txn commit", i)
		}
	}
}

func TestTxnAbortDiscards(t *testing.T) {
	_, cli := newKVCluster(t)
	if _, err := cli.Write(service.KVPut("a", []byte("base"))); err != nil {
		t.Fatal(err)
	}
	tx := cli.Begin()
	if _, err := tx.Do(service.KVPut("a", []byte("txn"))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Read(service.KVGet("a"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "base" {
		t.Fatalf("a = %q after abort, want base", v)
	}
}

func TestTxnOpsSeeOwnWrites(t *testing.T) {
	_, cli := newKVCluster(t)
	tx := cli.Begin()
	if _, err := tx.Do(service.KVAdd("acct", 100)); err != nil {
		t.Fatal(err)
	}
	res, err := tx.Do(service.KVAdd("acct", -30))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := service.KVInt(res); n != 70 {
		t.Fatalf("in-txn balance = %d, want 70", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnConflictAborts(t *testing.T) {
	_, cli := newKVCluster(t)
	c2client := cli // same network; need a second client
	_ = c2client
	tx1 := cli.Begin()
	if _, err := tx1.Do(service.KVPut("k", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	// A second transaction from the same client touching the same key
	// must be wounded.
	tx2 := cli.Begin()
	_, err := tx2.Do(service.KVPut("k", []byte("2")))
	if !errors.Is(err, client.ErrAborted) {
		t.Fatalf("conflicting txn op returned %v, want ErrAborted", err)
	}
	if err := tx2.Commit(); !errors.Is(err, client.ErrAborted) {
		t.Fatalf("commit of aborted txn returned %v", err)
	}
	// tx1 is unaffected.
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnInterleavedDisjointKeys(t *testing.T) {
	c := newCluster(t, cluster.Config{Service: service.KVFactory})
	cli1, _ := c.NewClient()
	cli2, _ := c.NewClient()
	defer cli1.Close()
	defer cli2.Close()
	tx1 := cli1.Begin()
	tx2 := cli2.Begin()
	if _, err := tx1.Do(service.KVPut("x", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Do(service.KVPut("y", []byte("2"))); err != nil {
		t.Fatalf("disjoint concurrent txn conflicted: %v", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	res, _ := cli1.Read(service.KVGet("y"))
	if v, _ := service.KVReply(res); string(v) != "2" {
		t.Fatalf("y = %q", v)
	}
}

func TestTxnLeaderSwitchAborts(t *testing.T) {
	// §3.6: "if the leader switches during the transaction, the previous
	// leader ... cannot commit, and the transaction has to be aborted."
	c, cli := newKVCluster(t)
	tx := cli.Begin()
	if _, err := tx.Do(service.KVPut("k", []byte("txn"))); err != nil {
		t.Fatal(err)
	}
	old, _ := c.Leader()
	c.Crash(old)
	// The commit (or any further op) must fail with an abort once the
	// new leader answers.
	err := tx.Commit()
	if !errors.Is(err, client.ErrAborted) {
		t.Fatalf("commit after leader switch returned %v, want ErrAborted", err)
	}
	// And nothing leaked into the replicated state.
	res, rerr := cli.Read(service.KVGet("k"))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if _, found := service.KVReply(res); found {
		t.Fatal("aborted transaction's write leaked across the leader switch")
	}
}

func TestTxnOpAfterLeaderSwitchAborts(t *testing.T) {
	c, cli := newKVCluster(t)
	tx := cli.Begin()
	if _, err := tx.Do(service.KVPut("k", []byte("1"))); err != nil {
		t.Fatal(err)
	}
	old, _ := c.Leader()
	c.Crash(old)
	if _, err := tx.Do(service.KVPut("k2", []byte("2"))); !errors.Is(err, client.ErrAborted) {
		t.Fatalf("txn op after switch returned %v, want ErrAborted", err)
	}
}

func TestTxnCommitSingleConsensusInstance(t *testing.T) {
	// The whole transaction occupies exactly one instance in the log:
	// commit index advances by 1 regardless of the op count (§3.5).
	c, cli := newKVCluster(t)
	leaderID, _ := c.Leader()
	var before uint64
	c.Replicas[leaderID].Inspect(func(r *core.Replica) { before = r.Chosen() })

	tx := cli.Begin()
	for i := 0; i < 5; i++ {
		if _, err := tx.Do(service.KVPut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var after uint64
	c.Replicas[leaderID].Inspect(func(r *core.Replica) { after = r.Chosen() })
	if after != before+1 {
		t.Fatalf("commit index advanced by %d, want 1 (one instance per txn)", after-before)
	}
}

func TestTxnOpsDoNotCoordinate(t *testing.T) {
	// T-Paxos's point: ops inside a transaction must not run consensus.
	c, cli := newKVCluster(t)
	leaderID, _ := c.Leader()
	var before uint64
	c.Replicas[leaderID].Inspect(func(r *core.Replica) { before = r.Chosen() })
	tx := cli.Begin()
	for i := 0; i < 4; i++ {
		if _, err := tx.Do(service.KVPut(fmt.Sprintf("k%d", i), []byte("v"))); err != nil {
			t.Fatal(err)
		}
	}
	var during uint64
	c.Replicas[leaderID].Inspect(func(r *core.Replica) { during = r.Chosen() })
	if during != before {
		t.Fatalf("commit index moved during open transaction (%d -> %d)", before, during)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	var after uint64
	c.Replicas[leaderID].Inspect(func(r *core.Replica) { after = r.Chosen() })
	if after != before {
		t.Fatalf("aborted transaction consumed log instances (%d -> %d)", before, after)
	}
}

func TestTxnNoopConcurrent(t *testing.T) {
	// The benchmark service admits fully concurrent transactions.
	c := newCluster(t, cluster.Config{})
	const nClients = 6
	errCh := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		cli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		go func(cli *client.Client) {
			defer cli.Close()
			for j := 0; j < 10; j++ {
				tx := cli.Begin()
				for k := 0; k < 3; k++ {
					if _, err := tx.Do(service.NoopWriteOp); err != nil {
						errCh <- err
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(cli)
	}
	for i := 0; i < nClients; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	// Every committed op must be reflected in the noop version counter.
	waitConverged(t, c)
	leaderID, _ := c.Leader()
	var version uint64
	c.Replicas[leaderID].Inspect(func(r *core.Replica) {
		version = r.Service().(*service.Noop).Version()
	})
	if want := uint64(nClients * 10 * 3); version != want {
		t.Fatalf("noop version = %d, want %d", version, want)
	}
}

func TestExclusiveTxnSerialization(t *testing.T) {
	// The broker is not natively transactional: the Serialize adapter
	// admits one transaction at a time and the replica parks everything
	// else behind it.
	seed := int64(100)
	c := newCluster(t, cluster.Config{Service: func() service.Service {
		seed++
		return service.NewBroker(seed)
	}})
	cli1, _ := c.NewClient()
	cli2, _ := c.NewClient()
	defer cli1.Close()
	defer cli2.Close()

	if _, err := cli1.Write(service.BrokerRegister("n1", 10)); err != nil {
		t.Fatal(err)
	}
	tx := cli1.Begin()
	if _, err := tx.Do(service.BrokerRequest(1)); err != nil {
		t.Fatal(err)
	}
	// A plain write from another client must be parked (not lost, not
	// interleaved): issue it asynchronously, then commit.
	done := make(chan error, 1)
	go func() {
		_, err := cli2.Write(service.BrokerRegister("n2", 5))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the write arrive and park
	select {
	case err := <-done:
		t.Fatalf("write completed during exclusive transaction: %v", err)
	default:
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("parked write failed: %v", err)
	}
	res, err := cli1.Read(service.BrokerList())
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "n1 1/10\nn2 0/5\n" {
		t.Fatalf("final broker state:\n%s", res)
	}
}

func TestExclusiveTxnAbortRollsBack(t *testing.T) {
	seed := int64(200)
	c := newCluster(t, cluster.Config{Service: func() service.Service {
		seed++
		return service.NewBroker(seed)
	}})
	cli, _ := c.NewClient()
	defer cli.Close()
	if _, err := cli.Write(service.BrokerRegister("n1", 10)); err != nil {
		t.Fatal(err)
	}
	tx := cli.Begin()
	if _, err := tx.Do(service.BrokerRequest(3)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Read(service.BrokerList())
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "n1 0/10\n" {
		t.Fatalf("state after exclusive abort:\n%s", res)
	}
}

func TestTxnRetransmitIdempotent(t *testing.T) {
	// Retransmitted txn ops (TxnSeq-deduplicated) must not re-execute.
	c := newCluster(t, cluster.Config{Service: service.KVFactory})
	c.Net.Model().SetLoss(0, 1, 0) // ensure replica links clean
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Inject duplicates at the wire level: send the same txn op twice by
	// using a raw request. Easier: rely on the client; here we verify
	// via direct replica inspection that a replayed TxnSeq returns the
	// cached result rather than executing twice.
	tx := cli.Begin()
	res1, err := tx.Do(service.KVAdd("acct", 10))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := service.KVInt(res1); n != 10 {
		t.Fatalf("first add = %d", n)
	}
	leaderID, _ := c.Leader()
	// Replay the op with the same TxnSeq directly into the leader.
	var dup wire.Request
	dup = wire.Request{
		Client: cli.ID(), Seq: 999, Kind: wire.KindTxnOp, Txn: 1, TxnSeq: 0,
		Op: service.KVAdd("acct", 10),
	}
	ep, err := c.Net.Endpoint(wire.ClientIDBase + 999)
	if err != nil {
		t.Fatal(err)
	}
	ep.Send(&wire.Envelope{To: leaderID, Msg: &wire.RequestMsg{Req: dup}})
	time.Sleep(50 * time.Millisecond)
	res2, err := tx.Do(service.KVAdd("acct", 5))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := service.KVInt(res2); n != 15 {
		t.Fatalf("balance = %d, want 15 (duplicate op re-executed)", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
