package core

import (
	"gridrep/internal/storage"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
	"sync"
)

// The durability pipeline (DESIGN.md §9).
//
// When the replica's Store implements storage.Flusher, the event loop
// never waits on disk: acceptor mutations stage into the store's group-
// commit buffer, and at the end of every loop iteration submitPersist
// hands the persister goroutine one job — the burst's deferred protocol
// sends plus any on-loop completion closures. The persister drains all
// queued jobs, calls Flush once for the lot (group commit), then performs
// the jobs' sends itself (transports are safe for concurrent senders) and
// ships the closures back to the event loop. The ordering contract:
//
//   - A message that claims durable acceptor state — a Promise, an
//     Accepted, an X-Paxos Confirm — is deferred via sendDurable and
//     leaves only after the Flush covering the staged records returns.
//   - The leader's own phase-1b/2b votes count toward quorum only via
//     deferred closures (deferLoop), so commit — and therefore the client
//     reply — implies a quorum of durable votes. Backups' votes arrive
//     already durable, so a commit can complete before the leader's own
//     fsync does: the leader's disk overlaps the network round trip.
//     With wave pipelining (DESIGN.md §10) several such closures are
//     outstanding at once, one per in-flight wave; they are queued and
//     delivered in wave-launch order, and each closure re-checks that its
//     wave is still in flight before counting the vote, so a rollback or
//     an early backup-quorum commit leaves the stale closure inert.
//   - Everything else (Prepare/Accept broadcasts, Commit notifications,
//     heartbeats, catch-up traffic, client replies) claims nothing about
//     local durable state and is sent immediately from the loop.
//
// Jobs from one replica are flushed and dispatched strictly in submission
// order, preserving the per-link FIFO the protocol's retransmission logic
// assumes. A Flush failure poisons the store; the persister then
// fail-stops the replica, same as an inline storage failure would.

// persistJob is one event-loop burst's deferred work: envelopes to send
// and closures to run on the loop, both only after the staged records are
// durable.
type persistJob struct {
	envs []*wire.Envelope
	fns  []func()
}

// persister owns a replica's WAL flushes and post-durability dispatch.
type persister struct {
	fl      storage.Flusher
	tr      transport.Transport
	jobs    chan persistJob
	deliver chan []func() // completion closures back to the event loop
	fail    func(error)   // fatal hook (safe off-loop)
	quit    chan struct{}
	done    chan struct{}
	once    sync.Once
}

func newPersister(fl storage.Flusher, tr transport.Transport, deliver chan []func(), fail func(error)) *persister {
	return &persister{
		fl:      fl,
		tr:      tr,
		jobs:    make(chan persistJob, 128),
		deliver: deliver,
		fail:    fail,
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

func (p *persister) start() { go p.run() }

// stop terminates the persister without a final flush: staged records die
// with the process, the same crash the protocol already tolerates (an
// acknowledged write is durable on a quorum, not on any one replica).
func (p *persister) stop() {
	p.once.Do(func() { close(p.quit) })
	<-p.done
}

func (p *persister) run() {
	defer close(p.done)
	var batch []persistJob
	for {
		batch = batch[:0]
		select {
		case <-p.quit:
			return
		case j := <-p.jobs:
			batch = append(batch, j)
		}
		// Coalesce every job already queued: one Flush covers them all.
	drain:
		for {
			select {
			case j := <-p.jobs:
				batch = append(batch, j)
			default:
				break drain
			}
		}
		if err := p.fl.Flush(); err != nil {
			p.fail(err)
			return
		}
		var fns []func()
		for _, j := range batch {
			for _, env := range j.envs {
				p.tr.Send(env)
			}
			fns = append(fns, j.fns...)
		}
		if len(fns) > 0 {
			select {
			case p.deliver <- fns:
			case <-p.quit:
				return
			}
		}
	}
}
