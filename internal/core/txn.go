package core

import (
	"errors"
	"time"

	"gridrep/internal/service"
	"gridrep/internal/wire"
)

// T-Paxos (§3.5): within a transaction the leader executes each request
// against a workspace and replies immediately, with no coordination; one
// consensus instance at commit carries the whole transaction and the
// resulting state. Aborts are leader-local. A leader switch aborts every
// open transaction (§3.6) — a new leader answers continuations of
// transactions it never saw with StatusAborted.

type txnKey struct {
	client wire.NodeID
	txn    uint64
}

type txnState struct {
	key        txnKey
	ws         service.Workspace
	ops        []wire.Request
	results    [][]byte
	nextSeq    uint32 // expected TxnSeq of the next operation
	committing bool
	exclusive  bool
	preSnap    []byte // pre-transaction state (exclusive services only)
}

// txnUID derives the service-level transaction ID from the client and its
// transaction number, so IDs never collide across clients.
func txnUID(k txnKey) uint64 {
	return uint64(k.client)<<32 | (k.txn & 0xffffffff)
}

func (r *Replica) onTxnRequest(req wire.Request) {
	r.noteWriter(req.Client)
	key := txnKey{client: req.Client, txn: req.Txn}
	tx := r.txns[key]

	switch req.Kind {
	case wire.KindTxnOp:
		r.onTxnOp(key, tx, req)
	case wire.KindTxnCommit:
		if tx == nil {
			r.replyCommitDup(req)
			return
		}
		if tx.committing {
			return // duplicate commit; reply comes when the wave lands
		}
		tx.committing = true
		r.pending[req.Key()] = true
		r.queue = append(r.queue, workItem{req: req, txn: tx, at: time.Now()})
		r.maybeStartWave()
	case wire.KindTxnAbort:
		if tx != nil {
			tx.ws.Abort()
			r.finishTxn(tx)
		}
		// Aborting an unknown transaction is idempotent success: the
		// client only wants it gone.
		r.reply(req, wire.StatusOK, nil, "")
		r.drainBlocked()
	}
}

func (r *Replica) onTxnOp(key txnKey, tx *txnState, req wire.Request) {
	if tx == nil {
		if req.TxnSeq != 0 {
			// Continuation of a transaction this leader never began:
			// it died with the previous leader (§3.6).
			r.reply(req, wire.StatusAborted, nil, "transaction lost in leader switch")
			return
		}
		if r.exclusiveBusy() {
			// Serialized services admit one transaction at a time;
			// park the opening op until the current one finishes.
			r.blocked = append(r.blocked, req)
			return
		}
		var preSnap []byte
		if r.exclus {
			preSnap = r.svc.Snapshot()
		}
		ws, err := r.txnSvc.Begin(txnUID(key))
		if err != nil {
			r.reply(req, wire.StatusError, nil, err.Error())
			return
		}
		tx = &txnState{key: key, ws: ws, exclusive: r.exclus, preSnap: preSnap}
		r.txns[key] = tx
	}

	if tx.committing {
		return // ops after commit are client bugs; ignore
	}
	switch {
	case req.TxnSeq < tx.nextSeq:
		// Retransmit of an op we already executed: re-reply.
		r.reply(req, wire.StatusOK, tx.results[req.TxnSeq], "")
		return
	case req.TxnSeq > tx.nextSeq:
		// An earlier op was lost; the client retransmits in order, so
		// just drop this one.
		return
	}

	res, err := tx.ws.Execute(req.Op)
	if err != nil {
		if errors.Is(err, service.ErrConflict) {
			// Lock conflict: wound the transaction (§3.5).
			tx.ws.Abort()
			r.finishTxn(tx)
			r.reply(req, wire.StatusAborted, nil, err.Error())
			return
		}
		r.reply(req, wire.StatusError, nil, err.Error())
		return
	}
	tx.ops = append(tx.ops, req)
	tx.results = append(tx.results, res)
	tx.nextSeq++
	// The T-Paxos fast path: reply with no replica coordination.
	r.reply(req, wire.StatusOK, res, "")
}

// replyCommitDup answers a commit for an unknown transaction: either it
// already committed (answer from the reply cache) or it died with the old
// leader (abort).
func (r *Replica) replyCommitDup(req wire.Request) {
	if r.dedup(req) {
		return
	}
	r.reply(req, wire.StatusAborted, nil, "transaction lost in leader switch")
}

// finishTxn drops the transaction and unblocks work that waited behind an
// exclusive one.
func (r *Replica) finishTxn(tx *txnState) {
	delete(r.txns, tx.key)
	if tx.exclusive {
		r.drainBlocked()
	}
}
