package core_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"gridrep/internal/cluster"
	"gridrep/internal/metrics"
	"gridrep/internal/service"
)

// readCounters sums gridrep_reads_parallel_total / _inline_total across
// all replicas (only the leader's move, but leadership may migrate).
func readCounters(t *testing.T, c *cluster.Cluster) (parallel, inline int64) {
	t.Helper()
	for _, id := range c.IDs() {
		rep, ok := c.Replica(id)
		if !ok {
			continue
		}
		snap := rep.Metrics().Snapshot()
		if m, ok := metrics.Find(snap, "gridrep_reads_parallel_total"); ok {
			parallel += m.Value
		}
		if m, ok := metrics.Find(snap, "gridrep_reads_inline_total"); ok {
			inline += m.Value
		}
	}
	return
}

// TestParallelReadPoolEngages forces the read pool on (the 1-CPU CI
// host would otherwise auto-disable it) and checks a read burst against
// a quiescent leader actually dispatches off-loop: the parallel counter
// moves, and every read still sees the committed value.
func TestParallelReadPoolEngages(t *testing.T) {
	c := newCluster(t, cluster.Config{Service: service.KVFactory, ReadConcurrency: 4})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Write(service.KVPut("k", []byte("v"))); err != nil {
		t.Fatal(err)
	}

	const nReaders, nReads = 4, 25
	var wg sync.WaitGroup
	for r := 0; r < nReaders; r++ {
		rcli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rcli.Close()
			for i := 0; i < nReads; i++ {
				res, err := rcli.Read(service.KVGet("k"))
				if err != nil {
					t.Error(err)
					return
				}
				if v, found := service.KVReply(res); !found || string(v) != "v" {
					t.Errorf("read %q,%v, want \"v\"", v, found)
					return
				}
			}
		}()
	}
	wg.Wait()
	parallel, inline := readCounters(t, c)
	if parallel == 0 {
		t.Fatalf("no read ever took the pool path (parallel=0, inline=%d)", inline)
	}
	if got := parallel + inline; got < nReaders*nReads {
		t.Fatalf("reads executed = %d, want >= %d", got, nReaders*nReads)
	}
}

// TestParallelReadVsWritesSnapshotsScrapes is the PR 8 race matrix:
// pooled reads racing write commits (which mutate KV state behind the
// pinned views), snapshot rewrites (SnapshotEvery=8 keeps the §3.3
// checkpointer busy), and metrics scrapes, all at once. Meaningful
// chiefly under -race (make multicore-race runs it at GOMAXPROCS=4);
// value correctness is asserted by the linearizability matrix.
func TestParallelReadVsWritesSnapshotsScrapes(t *testing.T) {
	c := newCluster(t, cluster.Config{
		Service:         service.KVFactory,
		ReadConcurrency: 4,
		SnapshotEvery:   8,
	})
	wcli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer wcli.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // metrics scraper: concurrent registry walks
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range c.IDs() {
				if rep, ok := c.Replica(id); ok {
					rep.Metrics().Snapshot()
				}
			}
			// Yield: an unthrottled scrape loop starves the event loops
			// on a single processor and only slows the test down.
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for r := 0; r < 3; r++ {
		rcli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rcli.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := rcli.Read(service.KVGet("ctr")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 60; i++ { // writer: every commit rewrites state the views pin
		if _, err := wcli.Write(service.KVAdd("ctr", 1)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestReadLinearizabilityMulticore reruns the linearizability bracket
// with the parallel read pool forced on, across GOMAXPROCS {1,4}: the
// off-loop read path must preserve exactly the §3.4 contract the inline
// path gives, regardless of scheduler width.
func TestReadLinearizabilityMulticore(t *testing.T) {
	for _, procs := range []int{1, 4} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			readLinearizability(t, cluster.Config{
				Service:         service.KVFactory,
				ReadConcurrency: 4,
			})
		})
	}
}
