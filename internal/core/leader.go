package core

import (
	"sort"
	"time"

	"gridrep/internal/paxos"
	"gridrep/internal/wire"
)

// onRequest dispatches a client request according to its kind and the
// replica's role. Backups ignore everything except reads, for which they
// send X-Paxos confirms; clients rely on the broadcast reaching whoever
// currently leads (§3.3).
func (r *Replica) onRequest(req wire.Request) {
	switch req.Kind {
	case wire.KindRead:
		if req.NearSet && req.Near != r.cfg.ID {
			// The client asked its nearest replica to serve this read;
			// everyone else — leader included — just vouches for it.
			r.queueNearConfirm(req)
		} else if req.NearSet && !(r.role == RoleLeading && r.activated) {
			r.registerNearRead(req)
		} else if r.role == RoleLeading && r.activated {
			r.registerRead(req)
		} else if r.role == RolePreparing {
			r.deferRequest(req)
		} else {
			r.sendConfirm(req)
		}
	case wire.KindOriginal:
		// The paper's unreplicated baseline: execute and reply with no
		// coordination at all.
		if r.role == RoleLeading && r.activated {
			res, err := r.svc.Execute(req.Op)
			if err != nil {
				r.reply(req, wire.StatusError, nil, err.Error())
				return
			}
			r.reply(req, wire.StatusOK, res, "")
		}
	case wire.KindWrite:
		if r.role == RoleLeading && r.activated {
			r.admitWrite(req)
		} else if r.role == RolePreparing {
			r.deferRequest(req)
		}
	case wire.KindTxnOp, wire.KindTxnCommit, wire.KindTxnAbort:
		if r.role == RoleLeading && r.activated {
			r.onTxnRequest(req)
		} else if r.role == RolePreparing {
			r.deferRequest(req)
		}
	}
}

// deferRequest parks a request received during the prepare phase; it is
// replayed once the leader activates (bounded to protect memory). A
// request dropped at the cap is counted — the client retries, but a
// rising DeferredDrops means elections are too slow for the offered load.
func (r *Replica) deferRequest(req wire.Request) {
	if len(r.deferred) >= 65536 {
		r.stats.deferredDrops.Add(1)
		return
	}
	r.deferred = append(r.deferred, req)
}

// admitWrite queues a write for the next wave, deduplicating retransmits.
func (r *Replica) admitWrite(req wire.Request) {
	r.noteWriter(req.Client)
	if r.dedup(req) {
		return
	}
	if r.exclusiveBusy() {
		r.blocked = append(r.blocked, req)
		return
	}
	r.pending[req.Key()] = true
	r.queue = append(r.queue, workItem{req: req, at: time.Now()})
	r.maybeStartWave()
}

// noteWriter refreshes a client's slot in the live writer population
// (see Replica.writers); retransmits count — the client is still there.
func (r *Replica) noteWriter(c wire.NodeID) {
	r.writers[c] = time.Now()
}

// sweepWriters forgets writers that have been quiet for a full election
// timeout; called from the tick while leading.
func (r *Replica) sweepWriters(now time.Time) {
	for c, seen := range r.writers {
		if now.Sub(seen) > r.cfg.ElectionTimeout {
			delete(r.writers, c)
		}
	}
}

// dedup implements at-most-once execution per client: a retransmitted
// request that already committed is answered from the reply cache; one
// that is queued or in flight is dropped (its reply will come).
func (r *Replica) dedup(req wire.Request) bool {
	if last, ok := r.lastReply[req.Client]; ok {
		if req.Seq == last.seq {
			r.send(req.Client, &wire.ReplyMsg{Rep: wire.Reply{
				Client: req.Client, Seq: req.Seq, Status: last.status,
				Leader: r.cfg.ID, Result: last.result,
			}})
			return true
		}
		if req.Seq < last.seq {
			return true // stale retransmit
		}
	}
	return r.pending[req.Key()]
}

// exclusiveBusy reports whether an exclusive (serialized) transaction
// currently owns the service, forcing everything else to wait.
func (r *Replica) exclusiveBusy() bool { return r.exclus && len(r.txns) > 0 }

// drainBlocked re-admits work that was parked behind an exclusive
// transaction.
func (r *Replica) drainBlocked() {
	if r.exclusiveBusy() || len(r.blocked) == 0 {
		return
	}
	blocked := r.blocked
	r.blocked = nil
	for _, req := range blocked {
		r.onRequest(req)
		if r.exclusiveBusy() {
			// A new exclusive transaction started; park the rest again.
			break
		}
	}
}

// maybeStartWave launches accept waves while the pipeline rule allows.
// At PipelineDepth 1 this is §3.3's serial protocol: instance i is not
// proposed before i−1 commits. Deeper pipelines launch wave i+1 against
// the local speculative post-i state — the leader already executed wave i
// before proposing it, which is the paper's own insight — while wave i's
// quorum round trip and fsync are still outstanding. Each wave's undo
// snapshot captures the state it was built on, so the oldest in-flight
// wave's undo always equals the last committed state.
//
// Speculative launches are gated against batch fragmentation: launching
// on every arrival would turn one big wave per round trip into many
// single-request waves, trading the amortized per-wave cost (messages,
// WAL records, proposal bookkeeping) for overlap that closed-loop
// clients cannot exploit — the measured failure mode is waves/request
// going up 2-3x while throughput drops. A speculative wave launches only
// once every live writer already has a request queued or in flight
// (len(pending) covers both; r.writers is the recently-active writer
// population, swept of clients quiet for an election timeout). At that
// point no further arrival is likely before the next commit, so
// waiting longer cannot grow the batch — launching now is strictly
// earlier than the serial schedule with exactly the batch serial would
// have built. Clients that go quiet make the gate conservative (it
// degrades to the serial one-wave-per-commit schedule) only until the
// sweep forgets them, and never unsafe.
// An empty pipeline always launches immediately (that is the serial
// protocol's latency), and NoBatch mode skips the gate — there every
// wave carries one request by design, so fragmentation is the
// configuration, not a failure mode. If the gate defers a launch, the
// queued work goes out at the latest when the oldest wave commits,
// which is exactly the serial schedule.
func (r *Replica) maybeStartWave() {
	for r.role == RoleLeading && r.activated && !r.pendingConfig &&
		len(r.waves) < r.cfg.PipelineDepth && len(r.queue) > 0 {
		if !r.cfg.NoBatch && len(r.waves) > 0 &&
			len(r.pending) < len(r.writers) {
			return
		}
		items := r.queue
		r.queue = nil
		if r.cfg.NoBatch && len(items) > 1 {
			r.queue = items[1:]
			items = items[:1]
		}
		r.startWave(items)
	}
}

// startWave executes one batch of work items against the current (possibly
// speculative) service state and launches the covering accept wave.
func (r *Replica) startWave(items []workItem) {
	execStart := time.Now()
	undo := r.svc.Snapshot()
	var entries []wire.Entry
	var txns []*txnState
	var firstAt time.Time
	for _, it := range items {
		if !it.at.IsZero() && (firstAt.IsZero() || it.at.Before(firstAt)) {
			firstAt = it.at
		}
	}
	for _, it := range items {
		if it.txn != nil {
			// T-Paxos commit: one instance decides the whole
			// transaction and the state after applying it (§3.5).
			if it.txn.exclusive {
				// The pre-transaction snapshot is the only state
				// that excludes the transaction's effects.
				undo = it.txn.preSnap
			}
			if err := it.txn.ws.Commit(); err != nil {
				r.finishTxn(it.txn)
				r.reply(it.req, wire.StatusAborted, nil, err.Error())
				continue
			}
			reqs := append(append([]wire.Request{}, it.txn.ops...), it.req)
			results := append(append([][]byte{}, it.txn.results...), nil)
			prop := wire.Proposal{Reqs: reqs, Results: results}
			if r.mode != StateModeFull {
				// Transaction effects are not expressible as deltas or
				// replays; attach a full snapshot to this instance.
				prop.State = r.svc.Snapshot()
				prop.HasState = true
				prop.Kind = wire.StateFull
			}
			entries = append(entries, wire.Entry{Instance: r.nextInstance, Prop: prop})
			r.nextInstance++
			txns = append(txns, it.txn)
			continue
		}
		prop, err := r.executeWrite(it.req)
		if err != nil {
			delete(r.pending, it.req.Key())
			r.reply(it.req, wire.StatusError, nil, err.Error())
			continue
		}
		entries = append(entries, wire.Entry{Instance: r.nextInstance, Prop: prop})
		r.nextInstance++
	}
	if len(entries) == 0 {
		return
	}
	if r.mode == StateModeFull {
		// State rides on the top instance only (§3.3).
		top := &entries[len(entries)-1]
		top.Prop.State = r.svc.Snapshot()
		top.Prop.HasState = true
		top.Prop.Kind = wire.StateFull
	}
	r.stats.execLat.Since(execStart)
	r.launchWave(&wave{entries: entries, undo: undo, txns: txns, firstAt: firstAt})
}

// executeWrite runs one write on the service per the state mode,
// producing the proposal for its consensus instance.
func (r *Replica) executeWrite(req wire.Request) (wire.Proposal, error) {
	switch r.mode {
	case StateModeReplay:
		res, aux, err := r.replayer.ExecuteCapture(req.Op)
		if err != nil {
			return wire.Proposal{}, err
		}
		return wire.Proposal{
			Reqs:    []wire.Request{req},
			Results: [][]byte{res},
			Aux:     [][]byte{aux},
		}, nil
	case StateModeDelta:
		res, delta, err := r.differ.ExecuteDelta(req.Op)
		if err != nil {
			return wire.Proposal{}, err
		}
		return wire.Proposal{
			Reqs:     []wire.Request{req},
			Results:  [][]byte{res},
			State:    delta,
			HasState: true,
			Kind:     wire.StateDelta,
		}, nil
	default:
		res, err := r.svc.Execute(req.Op)
		if err != nil {
			return wire.Proposal{}, err
		}
		return wire.Proposal{Reqs: []wire.Request{req}, Results: [][]byte{res}}, nil
	}
}

// launchWave self-accepts and broadcasts one accept message covering all
// of the wave's instances, appending it to the in-flight pipeline.
func (r *Replica) launchWave(w *wave) {
	insts := make([]uint64, len(w.entries))
	for i, e := range w.entries {
		insts[i] = e.Instance
	}
	w.round = paxos.NewAcceptRound(r.bal, insts, r.quorum())
	w.sentAt = time.Now()
	r.waves = append(r.waves, w)
	r.stats.wavesStarted.Add(1)
	r.stats.noteInFlight(len(r.waves))

	msg := &wire.Accept{Bal: r.bal, Entries: w.entries, Commit: r.acc.Chosen()}
	acked, err := r.acc.OnAccept(msg)
	if err != nil {
		r.fatal("self-accept: %v", err)
		return
	}
	r.othersDo(msg)
	// The accept's Commit field just told every backup about all chosen
	// instances; any deferred commit notification rode along for free.
	r.pendingCommit = false
	// The leader's own vote joins the quorum only once the staged accept
	// record is durable. The backups' votes arrive already durable, so a
	// quorum of backups can complete the wave before the local fsync
	// finishes — the leader's disk overlaps the network round trip. With
	// pipelining, several of these closures can be queued behind one
	// flush, one per outstanding wave; each guards against its wave
	// having committed or been rolled back by the time it runs.
	r.deferLoop(func() {
		if r.role != RoleLeading || !r.waveInFlight(w) {
			return
		}
		if done, _ := w.round.Add(acked, r.cfg.ID); done {
			r.noteAcked(w)
			r.commitReady()
		}
	})
}

// noteAcked marks a wave's quorum complete and stamps the quorum-phase
// latency (accept broadcast to quorum completion).
func (r *Replica) noteAcked(w *wave) {
	w.acked = true
	if !w.recovery {
		r.stats.quorumLat.Since(w.sentAt)
	}
}

// waveInFlight reports whether w is still in the in-flight pipeline.
func (r *Replica) waveInFlight(w *wave) bool {
	for _, cur := range r.waves {
		if cur == w {
			return true
		}
	}
	return false
}

// onAccepted folds a phase-2b vote into the in-flight wave it covers.
// Waves may complete their quorums out of order — a backup that missed
// wave i's accept still acks wave i+1 — but commitment stays in order:
// commitReady only pops the contiguous acked prefix.
func (r *Replica) onAccepted(from wire.NodeID, m *wire.Accepted) {
	if r.role != RoleLeading || len(r.waves) == 0 || !m.Bal.Equal(r.bal) {
		return
	}
	if !r.isVoter(from) {
		return // learners accept and persist, but their votes never count
	}
	if !m.OK {
		if r.maxSeen.Less(m.MaxProm) {
			r.maxSeen = m.MaxProm
		}
		r.logf("wave rejected by %v (promised %v)", from, m.MaxProm)
		r.elector.Demote() // withdraw the Ω claim; a stronger leader exists
		r.prepBackoff = time.Now().Add(r.cfg.RetryTimeout)
		r.stepDown()
		return
	}
	// The vote names the instances it covers; AcceptRound.Add ignores it
	// for any wave whose instance set it does not cover, so the ack
	// routes itself to the one wave it belongs to.
	for _, w := range r.waves {
		if w.acked {
			continue
		}
		if done, _ := w.round.Add(m, from); done {
			r.noteAcked(w)
		}
	}
	r.commitReady()
}

// commitReady commits the contiguous prefix of quorum-complete waves, in
// launch order. Client replies, reply-cache updates, and transaction
// completion happen per committed wave; a wave whose quorum finished
// early stays in flight until every predecessor commits, so no acked
// write can ever depend on an uncommitted instance.
func (r *Replica) commitReady() {
	committed := false
	for len(r.waves) > 0 && r.waves[0].acked {
		w := r.waves[0]
		r.waves = r.waves[1:]
		r.stats.wavesCommitted.Add(1)
		r.stats.noteInFlight(len(r.waves))
		if !w.recovery {
			r.stats.commitLat.Since(w.sentAt)
		}
		committed = true
		r.commitWave(w)
		if r.role != RoleLeading {
			return // commit failed fatally, or recovery activation reset us
		}
	}
	if !committed {
		return
	}
	// Unblock reads whose barrier (or speculative execution horizon) the
	// commits satisfied, then refill the pipeline.
	r.flushReads()
	r.flushNearReads()
	r.drainBlocked()
	r.maybeStartWave()
}

// commitWave marks one wave's instances chosen, informs the backups, and
// replies to its clients.
//
// Backups are not told with a standalone broadcast: the commit
// piggybacks on the next wave's accept message (its Commit field), which
// under load folds the two per-wave broadcasts into one. Only when no
// wave follows within CommitFlushDelay does flushCommit send the
// old-style Commit message.
func (r *Replica) commitWave(w *wave) {
	top := w.round.Top
	if err := r.acc.MarkChosen(top); err != nil {
		r.fatal("mark chosen: %v", err)
		return
	}
	r.pendingCommit = true
	defer func() {
		if r.pendingCommit {
			// Stop-and-drain before Reset: a plain Reset on a timer that
			// already fired (and whose tick was never read) would leave
			// the stale tick queued, making the next commit's flush
			// window fire immediately instead of after CommitFlushDelay.
			resetTimerDrained(r.commitFlush, r.cfg.CommitFlushDelay)
		}
	}()

	if w.recovery {
		// Adopt the recovered state: the previous leader executed these
		// requests; fold their snapshots/deltas/replays in.
		r.applyCommitted(top)
		if r.applied != top {
			// The learned entries could not reconstruct state (e.g. a
			// mode mismatch) — unrecoverable locally.
			r.fatal("recovery produced state at %d, need %d", r.applied, top)
			return
		}
	} else {
		r.applied = top
	}

	// Configuration entries take effect exactly here, the commit point:
	// the participant set and quorum switch before any later wave can
	// launch. Recovery waves already applied theirs through
	// applyCommitted above; applyConfigEntry is idempotent past it.
	for _, e := range w.entries {
		if e.Prop.IsConfig() {
			r.applyConfigEntry(e.Instance, &e.Prop)
		}
	}
	if r.role != RoleLeading {
		return // the committed change removed this leader
	}

	for _, e := range w.entries {
		r.noteCommitted(e, !w.recovery)
	}
	if !w.firstAt.IsZero() {
		// Leader-side request latency: oldest admission in the wave to
		// its reply, the component of client-observed latency this
		// replica controls.
		r.stats.requestLat.Since(w.firstAt)
	}
	for _, tx := range w.txns {
		r.finishTxn(tx)
	}
	r.maybeCompact()

	if w.recovery {
		r.activate()
	}
}

// noteCommitted updates the reply cache for every request in a committed
// entry and sends the decisive reply. For a plain write that is the
// write itself; for a transaction it is the commit request — the
// transaction's inner operations were answered immediately when executed
// (§3.5), so only their cache entries are refreshed here.
func (r *Replica) noteCommitted(e wire.Entry, replyNow bool) {
	n := len(e.Prop.Reqs)
	for i, req := range e.Prop.Reqs {
		var res []byte
		if i < len(e.Prop.Results) {
			res = e.Prop.Results[i]
		}
		if cur, ok := r.lastReply[req.Client]; !ok || req.Seq > cur.seq {
			r.lastReply[req.Client] = cachedReply{seq: req.Seq, result: res, status: wire.StatusOK}
		}
		delete(r.pending, req.Key())
		if replyNow && i == n-1 {
			r.reply(req, wire.StatusOK, res, "")
		}
	}
}

// maybeCompact strips old state payloads from the log periodically.
func (r *Replica) maybeCompact() {
	if chosen := r.acc.Chosen(); chosen-r.lastCompact >= r.cfg.CompactEvery {
		r.lastCompact = chosen
		if err := r.acc.Compact(chosen); err != nil {
			r.fatal("compact: %v", err)
		}
	}
}

// --- X-Paxos read path (§3.4) ---

// sendConfirm implements the backup half of X-Paxos: confirm the read to
// the proposer of the highest ballot this replica has accepted. The key
// is only queued here; flushConfirms sends one coalesced Confirm for all
// reads that arrived in the same event-loop burst.
func (r *Replica) sendConfirm(req wire.Request) {
	if len(r.confirmQ) < 65536 {
		r.confirmQ = append(r.confirmQ, req.Key())
	}
}

// flushConfirms sends the queued read confirmations as one Confirm
// message per destination. The ballot and destination are evaluated at
// send time, which is what makes each listed key valid per-read
// evidence: the message leaves after every listed read was received,
// carrying the highest ballot this replica has accepted as of now.
// Every confirm also carries MaxAcc, the highest accepted instance —
// the near-read barrier (DESIGN.md §16); near-serving replicas take the
// max over their confirm quorum, so the stamp must be on every confirm
// a quorum might count, not just the near-targeted ones.
func (r *Replica) flushConfirms() {
	maxAcc, stamp := r.acc.MaxInstance(), !r.cfg.WireCompat
	if !stamp {
		// Compat mode: the stamp is a post-v1 trailing wire field old
		// peers cannot decode; an unstamped confirm still carries §3.4
		// leadership evidence, it just cannot vouch for near reads.
		maxAcc = 0
	}
	if r.nearQN > 0 {
		// Near-targeted confirms are durability-gated exactly like
		// leader-path ones. A near-serving backup ignores their ballot,
		// but when the client's Near target is the active leader the
		// read lands on the §3.4 path there (onRequest), and the
		// leader's onConfirm counts any matching-ballot voter confirm as
		// leadership evidence — so the ballot this message carries must
		// be backed by a flushed promise, or a crash that forgets the
		// staged record could let a new leader commit writes while the
		// old one still assembles read majorities from pre-crash
		// confirms. (The MaxAcc stamp alone would not need the gate: it
		// only ever raises the near-read barrier, so an overshooting
		// claim is harmless.)
		bal := r.acc.Promised()
		for target, keys := range r.nearQ {
			r.sendDurable(target, &wire.Confirm{Bal: bal, From: r.cfg.ID, Reads: keys, MaxAcc: maxAcc, MaxAccSet: stamp})
			delete(r.nearQ, target)
		}
		r.nearQN = 0
	}
	if len(r.confirmQ) == 0 {
		return
	}
	keys := r.confirmQ
	r.confirmQ = nil
	bal := r.acc.Promised()
	target := bal.Node
	if bal.IsZero() {
		// Nothing promised yet: fall back to the Ω estimate.
		leader, ok := r.elector.Leader(time.Now())
		if !ok {
			return
		}
		target = leader
	}
	if target == r.cfg.ID {
		return // we believe we lead but are not active; client will retry
	}
	// A confirm asserts this replica's promise/accept horizon; if that
	// ballot's promise is still staged, sending now would let a §3.4 read
	// majority count a vote the disk could forget. Durable-gate it.
	r.sendDurable(target, &wire.Confirm{Bal: bal, From: r.cfg.ID, Reads: keys, MaxAcc: maxAcc, MaxAccSet: stamp})
}

// registerRead starts X-Paxos coordination for a read at the leader: the
// reply needs (a) confirms from a majority — counting the leader itself —
// proving no higher ballot has superseded us, and (b) commitment of every
// write proposed before the read arrived, so the reply reflects the
// latest completed write.
func (r *Replica) registerRead(req wire.Request) {
	if r.exclusiveBusy() {
		r.blocked = append(r.blocked, req)
		return
	}
	key := req.Key()
	if _, dup := r.reads[key]; dup {
		return
	}
	pr := &pendingRead{
		req:      req,
		confirms: map[wire.NodeID]bool{r.cfg.ID: true},
		barrier:  r.nextInstance - 1,
	}
	for _, from := range r.confirmBuf[key] {
		pr.confirms[from] = true
	}
	delete(r.confirmBuf, key)
	r.reads[key] = pr
	r.tryFinishRead(pr)
}

// onConfirm counts a backup's confirms toward the matching pending
// reads. One message may vouch for many reads (backup-side coalescing);
// every key is independent evidence for its own read. Only confirms for
// the leader's own current ballot prove leadership; a confirm carrying
// any other ballot is ignored (§3.4: only the leader with the highest
// accepted ballot can assemble a majority).
func (r *Replica) onConfirm(m *wire.Confirm) {
	if r.role != RoleLeading || !m.Bal.Equal(r.bal) {
		// Not valid §3.4 leadership evidence — but it may still vouch
		// for reads this replica serves as the client's nearest, whose
		// claim (the sender's accepted horizon) is ballot-independent.
		r.onNearConfirm(m)
		return
	}
	if !r.isVoter(m.From) {
		return // a learner's confirm is not §3.4 majority evidence
	}
	for _, key := range m.Reads {
		if pnr, ok := r.nearReads[key]; ok {
			// Registered before this replica took leadership; the
			// confirm still serves it on the near path — but only a
			// stamped one: without MaxAcc there is no barrier claim to
			// fold, and counting it could serve a read below an
			// acknowledged write.
			if m.MaxAccSet {
				r.foldNearConfirm(pnr, m.From, m.MaxAcc)
				r.tryFinishNearRead(pnr)
			}
			continue
		}
		pr, ok := r.reads[key]
		if !ok {
			// The confirm can outrun the client's request; buffer it.
			if len(r.confirmBuf) < 65536 {
				r.confirmBuf[key] = append(r.confirmBuf[key], m.From)
			}
			continue
		}
		pr.confirms[m.From] = true
		r.tryFinishRead(pr)
	}
}

// --- nearest-replica reads (DESIGN.md §16) ---

// queueNearConfirm queues one confirm for a read another replica serves
// as the client's nearest; flushConfirms coalesces the queue into one
// Confirm per serving replica. Any role may vouch — the message claims
// only this replica's accepted horizon, never leadership.
func (r *Replica) queueNearConfirm(req wire.Request) {
	if r.nearQN >= 65536 {
		return
	}
	r.nearQ[req.Near] = append(r.nearQ[req.Near], req.Key())
	r.nearQN++
}

// registerNearRead starts serving a read stamped with this replica as
// the client's nearest. An active leader never lands here — onRequest
// routes its near-stamped reads through the ordinary §3.4 path, which
// is strictly cheaper when client and leader are already adjacent.
func (r *Replica) registerNearRead(req wire.Request) {
	key := req.Key()
	if _, dup := r.nearReads[key]; dup {
		return
	}
	pnr := &pendingNearRead{
		req:     req,
		froms:   make(map[wire.NodeID]bool),
		maxAcc:  r.acc.MaxInstance(),
		expires: time.Now().Add(r.cfg.ElectionTimeout),
	}
	if r.isVoter(r.cfg.ID) {
		pnr.froms[r.cfg.ID] = true
	}
	for _, c := range r.nearConfirmBuf[key] {
		r.foldNearConfirm(pnr, c.from, c.maxAcc)
	}
	delete(r.nearConfirmBuf, key)
	r.nearReads[key] = pnr
	r.tryFinishNearRead(pnr)
}

// onNearConfirm folds a confirm into the near reads it vouches for; a
// confirm that outran its read is buffered, mirroring confirmBuf. Only
// stamped confirms count: one without MaxAcc (a pre-§16 peer, or
// WireCompat mode) makes no barrier claim, and folding it as "barrier
// zero" could serve a read that misses an acknowledged write.
func (r *Replica) onNearConfirm(m *wire.Confirm) {
	if !r.isVoter(m.From) || !m.MaxAccSet {
		return
	}
	for _, key := range m.Reads {
		pnr, ok := r.nearReads[key]
		if !ok {
			if len(r.nearConfirmBuf) < 65536 {
				r.nearConfirmBuf[key] = append(r.nearConfirmBuf[key],
					nearConfirm{from: m.From, maxAcc: m.MaxAcc})
			}
			continue
		}
		r.foldNearConfirm(pnr, m.From, m.MaxAcc)
		r.tryFinishNearRead(pnr)
	}
}

// foldNearConfirm counts one voter's vouch and raises the read's
// barrier to the accepted horizon it reported.
func (r *Replica) foldNearConfirm(pnr *pendingNearRead, from wire.NodeID, maxAcc uint64) {
	if !r.isVoter(from) {
		return
	}
	pnr.froms[from] = true
	if maxAcc > pnr.maxAcc {
		pnr.maxAcc = maxAcc
	}
}

// tryFinishNearRead serves a near read once a voter quorum has vouched
// and the locally applied state covers every reported accepted horizon.
// Why that is linearizable: a write acked before the read started was
// accepted at its instance i by a majority; the read's voter quorum
// intersects it, and the intersecting voter had accepted i before it
// confirmed — so the barrier is ≥ i, and applied ≥ barrier means the
// served state includes the write. A leading replica additionally needs
// a quiet pipeline: with waves in flight (or an exclusive transaction
// open) the live service state is speculative, and a near read must
// only ever expose committed state.
func (r *Replica) tryFinishNearRead(pnr *pendingNearRead) {
	if len(pnr.froms) < r.quorum() || r.applied < pnr.maxAcc {
		return
	}
	if r.role == RoleLeading && (len(r.waves) > 0 || r.exclusiveBusy()) {
		return
	}
	delete(r.nearReads, pnr.req.Key())
	r.stats.readsNear.Add(1)
	res, err := r.svc.Execute(pnr.req.Op)
	if err != nil {
		r.reply(pnr.req, wire.StatusError, nil, err.Error())
		return
	}
	r.reply(pnr.req, wire.StatusOK, res, "")
}

// flushNearReads re-checks the near reads' gates after applied moved or
// the pipeline drained.
func (r *Replica) flushNearReads() {
	if len(r.nearReads) == 0 {
		return
	}
	var ready []*pendingNearRead
	for _, pnr := range r.nearReads {
		if len(pnr.froms) >= r.quorum() && r.applied >= pnr.maxAcc {
			ready = append(ready, pnr)
		}
	}
	for _, pnr := range ready {
		r.tryFinishNearRead(pnr)
	}
}

// sweepNearReads expires near reads whose quorum or barrier never
// materialized (partitioned voters, an accepted-but-never-chosen
// barrier instance). The client is told to retry; its rebroadcast
// drops the Near stamp and the leader path takes over. The confirm
// buffer is generation-swept on the same cadence so confirms for reads
// that never arrive cannot accrete.
func (r *Replica) sweepNearReads(now time.Time) {
	for key, pnr := range r.nearReads {
		if now.After(pnr.expires) {
			delete(r.nearReads, key)
			r.reply(pnr.req, wire.StatusNotLeader, nil, "near read timed out")
		}
	}
	if len(r.nearConfirmBuf) > 0 && now.Sub(r.nearBufSwept) > r.cfg.ElectionTimeout {
		r.nearBufSwept = now
		r.nearConfirmBuf = make(map[wire.Key][]nearConfirm)
	}
}

// tryFinishRead advances one read through its two gates. The read
// executes once a confirm majority proves leadership and the commit
// barrier is satisfied; under pipelining the service state it executes
// against may include speculative waves launched after the read arrived,
// so the reply is additionally held until everything proposed up to the
// execution point has committed. If those waves roll back instead, the
// leader steps down and the held read is answered NotLeader — the
// speculative result is never exposed. At PipelineDepth 1 the execution
// point never leads the commit index when both gates pass, so the reply
// leaves immediately, exactly the pre-pipelining behavior.
func (r *Replica) tryFinishRead(pr *pendingRead) {
	if !pr.executed {
		if len(pr.confirms) < r.quorum() || r.acc.Chosen() < pr.barrier {
			return
		}
		if r.dispatchRead(pr) {
			return
		}
		pr.executed = true
		r.stats.readsInline.Add(1)
		pr.execTop = r.nextInstance - 1
		res, err := r.svc.Execute(pr.req.Op)
		if err != nil {
			pr.failed = true
			pr.errStr = err.Error()
		} else {
			pr.result = res
		}
	}
	if r.acc.Chosen() < pr.execTop {
		return // result reflects speculative state; wait for its commit
	}
	delete(r.reads, pr.req.Key())
	if pr.failed {
		r.reply(pr.req, wire.StatusError, nil, pr.errStr)
		return
	}
	r.reply(pr.req, wire.StatusOK, pr.result, "")
}

// dispatchRead hands a gate-cleared read to the worker pool
// (readpool.go). Eligibility beyond the pool existing: no speculative
// wave may be in flight — with waves outstanding the live service state
// leads the commit index, and a view pinned now would expose
// uncommitted effects (those reads keep the inline execute-and-hold
// path) — and the service must agree to pin (a KV with open transaction
// locks refuses, because a frozen view cannot report lock conflicts).
// A full pool queue also falls back inline; the event loop never
// blocks. On dispatch the read is complete from the protocol's point of
// view — confirmed, barrier-committed, state pinned — so it leaves
// r.reads now and a later step-down has nothing to answer.
func (r *Replica) dispatchRead(pr *pendingRead) bool {
	if r.readPool == nil || len(r.waves) != 0 {
		return false
	}
	view, ok := r.viewer.ReadView()
	if !ok {
		return false
	}
	if !r.readPool.tryDispatch(readJob{view: view, req: pr.req}) {
		return false
	}
	delete(r.reads, pr.req.Key())
	r.stats.readsParallel.Add(1)
	return true
}

// flushReads re-checks barrier and execution-horizon satisfaction after a
// commit.
func (r *Replica) flushReads() {
	if len(r.reads) == 0 {
		return
	}
	chosen := r.acc.Chosen()
	var ready []*pendingRead
	for _, pr := range r.reads {
		if pr.executed {
			if chosen >= pr.execTop {
				ready = append(ready, pr)
			}
			continue
		}
		if len(pr.confirms) >= r.quorum() && chosen >= pr.barrier {
			ready = append(ready, pr)
		}
	}
	for _, pr := range ready {
		r.tryFinishRead(pr)
	}
}

// --- prepare completion and activation ---

// onPromise folds a phase-1b answer into the prepare round.
func (r *Replica) onPromise(from wire.NodeID, m *wire.Promise) {
	if r.role != RolePreparing || r.prep == nil || !m.Bal.Equal(r.bal) {
		return
	}
	if !r.isVoter(from) {
		return // only voter promises count toward the prepare quorum
	}
	done, rejected := r.prep.Add(m, from)
	if rejected {
		if r.maxSeen.Less(r.prep.MaxPromSeen()) {
			r.maxSeen = r.prep.MaxPromSeen()
		}
		r.prepBackoff = time.Now().Add(r.cfg.RetryTimeout)
		r.stepDown()
		return
	}
	if done {
		r.onPrepared()
	}
}

// onPrepared runs after a majority has promised. If a promiser reported
// commits we lack, catch up first; otherwise finish activation.
func (r *Replica) onPrepared() {
	if r.prep.MaxChosen() > r.acc.Chosen() || r.applied < r.acc.Chosen() {
		r.awaitCatchup = true
		r.sendCatchup(time.Now())
		return
	}
	r.finishActivation()
}

// finishActivation re-proposes the adoptable prefix of the proposals
// learned during prepare as a single recovery wave, then opens for
// business (§3.3's recovery example: one message covering the accept
// phases of several instances).
//
// Adoption is prefix-only (paxos.OutcomePrefix): a crashed leader that
// was pipelining may leave speculative instances past a gap, and their
// attached states were computed on top of predecessors no quorum member
// accepted. The prepare quorum intersects the accept quorum of every
// committed instance, so the committed log is always a gap-free,
// ballot-monotone prefix of what prepare learns — anything past the first
// gap or ballot regression is provably uncommitted (hence unacked) and is
// discarded; its clients retransmit and re-execute on the adopted state.
func (r *Replica) finishActivation() {
	chosen := r.acc.Chosen()
	// The ballot that committed the chosen prefix seeds the monotonicity
	// floor. The local entry at the commit index is trusted: commit-index
	// advancement validates entries against the committing ballot, and
	// catch-up installs authoritative copies.
	var floor wire.Ballot
	if e, ok := r.acc.Get(chosen); ok {
		floor = e.Bal
	}
	learned, discarded := r.prep.OutcomePrefix(chosen, floor)
	if discarded > 0 {
		r.stats.recoveryDiscarded.Add(uint64(discarded))
		r.logf("recovery discarded %d speculative entries past a gap above %d",
			discarded, chosen)
	}
	r.role = RoleLeading
	r.rebuildReplyCache()

	if len(learned) == 0 {
		r.nextInstance = chosen + 1
		r.activate()
		return
	}
	entries := make([]wire.Entry, len(learned))
	for i, e := range learned {
		e.Bal = r.bal
		entries[i] = e
	}
	top := entries[len(entries)-1].Instance
	r.nextInstance = top + 1
	r.logf("recovery wave %d..%d", chosen+1, top)
	r.launchWave(&wave{entries: entries, recovery: true})
}

// activate opens the leader for client traffic and replays requests that
// arrived during the prepare phase.
func (r *Replica) activate() {
	r.activated = true
	r.logf("active at chosen=%d ballot=%v", r.acc.Chosen(), r.bal)
	deferred := r.deferred
	r.deferred = nil
	for _, req := range deferred {
		r.onRequest(req)
	}
	r.flushReads()
	r.maybeStartWave()
}

// rebuildReplyCache reconstructs per-client reply state from the log so a
// new leader answers retransmits of already-committed requests instead of
// re-executing them.
func (r *Replica) rebuildReplyCache() {
	r.lastReply = make(map[wire.NodeID]cachedReply)
	chosen := r.acc.Chosen()
	// Scan all accepted entries at or below the commit index plus the
	// learned suffix (which is about to be re-proposed).
	var insts []uint64
	for inst := range acceptedInstances(r.acc, chosen) {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i] < insts[j] })
	for _, inst := range insts {
		e, _ := r.acc.Get(inst)
		for i, req := range e.Prop.Reqs {
			var res []byte
			if i < len(e.Prop.Results) {
				res = e.Prop.Results[i]
			}
			if cur, ok := r.lastReply[req.Client]; !ok || req.Seq > cur.seq {
				r.lastReply[req.Client] = cachedReply{seq: req.Seq, result: res, status: wire.StatusOK}
			}
		}
	}
}

// acceptedInstances enumerates the instances with accepted entries at or
// below the commit index.
func acceptedInstances(acc *paxos.Acceptor, chosen uint64) map[uint64]struct{} {
	out := make(map[uint64]struct{})
	for inst := uint64(1); inst <= chosen; inst++ {
		if _, ok := acc.Get(inst); ok {
			out[inst] = struct{}{}
		}
	}
	return out
}
