package core

import (
	"sync"
	"sync/atomic"

	"gridrep/internal/service"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// readPool executes confirmed X-Paxos reads concurrently, off the event
// loop. A read reaches the pool only after its §3.4 protocol work is
// done — majority confirms counted, commit barrier satisfied — and only
// while no speculative wave is in flight, so the service state equals
// the last committed instance and the pinned service.ReadView the job
// carries is exactly the state the reply must reflect. Workers execute
// against that immutable view and fan the reply out directly through
// the transport (transports are safe for concurrent senders; the
// persister relies on the same contract), so neither the execution nor
// the reply serializes through the event loop. Writes are untouched:
// they stay strictly ordered on the loop.
type readPool struct {
	tr      transport.Transport
	local   wire.NodeID
	jobs    chan readJob
	wg      sync.WaitGroup
	workers int

	inFlight atomic.Int64 // dispatched, not yet replied
	executed atomic.Uint64
}

// readJob is one pool-bound read: the pinned view plus the request the
// reply answers.
type readJob struct {
	view service.ReadView
	req  wire.Request
}

// readPoolQueue bounds the dispatch queue. A full queue is not an
// error: tryDispatch refuses and the event loop executes the read
// inline, the pre-parallelism behavior.
const readPoolQueue = 1024

// newReadPool starts workers goroutines draining the job queue.
func newReadPool(tr transport.Transport, local wire.NodeID, workers int) *readPool {
	p := &readPool{
		tr:      tr,
		local:   local,
		jobs:    make(chan readJob, readPoolQueue),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// tryDispatch hands a read to the pool without ever blocking the event
// loop; false means the queue is full and the caller must execute
// inline.
func (p *readPool) tryDispatch(j readJob) bool {
	p.inFlight.Add(1)
	select {
	case p.jobs <- j:
		return true
	default:
		p.inFlight.Add(-1)
		return false
	}
}

// stop drains and joins the workers. Only the event loop dispatches, so
// callers must stop the loop first (Replica.Stop does); and the workers
// send replies through the transport, so stop must precede the
// transport's Close.
func (p *readPool) stop() {
	close(p.jobs)
	p.wg.Wait()
}

func (p *readPool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		rep := wire.Reply{
			Client: j.req.Client,
			Seq:    j.req.Seq,
			Status: wire.StatusOK,
			Leader: p.local,
		}
		res, err := j.view.ReadExecute(j.req.Op)
		if err != nil {
			rep.Status = wire.StatusError
			rep.Err = err.Error()
		} else {
			rep.Result = res
		}
		p.tr.Send(&wire.Envelope{To: j.req.Client, Msg: &wire.ReplyMsg{Rep: rep}})
		p.executed.Add(1)
		p.inFlight.Add(-1)
	}
}
