package core

import (
	"sync/atomic"

	"gridrep/internal/metrics"
	"gridrep/internal/wire"
)

// stats holds the replica counters that are read outside the event loop
// (replicad -stats, the metrics endpoint, benchmarks, tests). The event
// loop is the only writer; the metrics instruments are atomics, so
// snapshots are race-free without handing readers a ticket onto the
// loop. Every instrument registers into the replica's metrics.Registry
// (DESIGN.md §11); Stats below is the thin compatibility shim over it.
type stats struct {
	deferredDrops     metrics.Counter
	specRollbacks     metrics.Counter
	wavesRolledBack   metrics.Counter
	recoveryDiscarded metrics.Counter
	wavesStarted      metrics.Counter
	wavesCommitted    metrics.Counter
	wavesInFlight     metrics.Gauge
	maxWavesInFlight  metrics.Gauge

	// Read execution split (DESIGN.md §14): parallel counts reads
	// dispatched to the worker pool, inline counts reads executed on
	// the event loop (pool absent, speculative waves in flight, view
	// pin refused, or pool queue full).
	readsParallel metrics.Counter
	readsInline   metrics.Counter
	// readsNear counts X-Paxos reads this replica served as the
	// client's nearest replica (DESIGN.md §16).
	readsNear metrics.Counter

	// Reconfiguration instruments (DESIGN.md §12): snapshot catch-up
	// traffic on both sides, durable snapshot saves, WAL prune
	// activity, and committed configuration changes.
	snapSaves        metrics.Counter
	catchupChunksOut metrics.Counter
	catchupChunksIn  metrics.Counter
	catchupBytes     metrics.Counter
	catchupInstalls  metrics.Counter
	pruneRuns        metrics.Counter
	pruneEntries     metrics.Counter
	configCommits    metrics.Counter

	// Health mirrors: loop-confined protocol state (role, ballot, commit
	// and applied indexes) copied into atomics once per loop iteration,
	// so /healthz and the gauges below never need the event loop.
	role        atomic.Int32
	ballotRound atomic.Uint64
	ballotNode  atomic.Uint32
	chosen      atomic.Uint64
	applied     atomic.Uint64
	snapAt      atomic.Uint64
	prunedTo    atomic.Uint64
	membersView atomic.Value // *membersView, refreshed on membership change

	// Per-phase latency histograms stamped through the leader hot path
	// (DESIGN.md §11): execute is the service execution of one wave's
	// batch; quorum is accept-broadcast to quorum completion; commit is
	// accept-broadcast to commitment (includes waiting on predecessor
	// waves under pipelining); request is client-admission to reply, the
	// leader-side component of what clients observe.
	execLat    *metrics.Histogram
	quorumLat  *metrics.Histogram
	commitLat  *metrics.Histogram
	requestLat *metrics.Histogram
	catchupLat *metrics.Histogram
}

// membersView is the cross-goroutine snapshot of the participant set.
type membersView struct {
	members  []wire.NodeID
	learners []wire.NodeID
}

// register publishes the replica's instruments into reg and creates the
// phase histograms.
func (s *stats) register(reg *metrics.Registry) {
	reg.RegisterCounter("gridrep_waves_started_total",
		"accept waves launched while leading", &s.wavesStarted)
	reg.RegisterCounter("gridrep_waves_committed_total",
		"accept waves committed while leading", &s.wavesCommitted)
	reg.RegisterGauge("gridrep_waves_in_flight",
		"speculative accept waves currently outstanding", &s.wavesInFlight)
	reg.RegisterGauge("gridrep_waves_in_flight_max",
		"high-water mark of outstanding accept waves", &s.maxWavesInFlight)
	reg.RegisterCounter("gridrep_spec_rollbacks_total",
		"ballot demotions that rolled speculative state back", &s.specRollbacks)
	reg.RegisterCounter("gridrep_waves_rolled_back_total",
		"speculative waves discarded by rollbacks", &s.wavesRolledBack)
	reg.RegisterCounter("gridrep_recovery_discarded_total",
		"learned entries discarded during prepare-phase recovery", &s.recoveryDiscarded)
	reg.RegisterCounter("gridrep_deferred_drops_total",
		"client requests dropped from the full prepare-phase deferral buffer", &s.deferredDrops)
	reg.RegisterCounter("gridrep_reads_parallel_total",
		"X-Paxos reads executed on the parallel worker pool", &s.readsParallel)
	reg.RegisterCounter("gridrep_reads_inline_total",
		"X-Paxos reads executed inline on the event loop", &s.readsInline)
	reg.RegisterCounter("gridrep_reads_near_total",
		"X-Paxos reads served as the client's nearest replica", &s.readsNear)
	reg.RegisterGaugeFunc("gridrep_role",
		"replica role (0 backup, 1 preparing, 2 leading)",
		func() int64 { return int64(s.role.Load()) })
	reg.RegisterGaugeFunc("gridrep_ballot_round",
		"current leadership ballot round",
		func() int64 { return int64(s.ballotRound.Load()) })
	reg.RegisterGaugeFunc("gridrep_commit_index",
		"highest chosen (committed) instance",
		func() int64 { return int64(s.chosen.Load()) })
	reg.RegisterGaugeFunc("gridrep_applied_index",
		"instance whose post-state the service reflects",
		func() int64 { return int64(s.applied.Load()) })
	reg.RegisterCounter("gridrep_snapshot_saves_total",
		"durable service snapshots written (prune/catch-up anchors)", &s.snapSaves)
	reg.RegisterCounter("gridrep_catchup_chunks_sent_total",
		"snapshot catch-up chunks served to lagging peers", &s.catchupChunksOut)
	reg.RegisterCounter("gridrep_catchup_chunks_received_total",
		"snapshot catch-up chunks received from peers", &s.catchupChunksIn)
	reg.RegisterCounter("gridrep_catchup_bytes_received_total",
		"snapshot catch-up payload bytes received", &s.catchupBytes)
	reg.RegisterCounter("gridrep_catchup_installs_total",
		"complete snapshots installed via streaming catch-up", &s.catchupInstalls)
	reg.RegisterCounter("gridrep_prune_runs_total",
		"WAL prune passes that discarded entries", &s.pruneRuns)
	reg.RegisterCounter("gridrep_prune_entries_total",
		"log instances discarded by WAL pruning", &s.pruneEntries)
	reg.RegisterCounter("gridrep_config_commits_total",
		"committed membership configuration changes applied", &s.configCommits)
	reg.RegisterGaugeFunc("gridrep_snapshot_index",
		"instance the durable service snapshot is valid after",
		func() int64 { return int64(s.snapAt.Load()) })
	reg.RegisterGaugeFunc("gridrep_pruned_index",
		"highest WAL instance discarded by pruning",
		func() int64 { return int64(s.prunedTo.Load()) })
	s.catchupLat = reg.Histogram("gridrep_catchup_install_seconds",
		"snapshot stream start to install per catch-up", metrics.UnitNanoseconds)
	s.execLat = reg.Histogram("gridrep_execute_latency_seconds",
		"service execution time per accept wave", metrics.UnitNanoseconds)
	s.quorumLat = reg.Histogram("gridrep_quorum_latency_seconds",
		"accept broadcast to quorum completion per wave", metrics.UnitNanoseconds)
	s.commitLat = reg.Histogram("gridrep_commit_latency_seconds",
		"accept broadcast to commitment per wave", metrics.UnitNanoseconds)
	s.requestLat = reg.Histogram("gridrep_request_latency_seconds",
		"client admission to reply per wave (oldest request)", metrics.UnitNanoseconds)
}

// noteInFlight records the current pipeline occupancy and keeps the
// high-water mark (the event loop is the only writer, so SetMax's
// load+store is race-free).
func (s *stats) noteInFlight(n int) {
	s.wavesInFlight.Set(int64(n))
	s.maxWavesInFlight.SetMax(int64(n))
}

// Stats is a point-in-time snapshot of replica-level protocol counters.
// Safe to take from any goroutine. It predates the metrics registry and
// is kept as a compatibility shim: every field reads the registered
// instrument that replaced it.
type Stats struct {
	// PipelineDepth is the configured bound on in-flight accept waves.
	PipelineDepth int
	// WavesInFlight is the current number of speculative waves
	// outstanding; MaxWavesInFlight is its high-water mark since start.
	WavesInFlight    int64
	MaxWavesInFlight int64
	// WavesStarted / WavesCommitted count accept waves launched and
	// committed while leading.
	WavesStarted   uint64
	WavesCommitted uint64
	// SpecRollbacks counts ballot demotions that rolled the service back
	// to the last committed instance; WavesRolledBack counts the
	// speculative waves those rollbacks discarded.
	SpecRollbacks   uint64
	WavesRolledBack uint64
	// RecoveryDiscarded counts learned entries a new leader discarded
	// during prepare-phase recovery because they sat past a gap (or a
	// ballot regression) — a crashed leader's uncommitted speculative
	// suffix.
	RecoveryDiscarded uint64
	// DeferredDrops counts client requests dropped because the
	// prepare-phase deferral buffer was full (the client retries).
	DeferredDrops uint64
	// ReadsNear counts X-Paxos reads this replica served as the
	// client's nearest replica (DESIGN.md §16).
	ReadsNear uint64
}

// Stats snapshots the replica's counters. Unlike the other accessors it
// does not need to run inside Inspect.
func (r *Replica) Stats() Stats {
	return Stats{
		PipelineDepth:     r.cfg.PipelineDepth,
		WavesInFlight:     r.stats.wavesInFlight.Load(),
		MaxWavesInFlight:  r.stats.maxWavesInFlight.Load(),
		WavesStarted:      r.stats.wavesStarted.Load(),
		WavesCommitted:    r.stats.wavesCommitted.Load(),
		SpecRollbacks:     r.stats.specRollbacks.Load(),
		WavesRolledBack:   r.stats.wavesRolledBack.Load(),
		RecoveryDiscarded: r.stats.recoveryDiscarded.Load(),
		DeferredDrops:     r.stats.deferredDrops.Load(),
		ReadsNear:         r.stats.readsNear.Load(),
	}
}

// Metrics returns the replica's metrics registry: the core instruments
// plus whatever the store and transport registered (they self-register
// when they implement metrics.Instrumented). Safe from any goroutine.
func (r *Replica) Metrics() *metrics.Registry { return r.reg }

// Health is a cross-goroutine-safe snapshot of the replica's protocol
// position, the payload of the /healthz endpoint.
type Health struct {
	ID          wire.NodeID `json:"id"`
	Role        string      `json:"role"`
	Leading     bool        `json:"leading"`
	Ballot      string      `json:"ballot"`
	CommitIndex uint64      `json:"commit_index"`
	// Applied is the applied watermark: the instance whose post-state
	// the service reflects, the quantity replicas gossip for pruning.
	Applied uint64 `json:"applied"`
	// SnapshotIndex is the instance the durable service snapshot is
	// valid after (0 = no snapshot yet); PrunedIndex is the highest WAL
	// instance discarded by pruning.
	SnapshotIndex uint64 `json:"snapshot_index"`
	PrunedIndex   uint64 `json:"pruned_index"`
	// Members is the current voting configuration; Learners the
	// non-voting catch-up members.
	Members  []wire.NodeID `json:"members,omitempty"`
	Learners []wire.NodeID `json:"learners,omitempty"`
}

// Health snapshots the replica's protocol position from the health
// mirrors. Safe from any goroutine; the mirrors are refreshed once per
// event-loop iteration, so the view lags live state by at most one
// loop step.
func (r *Replica) Health() Health {
	role := Role(r.stats.role.Load())
	bal := wire.Ballot{
		Round: r.stats.ballotRound.Load(),
		Node:  wire.NodeID(r.stats.ballotNode.Load()),
	}
	h := Health{
		ID:            r.cfg.ID,
		Role:          role.String(),
		Leading:       role == RoleLeading,
		Ballot:        bal.String(),
		CommitIndex:   r.stats.chosen.Load(),
		Applied:       r.stats.applied.Load(),
		SnapshotIndex: r.stats.snapAt.Load(),
		PrunedIndex:   r.stats.prunedTo.Load(),
	}
	if mv, ok := r.stats.membersView.Load().(*membersView); ok {
		h.Members = mv.members
		h.Learners = mv.learners
	}
	return h
}

// publishHealth refreshes the health mirrors; called from the event loop
// once per iteration (a handful of uncontended atomic stores).
func (r *Replica) publishHealth() {
	r.stats.role.Store(int32(r.role))
	r.stats.ballotRound.Store(r.bal.Round)
	r.stats.ballotNode.Store(uint32(r.bal.Node))
	r.stats.chosen.Store(r.acc.Chosen())
	r.stats.applied.Store(r.applied)
	_, snapAt := r.acc.ServiceSnapshot()
	r.stats.snapAt.Store(snapAt)
	r.stats.prunedTo.Store(r.acc.PrunedTo())
}
