package core

import "sync/atomic"

// stats holds the replica counters that are read outside the event loop
// (replicad -stats, benchmarks, tests). The event loop is the only
// writer; atomics make the snapshots race-free without handing readers a
// ticket onto the loop.
type stats struct {
	deferredDrops     atomic.Uint64
	specRollbacks     atomic.Uint64
	wavesRolledBack   atomic.Uint64
	recoveryDiscarded atomic.Uint64
	wavesStarted      atomic.Uint64
	wavesCommitted    atomic.Uint64
	wavesInFlight     atomic.Int64
	maxWavesInFlight  atomic.Int64
}

// noteInFlight records the current pipeline occupancy and keeps the
// high-water mark (the event loop is the only writer, so a plain
// compare-and-store suffices).
func (s *stats) noteInFlight(n int) {
	s.wavesInFlight.Store(int64(n))
	if int64(n) > s.maxWavesInFlight.Load() {
		s.maxWavesInFlight.Store(int64(n))
	}
}

// Stats is a point-in-time snapshot of replica-level protocol counters.
// Safe to take from any goroutine.
type Stats struct {
	// PipelineDepth is the configured bound on in-flight accept waves.
	PipelineDepth int
	// WavesInFlight is the current number of speculative waves
	// outstanding; MaxWavesInFlight is its high-water mark since start.
	WavesInFlight    int64
	MaxWavesInFlight int64
	// WavesStarted / WavesCommitted count accept waves launched and
	// committed while leading.
	WavesStarted   uint64
	WavesCommitted uint64
	// SpecRollbacks counts ballot demotions that rolled the service back
	// to the last committed instance; WavesRolledBack counts the
	// speculative waves those rollbacks discarded.
	SpecRollbacks   uint64
	WavesRolledBack uint64
	// RecoveryDiscarded counts learned entries a new leader discarded
	// during prepare-phase recovery because they sat past a gap (or a
	// ballot regression) — a crashed leader's uncommitted speculative
	// suffix.
	RecoveryDiscarded uint64
	// DeferredDrops counts client requests dropped because the
	// prepare-phase deferral buffer was full (the client retries).
	DeferredDrops uint64
}

// Stats snapshots the replica's counters. Unlike the other accessors it
// does not need to run inside Inspect.
func (r *Replica) Stats() Stats {
	return Stats{
		PipelineDepth:    r.cfg.PipelineDepth,
		WavesInFlight:    r.stats.wavesInFlight.Load(),
		MaxWavesInFlight: r.stats.maxWavesInFlight.Load(),
		WavesStarted:     r.stats.wavesStarted.Load(),
		WavesCommitted:   r.stats.wavesCommitted.Load(),
		SpecRollbacks:     r.stats.specRollbacks.Load(),
		WavesRolledBack:   r.stats.wavesRolledBack.Load(),
		RecoveryDiscarded: r.stats.recoveryDiscarded.Load(),
		DeferredDrops:     r.stats.deferredDrops.Load(),
	}
}
