package core_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"gridrep/internal/cluster"
	"gridrep/internal/core"
	"gridrep/internal/netem"
	"gridrep/internal/service"
)

// leaderStats snapshots the current leader's protocol counters.
func leaderStats(t *testing.T, c *cluster.Cluster) core.Stats {
	t.Helper()
	id, ok := c.Leader()
	if !ok {
		t.Fatal("no leader")
	}
	rep, ok := c.Replica(id)
	if !ok {
		t.Fatal("leader replica missing")
	}
	return rep.Stats()
}

// runWriters issues writers*each KVAdd("ctr", 1) increments from
// concurrent clients and fails the test on any error.
func runWriters(t *testing.T, c *cluster.Cluster, writers, each int) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		cli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cli.Close()
			for i := 0; i < each; i++ {
				if _, err := cli.Write(service.KVAdd("ctr", 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// checkCounter asserts the replicated counter holds exactly want — every
// acked increment applied exactly once — and that all replicas converge
// to identical state.
func checkCounter(t *testing.T, c *cluster.Cluster, want int64) {
	t.Helper()
	waitConverged(t, c)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Read(service.KVGet("ctr"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := service.KVInt(res)
	if got != want {
		t.Fatalf("ctr = %d, want %d (lost or duplicated acked writes)", got, want)
	}
	snaps := snapshotAll(t, c)
	for i, s := range snaps {
		if !bytes.Equal(s, snaps[0]) {
			t.Fatalf("replica #%d diverged", i)
		}
	}
}

// TestPipelinedWritesOverlapAndCommitInOrder runs concurrent writers
// against a depth-4 leader on a WAN-like profile whose quorum RTT is
// long enough that waves genuinely overlap. Every ack must be correct
// (the counter is exact) and the pipeline must actually have been used.
func TestPipelinedWritesOverlapAndCommitInOrder(t *testing.T) {
	c := newCluster(t, cluster.Config{
		Service:       service.KVFactory,
		Profile:       netem.WAN(0),
		PipelineDepth: 4,
		NoBatch:       true, // one request per wave: the pipeline, not batching, must absorb concurrency
	})
	const writers, each = 4, 6
	runWriters(t, c, writers, each)
	checkCounter(t, c, writers*each)

	st := leaderStats(t, c)
	if st.PipelineDepth != 4 {
		t.Fatalf("PipelineDepth = %d, want 4", st.PipelineDepth)
	}
	if st.MaxWavesInFlight < 2 {
		t.Fatalf("MaxWavesInFlight = %d; waves never overlapped", st.MaxWavesInFlight)
	}
	if st.WavesInFlight != 0 {
		t.Fatalf("WavesInFlight = %d after quiescence", st.WavesInFlight)
	}
	if st.WavesStarted != st.WavesCommitted {
		t.Fatalf("waves started %d != committed %d after quiescence",
			st.WavesStarted, st.WavesCommitted)
	}
}

// TestPipelineDepthOneStaysSerial checks the compatibility contract:
// with the default depth the leader never has more than one wave in
// flight, reproducing the paper's serial protocol exactly.
func TestPipelineDepthOneStaysSerial(t *testing.T) {
	c := newCluster(t, cluster.Config{
		Service:       service.KVFactory,
		Profile:       netem.WAN(0),
		PipelineDepth: 1,
		NoBatch:       true,
	})
	runWriters(t, c, 4, 4)
	checkCounter(t, c, 16)

	st := leaderStats(t, c)
	if st.MaxWavesInFlight > 1 {
		t.Fatalf("MaxWavesInFlight = %d at depth 1; the serial protocol allows only 1",
			st.MaxWavesInFlight)
	}
}

// TestLeaderSwitchMidPipelineRollsBack forces a §3.6 leader switch while
// a depth-4 pipeline is busy. The demoted leader must roll its service
// back to the last committed instance (discarding speculative
// executions), and no acked write may be lost or duplicated across the
// switch — clients retry unacked requests at the new leader and the
// reply cache deduplicates.
func TestLeaderSwitchMidPipelineRollsBack(t *testing.T) {
	c := newCluster(t, cluster.Config{
		Service:       service.KVFactory,
		Profile:       netem.WAN(0),
		PipelineDepth: 4,
		NoBatch:       true,
	})
	oldLeader, ok := c.Leader()
	if !ok {
		t.Fatal("no leader")
	}
	rep, _ := c.Replica(oldLeader)

	const writers, each = 4, 8
	done := make(chan struct{})
	go func() {
		defer close(done)
		runWriters(t, c, writers, each)
	}()
	// Wait until the pipeline is demonstrably occupied (Stats is safe
	// from any goroutine), then yank leadership mid-flight: with a ~35ms
	// quorum RTT the in-flight waves cannot commit before the demotion
	// lands on the event loop.
	deadline := time.Now().Add(5 * time.Second)
	for rep.Stats().WavesInFlight < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if rep.Stats().WavesInFlight < 2 {
		t.Fatal("pipeline never filled with 2+ waves")
	}
	c.SuspectLeader()
	<-done

	if _, err := c.WaitForLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	checkCounter(t, c, writers*each)

	// The demoted leader rolled back whatever was speculative. With 4
	// concurrent WAN writers and a ~35ms quorum RTT the pipeline is
	// essentially always occupied, so the demotion must have found waves
	// in flight.
	st := rep.Stats()
	if st.SpecRollbacks == 0 {
		t.Fatalf("SpecRollbacks = 0 after demotion mid-pipeline (waves rolled back: %d)",
			st.WavesRolledBack)
	}
}
