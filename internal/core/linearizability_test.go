package core_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gridrep/internal/cluster"
	"gridrep/internal/service"
)

// TestReadLinearizability brackets every X-Paxos read of a monotonic
// counter between two bounds derived from the writer's history:
//
//	completed-before-read-start <= read value <= started-before-read-end
//
// which is exactly linearizability for a register that only increments.
// Violating the lower bound is a stale read (the §3.4 consistency
// requirement: "the value ... must reflect the latest update");
// violating the upper bound would mean reading an increment that was
// never issued.
//
// The suite runs over PipelineDepth {1,4} × NoBatch {false,true}: the
// speculative pipeline must not weaken the read contract — a reply (read
// or write) may only expose state whose every instance is committed,
// never a speculative suffix.
func TestReadLinearizability(t *testing.T) {
	for _, depth := range []int{1, 4} {
		for _, noBatch := range []bool{false, true} {
			t.Run(fmt.Sprintf("depth=%d,nobatch=%v", depth, noBatch), func(t *testing.T) {
				readLinearizability(t, cluster.Config{
					Service:       service.KVFactory,
					PipelineDepth: depth,
					NoBatch:       noBatch,
				})
			})
		}
	}
}

func readLinearizability(t *testing.T, cfg cluster.Config) {
	c := newCluster(t, cfg)
	wcli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer wcli.Close()

	var started, completed atomic.Int64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < 80; i++ {
			started.Add(1)
			if _, err := wcli.Write(service.KVAdd("ctr", 1)); err != nil {
				t.Error(err)
				return
			}
			completed.Add(1)
		}
	}()

	const nReaders = 3
	var wg sync.WaitGroup
	errs := make(chan error, nReaders)
	for r := 0; r < nReaders; r++ {
		rcli, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer rcli.Close()
			var prev int64 = -1
			for {
				select {
				case <-writerDone:
					errs <- nil
					return
				default:
				}
				lower := completed.Load()
				res, err := rcli.Read(service.KVGet("ctr"))
				if err != nil {
					errs <- err
					return
				}
				upper := started.Load()
				got, _ := service.KVInt(res)
				if got < lower {
					t.Errorf("stale read: %d < %d completed writes", got, lower)
				}
				if got > upper {
					t.Errorf("phantom read: %d > %d started writes", got, upper)
				}
				// Session monotonicity: this reader's view never goes
				// backwards.
				if got < prev {
					t.Errorf("non-monotonic reads: %d after %d", got, prev)
				}
				prev = got
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
