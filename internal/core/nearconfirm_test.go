package core

import (
	"testing"

	"gridrep/internal/paxos"
	"gridrep/internal/storage"
	"gridrep/internal/wire"
)

// sendRecorder is a Transport stub that records direct sends; anything
// landing here bypassed the durability gate.
type sendRecorder struct{ sent []*wire.Envelope }

func (s *sendRecorder) Local() wire.NodeID          { return 1 }
func (s *sendRecorder) Send(env *wire.Envelope)     { s.sent = append(s.sent, env) }
func (s *sendRecorder) Recv() <-chan *wire.Envelope { return nil }
func (s *sendRecorder) Close() error                { return nil }

// TestNearConfirmsAreDurabilityGated pins the fix for the near-confirm
// durability hole: a near-targeted confirm carries this replica's
// promised ballot, and when the client's Near target is the active
// leader that ballot is counted as §3.4 leadership evidence by
// onConfirm. The message must therefore be deferred through the
// persister (sendDurable) like every other confirm — a direct send
// could let a read majority count a promise still staged in the WAL,
// which a crash would forget.
func TestNearConfirmsAreDurabilityGated(t *testing.T) {
	acc, err := paxos.NewAcceptor(storage.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	tr := &sendRecorder{}
	r := &Replica{
		acc:     acc,
		tr:      tr,
		nearQ:   make(map[wire.NodeID][]wire.Key),
		persist: &persister{}, // non-nil: sendDurable must defer, not send
	}
	r.cfg.ID = 1

	req := wire.Request{Client: wire.ClientIDBase, Seq: 7, Kind: wire.KindRead, Near: 2, NearSet: true}
	r.queueNearConfirm(req)
	r.flushConfirms()

	if len(tr.sent) != 0 {
		t.Fatalf("near confirm sent directly (%d envelopes) — it bypassed the durability gate", len(tr.sent))
	}
	if len(r.deferEnvs) != 1 {
		t.Fatalf("deferred envelopes = %d, want exactly 1 near confirm", len(r.deferEnvs))
	}
	env := r.deferEnvs[0]
	if env.To != 2 {
		t.Fatalf("confirm addressed to %d, want near target 2", env.To)
	}
	c, ok := env.Msg.(*wire.Confirm)
	if !ok {
		t.Fatalf("deferred message is %T, want *wire.Confirm", env.Msg)
	}
	if len(c.Reads) != 1 || c.Reads[0] != req.Key() {
		t.Fatalf("confirm reads = %v, want [%v]", c.Reads, req.Key())
	}
	if !c.MaxAccSet {
		t.Fatal("near confirm not stamped with MaxAcc — it cannot vouch for the read's barrier")
	}
	if r.nearQN != 0 || len(r.nearQ) != 0 {
		t.Fatal("near queue not drained by flushConfirms")
	}
}

// TestWireCompatSuppressesMaxAccStamp: in rolling-upgrade compat mode
// the confirm must omit the MaxAcc stamp (a post-v1 trailing wire field
// pre-geo peers reject) while still carrying the §3.4 ballot evidence.
func TestWireCompatSuppressesMaxAccStamp(t *testing.T) {
	acc, err := paxos.NewAcceptor(storage.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	r := &Replica{
		acc:     acc,
		tr:      &sendRecorder{},
		nearQ:   make(map[wire.NodeID][]wire.Key),
		persist: &persister{},
	}
	r.cfg.ID = 1
	r.cfg.WireCompat = true
	r.queueNearConfirm(wire.Request{Client: wire.ClientIDBase, Seq: 3, Kind: wire.KindRead, Near: 2, NearSet: true})
	r.flushConfirms()
	if len(r.deferEnvs) != 1 {
		t.Fatalf("deferred envelopes = %d, want 1", len(r.deferEnvs))
	}
	c := r.deferEnvs[0].Msg.(*wire.Confirm)
	if c.MaxAccSet || c.MaxAcc != 0 {
		t.Fatalf("WireCompat confirm still stamped: MaxAccSet=%v MaxAcc=%d", c.MaxAccSet, c.MaxAcc)
	}
}

// TestUnstampedConfirmDoesNotVouchForNearReads: a confirm without the
// MaxAcc stamp (an old peer, or a WireCompat replica) makes no barrier
// claim; counting it toward a near read's quorum as "barrier zero"
// could serve state below an acknowledged write. It must be ignored.
func TestUnstampedConfirmDoesNotVouchForNearReads(t *testing.T) {
	req := wire.Request{Client: wire.ClientIDBase, Seq: 5, Kind: wire.KindRead, Near: 1, NearSet: true}
	pnr := &pendingNearRead{req: req, froms: make(map[wire.NodeID]bool)}
	r := &Replica{
		voters:         []wire.NodeID{0, 1, 2},
		nearReads:      map[wire.Key]*pendingNearRead{req.Key(): pnr},
		nearConfirmBuf: make(map[wire.Key][]nearConfirm),
	}
	r.cfg.ID = 1
	r.onNearConfirm(&wire.Confirm{From: 2, Reads: []wire.Key{req.Key()}}) // no MaxAccSet
	if len(pnr.froms) != 0 {
		t.Fatalf("unstamped confirm counted toward the near quorum: froms=%v", pnr.froms)
	}
	if len(r.nearConfirmBuf) != 0 {
		t.Fatal("unstamped confirm buffered as future near evidence")
	}
	r.onNearConfirm(&wire.Confirm{From: 2, Reads: []wire.Key{req.Key()}, MaxAcc: 7, MaxAccSet: true})
	if !pnr.froms[2] || pnr.maxAcc != 7 {
		t.Fatalf("stamped confirm not folded: froms=%v maxAcc=%d", pnr.froms, pnr.maxAcc)
	}
}
