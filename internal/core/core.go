// Package core implements the paper's primary contribution: a replica
// engine for nondeterministic services in asynchronous systems, built on
// Paxos (§3.3), with the X-Paxos read optimization (§3.4) and the T-Paxos
// transaction optimization (§3.5).
//
// Protocol summary
//
//   - Clients broadcast every request to all replicas; only the leader
//     replies. The leader executes each mutating request once — capturing
//     all nondeterministic choices — and then has the pair <req, state>
//     chosen by one Paxos instance. Backups never execute requests; they
//     adopt the leader's state.
//   - Instance i is proposed only after instance i−1 commits, so the
//     chosen log has no gaps. Queued requests are batched into a single
//     multi-instance accept message, the same mechanism §3.3 uses for
//     leader recovery ("one single message" covering several instances);
//     service state is attached only to the batch's highest instance.
//   - Reads (X-Paxos) skip consensus: every non-leader replica that
//     receives the read sends a confirm — carrying the highest ballot it
//     has accepted — to that ballot's proposer; the leader replies after
//     a majority of confirms, and after every write it had proposed
//     before the read arrived has committed.
//   - Transactions (T-Paxos) execute on the leader with immediate
//     replies; a single consensus instance at commit carries the whole
//     transaction and the resulting state. Leader switches abort open
//     transactions (§3.6).
//
// A Replica runs one event-loop goroutine; every protocol structure is
// confined to it.
package core

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"gridrep/internal/metrics"
	"gridrep/internal/omega"
	"gridrep/internal/paxos"
	"gridrep/internal/service"
	"gridrep/internal/storage"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// StateMode selects how proposals carry service state (§3.3 discusses
// all three). The default Auto picks the cheapest mode the service
// supports: Replay when it implements service.Replayer, Delta when it
// implements service.Differ, Full otherwise.
type StateMode int

const (
	// StateModeAuto: choose per the service's capabilities.
	StateModeAuto StateMode = iota
	// StateModeFull: proposals carry full post-execution snapshots
	// (attached only to the top instance of each accept wave).
	StateModeFull
	// StateModeDelta: proposals carry per-instance state deltas
	// (service.Differ).
	StateModeDelta
	// StateModeReplay: proposals carry the captured nondeterministic
	// choices; replicas regenerate state by deterministic re-execution
	// (service.Replayer).
	StateModeReplay
)

func (m StateMode) String() string {
	switch m {
	case StateModeFull:
		return "full"
	case StateModeDelta:
		return "delta"
	case StateModeReplay:
		return "replay"
	default:
		return "auto"
	}
}

// Role is a replica's current protocol role.
type Role int

const (
	// RoleBackup: acceptor only; ignores client requests except reads
	// (which it confirms).
	RoleBackup Role = iota
	// RolePreparing: elected by Ω, running the prepare phase (and
	// possibly catching up) before serving.
	RolePreparing
	// RoleLeading: serving client requests. The leader is fully active
	// once its recovery wave (if any) has committed.
	RoleLeading
)

func (r Role) String() string {
	switch r {
	case RoleBackup:
		return "backup"
	case RolePreparing:
		return "preparing"
	case RoleLeading:
		return "leading"
	default:
		return "role?"
	}
}

// Config assembles a replica.
type Config struct {
	// ID is this replica's node ID (must be < wire.ClientIDBase).
	ID wire.NodeID
	// Peers lists all replica IDs, including ID.
	Peers []wire.NodeID
	// Service is the replicated application instance owned by this
	// replica.
	Service service.Service
	// Store is the replica's stable storage. Defaults to storage.NewMem.
	Store storage.Store
	// Transport carries protocol messages. Required.
	Transport transport.Transport

	// HeartbeatInterval drives Ω heartbeats (default 25ms).
	HeartbeatInterval time.Duration
	// ElectionTimeout is how long a silent leader stays trusted
	// (default 8×HeartbeatInterval).
	ElectionTimeout time.Duration
	// RetryTimeout bounds how long the leader waits before
	// retransmitting an unacknowledged prepare/accept/catch-up
	// (default 4×HeartbeatInterval).
	RetryTimeout time.Duration
	// CompactEvery triggers log-state compaction after this many
	// committed instances (default 1024).
	CompactEvery uint64
	// CommitFlushDelay bounds how long a committed wave's notification
	// may wait for the next accept wave to carry it (default 1ms).
	// Commits always piggyback on the next wave's accept broadcast;
	// this timer only covers the case where the queue drains and no
	// next wave follows, so the last wave's commit is never delayed
	// beyond this bound.
	CommitFlushDelay time.Duration
	// PipelineDepth bounds how many accept waves the leader may keep in
	// flight speculatively. The default 1 is the paper's serial protocol:
	// instance i is proposed only after i−1 commits. Depths above 1 let
	// the leader execute wave i+1 against its local post-i state and
	// propose it while wave i's quorum round trip and fsync are still
	// outstanding; every wave keeps an undo snapshot so a ballot demotion
	// rolls the service back to the last committed instance, and client
	// replies still fire only when a wave and all its predecessors
	// commit. See DESIGN.md §10 for the ordering/rollback contract.
	PipelineDepth int
	// NoBatch disables multi-instance accept waves (ablation knob): each
	// wave carries exactly one request, so the strictly sequential
	// reading of §3.3 is enforced even under load. Default off — the
	// paper's own recovery path sends multi-instance accepts, and
	// batching is what lets write throughput scale in Figure 5.
	NoBatch bool
	// NoPersist disables the durability pipeline (ablation knob): even
	// when Store implements storage.Flusher, mutations are written and
	// fsynced inline on the event loop and dependent sends go out
	// immediately — the pre-group-commit behavior. Default off.
	NoPersist bool
	// ReadConcurrency sizes the parallel-read worker pool (DESIGN.md
	// §14): when the service implements service.ReadViewer, confirmed
	// X-Paxos reads execute concurrently against pinned immutable views
	// and their replies fan out off the event loop. 0 (the default)
	// sizes the pool to GOMAXPROCS, and disables it when that is 1 —
	// one core gains nothing from handing reads off, and skipping the
	// pool keeps the single-core read path byte-identical to the serial
	// engine. Negative disables the pool unconditionally.
	ReadConcurrency int
	// StateMode selects the state-transfer reduction of §3.3.
	StateMode StateMode

	// Join marks this replica as a joiner: it starts as a non-voting
	// learner outside the voting membership, announces itself with
	// JoinReq broadcasts, catches up (via snapshot streaming when the
	// peers' WALs are pruned), and becomes a voter only through a
	// committed configuration entry (DESIGN.md §12).
	Join bool
	// AdvertiseAddr is the transport address peers should use to reach
	// this replica, carried in JoinReq so existing members can extend
	// their address books. Empty on transports that route by ID alone.
	AdvertiseAddr string
	// SnapshotEvery takes a durable service snapshot every this many
	// applied instances (default 4096). Snapshots bound WAL pruning and
	// serve streaming catch-up.
	SnapshotEvery uint64
	// PruneKeep retains this many instances below the cluster-wide
	// minimum applied watermark when pruning the WAL (default 1024);
	// everything older is discarded once a durable snapshot covers it.
	PruneKeep uint64

	// Metrics, if set, is where this replica registers its instruments —
	// typically a metrics.Registry.WithPrefix view when several consensus
	// groups share one process-wide registry (DESIGN.md §13). Nil means a
	// private registry per replica, the single-group behaviour.
	Metrics *metrics.Registry

	// LeaderRank orders replicas for Ω leader preference (lowest rank
	// leads); nil means prefer the lowest ID. Sharded deployments rotate
	// it per group so leadership spreads across the membership.
	//
	// Setting LeaderRank also enables Ω rank preemption: the preferred
	// replica reclaims leadership from a higher-ranked incumbent after a
	// holddown, so placement converges regardless of replica boot order
	// instead of sticking with whoever claimed first.
	LeaderRank func(wire.NodeID) uint64

	// RTTPlacement folds measured network distance into Ω leader
	// preference (DESIGN.md §16): each replica smooths its transport's
	// per-peer round-trip estimates (transport.RTTReporter) into one
	// placement cost, gossips it on heartbeats, and Ω ranks replicas by
	// cost before LeaderRank/ID — so leadership converges onto the
	// replica closest to the rest of the cluster. Enables the same rank
	// preemption as LeaderRank. No-op when the transport cannot report
	// RTTs.
	RTTPlacement bool

	// WireCompat keeps every message this replica emits decodable by
	// pre-§16 binaries, for rolling a mixed-version cluster through an
	// upgrade: confirms are not stamped with MaxAcc and RTT placement
	// costs are not measured or gossiped (WireCompat overrides
	// RTTPlacement). The cost is features, not safety — without the
	// stamp this replica's confirms cannot vouch for nearest-replica
	// reads, so near-stamped reads fall back to the leader path on
	// their first retry. Run the upgraded binaries with WireCompat until
	// every replica is new, then drop it (and only then enable
	// RTTPlacement or near reads).
	WireCompat bool

	// Logger, if set, receives role transitions and anomalies.
	Logger *log.Logger
}

func (c *Config) fillDefaults() {
	if c.Store == nil {
		c.Store = storage.NewMem()
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 25 * time.Millisecond
	}
	if c.ElectionTimeout == 0 {
		c.ElectionTimeout = 8 * c.HeartbeatInterval
	}
	if c.RetryTimeout == 0 {
		c.RetryTimeout = 4 * c.HeartbeatInterval
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = 1024
	}
	if c.CommitFlushDelay == 0 {
		c.CommitFlushDelay = time.Millisecond
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 1
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 4096
	}
	if c.PruneKeep == 0 {
		c.PruneKeep = 1024
	}
}

// wave is one in-flight multi-instance accept (§3.3: several instances,
// one message; state attached to the top instance only). Up to
// Config.PipelineDepth waves may be in flight at once; they commit
// strictly in launch order (acked marks a wave whose own quorum is
// complete but whose predecessors are not).
type wave struct {
	round    *paxos.AcceptRound
	entries  []wire.Entry
	undo     []byte      // pre-execution snapshot; nil for recovery waves
	recovery bool        // re-proposing learned entries after election
	acked    bool        // quorum complete, waiting on predecessor waves
	txns     []*txnState // transactions committing in this wave
	sentAt   time.Time
	firstAt  time.Time // admission time of the wave's oldest request
}

// pendingRead is an X-Paxos read waiting for majority confirms and for
// the commit barrier (every instance proposed before the read arrived).
// Once both hold the read executes; under pipelining the service state it
// observed may still be speculative, so the reply is held until the
// newest instance proposed at execution time (execTop) commits.
type pendingRead struct {
	req      wire.Request
	confirms map[wire.NodeID]bool
	barrier  uint64
	executed bool
	execTop  uint64 // newest proposed instance at execution time
	result   []byte
	errStr   string
	failed   bool
}

// pendingNearRead is an X-Paxos read this replica serves on the
// client's behalf because it is the client's nearest replica (DESIGN.md
// §16). It needs (a) confirms from a quorum of voters — each carrying
// the sender's max accepted instance — and (b) the local applied index
// to reach the highest such instance. Any write acked before the read
// started was accepted at its instance by a majority, every confirm
// quorum intersects that majority, and the intersecting voter's MaxAcc
// covers the write — so waiting for applied ≥ max(MaxAcc) guarantees
// the served state includes it.
type pendingNearRead struct {
	req     wire.Request
	froms   map[wire.NodeID]bool
	maxAcc  uint64 // barrier: highest accepted instance any confirmer reported
	expires time.Time
}

// nearConfirm buffers a near-read confirm that outran the client's own
// request (the same race confirmBuf covers for the leader path).
type nearConfirm struct {
	from   wire.NodeID
	maxAcc uint64
}

// cachedReply supports at-most-once execution per client.
type cachedReply struct {
	seq    uint64
	result []byte
	status wire.ReplyStatus
}

// Replica is one service process of the replicated nondeterministic
// service.
type Replica struct {
	cfg      Config
	tr       transport.Transport
	acc      *paxos.Acceptor
	elector  *omega.Elector
	svc      service.Service
	txnSvc   service.Transactional
	exclus   bool // transactions serialize all other work
	mode     StateMode
	differ   service.Differ   // non-nil in delta mode
	replayer service.Replayer // non-nil in replay mode

	// Parallel read execution (readpool.go): viewer pins immutable
	// state views, readPool runs gate-cleared reads off-loop. Both nil
	// when the service cannot pin views or ReadConcurrency disables it.
	viewer   service.ReadViewer
	readPool *readPool

	role      Role
	activated bool // leading and done with recovery
	bal       wire.Ballot
	maxSeen   wire.Ballot // highest ballot observed anywhere

	prep          *paxos.PrepareRound
	prepSentAt    time.Time
	prepBackoff   time.Time
	awaitCatchup  bool
	catchupSentAt time.Time

	queue        []workItem
	waves        []*wave // in-flight waves, oldest first (≤ PipelineDepth)
	nextInstance uint64
	applied      uint64 // instance whose post-state the service reflects

	// Membership (reconfig.go): voters vote and form quorums; learners
	// receive all broadcasts but their votes are ignored and Ω never
	// entitles them to lead. others caches voters ∪ learners minus
	// self, the broadcast set. membersAt is the instance that decided
	// the current configuration (0 = static boot config).
	voters    []wire.NodeID
	learners  []wire.NodeID
	others    []wire.NodeID
	membersAt uint64
	// pendingConfig blocks new wave launches (and further membership
	// proposals) while a configuration entry is in flight: changes are
	// one-at-a-time, and the quorum switches at the commit point.
	pendingConfig  bool
	joining        bool // announcing via JoinReq until promoted to voter
	joinSentAt     time.Time
	peerAddrs      map[wire.NodeID]string // advertised transport addresses
	peerApplied    map[wire.NodeID]uint64 // gossiped applied watermarks
	snapFetch      *snapFetch             // in-progress snapshot stream (requester)
	snapSumAt      uint64                 // served-snapshot CRC cache (responder)
	snapSumVal     uint32
	lastPruneCheck time.Time

	// hintChosen records a commit index claimed by a peer (heartbeat, or
	// a Commit whose entries this replica cannot locally validate); the
	// tick loop turns it into a catch-up request. The local commit index
	// only ever advances over entries held at the committing ballot — or
	// through the authoritative catch-up Install — so a stale accepted
	// entry can never be applied just because the index moved past it.
	hintChosen uint64

	stats stats             // cross-goroutine counters (stats.go)
	reg   *metrics.Registry // all layers' instruments (DESIGN.md §11)

	// pendingCommit is set when a wave committed but no broadcast has
	// told the backups yet; the next accept wave carries it for free,
	// and commitFlush fires a standalone Commit if no wave follows
	// within CommitFlushDelay.
	pendingCommit bool
	commitFlush   *time.Timer

	reads      map[wire.Key]*pendingRead
	confirmBuf map[wire.Key][]wire.NodeID
	confirmQ   []wire.Key     // reads awaiting one coalesced Confirm send
	deferred   []wire.Request // requests received while preparing

	// Nearest-replica reads (DESIGN.md §16): nearReads holds reads this
	// replica is serving as the client's nearest replica, nearConfirmBuf
	// buffers confirms that outran their read, and nearQ batches confirm
	// keys per near-serving target for one coalesced Confirm each
	// (nearQN counts the queued keys across targets, for the cap).
	nearReads      map[wire.Key]*pendingNearRead
	nearConfirmBuf map[wire.Key][]nearConfirm
	nearQ          map[wire.NodeID][]wire.Key
	nearQN         int
	nearBufSwept   time.Time

	// lastCost is the placement cost last handed to the elector;
	// updatePlacementCost applies hysteresis against it so EWMA noise on
	// the RTT estimates cannot flap the gossiped rank.
	lastCost    uint32
	lastCostSet bool

	txns    map[txnKey]*txnState
	blocked []wire.Request // work blocked behind an exclusive transaction

	lastReply map[wire.NodeID]cachedReply
	pending   map[wire.Key]bool // queued or in-flight mutating requests

	// writers tracks when each client last submitted a mutating request;
	// entries older than ElectionTimeout are swept on the tick. Its size
	// is the live writer population the speculative launch gate compares
	// against (maybeStartWave) — unlike lastReply it forgets departed
	// clients, so churn cannot wedge the gate closed.
	writers map[wire.NodeID]time.Time

	lastCompact uint64

	// Durability pipeline (persist.go): non-nil persist means the store
	// buffers records and the persister goroutine owns Flush. deferEnvs
	// and deferFns accumulate one burst's post-durability work; persisted
	// carries completion closures back from the persister.
	persist   *persister
	persisted chan []func()
	deferEnvs []*wire.Envelope
	deferFns  []func()

	stop     chan struct{}
	stopOnce sync.Once
	downOnce sync.Once
	done     chan struct{}
	ctl      chan func()
	health   chan peerHealth
}

// peerHealth is a transport-level link transition for one peer, reported
// by transports implementing transport.HealthReporter and consumed on
// the event loop.
type peerHealth struct {
	peer wire.NodeID
	up   bool
}

// workItem is one unit of wave work: a plain write, or a transaction
// commit carrying its accumulated state. at is the admission time, the
// start of the request-latency phase measurement.
type workItem struct {
	req wire.Request
	txn *txnState
	at  time.Time
}

// New assembles a replica. Call Start to launch its event loop.
func New(cfg Config) (*Replica, error) {
	cfg.fillDefaults()
	acc, err := paxos.NewAcceptor(cfg.Store)
	if err != nil {
		return nil, err
	}
	txnSvc := service.AsTransactional(cfg.Service)
	mode := cfg.StateMode
	replayer, isReplayer := cfg.Service.(service.Replayer)
	differ, isDiffer := cfg.Service.(service.Differ)
	if mode == StateModeAuto {
		switch {
		case isReplayer:
			mode = StateModeReplay
		case isDiffer:
			mode = StateModeDelta
		default:
			mode = StateModeFull
		}
	}
	switch mode {
	case StateModeReplay:
		if !isReplayer {
			return nil, fmt.Errorf("core: StateModeReplay requires a service.Replayer")
		}
	case StateModeDelta:
		if !isDiffer {
			return nil, fmt.Errorf("core: StateModeDelta requires a service.Differ")
		}
	}
	r := &Replica{
		cfg:    cfg,
		tr:     cfg.Transport,
		acc:    acc,
		svc:    cfg.Service,
		txnSvc: txnSvc,
		exclus: service.IsExclusive(txnSvc),
		mode:   mode,
		elector: omega.New(omega.Config{
			Self:     cfg.ID,
			Peers:    cfg.Peers,
			Interval: cfg.HeartbeatInterval,
			Timeout:  cfg.ElectionTimeout,
			Rank:     cfg.LeaderRank,
			// Preemption is opt-in: only deployments that express a
			// placement preference (explicit rank or RTT cost) want
			// leadership to move toward it; everyone else keeps the
			// stability-first behaviour pinned by the omega tests.
			Preempt: cfg.LeaderRank != nil || cfg.RTTPlacement,
		}),
		reads:          make(map[wire.Key]*pendingRead),
		confirmBuf:     make(map[wire.Key][]wire.NodeID),
		nearReads:      make(map[wire.Key]*pendingNearRead),
		nearConfirmBuf: make(map[wire.Key][]nearConfirm),
		nearQ:          make(map[wire.NodeID][]wire.Key),
		txns:           make(map[txnKey]*txnState),
		lastReply:      make(map[wire.NodeID]cachedReply),
		pending:        make(map[wire.Key]bool),
		writers:        make(map[wire.NodeID]time.Time),
		peerAddrs:      make(map[wire.NodeID]string),
		peerApplied:    make(map[wire.NodeID]uint64),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		ctl:            make(chan func(), 16),
		health:         make(chan peerHealth, 64),
	}
	r.commitFlush = time.NewTimer(time.Hour)
	if !r.commitFlush.Stop() {
		<-r.commitFlush.C
	}
	// One registry per replica covers every layer: the core instruments
	// plus whatever the store and transport publish (they self-register
	// when they implement metrics.Instrumented, the same probe pattern as
	// storage.Flusher and transport.HealthReporter below).
	r.reg = cfg.Metrics
	if r.reg == nil {
		r.reg = metrics.NewRegistry()
	}
	r.stats.register(r.reg)
	if ins, ok := cfg.Store.(metrics.Instrumented); ok {
		ins.RegisterMetrics(r.reg)
	}
	if ins, ok := cfg.Transport.(metrics.Instrumented); ok {
		ins.RegisterMetrics(r.reg)
	}
	if fl, ok := cfg.Store.(storage.Flusher); ok && !cfg.NoPersist {
		// The store supports group commit: stage mutations on the loop,
		// flush them from the persister goroutine, and route dependent
		// sends through it (persist.go has the ordering contract).
		fl.SetBuffered(true)
		r.persisted = make(chan []func(), 64)
		r.persist = newPersister(fl, cfg.Transport, r.persisted, func(err error) {
			r.fatalOffLoop("persist flush: %v", err)
		})
	}
	if rv, ok := cfg.Service.(service.ReadViewer); ok && cfg.ReadConcurrency >= 0 {
		// The service can pin immutable read views; start the parallel
		// read pool (readpool.go) unless a single-core process makes it
		// pure overhead.
		workers := cfg.ReadConcurrency
		if workers == 0 && runtime.GOMAXPROCS(0) > 1 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > 0 {
			r.viewer = rv
			r.readPool = newReadPool(cfg.Transport, cfg.ID, workers)
			rp := r.readPool
			r.reg.RegisterGaugeFunc("gridrep_read_pool_workers",
				"goroutines executing X-Paxos reads in parallel",
				func() int64 { return int64(rp.workers) })
			r.reg.RegisterGaugeFunc("gridrep_read_pool_in_flight",
				"parallel reads dispatched and not yet replied",
				func() int64 { return rp.inFlight.Load() })
			r.reg.RegisterGaugeFunc("gridrep_read_pool_queue_depth",
				"parallel reads queued for a worker",
				func() int64 { return int64(len(rp.jobs)) })
		}
	}
	if hr, ok := cfg.Transport.(transport.HealthReporter); ok {
		// Feed socket-level peer health into the event loop; leader
		// election then reacts to real connection death (§3.6 leader
		// switches), not just missing heartbeats. Non-blocking: a
		// stalled replica must never back-pressure transport goroutines.
		hr.SetHealth(func(peer wire.NodeID, up bool) {
			select {
			case r.health <- peerHealth{peer: peer, up: up}:
			default:
			}
		})
	}
	if mode == StateModeReplay {
		r.replayer = replayer
	}
	if mode == StateModeDelta {
		r.differ = differ
	}
	r.maxSeen = acc.Promised()
	r.nextInstance = acc.Chosen() + 1
	// Seed the participant set before replay: boot replay below may walk
	// configuration entries, each of which switches membership in
	// commit order on top of this base.
	r.initMembership()
	// A recovering replica first replays its own durable log into the
	// service; without this, a full-cluster restart would deadlock with
	// every replica waiting for an up-to-date peer to catch up from.
	// Whatever the local log cannot reconstruct (compacted state, a
	// missed suffix) is fetched from peers later.
	r.applyCommitted(acc.Chosen())
	return r, nil
}

// Start launches the event loop (and the persister, if any).
func (r *Replica) Start() {
	if r.persist != nil {
		r.persist.start()
	}
	go r.run()
}

// Stop terminates the event loop, the persister, and the transport
// endpoint. Staged records that were never flushed are dropped — a
// deliberate crash model: an acknowledged write is durable on a quorum,
// never on the goodwill of one replica's shutdown path.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
	r.downOnce.Do(func() {
		if r.persist != nil {
			r.persist.stop()
		}
		if r.readPool != nil {
			// Only the (now stopped) event loop dispatches, and workers
			// reply through the transport — join them before Close.
			r.readPool.stop()
		}
		r.tr.Close()
	})
}

// Inspect runs f on the replica's event loop and waits for it; tests and
// failure injectors use it to observe or perturb internal state safely.
func (r *Replica) Inspect(f func(r *Replica)) bool {
	doneCh := make(chan struct{})
	select {
	case r.ctl <- func() { f(r); close(doneCh) }:
	case <-r.done:
		return false
	}
	select {
	case <-doneCh:
		return true
	case <-r.done:
		return false
	}
}

// ID returns the replica's node ID.
func (r *Replica) ID() wire.NodeID { return r.cfg.ID }

// Accessors for Inspect closures (event-loop confined).

// Role returns the current role (call inside Inspect).
func (r *Replica) Role() Role { return r.role }

// IsActiveLeader reports whether the replica is serving requests (call
// inside Inspect).
func (r *Replica) IsActiveLeader() bool { return r.role == RoleLeading && r.activated }

// Chosen returns the commit index (call inside Inspect).
func (r *Replica) Chosen() uint64 { return r.acc.Chosen() }

// Applied returns the instance whose state the service reflects (call
// inside Inspect).
func (r *Replica) Applied() uint64 { return r.applied }

// Ballot returns the replica's current leadership ballot (call inside
// Inspect).
func (r *Replica) Ballot() wire.Ballot { return r.bal }

// Service returns the replica's service instance (call inside Inspect).
func (r *Replica) Service() service.Service { return r.svc }

// Elector returns the Ω elector (call inside Inspect; tests use Suspect
// to force leader switches).
func (r *Replica) Elector() *omega.Elector { return r.elector }

// OpenTxns returns the number of open transactions (call inside Inspect).
func (r *Replica) OpenTxns() int { return len(r.txns) }

func (r *Replica) logf(format string, args ...interface{}) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Printf("replica %v [%v]: "+format,
			append([]interface{}{r.cfg.ID, r.role}, args...)...)
	}
}

// quorum is a majority of the *current voting* configuration; it
// switches the moment a configuration entry commits (reconfig.go).
func (r *Replica) quorum() int { return paxos.Quorum(len(r.voters)) }

// othersDo sends msg to every current member — voters and learners —
// except self. Learners receive everything (that is how they catch up)
// but their votes are discarded.
func (r *Replica) othersDo(msg wire.Message) {
	for _, p := range r.others {
		r.tr.Send(&wire.Envelope{To: p, Msg: msg})
	}
}

func (r *Replica) send(to wire.NodeID, msg wire.Message) {
	r.tr.Send(&wire.Envelope{To: to, Msg: msg})
}

// run is the event loop: all protocol state is confined to this
// goroutine.
func (r *Replica) run() {
	defer close(r.done)
	tickEvery := r.cfg.HeartbeatInterval / 2
	if tickEvery < time.Millisecond {
		tickEvery = time.Millisecond
	}
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	defer r.commitFlush.Stop()
	r.tick(time.Now())
	for {
		// Whatever the previous iteration staged or deferred becomes one
		// persister job before the loop blocks again (a no-op without a
		// persister, or when nothing is pending).
		r.submitPersist()
		r.publishHealth()
		select {
		case <-r.stop:
			return
		case f := <-r.ctl:
			f()
		case fns := <-r.persisted:
			r.runPersisted(fns)
		case env, ok := <-r.tr.Recv():
			if !ok {
				return
			}
			r.handle(env)
			// Opportunistically drain the burst that arrived with this
			// envelope before selecting again: the batch is the natural
			// coalescing window for read confirms — and for the group
			// commit below — and it keeps a loaded replica from
			// interleaving timer work between every message.
			for i := 0; i < burstDrainMax; i++ {
				var more *wire.Envelope
				select {
				case more, ok = <-r.tr.Recv():
					if !ok {
						return
					}
				default:
				}
				if more == nil {
					break
				}
				r.handle(more)
			}
			r.flushConfirms()
			r.flushNearReads()
		case ph := <-r.health:
			r.onPeerHealth(ph)
		case <-r.commitFlush.C:
			r.flushCommit()
		case now := <-ticker.C:
			r.tick(now)
		}
	}
}

// sendDurable routes a message that claims durable acceptor state — a
// Promise, an Accepted, a Confirm — through the persister, so it leaves
// only after the staged records backing the claim are flushed. Without a
// persister the inline store already made them durable; send now.
func (r *Replica) sendDurable(to wire.NodeID, msg wire.Message) {
	if r.persist != nil {
		r.deferEnvs = append(r.deferEnvs, &wire.Envelope{To: to, Msg: msg})
		return
	}
	r.send(to, msg)
}

// deferLoop schedules fn to run on the event loop once every record
// staged so far is durable; without a persister it runs immediately. The
// leader's own quorum votes go through here.
func (r *Replica) deferLoop(fn func()) {
	if r.persist != nil {
		r.deferFns = append(r.deferFns, fn)
		return
	}
	fn()
}

// runPersisted executes post-durability closures on the event loop.
func (r *Replica) runPersisted(fns []func()) {
	for _, fn := range fns {
		fn()
	}
}

// submitPersist packages the burst's deferred sends and closures — plus
// any staged records with no dependent send, which still need a flush —
// into one persister job. The submit select keeps draining completions so
// the loop and the persister can never deadlock on each other; closures
// run mid-submit may defer more work, which the outer loop picks up.
func (r *Replica) submitPersist() {
	if r.persist == nil {
		return
	}
	needFlush := r.persist.fl.Staged()
	for needFlush || len(r.deferEnvs) > 0 || len(r.deferFns) > 0 {
		needFlush = false // one flush-only job per call is enough
		job := persistJob{envs: r.deferEnvs, fns: r.deferFns}
		r.deferEnvs, r.deferFns = nil, nil
	submit:
		for {
			select {
			case r.persist.jobs <- job:
				break submit
			case fns := <-r.persisted:
				r.runPersisted(fns)
			case <-r.stop:
				return
			}
		}
	}
}

// burstDrainMax bounds how many queued envelopes one loop iteration may
// consume before re-checking timers and control channels.
const burstDrainMax = 256

// flushCommit broadcasts a deferred commit notification: the queue
// drained with no follow-on wave to piggyback it, so the backups must
// hear about the chosen instances now.
func (r *Replica) flushCommit() {
	if !r.pendingCommit {
		return
	}
	r.pendingCommit = false
	if r.role != RoleLeading {
		return
	}
	r.othersDo(&wire.Commit{Bal: r.bal, Index: r.acc.Chosen()})
}

func (r *Replica) handle(env *wire.Envelope) {
	if !env.From.IsClient() {
		// Any message from a peer replica is liveness evidence; without
		// this, heartbeats queued behind bulk traffic cause spurious
		// leader suspicion under load.
		r.elector.Observe(env.From, time.Now())
	}
	switch m := env.Msg.(type) {
	case *wire.RequestMsg:
		r.onRequest(m.Req)
	case *wire.Prepare:
		r.onPrepare(env.From, m)
	case *wire.Promise:
		r.onPromise(env.From, m)
	case *wire.Accept:
		r.onAccept(env.From, m)
	case *wire.Accepted:
		r.onAccepted(env.From, m)
	case *wire.Commit:
		r.onCommitMsg(m)
	case *wire.Confirm:
		r.onConfirm(m)
	case *wire.Heartbeat:
		r.elector.OnHeartbeat(m, time.Now())
		r.notePeerApplied(m.From, m.Applied)
		if r.role == RoleBackup && m.Chosen > r.acc.Chosen() && m.Chosen > r.hintChosen {
			// Heartbeats carry no ballot, so the claim cannot be
			// validated against local entries; record it and let the
			// tick loop catch up from a peer instead of advancing over
			// possibly-stale accepted entries.
			r.hintChosen = m.Chosen
		}
	case *wire.CatchUpReq:
		r.onCatchUpReq(m)
	case *wire.CatchUpResp:
		r.onCatchUpResp(m)
	case *wire.JoinReq:
		r.onJoinReq(m)
	case *wire.SnapReq:
		r.onSnapReq(m)
	case *wire.SnapChunk:
		r.onSnapChunk(m)
	}
}

// onPeerHealth applies a transport link transition to the Ω elector. A
// dead socket revokes the peer's liveness credit immediately — if that
// peer led, an election starts now instead of after the heartbeat
// timeout — while a reconnect merely counts as liveness evidence.
func (r *Replica) onPeerHealth(ph peerHealth) {
	now := time.Now()
	if ph.up {
		r.elector.PeerUp(ph.peer, now)
		return
	}
	r.logf("transport: link to %v down", ph.peer)
	r.elector.PeerDown(ph.peer, now)
}

// tick drives heartbeats, leadership transitions, and retransmissions.
func (r *Replica) tick(now time.Time) {
	if r.cfg.RTTPlacement && !r.cfg.WireCompat {
		r.updatePlacementCost()
	}
	r.sweepNearReads(now)
	if hb := r.elector.Tick(now); hb != nil {
		hb.Chosen = r.acc.Chosen()
		hb.Applied = r.applied // gossip the applied watermark (prune driver)
		r.othersDo(hb)
	}
	r.tickJoin(now)
	r.maybeSnapshot()
	r.maybePrune(now)
	leader, ok := r.elector.Leader(now)
	switch {
	case ok && leader == r.cfg.ID && r.role == RoleBackup:
		if now.After(r.prepBackoff) {
			r.startPrepare(now)
		}
	case (!ok || leader != r.cfg.ID) && r.role != RoleBackup:
		r.logf("deposed by Ω (leader=%v ok=%v)", leader, ok)
		r.stepDown()
	}

	// Retransmissions: the asynchronous model makes the protocol layer
	// responsible for all reliability (§3.3: "If the leader fails to
	// receive the expected response ... it retransmits those messages").
	switch r.role {
	case RolePreparing:
		if r.awaitCatchup {
			if now.Sub(r.catchupSentAt) > r.cfg.RetryTimeout {
				r.sendCatchup(now)
			}
		} else if now.Sub(r.prepSentAt) > r.cfg.RetryTimeout {
			r.prepSentAt = now
			r.othersDo(&wire.Prepare{Bal: r.bal, After: r.acc.Chosen()})
		}
	case RoleLeading:
		r.sweepWriters(now)
		r.maybePromote()
		for _, w := range r.waves {
			if !w.acked && now.Sub(w.sentAt) > r.cfg.RetryTimeout {
				w.sentAt = now
				r.othersDo(&wire.Accept{Bal: r.bal, Entries: w.entries, Commit: r.acc.Chosen()})
			}
		}
	case RoleBackup:
		// A backup whose applied state trails the commit index is
		// missing entries (or their state), and one whose commit index
		// trails a peer's claim could not validate the claimed prefix
		// locally; either way, fetch the suffix. An in-progress
		// snapshot stream supersedes the broadcast — tickFetch re-pulls
		// or abandons it.
		if r.snapFetch != nil {
			r.tickFetch(now)
		} else if (r.acc.Chosen() > r.applied || r.hintChosen > r.acc.Chosen()) &&
			now.Sub(r.catchupSentAt) > r.cfg.RetryTimeout {
			r.sendCatchup(now)
		}
	}
}

// placementCostUnknown is the wire sentinel (0, matching the
// Heartbeat.Cost default gossiped by replicas that never measure) for a
// replica with no RTT estimates; the elector maps it behind every
// measured cost (omega.costUnknown). At boot all replicas share it
// (cost ties degenerate to the base rank), a freshly restarted replica
// cannot out-rank warmed incumbents just because its estimator is
// empty, and a replica running with RTTPlacement disabled can never
// out-rank the replicas that measure.
const placementCostUnknown uint32 = 0

// updatePlacementCost smooths the transport's per-peer RTT estimates
// into one placement cost and hands it to the elector, which gossips it
// on heartbeats and folds it in front of the base rank (lowest
// aggregate RTT leads). Quantized to 1ms buckets, offset by one so a
// genuine sub-millisecond measurement never collides with the unknown
// sentinel, with 2ms hysteresis between measured values: placement only
// cares about differences of tens of milliseconds, and the hysteresis
// keeps EWMA noise from flapping the cluster-wide rank order. The
// known/unknown transition always propagates — holding it back would
// leave a newly warmed replica ranked last forever.
func (r *Replica) updatePlacementCost() {
	rr, ok := r.tr.(transport.RTTReporter)
	if !ok {
		return
	}
	var sum time.Duration
	n := 0
	for _, p := range r.others {
		if d, ok := rr.PeerRTT(p); ok {
			sum += d
			n++
		}
	}
	cost := placementCostUnknown
	if n > 0 {
		bucket := uint64(sum/time.Duration(n)/time.Millisecond) + 1
		if bucket > uint64(^uint32(0)) {
			bucket = uint64(^uint32(0))
		}
		cost = uint32(bucket)
	}
	if r.lastCostSet && cost != placementCostUnknown && r.lastCost != placementCostUnknown {
		diff := int64(cost) - int64(r.lastCost)
		if diff > -2 && diff < 2 {
			return
		}
	}
	r.lastCost, r.lastCostSet = cost, true
	r.elector.SetCost(cost)
}

// startPrepare begins the prepare phase for a fresh ballot (§3.2).
func (r *Replica) startPrepare(now time.Time) {
	cur := r.maxSeen
	if cur.Less(r.acc.Promised()) {
		cur = r.acc.Promised()
	}
	if cur.Less(r.bal) {
		cur = r.bal
	}
	r.bal = paxos.NextBallot(cur, r.cfg.ID)
	r.maxSeen = r.bal
	r.role = RolePreparing
	r.activated = false
	r.awaitCatchup = false
	r.prep = paxos.NewPrepareRound(r.bal, r.quorum())
	r.prepSentAt = now
	r.logf("prepare %v after=%d", r.bal, r.acc.Chosen())

	// Self-promise first, then one message to everyone else (§3.3). The
	// broadcast claims nothing about local durable state and goes out
	// immediately; the self-vote counts toward the quorum only once the
	// staged promise record is flushed (deferLoop), guarded against the
	// round having moved on by the time the closure runs.
	p, err := r.acc.OnPrepare(&wire.Prepare{Bal: r.bal, After: r.acc.Chosen()})
	if err != nil {
		r.fatal("self-prepare: %v", err)
		return
	}
	r.othersDo(&wire.Prepare{Bal: r.bal, After: r.acc.Chosen()})
	prep := r.prep
	r.deferLoop(func() {
		if r.prep != prep || r.role != RolePreparing {
			return
		}
		if done, _ := prep.Add(p, r.cfg.ID); done {
			r.onPrepared()
		}
	})
}

// stepDown returns to the backup role, rolling back every speculative
// effect: the in-flight waves' executions, open transactions, and pending
// reads.
func (r *Replica) stepDown() {
	wasLeading := r.role != RoleBackup
	r.role = RoleBackup
	r.activated = false
	r.prep = nil
	r.awaitCatchup = false
	if !wasLeading {
		return
	}
	// Abort open transactions (§3.6: "if the leader switches during the
	// transaction ... the transaction has to be aborted").
	for _, tx := range r.txns {
		tx.ws.Abort()
	}
	r.txns = make(map[txnKey]*txnState)
	// Roll back the speculatively executed waves: the oldest wave's undo
	// snapshot is the state after the last committed instance, so one
	// restore discards every in-flight wave's effects at once.
	if len(r.waves) > 0 {
		if w := r.waves[0]; w.undo != nil {
			if err := r.svc.Restore(w.undo); err != nil {
				r.fatal("undo restore: %v", err)
			}
			r.stats.specRollbacks.Add(1)
			r.stats.wavesRolledBack.Add(uint64(len(r.waves)))
			r.logf("rolled back %d speculative wave(s) to chosen=%d",
				len(r.waves), r.acc.Chosen())
		}
	}
	r.waves = nil
	r.stats.wavesInFlight.Set(0)
	// Tell waiting clients to retry elsewhere.
	for _, pr := range r.reads {
		r.reply(pr.req, wire.StatusNotLeader, nil, "leader switch")
	}
	r.reads = make(map[wire.Key]*pendingRead)
	for _, it := range r.queue {
		r.reply(it.req, wire.StatusNotLeader, nil, "leader switch")
	}
	for _, req := range r.blocked {
		r.reply(req, wire.StatusNotLeader, nil, "leader switch")
	}
	for _, req := range r.deferred {
		r.reply(req, wire.StatusNotLeader, nil, "leader switch")
	}
	r.queue, r.blocked, r.deferred = nil, nil, nil
	r.pending = make(map[wire.Key]bool)
	r.confirmBuf = make(map[wire.Key][]wire.NodeID)
	// Any unflushed commit is moot: backups will learn the commit index
	// from the next leader's traffic or from heartbeats. An uncommitted
	// configuration proposal dies with the ballot; the next leader's
	// recovery either re-proposes or discards it.
	r.pendingCommit = false
	r.pendingConfig = false
	r.nextInstance = r.acc.Chosen() + 1
	r.logf("stepped down at chosen=%d", r.acc.Chosen())
}

// fatal reports an unrecoverable local fault (storage failure). The
// replica stops participating, which the protocol tolerates as a crash.
func (r *Replica) fatal(format string, args ...interface{}) {
	r.logf("FATAL: "+format, args...)
	r.stopOnce.Do(func() { close(r.stop) })
}

// fatalOffLoop is fatal for goroutines other than the event loop (the
// persister); it touches no loop-confined state — not even the role that
// logf would format.
func (r *Replica) fatalOffLoop(format string, args ...interface{}) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Printf("replica %v [persister]: FATAL: "+format,
			append([]interface{}{r.cfg.ID}, args...)...)
	}
	r.stopOnce.Do(func() { close(r.stop) })
}

func (r *Replica) reply(req wire.Request, status wire.ReplyStatus, result []byte, errStr string) {
	r.send(req.Client, &wire.ReplyMsg{Rep: wire.Reply{
		Client: req.Client,
		Seq:    req.Seq,
		Status: status,
		Leader: r.cfg.ID,
		Result: result,
		Err:    errStr,
	}})
}
