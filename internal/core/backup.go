package core

import (
	"time"

	"gridrep/internal/wire"
)

// onPrepare answers a phase-1a message. Observing a higher ballot means
// another process is being elected: any local leadership is abandoned
// before voting.
func (r *Replica) onPrepare(from wire.NodeID, m *wire.Prepare) {
	if r.maxSeen.Less(m.Bal) {
		r.maxSeen = m.Bal
	}
	if r.role != RoleBackup && r.bal.Less(m.Bal) {
		r.logf("prepare %v from %v supersedes my %v", m.Bal, from, r.bal)
		r.stepDown()
	}
	p, err := r.acc.OnPrepare(m)
	if err != nil {
		r.fatal("prepare persist: %v", err)
		return
	}
	p.From = r.cfg.ID
	// The promise claims durable acceptor state; it leaves only after
	// the staged record is flushed.
	r.sendDurable(from, p)
}

// onAccept answers a phase-2a message. The accepted entries are persisted
// by the acceptor; their state is applied when the commit index covers
// them (§3.3: replicas keep every request but apply only the latest
// state).
func (r *Replica) onAccept(from wire.NodeID, m *wire.Accept) {
	if r.maxSeen.Less(m.Bal) {
		r.maxSeen = m.Bal
	}
	if r.role != RoleBackup && r.bal.Less(m.Bal) {
		r.logf("accept %v from %v supersedes my %v", m.Bal, from, r.bal)
		r.stepDown()
	}
	acked, err := r.acc.OnAccept(m)
	if err != nil {
		r.fatal("accept persist: %v", err)
		return
	}
	acked.From = r.cfg.ID
	// The phase-2b vote is the message §3.3's durability argument is
	// about: it must not leave before the accepted entries are on disk.
	// Deferring it through the persister overlaps the fsync with the
	// leader-side network round trip instead of serializing them.
	r.sendDurable(from, acked)
	if !acked.OK {
		return
	}
	r.advanceChosen(m.Commit, m.Bal)
}

// onCommitMsg learns that a prefix of instances is chosen.
func (r *Replica) onCommitMsg(m *wire.Commit) {
	if r.role == RoleBackup {
		r.advanceChosen(m.Index, m.Bal)
	}
}

// advanceChosen moves the commit index toward a leader's claim and
// applies the newly chosen entries to the service.
//
// The index only advances over instances whose local entry carries a
// ballot at least claimBal (the claimant's). A pipelining leader lets
// backups hold same-ballot instances out of order, and a leader switch
// can redefine an instance a stale accepted entry still occupies — so an
// entry below the claimed ballot may be a superseded leftover whose value
// was never chosen, and applying it would corrupt the state chain. An
// entry at the claimed ballot was committed by the claimant itself; one
// above it can only exist if a newer leader re-proposed the chosen value
// (P2c), so both are safe. Anything else stops the walk; the remainder of
// the claim becomes a hint the tick loop resolves through catch-up, whose
// Install is authoritative. A backup missing only state (not entries)
// falls behind in applied; the same tick path fetches the suffix.
func (r *Replica) advanceChosen(idx uint64, claimBal wire.Ballot) {
	chosen := r.acc.Chosen()
	if idx <= chosen {
		return
	}
	valid := chosen
	for inst := chosen + 1; inst <= idx; inst++ {
		e, ok := r.acc.Get(inst)
		if !ok || e.Bal.Less(claimBal) {
			break
		}
		valid = inst
	}
	if valid > chosen {
		if err := r.acc.MarkChosen(valid); err != nil {
			r.fatal("mark chosen: %v", err)
			return
		}
		r.applyCommitted(valid)
		r.maybeCompact()
	}
	if valid < idx && idx > r.hintChosen {
		r.hintChosen = idx
	}
}

// applyCommitted folds chosen entries (applied, idx] into the service
// state, dispatching on what each proposal carries:
//
//   - a full snapshot: adopt it (it subsumes everything before it, which
//     is how full-mode waves work — state only on the top instance);
//   - a delta: apply it, which requires contiguity;
//   - captured nondeterminism (Aux): replay the requests
//     deterministically, also contiguous;
//   - nothing (a no-op filler, or a full-mode intermediate): a no-op
//     advances; an intermediate is skipped and covered by the wave top.
func (r *Replica) applyCommitted(idx uint64) {
	for inst := r.applied + 1; inst <= idx; inst++ {
		e, ok := r.acc.Get(inst)
		if !ok {
			return // missing entry: stay behind, catch-up will fix it
		}
		p := &e.Prop
		switch {
		case p.IsConfig():
			// A configuration entry carries no service effect; its
			// commit point is where the participant set and quorum
			// switch (reconfig.go). Contiguity required: membership
			// changes must take effect in decision order.
			if r.applied != inst-1 {
				return
			}
			r.applyConfigEntry(inst, p)
			r.applied = inst
		case p.HasState && p.Kind == wire.StateFull:
			if err := r.svc.Restore(p.State); err != nil {
				r.fatal("state restore at %d: %v", inst, err)
				return
			}
			r.applied = inst
		case p.HasState && p.Kind == wire.StateDelta:
			if r.applied != inst-1 || r.differ == nil {
				return // not contiguous (or wrong mode): need catch-up
			}
			if err := r.differ.ApplyDelta(p.State); err != nil {
				r.fatal("delta apply at %d: %v", inst, err)
				return
			}
			r.applied = inst
		case len(p.Aux) == len(p.Reqs) && len(p.Reqs) > 0:
			if r.applied != inst-1 || r.replayer == nil {
				return
			}
			for i := range p.Reqs {
				if _, err := r.replayer.Replay(p.Reqs[i].Op, p.Aux[i]); err != nil {
					r.fatal("replay at %d: %v", inst, err)
					return
				}
			}
			r.applied = inst
		case len(p.Reqs) == 0:
			// No-op filler from a recovery wave.
			if r.applied == inst-1 {
				r.applied = inst
			}
		default:
			// Full-mode intermediate: no state attached; the wave's
			// top snapshot will cover it.
		}
	}
}

// sendCatchup asks the peers for the chosen suffix this replica lacks.
func (r *Replica) sendCatchup(now time.Time) {
	r.catchupSentAt = now
	r.othersDo(&wire.CatchUpReq{From: r.cfg.ID, HaveChosen: r.applied})
}

// onCatchUpReq serves a lagging replica: the chosen entries above its
// index plus a full snapshot of the responder's current service state.
// Only a replica whose state is clean — fully applied, no speculative
// wave execution, no open exclusive transaction — may answer.
func (r *Replica) onCatchUpReq(m *wire.CatchUpReq) {
	chosen := r.acc.Chosen()
	if chosen <= m.HaveChosen {
		return
	}
	if m.HaveChosen < r.acc.PrunedTo() {
		// The suffix the requester needs starts below our pruned
		// prefix: entry catch-up is impossible, so open a snapshot
		// stream instead. The durable snapshot always covers the
		// pruned prefix (the prune guard), needs no quiescence, and
		// the requester pulls the rest chunk by chunk (reconfig.go).
		r.sendSnapChunk(m.From, 0)
		return
	}
	if r.applied != chosen {
		return
	}
	if len(r.waves) > 0 || (r.exclus && len(r.txns) > 0) {
		return // speculative state; the requester will retry
	}
	r.send(m.From, &wire.CatchUpResp{
		From:    r.cfg.ID,
		Entries: r.acc.EntriesBetween(m.HaveChosen, chosen),
		Chosen:  chosen,
		State:   r.svc.Snapshot(),
		StateAt: chosen,
	})
}

// onCatchUpResp installs chosen entries and the snapshot from a peer.
func (r *Replica) onCatchUpResp(m *wire.CatchUpResp) {
	if m.StateAt != m.Chosen || m.Chosen <= r.applied {
		return
	}
	if err := r.acc.Install(m.Entries, m.Chosen); err != nil {
		r.fatal("catch-up install: %v", err)
		return
	}
	if err := r.svc.Restore(m.State); err != nil {
		r.fatal("catch-up restore: %v", err)
		return
	}
	r.applied = m.Chosen
	r.logf("caught up to %d", m.Chosen)

	if r.role == RolePreparing && r.awaitCatchup && r.applied >= r.prep.MaxChosen() {
		r.awaitCatchup = false
		r.finishActivation()
	}
}
