package core_test

import (
	"bytes"
	"testing"
	"time"

	"gridrep/internal/cluster"
	"gridrep/internal/core"
	"gridrep/internal/service"
	"gridrep/internal/storage"
	"gridrep/internal/wire"
)

// kvState builds a KV service, applies ops, and returns (snapshot,
// replies) — used to fabricate stores that look like the remains of a
// crashed leader's log.
func kvState(ops ...[]byte) ([]byte, [][]byte) {
	kv := service.NewKV()
	var results [][]byte
	for _, op := range ops {
		res, err := kv.Execute(op)
		if err != nil {
			panic(err)
		}
		results = append(results, res)
	}
	return kv.Snapshot(), results
}

// seedStore writes entries/chosen into a fresh Mem store.
func seedStore(t *testing.T, entries []wire.Entry, chosen uint64) storage.Store {
	t.Helper()
	st := storage.NewMem()
	if len(entries) > 0 {
		var maxBal wire.Ballot
		for _, e := range entries {
			if maxBal.Less(e.Bal) {
				maxBal = e.Bal
			}
		}
		if err := st.PutAccepted(entries, maxBal); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.SetChosen(chosen); err != nil {
		t.Fatal(err)
	}
	return st
}

func fullEntry(inst uint64, bal wire.Ballot, req wire.Request, result, state []byte) wire.Entry {
	return wire.Entry{
		Instance: inst,
		Bal:      bal,
		Prop: wire.Proposal{
			Reqs:     []wire.Request{req},
			Results:  [][]byte{result},
			State:    state,
			HasState: true,
			Kind:     wire.StateFull,
		},
	}
}

// TestRecoveryAdoptsUncommittedSuffix fabricates the §3.3 crash scenario:
// the old leader got instance 3 accepted at one backup but crashed before
// committing. The new leader's prepare must learn it, re-propose it, and
// the client's retransmission of that very request must be answered from
// the rebuilt reply cache — not re-executed (nondeterminism is captured
// once, even across leader changes).
func TestRecoveryAdoptsUncommittedSuffix(t *testing.T) {
	oldBal := wire.Ballot{Round: 1, Node: 9}
	ghostClient := wire.ClientIDBase + 77

	// Committed prefix: two puts, chosen=2.
	snap2, res12 := kvState(service.KVPut("a", []byte("1")), service.KVPut("b", []byte("2")))
	e1 := fullEntry(1, oldBal, wire.Request{Client: ghostClient, Seq: 1, Kind: wire.KindWrite,
		Op: service.KVPut("a", []byte("1"))}, res12[0], nil)
	e1.Prop.HasState = false
	e2 := fullEntry(2, oldBal, wire.Request{Client: ghostClient, Seq: 2, Kind: wire.KindWrite,
		Op: service.KVPut("b", []byte("2"))}, res12[1], snap2)

	// Uncommitted suffix at replica 1 only: instance 3.
	snap3, res3 := kvState(service.KVPut("a", []byte("1")), service.KVPut("b", []byte("2")),
		service.KVPut("c", []byte("3")))
	req3 := wire.Request{Client: ghostClient, Seq: 3, Kind: wire.KindWrite,
		Op: service.KVPut("c", []byte("3"))}
	e3 := fullEntry(3, oldBal, req3, res3[2], snap3)

	// The suffix lives at both backups so every prepare quorum includes
	// a holder — if only one replica held it, a quorum missing it could
	// legally discard the (unchosen) proposal.
	stores := map[wire.NodeID]storage.Store{
		0: seedStore(t, []wire.Entry{e1, e2}, 2),
		1: seedStore(t, []wire.Entry{e1, e2, e3}, 2),
		2: seedStore(t, []wire.Entry{e1, e2, e3}, 2),
	}
	c := newCluster(t, cluster.Config{
		Service:   service.KVFactory,
		Stores:    stores,
		StateMode: core.StateModeFull,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// The re-proposed suffix must be visible to reads.
	res, err := cli.Read(service.KVGet("c"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := service.KVReply(res); !ok || string(v) != "3" {
		t.Fatalf("recovered suffix not applied: c = %q,%v", v, ok)
	}

	// Retransmit the ghost client's request 3 raw; the new leader must
	// answer from its rebuilt reply cache with the original result.
	leaderID, _ := c.Leader()
	ep, err := c.Net.Endpoint(ghostClient)
	if err != nil {
		t.Fatal(err)
	}
	ep.Send(&wire.Envelope{To: leaderID, Msg: &wire.RequestMsg{Req: req3}})
	select {
	case env := <-ep.Recv():
		rep := env.Msg.(*wire.ReplyMsg).Rep
		if rep.Seq != 3 || rep.Status != wire.StatusOK {
			t.Fatalf("cached reply = %+v", rep)
		}
		if !bytes.Equal(rep.Result, res3[2]) {
			t.Fatalf("cached result %x differs from original %x", rep.Result, res3[2])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no cached reply for the retransmitted request")
	}

	// And the suffix must not have been double-executed: exactly chosen=3
	// plus nothing extra before the read... verify via counter semantics.
	waitConverged(t, c)
	snaps := snapshotAll(t, c)
	for i, s := range snaps {
		if !bytes.Equal(s, snaps[0]) {
			t.Fatalf("replica #%d diverged after recovery", i)
		}
	}
}

// TestRecoveryDiscardsSuffixPastGap seeds a log where only instance 4
// has an accepted proposal (a speculative wave whose predecessors never
// reached this quorum): the new leader must discard it — an entry past a
// gap cannot be committed, because committed instances advance gap-free
// and a prepare quorum intersects every commit's accept quorum — and
// restart the log at instance 1.
func TestRecoveryDiscardsSuffixPastGap(t *testing.T) {
	oldBal := wire.Ballot{Round: 1, Node: 9}
	snap4, res4 := kvState(service.KVPut("x", []byte("4")))
	req4 := wire.Request{Client: wire.ClientIDBase + 50, Seq: 1, Kind: wire.KindWrite,
		Op: service.KVPut("x", []byte("4"))}
	e4 := fullEntry(4, oldBal, req4, res4[0], snap4)

	// Seeded at both backups so every prepare quorum observes it — and
	// must still discard it.
	stores := map[wire.NodeID]storage.Store{
		0: seedStore(t, nil, 0),
		1: seedStore(t, []wire.Entry{e4}, 0),
		2: seedStore(t, []wire.Entry{e4}, 0),
	}
	c := newCluster(t, cluster.Config{
		Service:   service.KVFactory,
		Stores:    stores,
		StateMode: core.StateModeFull,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	res, err := cli.Read(service.KVGet("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, found := service.KVReply(res); found {
		t.Fatal("x survived recovery; the suffix past the gap must be discarded")
	}
	// The next write must land at instance 1: the discarded entry leaves
	// no trace in the log.
	if _, err := cli.Write(service.KVPut("y", []byte("5"))); err != nil {
		t.Fatal(err)
	}
	leaderID, _ := c.Leader()
	rep, _ := c.Replica(leaderID)
	var chosen uint64
	var discarded uint64
	rep.Inspect(func(r *core.Replica) { chosen = r.Chosen() })
	discarded = rep.Stats().RecoveryDiscarded
	if chosen != 1 {
		t.Fatalf("chosen = %d, want 1 (instance 4 discarded, new write is first)", chosen)
	}
	if discarded == 0 {
		t.Fatal("RecoveryDiscarded = 0, want the discarded instance counted")
	}
	waitConverged(t, c)
	snaps := snapshotAll(t, c)
	for i, s := range snaps {
		if !bytes.Equal(s, snaps[0]) {
			t.Fatalf("replica #%d diverged (gap discard)", i)
		}
	}
}

// TestRecoveryDiscardsBallotRegression seeds a committed prefix decided
// at a high ballot with a stale lower-ballot straggler right after it: a
// leftover speculative wave from a deposed leader whose slot was never
// redefined. Committed ballots are non-decreasing in instance order, so
// the lower-ballot suffix cannot be committed and must be discarded
// rather than grafted onto state it never followed.
func TestRecoveryDiscardsBallotRegression(t *testing.T) {
	balOld := wire.Ballot{Round: 1, Node: 8}
	balNew := wire.Ballot{Round: 2, Node: 9}
	ghost := wire.ClientIDBase + 70

	// Instance 1 committed at the newer ballot (chosen=1 everywhere).
	snap1, res1 := kvState(service.KVPut("a", []byte("1")))
	e1 := fullEntry(1, balNew, wire.Request{Client: ghost, Seq: 1, Kind: wire.KindWrite,
		Op: service.KVPut("a", []byte("1"))}, res1[0], snap1)

	// Instance 2 accepted only under the older, deposed ballot.
	snap2, res2 := kvState(service.KVPut("a", []byte("1")), service.KVPut("k", []byte("stale")))
	e2 := fullEntry(2, balOld, wire.Request{Client: ghost, Seq: 2, Kind: wire.KindWrite,
		Op: service.KVPut("k", []byte("stale"))}, res2[1], snap2)

	stores := map[wire.NodeID]storage.Store{
		0: seedStore(t, []wire.Entry{e1}, 1),
		1: seedStore(t, []wire.Entry{e1, e2}, 1),
		2: seedStore(t, []wire.Entry{e1, e2}, 1),
	}
	c := newCluster(t, cluster.Config{
		Service:   service.KVFactory,
		Stores:    stores,
		StateMode: core.StateModeFull,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	res, err := cli.Read(service.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, found := service.KVReply(res); found {
		t.Fatal("stale lower-ballot suffix survived recovery")
	}
	res, err = cli.Read(service.KVGet("a"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "1" {
		t.Fatalf("a = %q; the committed prefix must survive", v)
	}
	waitConverged(t, c)
	snaps := snapshotAll(t, c)
	for i, s := range snaps {
		if !bytes.Equal(s, snaps[0]) {
			t.Fatalf("replica #%d diverged (ballot-regression discard)", i)
		}
	}
}

// TestHigherBallotSuffixWins seeds two competing uncommitted proposals
// for instance 3 — an older-ballot value at replica 1 and a newer-ballot
// value at replica 2. Paxos requires the new leader to adopt the
// higher-ballot one.
func TestHigherBallotSuffixWins(t *testing.T) {
	balOld := wire.Ballot{Round: 1, Node: 8}
	balNew := wire.Ballot{Round: 2, Node: 9}
	ghost := wire.ClientIDBase + 60

	snapPrefix, resPrefix := kvState(service.KVPut("a", []byte("1")))
	e1 := fullEntry(1, balOld, wire.Request{Client: ghost, Seq: 1, Kind: wire.KindWrite,
		Op: service.KVPut("a", []byte("1"))}, resPrefix[0], snapPrefix)

	mk := func(val string, bal wire.Ballot, seq uint64) wire.Entry {
		snap, res := kvState(service.KVPut("a", []byte("1")), service.KVPut("k", []byte(val)))
		return fullEntry(2, bal, wire.Request{Client: ghost, Seq: seq, Kind: wire.KindWrite,
			Op: service.KVPut("k", []byte(val))}, res[1], snap)
	}
	loser := mk("old-value", balOld, 2)
	winner := mk("new-value", balNew, 2)

	// The loser sits at the future leader itself and the winner at both
	// backups, so every prepare quorum observes both proposals and the
	// ballot order decides. (A value held by a single replica is not
	// chosen, and Paxos would legitimately allow either outcome if the
	// quorum missed it.)
	stores := map[wire.NodeID]storage.Store{
		0: seedStore(t, []wire.Entry{e1, loser}, 1),
		1: seedStore(t, []wire.Entry{e1, winner}, 1),
		2: seedStore(t, []wire.Entry{e1, winner}, 1),
	}
	c := newCluster(t, cluster.Config{
		Service:   service.KVFactory,
		Stores:    stores,
		StateMode: core.StateModeFull,
	})
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Read(service.KVGet("k"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := service.KVReply(res); string(v) != "new-value" {
		t.Fatalf("k = %q; the higher-ballot proposal must win", v)
	}
}
