package trace

import (
	"strings"
	"testing"
	"time"

	"gridrep/internal/wire"
)

var base = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func ev(ms int, from, to wire.NodeID, ty wire.MsgType, note string) Event {
	return Event{At: base.Add(time.Duration(ms) * time.Millisecond), From: from, To: to, Type: ty, Note: note}
}

func TestCollectorOrdersEvents(t *testing.T) {
	c := NewCollector()
	c.Add(ev(5, 0, 1, wire.MsgAccept, "accept[1]"))
	c.Add(ev(1, wire.ClientIDBase, 0, wire.MsgRequest, "write"))
	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Type != wire.MsgRequest {
		t.Fatal("events not time-sorted")
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	c.Add(ev(1, 0, 1, wire.MsgCommit, "commit<=1"))
	c.Reset()
	if len(c.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestTransportTracer(t *testing.T) {
	c := NewCollector()
	tr := c.TransportTracer()
	tr(base, &wire.Envelope{From: 0, To: 1, Msg: &wire.Commit{Index: 7}})
	evs := c.Events()
	if len(evs) != 1 || evs[0].Note != "commit<=7" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestDescribeAllTypes(t *testing.T) {
	cases := map[wire.Message]string{
		&wire.RequestMsg{Req: wire.Request{Kind: wire.KindRead}}: "read",
		&wire.ReplyMsg{Rep: wire.Reply{Status: wire.StatusOK}}:   "reply:ok",
		&wire.Prepare{Bal: wire.Ballot{Round: 1, Node: 0}}:       "prepare(1.r0)",
		&wire.Promise{OK: true}:                                  "promise",
		&wire.Promise{OK: false}:                                 "promise:nack",
		&wire.Accept{Entries: []wire.Entry{{Instance: 3}}}:       "accept[3]",
		&wire.Accepted{OK: true}:                                 "accepted",
		&wire.Commit{Index: 9}:                                   "commit<=9",
		&wire.Confirm{}:                                          "confirm",
		&wire.Heartbeat{}:                                        "hb",
		&wire.CatchUpReq{}:                                       "catchup?",
		&wire.CatchUpResp{}:                                      "catchup!",
	}
	for m, want := range cases {
		if got := describe(m); got != want {
			t.Errorf("describe(%T) = %q, want %q", m, got, want)
		}
	}
}

func TestFilterHeartbeats(t *testing.T) {
	evs := []Event{
		ev(0, 0, 1, wire.MsgHeartbeat, "hb"),
		ev(1, 0, 1, wire.MsgAccept, "accept[1]"),
	}
	got := Filter(evs, NoHeartbeats)
	if len(got) != 1 || got[0].Type != wire.MsgAccept {
		t.Fatalf("filtered = %+v", got)
	}
}

func TestRenderShape(t *testing.T) {
	cli := wire.ClientIDBase
	evs := []Event{
		ev(0, cli, 0, wire.MsgRequest, "write"),
		ev(0, cli, 1, wire.MsgRequest, "write"),
		ev(1, 0, 1, wire.MsgAccept, "accept[1]"),
		ev(2, 1, 0, wire.MsgAccepted, "accepted"),
		ev(3, 0, cli, wire.MsgReply, "reply:ok"),
	}
	out := Render(evs, []wire.NodeID{cli, 0, 1})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // header + 5 events
		t.Fatalf("lines = %d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "c0") || !strings.Contains(lines[0], "r0") {
		t.Fatalf("header missing participants: %q", lines[0])
	}
	// Rightward arrow for c0 -> r0.
	if !strings.Contains(lines[1], ">") {
		t.Fatalf("no rightward arrow: %q", lines[1])
	}
	// Leftward arrow for r1 -> r0 (accepted).
	if !strings.Contains(lines[4], "<") {
		t.Fatalf("no leftward arrow: %q", lines[4])
	}
	// Label present somewhere.
	if !strings.Contains(out, "accept[1]") {
		t.Fatalf("label lost:\n%s", out)
	}
	// Every event line starts with a time gutter.
	if !strings.Contains(lines[1], "0.000") {
		t.Fatalf("time gutter missing: %q", lines[1])
	}
}

func TestRenderSkipsUnknownParticipants(t *testing.T) {
	evs := []Event{ev(0, 5, 6, wire.MsgAccept, "accept[1]")}
	out := Render(evs, []wire.NodeID{0, 1})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("unknown participants should be skipped:\n%s", out)
	}
}

func TestRenderSelfMessage(t *testing.T) {
	evs := []Event{ev(0, 0, 0, wire.MsgCommit, "commit<=1")}
	out := Render(evs, []wire.NodeID{0})
	if !strings.Contains(out, "*") {
		t.Fatalf("self-message marker missing:\n%s", out)
	}
}

func TestRenderLongLabelTruncated(t *testing.T) {
	evs := []Event{ev(0, 0, 1, wire.MsgAccept, strings.Repeat("x", 100))}
	out := Render(evs, []wire.NodeID{0, 1})
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 10+2*14+2 {
			t.Fatalf("line too long (%d): %q", len(line), line)
		}
	}
}

// Regression: the collector used to grow without bound for as long as a
// tracer stayed registered. It is now a capped ring: past the limit the
// oldest events are overwritten, the drop counter advances, and Events
// returns exactly the newest limit events in order.
func TestCollectorRingWraparound(t *testing.T) {
	c := NewCollector()
	c.SetLimit(8)
	for i := 0; i < 20; i++ {
		c.Add(ev(i, 0, 1, wire.MsgCommit, "commit"))
	}
	evs := c.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i, e := range evs {
		if want := base.Add(time.Duration(12+i) * time.Millisecond); !e.At.Equal(want) {
			t.Fatalf("event %d at %v, want %v (oldest not evicted in order)", i, e.At, want)
		}
	}
	if d := c.Dropped(); d != 12 {
		t.Fatalf("dropped = %d, want 12", d)
	}
}

func TestCollectorResetKeepsCapacityAndClearsDrops(t *testing.T) {
	c := NewCollector()
	c.SetLimit(4)
	for i := 0; i < 10; i++ {
		c.Add(ev(i, 0, 1, wire.MsgCommit, "commit"))
	}
	c.Reset()
	if len(c.Events()) != 0 || c.Dropped() != 0 {
		t.Fatal("reset did not clear ring and drop counter")
	}
	for i := 0; i < 6; i++ {
		c.Add(ev(i, 0, 1, wire.MsgCommit, "commit"))
	}
	if got := len(c.Events()); got != 4 {
		t.Fatalf("retained %d events after reset, want limit 4", got)
	}
}

func TestCollectorZeroValueUsesDefaultLimit(t *testing.T) {
	var c Collector
	c.Add(ev(1, 0, 1, wire.MsgCommit, "commit"))
	if len(c.Events()) != 1 {
		t.Fatal("zero-valued collector dropped the event")
	}
}
