// Package trace captures protocol messages from the in-process transport
// and renders ASCII space-time diagrams — the tooling behind reproducing
// the paper's Figures 1 (Paxos), 2 (basic protocol), 3 (X-Paxos), and 4
// (T-Paxos) from live executions.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gridrep/internal/wire"
)

// Event is one delivered protocol message.
type Event struct {
	At   time.Time
	From wire.NodeID
	To   wire.NodeID
	Type wire.MsgType
	Note string // short payload description (request kind, instance, ...)
}

// DefaultLimit is the default event capacity of a Collector. At roughly
// 100 bytes per Event this bounds a collector left attached to a loaded
// cluster to a few megabytes, where the old unbounded slice grew without
// limit for as long as the tracer stayed registered.
const DefaultLimit = 65536

// Collector accumulates events into a fixed-capacity ring; once full,
// each new event overwrites the oldest and the drop counter advances. It
// is safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	ring    []Event // allocated lazily, capped at limit
	head    int     // next write position once the ring is full
	limit   int
	dropped uint64 // events overwritten after the ring filled
	start   time.Time
	armed   bool
}

// NewCollector returns an empty collector holding up to DefaultLimit
// events.
func NewCollector() *Collector { return &Collector{limit: DefaultLimit} }

// SetLimit resizes the ring capacity (minimum 1), discarding anything
// collected so far. Call before tracing starts.
func (c *Collector) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.ring = nil
	c.head = 0
	c.dropped = 0
	c.armed = false
}

// Dropped returns how many events were overwritten because the ring was
// full.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// TransportTracer adapts the collector to transport.Network.Tracer.
func (c *Collector) TransportTracer() func(time.Time, *wire.Envelope) {
	return func(at time.Time, env *wire.Envelope) {
		c.Add(Event{At: at, From: env.From, To: env.To, Type: env.Msg.Type(), Note: describe(env.Msg)})
	}
}

// Add records one event, evicting the oldest if the ring is full.
func (c *Collector) Add(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.armed {
		c.armed = true
		c.start = ev.At
	}
	if c.limit == 0 {
		c.limit = DefaultLimit // zero-valued Collector
	}
	if len(c.ring) < c.limit {
		c.ring = append(c.ring, ev)
		return
	}
	c.ring[c.head] = ev
	c.head = (c.head + 1) % c.limit
	c.dropped++
}

// Reset discards everything collected so far (capacity is kept).
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ring = nil
	c.head = 0
	c.dropped = 0
	c.armed = false
}

// Events returns a time-sorted copy of the retained events (the newest
// limit events; older ones were dropped once the ring filled).
func (c *Collector) Events() []Event {
	c.mu.Lock()
	out := make([]Event, 0, len(c.ring))
	out = append(out, c.ring[c.head:]...)
	out = append(out, c.ring[:c.head]...)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// describe summarizes a message body for diagram labels.
func describe(m wire.Message) string {
	switch v := m.(type) {
	case *wire.RequestMsg:
		return v.Req.Kind.String()
	case *wire.ReplyMsg:
		return "reply:" + v.Rep.Status.String()
	case *wire.Prepare:
		return fmt.Sprintf("prepare%v", v.Bal)
	case *wire.Promise:
		if v.OK {
			return "promise"
		}
		return "promise:nack"
	case *wire.Accept:
		insts := make([]string, len(v.Entries))
		for i, e := range v.Entries {
			insts[i] = fmt.Sprintf("%d", e.Instance)
		}
		return "accept[" + strings.Join(insts, ",") + "]"
	case *wire.Accepted:
		if v.OK {
			return "accepted"
		}
		return "accepted:nack"
	case *wire.Commit:
		return fmt.Sprintf("commit<=%d", v.Index)
	case *wire.Confirm:
		if len(v.Reads) > 1 {
			return fmt.Sprintf("confirm[%d]", len(v.Reads))
		}
		return "confirm"
	case *wire.Heartbeat:
		return "hb"
	case *wire.CatchUpReq:
		return "catchup?"
	case *wire.CatchUpResp:
		return "catchup!"
	default:
		return m.Type().String()
	}
}

// Filter returns the events whose type passes keep.
func Filter(events []Event, keep func(Event) bool) []Event {
	var out []Event
	for _, ev := range events {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// NoHeartbeats filters out Ω traffic, which the paper's figures omit.
func NoHeartbeats(ev Event) bool { return ev.Type != wire.MsgHeartbeat }

// Render draws a space-time (sequence) diagram: one column lane per
// participant, time flowing downward, one row per delivered message with
// an arrow from sender lane to receiver lane labeled with the message
// description — the format of the paper's Figures 1-4.
func Render(events []Event, participants []wire.NodeID) string {
	const colW = 14
	col := make(map[wire.NodeID]int, len(participants))
	for i, p := range participants {
		col[p] = i
	}
	lanePos := func(i int) int { return 10 + i*colW }
	width := 10 + len(participants)*colW

	var b strings.Builder
	// Header.
	hdr := []byte(strings.Repeat(" ", width))
	for i, p := range participants {
		name := p.String()
		copy(hdr[lanePos(i):], name)
	}
	b.Write(trimRight(hdr))
	b.WriteByte('\n')

	var start time.Time
	if len(events) > 0 {
		start = events[0].At
	}
	for _, ev := range events {
		ci, okFrom := col[ev.From]
		cj, okTo := col[ev.To]
		if !okFrom || !okTo {
			continue
		}
		line := []byte(strings.Repeat(" ", width))
		// Time gutter.
		ts := fmt.Sprintf("%7.3f", float64(ev.At.Sub(start).Microseconds())/1000.0)
		copy(line, ts)
		// Lane pipes.
		for i := range participants {
			line[lanePos(i)] = '|'
		}
		// Arrow.
		from, to := lanePos(ci), lanePos(cj)
		lo, hi := from, to
		if lo > hi {
			lo, hi = hi, lo
		}
		for x := lo + 1; x < hi; x++ {
			line[x] = '-'
		}
		if to > from {
			line[hi] = '>'
		} else if to < from {
			line[lo] = '<'
		} else {
			line[from] = '*'
		}
		// Label centered in the arrow span (or after the lane for
		// self-messages).
		label := ev.Note
		if hi-lo-2 > 0 && len(label) > hi-lo-2 {
			label = label[:hi-lo-2]
		}
		pos := lo + 1 + (hi-lo-1-len(label))/2
		if hi == lo {
			pos = lo + 2
		}
		if pos >= 0 && pos+len(label) <= width {
			copy(line[pos:], label)
		}
		b.Write(trimRight(line))
		b.WriteByte('\n')
	}
	return b.String()
}

func trimRight(line []byte) []byte {
	n := len(line)
	for n > 0 && line[n-1] == ' ' {
		n--
	}
	return line[:n]
}
