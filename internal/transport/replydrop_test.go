package transport

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"gridrep/internal/wire"
)

// newBuf returns a pooled buffer holding a tiny payload, the shape
// enqueueReply owns.
func newBuf(b byte) *[]byte {
	bp := wire.GetBuf()
	*bp = append((*bp)[:0], b)
	return bp
}

// TestReplyDropAccounting exercises enqueueReply directly with no
// writer goroutine draining the queue — the worst case a stalled client
// can create. Every call must return immediately (the test would hang
// otherwise: nothing ever drains wq), and overflow drops must be
// attributed to their cause: gateway sheds flooding the queue vs a slow
// client starving ordinary replies.
func TestReplyDropAccounting(t *testing.T) {
	tc := &tcpConn{wq: make(chan *[]byte, 4)}
	var st counters

	// Fill the queue with ordinary replies: no drops yet.
	for i := 0; i < 4; i++ {
		tc.enqueueReply(newBuf(byte(i)), &st, false)
	}
	if got := st.dropReplyOverflow.Load(); got != 0 {
		t.Fatalf("drops before overflow = %d", got)
	}

	// Three sheds against a full queue: each evicts the oldest frame and
	// books one overflow drop against the shed cause.
	for i := 0; i < 3; i++ {
		tc.enqueueReply(newBuf(0xee), &st, true)
	}
	// Two ordinary replies against the still-full queue: slow-client drops.
	for i := 0; i < 2; i++ {
		tc.enqueueReply(newBuf(0xdd), &st, false)
	}

	total := st.dropReplyOverflow.Load()
	shed := st.dropReplyShed.Load()
	slow := st.dropReplySlow.Load()
	if total != 5 {
		t.Fatalf("overflow drops = %d, want 5", total)
	}
	if shed != 3 || slow != 2 {
		t.Fatalf("cause split = shed %d / slow %d, want 3 / 2", shed, slow)
	}
	if shed+slow != total {
		t.Fatalf("cause counters %d+%d do not sum to total %d", shed, slow, total)
	}
	// Drain the queue back to the pool.
	for {
		select {
		case bp := <-tc.wq:
			wire.PutBuf(bp)
		default:
			return
		}
	}
}

// rawDialFrame dials a replica directly and writes one hand-framed
// envelope, returning the connection without ever starting a read loop —
// a client that goes silent after its first request, the pathological
// slow reader.
func rawDialFrame(t *testing.T, addr string, env *wire.Envelope) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	payload := wire.EncodeEnvelope(nil, env)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)+1))
	frame := append(append(hdr[:n:n], frameEnv), payload...)
	if _, err := nc.Write(frame); err != nil {
		t.Fatalf("raw frame write: %v", err)
	}
	return nc
}

// TestTCPShedNeverBlocksEventLoop floods a never-reading client with
// gateway sheds over a real socket. The sender — standing in for a
// replica's event loop — must complete the whole burst promptly even
// though the client drains nothing: replies leave through the bounded
// per-connection writer queue, and once the socket backs up, frames are
// dropped and accounted rather than ever parking the caller. The split
// counters must keep summing to the total under concurrency.
func TestTCPShedNeverBlocksEventLoop(t *testing.T) {
	book := map[wire.NodeID]string{0: "127.0.0.1:0"}
	rep, err := ListenTCPOpts(0, book, Options{WriteTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("ListenTCPOpts: %v", err)
	}
	defer rep.Close()

	cid := wire.ClientIDBase
	nc := rawDialFrame(t, rep.Addr(), &wire.Envelope{From: cid, To: 0, Msg: &wire.RequestMsg{
		Req: wire.Request{Client: cid, Seq: 1, Kind: wire.KindWrite, Op: []byte("x")},
	}})
	defer nc.Close()
	tcpRecv(t, rep, 2*time.Second) // route learned

	// Far more sheds than the writer queue holds, with fat results so the
	// kernel socket buffers saturate quickly. A Send that ever blocked on
	// the stalled connection would blow the deadline by orders of
	// magnitude.
	const k = 4 * replyQueue
	body := make([]byte, 200)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < k; i++ {
			rep.Send(&wire.Envelope{To: cid, Msg: &wire.ReplyMsg{
				Rep: wire.Reply{Client: cid, Seq: uint64(i), Status: wire.StatusOverload,
					RetryAfterMS: 5, Result: body},
			}})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Send burst blocked on a non-reading client")
	}

	st := rep.Stats()
	if st.DropsReplyShed+st.DropsReplySlowClient != st.DropsReplyOverflow {
		t.Fatalf("cause split %d+%d != overflow total %d",
			st.DropsReplyShed, st.DropsReplySlowClient, st.DropsReplyOverflow)
	}
	if st.DropsReplyOverflow > 0 && st.DropsReplyShed == 0 {
		t.Fatalf("overflow drops %d attributed to nothing shed in an all-shed burst", st.DropsReplyOverflow)
	}
}
