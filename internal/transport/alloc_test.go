package transport

import (
	"testing"
)

// TestTCPRoundTripAllocs pins the steady-state allocation budget of the
// full tcpx hot path: pooled encode + framed write on the sender, framed
// read + owned decode + delivery on the receiver. AllocsPerRun counts
// whole-process mallocs, so the budget covers both endpoints' goroutines
// for one request each way. Steady state measures 6; the budget leaves
// slack for pool refills after a GC without letting the pre-overhaul
// cost (20/op) sneak back.
func TestTCPRoundTripAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts on pooled paths are not meaningful under -race (sync.Pool drops items)")
	}
	t0, t1 := tcpPair(t)
	env0, env1 := benchEnv(1), benchEnv(0)
	roundTrip := func() {
		t0.Send(env0)
		if _, ok := <-t1.Recv(); !ok {
			t.Fatal("t1 recv closed")
		}
		t1.Send(env1)
		if _, ok := <-t0.Recv(); !ok {
			t.Fatal("t0 recv closed")
		}
	}
	for i := 0; i < 50; i++ {
		roundTrip() // warm pools, bufio buffers, and supervisor state
	}
	avg := testing.AllocsPerRun(200, roundTrip)
	if avg > 10 {
		t.Errorf("tcp round trip allocates %.2f/op, budget 10", avg)
	}
}

// TestTCPWaveRoundTripAllocs is the same budget check for a loaded
// accept-wave frame, the dominant replica→replica message under write
// load. Steady state measures 15 (the wave's entry/request/result slices
// dominate); pre-overhaul was 42.
func TestTCPWaveRoundTripAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts on pooled paths are not meaningful under -race (sync.Pool drops items)")
	}
	t0, t1 := tcpPair(t)
	wave, ack := benchWaveEnv(1), benchEnv(0)
	roundTrip := func() {
		t0.Send(wave)
		if _, ok := <-t1.Recv(); !ok {
			t.Fatal("t1 recv closed")
		}
		t1.Send(ack)
		if _, ok := <-t0.Recv(); !ok {
			t.Fatal("t0 recv closed")
		}
	}
	for i := 0; i < 50; i++ {
		roundTrip()
	}
	avg := testing.AllocsPerRun(200, roundTrip)
	if avg > 21 {
		t.Errorf("tcp wave round trip allocates %.2f/op, budget 21", avg)
	}
}
