package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridrep/internal/metrics"
	"gridrep/internal/netem"
	"gridrep/internal/wire"
)

// TestChanxSinkBypassesRecv: once a sink is set, the fabric delivers
// straight into the callback and nothing reaches the Recv channel.
func TestChanxSinkBypassesRecv(t *testing.T) {
	n := newTestNet(t, netem.Loopback())
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)

	got := make(chan *wire.Envelope, 16)
	b.SetSink(func(env *wire.Envelope) { got <- env })

	env := hb(0, 42)
	env.To = 1
	a.Send(env)
	select {
	case d := <-got:
		if d.Msg.(*wire.Heartbeat).Epoch != 42 {
			t.Fatalf("sink got %+v", d.Msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sink never called")
	}
	select {
	case d := <-b.Recv():
		t.Fatalf("Recv must be silent with a sink set, got %+v", d)
	default:
	}
}

// TestTCPSinkDelivery: the TCP transport's per-connection decode
// goroutines call the sink directly — possibly concurrently, one caller
// per connection — and Recv stays silent.
func TestTCPSinkDelivery(t *testing.T) {
	reps, _ := startTCPCluster(t, 3)
	var calls atomic.Int64
	got := make(chan *wire.Envelope, 64)
	reps[0].SetSink(func(env *wire.Envelope) {
		calls.Add(1)
		got <- env
	})

	// Two distinct peers → two accept-side connections → two decode
	// goroutines invoking the sink.
	const per = 10
	var wg sync.WaitGroup
	for _, src := range []int{1, 2} {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				env := hb(wire.NodeID(src), uint64(i))
				env.To = 0
				reps[src].Send(env)
			}
		}(src)
	}
	wg.Wait()
	seen := map[wire.NodeID]int{}
	for i := 0; i < 2*per; i++ {
		select {
		case env := <-got:
			seen[env.From]++
		case <-time.After(5 * time.Second):
			t.Fatalf("sink delivered %d/%d envelopes", i, 2*per)
		}
	}
	if seen[1] != per || seen[2] != per {
		t.Fatalf("per-peer counts %v, want %d each", seen, per)
	}
	select {
	case env := <-reps[0].Recv():
		t.Fatalf("Recv must be silent with a sink set, got %+v", env)
	default:
	}
}

// TestTCPDecodeStageOrdering: decode runs on a worker stage behind the
// socket read loop, but frames of one connection must still be
// delivered in wire order (the FIFO-per-link contract the shard router
// pins transactions with).
func TestTCPDecodeStageOrdering(t *testing.T) {
	reps, _ := startTCPCluster(t, 2)
	const k = 500
	go func() {
		for i := 0; i < k; i++ {
			env := hb(0, uint64(i))
			env.To = 1
			reps[0].Send(env)
		}
	}()
	for i := 0; i < k; i++ {
		got := tcpRecv(t, reps[1], 5*time.Second).Msg.(*wire.Heartbeat)
		if got.Epoch != uint64(i) {
			t.Fatalf("decode stage reordered: epoch %d at position %d", got.Epoch, i)
		}
	}
}

// TestTCPDecodeLatencyHistogram: the off-loop decode stage times every
// frame into gridrep_tcp_decode_seconds.
func TestTCPDecodeLatencyHistogram(t *testing.T) {
	reps, _ := startTCPCluster(t, 2)
	reg := metrics.NewRegistry()
	reps[1].RegisterMetrics(reg)
	const k = 20
	go func() {
		for i := 0; i < k; i++ {
			env := hb(0, uint64(i))
			env.To = 1
			reps[0].Send(env)
		}
	}()
	for i := 0; i < k; i++ {
		tcpRecv(t, reps[1], 5*time.Second)
	}
	m, ok := metrics.Find(reg.Snapshot(), "gridrep_tcp_decode_seconds")
	if !ok || m.Hist == nil {
		t.Fatal("decode histogram not registered")
	}
	if m.Hist.Count < k {
		t.Fatalf("decode histogram count = %d, want >= %d", m.Hist.Count, k)
	}
}

// TestTCPReplyWriterQueue: accept-side replies leave through a
// per-connection writer goroutine; a burst far larger than any socket
// buffer must still arrive completely and in order.
func TestTCPReplyWriterQueue(t *testing.T) {
	reps, book := startTCPCluster(t, 1)
	cli := DialTCP(wire.ClientIDBase, book)
	defer cli.Close()

	// Teach replica 0 the client route.
	cli.Send(&wire.Envelope{To: 0, Msg: &wire.RequestMsg{
		Req: wire.Request{Client: wire.ClientIDBase, Seq: 1, Kind: wire.KindRead, Op: []byte("x")},
	}})
	tcpRecv(t, reps[0], 2*time.Second)

	const k = 2000
	go func() {
		for i := 0; i < k; i++ {
			reps[0].Send(&wire.Envelope{To: wire.ClientIDBase, Msg: &wire.ReplyMsg{
				Rep: wire.Reply{Client: wire.ClientIDBase, Seq: uint64(i), Status: wire.StatusOK},
			}})
		}
	}()
	for i := 0; i < k; i++ {
		rep := tcpRecv(t, cli, 5*time.Second).Msg.(*wire.ReplyMsg).Rep
		if rep.Seq != uint64(i) {
			t.Fatalf("reply writer reordered: seq %d at position %d", rep.Seq, i)
		}
	}
	if d := reps[0].Stats().DropsReplyOverflow; d != 0 {
		t.Fatalf("reply overflow drops = %d with a draining client", d)
	}
}

// TestGroupMuxSinkDispatch: wrapping a Sinker transport, the mux must
// dispatch inbound envelopes to group queues without a pump goroutine —
// straight from the fabric's delivery path — and still honor routing.
func TestGroupMuxSinkDispatch(t *testing.T) {
	n := newTestNet(t, netem.Loopback())
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	mux := NewGroupMux(b, 2, nil)
	defer mux.Close()

	env := hb(0, 7)
	env.To = 1
	env.Group = 1
	a.Send(env)
	select {
	case got := <-mux.Group(1).Recv():
		if got.Msg.(*wire.Heartbeat).Epoch != 7 {
			t.Fatalf("group 1 got %+v", got.Msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sink dispatch never reached group 1")
	}
	select {
	case got := <-mux.Group(0).Recv():
		t.Fatalf("group 0 must stay silent, got %+v", got)
	default:
	}
}
