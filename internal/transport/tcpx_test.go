package transport

import (
	"testing"
	"time"

	"gridrep/internal/wire"
)

// startTCPCluster starts nReplicas listening transports on ephemeral ports
// and returns them plus a shared address book.
func startTCPCluster(t *testing.T, nReplicas int) ([]*TCP, map[wire.NodeID]string) {
	t.Helper()
	book := make(map[wire.NodeID]string)
	var reps []*TCP
	for i := 0; i < nReplicas; i++ {
		id := wire.NodeID(i)
		book[id] = "127.0.0.1:0"
		tr, err := ListenTCP(id, book)
		if err != nil {
			t.Fatalf("ListenTCP(%v): %v", id, err)
		}
		book[id] = tr.Addr() // replace :0 with the bound port
		reps = append(reps, tr)
		t.Cleanup(func() { tr.Close() })
	}
	// Rebuild every replica's book with the final addresses.
	for _, tr := range reps {
		for k, v := range book {
			tr.book[k] = v
		}
	}
	return reps, book
}

func tcpRecv(t *testing.T, tr *TCP, within time.Duration) *wire.Envelope {
	t.Helper()
	select {
	case env, ok := <-tr.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return env
	case <-time.After(within):
		t.Fatal("timed out waiting for TCP delivery")
		return nil
	}
}

func TestTCPReplicaToReplica(t *testing.T) {
	reps, _ := startTCPCluster(t, 2)
	env := hb(0, 9)
	env.To = 1
	reps[0].Send(env)
	got := tcpRecv(t, reps[1], 2*time.Second)
	if got.From != 0 || got.Msg.(*wire.Heartbeat).Epoch != 9 {
		t.Errorf("got %v from %v", got.Msg, got.From)
	}
}

func TestTCPClientRoundTrip(t *testing.T) {
	reps, book := startTCPCluster(t, 1)
	cli := DialTCP(wire.ClientIDBase, book)
	defer cli.Close()

	// Client sends a request; replica replies over the learned route.
	cli.Send(&wire.Envelope{To: 0, Msg: &wire.RequestMsg{
		Req: wire.Request{Client: wire.ClientIDBase, Seq: 7, Kind: wire.KindRead, Op: []byte("x")},
	}})
	got := tcpRecv(t, reps[0], 2*time.Second)
	req := got.Msg.(*wire.RequestMsg).Req
	if req.Seq != 7 || string(req.Op) != "x" {
		t.Fatalf("request mangled: %+v", req)
	}
	reps[0].Send(&wire.Envelope{To: wire.ClientIDBase, Msg: &wire.ReplyMsg{
		Rep: wire.Reply{Client: wire.ClientIDBase, Seq: 7, Status: wire.StatusOK, Result: []byte("v")},
	}})
	rep := tcpRecv(t, cli, 2*time.Second).Msg.(*wire.ReplyMsg).Rep
	if rep.Seq != 7 || string(rep.Result) != "v" {
		t.Fatalf("reply mangled: %+v", rep)
	}
}

func TestTCPReplyWithoutRouteDropped(t *testing.T) {
	reps, _ := startTCPCluster(t, 1)
	// No route to this client was ever learned; Send must not panic.
	reps[0].Send(&wire.Envelope{To: wire.ClientIDBase + 5, Msg: &wire.ReplyMsg{}})
}

func TestTCPManyFrames(t *testing.T) {
	reps, _ := startTCPCluster(t, 2)
	const k = 1000
	go func() {
		for i := 0; i < k; i++ {
			env := hb(0, uint64(i))
			env.To = 1
			reps[0].Send(env)
		}
	}()
	for i := 0; i < k; i++ {
		got := tcpRecv(t, reps[1], 5*time.Second).Msg.(*wire.Heartbeat)
		if got.Epoch != uint64(i) {
			t.Fatalf("TCP must be FIFO: got epoch %d at position %d", got.Epoch, i)
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	reps, book := startTCPCluster(t, 1)
	cli := DialTCP(wire.ClientIDBase, book)
	defer cli.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	cli.Send(&wire.Envelope{To: 0, Msg: &wire.RequestMsg{
		Req: wire.Request{Client: wire.ClientIDBase, Seq: 1, Kind: wire.KindWrite, Op: big},
	}})
	got := tcpRecv(t, reps[0], 5*time.Second).Msg.(*wire.RequestMsg).Req
	if len(got.Op) != len(big) || got.Op[12345] != big[12345] {
		t.Fatal("large payload corrupted")
	}
}

func TestTCPClose(t *testing.T) {
	reps, book := startTCPCluster(t, 1)
	cli := DialTCP(wire.ClientIDBase, book)
	cli.Send(&wire.Envelope{To: 0, Msg: &wire.Heartbeat{From: wire.ClientIDBase}})
	tcpRecv(t, reps[0], 2*time.Second)
	if err := cli.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, ok := <-cli.Recv(); ok {
		t.Fatal("recv channel must close")
	}
	cli.Close() // idempotent
	// Replica can still be closed cleanly with a dead peer route.
	if err := reps[0].Close(); err != nil {
		t.Fatalf("replica Close: %v", err)
	}
}

func TestTCPSendToUnknownPeer(t *testing.T) {
	tr := DialTCP(wire.ClientIDBase, map[wire.NodeID]string{})
	defer tr.Close()
	tr.Send(&wire.Envelope{To: 3, Msg: &wire.Heartbeat{}}) // no address: dropped
}

func TestTCPDialFailure(t *testing.T) {
	// Address book points at a port nobody listens on.
	tr := DialTCP(wire.ClientIDBase, map[wire.NodeID]string{0: "127.0.0.1:1"})
	defer tr.Close()
	tr.Send(&wire.Envelope{To: 0, Msg: &wire.Heartbeat{}}) // must not panic
}
