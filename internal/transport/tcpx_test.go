package transport

import (
	"testing"
	"time"

	"gridrep/internal/wire"
)

// startTCPCluster starts nReplicas listening transports on ephemeral ports
// and returns them plus a shared address book.
func startTCPCluster(t *testing.T, nReplicas int) ([]*TCP, map[wire.NodeID]string) {
	t.Helper()
	book := make(map[wire.NodeID]string)
	var reps []*TCP
	for i := 0; i < nReplicas; i++ {
		id := wire.NodeID(i)
		book[id] = "127.0.0.1:0"
		tr, err := ListenTCP(id, book)
		if err != nil {
			t.Fatalf("ListenTCP(%v): %v", id, err)
		}
		book[id] = tr.Addr() // replace :0 with the bound port
		reps = append(reps, tr)
		t.Cleanup(func() { tr.Close() })
	}
	// Rebuild every replica's book with the final addresses.
	for _, tr := range reps {
		for k, v := range book {
			tr.SetAddr(k, v)
		}
	}
	return reps, book
}

// fastOpts are aggressive self-healing timings for churn tests.
func fastOpts() Options {
	return Options{
		BackoffMin:   2 * time.Millisecond,
		BackoffMax:   50 * time.Millisecond,
		WriteTimeout: time.Second,
		PingEvery:    10 * time.Millisecond,
		PingTimeout:  80 * time.Millisecond,
	}
}

func tcpRecv(t *testing.T, tr *TCP, within time.Duration) *wire.Envelope {
	t.Helper()
	select {
	case env, ok := <-tr.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return env
	case <-time.After(within):
		t.Fatal("timed out waiting for TCP delivery")
		return nil
	}
}

func TestTCPReplicaToReplica(t *testing.T) {
	reps, _ := startTCPCluster(t, 2)
	env := hb(0, 9)
	env.To = 1
	reps[0].Send(env)
	got := tcpRecv(t, reps[1], 2*time.Second)
	if got.From != 0 || got.Msg.(*wire.Heartbeat).Epoch != 9 {
		t.Errorf("got %v from %v", got.Msg, got.From)
	}
}

func TestTCPClientRoundTrip(t *testing.T) {
	reps, book := startTCPCluster(t, 1)
	cli := DialTCP(wire.ClientIDBase, book)
	defer cli.Close()

	// Client sends a request; replica replies over the learned route.
	cli.Send(&wire.Envelope{To: 0, Msg: &wire.RequestMsg{
		Req: wire.Request{Client: wire.ClientIDBase, Seq: 7, Kind: wire.KindRead, Op: []byte("x")},
	}})
	got := tcpRecv(t, reps[0], 2*time.Second)
	req := got.Msg.(*wire.RequestMsg).Req
	if req.Seq != 7 || string(req.Op) != "x" {
		t.Fatalf("request mangled: %+v", req)
	}
	reps[0].Send(&wire.Envelope{To: wire.ClientIDBase, Msg: &wire.ReplyMsg{
		Rep: wire.Reply{Client: wire.ClientIDBase, Seq: 7, Status: wire.StatusOK, Result: []byte("v")},
	}})
	rep := tcpRecv(t, cli, 2*time.Second).Msg.(*wire.ReplyMsg).Rep
	if rep.Seq != 7 || string(rep.Result) != "v" {
		t.Fatalf("reply mangled: %+v", rep)
	}
}

func TestTCPReplyWithoutRouteDropped(t *testing.T) {
	reps, _ := startTCPCluster(t, 1)
	// No route to this client was ever learned; Send must not panic.
	reps[0].Send(&wire.Envelope{To: wire.ClientIDBase + 5, Msg: &wire.ReplyMsg{}})
}

func TestTCPManyFrames(t *testing.T) {
	reps, _ := startTCPCluster(t, 2)
	const k = 1000
	go func() {
		for i := 0; i < k; i++ {
			env := hb(0, uint64(i))
			env.To = 1
			reps[0].Send(env)
		}
	}()
	for i := 0; i < k; i++ {
		got := tcpRecv(t, reps[1], 5*time.Second).Msg.(*wire.Heartbeat)
		if got.Epoch != uint64(i) {
			t.Fatalf("TCP must be FIFO: got epoch %d at position %d", got.Epoch, i)
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	reps, book := startTCPCluster(t, 1)
	cli := DialTCP(wire.ClientIDBase, book)
	defer cli.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	cli.Send(&wire.Envelope{To: 0, Msg: &wire.RequestMsg{
		Req: wire.Request{Client: wire.ClientIDBase, Seq: 1, Kind: wire.KindWrite, Op: big},
	}})
	got := tcpRecv(t, reps[0], 5*time.Second).Msg.(*wire.RequestMsg).Req
	if len(got.Op) != len(big) || got.Op[12345] != big[12345] {
		t.Fatal("large payload corrupted")
	}
}

func TestTCPClose(t *testing.T) {
	reps, book := startTCPCluster(t, 1)
	cli := DialTCP(wire.ClientIDBase, book)
	cli.Send(&wire.Envelope{To: 0, Msg: &wire.Heartbeat{From: wire.ClientIDBase}})
	tcpRecv(t, reps[0], 2*time.Second)
	if err := cli.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, ok := <-cli.Recv(); ok {
		t.Fatal("recv channel must close")
	}
	cli.Close() // idempotent
	// Replica can still be closed cleanly with a dead peer route.
	if err := reps[0].Close(); err != nil {
		t.Fatalf("replica Close: %v", err)
	}
}

func TestTCPSendToUnknownPeer(t *testing.T) {
	tr := DialTCP(wire.ClientIDBase, map[wire.NodeID]string{})
	defer tr.Close()
	tr.Send(&wire.Envelope{To: 3, Msg: &wire.Heartbeat{}}) // no address: dropped
}

func TestTCPDialFailure(t *testing.T) {
	// Address book points at a port nobody listens on.
	tr := DialTCP(wire.ClientIDBase, map[wire.NodeID]string{0: "127.0.0.1:1"})
	defer tr.Close()
	tr.Send(&wire.Envelope{To: 0, Msg: &wire.Heartbeat{}}) // must not panic
}

// TestTCPSupervisorReconnect kills a replica's listener mid-traffic,
// restarts it on the same address, and asserts the peer supervisor
// reconnects and traffic resumes (the churn case the paper's PlanetLab
// deployment had to survive).
func TestTCPSupervisorReconnect(t *testing.T) {
	a, err := ListenTCPOpts(0, map[wire.NodeID]string{0: "127.0.0.1:0"}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCPOpts(1, map[wire.NodeID]string{1: "127.0.0.1:0"}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	addrB := b.Addr()
	a.SetAddr(1, addrB)
	b.SetAddr(0, a.Addr())

	env := hb(0, 1)
	env.To = 1
	a.Send(env)
	if got := tcpRecv(t, b, 2*time.Second).Msg.(*wire.Heartbeat); got.Epoch != 1 {
		t.Fatalf("pre-churn epoch = %d, want 1", got.Epoch)
	}

	// Kill the listener mid-traffic.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// A message sent into the outage sits in the supervisor queue (or is
	// dropped, best effort) — it must never block or panic.
	env = hb(0, 2)
	env.To = 1
	a.Send(env)

	// Restart on the same address. Retry briefly: the OS may need a
	// moment to release the port to a fresh listener.
	var b2 *TCP
	deadline := time.Now().Add(5 * time.Second)
	for {
		b2, err = ListenTCPOpts(1, map[wire.NodeID]string{1: addrB}, fastOpts())
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addrB, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer b2.Close()

	// Traffic must resume: send until the restarted listener hears us.
	got := make(chan uint64, 1)
	go func() {
		for env := range b2.Recv() {
			if hb, ok := env.Msg.(*wire.Heartbeat); ok && hb.Epoch >= 3 {
				select {
				case got <- hb.Epoch:
				default:
				}
				return
			}
		}
	}()
	deadline = time.Now().Add(10 * time.Second)
	for {
		env := hb(0, 3)
		env.To = 1
		a.Send(env)
		select {
		case <-got:
		case <-time.After(20 * time.Millisecond):
			if time.Now().Before(deadline) {
				continue
			}
			t.Fatal("traffic did not resume after listener restart")
		}
		break
	}
	if st := a.Stats(); st.Reconnects < 1 || st.Dials < 2 {
		t.Errorf("stats = %+v, want >=1 reconnect and >=2 dials", st)
	}
}

// TestTCPRecvOverflowDropsOldest verifies the receive buffer evicts the
// oldest envelope on overflow and accounts for every drop, matching the
// in-process transport's Drops() accounting.
func TestTCPRecvOverflowDropsOldest(t *testing.T) {
	opts := fastOpts()
	opts.RecvBuf = 4
	b, err := ListenTCPOpts(1, map[wire.NodeID]string{1: "127.0.0.1:0"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a := DialTCPOpts(wire.ClientIDBase, map[wire.NodeID]string{1: b.Addr()}, fastOpts())
	defer a.Close()

	for i := 0; i < 10; i++ {
		env := hb(wire.ClientIDBase, uint64(i))
		env.To = 1
		a.Send(env)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Drops() < 6 {
		if time.Now().After(deadline) {
			t.Fatalf("drops = %d, want 6", b.Drops())
		}
		time.Sleep(time.Millisecond)
	}
	for want := uint64(6); want < 10; want++ {
		got := tcpRecv(t, b, time.Second).Msg.(*wire.Heartbeat).Epoch
		if got != want {
			t.Fatalf("surviving epoch = %d, want %d (oldest must be evicted first)", got, want)
		}
	}
	if st := b.Stats(); st.DropsRecvOverflow != 6 {
		t.Errorf("DropsRecvOverflow = %d, want 6", st.DropsRecvOverflow)
	}
}

// TestTCPHealthCallback asserts peer up/down transitions reach the
// registered health callback when the remote listener dies.
func TestTCPHealthCallback(t *testing.T) {
	b, err := ListenTCPOpts(1, map[wire.NodeID]string{1: "127.0.0.1:0"}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	type event struct {
		peer wire.NodeID
		up   bool
	}
	events := make(chan event, 16)
	a := DialTCPOpts(0, map[wire.NodeID]string{1: b.Addr()}, fastOpts())
	defer a.Close()
	a.SetHealth(func(peer wire.NodeID, up bool) {
		select {
		case events <- event{peer, up}:
		default:
		}
	})

	env := hb(0, 1)
	env.To = 1
	a.Send(env)
	select {
	case ev := <-events:
		if ev.peer != 1 || !ev.up {
			t.Fatalf("first event = %+v, want peer 1 up", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no up event after connect")
	}

	b.Close()
	select {
	case ev := <-events:
		if ev.peer != 1 || ev.up {
			t.Fatalf("second event = %+v, want peer 1 down", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no down event after listener death")
	}
}

// TestTCPPingRTT checks that supervised links exchange transport
// heartbeats and measure a round trip.
func TestTCPPingRTT(t *testing.T) {
	b, err := ListenTCPOpts(1, map[wire.NodeID]string{1: "127.0.0.1:0"}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a := DialTCPOpts(0, map[wire.NodeID]string{1: b.Addr()}, fastOpts())
	defer a.Close()
	env := hb(0, 1)
	env.To = 1
	a.Send(env)
	tcpRecv(t, b, 2*time.Second)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := a.Stats()
		if st.PingsSent >= 1 && st.PongsRecvd >= 1 && st.LastRTT > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no ping round trip: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
