// Package transport moves wire.Envelopes between processes.
//
// Two implementations are provided: an in-process transport (chanx.go)
// whose delivery times are driven by a netem.Model — used by tests and by
// the benchmark harness to reproduce the paper's three network
// configurations — and a TCP transport (tcpx.go) with length-prefixed
// framing for real multi-process deployments, matching the paper's choice
// of raw TCP sockets (§4).
package transport

import (
	"time"

	"gridrep/internal/wire"
)

// Transport sends and receives protocol envelopes for one local node.
// Sends are asynchronous and best-effort: the system model is an
// asynchronous network with no bound on delivery time (§3.1), and the
// protocol layer owns all retransmission.
type Transport interface {
	// Local returns the node this endpoint belongs to.
	Local() wire.NodeID
	// Send dispatches env.Msg to env.To. The transport stamps From.
	// It never blocks on the network; delivery is not guaranteed.
	Send(env *wire.Envelope)
	// Recv returns the channel of inbound envelopes. The channel is
	// closed when the transport is closed.
	Recv() <-chan *wire.Envelope
	// Close releases resources and closes the Recv channel.
	Close() error
}

// HealthReporter is implemented by transports that can observe
// link-level peer health (connection establishment and death). The
// callback runs on transport goroutines; receivers must not block.
// Replicas feed these events into the Ω elector so leader election
// reacts to real socket failures, not just missing heartbeats.
type HealthReporter interface {
	SetHealth(fn func(peer wire.NodeID, up bool))
}

// Sinker is implemented by transports that can deliver inbound
// envelopes by direct callback instead of through the Recv channel.
// Once a sink is set, Recv receives nothing further; the callback may
// run concurrently from multiple transport goroutines (one per
// connection on TCP), so receivers must synchronize internally and must
// never block — the callback runs on the hot receive path. Set the sink
// before traffic starts. This is how the group multiplexer shards
// receive fan-in by connection: each connection's decode stage
// dispatches straight into per-group queues instead of funneling
// through one pump goroutine (DESIGN.md §14).
type Sinker interface {
	SetSink(fn func(*wire.Envelope))
}

// RTTReporter is implemented by transports that can estimate per-peer
// round-trip times. The TCP transport smooths its keepalive ping RTTs
// into a per-peer EWMA; the in-process fabric derives the figure from
// the netem model's mean link latencies. Replicas fold the estimates
// into an Ω placement cost and clients use them to pick the nearest
// replica for X-Paxos reads (DESIGN.md §16).
type RTTReporter interface {
	// PeerRTT returns the smoothed round-trip estimate to peer, and
	// false while no estimate exists (no samples yet, unknown peer).
	PeerRTT(peer wire.NodeID) (rtt time.Duration, ok bool)
}

// Meter is implemented by transports that account for dropped messages.
// Both the in-process Network endpoints and the TCP transport implement
// it with the same semantics: a monotonic count of envelopes the
// transport discarded (overflow, dead routes, model loss).
type Meter interface {
	Drops() uint64
}

// Broadcast sends msg from t to every node in dst.
func Broadcast(t Transport, dst []wire.NodeID, msg wire.Message) {
	for _, to := range dst {
		t.Send(&wire.Envelope{To: to, Msg: msg})
	}
}
