// Package transport moves wire.Envelopes between processes.
//
// Two implementations are provided: an in-process transport (chanx.go)
// whose delivery times are driven by a netem.Model — used by tests and by
// the benchmark harness to reproduce the paper's three network
// configurations — and a TCP transport (tcpx.go) with length-prefixed
// framing for real multi-process deployments, matching the paper's choice
// of raw TCP sockets (§4).
package transport

import "gridrep/internal/wire"

// Transport sends and receives protocol envelopes for one local node.
// Sends are asynchronous and best-effort: the system model is an
// asynchronous network with no bound on delivery time (§3.1), and the
// protocol layer owns all retransmission.
type Transport interface {
	// Local returns the node this endpoint belongs to.
	Local() wire.NodeID
	// Send dispatches env.Msg to env.To. The transport stamps From.
	// It never blocks on the network; delivery is not guaranteed.
	Send(env *wire.Envelope)
	// Recv returns the channel of inbound envelopes. The channel is
	// closed when the transport is closed.
	Recv() <-chan *wire.Envelope
	// Close releases resources and closes the Recv channel.
	Close() error
}

// HealthReporter is implemented by transports that can observe
// link-level peer health (connection establishment and death). The
// callback runs on transport goroutines; receivers must not block.
// Replicas feed these events into the Ω elector so leader election
// reacts to real socket failures, not just missing heartbeats.
type HealthReporter interface {
	SetHealth(fn func(peer wire.NodeID, up bool))
}

// Meter is implemented by transports that account for dropped messages.
// Both the in-process Network endpoints and the TCP transport implement
// it with the same semantics: a monotonic count of envelopes the
// transport discarded (overflow, dead routes, model loss).
type Meter interface {
	Drops() uint64
}

// Broadcast sends msg from t to every node in dst.
func Broadcast(t Transport, dst []wire.NodeID, msg wire.Message) {
	for _, to := range dst {
		t.Send(&wire.Envelope{To: to, Msg: msg})
	}
}
