package transport

import (
	"testing"
	"time"

	"gridrep/internal/netem"
	"gridrep/internal/wire"
)

// benchEnv is a mid-size write request, the dominant client→replica
// message under load.
func benchEnv(to wire.NodeID) *wire.Envelope {
	return &wire.Envelope{
		To: to,
		Msg: &wire.RequestMsg{Req: wire.Request{
			Client: wire.ClientIDBase + 1, Seq: 1, Kind: wire.KindWrite,
			Op: make([]byte, 128),
		}},
	}
}

// benchWaveEnv is a loaded accept wave, the dominant replica→replica
// message under write load.
func benchWaveEnv(to wire.NodeID) *wire.Envelope {
	entries := make([]wire.Entry, 4)
	for i := range entries {
		e := wire.Entry{
			Instance: uint64(100 + i),
			Bal:      wire.Ballot{Round: 3, Node: 1},
			Prop: wire.Proposal{
				Reqs: []wire.Request{{
					Client: wire.ClientIDBase + wire.NodeID(i), Seq: uint64(i),
					Kind: wire.KindWrite, Op: make([]byte, 128),
				}},
				Results: [][]byte{make([]byte, 32)},
			},
		}
		if i == len(entries)-1 {
			e.Prop.HasState = true
			e.Prop.Kind = wire.StateFull
			e.Prop.State = make([]byte, 1024)
		}
		entries[i] = e
	}
	return &wire.Envelope{To: to, Msg: &wire.Accept{
		Bal: wire.Ballot{Round: 3, Node: 1}, Entries: entries, Commit: 99,
	}}
}

// tcpPair builds two connected TCP transports on loopback and waits for
// the 0→1 supervised link to come up.
func tcpPair(b testing.TB) (*TCP, *TCP) {
	b.Helper()
	book := map[wire.NodeID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	t0, err := ListenTCPOpts(0, book, Options{})
	if err != nil {
		b.Fatal(err)
	}
	book0 := map[wire.NodeID]string{0: t0.Addr(), 1: "127.0.0.1:0"}
	t1, err := ListenTCPOpts(1, map[wire.NodeID]string{0: t0.Addr(), 1: book0[1]}, Options{})
	if err != nil {
		t0.Close()
		b.Fatal(err)
	}
	t0.SetAddr(1, t1.Addr())
	b.Cleanup(func() { t0.Close(); t1.Close() })
	// Prime both directions so supervisors are dialed and warm.
	t0.Send(benchEnv(1))
	t1.Send(benchEnv(0))
	for _, tr := range []*TCP{t0, t1} {
		select {
		case <-tr.Recv():
		case <-time.After(5 * time.Second):
			b.Fatal("transport warmup timed out")
		}
	}
	return t0, t1
}

// BenchmarkTCPRoundTrip measures the full tcpx hot path: encode + frame +
// write + read + decode in both directions (one request each way per op).
// Allocations are whole-process, so the number covers sender and receiver
// goroutines together.
func BenchmarkTCPRoundTrip(b *testing.B) {
	t0, t1 := tcpPair(b)
	env0, env1 := benchEnv(1), benchEnv(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0.Send(env0)
		if _, ok := <-t1.Recv(); !ok {
			b.Fatal("t1 recv closed")
		}
		t1.Send(env1)
		if _, ok := <-t0.Recv(); !ok {
			b.Fatal("t0 recv closed")
		}
	}
}

// BenchmarkTCPWaveRoundTrip is BenchmarkTCPRoundTrip with a loaded
// accept-wave payload 0→1 (leader→backup) and a small ack back.
func BenchmarkTCPWaveRoundTrip(b *testing.B) {
	t0, t1 := tcpPair(b)
	wave, ack := benchWaveEnv(1), benchEnv(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0.Send(wave)
		if _, ok := <-t1.Recv(); !ok {
			b.Fatal("t1 recv closed")
		}
		t1.Send(ack)
		if _, ok := <-t0.Recv(); !ok {
			b.Fatal("t0 recv closed")
		}
	}
}

// BenchmarkNetworkRoundTrip measures the in-process transport's codec
// round trip (encode + decode per Send) on the zero-delay loopback
// profile, the substrate every cmd/benchpaxos number runs over.
func BenchmarkNetworkRoundTrip(b *testing.B) {
	n := NewNetwork(netem.Loopback().NewModel(1))
	defer n.Close()
	ep0, err := n.Endpoint(0)
	if err != nil {
		b.Fatal(err)
	}
	ep1, err := n.Endpoint(1)
	if err != nil {
		b.Fatal(err)
	}
	env0, env1 := benchEnv(1), benchEnv(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep0.Send(env0)
		if _, ok := <-ep1.Recv(); !ok {
			b.Fatal("ep1 recv closed")
		}
		ep1.Send(env1)
		if _, ok := <-ep0.Recv(); !ok {
			b.Fatal("ep0 recv closed")
		}
	}
}

// BenchmarkNetworkWaveSend measures one-way accept-wave delivery on the
// in-process transport.
func BenchmarkNetworkWaveSend(b *testing.B) {
	n := NewNetwork(netem.Loopback().NewModel(1))
	defer n.Close()
	ep0, err := n.Endpoint(0)
	if err != nil {
		b.Fatal(err)
	}
	ep1, err := n.Endpoint(1)
	if err != nil {
		b.Fatal(err)
	}
	wave := benchWaveEnv(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep0.Send(wave)
		if _, ok := <-ep1.Recv(); !ok {
			b.Fatal("ep1 recv closed")
		}
	}
}
