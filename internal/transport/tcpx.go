package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"gridrep/internal/wire"
)

// TCP is a Transport over real TCP connections with length-prefixed
// framing (uvarint length, then one encoded envelope). Replicas listen on
// well-known addresses from an address book; clients do not listen —
// replicas learn the return route for a client from the client's first
// inbound frame, mirroring how the paper's prototype replied over the
// client's own TCP connection.
type TCP struct {
	local wire.NodeID
	book  map[wire.NodeID]string // replica listen addresses
	ln    net.Listener
	recv  chan *wire.Envelope

	mu     sync.Mutex
	routes map[wire.NodeID]*tcpConn
	closed bool
	wg     sync.WaitGroup
}

// maxFrame bounds a single frame on the wire.
const maxFrame = wire.MaxBlob + (1 << 16)

type tcpConn struct {
	c  net.Conn
	w  *bufio.Writer
	mu sync.Mutex // serializes frame writes
}

func (tc *tcpConn) writeFrame(buf []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(buf)))
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if _, err := tc.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := tc.w.Write(buf); err != nil {
		return err
	}
	return tc.w.Flush()
}

// ListenTCP starts a listening transport for a replica. book maps every
// replica ID (including local) to its host:port listen address.
func ListenTCP(local wire.NodeID, book map[wire.NodeID]string) (*TCP, error) {
	addr, ok := book[local]
	if !ok {
		return nil, fmt.Errorf("transport: no address for local node %v", local)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := newTCP(local, book)
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// DialTCP starts a non-listening transport for a client. The client can
// send to any replica in the book; replicas reply over the connections the
// client opened.
func DialTCP(local wire.NodeID, book map[wire.NodeID]string) *TCP {
	return newTCP(local, book)
}

func newTCP(local wire.NodeID, book map[wire.NodeID]string) *TCP {
	b := make(map[wire.NodeID]string, len(book))
	for k, v := range book {
		b[k] = v
	}
	return &TCP{
		local:  local,
		book:   b,
		recv:   make(chan *wire.Envelope, 65536),
		routes: make(map[wire.NodeID]*tcpConn),
	}
}

var _ Transport = (*TCP)(nil)

// Local implements Transport.
func (t *TCP) Local() wire.NodeID { return t.local }

// Addr returns the actual listen address (useful with ":0" books in
// tests), or "" for non-listening transports.
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Send implements Transport. Connection setup and writes happen on the
// caller's goroutine; failures drop the message (best effort), leaving
// retransmission to the protocol layer.
func (t *TCP) Send(env *wire.Envelope) {
	env.From = t.local
	conn := t.route(env.To)
	if conn == nil {
		return
	}
	buf := wire.EncodeEnvelope(nil, env)
	if err := conn.writeFrame(buf); err != nil {
		t.dropRoute(env.To, conn)
	}
}

// Recv implements Transport.
func (t *TCP) Recv() <-chan *wire.Envelope { return t.recv }

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*tcpConn, 0, len(t.routes))
	for _, c := range t.routes {
		conns = append(conns, c)
	}
	t.routes = map[wire.NodeID]*tcpConn{}
	t.mu.Unlock()

	if t.ln != nil {
		t.ln.Close()
	}
	for _, c := range conns {
		c.c.Close()
	}
	t.wg.Wait()
	close(t.recv)
	return nil
}

// route returns a connection to peer, dialing if needed and possible.
func (t *TCP) route(peer wire.NodeID) *tcpConn {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	if c, ok := t.routes[peer]; ok {
		t.mu.Unlock()
		return c
	}
	addr, ok := t.book[peer]
	t.mu.Unlock()
	if !ok {
		return nil // unreachable peer (e.g. a client with no learned route)
	}

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil
	}
	conn := &tcpConn{c: nc, w: bufio.NewWriter(nc)}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		nc.Close()
		return nil
	}
	if existing, ok := t.routes[peer]; ok {
		// Lost the race with a concurrent dial or inbound accept.
		t.mu.Unlock()
		nc.Close()
		return existing
	}
	t.routes[peer] = conn
	t.wg.Add(1)
	t.mu.Unlock()
	go t.readLoop(conn)
	return conn
}

func (t *TCP) dropRoute(peer wire.NodeID, conn *tcpConn) {
	t.mu.Lock()
	if t.routes[peer] == conn {
		delete(t.routes, peer)
	}
	t.mu.Unlock()
	conn.c.Close()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		nc, err := t.ln.Accept()
		if err != nil {
			return
		}
		conn := &tcpConn{c: nc, w: bufio.NewWriter(nc)}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			nc.Close()
			return
		}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// readLoop reads frames from one connection, learning return routes from
// each envelope's From field.
func (t *TCP) readLoop(conn *tcpConn) {
	defer t.wg.Done()
	defer conn.c.Close()
	r := bufio.NewReader(conn.c)
	var learned []wire.NodeID
	defer func() {
		t.mu.Lock()
		for _, id := range learned {
			if t.routes[id] == conn {
				delete(t.routes, id)
			}
		}
		t.mu.Unlock()
	}()
	for {
		n, err := binary.ReadUvarint(r)
		if err != nil || n > maxFrame {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		env, err := wire.DecodeEnvelope(buf)
		if err != nil {
			return // corrupt peer; sever the connection
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		if _, ok := t.routes[env.From]; !ok {
			t.routes[env.From] = conn
			learned = append(learned, env.From)
		}
		t.mu.Unlock()
		select {
		case t.recv <- env:
		default: // backpressure overflow: drop
		}
	}
}
