package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridrep/internal/metrics"
	"gridrep/internal/wire"
)

// TCP is a Transport over real TCP connections with length-prefixed
// framing. Replicas listen on well-known addresses from an address book;
// clients do not listen — replicas learn the return route for a client
// from the client's first inbound frame, mirroring how the paper's
// prototype replied over the client's own TCP connection.
//
// Unlike the in-process Network, real links flap: the paper's prototype
// ran on PlanetLab-class networks where connections die and peers stall.
// Every outbound route to a peer in the address book is therefore owned
// by a connection supervisor: a goroutine with a bounded outbound queue
// that dials with exponential backoff plus jitter, applies a write
// deadline to every frame, sends transport-level ping frames while the
// link is idle, and declares the peer dead when pongs stop arriving
// (which catches blackholed links that writes alone never notice). Peer
// up/down transitions are reported through SetHealth so the Ω elector
// can react to real socket failures, not just missing heartbeats.
type TCP struct {
	local wire.NodeID
	opts  Options
	ln    net.Listener
	recv  chan *wire.Envelope
	stats counters
	// sink, when set (Sinker), replaces the recv channel: each
	// connection's decode goroutine calls it directly, so inbound
	// fan-in stays sharded by connection instead of funneling through
	// one consumer.
	sink atomic.Pointer[func(*wire.Envelope)]

	mu       sync.Mutex
	book     map[wire.NodeID]string
	sups     map[wire.NodeID]*supervisor
	inbound  map[wire.NodeID]*tcpConn // learned client return routes
	accepted map[*tcpConn]struct{}    // all live accept-side conns
	health   func(peer wire.NodeID, up bool)
	closed   bool
	wg       sync.WaitGroup
}

// Options tunes the self-healing behaviour of a TCP transport. The zero
// value selects production defaults; tests shrink the timings.
type Options struct {
	// QueueLen bounds each peer supervisor's outbound queue (default
	// 4096 envelopes). When the queue is full the oldest envelope is
	// dropped, never the newest — fresh protocol messages supersede
	// stale ones.
	QueueLen int
	// BackoffMin/BackoffMax bound the reconnect backoff (defaults 20ms
	// and 2s). Each failed dial doubles the delay up to BackoffMax, and
	// every sleep is jittered to avoid reconnection stampedes.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// WriteTimeout is the per-frame write deadline and dial timeout
	// (default 5s). A write that cannot complete within it severs the
	// connection and triggers a reconnect.
	WriteTimeout time.Duration
	// PingEvery is the transport heartbeat period on supervised
	// connections (default 500ms).
	PingEvery time.Duration
	// PingTimeout declares a peer dead when no pong (nor any other
	// frame) arrives for this long (default 4×PingEvery). This is what
	// detects blackholed links whose writes still succeed locally.
	PingTimeout time.Duration
	// RecvBuf bounds the receive channel (default 65536 envelopes,
	// matching the in-process Network). Overflow evicts the oldest
	// buffered envelope.
	RecvBuf int
}

func (o *Options) fillDefaults() {
	if o.QueueLen == 0 {
		o.QueueLen = 4096
	}
	if o.BackoffMin == 0 {
		o.BackoffMin = 20 * time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.PingEvery == 0 {
		o.PingEvery = 500 * time.Millisecond
	}
	if o.PingTimeout == 0 {
		o.PingTimeout = 4 * o.PingEvery
	}
	if o.RecvBuf == 0 {
		o.RecvBuf = 65536
	}
}

// Frame kinds on the wire: every frame is uvarint(len) | kind | payload.
// Envelope frames carry one encoded wire.Envelope; ping/pong frames carry
// an opaque 8-byte nonce echoed back by the receiver.
const (
	frameEnv  = 0x00
	framePing = 0x01
	framePong = 0x02
)

// maxFrame bounds a single frame on the wire.
const maxFrame = wire.MaxBlob + (1 << 16)

// counters aggregates transport events; read via Stats or, registered
// through RegisterMetrics, via the replica's metrics registry.
type counters struct {
	dials, dialFails, reconnects    metrics.Counter
	sent, recvd                     metrics.Counter
	pingsSent, pongsRecvd           metrics.Counter
	dropQueueFull, dropNoRoute      metrics.Counter
	dropWriteFail, dropRecvOverflow metrics.Counter
	dropReplyOverflow               metrics.Counter
	// dropReplyOverflow split by cause (its two addends): overflow while
	// writing gateway sheds (the edge is rejecting faster than the
	// socket drains — expected under overload, the shed must never block
	// the event loop) vs overflow on ordinary replies (a slow client not
	// reading its socket).
	dropReplyShed, dropReplySlow metrics.Counter
	lastRTT                      metrics.Gauge // nanoseconds
	// decodeLat times the off-loop decode stage per envelope frame
	// (created at transport construction, registered on demand — the
	// storage.File histogram pattern).
	decodeLat *metrics.Histogram
}

// Stats is a point-in-time snapshot of the transport's counters, the
// observability surface the TCP deployment logs and benchmarks sample.
type Stats struct {
	// Dials counts successful connection establishments; DialFails
	// counts failed attempts. Reconnects counts re-establishments after
	// a previously healthy link died.
	Dials, DialFails, Reconnects uint64
	// Sent and Recvd count envelope frames moved on the wire.
	Sent, Recvd uint64
	// PingsSent / PongsRecvd count transport heartbeats on supervised
	// links; LastRTT is the most recent measured ping round trip.
	PingsSent, PongsRecvd uint64
	LastRTT               time.Duration
	// Drops, by cause. DropsQueueFull: a supervisor queue overflowed
	// (oldest envelope discarded). DropsNoRoute: no address and no
	// learned return route. DropsWriteFail: a frame died with its
	// connection. DropsRecvOverflow: the receive buffer overflowed
	// (oldest envelope discarded). DropsReplyOverflow: an accept-side
	// reply writer's queue overflowed (oldest reply discarded); it is
	// split by cause into DropsReplyShed (the overflowing write was a
	// gateway StatusOverload shed — backpressure from the edge rejecting
	// faster than the client socket drains) and DropsReplySlowClient
	// (an ordinary reply to a client that stopped reading). The two
	// addends sum to DropsReplyOverflow.
	DropsQueueFull, DropsNoRoute, DropsWriteFail, DropsRecvOverflow uint64
	DropsReplyOverflow                                              uint64
	DropsReplyShed, DropsReplySlowClient                            uint64
	// QueueDepth is the current total of enqueued outbound envelopes
	// across all peer supervisors; ConnectedPeers counts supervised
	// links that are currently up.
	QueueDepth     int
	ConnectedPeers int
}

// Drops returns the total number of dropped envelopes, matching the
// accounting Network.Drops provides for the in-process transport.
func (s Stats) Drops() uint64 {
	return s.DropsQueueFull + s.DropsNoRoute + s.DropsWriteFail +
		s.DropsRecvOverflow + s.DropsReplyOverflow
}

type tcpConn struct {
	c  net.Conn
	w  *bufio.Writer
	wt time.Duration // per-frame write deadline
	mu sync.Mutex    // serializes frame writes

	// Accept-side reply writer (nil on supervisor connections): Send
	// enqueues encoded replies here and replyLoop writes them from a
	// dedicated goroutine, so a replica's event loop never blocks on a
	// slow client socket. wstop is closed by the connection's read loop
	// on the way out; queued buffers are drained back to the pool.
	wq    chan *[]byte
	wstop chan struct{}
}

func newTCPConn(nc net.Conn, wt time.Duration) *tcpConn {
	return &tcpConn{c: nc, w: bufio.NewWriter(nc), wt: wt}
}

// replyQueue bounds each accept-side connection's outbound reply queue.
const replyQueue = 4096

// enqueueReply hands an encoded reply (pooled buffer, ownership
// transfers) to the connection's writer goroutine, evicting the oldest
// queued reply when full — the supervisor-queue discipline. shed marks
// the incoming reply as a gateway StatusOverload shed; overflow drops
// are attributed to that cause (sheds flooding the queue) or to a slow
// client otherwise, on top of the total.
func (tc *tcpConn) enqueueReply(bp *[]byte, st *counters, shed bool) {
	drop := func() {
		st.dropReplyOverflow.Add(1)
		if shed {
			st.dropReplyShed.Add(1)
		} else {
			st.dropReplySlow.Add(1)
		}
	}
	select {
	case tc.wq <- bp:
		return
	default:
	}
	select {
	case old := <-tc.wq:
		wire.PutBuf(old)
		drop()
	default:
	}
	select {
	case tc.wq <- bp:
	default:
		drop()
		wire.PutBuf(bp)
	}
}

func (tc *tcpConn) writeFrame(kind byte, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)+1))
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.wt > 0 {
		tc.c.SetWriteDeadline(time.Now().Add(tc.wt))
	}
	if _, err := tc.w.Write(hdr[:n]); err != nil {
		return err
	}
	if err := tc.w.WriteByte(kind); err != nil {
		return err
	}
	if _, err := tc.w.Write(payload); err != nil {
		return err
	}
	return tc.w.Flush()
}

// ListenTCP starts a listening transport for a replica with default
// options. book maps every replica ID (including local) to its host:port
// listen address.
func ListenTCP(local wire.NodeID, book map[wire.NodeID]string) (*TCP, error) {
	return ListenTCPOpts(local, book, Options{})
}

// ListenTCPOpts is ListenTCP with explicit self-healing options.
func ListenTCPOpts(local wire.NodeID, book map[wire.NodeID]string, opts Options) (*TCP, error) {
	addr, ok := book[local]
	if !ok {
		return nil, fmt.Errorf("transport: no address for local node %v", local)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := newTCP(local, book, opts)
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// DialTCP starts a non-listening transport for a client with default
// options. The client can send to any replica in the book; replicas
// reply over the connections the client opened.
func DialTCP(local wire.NodeID, book map[wire.NodeID]string) *TCP {
	return DialTCPOpts(local, book, Options{})
}

// DialTCPOpts is DialTCP with explicit self-healing options.
func DialTCPOpts(local wire.NodeID, book map[wire.NodeID]string, opts Options) *TCP {
	return newTCP(local, book, opts)
}

func newTCP(local wire.NodeID, book map[wire.NodeID]string, opts Options) *TCP {
	opts.fillDefaults()
	b := make(map[wire.NodeID]string, len(book))
	for k, v := range book {
		b[k] = v
	}
	t := &TCP{
		local:    local,
		opts:     opts,
		book:     b,
		recv:     make(chan *wire.Envelope, opts.RecvBuf),
		sups:     make(map[wire.NodeID]*supervisor),
		inbound:  make(map[wire.NodeID]*tcpConn),
		accepted: make(map[*tcpConn]struct{}),
	}
	t.stats.decodeLat = metrics.NewHistogram(metrics.UnitNanoseconds)
	return t
}

var _ Transport = (*TCP)(nil)
var _ HealthReporter = (*TCP)(nil)
var _ Meter = (*TCP)(nil)
var _ Sinker = (*TCP)(nil)
var _ RTTReporter = (*TCP)(nil)

// PeerRTT implements RTTReporter: the smoothed ping round trip to peer
// from its supervisor's EWMA. Only supervised (book) peers have
// estimates, and only after the first pong; accept-side routes report
// no estimate.
func (t *TCP) PeerRTT(peer wire.NodeID) (time.Duration, bool) {
	t.mu.Lock()
	sup := t.sups[peer]
	t.mu.Unlock()
	if sup == nil {
		return 0, false
	}
	if v := sup.rtt.Load(); v > 0 {
		return time.Duration(v), true
	}
	return 0, false
}

// SetSink implements Sinker: inbound envelopes are handed to fn —
// possibly concurrently, one caller per live connection's decode stage —
// instead of the Recv channel. Set before traffic starts.
func (t *TCP) SetSink(fn func(*wire.Envelope)) { t.sink.Store(&fn) }

// Local implements Transport.
func (t *TCP) Local() wire.NodeID { return t.local }

// Addr returns the actual listen address (useful with ":0" books in
// tests), or "" for non-listening transports.
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// SetAddr updates (or adds) a peer's address in the book. Supervisors
// pick the new address up on their next dial attempt, which is how a
// deployment repoints a route at a restarted or migrated replica.
func (t *TCP) SetAddr(id wire.NodeID, addr string) {
	t.mu.Lock()
	t.book[id] = addr
	t.mu.Unlock()
}

// SetHealth implements HealthReporter: fn is invoked (from transport
// goroutines) with up=true when a supervised peer link is established and
// up=false when it dies. Register before traffic starts.
func (t *TCP) SetHealth(fn func(peer wire.NodeID, up bool)) {
	t.mu.Lock()
	t.health = fn
	t.mu.Unlock()
}

func (t *TCP) notifyHealth(peer wire.NodeID, up bool) {
	t.mu.Lock()
	fn, closed := t.health, t.closed
	t.mu.Unlock()
	if fn != nil && !closed {
		fn(peer, up)
	}
}

// Stats returns a snapshot of the transport counters.
func (t *TCP) Stats() Stats {
	s := Stats{
		Dials:                t.stats.dials.Load(),
		DialFails:            t.stats.dialFails.Load(),
		Reconnects:           t.stats.reconnects.Load(),
		Sent:                 t.stats.sent.Load(),
		Recvd:                t.stats.recvd.Load(),
		PingsSent:            t.stats.pingsSent.Load(),
		PongsRecvd:           t.stats.pongsRecvd.Load(),
		LastRTT:              time.Duration(t.stats.lastRTT.Load()),
		DropsQueueFull:       t.stats.dropQueueFull.Load(),
		DropsNoRoute:         t.stats.dropNoRoute.Load(),
		DropsWriteFail:       t.stats.dropWriteFail.Load(),
		DropsRecvOverflow:    t.stats.dropRecvOverflow.Load(),
		DropsReplyOverflow:   t.stats.dropReplyOverflow.Load(),
		DropsReplyShed:       t.stats.dropReplyShed.Load(),
		DropsReplySlowClient: t.stats.dropReplySlow.Load(),
	}
	t.mu.Lock()
	for _, sup := range t.sups {
		s.QueueDepth += len(sup.q)
		if sup.isUp() {
			s.ConnectedPeers++
		}
	}
	t.mu.Unlock()
	return s
}

// Drops implements Meter: total envelopes dropped so far, in parity with
// Network.Drops on the in-process transport.
func (t *TCP) Drops() uint64 { return t.Stats().Drops() }

// RegisterMetrics implements metrics.Instrumented: the replica that owns
// this transport publishes its instruments into the replica's registry.
// Queue depth and connected-peer count are computed on demand (they live
// in the supervisors), via gauge funcs.
func (t *TCP) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("gridrep_tcp_dials_total",
		"successful connection establishments", &t.stats.dials)
	reg.RegisterCounter("gridrep_tcp_dial_failures_total",
		"failed dial attempts", &t.stats.dialFails)
	reg.RegisterCounter("gridrep_tcp_reconnects_total",
		"re-establishments after a healthy link died", &t.stats.reconnects)
	reg.RegisterCounter("gridrep_tcp_sent_total",
		"envelope frames sent", &t.stats.sent)
	reg.RegisterCounter("gridrep_tcp_recvd_total",
		"envelope frames received", &t.stats.recvd)
	reg.RegisterCounter("gridrep_tcp_pings_sent_total",
		"transport heartbeat pings sent", &t.stats.pingsSent)
	reg.RegisterCounter("gridrep_tcp_pongs_recvd_total",
		"transport heartbeat pongs received", &t.stats.pongsRecvd)
	reg.RegisterCounter("gridrep_tcp_drop_queue_full_total",
		"envelopes dropped by supervisor queue overflow", &t.stats.dropQueueFull)
	reg.RegisterCounter("gridrep_tcp_drop_no_route_total",
		"envelopes dropped with no address and no learned route", &t.stats.dropNoRoute)
	reg.RegisterCounter("gridrep_tcp_drop_write_fail_total",
		"envelopes that died with their connection", &t.stats.dropWriteFail)
	reg.RegisterCounter("gridrep_tcp_drop_recv_overflow_total",
		"envelopes dropped by receive buffer overflow", &t.stats.dropRecvOverflow)
	reg.RegisterCounter("gridrep_tcp_drop_reply_overflow_total",
		"replies dropped by accept-side writer queue overflow", &t.stats.dropReplyOverflow)
	reg.RegisterCounter("gridrep_tcp_drop_reply_shed_total",
		"overflow-dropped replies that were gateway sheds (StatusOverload)", &t.stats.dropReplyShed)
	reg.RegisterCounter("gridrep_tcp_drop_reply_slow_client_total",
		"overflow-dropped replies lost to a client that stopped reading", &t.stats.dropReplySlow)
	reg.RegisterHistogram("gridrep_tcp_decode_seconds",
		"off-loop envelope decode latency per frame", t.stats.decodeLat)
	reg.RegisterGauge("gridrep_tcp_last_rtt_nanoseconds",
		"most recent measured ping round trip", &t.stats.lastRTT)
	reg.RegisterGaugeFunc("gridrep_tcp_rtt_ewma_max_nanoseconds",
		"largest smoothed per-peer ping RTT (EWMA, gain 1/8)",
		func() int64 {
			var max int64
			t.mu.Lock()
			for _, sup := range t.sups {
				if v := sup.rtt.Load(); v > max {
					max = v
				}
			}
			t.mu.Unlock()
			return max
		})
	reg.RegisterGaugeFunc("gridrep_tcp_queue_depth",
		"enqueued outbound envelopes across peer supervisors",
		func() int64 {
			var n int64
			t.mu.Lock()
			for _, sup := range t.sups {
				n += int64(len(sup.q))
			}
			t.mu.Unlock()
			return n
		})
	reg.RegisterGaugeFunc("gridrep_tcp_connected_peers",
		"supervised links currently up",
		func() int64 {
			var n int64
			t.mu.Lock()
			for _, sup := range t.sups {
				if sup.isUp() {
					n++
				}
			}
			t.mu.Unlock()
			return n
		})
}

// Send implements Transport. Envelopes to peers in the address book are
// handed to that peer's connection supervisor (started on first use) and
// written off the caller's goroutine; failures never block the caller.
// Replies to learned client routes are written inline, best effort.
//
// Encoding uses pooled buffers: the frame bytes live in a wire.GetBuf
// buffer that returns to the pool once written (or dropped), so a warm
// send path allocates nothing per envelope.
func (t *TCP) Send(env *wire.Envelope) {
	// Preserve a pre-stamped sender: gateway session muxes send with
	// logical session IDs on a shared connection (DESIGN.md §15), and the
	// accept side learns one reply route per session From it sees.
	if env.From == 0 {
		env.From = t.local
	}
	// Classify before encoding: reply-writer overflow drops are
	// attributed by whether the write was a gateway shed.
	shed := false
	if rm, ok := env.Msg.(*wire.ReplyMsg); ok {
		shed = rm.Rep.Status == wire.StatusOverload
	}
	bp := wire.GetBuf()
	*bp = wire.EncodeEnvelope((*bp)[:0], env)

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		wire.PutBuf(bp)
		return
	}
	if sup, ok := t.sups[env.To]; ok {
		t.mu.Unlock()
		sup.enqueue(bp)
		return
	}
	if _, inBook := t.book[env.To]; inBook {
		sup := t.startSupervisorLocked(env.To)
		t.mu.Unlock()
		sup.enqueue(bp)
		return
	}
	conn, ok := t.inbound[env.To]
	t.mu.Unlock()
	if !ok {
		t.stats.dropNoRoute.Add(1)
		wire.PutBuf(bp)
		return
	}
	if conn.wq != nil {
		// Learned client route: hand the reply to the connection's
		// writer goroutine so the caller (a replica's event loop, or a
		// parallel-read worker) never blocks on the client's socket.
		conn.enqueueReply(bp, &t.stats, shed)
		return
	}
	err := conn.writeFrame(frameEnv, *bp)
	wire.PutBuf(bp)
	if err != nil {
		t.stats.dropWriteFail.Add(1)
		t.dropInbound(env.To, conn)
		return
	}
	t.stats.sent.Add(1)
}

// Recv implements Transport.
func (t *TCP) Recv() <-chan *wire.Envelope { return t.recv }

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	sups := make([]*supervisor, 0, len(t.sups))
	for _, s := range t.sups {
		sups = append(sups, s)
	}
	conns := make([]*tcpConn, 0, len(t.accepted))
	for c := range t.accepted {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	if t.ln != nil {
		t.ln.Close()
	}
	for _, s := range sups {
		s.shutdown()
	}
	for _, c := range conns {
		c.c.Close()
	}
	t.wg.Wait()
	close(t.recv)
	return nil
}

func (t *TCP) addrOf(peer wire.NodeID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	addr, ok := t.book[peer]
	return addr, ok
}

// startSupervisorLocked creates and launches the supervisor owning the
// route to peer. Caller holds t.mu.
func (t *TCP) startSupervisorLocked(peer wire.NodeID) *supervisor {
	sup := &supervisor{
		t:    t,
		peer: peer,
		q:    make(chan *[]byte, t.opts.QueueLen),
		stop: make(chan struct{}),
	}
	t.sups[peer] = sup
	t.wg.Add(1)
	go sup.run()
	return sup
}

func (t *TCP) dropInbound(peer wire.NodeID, conn *tcpConn) {
	t.mu.Lock()
	if t.inbound[peer] == conn {
		delete(t.inbound, peer)
	}
	t.mu.Unlock()
	conn.c.Close()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		nc, err := t.ln.Accept()
		if err != nil {
			return
		}
		conn := newTCPConn(nc, t.opts.WriteTimeout)
		conn.wq = make(chan *[]byte, replyQueue)
		conn.wstop = make(chan struct{})
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			nc.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.wg.Add(2)
		t.mu.Unlock()
		go t.readLoop(conn, true, nil)
		go t.replyLoop(conn)
	}
}

// replyLoop writes one accept-side connection's queued replies. It
// lives until the connection's read loop closes wstop, then drains the
// queue back to the buffer pool. A write failure severs the connection
// (the read loop notices and tears the learned routes down); later
// queued frames fail fast on the closed socket.
func (t *TCP) replyLoop(conn *tcpConn) {
	defer t.wg.Done()
	for {
		select {
		case bp := <-conn.wq:
			err := conn.writeFrame(frameEnv, *bp)
			wire.PutBuf(bp)
			if err != nil {
				t.stats.dropWriteFail.Add(1)
				conn.c.Close()
				continue
			}
			t.stats.sent.Add(1)
		case <-conn.wstop:
			for {
				select {
				case bp := <-conn.wq:
					t.stats.dropWriteFail.Add(1)
					wire.PutBuf(bp)
				default:
					return
				}
			}
		}
	}
}

// deliver hands env to the sink when one is set (each decode goroutine
// calls it directly — sharded fan-in), else to the receive channel. On
// channel overflow the oldest buffered envelope is evicted in favour of
// the new one — fresh protocol messages supersede stale ones — and the
// drop is counted.
func (t *TCP) deliver(env *wire.Envelope) {
	if fn := t.sink.Load(); fn != nil {
		(*fn)(env)
		return
	}
	select {
	case t.recv <- env:
		return
	default:
	}
	select {
	case <-t.recv:
		t.stats.dropRecvOverflow.Add(1)
	default:
	}
	select {
	case t.recv <- env:
	default:
		// Lost the refill race; the new envelope is the casualty.
		t.stats.dropRecvOverflow.Add(1)
	}
}

// decodeBacklog bounds each connection's read-to-decode hand-off queue.
// A blocked send here is the same backpressure the old inline decode
// exerted: the socket read stalls until the decode stage catches up.
const decodeBacklog = 256

// readLoop reads frames from one connection and hands envelope payloads
// to the connection's decode stage (decodeLoop), keeping socket reads
// and envelope decoding on separate goroutines so N connections decode
// on N cores instead of serializing decode behind I/O. Ping/pong frames
// stay inline — they are latency-sensitive and byte-cheap. Accept-side
// route learning moves with the decode (it needs the envelope's From
// field); supervisor-side loops report pongs to their supervisor via
// the pong channel.
func (t *TCP) readLoop(conn *tcpConn, acceptSide bool, pong chan<- int64) {
	defer t.wg.Done()
	defer conn.c.Close()
	if acceptSide {
		defer func() {
			t.mu.Lock()
			delete(t.accepted, conn)
			t.mu.Unlock()
			close(conn.wstop) // release the reply writer
		}()
	}
	frames := make(chan []byte, decodeBacklog)
	t.wg.Add(1)
	go t.decodeLoop(conn, acceptSide, frames)
	defer close(frames)
	r := bufio.NewReader(conn.c)
	var scratch [16]byte // reused for ping/pong payloads: no alloc per heartbeat
	for {
		n, err := binary.ReadUvarint(r)
		if err != nil || n == 0 || n > maxFrame {
			return
		}
		kind, err := r.ReadByte()
		if err != nil {
			return
		}
		var payload []byte
		if kind != frameEnv && n-1 <= uint64(len(scratch)) {
			payload = scratch[:n-1]
		} else {
			// Envelope payloads get a fresh exact-size buffer because
			// DecodeEnvelopeOwned aliases it: ownership moves to the
			// decoded message, which the consumer may retain (the
			// acceptor keeps entry slices in its log).
			payload = make([]byte, n-1)
		}
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		switch kind {
		case framePing:
			if conn.writeFrame(framePong, payload) != nil {
				return
			}
		case framePong:
			if pong != nil && len(payload) == 8 {
				select {
				case pong <- int64(binary.BigEndian.Uint64(payload)):
				default:
				}
			}
		case frameEnv:
			// Ownership of the payload buffer transfers to the decode
			// stage (and from there into the decoded message — the PR 2
			// pooled-buffer contract is untouched because this buffer
			// was never pooled; it is the exact-size owned allocation).
			frames <- payload
		default:
			return // unknown frame kind; sever
		}
	}
}

// decodeLoop is one connection's decode stage: it turns owned frame
// payloads into envelopes, learns client return routes (accept side),
// and delivers. A corrupt frame severs the connection; the loop then
// keeps draining so the reader can never block on a dead stage. The
// learned-route cleanup lives here because only this goroutine ever
// appends to learned.
func (t *TCP) decodeLoop(conn *tcpConn, acceptSide bool, frames <-chan []byte) {
	defer t.wg.Done()
	var learned []wire.NodeID
	defer func() {
		t.mu.Lock()
		for _, id := range learned {
			if t.inbound[id] == conn {
				delete(t.inbound, id)
			}
		}
		t.mu.Unlock()
	}()
	dead := false
	for payload := range frames {
		if dead {
			continue
		}
		start := time.Now()
		env, err := wire.DecodeEnvelopeOwned(payload)
		if err != nil {
			// Corrupt peer: sever. The read loop exits on the closed
			// socket and closes frames; until then, drain.
			conn.c.Close()
			dead = true
			continue
		}
		t.stats.decodeLat.Since(start)
		t.stats.recvd.Add(1)
		if acceptSide {
			t.learn(env.From, conn, &learned)
		}
		t.deliver(env)
	}
}

func (t *TCP) learn(from wire.NodeID, conn *tcpConn, learned *[]wire.NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if _, inBook := t.book[from]; inBook {
		return // book peers have supervised outbound routes
	}
	if _, ok := t.inbound[from]; !ok {
		t.inbound[from] = conn
		*learned = append(*learned, from)
	}
}

// supervisor owns the outbound route to one peer: it dials with backoff,
// drains the bounded queue onto the connection, pings while idle, and
// reconnects whenever the link dies.
type supervisor struct {
	t    *TCP
	peer wire.NodeID
	q    chan *[]byte // pooled frame buffers; consumer returns them
	stop chan struct{}

	// rtt is the smoothed ping round trip to this peer in nanoseconds
	// (0 = no sample yet): a TCP-style EWMA with gain 1/8, so one jittery
	// tail sample moves the estimate an eighth of the way while the
	// placement logic reading it through PeerRTT sees a stable figure.
	rtt atomic.Int64

	mu   sync.Mutex
	conn *tcpConn // live connection, nil while down
	down bool     // stop flag, guarded by mu for shutdown idempotence
}

// noteRTT folds one ping round-trip sample into the peer's EWMA.
func (s *supervisor) noteRTT(sample int64) {
	cur := s.rtt.Load()
	if cur == 0 {
		s.rtt.Store(sample)
		return
	}
	s.rtt.Store(cur + (sample-cur)/8)
}

// enqueue adds an encoded envelope (in a pooled buffer whose ownership
// transfers to the queue) to the outbound queue, evicting the oldest
// queued envelope when full.
func (s *supervisor) enqueue(bp *[]byte) {
	select {
	case s.q <- bp:
		return
	default:
	}
	select {
	case old := <-s.q:
		wire.PutBuf(old)
		s.t.stats.dropQueueFull.Add(1)
	default:
	}
	select {
	case s.q <- bp:
	default:
		s.t.stats.dropQueueFull.Add(1)
		wire.PutBuf(bp)
	}
}

func (s *supervisor) isUp() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn != nil
}

func (s *supervisor) setConn(c *tcpConn) {
	s.mu.Lock()
	s.conn = c
	s.mu.Unlock()
}

// shutdown stops the supervisor and severs its connection.
func (s *supervisor) shutdown() {
	s.mu.Lock()
	if !s.down {
		s.down = true
		close(s.stop)
	}
	c := s.conn
	s.mu.Unlock()
	if c != nil {
		c.c.Close()
	}
}

// sleep waits for d or until shutdown; it reports false on shutdown.
func (s *supervisor) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-s.stop:
		return false
	}
}

// jitter spreads d uniformly over [d/2, d] so reconnecting peers do not
// stampede a restarted replica in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)/2+1))
}

// pumpResult says why a supervisor abandoned its connection.
type pumpResult int

const (
	pumpStopped  pumpResult = iota // transport closing
	pumpConnDead                   // write failed or reader saw EOF
	pumpStalled                    // no pong within PingTimeout (blackhole)
)

// run is the supervisor loop: dial (with backoff), pump, repeat.
//
// Health reporting is debounced so that transient connection resets do
// not destabilize leader election: a link that dies but redials
// successfully on the immediate next attempt never reports down. Down is
// reported only for end-to-end stalls (ping timeout — the blackhole
// case, where dials may even keep succeeding) and for links that stay
// broken (a failed dial), and is reported once per transition.
func (s *supervisor) run() {
	defer s.t.wg.Done()
	backoff := s.t.opts.BackoffMin
	everConnected := false
	up := false           // last health state reported
	reportedDown := false // so repeated dial failures report down once
	reportDown := func() {
		if up || !reportedDown {
			s.t.notifyHealth(s.peer, false)
			reportedDown = true
		}
		up = false
	}
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		addr, ok := s.t.addrOf(s.peer)
		if !ok {
			if !s.sleep(jitter(s.t.opts.BackoffMax)) {
				return
			}
			continue
		}
		nc, err := net.DialTimeout("tcp", addr, s.t.opts.WriteTimeout)
		if err != nil {
			s.t.stats.dialFails.Add(1)
			reportDown()
			if !s.sleep(jitter(backoff)) {
				return
			}
			if backoff *= 2; backoff > s.t.opts.BackoffMax {
				backoff = s.t.opts.BackoffMax
			}
			continue
		}
		s.t.stats.dials.Add(1)
		if everConnected {
			s.t.stats.reconnects.Add(1)
		}
		everConnected = true
		backoff = s.t.opts.BackoffMin

		conn := newTCPConn(nc, s.t.opts.WriteTimeout)
		s.setConn(conn)
		if !up {
			up = true
			s.t.notifyHealth(s.peer, true)
		}

		pong := make(chan int64, 4)
		readerDone := make(chan struct{})
		s.t.wg.Add(1)
		go func() {
			defer close(readerDone)
			s.t.readLoop(conn, false, pong)
		}()

		res := s.pump(conn, readerDone, pong)

		s.setConn(nil)
		conn.c.Close()
		<-readerDone
		switch res {
		case pumpStopped:
			return
		case pumpStalled:
			// The peer is unreachable end to end even though the
			// socket looked healthy; tell Ω now rather than after a
			// failed redial (dials through a blackhole still succeed).
			reportDown()
		case pumpConnDead:
			// Plain connection death: redial immediately; health only
			// turns down if the redial fails.
		}
		if !s.sleep(jitter(s.t.opts.BackoffMin)) {
			return
		}
	}
}

// pump drains the queue onto conn and keeps the link verified with
// pings. It returns when the connection must be abandoned: a write
// failed, the reader saw EOF, or the peer stopped answering pings.
func (s *supervisor) pump(conn *tcpConn, readerDone <-chan struct{}, pong <-chan int64) pumpResult {
	ping := time.NewTicker(s.t.opts.PingEvery)
	defer ping.Stop()
	lastHeard := time.Now()
	for {
		select {
		case <-s.stop:
			return pumpStopped
		case <-readerDone:
			return pumpConnDead
		case sentAt := <-pong:
			lastHeard = time.Now()
			s.t.stats.pongsRecvd.Add(1)
			if rtt := time.Now().UnixNano() - sentAt; rtt > 0 {
				s.t.stats.lastRTT.Set(rtt)
				s.noteRTT(rtt)
			}
		case bp := <-s.q:
			err := conn.writeFrame(frameEnv, *bp)
			wire.PutBuf(bp)
			if err != nil {
				s.t.stats.dropWriteFail.Add(1)
				return pumpConnDead
			}
			s.t.stats.sent.Add(1)
		case <-ping.C:
			if time.Since(lastHeard) > s.t.opts.PingTimeout {
				return pumpStalled // peer stalled or link blackholed
			}
			var p [8]byte
			binary.BigEndian.PutUint64(p[:], uint64(time.Now().UnixNano()))
			if err := conn.writeFrame(framePing, p[:]); err != nil {
				return pumpConnDead
			}
			s.t.stats.pingsSent.Add(1)
		}
	}
}
