package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gridrep/internal/wire"
)

// fakeUnder is a scriptable underlying Transport for mux tests.
type fakeUnder struct {
	recv chan *wire.Envelope

	mu     sync.Mutex
	sent   []*wire.Envelope
	health func(peer wire.NodeID, up bool)
	closed bool
}

func newFakeUnder() *fakeUnder {
	return &fakeUnder{recv: make(chan *wire.Envelope, 64)}
}

func (f *fakeUnder) Local() wire.NodeID { return 0 }
func (f *fakeUnder) Send(env *wire.Envelope) {
	f.mu.Lock()
	f.sent = append(f.sent, env)
	f.mu.Unlock()
}
func (f *fakeUnder) Recv() <-chan *wire.Envelope { return f.recv }
func (f *fakeUnder) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.closed {
		f.closed = true
		close(f.recv)
	}
	return nil
}
func (f *fakeUnder) Drops() uint64 { return 0 }
func (f *fakeUnder) SetHealth(fn func(peer wire.NodeID, up bool)) {
	f.mu.Lock()
	f.health = fn
	f.mu.Unlock()
}

func (f *fakeUnder) sentEnvs() []*wire.Envelope {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*wire.Envelope(nil), f.sent...)
}

func muxRecvOne(t *testing.T, tr Transport) *wire.Envelope {
	t.Helper()
	select {
	case env := <-tr.Recv():
		return env
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for envelope")
		return nil
	}
}

// TestGroupMuxDispatchByGroup: inbound peer traffic lands on the
// endpoint named by its group stamp; out-of-range groups are dropped,
// not delivered or panicked on.
func TestGroupMuxDispatchByGroup(t *testing.T) {
	under := newFakeUnder()
	m := NewGroupMux(under, 3, nil)
	defer m.Close()

	for g := uint32(0); g < 3; g++ {
		under.recv <- &wire.Envelope{From: 1, Group: g, Msg: &wire.Heartbeat{From: 1, Epoch: uint64(g)}}
	}
	for g := 0; g < 3; g++ {
		env := muxRecvOne(t, m.Group(g))
		if env.Group != uint32(g) || env.Msg.(*wire.Heartbeat).Epoch != uint64(g) {
			t.Fatalf("group %d got %+v", g, env)
		}
	}

	// Unknown group: dropped and counted.
	under.recv <- &wire.Envelope{From: 1, Group: 9, Msg: &wire.Heartbeat{From: 1}}
	deadline := time.Now().Add(2 * time.Second)
	for m.Drops() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("out-of-range group never counted as drop")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupMuxSendStampsGroup: outbound envelopes from group g's
// endpoint carry Group == g on the shared link.
func TestGroupMuxSendStampsGroup(t *testing.T) {
	under := newFakeUnder()
	m := NewGroupMux(under, 4, nil)
	defer m.Close()

	m.Group(2).Send(&wire.Envelope{To: 1, Msg: &wire.Heartbeat{From: 0}})
	sent := under.sentEnvs()
	if len(sent) != 1 || sent[0].Group != 2 {
		t.Fatalf("sent = %+v, want one envelope stamped group 2", sent)
	}
}

// TestGroupMuxRoutesClientRequests: unstamped client requests go through
// the route callback; a routing error is answered with StatusCrossGroup
// directly by the mux, reaching no group.
func TestGroupMuxRoutesClientRequests(t *testing.T) {
	under := newFakeUnder()
	routeErr := errors.New("txn spans groups")
	m := NewGroupMux(under, 2, func(req *wire.Request) (uint32, error) {
		if req.Txn != 0 {
			return 0, routeErr
		}
		return 1, nil
	})
	defer m.Close()

	// Routable request: lands on group 1 despite arriving with group 0.
	under.recv <- &wire.Envelope{From: wire.ClientIDBase, Msg: &wire.RequestMsg{
		Req: wire.Request{Client: wire.ClientIDBase, Seq: 7, Kind: wire.KindWrite, Op: []byte("put k v")}}}
	env := muxRecvOne(t, m.Group(1))
	if env.Msg.(*wire.RequestMsg).Req.Seq != 7 {
		t.Fatalf("group 1 got %+v", env)
	}

	// Unroutable request: refused with StatusCrossGroup on the wire.
	under.recv <- &wire.Envelope{From: wire.ClientIDBase, Msg: &wire.RequestMsg{
		Req: wire.Request{Client: wire.ClientIDBase, Seq: 8, Kind: wire.KindTxnOp, Txn: 3, Op: []byte("put q v")}}}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if sent := under.sentEnvs(); len(sent) > 0 {
			rep := sent[0].Msg.(*wire.ReplyMsg).Rep
			if rep.Status != wire.StatusCrossGroup || rep.Seq != 8 || rep.Client != wire.ClientIDBase {
				t.Fatalf("refusal reply = %+v", rep)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cross-group refusal sent")
		}
		time.Sleep(time.Millisecond)
	}
	if m.CrossGroupRefusals() != 1 {
		t.Fatalf("CrossGroupRefusals = %d, want 1", m.CrossGroupRefusals())
	}
	select {
	case env := <-m.Group(0).Recv():
		t.Fatalf("refused request leaked to group 0: %+v", env)
	default:
	}
}

// TestGroupMuxHealthFanOut: one shared-link health event reaches every
// subscribed group.
func TestGroupMuxHealthFanOut(t *testing.T) {
	under := newFakeUnder()
	m := NewGroupMux(under, 3, nil)
	defer m.Close()

	var mu sync.Mutex
	events := map[int][]bool{}
	for g := 0; g < 3; g++ {
		g := g
		m.Group(g).(HealthReporter).SetHealth(func(peer wire.NodeID, up bool) {
			mu.Lock()
			events[g] = append(events[g], up)
			mu.Unlock()
		})
	}
	under.mu.Lock()
	fn := under.health
	under.mu.Unlock()
	if fn == nil {
		t.Fatal("mux never subscribed to the shared link's health")
	}
	fn(2, false)
	mu.Lock()
	defer mu.Unlock()
	for g := 0; g < 3; g++ {
		if len(events[g]) != 1 || events[g][0] != false {
			t.Fatalf("group %d events = %v, want one down event", g, events[g])
		}
	}
}

// TestGroupMuxDetachIsolation: closing one group's endpoint (a replica
// Stop) leaves siblings running; traffic for the dead group is counted
// as dropped without panicking the pump.
func TestGroupMuxDetachIsolation(t *testing.T) {
	under := newFakeUnder()
	m := NewGroupMux(under, 2, nil)
	defer m.Close()

	m.Group(0).Close()
	under.recv <- &wire.Envelope{From: 1, Group: 0, Msg: &wire.Heartbeat{From: 1}}
	under.recv <- &wire.Envelope{From: 1, Group: 1, Msg: &wire.Heartbeat{From: 1, Epoch: 5}}
	if env := muxRecvOne(t, m.Group(1)); env.Msg.(*wire.Heartbeat).Epoch != 5 {
		t.Fatalf("sibling group got %+v", env)
	}
	if m.Drops() == 0 {
		t.Fatal("delivery to detached group not counted as drop")
	}
	// Double close is safe.
	m.Group(0).Close()
}

// TestGroupMuxCloseClosesUnder: Close tears down every group channel and
// the shared transport exactly once.
func TestGroupMuxCloseClosesUnder(t *testing.T) {
	under := newFakeUnder()
	m := NewGroupMux(under, 2, nil)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	under.mu.Lock()
	closed := under.closed
	under.mu.Unlock()
	if !closed {
		t.Fatal("underlying transport not closed")
	}
	for g := 0; g < 2; g++ {
		if _, ok := <-m.Group(g).Recv(); ok {
			t.Fatalf("group %d channel still open", g)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}
