package transport

import (
	"testing"
	"time"

	"gridrep/internal/netem"
	"gridrep/internal/wire"
)

func newTestNet(t *testing.T, profile netem.Profile) *Network {
	t.Helper()
	n := NewNetwork(profile.NewModel(1))
	t.Cleanup(func() { n.Close() })
	return n
}

func hb(from wire.NodeID, epoch uint64) *wire.Envelope {
	return &wire.Envelope{Msg: &wire.Heartbeat{From: from, Epoch: epoch}}
}

func recvOne(t *testing.T, ep *Endpoint, within time.Duration) *wire.Envelope {
	t.Helper()
	select {
	case env, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return env
	case <-time.After(within):
		t.Fatal("timed out waiting for delivery")
		return nil
	}
}

func TestChanxDelivers(t *testing.T) {
	n := newTestNet(t, netem.Loopback())
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	env := hb(0, 42)
	env.To = 1
	a.Send(env)
	got := recvOne(t, b, time.Second)
	if got.From != 0 || got.To != 1 {
		t.Errorf("header = %v->%v, want 0->1", got.From, got.To)
	}
	m, ok := got.Msg.(*wire.Heartbeat)
	if !ok || m.Epoch != 42 {
		t.Errorf("payload = %#v, want heartbeat epoch 42", got.Msg)
	}
}

func TestChanxNoAliasing(t *testing.T) {
	n := newTestNet(t, netem.Loopback())
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	req := &wire.RequestMsg{Req: wire.Request{Client: wire.ClientIDBase, Seq: 1, Op: []byte("abc")}}
	a.Send(&wire.Envelope{To: 1, Msg: req})
	req.Req.Op[0] = 'X' // mutate after send; receiver must see the original
	got := recvOne(t, b, time.Second).Msg.(*wire.RequestMsg)
	if string(got.Req.Op) != "abc" {
		t.Errorf("received op %q shares memory with sender", got.Req.Op)
	}
}

func TestChanxLatency(t *testing.T) {
	model := netem.NewModel(1, nil)
	model.SetLinkSym(netem.ClassReplica, netem.ClassReplica,
		netem.Latency{Base: 30 * time.Millisecond})
	n := NewNetwork(model)
	defer n.Close()
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	start := time.Now()
	env := hb(0, 1)
	env.To = 1
	a.Send(env)
	recvOne(t, b, time.Second)
	elapsed := time.Since(start)
	if elapsed < 30*time.Millisecond {
		t.Errorf("delivered in %v, before the 30ms link latency", elapsed)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("delivered in %v, far beyond the 30ms link latency", elapsed)
	}
}

func TestChanxFIFOPerLink(t *testing.T) {
	// Heavy jitter would reorder messages without the FIFO floor.
	model := netem.NewModel(1, nil)
	model.SetLinkSym(netem.ClassReplica, netem.ClassReplica,
		netem.Latency{Base: time.Millisecond, Jitter: 20 * time.Millisecond})
	n := NewNetwork(model)
	defer n.Close()
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	const k = 50
	for i := 0; i < k; i++ {
		env := hb(0, uint64(i))
		env.To = 1
		a.Send(env)
	}
	for i := 0; i < k; i++ {
		got := recvOne(t, b, 2*time.Second).Msg.(*wire.Heartbeat)
		if got.Epoch != uint64(i) {
			t.Fatalf("message %d arrived out of order (epoch %d)", i, got.Epoch)
		}
	}
}

func TestChanxCrashDrops(t *testing.T) {
	n := newTestNet(t, netem.Loopback())
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	n.Model().SetDown(1, true)
	env := hb(0, 1)
	env.To = 1
	a.Send(env)
	select {
	case <-b.Recv():
		t.Fatal("crashed node received a message")
	case <-time.After(20 * time.Millisecond):
	}
	if n.Drops() == 0 {
		t.Error("drop not counted")
	}
	n.Model().SetDown(1, false)
	env2 := hb(0, 2)
	env2.To = 1
	a.Send(env2)
	recvOne(t, b, time.Second)
}

func TestChanxUnknownDestination(t *testing.T) {
	n := newTestNet(t, netem.Loopback())
	a, _ := n.Endpoint(0)
	env := hb(0, 1)
	env.To = 99 // never registered
	a.Send(env) // must not panic
	if n.Drops() == 0 {
		t.Error("message to unknown destination not counted as dropped")
	}
}

func TestChanxCloseEndpoint(t *testing.T) {
	n := newTestNet(t, netem.Loopback())
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	b.Close()
	if _, ok := <-b.Recv(); ok {
		t.Fatal("recv channel must be closed")
	}
	env := hb(0, 1)
	env.To = 1
	a.Send(env) // must not panic or block
	time.Sleep(10 * time.Millisecond)
}

func TestChanxCloseNetwork(t *testing.T) {
	n := NewNetwork(netem.Loopback().NewModel(1))
	a, _ := n.Endpoint(0)
	n.Close()
	if _, ok := <-a.Recv(); ok {
		t.Fatal("recv channel must be closed after network close")
	}
	if _, err := n.Endpoint(2); err == nil {
		t.Fatal("Endpoint after Close must fail")
	}
	n.Close() // idempotent
}

func TestChanxEndpointIdempotent(t *testing.T) {
	n := newTestNet(t, netem.Loopback())
	a1, _ := n.Endpoint(0)
	a2, _ := n.Endpoint(0)
	if a1 != a2 {
		t.Fatal("Endpoint must return the same instance per ID")
	}
}

func TestChanxTracer(t *testing.T) {
	n := newTestNet(t, netem.Loopback())
	seen := make(chan wire.MsgType, 4)
	n.SetTracer(func(_ time.Time, env *wire.Envelope) { seen <- env.Msg.Type() })
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	env := hb(0, 1)
	env.To = 1
	a.Send(env)
	recvOne(t, b, time.Second)
	select {
	case ty := <-seen:
		if ty != wire.MsgHeartbeat {
			t.Errorf("traced %v, want heartbeat", ty)
		}
	case <-time.After(time.Second):
		t.Fatal("tracer not invoked")
	}
}

func TestBroadcastHelper(t *testing.T) {
	n := newTestNet(t, netem.Loopback())
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	c, _ := n.Endpoint(2)
	Broadcast(a, []wire.NodeID{1, 2}, &wire.Heartbeat{From: 0, Epoch: 5})
	for _, ep := range []*Endpoint{b, c} {
		got := recvOne(t, ep, time.Second)
		if got.Msg.(*wire.Heartbeat).Epoch != 5 {
			t.Errorf("broadcast payload lost")
		}
	}
}

func TestChanxManyMessagesThroughput(t *testing.T) {
	n := newTestNet(t, netem.Loopback())
	a, _ := n.Endpoint(0)
	b, _ := n.Endpoint(1)
	const k = 5000
	go func() {
		for i := 0; i < k; i++ {
			env := hb(0, uint64(i))
			env.To = 1
			a.Send(env)
		}
	}()
	for i := 0; i < k; i++ {
		recvOne(t, b, 5*time.Second)
	}
}
