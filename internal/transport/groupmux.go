package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"gridrep/internal/wire"
)

// GroupMux multiplexes N independent consensus groups over one physical
// Transport (DESIGN.md §13). Each group's replica core gets its own
// virtual Transport whose outbound envelopes are stamped with the group
// id and whose inbound channel receives exactly the traffic for that
// group. Clients stay group-unaware: their Request envelopes arrive
// with group 0, and the mux routes them by key hash (the Route
// callback); replies go back over the shared link from whichever group
// handled the request.
//
// Lifecycle: the mux owns the pump goroutine but NOT the underlying
// transport — closing a group endpoint (a replica's Stop path) detaches
// only that group, and Close tears down the pump plus every group
// channel and then closes the underlying transport. The underlying
// transport deliberately stays un-probed for metrics.Instrumented
// through the group endpoints: it is shared, so the process owner
// registers it once on the root registry instead of once per group.
type GroupMux struct {
	under Transport
	// route maps a client request to its consensus group; an error means
	// the request is unroutable (cross-group transaction) and the mux
	// replies wire.StatusCrossGroup on the caller's behalf.
	route func(*wire.Request) (uint32, error)
	// routeMu serializes route calls: with a Sinker underneath, dispatch
	// runs concurrently from per-connection decode goroutines, and the
	// shard router keeps single-goroutine transaction-pinning state.
	routeMu sync.Mutex
	eps     []*groupEndpoint

	healthMu sync.Mutex
	healthFn []func(wire.NodeID, bool)

	drops     atomic.Uint64 // envelopes for unknown or closed groups
	crossGrp  atomic.Uint64 // requests refused as cross-group
	closeOnce sync.Once
	pumpDone  chan struct{}
}

// NewGroupMux wraps under with an n-group multiplexer. route decides
// the group for every inbound client request (see Route semantics in
// internal/shard); the mux serializes calls to it. When the underlying
// transport implements Sinker, inbound envelopes dispatch to group
// queues directly from the transport's per-connection goroutines —
// fan-in stays sharded by connection and no pump goroutine exists
// (DESIGN.md §14); otherwise a pump drains under.Recv, the legacy path.
func NewGroupMux(under Transport, n int, route func(*wire.Request) (uint32, error)) *GroupMux {
	m := &GroupMux{
		under:    under,
		route:    route,
		eps:      make([]*groupEndpoint, n),
		pumpDone: make(chan struct{}),
	}
	for g := range m.eps {
		m.eps[g] = &groupEndpoint{
			mux:   m,
			group: uint32(g),
			recv:  make(chan *wire.Envelope, groupRecvBuf),
		}
	}
	if hr, ok := under.(HealthReporter); ok {
		hr.SetHealth(m.fanOutHealth)
	}
	if sk, ok := under.(Sinker); ok {
		sk.SetSink(m.dispatch)
		close(m.pumpDone) // no pump to wait for
	} else {
		go m.pump()
	}
	return m
}

// groupRecvBuf mirrors the underlying transports' per-endpoint buffers:
// the consumer is one event loop per group, and overflow counts as a
// drop exactly like a network loss (the protocol retries).
const groupRecvBuf = 65536

// Group returns group g's virtual transport.
func (m *GroupMux) Group(g int) Transport { return m.eps[g] }

// Drops counts envelopes the mux itself discarded (closed or unknown
// group, full group buffer), excluding the underlying transport's own
// drops — group endpoints add those in.
func (m *GroupMux) Drops() uint64 { return m.drops.Load() }

// CrossGroupRefusals counts client requests refused with
// wire.StatusCrossGroup.
func (m *GroupMux) CrossGroupRefusals() uint64 { return m.crossGrp.Load() }

// Close detaches every group, stops the pump, and closes the underlying
// transport.
func (m *GroupMux) Close() error {
	var err error
	m.closeOnce.Do(func() {
		for _, ep := range m.eps {
			ep.detach()
		}
		err = m.under.Close() // closes under.Recv, which stops the pump
		<-m.pumpDone
	})
	return err
}

// fanOutHealth relays link-health events to every group's subscriber:
// one socket serves all groups, so one socket death is N group events.
func (m *GroupMux) fanOutHealth(peer wire.NodeID, up bool) {
	m.healthMu.Lock()
	fns := make([]func(wire.NodeID, bool), len(m.healthFn))
	copy(fns, m.healthFn)
	m.healthMu.Unlock()
	for _, fn := range fns {
		fn(peer, up)
	}
}

// pump dispatches inbound envelopes to group channels on transports
// without a Sinker.
func (m *GroupMux) pump() {
	defer close(m.pumpDone)
	for env := range m.under.Recv() {
		m.dispatch(env)
	}
}

// dispatch routes one inbound envelope to its group's queue. Safe for
// concurrent callers (the sink path runs it from every connection's
// decode goroutine): routing is serialized by routeMu, and group
// delivery is mutex-guarded per endpoint.
func (m *GroupMux) dispatch(env *wire.Envelope) {
	g := env.Group
	if rm, ok := env.Msg.(*wire.RequestMsg); ok && m.route != nil {
		// Client traffic arrives unstamped (clients are
		// group-unaware); route it by key hash. Peer traffic is
		// never MsgRequest.
		m.routeMu.Lock()
		rg, err := m.route(&rm.Req)
		m.routeMu.Unlock()
		if err != nil {
			m.crossGrp.Add(1)
			m.under.Send(&wire.Envelope{
				To: env.From,
				Msg: &wire.ReplyMsg{Rep: wire.Reply{
					Client: rm.Req.Client,
					Seq:    rm.Req.Seq,
					Status: wire.StatusCrossGroup,
					Err:    err.Error(),
				}},
			})
			return
		}
		g = rg
	}
	if int(g) >= len(m.eps) {
		m.drops.Add(1)
		return
	}
	m.eps[g].deliver(env)
}

// groupEndpoint is one group's virtual Transport.
type groupEndpoint struct {
	mux   *GroupMux
	group uint32
	// mu orders deliver against detach: a replica's Stop may close the
	// group channel while the pump is mid-delivery, and an unguarded
	// close would panic the send.
	mu     sync.Mutex
	recv   chan *wire.Envelope
	drops  atomic.Uint64
	closed bool
}

var (
	_ Transport      = (*groupEndpoint)(nil)
	_ Meter          = (*groupEndpoint)(nil)
	_ HealthReporter = (*groupEndpoint)(nil)
	_ RTTReporter    = (*groupEndpoint)(nil)
)

func (ep *groupEndpoint) Local() wire.NodeID { return ep.mux.under.Local() }

// Send stamps the group id and forwards over the shared link. Replies
// to clients keep the stamp too — clients ignore it, and symmetric
// stamping keeps the invariant "group g only ever parses traffic it
// sent or that hashes to it".
func (ep *groupEndpoint) Send(env *wire.Envelope) {
	env.Group = ep.group
	ep.mux.under.Send(env)
}

func (ep *groupEndpoint) Recv() <-chan *wire.Envelope { return ep.recv }

// Close detaches this group only; the shared transport stays up for the
// other groups (a group replica's Stop must not sever its siblings).
func (ep *groupEndpoint) Close() error {
	ep.detach()
	return nil
}

func (ep *groupEndpoint) detach() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if !ep.closed {
		ep.closed = true
		close(ep.recv)
	}
}

// deliver hands an envelope to the group's event loop without ever
// blocking the pump: a full or closed group counts the envelope as
// dropped, and the protocol's retransmissions recover — the same
// contract as the underlying transports' receive buffers.
func (ep *groupEndpoint) deliver(env *wire.Envelope) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		ep.mux.drops.Add(1)
		return
	}
	select {
	case ep.recv <- env:
	default:
		ep.drops.Add(1)
	}
}

// Drops implements Meter: this group's overflow drops plus its share of
// the shared link's accounting (reported in full to each group; the
// figures are diagnostic, not additive across groups).
func (ep *groupEndpoint) Drops() uint64 {
	d := ep.drops.Load()
	if mt, ok := ep.mux.under.(Meter); ok {
		d += mt.Drops()
	}
	return d
}

// PeerRTT implements RTTReporter by delegating to the shared link: all
// groups ride one socket per peer, so they share one RTT estimate.
func (ep *groupEndpoint) PeerRTT(peer wire.NodeID) (time.Duration, bool) {
	if rr, ok := ep.mux.under.(RTTReporter); ok {
		return rr.PeerRTT(peer)
	}
	return 0, false
}

// SetHealth implements HealthReporter by subscribing this group to the
// shared link's health events.
func (ep *groupEndpoint) SetHealth(fn func(peer wire.NodeID, up bool)) {
	ep.mux.healthMu.Lock()
	ep.mux.healthFn = append(ep.mux.healthFn, fn)
	ep.mux.healthMu.Unlock()
}
