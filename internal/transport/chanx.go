package transport

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gridrep/internal/netem"
	"gridrep/internal/wire"
)

// Network is an in-process message fabric. Every Send is encoded with the
// wire codec, assigned a delivery time by the netem.Model, and decoded
// again at delivery — so the full marshaling path is exercised and no
// memory is ever shared between sender and receiver.
//
// Delivery per (src, dst) pair is FIFO, modelling the TCP connections the
// paper used: a message never overtakes an earlier message on the same
// link, even when the latency model samples a smaller delay for it.
type Network struct {
	model *netem.Model

	mu         sync.Mutex
	endpoints  map[wire.NodeID]*Endpoint
	queue      deliveryHeap
	lastAt     map[[2]wire.NodeID]time.Time // FIFO floor per directed link
	floorSwept time.Time                    // last lastAt purge (see run)
	seq        uint64
	wake       chan struct{}
	closed     bool

	// tracer, if set, observes every delivered message (for the
	// space-time diagrams of Figures 1-4). Guarded by mu — the delivery
	// loop starts before SetTracer can run.
	tracer func(at time.Time, env *wire.Envelope)

	// drops counts messages dropped by the model (loss, partitions,
	// crashed nodes) or by full receiver buffers; read via Drops.
	drops atomic.Uint64
}

// ErrClosed is returned by operations on a closed network or endpoint.
var ErrClosed = errors.New("transport: closed")

type delivery struct {
	at   time.Time
	seq  uint64 // tiebreaker: preserves enqueue order at equal times
	env  *wire.Envelope
	dest *Endpoint
}

type deliveryHeap []delivery

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h deliveryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x interface{}) { *h = append(*h, x.(delivery)) }
func (h *deliveryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	d := old[n-1]
	old[n-1].env = nil
	*h = old[:n-1]
	return d
}

// NewNetwork creates a fabric whose delivery delays come from model.
func NewNetwork(model *netem.Model) *Network {
	n := &Network{
		model:     model,
		endpoints: make(map[wire.NodeID]*Endpoint),
		lastAt:    make(map[[2]wire.NodeID]time.Time),
		wake:      make(chan struct{}, 1),
	}
	go n.run()
	return n
}

// Model returns the underlying network model (for failure injection).
func (n *Network) Model() *netem.Model { return n.model }

// SetTracer installs an observer for every delivered message (the
// space-time diagrams of Figures 1-4). Call before traffic starts;
// delivery order relative to in-flight messages is unspecified.
func (n *Network) SetTracer(fn func(at time.Time, env *wire.Envelope)) {
	n.mu.Lock()
	n.tracer = fn
	n.mu.Unlock()
}

// Receive buffer depths by endpoint class. Replicas absorb bursts from
// every client and peer at once, so they get a deep buffer. Client and
// session endpoints each carry a handful of outstanding requests; giving
// them the replica-sized buffer too (64k slots ≈ 512KB, zeroed at
// make) turns a gateway-scale session fleet into gigabytes of channel
// backing array and sustained GC pressure — measured as a cliff from
// ~2ms to ~40ms per op once a few thousand sessions were live.
const (
	replicaRecvBuf = 65536
	clientRecvBuf  = 1024
)

// Endpoint registers (or returns the existing) endpoint for id. A closed
// endpoint is replaced with a fresh one, which is how a recovered process
// rejoins the network. Overflowing the receive buffer drops messages,
// which the asynchronous system model permits.
func (n *Network) Endpoint(id wire.NodeID) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if ep, ok := n.endpoints[id]; ok && !ep.isClosed() {
		return ep, nil
	}
	buf := replicaRecvBuf
	if id >= wire.ClientIDBase {
		buf = clientRecvBuf
	}
	ep := &Endpoint{
		id:   id,
		net:  n,
		recv: make(chan *wire.Envelope, buf),
	}
	n.endpoints[id] = ep
	return ep, nil
}

// Drops returns the number of messages dropped so far.
func (n *Network) Drops() uint64 { return n.drops.Load() }

// Close shuts the fabric down and closes every endpoint's Recv channel.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.queue = nil
	n.mu.Unlock()
	n.kick()
	for _, ep := range eps {
		ep.closeRecv()
	}
	return nil
}

func (n *Network) kick() {
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

func (n *Network) send(from wire.NodeID, env *wire.Envelope) {
	// Stamp the sender only when the caller left it blank: a gateway
	// session mux (internal/gateway) pre-stamps logical session IDs so
	// many sessions share one endpoint, and those must survive. The
	// fault model still keys on the physical endpoint.
	if env.From == 0 {
		env.From = from
	}
	delay, ok := n.model.Decide(from, env.To)
	if !ok {
		n.drops.Add(1)
		return
	}
	// Round-trip through the codec: realistic cost, and the receiver
	// never aliases the sender's message. Encoding reuses a pooled
	// buffer; the decode side gets its own exact-size copy whose
	// ownership transfers to the delivered envelope, mirroring how the
	// TCP read loop hands each frame an owned payload.
	bp := wire.GetBuf()
	*bp = wire.EncodeEnvelope((*bp)[:0], env)
	owned := make([]byte, len(*bp))
	copy(owned, *bp)
	wire.PutBuf(bp)
	copyEnv, err := wire.DecodeEnvelopeOwned(owned)
	if err != nil {
		panic(fmt.Sprintf("transport: self-encode failed: %v", err))
	}

	at := time.Now().Add(delay)
	link := [2]wire.NodeID{from, env.To}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	dest, ok := n.endpoints[env.To]
	if !ok {
		n.drops.Add(1)
		n.mu.Unlock()
		return
	}
	if floor := n.lastAt[link]; at.Before(floor) {
		at = floor // FIFO per directed link
	}
	n.lastAt[link] = at
	n.seq++
	wasNext := len(n.queue) == 0 || at.Before(n.queue[0].at)
	heap.Push(&n.queue, delivery{at: at, seq: n.seq, env: copyEnv, dest: dest})
	n.mu.Unlock()
	if wasNext {
		n.kick()
	}
}

// spinBudget is how close to a delivery deadline the scheduler switches
// from timer sleep to yield-spinning. Go timers wake ~1ms late on a busy
// machine, which would swamp the cluster profile's 80 µs link latencies;
// yield-spinning the final stretch delivers with microsecond accuracy
// while still ceding the CPU to runnable protocol goroutines.
const spinBudget = 1500 * time.Microsecond

// run is the delivery loop: it sleeps (then spins) until the earliest
// queued delivery is due and hands envelopes to their destinations.
func (n *Network) run() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		now := time.Now()
		var due []delivery
		for len(n.queue) > 0 && !n.queue[0].at.After(now) {
			due = append(due, heap.Pop(&n.queue).(delivery))
		}
		// Purge FIFO floors that can no longer bind: a floor in the past
		// is dominated by any future send's at = now+delay. Without this
		// the map keeps one entry per directed link ever used, which a
		// churning session fleet turns into unbounded growth.
		if now.Sub(n.floorSwept) > 5*time.Second {
			n.floorSwept = now
			for link, at := range n.lastAt {
				if at.Before(now) {
					delete(n.lastAt, link)
				}
			}
		}
		var wait time.Duration = time.Hour
		if len(n.queue) > 0 {
			wait = n.queue[0].at.Sub(now)
		}
		tracer := n.tracer
		n.mu.Unlock()

		for _, d := range due {
			if tracer != nil {
				tracer(d.at, d.env)
			}
			d.dest.deliver(d.env, n)
		}

		if wait <= spinBudget {
			// Deadline imminent (or work just delivered): yield and
			// re-check rather than paying timer latency.
			runtime.Gosched()
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait - spinBudget)
		select {
		case <-timer.C:
		case <-n.wake:
		}
	}
}

// Endpoint is one node's attachment to a Network.
type Endpoint struct {
	id   wire.NodeID
	net  *Network
	recv chan *wire.Envelope
	// sink, when set (Sinker), replaces the recv channel: the fabric's
	// delivery goroutine calls it directly, skipping one queue hop (the
	// group multiplexer uses this to dispatch straight into per-group
	// queues).
	sink atomic.Pointer[func(*wire.Envelope)]

	mu     sync.Mutex
	closed bool
}

var _ Transport = (*Endpoint)(nil)
var _ Meter = (*Endpoint)(nil)
var _ Sinker = (*Endpoint)(nil)
var _ RTTReporter = (*Endpoint)(nil)

// SetSink implements Sinker. Set before traffic starts.
func (ep *Endpoint) SetSink(fn func(*wire.Envelope)) { ep.sink.Store(&fn) }

// Local implements Transport.
func (ep *Endpoint) Local() wire.NodeID { return ep.id }

// Send implements Transport.
func (ep *Endpoint) Send(env *wire.Envelope) { ep.net.send(ep.id, env) }

// Recv implements Transport.
func (ep *Endpoint) Recv() <-chan *wire.Envelope { return ep.recv }

// Drops implements Meter, reporting the fabric-wide drop count.
func (ep *Endpoint) Drops() uint64 { return ep.net.Drops() }

// PeerRTT implements RTTReporter from the netem model: the round trip
// is the sum of the two directed links' mean one-way latencies. Where
// the TCP transport has to measure, the fabric can simply ask the model
// — the same figure a long-running ping EWMA would converge to.
func (ep *Endpoint) PeerRTT(peer wire.NodeID) (time.Duration, bool) {
	m := ep.net.model
	rtt := m.MeanLatency(m.ClassOf(ep.id), m.ClassOf(peer)) +
		m.MeanLatency(m.ClassOf(peer), m.ClassOf(ep.id))
	if rtt <= 0 {
		return 0, false
	}
	return rtt, true
}

// Close implements Transport. The endpoint stops receiving; the fabric
// keeps running for other endpoints. The registry slot is released so a
// long-lived network shedding thousands of short-lived session
// endpoints (an open-loop benchmark, a gateway soak) does not
// accumulate dead endpoints and their buffers forever.
func (ep *Endpoint) Close() error {
	ep.closeRecv()
	ep.net.mu.Lock()
	if cur, ok := ep.net.endpoints[ep.id]; ok && cur == ep {
		delete(ep.net.endpoints, ep.id)
	}
	ep.net.mu.Unlock()
	return nil
}

func (ep *Endpoint) isClosed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

func (ep *Endpoint) closeRecv() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if !ep.closed {
		ep.closed = true
		close(ep.recv)
	}
}

func (ep *Endpoint) deliver(env *wire.Envelope, n *Network) {
	if fn := ep.sink.Load(); fn != nil {
		if ep.isClosed() {
			return
		}
		(*fn)(env)
		return
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return
	}
	select {
	case ep.recv <- env:
	default: // receiver buffer full: drop, as a real kernel would
		n.drops.Add(1)
	}
}
