// Package gateway is the client-facing edge of a replica process
// (DESIGN.md §15). It wraps the process transport the same way the
// group multiplexer does and interposes on exactly two flows: inbound
// client requests and outbound client replies. Everything else — peer
// consensus traffic, heartbeats, catch-up — passes through untouched
// on the hot path with no locking.
//
// The edge provides three protections the consensus layer should never
// have to pay for:
//
//   - Admission control: a token bucket per tenant plus one global
//     in-flight budget sized from pipeline depth × groups. When the
//     budget is exhausted, requests wait in per-tenant fair queues
//     (deficit round-robin, weighted); when those fill, the gateway
//     sheds at the edge with a typed StatusOverload reply carrying a
//     retry-after hint, instead of letting work queue on an event loop.
//   - Idempotent retry: a bounded per-session dedup window caches
//     terminal replies, so a client retry of an answered request is
//     served from the edge without touching consensus. (Across leader
//     switches the new leader's log-rebuilt reply cache is the
//     authority; the window is an edge cache layered on top.)
//   - Session multiplexing (session.go): many logical sessions share
//     one connection, each with its own session ID and sequence space.
//
// Only a replying replica enforces admission. Followers never answer
// clients — their cores silently ignore client writes — so a gateway
// that has not produced a client reply within ActiveWindow is passive
// and forwards everything. This keeps follower sheds from polluting
// client broadcast, costs nothing at cold start (the first requests
// pass through, the leader answers, its gateway turns active), and
// means in-flight accounting only happens where replies actually clear
// it.
package gateway

import (
	"sync"
	"sync/atomic"
	"time"

	"gridrep/internal/metrics"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// Config tunes the edge. The zero value gets sensible defaults from
// withDefaults; a zero TenantRate disables the per-tenant bucket while
// keeping the global budget.
type Config struct {
	// MaxInFlight is the global admitted-but-unanswered budget. Size it
	// from pipeline depth × groups × batch headroom: admitting more than
	// the consensus layer can have in flight only grows queues.
	MaxInFlight int
	// TenantRate is the per-tenant token refill rate in requests/second.
	// 0 disables per-tenant throttling.
	TenantRate float64
	// TenantBurst is the token bucket capacity (default max(16, MaxInFlight)).
	TenantBurst int
	// QueueLen bounds each tenant's fair queue (default 2×MaxInFlight).
	QueueLen int
	// Weights sets per-tenant DRR weights; unlisted tenants weigh 1.
	Weights map[uint8]int
	// RetryAfter is the base shed backoff hint (default 50ms). The
	// actual hint scales with queue depth.
	RetryAfter time.Duration
	// InFlightTTL expires admissions that will never see a reply — e.g.
	// admitted just before leadership moved away (default 2s).
	InFlightTTL time.Duration
	// DedupWindow is the number of terminal replies cached per session
	// (default 32).
	DedupWindow int
	// SessionTTL evicts idle session state (default 60s).
	SessionTTL time.Duration
	// ActiveWindow is how long after its last client reply a gateway
	// keeps enforcing admission (default 1s). A gateway that has not
	// replied within the window is passive: a pure pass-through.
	ActiveWindow time.Duration
	// Clock is a test seam; nil means time.Now.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = c.MaxInFlight
		if c.TenantBurst < 16 {
			c.TenantBurst = 16
		}
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 2 * c.MaxInFlight
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	if c.InFlightTTL <= 0 {
		c.InFlightTTL = 2 * time.Second
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 32
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 60 * time.Second
	}
	if c.ActiveWindow <= 0 {
		c.ActiveWindow = time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// entry is one admitted-but-unanswered request. counted marks entries
// that occupy a budget slot (forwarded inward); queued entries flip to
// counted when the fair queue drains them.
type entry struct {
	at      time.Time
	counted bool
}

// session is the per-session edge state: in-flight admissions, the
// dedup window (a seq→reply map plus a fixed eviction ring), and the
// highest sequence number ever admitted. The window caches only
// terminal statuses; sheds and NotLeader are never cached because the
// request may still execute later.
type session struct {
	tenant   uint8
	lastSeen time.Time
	maxSeq   uint64
	inflight map[uint64]entry
	window   map[uint64]*wire.Reply
	ring     []uint64
	pos      int
}

func (s *session) cache(rep *wire.Reply, window int) {
	cp := *rep
	if cp.Result != nil {
		cp.Result = append([]byte(nil), cp.Result...)
	}
	if _, ok := s.window[cp.Seq]; ok {
		s.window[cp.Seq] = &cp
		return
	}
	if len(s.ring) < window {
		s.ring = append(s.ring, cp.Seq)
	} else {
		delete(s.window, s.ring[s.pos])
		s.ring[s.pos] = cp.Seq
		s.pos = (s.pos + 1) % window
	}
	s.window[cp.Seq] = &cp
}

// queuedReq is one request parked in a tenant's fair queue.
type queuedReq struct {
	env *wire.Envelope
	at  time.Time
}

// tenant is the per-tenant admission state: the token bucket and the
// DRR queue.
type tenant struct {
	weight  int
	tokens  float64
	last    time.Time
	queue   []queuedReq
	deficit float64
	active  bool
}

func (t *tenant) refill(now time.Time, rate, burst float64) {
	if rate <= 0 {
		return
	}
	t.tokens += rate * now.Sub(t.last).Seconds()
	if t.tokens > burst {
		t.tokens = burst
	}
	t.last = now
}

// Gateway wraps a transport.Transport. Wrap it around the process
// transport before the group multiplexer: TCP/Endpoint → Gateway →
// GroupMux → cores.
type Gateway struct {
	under transport.Transport
	cfg   Config

	sink atomic.Pointer[func(*wire.Envelope)]

	recvMu     sync.Mutex
	recv       chan *wire.Envelope
	recvClosed bool

	lastReplyNS atomic.Int64 // wall clock of the last outbound client reply

	mu       sync.Mutex
	sessions map[wire.NodeID]*session
	tenants  map[uint8]*tenant
	rr       []uint8 // active-tenant ring for DRR
	rrIdx    int
	inflight int
	queuedN  int

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	admitted      metrics.Counter
	queuedTot     metrics.Counter
	shedThrottle  metrics.Counter
	shedQueueFull metrics.Counter
	shedQueueAged metrics.Counter
	dedupHits     metrics.Counter
	dupPass       metrics.Counter
	expiredTot    metrics.Counter
	drops         atomic.Uint64
}

const gatewayRecvBuf = 65536

// Wrap interposes the gateway on under. If under can sink (TCP,
// chanx), inbound envelopes are filtered on the decode goroutines with
// no extra hop; otherwise a pump goroutine drains under.Recv.
func Wrap(under transport.Transport, cfg Config) *Gateway {
	g := &Gateway{
		under:    under,
		cfg:      cfg.withDefaults(),
		recv:     make(chan *wire.Envelope, gatewayRecvBuf),
		sessions: make(map[wire.NodeID]*session),
		tenants:  make(map[uint8]*tenant),
		stop:     make(chan struct{}),
	}
	if s, ok := under.(transport.Sinker); ok {
		s.SetSink(g.inbound)
	} else {
		g.wg.Add(1)
		go g.pump()
	}
	g.wg.Add(1)
	go g.sweeper()
	return g
}

// Local implements transport.Transport.
func (g *Gateway) Local() wire.NodeID { return g.under.Local() }

// Recv implements transport.Transport.
func (g *Gateway) Recv() <-chan *wire.Envelope { return g.recv }

// SetSink implements transport.Sinker for the layer above (the group
// multiplexer or a core). Set it before traffic starts.
func (g *Gateway) SetSink(fn func(*wire.Envelope)) { g.sink.Store(&fn) }

// SetHealth forwards to the underlying transport when it reports
// link health.
func (g *Gateway) SetHealth(fn func(peer wire.NodeID, up bool)) {
	if hr, ok := g.under.(transport.HealthReporter); ok {
		hr.SetHealth(fn)
	}
}

// Drops implements transport.Meter: the gateway's own recv overflow
// plus whatever the wrapped transport dropped.
func (g *Gateway) Drops() uint64 {
	d := g.drops.Load()
	if m, ok := g.under.(transport.Meter); ok {
		d += m.Drops()
	}
	return d
}

// Close stops the sweeper, closes the wrapped transport (which
// quiesces its sink callbacks), and closes Recv.
func (g *Gateway) Close() error {
	g.stopOnce.Do(func() { close(g.stop) })
	err := g.under.Close()
	g.wg.Wait()
	g.closeRecv()
	return err
}

func (g *Gateway) closeRecv() {
	g.recvMu.Lock()
	if !g.recvClosed {
		g.recvClosed = true
		close(g.recv)
	}
	g.recvMu.Unlock()
}

func (g *Gateway) pump() {
	defer g.wg.Done()
	for env := range g.under.Recv() {
		g.inbound(env)
	}
	g.closeRecv()
}

// deliver hands an envelope to the layer above: the inner sink when one
// is set, the recv channel otherwise.
func (g *Gateway) deliver(env *wire.Envelope) {
	if fn := g.sink.Load(); fn != nil {
		(*fn)(env)
		return
	}
	g.recvMu.Lock()
	if g.recvClosed {
		g.recvMu.Unlock()
		g.drops.Add(1)
		return
	}
	select {
	case g.recv <- env:
		g.recvMu.Unlock()
	default:
		g.recvMu.Unlock()
		g.drops.Add(1)
	}
}

// inbound filters one received envelope. Non-request traffic (all peer
// consensus messages) takes the first branch and pays nothing.
func (g *Gateway) inbound(env *wire.Envelope) {
	rm, ok := env.Msg.(*wire.RequestMsg)
	if !ok {
		g.deliver(env)
		return
	}
	g.handleRequest(env, &rm.Req)
}

// replying reports whether this replica has answered a client within
// the activity window — the signal that it is the one enforcing
// admission (see the package comment).
func (g *Gateway) replying(now time.Time) bool {
	last := g.lastReplyNS.Load()
	return last != 0 && now.UnixNano()-last <= int64(g.cfg.ActiveWindow)
}

func (g *Gateway) handleRequest(env *wire.Envelope, req *wire.Request) {
	now := g.cfg.Clock()
	if !g.replying(now) {
		// Passive edge: a follower (or a not-yet-warm leader). Forward
		// untouched; the core ignores what it should ignore.
		g.deliver(env)
		return
	}

	g.mu.Lock()
	sess := g.session(req.Client, now)

	// 1. Retry of an answered request: serve the cached terminal reply
	// from the edge. Consensus never sees the duplicate.
	if rep, ok := sess.window[req.Seq]; ok {
		cp := *rep
		g.mu.Unlock()
		g.dedupHits.Inc()
		g.under.Send(&wire.Envelope{To: cp.Client, Msg: &wire.ReplyMsg{Rep: cp}})
		return
	}

	// 2. Retransmit of an accepted-but-unanswered request (or a stale
	// seq below the admitted watermark): pass through. The protocol
	// layer owns retransmission and the leader's log-rebuilt reply
	// cache dedups execution; admitting it again would double-count
	// the budget slot.
	if _, ok := sess.inflight[req.Seq]; ok || req.Seq <= sess.maxSeq {
		g.mu.Unlock()
		g.dupPass.Inc()
		g.deliver(env)
		return
	}

	// 3. Fresh request: admission. Token bucket first — a tenant over
	// its rate is shed immediately with the time until its next token.
	tn := g.tenantState(sess.tenant, now)
	tn.refill(now, g.cfg.TenantRate, float64(g.cfg.TenantBurst))
	if g.cfg.TenantRate > 0 {
		if tn.tokens < 1 {
			wait := time.Duration((1 - tn.tokens) / g.cfg.TenantRate * float64(time.Second))
			g.mu.Unlock()
			g.shedThrottle.Inc()
			g.shed(req, wait)
			return
		}
		tn.tokens--
	}

	// Global budget next: admit and forward while slots remain.
	if g.inflight < g.cfg.MaxInFlight {
		sess.inflight[req.Seq] = entry{at: now, counted: true}
		sess.maxSeq = req.Seq
		g.inflight++
		g.mu.Unlock()
		g.admitted.Inc()
		g.deliver(env)
		return
	}

	// Budget exhausted: park in the tenant's fair queue if it has room,
	// shed with a depth-scaled hint otherwise.
	if len(tn.queue) < g.cfg.QueueLen {
		sess.inflight[req.Seq] = entry{at: now}
		sess.maxSeq = req.Seq
		tn.queue = append(tn.queue, queuedReq{env: env, at: now})
		g.queuedN++
		if !tn.active {
			tn.active = true
			g.rr = append(g.rr, sess.tenant)
		}
		g.mu.Unlock()
		g.queuedTot.Inc()
		return
	}
	hint := g.hintLocked()
	g.mu.Unlock()
	g.shedQueueFull.Inc()
	g.shed(req, hint)
}

// hintLocked scales the base retry-after by how deep the backlog is,
// clamped to 5s. Called with g.mu held.
func (g *Gateway) hintLocked() time.Duration {
	h := g.cfg.RetryAfter * time.Duration(1+g.queuedN/g.cfg.MaxInFlight)
	if h > 5*time.Second {
		h = 5 * time.Second
	}
	return h
}

// shed answers req with StatusOverload and a retry-after hint. The
// request was not executed; retrying the same sequence number is safe.
func (g *Gateway) shed(req *wire.Request, wait time.Duration) {
	ms := wait.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	g.under.Send(&wire.Envelope{To: req.Client, Msg: &wire.ReplyMsg{Rep: wire.Reply{
		Client:       req.Client,
		Seq:          req.Seq,
		Status:       wire.StatusOverload,
		RetryAfterMS: uint32(ms),
	}}})
}

func (g *Gateway) session(id wire.NodeID, now time.Time) *session {
	s, ok := g.sessions[id]
	if !ok {
		s = &session{
			tenant:   TenantOf(id),
			inflight: make(map[uint64]entry),
			window:   make(map[uint64]*wire.Reply),
		}
		g.sessions[id] = s
	}
	s.lastSeen = now
	return s
}

func (g *Gateway) tenantState(id uint8, now time.Time) *tenant {
	t, ok := g.tenants[id]
	if !ok {
		w := g.cfg.Weights[id]
		if w < 1 {
			w = 1
		}
		t = &tenant{weight: w, tokens: float64(g.cfg.TenantBurst), last: now}
		g.tenants[id] = t
	}
	return t
}

// Send implements transport.Transport. Outbound client replies clear
// their in-flight slot, feed the dedup window, and trigger a queue
// drain; everything else passes straight through.
func (g *Gateway) Send(env *wire.Envelope) {
	if rm, ok := env.Msg.(*wire.ReplyMsg); ok {
		g.observeReply(&rm.Rep)
	}
	g.under.Send(env)
}

func (g *Gateway) observeReply(rep *wire.Reply) {
	now := g.cfg.Clock()
	g.lastReplyNS.Store(now.UnixNano())
	g.mu.Lock()
	sess, ok := g.sessions[rep.Client]
	if !ok {
		g.mu.Unlock()
		return
	}
	sess.lastSeen = now
	if e, ok := sess.inflight[rep.Seq]; ok {
		delete(sess.inflight, rep.Seq)
		if e.counted {
			g.inflight--
		}
	}
	switch rep.Status {
	case wire.StatusOK, wire.StatusAborted, wire.StatusError, wire.StatusCrossGroup:
		sess.cache(rep, g.cfg.DedupWindow)
	}
	out := g.drainLocked()
	g.mu.Unlock()
	for _, e := range out {
		g.deliver(e)
	}
}

// drainLocked releases parked requests under deficit round-robin while
// budget slots remain. Called with g.mu held; returns the envelopes to
// forward after unlock.
func (g *Gateway) drainLocked() []*wire.Envelope {
	var out []*wire.Envelope
	for g.inflight < g.cfg.MaxInFlight && len(g.rr) > 0 {
		if g.rrIdx >= len(g.rr) {
			g.rrIdx = 0
		}
		id := g.rr[g.rrIdx]
		tn := g.tenants[id]
		// Top up the quantum only once the previous one is spent, so a
		// heavy tenant keeps its turn across slot-at-a-time drains and
		// weights hold even when the budget frees one slot per reply.
		if tn.deficit < 1 {
			tn.deficit += float64(tn.weight)
		}
		for tn.deficit >= 1 && len(tn.queue) > 0 && g.inflight < g.cfg.MaxInFlight {
			q := tn.queue[0]
			tn.queue = tn.queue[1:]
			g.queuedN--
			tn.deficit--
			req := &q.env.Msg.(*wire.RequestMsg).Req
			sess := g.sessions[req.Client]
			if sess == nil {
				continue
			}
			e, ok := sess.inflight[req.Seq]
			if !ok || e.counted {
				// Answered (or forwarded via a retransmit) while parked.
				continue
			}
			e.counted = true
			sess.inflight[req.Seq] = e
			g.inflight++
			out = append(out, q.env)
		}
		if len(tn.queue) == 0 {
			tn.active = false
			tn.deficit = 0
			g.rr = append(g.rr[:g.rrIdx], g.rr[g.rrIdx+1:]...)
		} else if tn.deficit < 1 {
			// Quantum spent: rotate. A tenant stopped mid-quantum by the
			// budget keeps the turn for the next drain.
			g.rrIdx++
		}
	}
	return out
}

// sweeper periodically expires in-flight admissions that will never see
// a reply (leadership moved away mid-flight), sheds queued requests
// older than the TTL, and evicts idle sessions.
func (g *Gateway) sweeper() {
	defer g.wg.Done()
	period := g.cfg.InFlightTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tk := time.NewTicker(period)
	defer tk.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-tk.C:
			g.sweep(g.cfg.Clock())
		}
	}
}

func (g *Gateway) sweep(now time.Time) {
	var sheds []*wire.Request
	g.mu.Lock()
	for id, sess := range g.sessions {
		for seq, e := range sess.inflight {
			if e.counted && now.Sub(e.at) > g.cfg.InFlightTTL {
				delete(sess.inflight, seq)
				g.inflight--
				g.expiredTot.Add(1)
			}
		}
		if len(sess.inflight) == 0 && now.Sub(sess.lastSeen) > g.cfg.SessionTTL {
			delete(g.sessions, id)
		}
	}
	for _, tn := range g.tenants {
		keep := tn.queue[:0]
		for _, q := range tn.queue {
			if now.Sub(q.at) > g.cfg.InFlightTTL {
				req := &q.env.Msg.(*wire.RequestMsg).Req
				if sess := g.sessions[req.Client]; sess != nil {
					delete(sess.inflight, req.Seq)
				}
				g.queuedN--
				g.shedQueueAged.Add(1)
				sheds = append(sheds, req)
				continue
			}
			keep = append(keep, q)
		}
		tn.queue = keep
	}
	hint := g.hintLocked()
	out := g.drainLocked()
	g.mu.Unlock()
	for _, req := range sheds {
		g.shed(req, hint)
	}
	for _, e := range out {
		g.deliver(e)
	}
}

// Stats is a point-in-time snapshot of the edge counters, for tests
// and the bench harness.
type Stats struct {
	Admitted        uint64
	Queued          uint64
	DedupHits       uint64
	DupPassthrough  uint64
	ShedThrottle    uint64
	ShedQueueFull   uint64
	ShedQueueAged   uint64
	ExpiredInFlight uint64
	InFlight        int
	QueueDepth      int
	Sessions        int
}

// Sheds is the total number of requests shed at the edge.
func (s Stats) Sheds() uint64 { return s.ShedThrottle + s.ShedQueueFull + s.ShedQueueAged }

// Stats returns a snapshot of the gateway counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	inflight, queued, sessions := g.inflight, g.queuedN, len(g.sessions)
	g.mu.Unlock()
	return Stats{
		Admitted:        g.admitted.Load(),
		Queued:          g.queuedTot.Load(),
		DedupHits:       g.dedupHits.Load(),
		DupPassthrough:  g.dupPass.Load(),
		ShedThrottle:    g.shedThrottle.Load(),
		ShedQueueFull:   g.shedQueueFull.Load(),
		ShedQueueAged:   g.shedQueueAged.Load(),
		ExpiredInFlight: g.expiredTot.Load(),
		InFlight:        inflight,
		QueueDepth:      queued,
		Sessions:        sessions,
	}
}

// RegisterMetrics implements metrics.Instrumented: the wrapped
// transport's instruments first (the gateway replaces it in the probe
// chain, so it must keep the transport visible), then the gateway's
// own.
func (g *Gateway) RegisterMetrics(reg *metrics.Registry) {
	if ins, ok := g.under.(metrics.Instrumented); ok {
		ins.RegisterMetrics(reg)
	}
	reg.RegisterCounter("gridrep_gateway_admitted_total",
		"requests admitted past the edge into the consensus layer", &g.admitted)
	reg.RegisterCounter("gridrep_gateway_queued_total",
		"requests parked in a tenant fair queue before admission", &g.queuedTot)
	reg.RegisterCounter("gridrep_gateway_shed_throttle_total",
		"requests shed because the tenant token bucket was empty", &g.shedThrottle)
	reg.RegisterCounter("gridrep_gateway_shed_queue_full_total",
		"requests shed because the tenant fair queue was full", &g.shedQueueFull)
	reg.RegisterCounter("gridrep_gateway_shed_queue_aged_total",
		"queued requests shed after waiting longer than the in-flight TTL", &g.shedQueueAged)
	reg.RegisterCounter("gridrep_gateway_dedup_hits_total",
		"retries answered from the per-session dedup window", &g.dedupHits)
	reg.RegisterCounter("gridrep_gateway_dup_passthrough_total",
		"retransmits of in-flight requests passed through unadmitted", &g.dupPass)
	reg.RegisterCounter("gridrep_gateway_expired_inflight_total",
		"admitted requests expired by TTL with no reply observed", &g.expiredTot)
	reg.RegisterGaugeFunc("gridrep_gateway_inflight",
		"admitted requests currently awaiting a reply", func() int64 {
			g.mu.Lock()
			v := g.inflight
			g.mu.Unlock()
			return int64(v)
		})
	reg.RegisterGaugeFunc("gridrep_gateway_queued",
		"requests currently parked in tenant fair queues", func() int64 {
			g.mu.Lock()
			v := g.queuedN
			g.mu.Unlock()
			return int64(v)
		})
	reg.RegisterGaugeFunc("gridrep_gateway_sessions",
		"live client sessions tracked at the edge", func() int64 {
			g.mu.Lock()
			v := len(g.sessions)
			g.mu.Unlock()
			return int64(v)
		})
}
