package gateway

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// fakeUnder is a controllable transport.Transport + Sinker: Sent
// envelopes are recorded, inbound ones injected straight into the sink.
type fakeUnder struct {
	local wire.NodeID
	sink  atomic.Pointer[func(*wire.Envelope)]
	recv  chan *wire.Envelope

	mu     sync.Mutex
	sent   []*wire.Envelope
	closed bool
}

func newFakeUnder() *fakeUnder {
	return &fakeUnder{local: 0, recv: make(chan *wire.Envelope, 16)}
}

func (f *fakeUnder) Local() wire.NodeID { return f.local }

func (f *fakeUnder) Send(env *wire.Envelope) {
	f.mu.Lock()
	f.sent = append(f.sent, env)
	f.mu.Unlock()
}

func (f *fakeUnder) Recv() <-chan *wire.Envelope { return f.recv }

func (f *fakeUnder) Close() error {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		close(f.recv)
	}
	f.mu.Unlock()
	return nil
}

func (f *fakeUnder) SetSink(fn func(*wire.Envelope)) { f.sink.Store(&fn) }

func (f *fakeUnder) inject(env *wire.Envelope) { (*f.sink.Load())(env) }

// sentReplies drains and returns the replies recorded by Send.
func (f *fakeUnder) sentReplies() []wire.Reply {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []wire.Reply
	for _, env := range f.sent {
		if rm, ok := env.Msg.(*wire.ReplyMsg); ok {
			out = append(out, rm.Rep)
		}
	}
	f.sent = nil
	return out
}

// fakeClock is a manual clock for the Config.Clock seam.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// collector records what the gateway forwards inward.
type collector struct {
	mu   sync.Mutex
	envs []*wire.Envelope
}

func (c *collector) sink(env *wire.Envelope) {
	c.mu.Lock()
	c.envs = append(c.envs, env)
	c.mu.Unlock()
}

func (c *collector) take() []*wire.Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.envs
	c.envs = nil
	return out
}

func reqEnv(client wire.NodeID, seq uint64) *wire.Envelope {
	return &wire.Envelope{From: client, To: 0, Msg: &wire.RequestMsg{Req: wire.Request{
		Client: client, Seq: seq, Kind: wire.KindWrite, Op: []byte{1},
	}}}
}

func replyEnv(client wire.NodeID, seq uint64, st wire.ReplyStatus) *wire.Envelope {
	return &wire.Envelope{To: client, Msg: &wire.ReplyMsg{Rep: wire.Reply{
		Client: client, Seq: seq, Status: st, Leader: 0, Result: []byte{42},
	}}}
}

// wake turns a gateway active by pushing one reply through Send, the
// same signal a real leader produces.
func wake(g *Gateway, f *fakeUnder) {
	g.Send(replyEnv(SessionID(0, 999999), 1, wire.StatusOK))
	f.sentReplies()
}

func newTestGateway(t *testing.T, cfg Config) (*Gateway, *fakeUnder, *collector, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	cfg.Clock = clk.Now
	f := newFakeUnder()
	g := Wrap(f, cfg)
	c := &collector{}
	g.SetSink(c.sink)
	t.Cleanup(func() { g.Close() })
	return g, f, c, clk
}

// TestPassiveForwards: a gateway that has never produced a client reply
// (a follower) is a pure pass-through: no admission state, no sheds.
func TestPassiveForwards(t *testing.T) {
	g, f, c, _ := newTestGateway(t, Config{MaxInFlight: 1})
	for seq := uint64(1); seq <= 10; seq++ {
		f.inject(reqEnv(SessionID(0, 1), seq))
	}
	if got := len(c.take()); got != 10 {
		t.Fatalf("passive gateway forwarded %d of 10", got)
	}
	if reps := f.sentReplies(); len(reps) != 0 {
		t.Fatalf("passive gateway sent %d replies", len(reps))
	}
	if st := g.Stats(); st.Admitted != 0 || st.InFlight != 0 || st.Sessions != 0 {
		t.Fatalf("passive gateway kept state: %+v", st)
	}
}

// TestBudgetQueueShed: once active, the global budget admits, the fair
// queue parks, and overflow sheds with StatusOverload + a hint.
func TestBudgetQueueShed(t *testing.T) {
	g, f, c, _ := newTestGateway(t, Config{MaxInFlight: 2, QueueLen: 2})
	wake(g, f)

	for n := uint32(1); n <= 6; n++ {
		f.inject(reqEnv(SessionID(0, n), 1))
	}
	if got := len(c.take()); got != 2 {
		t.Fatalf("forwarded %d, want the budget of 2", got)
	}
	st := g.Stats()
	if st.Admitted != 2 || st.Queued != 2 || st.ShedQueueFull != 2 {
		t.Fatalf("admit/queue/shed = %d/%d/%d, want 2/2/2", st.Admitted, st.Queued, st.ShedQueueFull)
	}
	reps := f.sentReplies()
	if len(reps) != 2 {
		t.Fatalf("%d shed replies, want 2", len(reps))
	}
	for _, r := range reps {
		if r.Status != wire.StatusOverload || r.RetryAfterMS == 0 {
			t.Fatalf("shed reply %+v lacks typed overload + hint", r)
		}
	}

	// Replies free slots and drain the queue in arrival order.
	g.Send(replyEnv(SessionID(0, 1), 1, wire.StatusOK))
	g.Send(replyEnv(SessionID(0, 2), 1, wire.StatusOK))
	drained := c.take()
	if len(drained) != 2 {
		t.Fatalf("drained %d queued requests, want 2", len(drained))
	}
	if st := g.Stats(); st.QueueDepth != 0 || st.InFlight != 2 {
		t.Fatalf("after drain: %+v", st)
	}
}

// TestDedupWindow: a retry of an answered request is served from the
// edge cache; consensus never sees the duplicate.
func TestDedupWindow(t *testing.T) {
	g, f, c, _ := newTestGateway(t, Config{MaxInFlight: 8})
	wake(g, f)
	sid := SessionID(3, 7)

	f.inject(reqEnv(sid, 1))
	if len(c.take()) != 1 {
		t.Fatal("first request not forwarded")
	}
	g.Send(replyEnv(sid, 1, wire.StatusOK))
	f.sentReplies()

	f.inject(reqEnv(sid, 1)) // retry
	if got := len(c.take()); got != 0 {
		t.Fatalf("retry leaked past the edge (%d forwarded)", got)
	}
	reps := f.sentReplies()
	if len(reps) != 1 || reps[0].Status != wire.StatusOK || reps[0].Seq != 1 || len(reps[0].Result) != 1 {
		t.Fatalf("cached reply wrong: %+v", reps)
	}
	if st := g.Stats(); st.DedupHits != 1 {
		t.Fatalf("dedup hits = %d", st.DedupHits)
	}

	// Eviction: push DedupWindow new answered requests; the oldest seq
	// falls out and its retry passes through to consensus instead.
	for seq := uint64(2); seq < 2+32; seq++ {
		f.inject(reqEnv(sid, seq))
		c.take()
		g.Send(replyEnv(sid, seq, wire.StatusOK))
	}
	f.sentReplies()
	f.inject(reqEnv(sid, 1))
	if got := len(c.take()); got != 1 {
		t.Fatalf("evicted seq should pass through, forwarded %d", got)
	}
}

// TestNotLeaderNotCached: NotLeader clears the slot but is never served
// from the window — the request may still execute on the real leader.
func TestNotLeaderNotCached(t *testing.T) {
	g, f, c, _ := newTestGateway(t, Config{MaxInFlight: 8})
	wake(g, f)
	sid := SessionID(0, 5)

	f.inject(reqEnv(sid, 1))
	c.take()
	g.Send(replyEnv(sid, 1, wire.StatusNotLeader))
	f.sentReplies()
	if st := g.Stats(); st.InFlight != 0 {
		t.Fatalf("NotLeader did not clear the slot: %+v", st)
	}

	// The retry is a dup below the watermark: passed through, not shed,
	// not answered from cache.
	f.inject(reqEnv(sid, 1))
	if len(c.take()) != 1 {
		t.Fatal("retry after NotLeader must pass through")
	}
	if reps := f.sentReplies(); len(reps) != 0 {
		t.Fatalf("retry after NotLeader answered from cache: %+v", reps)
	}
}

// TestInFlightRetransmitPassesThrough: protocol-level rebroadcasts of an
// unanswered request bypass admission without double-counting budget.
func TestInFlightRetransmitPassesThrough(t *testing.T) {
	g, f, c, _ := newTestGateway(t, Config{MaxInFlight: 1, QueueLen: 1})
	wake(g, f)
	sid := SessionID(0, 9)

	f.inject(reqEnv(sid, 1))
	f.inject(reqEnv(sid, 1))
	f.inject(reqEnv(sid, 1))
	if got := len(c.take()); got != 3 {
		t.Fatalf("forwarded %d, want 3 (1 admit + 2 passthrough)", got)
	}
	st := g.Stats()
	if st.Admitted != 1 || st.DupPassthrough != 2 || st.InFlight != 1 {
		t.Fatalf("admit/dup/inflight = %d/%d/%d", st.Admitted, st.DupPassthrough, st.InFlight)
	}
	if reps := f.sentReplies(); len(reps) != 0 {
		t.Fatalf("retransmit shed: %+v", reps)
	}
}

// TestTokenBucketThrottle: a tenant over its rate is shed with the
// time-to-next-token hint while other tenants are untouched.
func TestTokenBucketThrottle(t *testing.T) {
	g, f, c, clk := newTestGateway(t, Config{
		MaxInFlight: 100, TenantRate: 10, TenantBurst: 2,
	})
	wake(g, f)

	// Burst of 3 from tenant 1: two admitted, third throttled.
	for n := uint32(1); n <= 3; n++ {
		f.inject(reqEnv(SessionID(1, n), 1))
	}
	if got := len(c.take()); got != 2 {
		t.Fatalf("forwarded %d, want burst of 2", got)
	}
	reps := f.sentReplies()
	if len(reps) != 1 || reps[0].Status != wire.StatusOverload {
		t.Fatalf("throttle reply: %+v", reps)
	}
	// 10 tokens/s → next token ≤ 100ms away.
	if reps[0].RetryAfterMS == 0 || reps[0].RetryAfterMS > 100 {
		t.Fatalf("throttle hint %dms, want (0,100]", reps[0].RetryAfterMS)
	}
	// Tenant 2 is unaffected.
	f.inject(reqEnv(SessionID(2, 1), 1))
	if len(c.take()) != 1 {
		t.Fatal("tenant 2 throttled by tenant 1's bucket")
	}
	// After the hint elapses the bucket has refilled.
	clk.Advance(150 * time.Millisecond)
	f.inject(reqEnv(SessionID(1, 3), 1))
	if len(c.take()) != 1 {
		t.Fatal("tenant 1 still throttled after refill")
	}
}

// TestDRRWeights: with the budget freeing one slot at a time, a
// weight-3 tenant drains three queued requests for each of a weight-1
// tenant's.
func TestDRRWeights(t *testing.T) {
	g, f, c, _ := newTestGateway(t, Config{
		MaxInFlight: 1, QueueLen: 16,
		Weights: map[uint8]int{1: 1, 2: 3},
	})
	wake(g, f)

	// Occupy the single slot, then park 8 requests per tenant.
	hold := SessionID(0, 1)
	f.inject(reqEnv(hold, 1))
	for n := uint32(1); n <= 8; n++ {
		f.inject(reqEnv(SessionID(1, n), 1))
		f.inject(reqEnv(SessionID(2, n), 1))
	}
	c.take()

	// Free one slot at a time; record which tenant drains.
	var order []uint8
	prev := hold
	prevSeq := uint64(1)
	for i := 0; i < 8; i++ {
		g.Send(replyEnv(prev, prevSeq, wire.StatusOK))
		out := c.take()
		if len(out) != 1 {
			t.Fatalf("step %d: drained %d, want 1", i, len(out))
		}
		req := out[0].Msg.(*wire.RequestMsg).Req
		order = append(order, TenantOf(req.Client))
		prev, prevSeq = req.Client, req.Seq
	}
	var t1, t2 int
	for _, id := range order {
		switch id {
		case 1:
			t1++
		case 2:
			t2++
		}
	}
	if t2 != 6 || t1 != 2 {
		t.Fatalf("drain split t1=%d t2=%d (order %v), want 2/6", t1, t2, order)
	}
}

// TestInFlightTTLExpiry: admissions that never see a reply (leadership
// moved away) release their budget after the TTL.
func TestInFlightTTLExpiry(t *testing.T) {
	g, f, c, clk := newTestGateway(t, Config{MaxInFlight: 2, InFlightTTL: 100 * time.Millisecond})
	wake(g, f)

	f.inject(reqEnv(SessionID(0, 1), 1))
	f.inject(reqEnv(SessionID(0, 2), 1))
	c.take()
	if st := g.Stats(); st.InFlight != 2 {
		t.Fatalf("inflight = %d", st.InFlight)
	}
	clk.Advance(time.Second)
	g.sweep(clk.Now())
	st := g.Stats()
	if st.InFlight != 0 || st.ExpiredInFlight != 2 {
		t.Fatalf("after TTL: %+v", st)
	}
	// The freed budget admits again (the gateway is passive now — the
	// fake clock advanced past ActiveWindow — so re-activate first).
	wake(g, f)
	f.inject(reqEnv(SessionID(0, 3), 1))
	if len(c.take()) != 1 {
		t.Fatal("budget not released by expiry")
	}
}

// TestQueueAgedShed: parked requests older than the TTL are shed with a
// typed overload reply instead of rotting in the queue.
func TestQueueAgedShed(t *testing.T) {
	g, f, c, clk := newTestGateway(t, Config{MaxInFlight: 1, QueueLen: 4, InFlightTTL: 100 * time.Millisecond})
	wake(g, f)

	f.inject(reqEnv(SessionID(0, 1), 1)) // takes the slot
	f.inject(reqEnv(SessionID(0, 2), 1)) // parks
	c.take()
	clk.Advance(time.Second)
	g.sweep(clk.Now())
	st := g.Stats()
	if st.ShedQueueAged != 1 || st.QueueDepth != 0 {
		t.Fatalf("aged shed: %+v", st)
	}
	reps := f.sentReplies()
	if len(reps) != 1 || reps[0].Status != wire.StatusOverload || reps[0].Client != SessionID(0, 2) {
		t.Fatalf("aged shed replies: %+v", reps)
	}
}

// TestNonRequestPassthrough: peer consensus traffic is untouched in
// both directions, active or not.
func TestNonRequestPassthrough(t *testing.T) {
	g, f, c, _ := newTestGateway(t, Config{MaxInFlight: 1})
	wake(g, f)
	f.inject(&wire.Envelope{From: 1, To: 0, Msg: &wire.Prepare{Bal: wire.Ballot{Round: 3, Node: 1}}})
	in := c.take()
	if len(in) != 1 {
		t.Fatalf("peer message filtered: %d", len(in))
	}
	g.Send(&wire.Envelope{To: 1, Msg: &wire.Commit{Bal: wire.Ballot{Round: 3, Node: 1}, Index: 9}})
	f.mu.Lock()
	n := len(f.sent)
	f.mu.Unlock()
	if n != 1 {
		t.Fatalf("outbound peer message filtered: %d", n)
	}
}

// TestSessionIDTenant: the ID packing round-trips and legacy client IDs
// are tenant 0.
func TestSessionIDTenant(t *testing.T) {
	cases := []struct {
		tenant uint8
		n      uint32
	}{{0, 0}, {0, 1}, {1, 0}, {7, 12345}, {MaxTenant, MaxSessions - 1}}
	for _, tc := range cases {
		id := SessionID(tc.tenant, tc.n)
		if !id.IsClient() {
			t.Fatalf("SessionID(%d,%d)=%v not in client space", tc.tenant, tc.n, id)
		}
		if got := TenantOf(id); got != tc.tenant {
			t.Fatalf("TenantOf(SessionID(%d,%d)) = %d", tc.tenant, tc.n, got)
		}
	}
	if TenantOf(wire.ClientIDBase+7) != 0 {
		t.Fatal("legacy client IDs must land in tenant 0")
	}
	if TenantOf(2) != 0 {
		t.Fatal("replica IDs must map to tenant 0")
	}
	// No overlap across tenants for the same n.
	if SessionID(1, 5) == SessionID(2, 5) {
		t.Fatal("tenant collision")
	}
}

var _ transport.Transport = (*Gateway)(nil)
var _ transport.Sinker = (*Gateway)(nil)
var _ transport.Meter = (*Gateway)(nil)
var _ transport.HealthReporter = (*Gateway)(nil)
var _ transport.Transport = (*sessionEP)(nil)
