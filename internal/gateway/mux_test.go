package gateway

import (
	"testing"

	"gridrep/internal/wire"
)

// TestSessionMuxDemux: sessions share one transport; sends are stamped
// with the session ID and replies are demultiplexed back to the right
// session by the reply's client field.
func TestSessionMuxDemux(t *testing.T) {
	f := newFakeUnder()
	m := NewSessionMux(f)
	defer m.Close()

	a, err := m.Open(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Open(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Local() != SessionID(1, 1) || b.Local() != SessionID(2, 9) {
		t.Fatalf("session IDs: %v %v", a.Local(), b.Local())
	}
	// Reopening returns the same endpoint.
	if a2, _ := m.Open(1, 1); a2 != a {
		t.Fatal("reopen created a second endpoint")
	}

	a.Send(&wire.Envelope{To: 0, Msg: &wire.RequestMsg{Req: wire.Request{Client: a.Local(), Seq: 1}}})
	b.Send(&wire.Envelope{To: 0, Msg: &wire.RequestMsg{Req: wire.Request{Client: b.Local(), Seq: 1}}})
	f.mu.Lock()
	if len(f.sent) != 2 || f.sent[0].From != a.Local() || f.sent[1].From != b.Local() {
		f.mu.Unlock()
		t.Fatalf("sends not stamped with session IDs")
	}
	f.mu.Unlock()

	// Replies go to their session only; unknown sessions count as drops.
	f.recv <- replyEnv(b.Local(), 1, wire.StatusOK)
	f.recv <- replyEnv(a.Local(), 1, wire.StatusOK)
	f.recv <- replyEnv(SessionID(5, 5), 1, wire.StatusOK)

	got := <-a.Recv()
	if got.Msg.(*wire.ReplyMsg).Rep.Client != a.Local() {
		t.Fatalf("session a got %+v", got)
	}
	got = <-b.Recv()
	if got.Msg.(*wire.ReplyMsg).Rep.Client != b.Local() {
		t.Fatalf("session b got %+v", got)
	}
	for m.Drops() == 0 {
	} // the unknown-session reply is dropped asynchronously

	// Closing one session detaches it without touching the other.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-a.Recv(); ok {
		t.Fatal("closed session recv still open")
	}
	f.recv <- replyEnv(b.Local(), 2, wire.StatusOK)
	if got := <-b.Recv(); got.Msg.(*wire.ReplyMsg).Rep.Seq != 2 {
		t.Fatalf("session b after a.Close: %+v", got)
	}

	// Close shuts the shared transport and every remaining session.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-b.Recv(); ok {
		t.Fatal("mux close left session recv open")
	}
	if _, err := m.Open(3, 1); err != ErrMuxClosed {
		t.Fatalf("Open after Close: %v", err)
	}
}
