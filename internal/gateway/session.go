package gateway

import (
	"errors"
	"sync"
	"sync/atomic"

	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// Session IDs pack a tenant and a session number into the client NodeID
// space so no wire change is needed: offset bits 24..30 carry the
// tenant (0..127), bits 0..23 the session number, and bit 31 stays
// clear so ClientIDBase+offset never wraps. Pre-gateway client IDs
// (small offsets) land in tenant 0, which is why a PR 8 client is just
// "tenant 0, session n" to the edge.
const (
	tenantShift = 24
	// MaxTenant is the largest addressable tenant ID.
	MaxTenant = 127
	// MaxSessions is the number of sessions addressable per tenant.
	MaxSessions = 1 << tenantShift
)

// SessionID composes the logical client NodeID for session n of a
// tenant. Out-of-range inputs are masked into range.
func SessionID(tenant uint8, n uint32) wire.NodeID {
	off := uint32(tenant&MaxTenant)<<tenantShift | n&(MaxSessions-1)
	return wire.ClientIDBase + wire.NodeID(off)
}

// TenantOf extracts the tenant from a client NodeID. Replica IDs map
// to tenant 0.
func TenantOf(id wire.NodeID) uint8 {
	if !id.IsClient() {
		return 0
	}
	return uint8(uint32(id-wire.ClientIDBase) >> tenantShift & MaxTenant)
}

// ErrMuxClosed is returned by SessionMux.Open after Close.
var ErrMuxClosed = errors.New("gateway: session mux closed")

// sessionRecvBuf bounds each session's reply buffer. A session has one
// logical request outstanding, broadcast to every replica, so a small
// multiple of the cluster size is ample.
const sessionRecvBuf = 64

// SessionMux multiplexes many logical client sessions onto one
// underlying transport (one TCP connection set per process instead of
// one per client). Each session is a transport.Transport whose Local()
// is its session ID; sends are stamped with that ID — the transports
// preserve a pre-stamped From — so the replica's accept path learns one
// reply route per session and the gateway sees per-session sequence
// spaces. A pump goroutine demultiplexes inbound replies back to
// session endpoints by their reply's client field.
type SessionMux struct {
	under transport.Transport

	mu     sync.Mutex
	eps    map[wire.NodeID]*sessionEP
	closed bool

	wg    sync.WaitGroup
	drops atomic.Uint64
}

// NewSessionMux wraps under, which must deliver replies addressed to
// arbitrary session IDs (the TCP dial transport does: its receive path
// does not filter on the envelope's To field).
func NewSessionMux(under transport.Transport) *SessionMux {
	m := &SessionMux{under: under, eps: make(map[wire.NodeID]*sessionEP)}
	m.wg.Add(1)
	go m.pump()
	return m
}

// Open returns the transport endpoint for session n of tenant. Opening
// the same session twice returns the same endpoint.
func (m *SessionMux) Open(tenant uint8, n uint32) (transport.Transport, error) {
	id := SessionID(tenant, n)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrMuxClosed
	}
	ep, ok := m.eps[id]
	if !ok {
		ep = &sessionEP{mux: m, id: id, recv: make(chan *wire.Envelope, sessionRecvBuf)}
		m.eps[id] = ep
	}
	return ep, nil
}

// Drops counts replies that arrived for no open session plus per-session
// buffer overflow, plus whatever the underlying transport dropped.
func (m *SessionMux) Drops() uint64 {
	d := m.drops.Load()
	if mt, ok := m.under.(transport.Meter); ok {
		d += mt.Drops()
	}
	return d
}

// Close closes every session endpoint and the underlying transport.
func (m *SessionMux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	err := m.under.Close() // pump drains and exits on the closed Recv
	m.wg.Wait()
	return err
}

func (m *SessionMux) pump() {
	defer m.wg.Done()
	for env := range m.under.Recv() {
		to := env.To
		if rm, ok := env.Msg.(*wire.ReplyMsg); ok && rm.Rep.Client != 0 {
			to = rm.Rep.Client
		}
		m.mu.Lock()
		ep := m.eps[to]
		m.mu.Unlock()
		if ep == nil {
			m.drops.Add(1)
			continue
		}
		ep.deliver(env, &m.drops)
	}
	m.mu.Lock()
	eps := make([]*sessionEP, 0, len(m.eps))
	for _, ep := range m.eps {
		eps = append(eps, ep)
	}
	m.closed = true
	m.mu.Unlock()
	for _, ep := range eps {
		ep.closeRecv()
	}
}

// sessionEP is one logical session's view of the shared transport.
type sessionEP struct {
	mux  *SessionMux
	id   wire.NodeID
	recv chan *wire.Envelope

	cmu      sync.Mutex
	detached bool
}

// Local implements transport.Transport: the session's logical ID.
func (e *sessionEP) Local() wire.NodeID { return e.id }

// Send implements transport.Transport, stamping the session ID as the
// sender before handing off to the shared transport.
func (e *sessionEP) Send(env *wire.Envelope) {
	env.From = e.id
	e.mux.under.Send(env)
}

// Recv implements transport.Transport.
func (e *sessionEP) Recv() <-chan *wire.Envelope { return e.recv }

// Close detaches the session from the mux. The shared transport stays
// open for other sessions.
func (e *sessionEP) Close() error {
	e.mux.mu.Lock()
	if e.mux.eps[e.id] == e {
		delete(e.mux.eps, e.id)
	}
	e.mux.mu.Unlock()
	e.closeRecv()
	return nil
}

func (e *sessionEP) deliver(env *wire.Envelope, drops *atomic.Uint64) {
	e.cmu.Lock()
	if e.detached {
		e.cmu.Unlock()
		drops.Add(1)
		return
	}
	select {
	case e.recv <- env:
		e.cmu.Unlock()
	default:
		e.cmu.Unlock()
		drops.Add(1)
	}
}

func (e *sessionEP) closeRecv() {
	e.cmu.Lock()
	if !e.detached {
		e.detached = true
		close(e.recv)
	}
	e.cmu.Unlock()
}
