package paxos

import (
	"fmt"
	"math/rand"
	"testing"

	"gridrep/internal/storage"
	"gridrep/internal/wire"
)

// TestRandomizedAgreement drives two competing proposers against five
// acceptors under randomized message schedules (delays, drops, and
// reordering simulated by executing a random interleaving of pending
// message deliveries) and asserts the single-decree Paxos invariant for
// every instance: once any quorum has accepted a value at some ballot
// and a later prepare completes, the later proposer is bound to that
// value — so two different values are never *chosen* for one instance.
func TestRandomizedAgreement(t *testing.T) {
	const (
		nAcceptors = 5
		rounds     = 60
	)
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			accs := make([]*Acceptor, nAcceptors)
			for i := range accs {
				a, err := NewAcceptor(storage.NewMem())
				if err != nil {
					t.Fatal(err)
				}
				accs[i] = a
			}
			quorum := Quorum(nAcceptors)

			// chosen[instance] records the first value observed to be
			// chosen (accepted by a quorum under one ballot).
			chosen := map[uint64]string{}

			// checkChosen scans acceptor states for quorum-accepted
			// values and verifies they never contradict.
			checkChosen := func() {
				counts := map[uint64]map[string]int{} // inst -> value -> quorum count at same ballot
				type slot struct {
					bal wire.Ballot
					val string
				}
				perAcc := map[uint64][]slot{}
				for _, a := range accs {
					for inst := uint64(1); inst <= 4; inst++ {
						if e, ok := a.Get(inst); ok {
							perAcc[inst] = append(perAcc[inst], slot{e.Bal, string(e.Prop.Reqs[0].Op)})
						}
					}
				}
				for inst, slots := range perAcc {
					byBal := map[wire.Ballot]map[string]int{}
					for _, s := range slots {
						if byBal[s.bal] == nil {
							byBal[s.bal] = map[string]int{}
						}
						byBal[s.bal][s.val]++
					}
					for _, vals := range byBal {
						for val, n := range vals {
							if n >= quorum {
								if counts[inst] == nil {
									counts[inst] = map[string]int{}
								}
								counts[inst][val] = n
							}
						}
					}
					for val := range counts[inst] {
						if prev, ok := chosen[inst]; ok && prev != val {
							t.Fatalf("instance %d chose both %q and %q", inst, prev, val)
						}
						chosen[inst] = val
					}
				}
			}

			// Two proposers fight over instances 1..3 with values named
			// after themselves.
			type propKey struct {
				bal  wire.Ballot
				inst uint64
			}
			type proposer struct {
				id    wire.NodeID
				bal   wire.Ballot
				prep  *PrepareRound
				ready bool // prepare reached a quorum
				// bound values per instance once prepare completes
				bound map[uint64]string
				// mine remembers this proposer's own (ballot, instance)
				// proposals: a correct proposer never proposes two
				// different values under the same proposal number.
				mine map[propKey]string
			}
			props := []*proposer{
				{id: 10, bound: map[uint64]string{}, mine: map[propKey]string{}},
				{id: 11, bound: map[uint64]string{}, mine: map[propKey]string{}},
			}

			for round := 0; round < rounds; round++ {
				p := props[rng.Intn(2)]
				switch rng.Intn(3) {
				case 0: // start a new prepare at a higher ballot
					p.bal = NextBallot(wire.Ballot{Round: p.bal.Round + uint64(rng.Intn(2)), Node: p.bal.Node}, p.id)
					p.prep = NewPrepareRound(p.bal, quorum)
					p.ready = false
					p.bound = map[uint64]string{}
					// Deliver the prepare to a random subset (message
					// loss), in random order.
					for _, i := range rng.Perm(nAcceptors) {
						if rng.Float64() < 0.3 {
							continue // dropped
						}
						pr, err := accs[i].OnPrepare(&wire.Prepare{Bal: p.bal, After: 0})
						if err != nil {
							t.Fatal(err)
						}
						done, _ := p.prep.Add(pr, wire.NodeID(i))
						if done {
							p.ready = true
							for _, e := range p.prep.Outcome(0) {
								p.bound[e.Instance] = string(e.Prop.Reqs[0].Op)
							}
							break
						}
					}
				case 1: // propose a value for a random instance
					if p.prep == nil || !p.ready {
						continue // phase 1 incomplete: proposing is illegal
					}
					inst := uint64(1 + rng.Intn(3))
					key := propKey{p.bal, inst}
					val, boundOK := p.bound[inst]
					if !boundOK {
						if prev, ok := p.mine[key]; ok {
							val = prev // same proposal number, same value
						} else {
							val = fmt.Sprintf("v-%d-%d-%d", p.id, inst, round)
						}
					}
					p.mine[key] = val
					entry := wire.Entry{
						Instance: inst,
						Prop: wire.Proposal{
							Reqs: []wire.Request{{Client: wire.ClientIDBase, Seq: uint64(round), Kind: wire.KindWrite, Op: []byte(val)}},
						},
					}
					for _, i := range rng.Perm(nAcceptors) {
						if rng.Float64() < 0.3 {
							continue
						}
						if _, err := accs[i].OnAccept(&wire.Accept{Bal: p.bal, Entries: []wire.Entry{entry}}); err != nil {
							t.Fatal(err)
						}
					}
					// A proposer that learned a bound value must keep
					// proposing it in later ballots too.
					if boundOK {
						p.bound[inst] = val
					}
				case 2: // no-op round (models delay)
				}
				checkChosen()
			}
		})
	}
}

// TestPromiseBindingProperty: after any history, a completed prepare that
// learned an accepted value for an instance must return it from Outcome,
// never silently drop it.
func TestPromiseBindingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		accs := make([]*Acceptor, 3)
		for i := range accs {
			accs[i], _ = NewAcceptor(storage.NewMem())
		}
		// Random acceptor subset accepts a value at a random ballot.
		val := fmt.Sprintf("v%d", iter)
		bal := wire.Ballot{Round: uint64(1 + rng.Intn(5)), Node: wire.NodeID(rng.Intn(3))}
		entry := wire.Entry{Instance: 1, Prop: wire.Proposal{
			Reqs: []wire.Request{{Client: wire.ClientIDBase, Seq: 1, Kind: wire.KindWrite, Op: []byte(val)}},
		}}
		holders := 0
		for i := range accs {
			if rng.Intn(2) == 0 {
				accs[i].OnAccept(&wire.Accept{Bal: bal, Entries: []wire.Entry{entry}})
				holders++
			}
		}
		// A higher-ballot prepare over ALL acceptors must learn the
		// value iff any holder exists.
		hi := wire.Ballot{Round: bal.Round + 1, Node: 2}
		r := NewPrepareRound(hi, Quorum(3))
		for i := range accs {
			pr, _ := accs[i].OnPrepare(&wire.Prepare{Bal: hi, After: 0})
			r.Add(pr, wire.NodeID(i))
		}
		out := r.Outcome(0)
		if holders > 0 {
			if len(out) != 1 || string(out[0].Prop.Reqs[0].Op) != val {
				t.Fatalf("iter %d: prepare over all acceptors lost the value (holders=%d)", iter, holders)
			}
		} else if len(out) != 0 {
			t.Fatalf("iter %d: prepare invented a value", iter)
		}
	}
}
