// Package paxos implements the consensus substrate of the replication
// protocol: the acceptor state machine (phase 1b / 2b), proposer-side
// round aggregation (phase 1a / 2a bookkeeping), and the multi-instance
// recovery bookkeeping of §3.3 — a new leader prepares all unknown
// instances with a single message, and acceptors answer with the accepted
// proposals they know, attaching service state only to the highest
// instance because replicas only ever need the latest state.
package paxos

import (
	"sort"

	"gridrep/internal/storage"
	"gridrep/internal/wire"
)

// Acceptor is the persistent voter role of a replica. It is driven by the
// replica's single event-loop goroutine and is not safe for concurrent
// use. Every state change is written through to stable storage before the
// corresponding protocol answer is returned, preserving safety across
// crash-recovery (§3.1).
type Acceptor struct {
	store storage.Store
	st    *storage.PersistentState
}

// NewAcceptor loads (or initializes) acceptor state from store.
func NewAcceptor(store storage.Store) (*Acceptor, error) {
	st, err := store.Load()
	if err != nil {
		return nil, err
	}
	return &Acceptor{store: store, st: st}, nil
}

// Promised returns the highest promised ballot.
func (a *Acceptor) Promised() wire.Ballot { return a.st.Promised }

// MaxAccepted returns the highest ballot among accepted proposals; the
// X-Paxos confirm path routes confirms to this ballot's proposer (§3.4).
func (a *Acceptor) MaxAccepted() wire.Ballot { return a.st.MaxAccepted }

// Chosen returns the commit index: every instance <= Chosen is chosen.
func (a *Acceptor) Chosen() uint64 { return a.st.Chosen }

// Get returns the accepted proposal for an instance, if any.
func (a *Acceptor) Get(inst uint64) (wire.Entry, bool) {
	return a.st.Accepted.Get(inst)
}

// MaxInstance returns the highest instance with an accepted proposal, or
// 0 when none exists.
func (a *Acceptor) MaxInstance() uint64 {
	return a.st.Accepted.Max()
}

// OnPrepare handles a phase-1a message and returns the promise to send
// back. A prepare with a ballot not smaller than the current promise
// succeeds (Paxos accepts re-prepares at the same ballot idempotently).
func (a *Acceptor) OnPrepare(p *wire.Prepare) (*wire.Promise, error) {
	if p.Bal.Less(a.st.Promised) {
		return &wire.Promise{Bal: p.Bal, OK: false, MaxProm: a.st.Promised, Chosen: a.st.Chosen}, nil
	}
	if a.st.Promised.Less(p.Bal) {
		if err := a.store.SetPromised(p.Bal); err != nil {
			return nil, err
		}
		a.st.Promised = p.Bal
	}
	return &wire.Promise{
		Bal:     p.Bal,
		OK:      true,
		Entries: a.entriesFor(p.After, p.Gaps),
		Chosen:  a.st.Chosen,
	}, nil
}

// entriesFor collects the accepted proposals for the prepared range: the
// listed gap instances plus everything above after. State is attached
// only to the highest instance (§3.3: "does not include the states after
// executing 88 or 89 since the replicas are only interested in the latest
// state").
func (a *Acceptor) entriesFor(after uint64, gaps []uint64) []wire.Entry {
	var out []wire.Entry
	for _, g := range gaps {
		if e, ok := a.st.Accepted.Get(g); ok && g <= after {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Instance < out[j].Instance })
	a.st.Accepted.Ascend(after, 0, func(e wire.Entry) bool {
		out = append(out, e)
		return true
	})
	stripIntermediateFullStates(out)
	return out
}

// stripIntermediateFullStates removes full snapshots from all but the
// final entry (§3.3: replicas only care about the latest state). Deltas
// are kept everywhere — each one is needed to rebuild the sequence.
func stripIntermediateFullStates(out []wire.Entry) {
	for i := range out {
		if i < len(out)-1 && out[i].Prop.HasState && out[i].Prop.Kind == wire.StateFull {
			cp := out[i].Prop
			cp.HasState = false
			cp.State = nil
			out[i].Prop = cp
		}
	}
}

// OnAccept handles a phase-2a message and returns the vote. Accepting a
// ballot implies promising it (a process accepts any proposal with a
// ballot number no smaller than the ones it has already promised).
func (a *Acceptor) OnAccept(ac *wire.Accept) (*wire.Accepted, error) {
	if ac.Bal.Less(a.st.Promised) {
		return &wire.Accepted{Bal: ac.Bal, OK: false, MaxProm: a.st.Promised}, nil
	}
	if a.st.Promised.Less(ac.Bal) {
		if err := a.store.SetPromised(ac.Bal); err != nil {
			return nil, err
		}
		a.st.Promised = ac.Bal
	}
	stamped := make([]wire.Entry, len(ac.Entries))
	insts := make([]uint64, len(ac.Entries))
	for i, e := range ac.Entries {
		e.Bal = ac.Bal
		stamped[i] = e
		insts[i] = e.Instance
	}
	if err := a.store.PutAccepted(stamped, ac.Bal); err != nil {
		return nil, err
	}
	for _, e := range stamped {
		a.st.Accepted.Put(e)
	}
	if a.st.MaxAccepted.Less(ac.Bal) {
		a.st.MaxAccepted = ac.Bal
	}
	return &wire.Accepted{Bal: ac.Bal, OK: true, Instances: insts}, nil
}

// MarkChosen durably advances the commit index.
func (a *Acceptor) MarkChosen(idx uint64) error {
	if idx <= a.st.Chosen {
		return nil
	}
	if err := a.store.SetChosen(idx); err != nil {
		return err
	}
	a.st.Chosen = idx
	return nil
}

// Compact drops state payloads below keepStateFrom from storage; the
// requests are retained for leader recovery.
func (a *Acceptor) Compact(keepStateFrom uint64) error {
	if err := a.store.Compact(keepStateFrom); err != nil {
		return err
	}
	a.st.Accepted.StripStatesBelow(keepStateFrom)
	return nil
}

// EntriesBetween returns the accepted entries with lo < instance <= hi in
// instance order, for catch-up responses. State is attached only to the
// final entry, matching the §3.3 convention.
func (a *Acceptor) EntriesBetween(lo, hi uint64) []wire.Entry {
	var out []wire.Entry
	a.st.Accepted.Ascend(lo, hi, func(e wire.Entry) bool {
		out = append(out, e)
		return true
	})
	stripIntermediateFullStates(out)
	return out
}

// ServiceSnapshot returns the durable service snapshot and the instance
// it is valid after, if any.
func (a *Acceptor) ServiceSnapshot() ([]byte, uint64) {
	return a.st.ServiceSnap, a.st.ServiceSnapAt
}

// SaveSnapshot durably records the service snapshot valid after applying
// instance at; it is the guard that makes PruneTo safe.
func (a *Acceptor) SaveSnapshot(snap []byte, at uint64) error {
	if err := a.store.SaveSnapshot(snap, at); err != nil {
		return err
	}
	a.st.ApplySnapshot(snap, at)
	return nil
}

// Members returns the persisted membership and the instance that decided
// it; nil members means the boot-time static configuration.
func (a *Acceptor) Members() (members, learners []wire.NodeID, at uint64) {
	return a.st.Members, a.st.Learners, a.st.MembersAt
}

// SetMembers durably records the membership decided at instance at.
func (a *Acceptor) SetMembers(members, learners []wire.NodeID, at uint64) error {
	if err := a.store.SetMembers(members, learners, at); err != nil {
		return err
	}
	a.st.ApplyMembers(members, learners, at)
	return nil
}

// PrunedTo returns the pruned-prefix bound: entries <= PrunedTo are gone.
func (a *Acceptor) PrunedTo() uint64 { return a.st.PrunedTo }

// PruneTo discards accepted entries below keepFrom (clamped by the store
// to the durable service snapshot).
func (a *Acceptor) PruneTo(keepFrom uint64) error {
	if err := a.store.PruneTo(keepFrom); err != nil {
		return err
	}
	if keepFrom > a.st.ServiceSnapAt+1 {
		keepFrom = a.st.ServiceSnapAt + 1
	}
	a.st.Accepted.PruneTo(keepFrom)
	if keepFrom > 0 && keepFrom-1 > a.st.PrunedTo {
		a.st.PrunedTo = keepFrom - 1
	}
	return nil
}

// Install stores already-chosen entries learned through catch-up, keeping
// their original ballots, and advances the commit index. Chosen values
// are unique per instance, so overwriting a locally accepted proposal
// with a chosen one is always safe.
func (a *Acceptor) Install(entries []wire.Entry, chosen uint64) error {
	if len(entries) > 0 {
		var maxBal wire.Ballot
		for _, e := range entries {
			if maxBal.Less(e.Bal) {
				maxBal = e.Bal
			}
		}
		if err := a.store.PutAccepted(entries, maxBal); err != nil {
			return err
		}
		for _, e := range entries {
			a.st.Accepted.Put(e)
		}
		if a.st.MaxAccepted.Less(maxBal) {
			a.st.MaxAccepted = maxBal
		}
	}
	return a.MarkChosen(chosen)
}
