package paxos

import (
	"sort"

	"gridrep/internal/wire"
)

// NextBallot returns the smallest ballot owned by self that is strictly
// greater than cur.
func NextBallot(cur wire.Ballot, self wire.NodeID) wire.Ballot {
	b := wire.Ballot{Round: cur.Round, Node: self}
	if !cur.Less(b) {
		b.Round = cur.Round + 1
	}
	return b
}

// Quorum returns the majority size for n replicas: floor(n/2)+1, so that
// at most floor((n-1)/2) crashes are tolerated (§3.1).
func Quorum(n int) int { return n/2 + 1 }

// PrepareRound aggregates phase-1b promises for one ballot.
type PrepareRound struct {
	Bal      wire.Ballot
	quorum   int
	promised map[wire.NodeID]bool
	rejected bool
	maxProm  wire.Ballot

	entries   map[uint64]wire.Entry // highest-ballot proposal per instance
	maxChosen uint64
}

// NewPrepareRound starts bookkeeping for a prepare at bal needing quorum
// positive promises.
func NewPrepareRound(bal wire.Ballot, quorum int) *PrepareRound {
	return &PrepareRound{
		Bal:      bal,
		quorum:   quorum,
		promised: make(map[wire.NodeID]bool),
		entries:  make(map[uint64]wire.Entry),
	}
}

// Add folds one promise in. It returns done=true once a majority has
// promised, and rejected=true if any acceptor reported a higher promise
// (the round is then dead and the caller should retry with a higher
// ballot after rejoining as a backup).
func (r *PrepareRound) Add(p *wire.Promise, from wire.NodeID) (done, rejected bool) {
	if !p.Bal.Equal(r.Bal) || r.rejected {
		return false, r.rejected
	}
	if !p.OK {
		r.rejected = true
		if r.maxProm.Less(p.MaxProm) {
			r.maxProm = p.MaxProm
		}
		return false, true
	}
	if r.promised[from] {
		return len(r.promised) >= r.quorum, false
	}
	r.promised[from] = true
	if p.Chosen > r.maxChosen {
		r.maxChosen = p.Chosen
	}
	for _, e := range p.Entries {
		cur, ok := r.entries[e.Instance]
		if !ok || cur.Bal.Less(e.Bal) {
			r.entries[e.Instance] = e
		} else if cur.Bal.Equal(e.Bal) && !cur.Prop.HasState && e.Prop.HasState {
			// Same ballot seen twice; prefer the copy carrying state.
			r.entries[e.Instance] = e
		}
	}
	return len(r.promised) >= r.quorum, false
}

// MaxPromSeen returns the highest conflicting promise reported by a
// rejecting acceptor.
func (r *PrepareRound) MaxPromSeen() wire.Ballot { return r.maxProm }

// MaxChosen returns the highest commit index reported by any promiser.
func (r *PrepareRound) MaxChosen() uint64 { return r.maxChosen }

// Outcome returns the proposals the new leader is bound to (instances
// above chosen, in order). Per Paxos, the leader may only propose values
// consistent with the highest-ballot proposals learned; instances with no
// learned proposal below the top must be filled with no-ops by the
// caller. Entries at or below chosen are dropped — they are already
// decided and will be fetched by catch-up if the leader lacks them.
func (r *PrepareRound) Outcome(chosen uint64) []wire.Entry {
	var out []wire.Entry
	for inst, e := range r.entries {
		if inst > chosen {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Instance < out[j].Instance })
	return out
}

// OutcomePrefix is Outcome for engines whose decided values chain across
// instances — the <req, state> tuples of §3.3, where state i is computed
// on top of state i−1. Such an engine may pipeline accept waves, so the
// learned suffix can contain speculative instances whose predecessors
// were never accepted anywhere. Adopting those would graft a state built
// on discarded history onto the log, so the new leader binds itself only
// to the longest adoptable prefix:
//
//   - adoption walks instances chosen+1, chosen+2, ... and stops at the
//     first gap — an instance past a gap depends on a predecessor no
//     quorum member accepted, hence (by quorum intersection) on an
//     uncommitted predecessor, hence it cannot itself be committed;
//   - adoption also stops at the first ballot regression below floor,
//     the ballot that committed the chosen prefix (committed ballots are
//     non-decreasing in instance order, so a lower-ballot straggler is a
//     leftover from a superseded leader whose slot was since redefined).
//
// It returns the adopted prefix in instance order plus the number of
// learned entries discarded; the caller re-proposes the prefix and
// reuses the discarded instances under its own higher ballot.
func (r *PrepareRound) OutcomePrefix(chosen uint64, floor wire.Ballot) (adopted []wire.Entry, discarded int) {
	learned := r.Outcome(chosen)
	next := chosen + 1
	for _, e := range learned {
		if e.Instance != next || e.Bal.Less(floor) {
			break
		}
		floor = e.Bal
		adopted = append(adopted, e)
		next++
	}
	return adopted, len(learned) - len(adopted)
}

// AcceptRound aggregates phase-2b votes for one accept wave (one message
// possibly covering several instances, per §3.3).
type AcceptRound struct {
	Bal       wire.Ballot
	Top       uint64 // highest instance in the wave
	quorum    int
	acks      map[wire.NodeID]bool
	rejected  bool
	maxProm   wire.Ballot
	instances []uint64
}

// NewAcceptRound starts bookkeeping for an accept wave.
func NewAcceptRound(bal wire.Ballot, instances []uint64, quorum int) *AcceptRound {
	var top uint64
	for _, i := range instances {
		if i > top {
			top = i
		}
	}
	return &AcceptRound{
		Bal:       bal,
		Top:       top,
		quorum:    quorum,
		acks:      make(map[wire.NodeID]bool),
		instances: instances,
	}
}

// Add folds one vote in; semantics mirror PrepareRound.Add. A positive
// vote only counts when it acknowledges this wave's instances — without
// that check, a straggler ack from the previous wave (same ballot!)
// would let the next wave commit before any backup accepted it,
// breaking the quorum-durability guarantee.
func (r *AcceptRound) Add(a *wire.Accepted, from wire.NodeID) (done, rejected bool) {
	if !a.Bal.Equal(r.Bal) || r.rejected {
		return false, r.rejected
	}
	if !a.OK {
		r.rejected = true
		if r.maxProm.Less(a.MaxProm) {
			r.maxProm = a.MaxProm
		}
		return false, true
	}
	if !r.covers(a.Instances) {
		return false, false // stale ack from an earlier wave
	}
	r.acks[from] = true
	return len(r.acks) >= r.quorum, false
}

// covers reports whether acked includes every instance of this wave.
func (r *AcceptRound) covers(acked []uint64) bool {
	if len(acked) < len(r.instances) {
		return false
	}
	set := make(map[uint64]bool, len(acked))
	for _, i := range acked {
		set[i] = true
	}
	for _, i := range r.instances {
		if !set[i] {
			return false
		}
	}
	return true
}

// MaxPromSeen returns the highest conflicting promise reported by a
// rejecting acceptor.
func (r *AcceptRound) MaxPromSeen() wire.Ballot { return r.maxProm }

// Instances returns the wave's instance numbers.
func (r *AcceptRound) Instances() []uint64 { return r.instances }
