package paxos

import (
	"testing"
	"testing/quick"

	"gridrep/internal/storage"
	"gridrep/internal/wire"
)

func newAcc(t *testing.T) *Acceptor {
	t.Helper()
	a, err := NewAcceptor(storage.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func bal(round uint64, node wire.NodeID) wire.Ballot { return wire.Ballot{Round: round, Node: node} }

func ent(inst uint64, op string, withState bool) wire.Entry {
	e := wire.Entry{
		Instance: inst,
		Prop: wire.Proposal{
			Reqs:    []wire.Request{{Client: wire.ClientIDBase, Seq: inst, Kind: wire.KindWrite, Op: []byte(op)}},
			Results: [][]byte{[]byte("ok")},
		},
	}
	if withState {
		e.Prop.HasState = true
		e.Prop.State = []byte("s" + op)
	}
	return e
}

func TestNextBallot(t *testing.T) {
	if b := NextBallot(wire.Ballot{}, 2); !b.Equal(bal(0, 2)) {
		t.Errorf("NextBallot(zero, 2) = %v, want (0.2)", b)
	}
	if b := NextBallot(bal(0, 2), 1); !b.Equal(bal(1, 1)) {
		t.Errorf("NextBallot((0.2), 1) = %v, want (1.1)", b)
	}
	if b := NextBallot(bal(3, 1), 2); !b.Equal(bal(3, 2)) {
		t.Errorf("NextBallot((3.1), 2) = %v, want (3.2)", b)
	}
	f := func(round uint64, node, self uint32) bool {
		cur := wire.Ballot{Round: round % (1 << 60), Node: wire.NodeID(node)}
		next := NextBallot(cur, wire.NodeID(self))
		return cur.Less(next) && next.Node == wire.NodeID(self)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuorum(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 7: 4} {
		if got := Quorum(n); got != want {
			t.Errorf("Quorum(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAcceptorPromise(t *testing.T) {
	a := newAcc(t)
	p, err := a.OnPrepare(&wire.Prepare{Bal: bal(1, 0)})
	if err != nil || !p.OK {
		t.Fatalf("first prepare rejected: %+v err=%v", p, err)
	}
	// Lower ballot must be rejected with the blocking promise.
	p2, _ := a.OnPrepare(&wire.Prepare{Bal: bal(0, 5)})
	if p2.OK || !p2.MaxProm.Equal(bal(1, 0)) {
		t.Fatalf("lower prepare accepted: %+v", p2)
	}
	// Re-prepare at the same ballot is idempotent.
	p3, _ := a.OnPrepare(&wire.Prepare{Bal: bal(1, 0)})
	if !p3.OK {
		t.Fatalf("same-ballot re-prepare rejected: %+v", p3)
	}
}

func TestAcceptorAcceptBelowPromiseRejected(t *testing.T) {
	a := newAcc(t)
	a.OnPrepare(&wire.Prepare{Bal: bal(5, 1)})
	acc, _ := a.OnAccept(&wire.Accept{Bal: bal(4, 0), Entries: []wire.Entry{ent(1, "x", true)}})
	if acc.OK || !acc.MaxProm.Equal(bal(5, 1)) {
		t.Fatalf("accept below promise not rejected: %+v", acc)
	}
	if _, ok := a.Get(1); ok {
		t.Fatal("rejected proposal must not be stored")
	}
}

func TestAcceptImpliesPromise(t *testing.T) {
	a := newAcc(t)
	acc, _ := a.OnAccept(&wire.Accept{Bal: bal(3, 1), Entries: []wire.Entry{ent(1, "x", true)}})
	if !acc.OK {
		t.Fatalf("accept rejected: %+v", acc)
	}
	if !a.Promised().Equal(bal(3, 1)) {
		t.Fatalf("accept must imply promise; promised=%v", a.Promised())
	}
	// A prepare below the implied promise must now fail.
	p, _ := a.OnPrepare(&wire.Prepare{Bal: bal(2, 2)})
	if p.OK {
		t.Fatal("prepare below implied promise succeeded")
	}
}

func TestAcceptStampsBallot(t *testing.T) {
	a := newAcc(t)
	a.OnAccept(&wire.Accept{Bal: bal(2, 0), Entries: []wire.Entry{ent(7, "x", true)}})
	e, ok := a.Get(7)
	if !ok || !e.Bal.Equal(bal(2, 0)) {
		t.Fatalf("stored entry ballot = %+v", e)
	}
	if !a.MaxAccepted().Equal(bal(2, 0)) {
		t.Fatalf("MaxAccepted = %v", a.MaxAccepted())
	}
}

func TestAcceptorHigherBallotOverwrites(t *testing.T) {
	a := newAcc(t)
	a.OnAccept(&wire.Accept{Bal: bal(1, 0), Entries: []wire.Entry{ent(1, "old", true)}})
	a.OnAccept(&wire.Accept{Bal: bal(2, 1), Entries: []wire.Entry{ent(1, "new", true)}})
	e, _ := a.Get(1)
	if string(e.Prop.Reqs[0].Op) != "new" || !e.Bal.Equal(bal(2, 1)) {
		t.Fatalf("higher ballot did not overwrite: %+v", e)
	}
}

func TestPromiseEntriesStateOnlyOnTop(t *testing.T) {
	a := newAcc(t)
	// Three accept waves; each wave's top has state.
	a.OnAccept(&wire.Accept{Bal: bal(1, 0), Entries: []wire.Entry{ent(1, "a", true)}})
	a.OnAccept(&wire.Accept{Bal: bal(1, 0), Entries: []wire.Entry{ent(2, "b", true)}})
	a.OnAccept(&wire.Accept{Bal: bal(1, 0), Entries: []wire.Entry{ent(3, "c", true)}})
	p, _ := a.OnPrepare(&wire.Prepare{Bal: bal(2, 1), After: 0})
	if len(p.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(p.Entries))
	}
	for i, e := range p.Entries {
		wantState := i == len(p.Entries)-1
		if e.Prop.HasState != wantState {
			t.Errorf("entry %d HasState = %v, want %v (§3.3 latest-state rule)",
				e.Instance, e.Prop.HasState, wantState)
		}
	}
}

func TestPromiseEntriesGapsAndAfter(t *testing.T) {
	a := newAcc(t)
	for _, inst := range []uint64{88, 89, 91, 92} {
		a.OnAccept(&wire.Accept{Bal: bal(1, 0), Entries: []wire.Entry{ent(inst, "x", true)}})
	}
	// The paper's recovery example: leader knows 1-87 and 90; prepares
	// gaps {88,89} plus everything above 90.
	p, _ := a.OnPrepare(&wire.Prepare{Bal: bal(2, 1), After: 90, Gaps: []uint64{88, 89}})
	got := map[uint64]bool{}
	for _, e := range p.Entries {
		got[e.Instance] = true
	}
	for _, want := range []uint64{88, 89, 91, 92} {
		if !got[want] {
			t.Errorf("instance %d missing from promise", want)
		}
	}
	if len(got) != 4 {
		t.Errorf("unexpected extra entries: %v", got)
	}
}

func TestMarkChosenAndCompact(t *testing.T) {
	a := newAcc(t)
	for _, inst := range []uint64{1, 2, 3} {
		a.OnAccept(&wire.Accept{Bal: bal(1, 0), Entries: []wire.Entry{ent(inst, "x", true)}})
	}
	if err := a.MarkChosen(3); err != nil {
		t.Fatal(err)
	}
	if a.Chosen() != 3 {
		t.Fatalf("Chosen = %d", a.Chosen())
	}
	a.MarkChosen(2) // regression must be ignored
	if a.Chosen() != 3 {
		t.Fatal("chosen regressed")
	}
	if err := a.Compact(3); err != nil {
		t.Fatal(err)
	}
	for inst := uint64(1); inst <= 2; inst++ {
		e, _ := a.Get(inst)
		if e.Prop.HasState {
			t.Errorf("instance %d kept state after compact", inst)
		}
		if len(e.Prop.Reqs) == 0 {
			t.Errorf("instance %d lost requests after compact", inst)
		}
	}
	if e, _ := a.Get(3); !e.Prop.HasState {
		t.Error("latest instance must keep state")
	}
}

func TestEntriesBetween(t *testing.T) {
	a := newAcc(t)
	for _, inst := range []uint64{5, 6, 7, 8} {
		a.OnAccept(&wire.Accept{Bal: bal(1, 0), Entries: []wire.Entry{ent(inst, "x", true)}})
	}
	es := a.EntriesBetween(5, 7)
	if len(es) != 2 || es[0].Instance != 6 || es[1].Instance != 7 {
		t.Fatalf("EntriesBetween(5,7) = %+v", es)
	}
	if es[0].Prop.HasState || !es[1].Prop.HasState {
		t.Error("state must be attached only to the final entry")
	}
}

func TestMaxInstance(t *testing.T) {
	a := newAcc(t)
	if a.MaxInstance() != 0 {
		t.Fatal("empty acceptor MaxInstance must be 0")
	}
	a.OnAccept(&wire.Accept{Bal: bal(1, 0), Entries: []wire.Entry{ent(4, "x", true), ent(9, "y", true)}})
	if a.MaxInstance() != 9 {
		t.Fatalf("MaxInstance = %d", a.MaxInstance())
	}
}

func TestAcceptorRecoveryFromStore(t *testing.T) {
	st := storage.NewMem()
	a1, _ := NewAcceptor(st)
	a1.OnPrepare(&wire.Prepare{Bal: bal(3, 1)})
	a1.OnAccept(&wire.Accept{Bal: bal(3, 1), Entries: []wire.Entry{ent(1, "x", true)}})
	a1.MarkChosen(1)

	// Crash: rebuild from the same store.
	a2, err := NewAcceptor(st)
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Promised().Equal(bal(3, 1)) || a2.Chosen() != 1 {
		t.Fatalf("recovered state wrong: promised=%v chosen=%d", a2.Promised(), a2.Chosen())
	}
	// Safety: the recovered acceptor must still honor its promise.
	p, _ := a2.OnPrepare(&wire.Prepare{Bal: bal(2, 0)})
	if p.OK {
		t.Fatal("recovered acceptor violated its promise")
	}
}

func TestPrepareRoundQuorum(t *testing.T) {
	r := NewPrepareRound(bal(2, 0), 2)
	done, rej := r.Add(&wire.Promise{Bal: bal(2, 0), OK: true, Chosen: 5}, 1)
	if done || rej {
		t.Fatalf("one promise should not reach quorum of 2")
	}
	// Duplicate from the same node must not count twice.
	done, _ = r.Add(&wire.Promise{Bal: bal(2, 0), OK: true}, 1)
	if done {
		t.Fatal("duplicate promise counted twice")
	}
	done, _ = r.Add(&wire.Promise{Bal: bal(2, 0), OK: true, Chosen: 7}, 2)
	if !done {
		t.Fatal("two promises should reach quorum")
	}
	if r.MaxChosen() != 7 {
		t.Fatalf("MaxChosen = %d", r.MaxChosen())
	}
}

func TestPrepareRoundRejection(t *testing.T) {
	r := NewPrepareRound(bal(2, 0), 2)
	_, rej := r.Add(&wire.Promise{Bal: bal(2, 0), OK: false, MaxProm: bal(9, 1)}, 1)
	if !rej {
		t.Fatal("rejection not detected")
	}
	if !r.MaxPromSeen().Equal(bal(9, 1)) {
		t.Fatalf("MaxPromSeen = %v", r.MaxPromSeen())
	}
	// Later promises cannot resurrect a rejected round.
	done, rej := r.Add(&wire.Promise{Bal: bal(2, 0), OK: true}, 2)
	if done || !rej {
		t.Fatal("rejected round must stay rejected")
	}
}

func TestPrepareRoundIgnoresStaleBallot(t *testing.T) {
	r := NewPrepareRound(bal(2, 0), 1)
	done, _ := r.Add(&wire.Promise{Bal: bal(1, 0), OK: true}, 1)
	if done {
		t.Fatal("stale-ballot promise must be ignored")
	}
}

func TestPrepareRoundHighestBallotWinsPerInstance(t *testing.T) {
	r := NewPrepareRound(bal(5, 0), 2)
	lo := ent(10, "old", true)
	lo.Bal = bal(1, 1)
	hi := ent(10, "new", true)
	hi.Bal = bal(2, 2)
	r.Add(&wire.Promise{Bal: bal(5, 0), OK: true, Entries: []wire.Entry{lo}}, 1)
	r.Add(&wire.Promise{Bal: bal(5, 0), OK: true, Entries: []wire.Entry{hi}}, 2)
	out := r.Outcome(0)
	if len(out) != 1 || string(out[0].Prop.Reqs[0].Op) != "new" {
		t.Fatalf("Outcome = %+v, want the ballot-(2.2) proposal", out)
	}
}

func TestPrepareRoundOutcomeDropsChosen(t *testing.T) {
	r := NewPrepareRound(bal(5, 0), 1)
	e1, e2 := ent(3, "a", false), ent(4, "b", true)
	e1.Bal, e2.Bal = bal(1, 0), bal(1, 0)
	r.Add(&wire.Promise{Bal: bal(5, 0), OK: true, Entries: []wire.Entry{e1, e2}, Chosen: 3}, 1)
	out := r.Outcome(3)
	if len(out) != 1 || out[0].Instance != 4 {
		t.Fatalf("Outcome(3) = %+v, want only instance 4", out)
	}
}

func TestPrepareRoundPrefersStateCopyAtEqualBallot(t *testing.T) {
	r := NewPrepareRound(bal(5, 0), 2)
	noState := ent(10, "x", false)
	noState.Bal = bal(2, 0)
	withState := ent(10, "x", true)
	withState.Bal = bal(2, 0)
	r.Add(&wire.Promise{Bal: bal(5, 0), OK: true, Entries: []wire.Entry{noState}}, 1)
	r.Add(&wire.Promise{Bal: bal(5, 0), OK: true, Entries: []wire.Entry{withState}}, 2)
	out := r.Outcome(0)
	if len(out) != 1 || !out[0].Prop.HasState {
		t.Fatalf("Outcome = %+v, want the state-carrying copy", out)
	}
}

func TestAcceptRound(t *testing.T) {
	r := NewAcceptRound(bal(2, 0), []uint64{88, 89, 91}, 2)
	if r.Top != 91 {
		t.Fatalf("Top = %d", r.Top)
	}
	ack := func() *wire.Accepted {
		return &wire.Accepted{Bal: bal(2, 0), OK: true, Instances: []uint64{88, 89, 91}}
	}
	done, _ := r.Add(ack(), 0)
	if done {
		t.Fatal("quorum too early")
	}
	done, _ = r.Add(ack(), 0) // dup
	if done {
		t.Fatal("duplicate ack counted")
	}
	done, _ = r.Add(ack(), 1)
	if !done {
		t.Fatal("quorum not reached with two distinct acks")
	}
}

func TestAcceptRoundRejection(t *testing.T) {
	r := NewAcceptRound(bal(2, 0), []uint64{1}, 2)
	_, rej := r.Add(&wire.Accepted{Bal: bal(2, 0), OK: false, MaxProm: bal(7, 2)}, 1)
	if !rej || !r.MaxPromSeen().Equal(bal(7, 2)) {
		t.Fatalf("rejection handling wrong: rej=%v maxProm=%v", rej, r.MaxPromSeen())
	}
}

// TestAgreementProperty simulates competing proposers against a bank of
// acceptors and checks Paxos single-instance agreement: once a quorum
// accepts ballot b's value and no higher ballot interferes below quorum,
// any later prepare learns that value.
func TestAgreementProperty(t *testing.T) {
	const n = 5
	accs := make([]*Acceptor, n)
	for i := range accs {
		accs[i] = newAcc(t)
	}
	// Proposer A gets its value accepted by a quorum at ballot (1,0).
	valA := ent(1, "A", true)
	q := 0
	for i := 0; i < 3; i++ {
		acc, _ := accs[i].OnAccept(&wire.Accept{Bal: bal(1, 0), Entries: []wire.Entry{valA}})
		if acc.OK {
			q++
		}
	}
	if q < Quorum(n) {
		t.Fatal("setup failed")
	}
	// Proposer B prepares a higher ballot at an arbitrary majority; it
	// must learn A's value for instance 1.
	r := NewPrepareRound(bal(2, 1), Quorum(n))
	for _, idx := range []int{2, 3, 4} {
		p, _ := accs[idx].OnPrepare(&wire.Prepare{Bal: bal(2, 1), After: 0})
		r.Add(p, wire.NodeID(idx))
	}
	out := r.Outcome(0)
	if len(out) != 1 || string(out[0].Prop.Reqs[0].Op) != "A" {
		t.Fatalf("new leader failed to learn the accepted value: %+v", out)
	}
}

// prepEnt is ent() with an explicit ballot, for OutcomePrefix tests.
func prepEnt(inst uint64, op string, b wire.Ballot) wire.Entry {
	e := ent(inst, op, true)
	e.Bal = b
	return e
}

func TestOutcomePrefixAdoptsDenseSuffix(t *testing.T) {
	r := NewPrepareRound(bal(5, 0), 1)
	r.Add(&wire.Promise{Bal: bal(5, 0), OK: true, Chosen: 3, Entries: []wire.Entry{
		prepEnt(4, "a", bal(1, 0)), prepEnt(5, "b", bal(1, 0)), prepEnt(6, "c", bal(2, 1)),
	}}, 1)
	adopted, discarded := r.OutcomePrefix(3, bal(1, 0))
	if len(adopted) != 3 || discarded != 0 {
		t.Fatalf("adopted=%d discarded=%d, want 3/0", len(adopted), discarded)
	}
	for i, e := range adopted {
		if e.Instance != uint64(4+i) {
			t.Fatalf("adopted[%d].Instance = %d", i, e.Instance)
		}
	}
}

func TestOutcomePrefixStopsAtGap(t *testing.T) {
	// Instance 5 is missing: 6 and 7 are speculative waves whose
	// predecessor never survived; they cannot be committed and must go.
	r := NewPrepareRound(bal(5, 0), 1)
	r.Add(&wire.Promise{Bal: bal(5, 0), OK: true, Chosen: 3, Entries: []wire.Entry{
		prepEnt(4, "a", bal(1, 0)), prepEnt(6, "c", bal(1, 0)), prepEnt(7, "d", bal(1, 0)),
	}}, 1)
	adopted, discarded := r.OutcomePrefix(3, bal(1, 0))
	if len(adopted) != 1 || adopted[0].Instance != 4 || discarded != 2 {
		t.Fatalf("adopted=%+v discarded=%d, want only instance 4, 2 discarded", adopted, discarded)
	}
}

func TestOutcomePrefixStopsAtBallotRegression(t *testing.T) {
	// Instance 5 carries a lower ballot than 4: a stale straggler from a
	// deposed leader. Committed ballots are non-decreasing in instance
	// order, so it cannot be committed.
	r := NewPrepareRound(bal(5, 0), 1)
	r.Add(&wire.Promise{Bal: bal(5, 0), OK: true, Chosen: 3, Entries: []wire.Entry{
		prepEnt(4, "a", bal(2, 1)), prepEnt(5, "b", bal(1, 0)),
	}}, 1)
	adopted, discarded := r.OutcomePrefix(3, bal(1, 0))
	if len(adopted) != 1 || adopted[0].Instance != 4 || discarded != 1 {
		t.Fatalf("adopted=%+v discarded=%d, want only instance 4", adopted, discarded)
	}
	// And a suffix entirely below the floor (the committed ballot at
	// chosen) is discarded outright.
	adopted, discarded = r.OutcomePrefix(3, bal(3, 0))
	if len(adopted) != 0 || discarded != 2 {
		t.Fatalf("below-floor suffix survived: adopted=%+v discarded=%d", adopted, discarded)
	}
}

func TestAcceptorOutOfOrderSameBallot(t *testing.T) {
	// Pipelined leaders send wave i+1 before wave i is acked; losses can
	// reorder arrival. The acceptor must take same-ballot instances in any
	// order — gap-freedom is enforced at commit time, not accept time.
	a := newAcc(t)
	acc, _ := a.OnAccept(&wire.Accept{Bal: bal(2, 0), Entries: []wire.Entry{ent(5, "later", true)}})
	if !acc.OK {
		t.Fatalf("out-of-order accept rejected: %+v", acc)
	}
	acc, _ = a.OnAccept(&wire.Accept{Bal: bal(2, 0), Entries: []wire.Entry{ent(4, "earlier", true)}})
	if !acc.OK {
		t.Fatalf("gap-filling accept rejected: %+v", acc)
	}
	for _, inst := range []uint64{4, 5} {
		if _, ok := a.Get(inst); !ok {
			t.Fatalf("instance %d not stored", inst)
		}
	}
}

func TestAcceptRoundIgnoresStaleWaveAcks(t *testing.T) {
	// A straggler ack from the previous wave (same ballot, older
	// instances) must not count toward the current wave's quorum —
	// otherwise the leader commits entries no backup has accepted.
	r := NewAcceptRound(bal(2, 0), []uint64{5}, 2)
	done, rej := r.Add(&wire.Accepted{Bal: bal(2, 0), OK: true, Instances: []uint64{4}}, 1)
	if done || rej {
		t.Fatal("stale-instance ack counted toward quorum")
	}
	// Partial coverage of a multi-instance wave is also stale.
	r2 := NewAcceptRound(bal(2, 0), []uint64{5, 6}, 2)
	if done, _ := r2.Add(&wire.Accepted{Bal: bal(2, 0), OK: true, Instances: []uint64{5}}, 1); done {
		t.Fatal("partial ack counted")
	}
	// A full ack counts; with self-ack it reaches quorum.
	r2.Add(&wire.Accepted{Bal: bal(2, 0), OK: true, Instances: []uint64{5, 6}}, 0)
	done, _ = r2.Add(&wire.Accepted{Bal: bal(2, 0), OK: true, Instances: []uint64{6, 5}}, 1)
	if !done {
		t.Fatal("order-insensitive full ack must count")
	}
	// Rejections are ballot-based and need no instance match.
	r3 := NewAcceptRound(bal(2, 0), []uint64{9}, 2)
	if _, rej := r3.Add(&wire.Accepted{Bal: bal(2, 0), OK: false, MaxProm: bal(3, 1)}, 1); !rej {
		t.Fatal("rejection must apply regardless of instances")
	}
}
