package chaos_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"gridrep/internal/chaos"
	"gridrep/internal/client"
	"gridrep/internal/core"
	"gridrep/internal/netem"
	"gridrep/internal/service"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// TestWANRegionPartitionZeroAckedLoss is the region-partition chaos
// scenario of the geo-replication suite (ISSUE 10): a 3-replica TCP
// cluster whose inter-replica links run through chaos proxies
// programmed with the wan3 geography (one replica per continent,
// asymmetric cross-region delays). Mid-workload the current leader's
// region drops off the backbone — every link crossing its boundary is
// taken down — so the two surviving regions must elect a new leader
// and keep acknowledging; after the heal the deposed region rejoins.
// The invariant is the paper's: zero acknowledged writes lost, under a
// partition that forces a cross-continent failover.
func TestWANRegionPartitionZeroAckedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("WAN chaos test skipped in -short mode")
	}
	prof := netem.WAN3Scaled(0.05) // real shape, ~2-5ms cross-region hops
	peers := []wire.NodeID{0, 1, 2}
	topts := transport.Options{
		QueueLen:     32,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		WriteTimeout: 2 * time.Second,
		PingEvery:    20 * time.Millisecond,
		PingTimeout:  150 * time.Millisecond,
	}

	trs := make(map[wire.NodeID]*transport.TCP, len(peers))
	realBook := make(map[wire.NodeID]string, len(peers))
	for _, id := range peers {
		tr, err := transport.ListenTCPOpts(id, map[wire.NodeID]string{id: "127.0.0.1:0"}, topts)
		if err != nil {
			t.Fatalf("listen %d: %v", id, err)
		}
		trs[id] = tr
		realBook[id] = tr.Addr()
	}
	grid := chaos.NewGrid(realBook)
	defer grid.Close()
	// Program the geography before any replica dials: every directed
	// link gets its wan3 mean one-way delay.
	if err := grid.ApplyProfile(prof, 1); err != nil {
		t.Fatalf("apply profile: %v", err)
	}
	for _, id := range peers {
		book, err := grid.BookFor(id)
		if err != nil {
			t.Fatalf("book for %d: %v", id, err)
		}
		for pid, addr := range book {
			if pid != id {
				trs[id].SetAddr(pid, addr)
			}
		}
	}

	reps := make([]*core.Replica, 0, len(peers))
	for _, id := range peers {
		r, err := core.New(core.Config{
			ID:        id,
			Peers:     peers,
			Service:   service.NewKV(),
			Transport: trs[id],
			// Heartbeats must outpace the scaled cross-region delay
			// (~5ms worst mean) by a wide margin, and the ping timeout
			// beats the election timeout so the partitioned leader is
			// deposed by the transport's PeerDown signal.
			HeartbeatInterval: 20 * time.Millisecond,
			ElectionTimeout:   400 * time.Millisecond,
			RetryTimeout:      80 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", id, err)
		}
		r.Start()
		reps = append(reps, r)
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()

	leaderOf := func() (wire.NodeID, bool) {
		for _, r := range reps {
			var lead bool
			if r.Inspect(func(rr *core.Replica) { lead = rr.IsActiveLeader() }) && lead {
				return r.ID(), true
			}
		}
		return 0, false
	}
	// A partitioned incumbent cannot learn it was deposed, so it may
	// keep claiming leadership inside its lost region; scan every
	// replica for an active leader outside the region instead of
	// trusting the first claimant.
	waitLeaderOutside := func(region int) wire.NodeID {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			for _, r := range reps {
				if region >= 0 && prof.RegionOf(r.ID()) == region {
					continue
				}
				var lead bool
				if r.Inspect(func(rr *core.Replica) { lead = rr.IsActiveLeader() }) && lead {
					return r.ID()
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("no leader elected outside region %d", region)
		return 0
	}
	waitLeaderOutside(-1)

	// The client dials the replicas' real addresses: the partition is
	// injected only on the replica backbone, so the client can still
	// reach the lost region directly — it just gets no quorum there.
	ctr := transport.DialTCPOpts(wire.ClientIDBase+1, realBook, topts)
	cli := client.New(client.Config{
		Transport:  ctr,
		Replicas:   peers,
		RetryEvery: 50 * time.Millisecond,
		Deadline:   20 * time.Second,
	})
	defer cli.Close()

	const ops = 150
	acked := make(map[string][]byte, ops)
	var lostRegion int
	for i := 0; i < ops; i++ {
		if i == ops/3 {
			// The leader's continent drops off the backbone.
			lead, ok := leaderOf()
			if !ok {
				t.Fatal("no leader before partition")
			}
			lostRegion = prof.RegionOf(lead)
			if err := grid.PartitionRegion(lostRegion, prof.RegionOf, true); err != nil {
				t.Fatalf("partition region %d: %v", lostRegion, err)
			}
		}
		if i == ops/3+1 {
			// The surviving regions must produce a new leader on a
			// different continent before writes can proceed.
			nl := waitLeaderOutside(lostRegion)
			t.Logf("failover: region %d lost, new leader %d in region %d",
				lostRegion, nl, prof.RegionOf(nl))
		}
		if i == 2*ops/3 {
			if err := grid.PartitionRegion(lostRegion, prof.RegionOf, false); err != nil {
				t.Fatalf("heal region %d: %v", lostRegion, err)
			}
		}
		key := fmt.Sprintf("k%03d", i)
		val := []byte(fmt.Sprintf("v%03d", i))
		if _, err := cli.Write(service.KVPut(key, val)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		acked[key] = val
	}

	// Zero lost acknowledged writes: every acked key must read back.
	for key, want := range acked {
		res, err := cli.Read(service.KVGet(key))
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		got, found := service.KVReply(res)
		if !found || !bytes.Equal(got, want) {
			t.Fatalf("key %s: found=%v got=%q want=%q — acknowledged write lost", key, found, got, want)
		}
	}
	t.Logf("wan3 chaos: %d writes acked across region-%d partition; grid %+v",
		ops, lostRegion, grid.Stats())
}
