package chaos_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"gridrep/internal/chaos"
	"gridrep/internal/client"
	"gridrep/internal/core"
	"gridrep/internal/failure"
	"gridrep/internal/metrics"
	"gridrep/internal/service"
	"gridrep/internal/storage"
	"gridrep/internal/transport"
	"gridrep/internal/wire"
)

// TestReconfigJoinUnderLinkChaos is the PR 6 acceptance scenario over
// real TCP with socket-level chaos: a 3-replica WAL-backed cluster
// takes a write load while a background injector severs random links;
// mid-load one backup is killed outright and its disk destroyed; the
// survivors keep committing and prune their WALs; a brand-new replica
// then joins online (the -join path), installs a streamed snapshot —
// a full log replay is impossible past the pruned prefix — is promoted
// to voter by a committed configuration entry, and finally the dead
// member is removed by a second config entry. Zero acknowledged writes
// may be lost, and the measured catch-up time is reported.
func TestReconfigJoinUnderLinkChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("reconfig chaos test skipped in -short mode")
	}
	dataDir := t.TempDir()
	peers := []wire.NodeID{0, 1, 2}
	topts := transport.Options{
		QueueLen:     32,
		BackoffMin:   5 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
		WriteTimeout: 2 * time.Second,
		PingEvery:    20 * time.Millisecond,
		PingTimeout:  100 * time.Millisecond,
	}
	walPath := func(id wire.NodeID) string {
		return filepath.Join(dataDir, fmt.Sprintf("replica-%d.wal", id))
	}

	trs := make(map[wire.NodeID]*transport.TCP, 4)
	realBook := make(map[wire.NodeID]string, 4)
	for _, id := range peers {
		tr, err := transport.ListenTCPOpts(id, map[wire.NodeID]string{id: "127.0.0.1:0"}, topts)
		if err != nil {
			t.Fatalf("listen %d: %v", id, err)
		}
		trs[id] = tr
		realBook[id] = tr.Addr()
	}
	grid := chaos.NewGrid(realBook)
	defer grid.Close()

	reps := make(map[wire.NodeID]*core.Replica, 4)
	start := func(id wire.NodeID, tr *transport.TCP, st storage.Store, join bool, known []wire.NodeID) {
		t.Helper()
		book, err := grid.BookFor(id)
		if err != nil {
			t.Fatalf("book for %d: %v", id, err)
		}
		for pid, addr := range book {
			if pid != id {
				tr.SetAddr(pid, addr)
			}
		}
		r, err := core.New(core.Config{
			ID:                id,
			Peers:             known,
			Service:           service.NewKV(),
			Store:             st,
			Transport:         tr,
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   300 * time.Millisecond,
			RetryTimeout:      40 * time.Millisecond,
			SnapshotEvery:     16,
			PruneKeep:         4,
			Join:              join,
			AdvertiseAddr:     realBook[id],
		})
		if err != nil {
			t.Fatalf("replica %d: %v", id, err)
		}
		r.Start()
		reps[id] = r
	}
	for _, id := range peers {
		st, err := storage.OpenFile(walPath(id))
		if err != nil {
			t.Fatal(err)
		}
		start(id, trs[id], st, false, peers)
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()

	leaderOf := func() (wire.NodeID, bool) {
		for _, r := range reps {
			var lead bool
			if r.Inspect(func(rr *core.Replica) { lead = rr.IsActiveLeader() }) && lead {
				return r.ID(), true
			}
		}
		return 0, false
	}
	waitLeader := func() wire.NodeID {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if id, ok := leaderOf(); ok {
				return id
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("no leader elected")
		return 0
	}
	waitLeader()

	ctr := transport.DialTCPOpts(wire.ClientIDBase+1, realBook, topts)
	cli := client.New(client.Config{
		Transport:  ctr,
		Replicas:   peers,
		RetryEvery: 50 * time.Millisecond,
		Deadline:   30 * time.Second,
	})
	defer cli.Close()

	inj := failure.NewLinks(grid, 1)
	inj.Start(failure.LinkPlan{
		Every:   25 * time.Millisecond,
		Weights: map[failure.LinkAction]int{failure.LinkSever: 1},
	})

	acked := make(map[string][]byte, 300)
	put := func(i int) {
		t.Helper()
		key := fmt.Sprintf("k%03d", i)
		val := []byte(fmt.Sprintf("v%03d", i))
		if _, err := cli.Write(service.KVPut(key, val)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		acked[key] = val
	}
	for i := 0; i < 120; i++ {
		put(i)
	}

	// Kill a backup and destroy its disk mid-load.
	lead, _ := leaderOf()
	var victim wire.NodeID
	for _, id := range peers {
		if id != lead {
			victim = id
			break
		}
	}
	reps[victim].Stop()
	delete(reps, victim)
	t.Logf("killed backup %d (disk destroyed), load continues under link chaos", victim)

	for i := 120; i < 260; i++ {
		put(i)
	}

	// Survivors prune up to the dead node's last gossiped watermark.
	waitPrune := time.Now().Add(20 * time.Second)
	for {
		l, ok := leaderOf()
		if ok && reps[l].Health().PrunedIndex > 0 {
			t.Logf("leader %d pruned through %d", l, reps[l].Health().PrunedIndex)
			break
		}
		if time.Now().After(waitPrune) {
			t.Fatal("survivors never pruned their WALs")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A brand-new replica joins online through the chaos grid.
	joiner := wire.NodeID(3)
	jtr, err := transport.ListenTCPOpts(joiner, map[wire.NodeID]string{joiner: "127.0.0.1:0"}, topts)
	if err != nil {
		t.Fatal(err)
	}
	trs[joiner] = jtr
	realBook[joiner] = jtr.Addr()
	grid.SetReal(joiner, jtr.Addr())
	jst, err := storage.OpenFile(walPath(joiner))
	if err != nil {
		t.Fatal(err)
	}
	startJoin := time.Now()
	start(joiner, jtr, jst, true, []wire.NodeID{0, 1, 2, 3})

	waitVoter := time.Now().Add(30 * time.Second)
	for {
		l, ok := leaderOf()
		if ok {
			voter := false
			for _, m := range reps[l].Health().Members {
				if m == joiner {
					voter = true
				}
			}
			if voter {
				break
			}
		}
		if time.Now().After(waitVoter) {
			t.Fatalf("joiner never promoted under chaos")
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("join to voter promotion under link chaos took %v", time.Since(startJoin))

	if m, ok := metrics.Find(reps[joiner].Metrics().Snapshot(), "gridrep_catchup_installs_total"); !ok || m.Value < 1 {
		t.Fatalf("joiner snapshot installs = %v; want >=1 (must catch up via snapshot, not replay)", m.Value)
	}

	// Remove the dead member by a second configuration entry; pruning
	// is then no longer capped by its stale watermark.
	l, _ := leaderOf()
	if err := reps[l].Reconfigure(wire.ConfigRemove, victim, ""); err != nil {
		t.Fatalf("remove dead member: %v", err)
	}
	waitRemove := time.Now().Add(15 * time.Second)
	for {
		l, ok := leaderOf()
		if ok && len(reps[l].Health().Members) == 3 {
			break
		}
		if time.Now().After(waitRemove) {
			t.Fatal("dead member never removed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	rep := inj.Stop()
	for _, link := range grid.Links() {
		grid.Restore(link[0], link[1])
		grid.SetDown(link[0], link[1], false)
	}
	t.Logf("chaos: %d severs; grid %+v", rep.Severs, grid.Stats())

	// Zero lost acked writes, read through the post-change membership.
	vtr := transport.DialTCPOpts(wire.ClientIDBase+2, realBook, topts)
	vcli := client.New(client.Config{
		Transport:  vtr,
		Replicas:   []wire.NodeID{0, 1, 2, 3},
		RetryEvery: 50 * time.Millisecond,
		Deadline:   30 * time.Second,
	})
	defer vcli.Close()
	for key, want := range acked {
		res, err := vcli.Read(service.KVGet(key))
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		got, found := service.KVReply(res)
		if !found || !bytes.Equal(got, want) {
			t.Fatalf("key %s: found=%v got=%q want=%q — acknowledged write lost", key, found, got, want)
		}
	}
	if _, err := vcli.Write(service.KVPut("post-reconfig", []byte("ok"))); err != nil {
		t.Fatalf("write after reconfiguration: %v", err)
	}
}
